/**
 * Fault-injection demo: walks through the paper's §3 transient-fault
 * scenarios live — inject a single bit flip into either stream and
 * watch the slipstream processor detect it as a "misprediction" and
 * recover the corrupted context, or (scenario #2) watch a fault in a
 * non-redundant region slip through silently.
 */

#include <iostream>

#include "assembler/assembler.hh"
#include "func/func_sim.hh"
#include "slipstream/slipstream_processor.hh"

namespace
{

using namespace slip;

const char *kSource = R"(
.data
arr: .space 512
.text
main:
    la   a0, arr
    li   s0, 0
fill:
    slli t0, s0, 3
    add  t0, t0, a0
    mul  t1, s0, s0
    sd   t1, 0(t0)
    addi t9, zero, 1     # removable bookkeeping write
    addi s0, s0, 1
    li   t2, 64
    blt  s0, t2, fill
    li   s0, 0
    li   s1, 0
sum:
    slli t0, s0, 3
    add  t0, t0, a0
    ld   t1, 0(t0)
    add  s1, s1, t1
    addi s0, s0, 1
    li   t2, 64
    blt  s0, t2, sum
    putn s1
    halt
)";

void
report(const char *label, const SlipstreamRunResult &r,
       const std::string &golden)
{
    std::cout << label << "\n"
              << "  fault injected:   "
              << (r.faultOutcome.injected ? "yes" : "no") << "\n";
    if (r.faultOutcome.injected) {
        std::cout << "  redundant victim: "
                  << (r.faultOutcome.targetWasRedundant ? "yes" : "no")
                  << "\n"
                  << "  detected:         "
                  << (r.faultOutcome.detected ? "yes (recovered)"
                                              : "NO (silent)")
                  << "\n";
        for (const FaultRecord &rec : r.faultOutcome.records) {
            if (!rec.detected)
                continue;
            std::cout << "  detect latency:   "
                      << rec.detectionLatency() << " cycles ("
                      << faultTargetName(rec.plan.target) << ")\n";
        }
    }
    std::cout << "  recoveries:       " << r.irMispredicts << "\n";
    if (r.watchdogTrips)
        std::cout << "  watchdog trips:   " << r.watchdogTrips << "\n";
    if (r.degraded)
        std::cout << "  DEGRADED to R-only at cycle "
                  << r.degradedAtCycle << " (" << r.rOnlyRetired
                  << " instructions retired R-only)\n";
    std::cout << "  output correct:   "
              << (r.output == golden ? "yes" : "NO — CORRUPTED")
              << "\n\n";
}

} // namespace

int
main()
{
    setLogQuiet(true);
    const Program program = assemble(kSource);
    FuncSim func(program);
    const std::string golden = func.run().output;
    std::cout << "golden output: " << golden << "\n";

    // Scenario #1a: fault hits the A-stream's copy. The R-stream's
    // redundant computation disagrees -> detected, recovered.
    {
        SlipstreamProcessor proc(program);
        proc.faultInjector().arm({FaultTarget::AStream, 600, 5});
        report("A-stream fault on a redundant instruction:",
               proc.run(), golden);
    }

    // Scenario #1b: fault hits the R-stream copy in the pipeline.
    // The comparison against the A-stream value disagrees -> the
    // pipeline squashes and re-executes cleanly.
    {
        SlipstreamProcessor proc(program);
        proc.faultInjector().arm({FaultTarget::RPipeline, 900, 12});
        report("R-pipeline fault on a redundant instruction:",
               proc.run(), golden);
    }

    // Scenario #2: fault hits the R-stream copy of an instruction the
    // A-stream *skipped* — there is nothing to compare against, so
    // the corruption can retire silently. Scan for such a victim.
    {
        std::cout << "scanning for a non-redundant victim "
                     "(scenario #2)...\n";
        bool found = false;
        for (uint64_t idx = 300; idx < 900 && !found; idx += 11) {
            SlipstreamProcessor proc(program);
            proc.faultInjector().arm({FaultTarget::RPipeline, idx, 0});
            const SlipstreamRunResult r = proc.run();
            if (r.faultOutcome.injected &&
                !r.faultOutcome.targetWasRedundant) {
                found = true;
                report("R-pipeline fault on a skipped instruction:", r,
                       golden);
            }
        }
        if (!found)
            std::cout << "  (no skipped-slot victim found at this "
                         "size — removal too sparse)\n\n";
    }

    // Reliable mode (AR-SMT): removal disabled, everything redundant,
    // the same fault class is always detected.
    {
        SlipstreamParams params;
        params.irPred.enabled = false;
        SlipstreamProcessor proc(program, params);
        proc.faultInjector().arm({FaultTarget::RPipeline, 610, 7});
        report("reliable (AR-SMT) mode, same fault class:", proc.run(),
               golden);
    }

    // A value corrupted *in transit* between the cores (delay-buffer
    // payload): always compared, so always detected.
    {
        SlipstreamProcessor proc(program);
        proc.faultInjector().arm(
            {FaultTarget::DelayBufferValue, 700, 9});
        report("delay-buffer payload corrupted in transit:",
               proc.run(), golden);
    }

    // The A-stream front end wedges (a control-flow derailing fault):
    // only the forward-progress watchdog can expose it. The forced
    // recovery resynchronizes the A-stream and the run completes.
    {
        SlipstreamParams params;
        params.watchdog.stallCycles = 2000;
        SlipstreamProcessor proc(program, params);
        proc.faultInjector().arm({FaultTarget::AStreamStall, 900, 0});
        report("A-stream wedged; watchdog forces the recovery:",
               proc.run(), golden);
    }

    // Graceful degradation: a dense burst of A-side faults trips the
    // recovery-storm detector; the processor sheds the A-stream and
    // finishes the program R-only — output still intact.
    {
        SlipstreamParams params;
        params.irPred.enabled = false;
        params.degrade.windowCycles = 50'000;
        params.degrade.recoveryThreshold = 3;
        SlipstreamProcessor proc(program, params);
        std::vector<FaultPlan> burst;
        for (uint64_t i = 0; i < 6; ++i)
            burst.push_back({FaultTarget::AStream, 400 + 120 * i, 4});
        proc.faultInjector().arm(burst);
        report("recovery storm; graceful degradation to R-only:",
               proc.run(), golden);
    }

    return 0;
}
