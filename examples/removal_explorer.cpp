/**
 * Removal explorer: a profiling tool over the slipstream machinery.
 * Runs a workload on the slipstream processor while recording, per
 * static instruction, how often the A-stream skipped it and why —
 * then prints an annotated disassembly of the hottest removable code.
 *
 * Usage: removal_explorer [workload-name]   (default: m88ksim)
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "assembler/assembler.hh"
#include "isa/disasm.hh"
#include "slipstream/slipstream_processor.hh"
#include "workloads/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace slip;
    setLogQuiet(true);

    const std::string name = argc > 1 ? argv[1] : "m88ksim";
    const Workload w = getWorkload(name, WorkloadSize::Small);
    std::cout << "workload: " << w.name << " — " << w.description
              << "\n(substitutes " << w.substitutes << ")\n\n";

    const Program program = assemble(w.source);
    SlipstreamProcessor proc(program);

    // Hook the R-stream retire path: count per-PC execution and
    // removal, with reasons.
    struct PcStats
    {
        uint64_t executed = 0;
        uint64_t removed = 0;
        std::map<std::string, uint64_t> reasons;
    };
    std::map<Addr, PcStats> byPc;

    auto &rCore = proc.rCore();
    auto previous = rCore.onRetire;
    rCore.onRetire = [&](const DynInst &d, Cycle cycle) {
        PcStats &s = byPc[d.pc];
        ++s.executed;
        if (!d.valuePredicted) {
            ++s.removed;
            ++s.reasons[reasonName(d.removalReason)];
        }
        return previous ? previous(d, cycle) : true;
    };

    const SlipstreamRunResult r = proc.run();
    std::cout << "R-stream retired " << r.rRetired << " instructions in "
              << r.cycles << " cycles (IPC " << r.ipc() << ")\n"
              << "A-stream skipped "
              << 100.0 * r.removedFraction() << "% of them\n\n";

    // Rank static instructions by removed count.
    std::vector<std::pair<Addr, PcStats>> ranked(byPc.begin(),
                                                 byPc.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  return a.second.removed > b.second.removed;
              });

    std::cout << "top removable static instructions:\n";
    std::cout << "      pc  removed/executed  instruction — reasons\n";
    unsigned shown = 0;
    for (const auto &[pc, s] : ranked) {
        if (s.removed == 0 || shown >= 20)
            break;
        ++shown;
        std::cout << "  0x" << std::hex << pc << std::dec << "  "
                  << s.removed << "/" << s.executed << "  "
                  << disassemble(program.fetch(pc), pc) << " — ";
        bool first = true;
        for (const auto &[reason, count] : s.reasons) {
            std::cout << (first ? "" : ", ") << reason << " x" << count;
            first = false;
        }
        std::cout << "\n";
    }
    if (shown == 0)
        std::cout << "  (nothing was removed — is the workload too "
                     "unpredictable?)\n";

    std::cout << "\nremoval breakdown (dynamic):\n";
    for (const auto &[reason, count] : r.removedByReason)
        std::cout << "  " << reason << ": " << count << "\n";
    return 0;
}
