/**
 * Quickstart: assemble a small SSIR program and run it on the
 * functional simulator and the SS(64x4) superscalar model; then run
 * the suite's m88ksim workload on SS(64x4) vs the CMP(2x64x4)
 * slipstream processor to show the paper's headline effect.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "assembler/assembler.hh"
#include "func/func_sim.hh"
#include "slipstream/slipstream_processor.hh"
#include "uarch/ss_processor.hh"
#include "workloads/workloads.hh"

int
main()
{
    using namespace slip;
    setLogQuiet(true);

    // ---- 1. Write a program, assemble it, run it ----
    const char *source = R"(
.data
table: .space 512
.text
main:
    la   a0, table
    li   t0, 0
fill:
    slli t1, t0, 3
    add  t1, t1, a0
    mul  t2, t0, t0
    sd   t2, 0(t1)
    addi t0, t0, 1
    li   t3, 64
    blt  t0, t3, fill
    li   t0, 0
    li   t4, 0
sum:
    slli t1, t0, 3
    add  t1, t1, a0
    ld   t2, 0(t1)
    add  t4, t4, t2
    addi t0, t0, 1
    li   t3, 64
    blt  t0, t3, sum
    putn t4
    halt
)";

    std::cout << "assembling the demo program...\n";
    const Program program = assemble(source);
    std::cout << "  " << program.numInsts()
              << " instructions, entry at 0x" << std::hex
              << program.entry() << std::dec << "\n";

    FuncSim func(program);
    const FuncRunResult golden = func.run();
    std::cout << "functional sim: " << golden.instCount
              << " instructions, output: " << golden.output;

    SSProcessor ss(program);
    const SSRunResult ssr = ss.run();
    std::cout << "SS(64x4):       " << ssr.cycles << " cycles, IPC "
              << ssr.ipc() << ", output "
              << (ssr.output == golden.output ? "correct"
                                              : "WRONG")
              << "\n\n";

    // ---- 2. The headline result: slipstream vs the baseline ----
    // Tiny kernels sit at the baseline's 4-wide IPC ceiling, where
    // there is nothing for slipstreaming to win; use the suite's
    // m88ksim substitute — the paper's best case — instead.
    std::cout << "running the m88ksim workload (the paper's biggest "
                 "winner)...\n";
    const Workload w = getWorkload("m88ksim", WorkloadSize::Small);
    const Program m88k = assemble(w.source);

    FuncSim m88kFunc(m88k);
    const std::string m88kGolden = m88kFunc.run().output;

    SSProcessor base(m88k);
    const SSRunResult br = base.run();

    SlipstreamProcessor slip(m88k);
    const SlipstreamRunResult sr = slip.run();

    std::cout << "  SS(64x4):    IPC " << br.ipc() << "\n"
              << "  CMP(2x64x4): IPC " << sr.ipc() << "  ("
              << 100.0 * (sr.ipc() / br.ipc() - 1.0)
              << "% faster; A-stream skipped "
              << 100.0 * sr.removedFraction()
              << "% of the program; "
              << sr.irMispPer1000()
              << " IR-mispredictions per 1000 instructions)\n";

    const bool correct = br.output == m88kGolden &&
                         sr.output == m88kGolden;
    std::cout << "  outputs architecturally correct: "
              << (correct ? "yes" : "NO") << "\n";
    return correct ? 0 : 1;
}
