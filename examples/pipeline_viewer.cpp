/**
 * Pipeline viewer: runs a small program on the SS(64x4) core and
 * prints a per-instruction retirement timeline — a cheap "pipeline
 * diagram" showing how the trace-predictor-driven front end, the
 * out-of-order engine, and branch mispredictions shape the schedule.
 */

#include <iomanip>
#include <iostream>

#include "assembler/assembler.hh"
#include "isa/disasm.hh"
#include "uarch/ss_processor.hh"

int
main()
{
    using namespace slip;
    setLogQuiet(true);

    const char *source = R"(
.data
v: .dword 3
.text
main:
    ld   t0, v          # load feeds the chain below
    li   t1, 10
loop:
    mul  t2, t0, t1     # long-latency op on the critical path
    add  t3, t3, t2
    addi t1, t1, -1
    bnez t1, loop
    putn t3
    halt
)";

    const Program program = assemble(source);
    std::cout << "program:\n";
    for (Addr pc = program.textBase(); pc < program.textEnd();
         pc += kInstBytes) {
        std::cout << "  0x" << std::hex << pc << std::dec << "  "
                  << disassemble(program.fetch(pc), pc) << "\n";
    }

    SSProcessor proc(program);
    std::cout << "\nretirement timeline (cycle: instruction):\n";
    uint64_t lastCycle = 0;
    proc.core().onRetire = [&](const DynInst &d, Cycle cycle) {
        proc.fetchSource().notifyRetire(d);
        if (cycle != lastCycle)
            std::cout << "\n";
        lastCycle = cycle;
        std::cout << "  " << std::setw(5) << cycle << ": 0x" << std::hex
                  << d.pc << std::dec << " "
                  << disassemble(d.si, d.pc)
                  << (d.mispredicted ? "   <-- mispredicted" : "")
                  << "\n";
        return true;
    };

    const SSRunResult r = proc.run();
    std::cout << "\n" << r.retired << " instructions in " << r.cycles
              << " cycles (IPC " << std::fixed << std::setprecision(2)
              << r.ipc() << "), " << r.branchMispredicts
              << " branch mispredicts\noutput: " << r.output;
    return 0;
}
