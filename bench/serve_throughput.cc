/**
 * serve_throughput: the slipd acceptance bench. Starts an in-process
 * campaign server on a throwaway Unix socket with a fresh result
 * cache, then drives it with N concurrent clients, each submitting
 * its own campaign batch:
 *
 *  - round `cold`: every trial misses the cache and executes on the
 *    shared worker pool. Each client's sorted result stream must be
 *    byte-identical to the canonical journal the single-process
 *    pipeline (planCampaignTrials -> runCampaignTrial ->
 *    recordCampaignTrial -> campaignTrialLine) produces for the same
 *    batch — worker count, client count, and completion order must
 *    not leak into result bytes.
 *
 *  - round `warm`: the same batches again. At least 90% of trials
 *    must be answered from the content-addressed cache (in practice
 *    100%: the key covers everything that shapes result bytes).
 *
 * Prints one table row per round with throughput and cache hit/miss
 * counts, and exits non-zero on any identity or cache-rate failure —
 * CI runs this as the serve acceptance gate.
 */

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/bench_common.hh"
#include "bench/bench_timing.hh"
#include "common/cancel.hh"
#include "harness/fault_campaign.hh"
#include "serve/client.hh"
#include "serve/server.hh"

using namespace slip;
using namespace slip::serve;

namespace
{

/** The batch client `c` submits (same bytes both rounds). */
BatchRequest
clientBatch(unsigned c, WorkloadSize size, unsigned trials)
{
    static const char *kNames[] = {"compress", "li", "jpeg", "go",
                                   "gcc",      "perl", "vortex",
                                   "m88ksim"};
    BatchRequest req;
    req.kind = BatchKind::Campaign;
    req.id = 100 + c;
    req.name = "serve_tput_" + std::to_string(c);
    req.workloads = {kNames[c % 8]};
    req.size = size;
    req.trialsPerWorkload = trials;
    req.minFaultsPerTrial = 1;
    req.maxFaultsPerTrial = 2;
    req.seed = 93000 + c;
    return req;
}

/**
 * The canonical journal for one batch, computed without the server:
 * plan, execute serially in-process, record, render, join with '\n'.
 */
std::string
referenceJournal(const BatchRequest &req)
{
    const FaultCampaignConfig cfg = req.toCampaignConfig();
    const std::vector<CampaignTrialSpec> specs =
        planCampaignTrials(cfg);
    std::string out;
    for (size_t i = 0; i < specs.size(); ++i) {
        CancelToken cancel;
        JobOutcome o;
        try {
            o.metrics = runCampaignTrial(cfg, specs[i], i, cancel);
        } catch (const std::exception &e) {
            o.status = JobOutcome::Status::Error;
            o.errorMessage = e.what();
        }
        const TrialRecord t = recordCampaignTrial(cfg, specs[i], i, o);
        out += campaignTrialLine(cfg, i, t);
        out += '\n';
    }
    return out;
}

struct ClientOutcome
{
    bool ok = false;
    std::string journal; // sorted by trial index, '\n'-joined
    BatchDoneMsg done;
    std::string err;
};

/** Connect, submit, sort by index, summarize. */
ClientOutcome
runClient(const std::string &socketPath, const BatchRequest &req)
{
    ClientOutcome out;
    Client client;
    if (!client.connect(socketPath, out.err) ||
        !client.handshake(req.name, out.err))
        return out;
    std::map<uint64_t, std::string> lines;
    const bool finished = client.submitBatch(
        req,
        [&](const TrialResultMsg &m) {
            lines[m.index] = m.line;
            return true;
        },
        out.done, out.err);
    if (!finished)
        return out;
    for (const auto &[index, line] : lines) {
        out.journal += line;
        out.journal += '\n';
    }
    out.ok = out.done.status == BatchStatus::Ok;
    if (!out.ok)
        out.err = "batch ended " +
                  std::string(batchStatusName(out.done.status)) + ": " +
                  out.done.error;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (!bench::applyTraceArg(argv[i])) {
            std::cerr << "usage: serve_throughput [--trace[=cats]]\n";
            return 2;
        }

    bench::banner("serve_throughput: slipd campaign-server acceptance",
                  "infrastructure bench (no paper artifact): N "
                  "concurrent clients vs one server, byte-identity + "
                  "cache hit-rate gates");

    const WorkloadSize size = bench::benchSize();
    const unsigned clients = unsigned(std::clamp<uint64_t>(
        envU64("SLIPSTREAM_SERVE_CLIENTS", 4), 1, 64));
    const unsigned trials = size == WorkloadSize::Test    ? 2
                            : size == WorkloadSize::Small ? 4
                                                          : 8;

    // Throwaway socket + cache, wiped on every run so round `cold`
    // really is cold.
    char dirTemplate[] = "/tmp/serve_throughput.XXXXXX";
    if (!mkdtemp(dirTemplate)) {
        std::cerr << "serve_throughput: mkdtemp failed\n";
        return 1;
    }
    const std::string scratch = dirTemplate;
    const std::string socketPath = scratch + "/slipd.sock";

    ServerOptions opts;
    opts.unixPath = socketPath;
    opts.cacheDir = scratch + "/cache";
    opts.name = "serve_throughput";
    Server server(opts);
    std::string err;
    if (!server.start(err)) {
        std::cerr << "serve_throughput: server start failed: " << err
                  << "\n";
        return 1;
    }

    std::vector<BatchRequest> batches;
    for (unsigned c = 0; c < clients; ++c)
        batches.push_back(clientBatch(c, size, trials));

    std::cout << "reference: " << clients
              << " batches through the single-process pipeline...\n";
    std::vector<std::string> expected(clients);
    for (unsigned c = 0; c < clients; ++c)
        expected[c] = referenceJournal(batches[c]);

    Table table({"round", "clients", "trials", "seconds", "trials/s",
                 "cache-hit", "cache-miss", "identical"});
    bool failed = false;

    for (const char *round : {"cold", "warm"}) {
        bench::Timing timing(std::string("serve_throughput_") + round,
                             defaultJobs());
        std::vector<ClientOutcome> results(clients);
        std::vector<std::thread> threads;
        for (unsigned c = 0; c < clients; ++c)
            threads.emplace_back([&, c] {
                results[c] = runClient(socketPath, batches[c]);
            });
        for (std::thread &t : threads)
            t.join();
        const double seconds = timing.elapsedSeconds();

        uint64_t completed = 0;
        uint64_t hits = 0;
        uint64_t misses = 0;
        bool identical = true;
        for (unsigned c = 0; c < clients; ++c) {
            const ClientOutcome &r = results[c];
            if (!r.ok) {
                std::cerr << "FAIL [" << round << "] client " << c
                          << ": " << r.err << "\n";
                identical = false;
                continue;
            }
            completed += r.done.completed;
            hits += r.done.cacheHits;
            misses += r.done.cacheMisses;
            if (r.journal != expected[c]) {
                std::cerr << "FAIL [" << round << "] client " << c
                          << ": served journal differs from the "
                             "single-process pipeline\n";
                identical = false;
            }
        }
        table.addRow({round, Table::count(clients),
                      Table::count(completed), Table::fixed(seconds, 2),
                      Table::fixed(seconds > 0.0 ? double(completed) /
                                                       seconds
                                                 : 0.0,
                                   1),
                      Table::count(hits), Table::count(misses),
                      identical ? "yes" : "NO"});
        if (!identical)
            failed = true;
        if (std::string(round) == "warm" && completed > 0 &&
            double(hits) < 0.9 * double(completed)) {
            std::cerr << "FAIL [warm] cache hit rate " << hits << "/"
                      << completed << " below the 90% gate\n";
            failed = true;
        }
    }

    table.print(std::cout);
    const ServeStats stats = server.statsSnapshot();
    std::cout << "\nserver: batches=" << stats.batches
              << " trials_run=" << stats.trialsRun
              << " trials_cached=" << stats.trialsCached
              << " cache_hits=" << stats.cacheHits
              << " cache_misses=" << stats.cacheMisses
              << " cache_stores=" << stats.cacheStores
              << " cache_evictions=" << stats.cacheEvictions << "\n";

    server.beginDrain();
    server.waitIdle();
    server.stop();
    std::error_code ec;
    std::filesystem::remove_all(scratch, ec);

    std::cout << (failed ? "\nRESULT: FAIL\n" : "\nRESULT: PASS\n");
    return failed ? 1 : 0;
}
