/**
 * Ablation: delay buffer sizing.
 *
 * The paper fixes 256 data entries / 128 control pairs (Table 2). The
 * data buffer bounds how far the A-stream runs ahead; too small and
 * the R-stream starves behind A-stream hiccups, too large buys little
 * once it covers the cores' reorder depth.
 */

#include "bench/bench_timing.hh"
#include "bench_common.hh"

int
main()
{
    using namespace slip;
    bench::banner("Ablation: delay buffer capacity sweep",
                  "paper fixes 256 data entries / 128 control pairs");

    const std::vector<std::string> names = {"m88ksim", "perl"};
    const std::vector<unsigned> sizes = {32u,  64u,  128u,
                                         256u, 512u, 1024u};

    SimJobRunner runner;
    bench::Timing timing("ablation_delay_buffer", runner.jobs());
    for (const std::string &name : names) {
        const ProgramCache::Entry &e =
            ProgramCache::global().get(name, bench::benchSize());
        runner.add([&e] {
            return runSS(e.program, ss64x4Params(), "SS(64x4)",
                         e.golden);
        });
        for (unsigned data : sizes) {
            runner.add([&e, data] {
                SlipstreamParams params = cmp2x64x4Params();
                params.delayBuffer.dataCapacity = data;
                params.delayBuffer.controlCapacity =
                    std::max(8u, data / 2);
                return runSlipstream(e.program, params, e.golden);
            });
        }
    }
    const std::vector<RunMetrics> results = runner.run();

    const size_t stride = 1 + sizes.size();
    for (size_t i = 0; i < names.size(); ++i) {
        const RunMetrics &base = results[i * stride];
        timing.addCycles(base.cycles);
        std::cout << "---- " << names[i] << " (SS IPC "
                  << Table::fixed(base.ipc) << ") ----\n";
        Table table({"data entries", "control", "IPC", "vs SS"});
        for (size_t k = 0; k < sizes.size(); ++k) {
            const RunMetrics &m = results[i * stride + 1 + k];
            timing.addCycles(m.cycles);
            if (!m.outputCorrect)
                SLIP_FATAL(names[i], ": output mismatch at ",
                           sizes[k]);
            table.addRow({Table::count(sizes[k]),
                          Table::count(std::max(8u, sizes[k] / 2)),
                          Table::fixed(m.ipc),
                          Table::percent(m.ipc / base.ipc - 1.0)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
