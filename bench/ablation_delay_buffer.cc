/**
 * Ablation: delay buffer sizing.
 *
 * The paper fixes 256 data entries / 128 control pairs (Table 2). The
 * data buffer bounds how far the A-stream runs ahead; too small and
 * the R-stream starves behind A-stream hiccups, too large buys little
 * once it covers the cores' reorder depth.
 */

#include "assembler/assembler.hh"
#include "bench_common.hh"

int
main()
{
    using namespace slip;
    bench::banner("Ablation: delay buffer capacity sweep",
                  "paper fixes 256 data entries / 128 control pairs");

    for (const char *name : {"m88ksim", "perl"}) {
        const Workload w = getWorkload(name, bench::benchSize());
        const Program p = assemble(w.source);
        const std::string want = goldenOutput(p);
        const RunMetrics base =
            runSS(p, ss64x4Params(), "SS(64x4)", want);

        std::cout << "---- " << name << " (SS IPC "
                  << Table::fixed(base.ipc) << ") ----\n";
        Table table({"data entries", "control", "IPC", "vs SS"});
        for (unsigned data : {32u, 64u, 128u, 256u, 512u, 1024u}) {
            SlipstreamParams params = cmp2x64x4Params();
            params.delayBuffer.dataCapacity = data;
            params.delayBuffer.controlCapacity = std::max(8u, data / 2);
            const RunMetrics m = runSlipstream(p, params, want);
            if (!m.outputCorrect)
                SLIP_FATAL(name, ": output mismatch at ", data);
            table.addRow({Table::count(data),
                          Table::count(params.delayBuffer
                                           .controlCapacity),
                          Table::fixed(m.ipc),
                          Table::percent(m.ipc / base.ipc - 1.0)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
