/**
 * @file
 * Shared plumbing for the table/figure reproduction binaries: size
 * selection via the SLIPSTREAM_BENCH_SIZE environment variable
 * (test | small | default; the paper-style runs use `default`),
 * banner printing, and cached golden outputs.
 */

#ifndef SLIPSTREAM_BENCH_BENCH_COMMON_HH
#define SLIPSTREAM_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "harness/experiment.hh"
#include "harness/table.hh"
#include "workloads/workloads.hh"

namespace slip::bench
{

/** Workload scale from $SLIPSTREAM_BENCH_SIZE (default: small). */
inline WorkloadSize
benchSize()
{
    const char *env = std::getenv("SLIPSTREAM_BENCH_SIZE");
    const std::string s = env ? env : "small";
    if (s == "test")
        return WorkloadSize::Test;
    if (s == "default" || s == "full")
        return WorkloadSize::Default;
    return WorkloadSize::Small;
}

inline const char *
benchSizeName()
{
    switch (benchSize()) {
      case WorkloadSize::Test:
        return "test";
      case WorkloadSize::Small:
        return "small";
      default:
        return "default";
    }
}

/** Standard banner naming the paper artifact being regenerated. */
inline void
banner(const std::string &artifact, const std::string &paperNote)
{
    slip::setLogQuiet(true);
    std::cout << "=== " << artifact << " ===\n"
              << "paper: " << paperNote << "\n"
              << "workload size: " << benchSizeName()
              << " (set SLIPSTREAM_BENCH_SIZE=test|small|default)\n\n";
}

} // namespace slip::bench

#endif // SLIPSTREAM_BENCH_BENCH_COMMON_HH
