/**
 * @file
 * Shared plumbing for the table/figure reproduction binaries: size
 * selection via the SLIPSTREAM_BENCH_SIZE environment variable
 * (test | small | default; the paper-style runs use `default`),
 * worker-count reporting, and banner printing.
 */

#ifndef SLIPSTREAM_BENCH_BENCH_COMMON_HH
#define SLIPSTREAM_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/env.hh"
#include "common/logging.hh"
#include "func/exec_engine.hh"
#include "harness/experiment.hh"
#include "harness/sim_runner.hh"
#include "harness/table.hh"
#include "obs/trace_session.hh"
#include "workloads/workloads.hh"

namespace slip::bench
{

/**
 * Workload scale from $SLIPSTREAM_BENCH_SIZE (default: small). The
 * environment is read once — benches call this from many loops — and
 * an unrecognised value earns a warning instead of silently running
 * `small`.
 */
inline WorkloadSize
benchSize()
{
    static const WorkloadSize cached = [] {
        const char *env = std::getenv("SLIPSTREAM_BENCH_SIZE");
        const std::string s = env ? env : "small";
        if (s == "test")
            return WorkloadSize::Test;
        if (s == "small")
            return WorkloadSize::Small;
        if (s == "default" || s == "full")
            return WorkloadSize::Default;
        SLIP_WARN("unknown SLIPSTREAM_BENCH_SIZE='", s,
                  "' (want test|small|default); using 'small'");
        return WorkloadSize::Small;
    }();
    return cached;
}

inline const char *
benchSizeName()
{
    return sizeName(benchSize());
}

/**
 * Apply a `--trace[=categories]` bench argument: overrides whatever
 * SLIPSTREAM_TRACE resolved to for this invocation. Bare `--trace`
 * enables every category. Returns false when `arg` is not a trace
 * flag (the caller handles — or rejects — it). Call before banner()
 * so unknown category names are warned about, not silently muted.
 */
inline bool
applyTraceArg(const std::string &arg)
{
    const std::string prefix = "--trace=";
    if (arg != "--trace" && arg.rfind(prefix, 0) != 0)
        return false;
    obs::TraceConfig cfg = obs::TraceSession::global().config();
    cfg.mask = arg == "--trace"
                   ? obs::kAllCategories
                   : obs::parseCategoryMask(arg.substr(prefix.size()));
    obs::TraceSession::global().configure(cfg);
    return true;
}

/** Standard banner naming the paper artifact being regenerated. */
inline void
banner(const std::string &artifact, const std::string &paperNote)
{
    // Resolve every environment knob before muting warnings so bad
    // SLIPSTREAM_BENCH_SIZE / SLIPSTREAM_JOBS / SLIPSTREAM_DISPATCH /
    // supervision / SLIPSTREAM_TRACE values are reported instead of
    // silently falling back.
    const char *size = benchSizeName();
    const unsigned jobs = defaultJobs();
    defaultDispatch();
    const Supervision supervision = Supervision::fromEnv();
    const obs::TraceConfig trace = obs::TraceSession::global().config();
    envFlag("SLIPSTREAM_CAMPAIGN_RESUME", false);
    slip::setLogQuiet(true);
    std::cout << "=== " << artifact << " ===\n"
              << "paper: " << paperNote << "\n"
              << "workload size: " << size
              << " (set SLIPSTREAM_BENCH_SIZE=test|small|default)\n"
              << "parallel jobs: " << jobs
              << " (set SLIPSTREAM_JOBS=N)\n";
    if (supervision.timeoutMs)
        std::cout << "trial deadline: " << supervision.timeoutMs
                  << " ms (SLIPSTREAM_TRIAL_TIMEOUT_MS)\n";
    if (trace.mask) {
        std::cout << "tracing: " << obs::categoryMaskNames(trace.mask)
                  << " -> " << trace.dir
                  << "/*.trace.json (--trace[=cats] or "
                     "SLIPSTREAM_TRACE)\n";
    }
    std::cout << "\n";
}

} // namespace slip::bench

#endif // SLIPSTREAM_BENCH_BENCH_COMMON_HH
