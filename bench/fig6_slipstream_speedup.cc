/**
 * Reproduces Figure 6 — percent IPC improvement of the CMP(2x64x4)
 * slipstream processor over SS(64x4), per benchmark — and extends it
 * into an A-stream policy sweep: the same grid is run once per
 * shortening policy (ir | runahead | filtered | reliability), with a
 * per-policy summary table at the end.
 *
 * Paper's shape (the `ir` rows): average ~7%; m88ksim ~20%, perl ~16%,
 * li/vortex ~7%, gcc ~4%, compress/go/jpeg ~0%. The shape to check:
 * the highly branch-predictable, ineffectual-write-rich benchmarks
 * win; the data-dependent ones do not. The runahead-family policies
 * shorten the A-stream on the communication side (value stripping)
 * instead of instruction removal, so their "removed" column reports
 * the non-redundant fraction, not fetch savings.
 */

#include "bench/bench_timing.hh"
#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace slip;
    for (int i = 1; i < argc; ++i) {
        if (!bench::applyTraceArg(argv[i])) {
            std::cerr << "usage: " << argv[0]
                      << " [--trace[=categories]]\n";
            return 2;
        }
    }
    bench::banner("Figure 6: slipstream speedup over SS(64x4)",
                  "% IPC improvement of CMP(2x64x4); paper avg ~7%");

    const std::vector<Workload> workloads =
        allWorkloads(bench::benchSize());
    const size_t nWorkloads = workloads.size();

    // One SS baseline per workload, then one CMP grid per policy.
    // Every job goes through the same runner so the sweep saturates
    // the worker pool instead of running policy-by-policy.
    SimJobRunner runner;
    bench::Timing timing("fig6", runner.jobs());
    for (const Workload &w : workloads) {
        const ProgramCache::Entry &e =
            ProgramCache::global().get(w.name, bench::benchSize());
        const std::string name = w.name;
        runner.add([&e, name] {
            obs::TrialTrace scope("fig6_" + name + "_ss");
            return runSS(e.program, ss64x4Params(), "SS(64x4)",
                         e.golden);
        });
    }
    for (size_t p = 0; p < kNumAStreamPolicies; ++p) {
        const AStreamPolicyKind kind = AStreamPolicyKind(p);
        for (const Workload &w : workloads) {
            const ProgramCache::Entry &e =
                ProgramCache::global().get(w.name, bench::benchSize());
            const std::string name = w.name;
            runner.add([&e, name, kind] {
                obs::TrialTrace scope("fig6_" + name + "_" +
                                      aStreamPolicyName(kind));
                SlipstreamParams params = cmp2x64x4Params();
                params.aPolicy.kind = kind;
                return runSlipstream(e.program, params, e.golden);
            });
        }
    }
    const std::vector<RunMetrics> results = runner.run();
    for (const RunMetrics &m : results)
        timing.addCycles(m.cycles);

    double avgImprovement[kNumAStreamPolicies] = {};
    double avgRemoved[kNumAStreamPolicies] = {};
    bool anyWrong[kNumAStreamPolicies] = {};

    for (size_t p = 0; p < kNumAStreamPolicies; ++p) {
        const AStreamPolicyKind kind = AStreamPolicyKind(p);
        std::cout << "---- policy: " << aStreamPolicyName(kind)
                  << " ----\n";
        Table table({"benchmark", "SS(64x4) IPC", "CMP(2x64x4) IPC",
                     "improvement", "removed", "output ok"});
        double sum = 0.0;
        for (size_t i = 0; i < nWorkloads; ++i) {
            const RunMetrics &ss = results[i];
            const RunMetrics &cmp =
                results[nWorkloads * (p + 1) + i];
            const double improvement = cmp.ipc / ss.ipc - 1.0;
            sum += improvement;
            avgRemoved[p] += cmp.removedFraction;
            anyWrong[p] |= !ss.outputCorrect || !cmp.outputCorrect;
            table.addRow({workloads[i].name, Table::fixed(ss.ipc),
                          Table::fixed(cmp.ipc),
                          Table::percent(improvement),
                          Table::percent(cmp.removedFraction),
                          ss.outputCorrect && cmp.outputCorrect
                              ? "yes"
                              : "NO"});
        }
        avgImprovement[p] = sum / nWorkloads;
        avgRemoved[p] /= nWorkloads;
        table.addRow({"average", "", "",
                      Table::percent(avgImprovement[p]),
                      Table::percent(avgRemoved[p]), ""});
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "---- policy summary (average over "
              << nWorkloads << " workloads) ----\n";
    Table summary(
        {"policy", "avg improvement", "avg removed", "output ok"});
    for (size_t p = 0; p < kNumAStreamPolicies; ++p) {
        summary.addRow({aStreamPolicyName(AStreamPolicyKind(p)),
                        Table::percent(avgImprovement[p]),
                        Table::percent(avgRemoved[p]),
                        anyWrong[p] ? "NO" : "yes"});
    }
    summary.print(std::cout);
    return 0;
}
