/**
 * Reproduces Figure 6 — percent IPC improvement of the CMP(2x64x4)
 * slipstream processor over SS(64x4), per benchmark.
 *
 * Paper's shape: average ~7%; m88ksim ~20%, perl ~16%, li/vortex ~7%,
 * gcc ~4%, compress/go/jpeg ~0%. The shape to check: the highly
 * branch-predictable, ineffectual-write-rich benchmarks win; the
 * data-dependent ones do not.
 */

#include "bench/bench_timing.hh"
#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace slip;
    for (int i = 1; i < argc; ++i) {
        if (!bench::applyTraceArg(argv[i])) {
            std::cerr << "usage: " << argv[0]
                      << " [--trace[=categories]]\n";
            return 2;
        }
    }
    bench::banner("Figure 6: slipstream speedup over SS(64x4)",
                  "% IPC improvement of CMP(2x64x4); paper avg ~7%");

    const std::vector<Workload> workloads =
        allWorkloads(bench::benchSize());

    SimJobRunner runner;
    bench::Timing timing("fig6", runner.jobs());
    for (const Workload &w : workloads) {
        const ProgramCache::Entry &e =
            ProgramCache::global().get(w.name, bench::benchSize());
        const std::string name = w.name;
        runner.add([&e, name] {
            obs::TrialTrace scope("fig6_" + name + "_ss");
            return runSS(e.program, ss64x4Params(), "SS(64x4)",
                         e.golden);
        });
        runner.add([&e, name] {
            obs::TrialTrace scope("fig6_" + name + "_cmp");
            return runSlipstream(e.program, cmp2x64x4Params(),
                                 e.golden);
        });
    }
    const std::vector<RunMetrics> results = runner.run();

    Table table({"benchmark", "SS(64x4) IPC", "CMP(2x64x4) IPC",
                 "improvement", "removed", "output ok"});
    double sum = 0.0;
    unsigned count = 0;
    for (size_t i = 0; i < workloads.size(); ++i) {
        const RunMetrics &ss = results[2 * i];
        const RunMetrics &cmp = results[2 * i + 1];
        timing.addCycles(ss.cycles + cmp.cycles);
        const double improvement = cmp.ipc / ss.ipc - 1.0;
        sum += improvement;
        ++count;
        table.addRow({workloads[i].name, Table::fixed(ss.ipc),
                      Table::fixed(cmp.ipc),
                      Table::percent(improvement),
                      Table::percent(cmp.removedFraction),
                      ss.outputCorrect && cmp.outputCorrect ? "yes"
                                                            : "NO"});
    }
    table.addRow({"average", "", "", Table::percent(sum / count), "",
                  ""});
    table.print(std::cout);
    return 0;
}
