/**
 * Reproduces Figure 6 — percent IPC improvement of the CMP(2x64x4)
 * slipstream processor over SS(64x4), per benchmark.
 *
 * Paper's shape: average ~7%; m88ksim ~20%, perl ~16%, li/vortex ~7%,
 * gcc ~4%, compress/go/jpeg ~0%. The shape to check: the highly
 * branch-predictable, ineffectual-write-rich benchmarks win; the
 * data-dependent ones do not.
 */

#include "assembler/assembler.hh"
#include "bench_common.hh"

int
main()
{
    using namespace slip;
    bench::banner("Figure 6: slipstream speedup over SS(64x4)",
                  "% IPC improvement of CMP(2x64x4); paper avg ~7%");

    Table table({"benchmark", "SS(64x4) IPC", "CMP(2x64x4) IPC",
                 "improvement", "removed", "output ok"});
    double geo = 0.0;
    unsigned count = 0;

    for (const Workload &w : allWorkloads(bench::benchSize())) {
        const Program p = assemble(w.source);
        const std::string want = goldenOutput(p);
        const RunMetrics ss =
            runSS(p, ss64x4Params(), "SS(64x4)", want);
        const RunMetrics cmp = runSlipstream(p, cmp2x64x4Params(), want);
        const double improvement = cmp.ipc / ss.ipc - 1.0;
        geo += improvement;
        ++count;
        table.addRow({w.name, Table::fixed(ss.ipc),
                      Table::fixed(cmp.ipc),
                      Table::percent(improvement),
                      Table::percent(cmp.removedFraction),
                      ss.outputCorrect && cmp.outputCorrect ? "yes"
                                                            : "NO"});
    }
    table.addRow({"average", "", "", Table::percent(geo / count), "",
                  ""});
    table.print(std::cout);
    return 0;
}
