/**
 * Reproduces Table 1 — the benchmark suite and dynamic instruction
 * counts. Our counts are smaller than SPEC95's (hundreds of millions)
 * by design: the substitutes are scaled to run the whole evaluation in
 * minutes while exercising the same code paths.
 */

#include "assembler/assembler.hh"
#include "bench_common.hh"
#include "func/func_sim.hh"

int
main()
{
    using namespace slip;
    bench::banner("Table 1: Benchmarks",
                  "SPEC95 integer suite, instruction counts "
                  "(substituted workloads; see DESIGN.md)");

    Table table({"benchmark", "substitutes for", "instr. count",
                 "output bytes"});
    for (const Workload &w : allWorkloads(bench::benchSize())) {
        const Program p = assemble(w.source);
        FuncSim sim(p);
        const FuncRunResult r = sim.run();
        if (!r.halted)
            SLIP_FATAL(w.name, " did not halt");
        table.addRow({w.name, w.substitutes, Table::count(r.instCount),
                      Table::count(r.output.size())});
    }
    table.print(std::cout);
    return 0;
}
