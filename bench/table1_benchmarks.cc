/**
 * Reproduces Table 1 — the benchmark suite and dynamic instruction
 * counts. Our counts are smaller than SPEC95's (hundreds of millions)
 * by design: the substitutes are scaled to run the whole evaluation in
 * minutes while exercising the same code paths.
 */

#include "bench/bench_timing.hh"
#include "bench_common.hh"

int
main()
{
    using namespace slip;
    bench::banner("Table 1: Benchmarks",
                  "SPEC95 integer suite, instruction counts "
                  "(substituted workloads; see DESIGN.md)");

    const std::vector<Workload> workloads =
        allWorkloads(bench::benchSize());

    // Each job populates one ProgramCache entry (assembly + golden
    // functional run) so the workloads assemble and execute in
    // parallel; the counts are read off the shared entries.
    SimJobRunner runner;
    bench::Timing timing("table1", runner.jobs());
    for (const Workload &w : workloads) {
        const std::string name = w.name;
        runner.add([name] {
            const ProgramCache::Entry &e =
                ProgramCache::global().get(name, bench::benchSize());
            RunMetrics m;
            m.retired = e.goldenInstCount;
            m.outputBytes = e.golden.size();
            return m;
        });
    }
    const std::vector<RunMetrics> results = runner.run();

    Table table({"benchmark", "substitutes for", "instr. count",
                 "output bytes"});
    for (size_t i = 0; i < workloads.size(); ++i) {
        table.addRow({workloads[i].name, workloads[i].substitutes,
                      Table::count(results[i].retired),
                      Table::count(results[i].outputBytes)});
    }
    table.print(std::cout);
    return 0;
}
