/**
 * Operating-mode comparison (paper §1 and §7: the same CMP can run in
 * throughput mode, single-program slipstream mode, or a fully reliable
 * AR-SMT-style mode).
 *
 * Measures, per benchmark:
 *   - SS(64x4): one program, one core — the no-redundancy baseline;
 *   - reliable CMP (removal disabled): full dual-execution fault
 *     coverage; the delay buffer still feeds the R-stream perfect
 *     predictions, so the overhead vs the baseline quantifies
 *     AR-SMT's "time redundancy at low performance cost";
 *   - slipstream CMP: partial redundancy traded for speed.
 */

#include "assembler/assembler.hh"
#include "bench_common.hh"

int
main()
{
    using namespace slip;
    bench::banner("Operating modes: reliability vs performance",
                  "SS baseline vs reliable (AR-SMT) vs slipstream");

    Table table({"benchmark", "SS IPC", "reliable IPC", "vs SS",
                 "slipstream IPC", "vs SS", "coverage"});
    for (const Workload &w : allWorkloads(bench::benchSize())) {
        const Program p = assemble(w.source);
        const std::string want = goldenOutput(p);
        const RunMetrics ss =
            runSS(p, ss64x4Params(), "SS(64x4)", want);

        SlipstreamParams reliableParams = cmp2x64x4Params();
        reliableParams.irPred.enabled = false;
        const RunMetrics rel = runSlipstream(p, reliableParams, want);

        const RunMetrics slip =
            runSlipstream(p, cmp2x64x4Params(), want);

        if (!ss.outputCorrect || !rel.outputCorrect ||
            !slip.outputCorrect) {
            SLIP_FATAL(w.name, ": output mismatch");
        }

        table.addRow(
            {w.name, Table::fixed(ss.ipc), Table::fixed(rel.ipc),
             Table::percent(rel.ipc / ss.ipc - 1.0),
             Table::fixed(slip.ipc),
             Table::percent(slip.ipc / ss.ipc - 1.0),
             Table::percent(1.0 - slip.removedFraction) + " redundant"});
    }
    table.print(std::cout);
    std::cout << "\nreliable mode executes every instruction twice "
                 "(full scenario-#1 fault coverage);\nslipstream mode "
                 "trades the removed fraction of that redundancy for "
                 "speed.\n";
    return 0;
}
