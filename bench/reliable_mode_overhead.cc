/**
 * Operating-mode comparison (paper §1 and §7: the same CMP can run in
 * throughput mode, single-program slipstream mode, or a fully reliable
 * AR-SMT-style mode).
 *
 * Measures, per benchmark:
 *   - SS(64x4): one program, one core — the no-redundancy baseline;
 *   - reliable CMP (removal disabled): full dual-execution fault
 *     coverage; the delay buffer still feeds the R-stream perfect
 *     predictions, so the overhead vs the baseline quantifies
 *     AR-SMT's "time redundancy at low performance cost";
 *   - slipstream CMP: partial redundancy traded for speed.
 */

#include "bench/bench_timing.hh"
#include "bench_common.hh"

int
main()
{
    using namespace slip;
    bench::banner("Operating modes: reliability vs performance",
                  "SS baseline vs reliable (AR-SMT) vs slipstream");

    const std::vector<Workload> workloads =
        allWorkloads(bench::benchSize());

    SimJobRunner runner;
    bench::Timing timing("reliable_mode_overhead", runner.jobs());
    for (const Workload &w : workloads) {
        const ProgramCache::Entry &e =
            ProgramCache::global().get(w.name, bench::benchSize());
        runner.add([&e] {
            return runSS(e.program, ss64x4Params(), "SS(64x4)",
                         e.golden);
        });
        runner.add([&e] {
            SlipstreamParams params = cmp2x64x4Params();
            params.irPred.enabled = false;
            return runSlipstream(e.program, params, e.golden);
        });
        runner.add([&e] {
            return runSlipstream(e.program, cmp2x64x4Params(),
                                 e.golden);
        });
    }
    const std::vector<RunMetrics> results = runner.run();

    Table table({"benchmark", "SS IPC", "reliable IPC", "vs SS",
                 "slipstream IPC", "vs SS", "coverage"});
    for (size_t i = 0; i < workloads.size(); ++i) {
        const RunMetrics &ss = results[3 * i];
        const RunMetrics &rel = results[3 * i + 1];
        const RunMetrics &slip = results[3 * i + 2];
        timing.addCycles(ss.cycles + rel.cycles + slip.cycles);

        if (!ss.outputCorrect || !rel.outputCorrect ||
            !slip.outputCorrect) {
            SLIP_FATAL(workloads[i].name, ": output mismatch");
        }

        table.addRow(
            {workloads[i].name, Table::fixed(ss.ipc),
             Table::fixed(rel.ipc),
             Table::percent(rel.ipc / ss.ipc - 1.0),
             Table::fixed(slip.ipc),
             Table::percent(slip.ipc / ss.ipc - 1.0),
             Table::percent(1.0 - slip.removedFraction) + " redundant"});
    }
    table.print(std::cout);
    std::cout << "\nreliable mode executes every instruction twice "
                 "(full scenario-#1 fault coverage);\nslipstream mode "
                 "trades the removed fraction of that redundancy for "
                 "speed.\n";
    return 0;
}
