/**
 * Ablation: the IR-predictor's resetting-confidence threshold.
 *
 * The paper fixes 32 and reports <0.05 IR-misp/1000 there (§5). This
 * sweep shows the trade: low thresholds remove more instructions but
 * admit IR-mispredictions (full recoveries); high thresholds are safe
 * but leave removal on the table. Run on the two benchmarks that
 * bracket the suite: m88ksim (most removable) and compress (least).
 */

#include "bench/bench_timing.hh"
#include "bench_common.hh"

int
main()
{
    using namespace slip;
    bench::banner("Ablation: confidence threshold sweep",
                  "paper fixes 32 (Table 2); trade-off visualization");

    const std::vector<std::string> names = {"m88ksim", "compress"};
    const std::vector<unsigned> thresholds = {1u,  4u,  8u, 16u,
                                              32u, 64u, 128u};

    SimJobRunner runner;
    bench::Timing timing("ablation_confidence", runner.jobs());
    for (const std::string &name : names) {
        const ProgramCache::Entry &e =
            ProgramCache::global().get(name, bench::benchSize());
        runner.add([&e] {
            return runSS(e.program, ss64x4Params(), "SS(64x4)",
                         e.golden);
        });
        for (unsigned threshold : thresholds) {
            runner.add([&e, threshold] {
                SlipstreamParams params = cmp2x64x4Params();
                params.irPred.confidenceThreshold = threshold;
                return runSlipstream(e.program, params, e.golden);
            });
        }
    }
    const std::vector<RunMetrics> results = runner.run();

    const size_t stride = 1 + thresholds.size();
    for (size_t i = 0; i < names.size(); ++i) {
        const RunMetrics &base = results[i * stride];
        timing.addCycles(base.cycles);
        std::cout << "---- " << names[i] << " (SS IPC "
                  << Table::fixed(base.ipc) << ") ----\n";
        Table table({"threshold", "IPC", "vs SS", "removed",
                     "IR-misp/1k", "avg penalty"});
        for (size_t k = 0; k < thresholds.size(); ++k) {
            const RunMetrics &m = results[i * stride + 1 + k];
            timing.addCycles(m.cycles);
            if (!m.outputCorrect)
                SLIP_FATAL(names[i], ": output mismatch at threshold ",
                           thresholds[k]);
            table.addRow({Table::count(thresholds[k]),
                          Table::fixed(m.ipc),
                          Table::percent(m.ipc / base.ipc - 1.0),
                          Table::percent(m.removedFraction),
                          Table::fixed(m.irMispPer1000, 3),
                          m.recoveries ? Table::fixed(m.avgIRPenalty, 1)
                                       : "-"});
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
