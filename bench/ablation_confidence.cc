/**
 * Ablation: the IR-predictor's resetting-confidence threshold.
 *
 * The paper fixes 32 and reports <0.05 IR-misp/1000 there (§5). This
 * sweep shows the trade: low thresholds remove more instructions but
 * admit IR-mispredictions (full recoveries); high thresholds are safe
 * but leave removal on the table. Run on the two benchmarks that
 * bracket the suite: m88ksim (most removable) and compress (least).
 */

#include "assembler/assembler.hh"
#include "bench_common.hh"

int
main()
{
    using namespace slip;
    bench::banner("Ablation: confidence threshold sweep",
                  "paper fixes 32 (Table 2); trade-off visualization");

    for (const char *name : {"m88ksim", "compress"}) {
        const Workload w = getWorkload(name, bench::benchSize());
        const Program p = assemble(w.source);
        const std::string want = goldenOutput(p);
        const RunMetrics base =
            runSS(p, ss64x4Params(), "SS(64x4)", want);

        std::cout << "---- " << name << " (SS IPC "
                  << Table::fixed(base.ipc) << ") ----\n";
        Table table({"threshold", "IPC", "vs SS", "removed",
                     "IR-misp/1k", "avg penalty"});
        for (unsigned threshold : {1u, 4u, 8u, 16u, 32u, 64u, 128u}) {
            SlipstreamParams params = cmp2x64x4Params();
            params.irPred.confidenceThreshold = threshold;
            const RunMetrics m = runSlipstream(p, params, want);
            if (!m.outputCorrect)
                SLIP_FATAL(name, ": output mismatch at threshold ",
                           threshold);
            table.addRow({Table::count(threshold), Table::fixed(m.ipc),
                          Table::percent(m.ipc / base.ipc - 1.0),
                          Table::percent(m.removedFraction),
                          Table::fixed(m.irMispPer1000, 3),
                          m.recoveries ? Table::fixed(m.avgIRPenalty, 1)
                                       : "-"});
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
