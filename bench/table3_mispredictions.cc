/**
 * Reproduces Table 3 — misprediction measurements:
 *   - SS(64x4) IPC (the baseline the paper's figures normalize to)
 *   - branch mispredictions per 1000 instructions, SS vs slipstream
 *     (the slipstream predictor trains with update latency, so rates
 *     shift slightly)
 *   - IR-mispredictions per 1000 instructions (paper: < 0.05 at the
 *     confidence threshold of 32)
 *   - average IR-misprediction penalty (paper: 22-26 cycles, close
 *     to the 21-cycle minimum).
 */

#include "bench/bench_timing.hh"
#include "bench_common.hh"

int
main()
{
    using namespace slip;
    bench::banner("Table 3: misprediction measurements",
                  "branch misp/1000, IR-misp/1000, IR penalty");

    const std::vector<Workload> workloads =
        allWorkloads(bench::benchSize());

    SimJobRunner runner;
    bench::Timing timing("table3", runner.jobs());
    for (const Workload &w : workloads) {
        const ProgramCache::Entry &e =
            ProgramCache::global().get(w.name, bench::benchSize());
        runner.add([&e] {
            return runSS(e.program, ss64x4Params(), "SS(64x4)",
                         e.golden);
        });
        runner.add([&e] {
            return runSlipstream(e.program, cmp2x64x4Params(),
                                 e.golden);
        });
    }
    const std::vector<RunMetrics> results = runner.run();

    Table table({"benchmark", "SS IPC", "SS misp/1k", "CMP misp/1k",
                 "IR-misp/1k", "avg IR penalty"});
    for (size_t i = 0; i < workloads.size(); ++i) {
        const RunMetrics &ss = results[2 * i];
        const RunMetrics &cmp = results[2 * i + 1];
        timing.addCycles(ss.cycles + cmp.cycles);
        if (!ss.outputCorrect || !cmp.outputCorrect)
            SLIP_FATAL(workloads[i].name, ": output mismatch");
        table.addRow({workloads[i].name, Table::fixed(ss.ipc),
                      Table::fixed(ss.branchMispPer1000, 1),
                      Table::fixed(cmp.branchMispPer1000, 1),
                      Table::fixed(cmp.irMispPer1000, 3),
                      cmp.recoveries
                          ? Table::fixed(cmp.avgIRPenalty, 1)
                          : "-"});
    }
    table.print(std::cout);
    return 0;
}
