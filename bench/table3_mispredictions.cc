/**
 * Reproduces Table 3 — misprediction measurements:
 *   - SS(64x4) IPC (the baseline the paper's figures normalize to)
 *   - branch mispredictions per 1000 instructions, SS vs slipstream
 *     (the slipstream predictor trains with update latency, so rates
 *     shift slightly)
 *   - IR-mispredictions per 1000 instructions (paper: < 0.05 at the
 *     confidence threshold of 32)
 *   - average IR-misprediction penalty (paper: 22-26 cycles, close
 *     to the 21-cycle minimum).
 */

#include "assembler/assembler.hh"
#include "bench_common.hh"

int
main()
{
    using namespace slip;
    bench::banner("Table 3: misprediction measurements",
                  "branch misp/1000, IR-misp/1000, IR penalty");

    Table table({"benchmark", "SS IPC", "SS misp/1k", "CMP misp/1k",
                 "IR-misp/1k", "avg IR penalty"});
    for (const Workload &w : allWorkloads(bench::benchSize())) {
        const Program p = assemble(w.source);
        const std::string want = goldenOutput(p);
        const RunMetrics ss =
            runSS(p, ss64x4Params(), "SS(64x4)", want);
        const RunMetrics cmp = runSlipstream(p, cmp2x64x4Params(), want);
        if (!ss.outputCorrect || !cmp.outputCorrect)
            SLIP_FATAL(w.name, ": output mismatch");
        table.addRow({w.name, Table::fixed(ss.ipc),
                      Table::fixed(ss.branchMispPer1000, 1),
                      Table::fixed(cmp.branchMispPer1000, 1),
                      Table::fixed(cmp.irMispPer1000, 3),
                      cmp.recoveries
                          ? Table::fixed(cmp.avgIRPenalty, 1)
                          : "-"});
    }
    table.print(std::cout);
    return 0;
}
