/**
 * @file
 * Wall-clock timing for the bench binaries, with a machine-readable
 * trail: each Timing object measures its own lifetime and, on
 * destruction, appends a record to results/bench_perf.json
 * (override the path with $SLIPSTREAM_PERF_JSON):
 *
 *   {"artifact": "fig6", "jobs": 8, "seconds": 12.3,
 *    "simulated_cycles": 123456789, "cycles_per_sec": 1.0e7}
 *
 * The file holds a JSON array, one record per bench invocation, so
 * successive runs (e.g. SLIPSTREAM_JOBS=1 vs =N) can be compared by
 * any JSON consumer. Recording is best-effort and never throws.
 */

#ifndef SLIPSTREAM_BENCH_BENCH_TIMING_HH
#define SLIPSTREAM_BENCH_BENCH_TIMING_HH

#include <chrono>
#include <cstdint>
#include <string>

namespace slip::bench
{

class Timing
{
  public:
    /** Starts the clock. `jobs` is recorded verbatim. */
    Timing(std::string artifact, unsigned jobs);

    /** Stops the clock and appends the JSON record. */
    ~Timing();

    Timing(const Timing &) = delete;
    Timing &operator=(const Timing &) = delete;

    /** Accumulate simulated cycles covered by this timing window. */
    void addCycles(uint64_t cycles) { cycles_ += cycles; }

    /** Seconds elapsed since construction. */
    double elapsedSeconds() const;

  private:
    std::string artifact_;
    unsigned jobs_;
    uint64_t cycles_ = 0;
    std::chrono::steady_clock::time_point start_;
};

} // namespace slip::bench

#endif // SLIPSTREAM_BENCH_BENCH_TIMING_HH
