/**
 * Component microbenchmarks (google-benchmark): throughput of the
 * hot structures — trace predictor lookup/update, IR-detector trace
 * merging, cache access, the assembler, and the functional simulator.
 * These guard the *simulator's* own performance (host MIPS), which
 * bounds how large the paper-scale experiments can be.
 */

#include <benchmark/benchmark.h>

#include "assembler/assembler.hh"
#include "func/func_sim.hh"
#include "mem/cache.hh"
#include "slipstream/ir_detector.hh"
#include "slipstream/ir_predictor.hh"
#include "uarch/trace_pred.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace slip;

void
BM_TracePredictorLookup(benchmark::State &state)
{
    TracePredictor pred;
    PathHistory h;
    TraceId ids[16];
    for (unsigned i = 0; i < 16; ++i) {
        ids[i] = TraceId{0x1000 + i * 0x80, i, 4, 16};
        pred.update(h, ids[i]);
        h.push(ids[i]);
    }
    uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pred.predict(h));
        h.push(ids[i++ & 15]);
    }
}
BENCHMARK(BM_TracePredictorLookup);

void
BM_TracePredictorUpdate(benchmark::State &state)
{
    TracePredictor pred;
    PathHistory h;
    uint64_t i = 0;
    for (auto _ : state) {
        const TraceId id{0x1000 + (i & 255) * 4, i & 7, 3, 16};
        pred.update(h, id);
        h.push(id);
        ++i;
    }
}
BENCHMARK(BM_TracePredictorUpdate);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(CacheParams{"bench", 64 * 1024, 4, 64, 1, 12});
    uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr));
        addr = (addr + 4096 + 64) & 0xfffff;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_IRPredictorUpdate(benchmark::State &state)
{
    IRPredictor pred;
    PathHistory h;
    RemovalPlan plan;
    plan.irVec = 0x5555;
    plan.reasons.assign(16, reason::kBR);
    uint64_t i = 0;
    for (auto _ : state) {
        const TraceId id{0x1000 + (i & 63) * 4, 0, 0, 16};
        pred.update(h, id, plan);
        ++i;
    }
}
BENCHMARK(BM_IRPredictorUpdate);

void
BM_Assembler(benchmark::State &state)
{
    const std::string src =
        getWorkload("m88ksim", WorkloadSize::Test).source;
    for (auto _ : state) {
        benchmark::DoNotOptimize(assemble(src));
    }
    state.SetLabel("m88ksim workload source");
}
BENCHMARK(BM_Assembler);

void
BM_FunctionalSimMips(benchmark::State &state)
{
    const Program p =
        assemble(getWorkload("jpeg", WorkloadSize::Test).source);
    uint64_t insts = 0;
    for (auto _ : state) {
        FuncSim sim(p);
        insts += sim.run().instCount;
    }
    state.counters["insts/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalSimMips);

} // namespace
