/**
 * Component microbenchmarks (google-benchmark): throughput of the
 * hot structures — trace predictor lookup/update, IR-detector trace
 * merging, cache access, the assembler, and the functional simulator.
 * These guard the *simulator's* own performance (host MIPS), which
 * bounds how large the paper-scale experiments can be.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "assembler/assembler.hh"
#include "func/exec_engine.hh"
#include "func/func_sim.hh"
#include "mem/memory.hh"
#include "mem/cache.hh"
#include "slipstream/ir_detector.hh"
#include "slipstream/ir_predictor.hh"
#include "uarch/trace_pred.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace slip;

void
BM_TracePredictorLookup(benchmark::State &state)
{
    TracePredictor pred;
    PathHistory h;
    TraceId ids[16];
    for (unsigned i = 0; i < 16; ++i) {
        ids[i] = TraceId{0x1000 + i * 0x80, i, 4, 16};
        pred.update(h, ids[i]);
        h.push(ids[i]);
    }
    uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pred.predict(h));
        h.push(ids[i++ & 15]);
    }
}
BENCHMARK(BM_TracePredictorLookup);

void
BM_TracePredictorUpdate(benchmark::State &state)
{
    TracePredictor pred;
    PathHistory h;
    uint64_t i = 0;
    for (auto _ : state) {
        const TraceId id{0x1000 + (i & 255) * 4, i & 7, 3, 16};
        pred.update(h, id);
        h.push(id);
        ++i;
    }
}
BENCHMARK(BM_TracePredictorUpdate);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(CacheParams{"bench", 64 * 1024, 4, 64, 1, 12});
    uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr));
        addr = (addr + 4096 + 64) & 0xfffff;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_IRPredictorUpdate(benchmark::State &state)
{
    IRPredictor pred;
    PathHistory h;
    RemovalPlan plan;
    plan.irVec = 0x5555;
    plan.reasons.assign(16, reason::kBR);
    uint64_t i = 0;
    for (auto _ : state) {
        const TraceId id{0x1000 + (i & 63) * 4, 0, 0, 16};
        pred.update(h, id, plan);
        ++i;
    }
}
BENCHMARK(BM_IRPredictorUpdate);

void
BM_Assembler(benchmark::State &state)
{
    const std::string src =
        getWorkload("m88ksim", WorkloadSize::Test).source;
    for (auto _ : state) {
        benchmark::DoNotOptimize(assemble(src));
    }
    state.SetLabel("m88ksim workload source");
}
BENCHMARK(BM_Assembler);

void
BM_FunctionalSimMips(benchmark::State &state)
{
    const Program p =
        assemble(getWorkload("jpeg", WorkloadSize::Test).source);
    uint64_t insts = 0;
    for (auto _ : state) {
        FuncSim sim(p);
        insts += sim.run().instCount;
    }
    state.counters["insts/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalSimMips);

// Same workload pinned to each dispatch engine, so the regression
// gate can track the threaded/legacy speedup ratio (machine-portable,
// unlike raw insts/s).
void
BM_FunctionalSimDispatch(benchmark::State &state, DispatchKind kind)
{
    if (kind == DispatchKind::Threaded && !threadedDispatchCompiled()) {
        state.SkipWithError("threaded dispatch not compiled in");
        return;
    }
    const Program p =
        assemble(getWorkload("jpeg", WorkloadSize::Test).source);
    uint64_t insts = 0;
    for (auto _ : state) {
        FuncSim sim(p);
        sim.setDispatch(kind);
        insts += sim.run().instCount;
    }
    state.counters["insts/s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_FunctionalSimDispatch, legacy,
                  DispatchKind::Legacy);
BENCHMARK_CAPTURE(BM_FunctionalSimDispatch, switch_,
                  DispatchKind::Switch);
BENCHMARK_CAPTURE(BM_FunctionalSimDispatch, threaded,
                  DispatchKind::Threaded);

// Same-page accesses — the single-lookup memcpy fast path.
void
BM_MemorySamePageAccess(benchmark::State &state)
{
    Memory mem;
    mem.write(0x1000, 8, 1);
    Addr a = 0x1000;
    for (auto _ : state) {
        mem.write(a, 8, a);
        benchmark::DoNotOptimize(mem.read(a, 8));
        a = 0x1000 + ((a + 8) & 0xff8);
    }
}
BENCHMARK(BM_MemorySamePageAccess);

// Page-straddling accesses — the per-byte fallback path.
void
BM_MemoryPageCrossAccess(benchmark::State &state)
{
    Memory mem;
    const Addr edge = 2 * Memory::kPageBytes - 4;
    mem.write(edge, 8, 1);
    for (auto _ : state) {
        mem.write(edge, 8, edge);
        benchmark::DoNotOptimize(mem.read(edge, 8));
    }
}
BENCHMARK(BM_MemoryPageCrossAccess);

void
BM_MemoryReadBlock(benchmark::State &state)
{
    Memory mem;
    std::vector<uint8_t> image(64 * 1024, 0xa5);
    mem.writeBlock(0x100000, image.data(), image.size());
    std::vector<uint8_t> out(image.size());
    for (auto _ : state) {
        mem.readBlock(0x100000, out.data(), out.size());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            int64_t(out.size()));
}
BENCHMARK(BM_MemoryReadBlock);

} // namespace
