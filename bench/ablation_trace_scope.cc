/**
 * Ablation: trace length, IR-detector scope, and trace selection.
 *
 * §2.1.3 discusses how trace-based removal limits effectiveness:
 * confidence is per-trace and back-propagation is confined to one
 * trace, so the trace length and the detector's kill scope shape how
 * much is removable. This sweep also toggles the backward-taken
 * trace-boundary heuristic (which keeps loop traces phase-aligned)
 * and the history-vs-trace-id keying of removal confidence.
 */

#include "bench/bench_timing.hh"
#include "bench_common.hh"

int
main()
{
    using namespace slip;
    bench::banner("Ablation: trace length / detector scope / keying",
                  "paper: length-32 traces, 8-trace scope (Table 2)");

    const std::vector<unsigned> lengths = {8u, 16u, 32u, 64u};
    const std::vector<unsigned> scopes = {1u, 2u, 4u, 8u, 16u};
    const std::vector<std::string> variantNames = {
        "paper (history-keyed, loop-aligned)",
        "no backward-taken trace ends",
        "confidence keyed by trace id",
    };

    const ProgramCache::Entry &e =
        ProgramCache::global().get("m88ksim", bench::benchSize());

    SimJobRunner runner;
    bench::Timing timing("ablation_trace_scope", runner.jobs());
    runner.add([&e] {
        return runSS(e.program, ss64x4Params(), "SS(64x4)", e.golden);
    });
    for (unsigned len : lengths) {
        runner.add([&e, len] {
            SlipstreamParams params = cmp2x64x4Params();
            params.tracePolicy.maxLen = len;
            return runSlipstream(e.program, params, e.golden);
        });
    }
    for (unsigned scope : scopes) {
        runner.add([&e, scope] {
            SlipstreamParams params = cmp2x64x4Params();
            params.detector.scopeTraces = scope;
            return runSlipstream(e.program, params, e.golden);
        });
    }
    for (int variant = 0; variant < 3; ++variant) {
        runner.add([&e, variant] {
            SlipstreamParams params = cmp2x64x4Params();
            if (variant == 1)
                params.tracePolicy.endAtBackwardTaken = false;
            else if (variant == 2)
                params.irPred.keyByTraceId = true;
            return runSlipstream(e.program, params, e.golden);
        });
    }
    const std::vector<RunMetrics> results = runner.run();
    for (const RunMetrics &m : results)
        timing.addCycles(m.cycles);

    const RunMetrics &base = results[0];
    std::cout << "m88ksim, SS(64x4) IPC " << Table::fixed(base.ipc)
              << "\n\n";
    size_t next = 1;

    {
        Table table({"trace length", "IPC", "vs SS", "removed"});
        for (unsigned len : lengths) {
            const RunMetrics &m = results[next++];
            if (!m.outputCorrect)
                SLIP_FATAL("mismatch at length ", len);
            table.addRow({Table::count(len), Table::fixed(m.ipc),
                          Table::percent(m.ipc / base.ipc - 1.0),
                          Table::percent(m.removedFraction)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    {
        Table table({"detector scope", "IPC", "removed", "IR-misp/1k"});
        for (unsigned scope : scopes) {
            const RunMetrics &m = results[next++];
            if (!m.outputCorrect)
                SLIP_FATAL("mismatch at scope ", scope);
            table.addRow({Table::count(scope), Table::fixed(m.ipc),
                          Table::percent(m.removedFraction),
                          Table::fixed(m.irMispPer1000, 3)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    {
        Table table({"variant", "IPC", "removed", "IR-misp/1k"});
        for (size_t variant = 0; variant < variantNames.size();
             ++variant) {
            const RunMetrics &m = results[next++];
            if (!m.outputCorrect)
                SLIP_FATAL("mismatch in variant ", variant);
            table.addRow({variantNames[variant], Table::fixed(m.ipc),
                          Table::percent(m.removedFraction),
                          Table::fixed(m.irMispPer1000, 3)});
        }
        table.print(std::cout);
    }
    return 0;
}
