/**
 * Ablation: trace length, IR-detector scope, and trace selection.
 *
 * §2.1.3 discusses how trace-based removal limits effectiveness:
 * confidence is per-trace and back-propagation is confined to one
 * trace, so the trace length and the detector's kill scope shape how
 * much is removable. This sweep also toggles the backward-taken
 * trace-boundary heuristic (which keeps loop traces phase-aligned)
 * and the history-vs-trace-id keying of removal confidence.
 */

#include "assembler/assembler.hh"
#include "bench_common.hh"

int
main()
{
    using namespace slip;
    bench::banner("Ablation: trace length / detector scope / keying",
                  "paper: length-32 traces, 8-trace scope (Table 2)");

    const Workload w = getWorkload("m88ksim", bench::benchSize());
    const Program p = assemble(w.source);
    const std::string want = goldenOutput(p);
    const RunMetrics base = runSS(p, ss64x4Params(), "SS(64x4)", want);
    std::cout << "m88ksim, SS(64x4) IPC " << Table::fixed(base.ipc)
              << "\n\n";

    {
        Table table({"trace length", "IPC", "vs SS", "removed"});
        for (unsigned len : {8u, 16u, 32u, 64u}) {
            SlipstreamParams params = cmp2x64x4Params();
            params.tracePolicy.maxLen = len;
            const RunMetrics m = runSlipstream(p, params, want);
            if (!m.outputCorrect)
                SLIP_FATAL("mismatch at length ", len);
            table.addRow({Table::count(len), Table::fixed(m.ipc),
                          Table::percent(m.ipc / base.ipc - 1.0),
                          Table::percent(m.removedFraction)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    {
        Table table({"detector scope", "IPC", "removed", "IR-misp/1k"});
        for (unsigned scope : {1u, 2u, 4u, 8u, 16u}) {
            SlipstreamParams params = cmp2x64x4Params();
            params.detector.scopeTraces = scope;
            const RunMetrics m = runSlipstream(p, params, want);
            if (!m.outputCorrect)
                SLIP_FATAL("mismatch at scope ", scope);
            table.addRow({Table::count(scope), Table::fixed(m.ipc),
                          Table::percent(m.removedFraction),
                          Table::fixed(m.irMispPer1000, 3)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    {
        Table table({"variant", "IPC", "removed", "IR-misp/1k"});
        for (int variant = 0; variant < 3; ++variant) {
            SlipstreamParams params = cmp2x64x4Params();
            std::string name;
            switch (variant) {
              case 0:
                name = "paper (history-keyed, loop-aligned)";
                break;
              case 1:
                name = "no backward-taken trace ends";
                params.tracePolicy.endAtBackwardTaken = false;
                break;
              default:
                name = "confidence keyed by trace id";
                params.irPred.keyByTraceId = true;
                break;
            }
            const RunMetrics m = runSlipstream(p, params, want);
            if (!m.outputCorrect)
                SLIP_FATAL("mismatch in variant ", variant);
            table.addRow({name, Table::fixed(m.ipc),
                          Table::percent(m.removedFraction),
                          Table::fixed(m.irMispPer1000, 3)});
        }
        table.print(std::cout);
    }
    return 0;
}
