/**
 * Detection-backend shootout: the same multi-target fault campaign
 * (all 8 injector targets, all benchmarks) run three times, once per
 * detection architecture —
 *
 *   slipstream  the paper's native delay-buffer comparison
 *   replay      RepTFD-style windowed functional re-execution
 *   checker     MEEK-style bandwidth-limited in-order checker core
 *
 * — and condensed into a three-way coverage / detection-latency /
 * overhead table none of the source papers prints. Campaigns run on
 * the deterministic FaultCampaign runner: identical trial plans per
 * backend (same seed), byte-identical reports for any SLIPSTREAM_JOBS
 * and isolation mode, resumable with --resume from the trial journal
 * (results/detect_shootout.journal.jsonl).
 *
 * Outputs: results/detect_shootout.json (machine-readable report) and
 * results/detect_shootout_table.txt (the rendered table), plus the
 * table on stdout. tools/detect_report re-renders the table from the
 * JSON offline.
 */

#include "bench/bench_timing.hh"
#include "bench_common.hh"
#include "harness/fault_campaign.hh"
#include "harness/shootout.hh"

namespace
{

using namespace slip;

constexpr const char *kJournal =
    "results/detect_shootout.journal.jsonl";
constexpr const char *kReport = "results/detect_shootout.json";
constexpr const char *kTable = "results/detect_shootout_table.txt";

} // namespace

int
main(int argc, char **argv)
{
    using namespace slip;

    bool resume = false;
    IsolationMode isolation = isolationFromEnv();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::string isoPrefix = "--isolation=";
        if (arg == "--resume") {
            resume = true;
        } else if (arg.rfind(isoPrefix, 0) == 0) {
            if (!parseIsolationMode(arg.substr(isoPrefix.size()),
                                    isolation)) {
                std::cerr << "bad " << arg << " (want none|fork)\n";
                return 2;
            }
        } else if (!bench::applyTraceArg(arg)) {
            std::cerr << "usage: " << argv[0]
                      << " [--resume] [--isolation=none|fork]"
                         " [--trace[=categories]]\n";
            return 2;
        }
    }
    bench::banner("Detection-backend shootout (slipstream vs. replay "
                  "vs. checker)",
                  "same fault campaign, three detection architectures");
    if (resume)
        std::cout << "(resuming from the trial journal)\n\n";
    if (isolation == IsolationMode::Fork)
        std::cout << "(fork isolation: each trial sandboxed in a "
                     "worker process)\n\n";

    unsigned trials = 32;
    switch (bench::benchSize()) {
      case WorkloadSize::Test:
        trials = 6;
        break;
      case WorkloadSize::Small:
        trials = 32;
        break;
      case WorkloadSize::Default:
        trials = 128;
        break;
    }

    SimJobRunner probe; // job-count reporting only
    bench::Timing timing("detect_shootout", probe.jobs());
    std::vector<std::string> report;
    std::vector<ShootoutRow> rows;

    constexpr DetectBackendKind kBackends[] = {
        DetectBackendKind::Slipstream,
        DetectBackendKind::Replay,
        DetectBackendKind::Checker,
    };
    for (const DetectBackendKind kind : kBackends) {
        const std::string backend = detectBackendName(kind);
        std::cout << "---- " << backend << " backend ----\n";
        FaultCampaignConfig cfg;
        cfg.name = "detect_" + backend;
        cfg.trialsPerWorkload = trials;
        cfg.resume = resume;
        cfg.isolation = isolation;
        cfg.journalPath = kJournal;
        // Identical trial plans per backend (same seed and targets);
        // only the observer differs.
        cfg.params.detect.kind = kind;
        const FaultCampaignResult result = runFaultCampaign(cfg);
        report.push_back(campaignJson(cfg, result));
        rows.push_back(shootoutRow(backend, result.total));

        const CampaignTally &t = result.total;
        std::cout << t.trials << " trials, " << t.faultsInjected
                  << " faults injected, " << t.faultsDetected
                  << " detected; external detections "
                  << t.detectExternal << ", modeled overhead "
                  << t.detectOverhead << " cycles\n\n";
        for (const TrialRecord &trial : result.trials)
            timing.addCycles(trial.cycles);
    }

    writeFaultReport(report, kReport);
    writeShootoutTable(rows, kTable);

    std::cout << renderShootoutTable(rows) << "\n"
              << "report: " << kReport << "\ntable:  " << kTable
              << "\nper-trial journal: " << kJournal
              << " (rerun with --resume after a kill)\n\n"
              << "expected shape: the native backend misses the "
                 "silently-retiring\ntargets (non-redundant R-pipeline"
                 " hits, memory cells) that replay\ncatches; the "
                 "checker catches register corruption but trusts\n"
                 "leader loads (the MemoryCell/ECC hole) — both pay "
                 "a modeled\noverhead the native comparison gets for "
                 "free.\n";
    return 0;
}
