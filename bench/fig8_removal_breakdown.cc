/**
 * Reproduces Figure 8 — the breakdown of A-stream-removed instructions
 * by source: BR (branches), WW (unreferenced writes), SV (same-value
 * writes), and P:{...} (instructions removed by back-propagation,
 * inheriting their consumers' categories).
 *
 * Upper table: all removal triggers enabled (paper: BR 33%, SV 30%,
 * P:BR 27% of removed instructions on average; m88ksim removes nearly
 * half its stream). Lower table: only branches as candidates
 * (paper's counterintuitive result: removal *increases* for most
 * benchmarks because unrelated writes no longer dilute confidence).
 */

#include "assembler/assembler.hh"
#include "bench_common.hh"

namespace
{

using namespace slip;

void
runBreakdown(bool removeWrites, const char *title)
{
    std::cout << "---- " << title << " ----\n";
    Table table({"benchmark", "removed", "BR", "WW", "SV", "P:*",
                 "other"});
    for (const Workload &w : allWorkloads(bench::benchSize())) {
        const Program p = assemble(w.source);
        const std::string want = goldenOutput(p);
        SlipstreamParams params = cmp2x64x4Params();
        params.detector.removeWrites = removeWrites;
        const RunMetrics m = runSlipstream(p, params, want);
        if (!m.outputCorrect)
            SLIP_FATAL(w.name, ": slipstream output mismatch");

        uint64_t br = 0, ww = 0, sv = 0, prop = 0, other = 0;
        uint64_t total = 0;
        for (const auto &[name, count] : m.removedByReason) {
            total += count;
            if (name.rfind("P:", 0) == 0)
                prop += count;
            else if (name == "BR")
                br += count;
            else if (name == "WW" || name == "WW,BR")
                ww += count;
            else if (name.rfind("SV", 0) == 0)
                sv += count;
            else
                other += count;
        }
        const auto frac = [&](uint64_t n) {
            return total ? Table::percent(double(n) / total) : "-";
        };
        table.addRow({w.name, Table::percent(m.removedFraction),
                      frac(br), frac(ww), frac(sv), frac(prop),
                      frac(other)});
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    using namespace slip;
    bench::banner("Figure 8: breakdown of removed A-stream instructions",
                  "removal fraction and source categories");

    runBreakdown(true, "branches and ineffectual writes removed");
    runBreakdown(false, "only branches removed (lower graph)");
    return 0;
}
