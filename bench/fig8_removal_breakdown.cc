/**
 * Reproduces Figure 8 — the breakdown of A-stream-removed instructions
 * by source: BR (branches), WW (unreferenced writes), SV (same-value
 * writes), and P:{...} (instructions removed by back-propagation,
 * inheriting their consumers' categories).
 *
 * Upper table: all removal triggers enabled (paper: BR 33%, SV 30%,
 * P:BR 27% of removed instructions on average; m88ksim removes nearly
 * half its stream). Lower table: only branches as candidates
 * (paper's counterintuitive result: removal *increases* for most
 * benchmarks because unrelated writes no longer dilute confidence).
 *
 * A third grid sweeps the A-stream shortening policies (ir | runahead
 * | filtered | reliability) with all removal triggers enabled. Only
 * the IR-based policies (ir, reliability) remove instructions from
 * the A-stream fetch; the runahead-family policies shorten on the
 * communication side by stripping forwarded values, which lands in
 * the `other` column (stripped slots carry no removal reason).
 */

#include "bench/bench_timing.hh"
#include "bench_common.hh"

namespace
{

using namespace slip;

void
printBreakdown(const std::vector<Workload> &workloads,
               const std::vector<RunMetrics> &results,
               const char *title)
{
    std::cout << "---- " << title << " ----\n";
    Table table({"benchmark", "removed", "BR", "WW", "SV", "P:*",
                 "other"});
    for (size_t i = 0; i < workloads.size(); ++i) {
        const RunMetrics &m = results[i];
        if (!m.outputCorrect)
            SLIP_FATAL(workloads[i].name,
                       ": slipstream output mismatch");

        uint64_t br = 0, ww = 0, sv = 0, prop = 0, other = 0;
        uint64_t total = 0;
        for (const auto &[name, count] : m.removedByReason) {
            total += count;
            if (name.rfind("P:", 0) == 0)
                prop += count;
            else if (name == "BR")
                br += count;
            else if (name == "WW" || name == "WW,BR")
                ww += count;
            else if (name.rfind("SV", 0) == 0)
                sv += count;
            else
                other += count;
        }
        const auto frac = [&](uint64_t n) {
            return total ? Table::percent(double(n) / total) : "-";
        };
        table.addRow({workloads[i].name,
                      Table::percent(m.removedFraction), frac(br),
                      frac(ww), frac(sv), frac(prop), frac(other)});
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    using namespace slip;
    bench::banner("Figure 8: breakdown of removed A-stream instructions",
                  "removal fraction and source categories");

    const std::vector<Workload> workloads =
        allWorkloads(bench::benchSize());

    // Two removal modes plus the policy sweep, all one grid so the
    // worker pool stays saturated.
    SimJobRunner runner;
    bench::Timing timing("fig8", runner.jobs());
    for (bool removeWrites : {true, false}) {
        for (const Workload &w : workloads) {
            const ProgramCache::Entry &e =
                ProgramCache::global().get(w.name, bench::benchSize());
            runner.add([&e, removeWrites] {
                SlipstreamParams params = cmp2x64x4Params();
                params.detector.removeWrites = removeWrites;
                return runSlipstream(e.program, params, e.golden);
            });
        }
    }
    for (size_t p = 0; p < kNumAStreamPolicies; ++p) {
        const AStreamPolicyKind kind = AStreamPolicyKind(p);
        for (const Workload &w : workloads) {
            const ProgramCache::Entry &e =
                ProgramCache::global().get(w.name, bench::benchSize());
            runner.add([&e, kind] {
                SlipstreamParams params = cmp2x64x4Params();
                params.aPolicy.kind = kind;
                return runSlipstream(e.program, params, e.golden);
            });
        }
    }
    const std::vector<RunMetrics> results = runner.run();
    for (const RunMetrics &m : results)
        timing.addCycles(m.cycles);

    const size_t n = workloads.size();
    printBreakdown(workloads,
                   {results.begin(), results.begin() + n},
                   "branches and ineffectual writes removed");
    printBreakdown(workloads,
                   {results.begin() + n, results.begin() + 2 * n},
                   "only branches removed (lower graph)");
    for (size_t p = 0; p < kNumAStreamPolicies; ++p) {
        const std::string title =
            std::string("A-stream policy: ") +
            aStreamPolicyName(AStreamPolicyKind(p));
        const size_t base = (2 + p) * n;
        printBreakdown(workloads,
                       {results.begin() + base,
                        results.begin() + base + n},
                       title.c_str());
    }
    return 0;
}
