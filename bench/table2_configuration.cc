/**
 * Reproduces Table 2 — the microarchitecture configuration. Prints
 * every parameter of the single-processor cores and the slipstream
 * components, as instantiated by the experiment harness, so the
 * configuration used by every other bench is externally auditable.
 */

#include "bench/bench_timing.hh"
#include "bench_common.hh"

int
main()
{
    using namespace slip;
    bench::banner("Table 2: Microarchitecture configuration",
                  "single processor + slipstream components");
    bench::Timing timing("table2", 1);

    const CoreParams ss = ss64x4Params();
    const CoreParams wide = ss128x8Params();
    const SlipstreamParams slip = cmp2x64x4Params();

    Table core({"parameter", "SS(64x4)", "SS(128x8)"});
    const auto row = [&](const std::string &name, auto a, auto b) {
        core.addRow({name, std::to_string(a), std::to_string(b)});
    };
    row("fetch width (insts/cycle)", ss.fetchWidth, wide.fetchWidth);
    row("dispatch width", ss.dispatchWidth, wide.dispatchWidth);
    row("issue width", ss.issueWidth, wide.issueWidth);
    row("retire width", ss.retireWidth, wide.retireWidth);
    row("reorder buffer entries", ss.robSize, wide.robSize);
    row("front-end depth (cycles)", ss.fetchToDispatch,
        wide.fetchToDispatch);
    row("redirect penalty (cycles)", ss.redirectPenalty,
        wide.redirectPenalty);
    row("int multiply latency", ss.intMultLat, wide.intMultLat);
    row("int divide latency", ss.intDivLat, wide.intDivLat);
    row("icache size (bytes)", ss.icache.sizeBytes,
        wide.icache.sizeBytes);
    row("icache assoc", ss.icache.assoc, wide.icache.assoc);
    row("icache line (bytes)", ss.icache.lineBytes,
        wide.icache.lineBytes);
    row("icache miss penalty", ss.icache.missPenalty,
        wide.icache.missPenalty);
    row("dcache size (bytes)", ss.dcache.sizeBytes,
        wide.dcache.sizeBytes);
    row("dcache assoc", ss.dcache.assoc, wide.dcache.assoc);
    row("dcache hit latency", ss.dcache.hitLatency,
        wide.dcache.hitLatency);
    row("dcache miss penalty", ss.dcache.missPenalty,
        wide.dcache.missPenalty);
    core.print(std::cout);

    std::cout << "\n";
    Table comp({"slipstream component", "value"});
    comp.addRow({"trace predictor: correlated entries",
                 std::to_string(1u << slip.tracePred.correlatedBits)});
    comp.addRow({"trace predictor: simple entries",
                 std::to_string(1u << slip.tracePred.simpleBits)});
    comp.addRow({"trace predictor: path depth",
                 std::to_string(PathHistory::kDepth)});
    comp.addRow({"trace length (max)",
                 std::to_string(slip.tracePolicy.maxLen)});
    comp.addRow({"trace ends at backward-taken",
                 slip.tracePolicy.endAtBackwardTaken ? "yes" : "no"});
    comp.addRow({"IR-predictor entries",
                 std::to_string(1u << slip.irPred.tableBits)});
    comp.addRow({"IR confidence threshold (resetting)",
                 std::to_string(slip.irPred.confidenceThreshold)});
    comp.addRow({"IR fetch-skip run length",
                 std::to_string(slip.irPred.skipRunLength)});
    comp.addRow({"IR-detector scope (traces)",
                 std::to_string(slip.detector.scopeTraces)});
    comp.addRow({"delay buffer: control entries",
                 std::to_string(slip.delayBuffer.controlCapacity)});
    comp.addRow({"delay buffer: data entries",
                 std::to_string(slip.delayBuffer.dataCapacity)});
    comp.addRow({"recovery startup (cycles)",
                 std::to_string(slip.recovery.startupCycles)});
    comp.addRow({"register restores per cycle",
                 std::to_string(slip.recovery.regRestoresPerCycle)});
    comp.addRow({"memory restores per cycle",
                 std::to_string(slip.recovery.memRestoresPerCycle)});
    comp.addRow({"minimum recovery latency", "21 cycles (5 + 64/4)"});
    comp.print(std::cout);
    return 0;
}
