/**
 * Reproduces Figure 7 — percent IPC improvement of SS(128x8) (double
 * the window and issue width) over SS(64x4).
 *
 * Paper's shape: average ~28%, substantially larger than the
 * slipstream gain but at the cost of a much bigger core; the paper
 * argues a slipstream CMP of two small cores reaches about a quarter
 * of this with potentially better cycle time.
 */

#include "bench/bench_timing.hh"
#include "bench_common.hh"

int
main()
{
    using namespace slip;
    bench::banner("Figure 7: SS(128x8) over SS(64x4)",
                  "% IPC improvement from doubling window+width; "
                  "paper avg ~28%");

    const std::vector<Workload> workloads =
        allWorkloads(bench::benchSize());

    SimJobRunner runner;
    bench::Timing timing("fig7", runner.jobs());
    for (const Workload &w : workloads) {
        const ProgramCache::Entry &e =
            ProgramCache::global().get(w.name, bench::benchSize());
        runner.add([&e] {
            return runSS(e.program, ss64x4Params(), "SS(64x4)",
                         e.golden);
        });
        runner.add([&e] {
            return runSS(e.program, ss128x8Params(), "SS(128x8)",
                         e.golden);
        });
    }
    const std::vector<RunMetrics> results = runner.run();

    Table table({"benchmark", "SS(64x4) IPC", "SS(128x8) IPC",
                 "improvement", "output ok"});
    double sum = 0.0;
    unsigned count = 0;
    for (size_t i = 0; i < workloads.size(); ++i) {
        const RunMetrics &narrow = results[2 * i];
        const RunMetrics &wide = results[2 * i + 1];
        timing.addCycles(narrow.cycles + wide.cycles);
        const double improvement = wide.ipc / narrow.ipc - 1.0;
        sum += improvement;
        ++count;
        table.addRow({workloads[i].name, Table::fixed(narrow.ipc),
                      Table::fixed(wide.ipc),
                      Table::percent(improvement),
                      narrow.outputCorrect && wide.outputCorrect
                          ? "yes"
                          : "NO"});
    }
    table.addRow({"average", "", "", Table::percent(sum / count), ""});
    table.print(std::cout);
    return 0;
}
