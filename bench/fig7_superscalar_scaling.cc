/**
 * Reproduces Figure 7 — percent IPC improvement of SS(128x8) (double
 * the window and issue width) over SS(64x4).
 *
 * Paper's shape: average ~28%, substantially larger than the
 * slipstream gain but at the cost of a much bigger core; the paper
 * argues a slipstream CMP of two small cores reaches about a quarter
 * of this with potentially better cycle time.
 */

#include "assembler/assembler.hh"
#include "bench_common.hh"

int
main()
{
    using namespace slip;
    bench::banner("Figure 7: SS(128x8) over SS(64x4)",
                  "% IPC improvement from doubling window+width; "
                  "paper avg ~28%");

    Table table({"benchmark", "SS(64x4) IPC", "SS(128x8) IPC",
                 "improvement", "output ok"});
    double sum = 0.0;
    unsigned count = 0;

    for (const Workload &w : allWorkloads(bench::benchSize())) {
        const Program p = assemble(w.source);
        const std::string want = goldenOutput(p);
        const RunMetrics narrow =
            runSS(p, ss64x4Params(), "SS(64x4)", want);
        const RunMetrics wide =
            runSS(p, ss128x8Params(), "SS(128x8)", want);
        const double improvement = wide.ipc / narrow.ipc - 1.0;
        sum += improvement;
        ++count;
        table.addRow({w.name, Table::fixed(narrow.ipc),
                      Table::fixed(wide.ipc),
                      Table::percent(improvement),
                      narrow.outputCorrect && wide.outputCorrect
                          ? "yes"
                          : "NO"});
    }
    table.addRow({"average", "", "", Table::percent(sum / count), ""});
    table.print(std::cout);
    return 0;
}
