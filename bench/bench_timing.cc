#include "bench/bench_timing.hh"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

namespace slip::bench
{

namespace
{

std::string
perfJsonPath()
{
    if (const char *env = std::getenv("SLIPSTREAM_PERF_JSON"))
        return env;
    return "results/bench_perf.json";
}

/**
 * Read an existing record array's contents (everything between the
 * outer brackets), or "" if the file is absent or unusable.
 */
std::string
existingRecords(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return "";
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    const size_t open = text.find('[');
    const size_t close = text.rfind(']');
    if (open == std::string::npos || close == std::string::npos ||
        close <= open)
        return "";
    std::string body = text.substr(open + 1, close - open - 1);
    // Trim whitespace so an empty array round-trips cleanly.
    const size_t first = body.find_first_not_of(" \t\r\n");
    if (first == std::string::npos)
        return "";
    const size_t last = body.find_last_not_of(" \t\r\n,");
    return body.substr(first, last - first + 1);
}

} // namespace

Timing::Timing(std::string artifact, unsigned jobs)
    : artifact_(std::move(artifact)), jobs_(jobs),
      start_(std::chrono::steady_clock::now())
{
}

double
Timing::elapsedSeconds() const
{
    const auto dt = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(dt).count();
}

Timing::~Timing()
{
    try {
        const double seconds = elapsedSeconds();
        const double rate =
            seconds > 0.0 ? double(cycles_) / seconds : 0.0;

        std::ostringstream rec;
        rec << "{\"artifact\": \"" << artifact_ << "\""
            << ", \"jobs\": " << jobs_
            << ", \"seconds\": " << seconds
            << ", \"simulated_cycles\": " << cycles_
            << ", \"cycles_per_sec\": " << rate << "}";

        const std::string path = perfJsonPath();
        const std::filesystem::path dir =
            std::filesystem::path(path).parent_path();
        if (!dir.empty())
            std::filesystem::create_directories(dir);

        const std::string prior = existingRecords(path);
        std::ofstream out(path, std::ios::trunc);
        if (!out)
            return;
        out << "[\n";
        if (!prior.empty())
            out << "  " << prior << ",\n";
        out << "  " << rec.str() << "\n]\n";

        std::cout << "\n[" << artifact_ << "] " << seconds
                  << " s wall, " << jobs_ << " job(s), " << cycles_
                  << " simulated cycles -> " << path << "\n";
    } catch (...) {
        // Timing must never take down a bench run.
    }
}

} // namespace slip::bench
