/**
 * Quantifies the paper's §3 transient-fault analysis (Figure 5's three
 * scenarios give no numeric table; this harness produces one).
 *
 * A campaign of single-bit faults is injected per benchmark, split
 * between A-stream and R-stream-pipeline targets at random dynamic
 * positions. Each run is classified against the golden output:
 *
 *   detected+recovered  fault exposed as a "misprediction", output
 *                       correct (scenario #1)
 *   silent-corrupt      fault reached architectural state and changed
 *                       the output (scenario #2: R-pipeline fault in
 *                       an A-stream-skipped region)
 *   silent-benign       fault reached architectural state but the
 *                       output happened to match (masked)
 *   no-victim           the chosen target had no executed copy
 *
 * Run in both slipstream mode (partial redundancy -> a coverage hole
 * proportional to removal) and reliable/AR-SMT mode (full redundancy
 * -> no silent corruption).
 */

#include "assembler/assembler.hh"
#include "bench_common.hh"
#include "common/random.hh"
#include "func/func_sim.hh"
#include "slipstream/slipstream_processor.hh"

namespace
{

using namespace slip;

struct Tally
{
    unsigned detected = 0;
    unsigned silentCorrupt = 0;
    unsigned silentBenign = 0;
    unsigned noVictim = 0;
};

Tally
campaign(const Program &p, const std::string &want, bool reliable,
         unsigned trials, uint64_t dynCount, Rng &rng)
{
    Tally tally;
    for (unsigned t = 0; t < trials; ++t) {
        SlipstreamParams params = cmp2x64x4Params();
        if (reliable)
            params.irPred.enabled = false;
        SlipstreamProcessor proc(p, params);
        FaultPlan plan;
        plan.target = (t % 2) ? FaultTarget::AStream
                              : FaultTarget::RPipeline;
        // Inject in the steady-state half of the run.
        plan.dynIndex = dynCount / 4 + rng.below(dynCount / 2);
        plan.bit = unsigned(rng.below(64));
        proc.faultInjector().arm(plan);
        const SlipstreamRunResult r = proc.run();
        if (!r.faultOutcome.injected) {
            ++tally.noVictim;
        } else if (r.faultOutcome.detected) {
            ++tally.detected;
            if (r.output != want)
                SLIP_FATAL("detected fault but output corrupt!");
        } else if (plan.target == FaultTarget::AStream &&
                   !r.faultOutcome.targetWasRedundant) {
            // A-stream target was a skipped instruction: no physical
            // victim existed (nothing executed to corrupt).
            ++tally.noVictim;
        } else if (r.output == want) {
            ++tally.silentBenign;
        } else {
            ++tally.silentCorrupt;
        }
    }
    return tally;
}

} // namespace

int
main()
{
    using namespace slip;
    bench::banner("Fault coverage (paper §3, Figure 5 scenarios)",
                  "single bit-flip campaigns per benchmark");

    const unsigned trials =
        bench::benchSize() == WorkloadSize::Test ? 10 : 24;

    for (bool reliable : {false, true}) {
        std::cout << "---- "
                  << (reliable ? "reliable mode (AR-SMT, no removal)"
                               : "slipstream mode (partial redundancy)")
                  << " ----\n";
        Table table({"benchmark", "trials", "detected+recovered",
                     "silent-corrupt", "silent-benign", "no-victim"});
        Rng rng(20260705);
        // Use the fast Test-size inputs for fault campaigns: each
        // trial is a full simulation.
        for (const Workload &w : allWorkloads(WorkloadSize::Test)) {
            const Program p = assemble(w.source);
            FuncSim sim(p);
            const FuncRunResult golden = sim.run();
            const Tally t = campaign(p, golden.output, reliable,
                                     trials, golden.instCount, rng);
            table.addRow({w.name, Table::count(trials),
                          Table::count(t.detected),
                          Table::count(t.silentCorrupt),
                          Table::count(t.silentBenign),
                          Table::count(t.noVictim)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "expected shape: reliable mode has zero silent\n"
                 "corruption; slipstream mode's silent cases track the\n"
                 "removed (non-redundant) fraction of each benchmark.\n";
    return 0;
}
