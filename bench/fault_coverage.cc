/**
 * Quantifies the paper's §3 transient-fault analysis (Figure 5's three
 * scenarios give no numeric table; this harness produces one).
 *
 * A campaign of single-bit faults is injected per benchmark, split
 * between A-stream and R-stream-pipeline targets at random dynamic
 * positions. Each run is classified against the golden output:
 *
 *   detected+recovered  fault exposed as a "misprediction", output
 *                       correct (scenario #1)
 *   silent-corrupt      fault reached architectural state and changed
 *                       the output (scenario #2: R-pipeline fault in
 *                       an A-stream-skipped region)
 *   silent-benign       fault reached architectural state but the
 *                       output happened to match (masked)
 *   no-victim           the chosen target had no executed copy
 *
 * Run in both slipstream mode (partial redundancy -> a coverage hole
 * proportional to removal) and reliable/AR-SMT mode (full redundancy
 * -> no silent corruption).
 *
 * Fault plans are drawn serially (one Rng stream per mode, as ever)
 * so the campaign is reproducible; the trials themselves — each a
 * full simulation — run as parallel jobs.
 */

#include "bench/bench_timing.hh"
#include "bench_common.hh"
#include "common/random.hh"

namespace
{

using namespace slip;

struct Tally
{
    unsigned detected = 0;
    unsigned silentCorrupt = 0;
    unsigned silentBenign = 0;
    unsigned noVictim = 0;
};

void
classify(Tally &tally, const FaultPlan &plan, const RunMetrics &m)
{
    if (!m.faultOutcome.injected) {
        ++tally.noVictim;
    } else if (m.faultOutcome.detected) {
        ++tally.detected;
        if (!m.outputCorrect)
            SLIP_FATAL("detected fault but output corrupt!");
    } else if (plan.target == FaultTarget::AStream &&
               !m.faultOutcome.targetWasRedundant) {
        // A-stream target was a skipped instruction: no physical
        // victim existed (nothing executed to corrupt).
        ++tally.noVictim;
    } else if (m.outputCorrect) {
        ++tally.silentBenign;
    } else {
        ++tally.silentCorrupt;
    }
}

} // namespace

int
main()
{
    using namespace slip;
    bench::banner("Fault coverage (paper §3, Figure 5 scenarios)",
                  "single bit-flip campaigns per benchmark");

    const unsigned trials =
        bench::benchSize() == WorkloadSize::Test ? 10 : 24;

    // Use the fast Test-size inputs for fault campaigns: each trial
    // is a full simulation.
    const std::vector<Workload> workloads =
        allWorkloads(WorkloadSize::Test);

    SimJobRunner runner;
    bench::Timing timing("fault_coverage", runner.jobs());

    for (bool reliable : {false, true}) {
        std::cout << "---- "
                  << (reliable ? "reliable mode (AR-SMT, no removal)"
                               : "slipstream mode (partial redundancy)")
                  << " ----\n";

        // Draw every plan up front, in the fixed serial order.
        Rng rng(20260705);
        std::vector<FaultPlan> plans;
        for (const Workload &w : workloads) {
            const ProgramCache::Entry &e =
                ProgramCache::global().get(w.name,
                                           WorkloadSize::Test);
            for (unsigned t = 0; t < trials; ++t) {
                FaultPlan plan;
                plan.target = (t % 2) ? FaultTarget::AStream
                                      : FaultTarget::RPipeline;
                // Inject in the steady-state half of the run.
                plan.dynIndex = e.goldenInstCount / 4 +
                                rng.below(e.goldenInstCount / 2);
                plan.bit = unsigned(rng.below(64));
                plans.push_back(plan);
                runner.add([&e, plan, reliable] {
                    SlipstreamParams params = cmp2x64x4Params();
                    if (reliable)
                        params.irPred.enabled = false;
                    return runSlipstream(e.program, params, e.golden,
                                         &plan);
                });
            }
        }
        const std::vector<RunMetrics> results = runner.run();

        Table table({"benchmark", "trials", "detected+recovered",
                     "silent-corrupt", "silent-benign", "no-victim"});
        for (size_t i = 0; i < workloads.size(); ++i) {
            Tally t;
            for (unsigned k = 0; k < trials; ++k) {
                const size_t idx = i * trials + k;
                timing.addCycles(results[idx].cycles);
                classify(t, plans[idx], results[idx]);
            }
            table.addRow({workloads[i].name, Table::count(trials),
                          Table::count(t.detected),
                          Table::count(t.silentCorrupt),
                          Table::count(t.silentBenign),
                          Table::count(t.noVictim)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "expected shape: reliable mode has zero silent\n"
                 "corruption; slipstream mode's silent cases track the\n"
                 "removed (non-redundant) fraction of each benchmark.\n";
    return 0;
}
