/**
 * Quantifies the paper's §3 transient-fault analysis (Figure 5's three
 * scenarios give no numeric table; this harness produces one) with
 * multi-target, multi-fault campaigns.
 *
 * Three campaigns run, all through the deterministic FaultCampaign
 * runner (results are byte-identical for any SLIPSTREAM_JOBS):
 *
 *  1. slipstream mode — the full target mix, including MemoryCell
 *     (outside the sphere of replication: quantifies the ECC hole)
 *     and AStreamStall (watchdog territory).
 *  2. reliable / AR-SMT mode — full redundancy; expected shape is
 *     zero silent corruption.
 *  3. forced degradation — a dense burst of A-side faults against a
 *     permissive degrade window, demonstrating the graceful fallback
 *     to R-only execution with output intact.
 *
 * Every trial is classified (see fault_campaign.hh) and the machine-
 * readable report lands in results/fault_campaign.json (override with
 * $SLIPSTREAM_FAULT_JSON), next to bench_perf.json.
 */

#include "bench/bench_timing.hh"
#include "bench_common.hh"
#include "harness/fault_campaign.hh"

namespace
{

using namespace slip;

/** One campaign's per-workload classification table. */
void
printCampaign(const FaultCampaignResult &result, bench::Timing &timing)
{
    Table table({"benchmark", "trials", "faults", "det+rec", "hung+rec",
                 "silent-benign", "silent-corrupt", "det-but-corrupt",
                 "det-unrepaired", "no-victim", "hung", "timed-out",
                 "crashed", "degraded"});
    for (const auto &[name, t] : result.perWorkload) {
        table.addRow(
            {name, Table::count(t.trials), Table::count(t.faultsInjected),
             Table::count(t.outcomes(TrialOutcome::DetectedRecovered)),
             Table::count(t.outcomes(TrialOutcome::HungRecovered)),
             Table::count(t.outcomes(TrialOutcome::SilentBenign)),
             Table::count(t.outcomes(TrialOutcome::SilentCorrupt)),
             Table::count(t.outcomes(TrialOutcome::DetectedButCorrupt)),
             Table::count(t.outcomes(TrialOutcome::DetectedUnrepaired)),
             Table::count(t.outcomes(TrialOutcome::NoVictim)),
             Table::count(t.outcomes(TrialOutcome::Hung)),
             Table::count(t.outcomes(TrialOutcome::TimedOut)),
             Table::count(t.outcomes(TrialOutcome::Crashed)),
             Table::count(t.degradedRuns)});
    }
    table.print(std::cout);

    const CampaignTally &t = result.total;
    std::cout << "totals: " << t.faultsPlanned << " faults planned, "
              << t.faultsInjected << " injected, " << t.faultsDetected
              << " detected; detection latency avg "
              << t.avgLatency() << " / max " << t.latencyMax
              << " cycles over " << t.latencySamples << " samples\n\n";

    for (const TrialRecord &trial : result.trials)
        timing.addCycles(trial.cycles);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace slip;

    // --resume (or SLIPSTREAM_CAMPAIGN_RESUME=1): skip trials already
    // journaled by an interrupted invocation; the report comes out
    // byte-identical to an uninterrupted run's. --isolation fork
    // (or SLIPSTREAM_ISOLATION=fork) sandboxes each trial in a worker
    // process; the reports are byte-identical either way.
    bool resume = false;
    IsolationMode isolation = isolationFromEnv();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::string isoPrefix = "--isolation=";
        if (arg == "--resume") {
            resume = true;
        } else if (arg.rfind(isoPrefix, 0) == 0) {
            if (!parseIsolationMode(arg.substr(isoPrefix.size()),
                                    isolation)) {
                std::cerr << "bad " << arg << " (want none|fork)\n";
                return 2;
            }
        } else if (!bench::applyTraceArg(arg)) {
            std::cerr << "usage: " << argv[0]
                      << " [--resume] [--isolation=none|fork]"
                         " [--trace[=categories]]\n";
            return 2;
        }
    }
    bench::banner("Fault coverage (paper §3, Figure 5 scenarios)",
                  "multi-target bit-flip campaigns per benchmark");
    if (resume)
        std::cout << "(resuming from the trial journal)\n\n";
    if (isolation == IsolationMode::Fork)
        std::cout << "(fork isolation: each trial sandboxed in a "
                     "worker process)\n\n";

    // Per-workload trial counts: at `default`, 256 trials x ~2 faults
    // each lands well past 500 mixed-target faults per workload.
    unsigned trials = 64;
    switch (bench::benchSize()) {
      case WorkloadSize::Test:
        trials = 12;
        break;
      case WorkloadSize::Small:
        trials = 64;
        break;
      case WorkloadSize::Default:
        trials = 256;
        break;
    }

    SimJobRunner probe; // job-count reporting only
    bench::Timing timing("fault_coverage", probe.jobs());
    std::vector<std::string> report;

    // ---- campaign 1: slipstream mode, full target mix ----
    std::cout << "---- slipstream mode (partial redundancy, all "
                 "targets) ----\n";
    FaultCampaignConfig slip;
    slip.name = "slipstream_mixed_targets";
    slip.trialsPerWorkload = trials;
    slip.resume = resume;
    slip.isolation = isolation;
    const FaultCampaignResult slipResult = runFaultCampaign(slip);
    printCampaign(slipResult, timing);
    report.push_back(campaignJson(slip, slipResult));

    // ---- campaign 2: reliable (AR-SMT) mode ----
    std::cout << "---- reliable mode (AR-SMT, no removal) ----\n";
    FaultCampaignConfig reliable;
    reliable.name = "reliable_mode";
    reliable.trialsPerWorkload = trials;
    reliable.reliableMode = true;
    reliable.resume = resume;
    reliable.isolation = isolation;
    const FaultCampaignResult reliableResult =
        runFaultCampaign(reliable);
    printCampaign(reliableResult, timing);
    report.push_back(campaignJson(reliable, reliableResult));
    if (reliableResult.total.outcomes(TrialOutcome::SilentCorrupt) ||
        reliableResult.total.outcomes(
            TrialOutcome::DetectedButCorrupt)) {
        std::cout << "WARNING: reliable mode produced corrupted "
                     "output -- redundancy hole!\n\n";
    }

    // ---- campaign 3: forced degradation to R-only ----
    std::cout << "---- forced degradation (dense A-side burst, "
                 "permissive degrade window) ----\n";
    FaultCampaignConfig burst;
    burst.name = "forced_degradation";
    burst.workloads = {"m88ksim"};
    burst.trialsPerWorkload = 4;
    burst.minFaultsPerTrial = 12;
    burst.maxFaultsPerTrial = 12;
    burst.targets = {FaultTarget::AStream};
    burst.resume = resume;
    burst.isolation = isolation;
    burst.params.degrade.windowCycles = 100'000;
    burst.params.degrade.recoveryThreshold = 6;
    const FaultCampaignResult burstResult = runFaultCampaign(burst);
    printCampaign(burstResult, timing);
    report.push_back(campaignJson(burst, burstResult));

    // ---- campaign 4: A-stream policy sweep ----
    // One short campaign per shortening policy over the full target
    // mix. The reliability-aware policy forwards no speculative data
    // at all, so its coverage shape should match reliable mode; the
    // runahead-family policies sit between it and plain `ir`.
    std::cout << "---- A-stream policy sweep (full target mix) ----\n";
    const unsigned policyTrials = std::max(4u, trials / 4);
    Table policyTable({"policy", "trials", "faults", "det+rec",
                       "silent-benign", "silent-corrupt", "degraded",
                       "avg latency"});
    for (size_t p = 0; p < kNumAStreamPolicies; ++p) {
        const AStreamPolicyKind kind = AStreamPolicyKind(p);
        FaultCampaignConfig sweep;
        sweep.name =
            std::string("policy_") + aStreamPolicyName(kind);
        sweep.trialsPerWorkload = policyTrials;
        sweep.resume = resume;
        sweep.isolation = isolation;
        sweep.params.aPolicy.kind = kind;
        const FaultCampaignResult sweepResult =
            runFaultCampaign(sweep);
        report.push_back(campaignJson(sweep, sweepResult));
        for (const TrialRecord &trial : sweepResult.trials)
            timing.addCycles(trial.cycles);
        const CampaignTally &t = sweepResult.total;
        policyTable.addRow(
            {aStreamPolicyName(kind), Table::count(t.trials),
             Table::count(t.faultsInjected),
             Table::count(t.outcomes(TrialOutcome::DetectedRecovered)),
             Table::count(t.outcomes(TrialOutcome::SilentBenign)),
             Table::count(t.outcomes(TrialOutcome::SilentCorrupt)),
             Table::count(t.degradedRuns),
             Table::fixed(t.avgLatency())});
    }
    policyTable.print(std::cout);
    std::cout << "\n";

    writeFaultReport(report);

    std::cout
        << "per-trial journal: results/fault_campaign.journal.jsonl\n"
           "(kill this bench at any point and rerun with --resume to\n"
           "finish without repeating completed trials)\n\n"
        << "expected shape: reliable mode has zero silent corruption;\n"
           "slipstream mode's silent cases track the removed\n"
           "(non-redundant) fraction plus the MemoryCell (ECC) hole;\n"
           "the burst campaign degrades every run to R-only with\n"
           "output intact.\n";
    return 0;
}
