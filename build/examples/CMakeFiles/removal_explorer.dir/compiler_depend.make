# Empty compiler generated dependencies file for removal_explorer.
# This may be replaced when dependencies are built.
