file(REMOVE_RECURSE
  "CMakeFiles/removal_explorer.dir/removal_explorer.cpp.o"
  "CMakeFiles/removal_explorer.dir/removal_explorer.cpp.o.d"
  "removal_explorer"
  "removal_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/removal_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
