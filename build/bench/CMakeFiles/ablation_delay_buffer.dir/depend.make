# Empty dependencies file for ablation_delay_buffer.
# This may be replaced when dependencies are built.
