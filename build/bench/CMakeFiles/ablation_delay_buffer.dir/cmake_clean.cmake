file(REMOVE_RECURSE
  "CMakeFiles/ablation_delay_buffer.dir/ablation_delay_buffer.cc.o"
  "CMakeFiles/ablation_delay_buffer.dir/ablation_delay_buffer.cc.o.d"
  "ablation_delay_buffer"
  "ablation_delay_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delay_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
