# Empty dependencies file for fig7_superscalar_scaling.
# This may be replaced when dependencies are built.
