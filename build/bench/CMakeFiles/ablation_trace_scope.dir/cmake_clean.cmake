file(REMOVE_RECURSE
  "CMakeFiles/ablation_trace_scope.dir/ablation_trace_scope.cc.o"
  "CMakeFiles/ablation_trace_scope.dir/ablation_trace_scope.cc.o.d"
  "ablation_trace_scope"
  "ablation_trace_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trace_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
