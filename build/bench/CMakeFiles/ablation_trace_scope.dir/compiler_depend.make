# Empty compiler generated dependencies file for ablation_trace_scope.
# This may be replaced when dependencies are built.
