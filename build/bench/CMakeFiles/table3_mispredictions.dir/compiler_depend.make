# Empty compiler generated dependencies file for table3_mispredictions.
# This may be replaced when dependencies are built.
