file(REMOVE_RECURSE
  "CMakeFiles/table3_mispredictions.dir/table3_mispredictions.cc.o"
  "CMakeFiles/table3_mispredictions.dir/table3_mispredictions.cc.o.d"
  "table3_mispredictions"
  "table3_mispredictions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_mispredictions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
