# Empty dependencies file for fig6_slipstream_speedup.
# This may be replaced when dependencies are built.
