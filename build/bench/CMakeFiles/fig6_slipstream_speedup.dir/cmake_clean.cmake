file(REMOVE_RECURSE
  "CMakeFiles/fig6_slipstream_speedup.dir/fig6_slipstream_speedup.cc.o"
  "CMakeFiles/fig6_slipstream_speedup.dir/fig6_slipstream_speedup.cc.o.d"
  "fig6_slipstream_speedup"
  "fig6_slipstream_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_slipstream_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
