# Empty dependencies file for reliable_mode_overhead.
# This may be replaced when dependencies are built.
