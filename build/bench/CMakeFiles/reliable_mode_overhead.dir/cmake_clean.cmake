file(REMOVE_RECURSE
  "CMakeFiles/reliable_mode_overhead.dir/reliable_mode_overhead.cc.o"
  "CMakeFiles/reliable_mode_overhead.dir/reliable_mode_overhead.cc.o.d"
  "reliable_mode_overhead"
  "reliable_mode_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_mode_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
