file(REMOVE_RECURSE
  "CMakeFiles/bench_support.dir/bench_timing.cc.o"
  "CMakeFiles/bench_support.dir/bench_timing.cc.o.d"
  "libbench_support.a"
  "libbench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
