# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;slip_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_isa "/root/repo/build/tests/test_isa")
set_tests_properties(test_isa PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;slip_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_assembler "/root/repo/build/tests/test_assembler")
set_tests_properties(test_assembler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;24;slip_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mem "/root/repo/build/tests/test_mem")
set_tests_properties(test_mem PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;31;slip_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_func "/root/repo/build/tests/test_func")
set_tests_properties(test_func PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;37;slip_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_uarch "/root/repo/build/tests/test_uarch")
set_tests_properties(test_uarch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;43;slip_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_slipstream_components "/root/repo/build/tests/test_slipstream_components")
set_tests_properties(test_slipstream_components PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;51;slip_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_slipstream_system "/root/repo/build/tests/test_slipstream_system")
set_tests_properties(test_slipstream_system PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;60;slip_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workloads "/root/repo/build/tests/test_workloads")
set_tests_properties(test_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;66;slip_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;71;slip_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_harness "/root/repo/build/tests/test_harness")
set_tests_properties(test_harness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;75;slip_test;/root/repo/tests/CMakeLists.txt;0;")
