file(REMOVE_RECURSE
  "CMakeFiles/test_uarch.dir/test_branch_pred.cc.o"
  "CMakeFiles/test_uarch.dir/test_branch_pred.cc.o.d"
  "CMakeFiles/test_uarch.dir/test_core.cc.o"
  "CMakeFiles/test_uarch.dir/test_core.cc.o.d"
  "CMakeFiles/test_uarch.dir/test_ss_processor.cc.o"
  "CMakeFiles/test_uarch.dir/test_ss_processor.cc.o.d"
  "CMakeFiles/test_uarch.dir/test_trace.cc.o"
  "CMakeFiles/test_uarch.dir/test_trace.cc.o.d"
  "CMakeFiles/test_uarch.dir/test_trace_pred.cc.o"
  "CMakeFiles/test_uarch.dir/test_trace_pred.cc.o.d"
  "test_uarch"
  "test_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
