file(REMOVE_RECURSE
  "CMakeFiles/test_harness.dir/test_experiment.cc.o"
  "CMakeFiles/test_harness.dir/test_experiment.cc.o.d"
  "CMakeFiles/test_harness.dir/test_sim_runner.cc.o"
  "CMakeFiles/test_harness.dir/test_sim_runner.cc.o.d"
  "CMakeFiles/test_harness.dir/test_table.cc.o"
  "CMakeFiles/test_harness.dir/test_table.cc.o.d"
  "test_harness"
  "test_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
