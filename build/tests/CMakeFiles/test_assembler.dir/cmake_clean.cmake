file(REMOVE_RECURSE
  "CMakeFiles/test_assembler.dir/test_asm.cc.o"
  "CMakeFiles/test_assembler.dir/test_asm.cc.o.d"
  "CMakeFiles/test_assembler.dir/test_lexer.cc.o"
  "CMakeFiles/test_assembler.dir/test_lexer.cc.o.d"
  "CMakeFiles/test_assembler.dir/test_parser.cc.o"
  "CMakeFiles/test_assembler.dir/test_parser.cc.o.d"
  "CMakeFiles/test_assembler.dir/test_roundtrip.cc.o"
  "CMakeFiles/test_assembler.dir/test_roundtrip.cc.o.d"
  "test_assembler"
  "test_assembler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assembler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
