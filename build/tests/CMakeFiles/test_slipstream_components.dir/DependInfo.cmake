
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_delay_buffer.cc" "tests/CMakeFiles/test_slipstream_components.dir/test_delay_buffer.cc.o" "gcc" "tests/CMakeFiles/test_slipstream_components.dir/test_delay_buffer.cc.o.d"
  "/root/repo/tests/test_ir_detector.cc" "tests/CMakeFiles/test_slipstream_components.dir/test_ir_detector.cc.o" "gcc" "tests/CMakeFiles/test_slipstream_components.dir/test_ir_detector.cc.o.d"
  "/root/repo/tests/test_ir_predictor.cc" "tests/CMakeFiles/test_slipstream_components.dir/test_ir_predictor.cc.o" "gcc" "tests/CMakeFiles/test_slipstream_components.dir/test_ir_predictor.cc.o.d"
  "/root/repo/tests/test_ort.cc" "tests/CMakeFiles/test_slipstream_components.dir/test_ort.cc.o" "gcc" "tests/CMakeFiles/test_slipstream_components.dir/test_ort.cc.o.d"
  "/root/repo/tests/test_rdfg.cc" "tests/CMakeFiles/test_slipstream_components.dir/test_rdfg.cc.o" "gcc" "tests/CMakeFiles/test_slipstream_components.dir/test_rdfg.cc.o.d"
  "/root/repo/tests/test_recovery_controller.cc" "tests/CMakeFiles/test_slipstream_components.dir/test_recovery_controller.cc.o" "gcc" "tests/CMakeFiles/test_slipstream_components.dir/test_recovery_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slipstream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
