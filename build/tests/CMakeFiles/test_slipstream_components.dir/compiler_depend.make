# Empty compiler generated dependencies file for test_slipstream_components.
# This may be replaced when dependencies are built.
