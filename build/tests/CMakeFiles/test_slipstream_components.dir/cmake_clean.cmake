file(REMOVE_RECURSE
  "CMakeFiles/test_slipstream_components.dir/test_delay_buffer.cc.o"
  "CMakeFiles/test_slipstream_components.dir/test_delay_buffer.cc.o.d"
  "CMakeFiles/test_slipstream_components.dir/test_ir_detector.cc.o"
  "CMakeFiles/test_slipstream_components.dir/test_ir_detector.cc.o.d"
  "CMakeFiles/test_slipstream_components.dir/test_ir_predictor.cc.o"
  "CMakeFiles/test_slipstream_components.dir/test_ir_predictor.cc.o.d"
  "CMakeFiles/test_slipstream_components.dir/test_ort.cc.o"
  "CMakeFiles/test_slipstream_components.dir/test_ort.cc.o.d"
  "CMakeFiles/test_slipstream_components.dir/test_rdfg.cc.o"
  "CMakeFiles/test_slipstream_components.dir/test_rdfg.cc.o.d"
  "CMakeFiles/test_slipstream_components.dir/test_recovery_controller.cc.o"
  "CMakeFiles/test_slipstream_components.dir/test_recovery_controller.cc.o.d"
  "test_slipstream_components"
  "test_slipstream_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slipstream_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
