file(REMOVE_RECURSE
  "CMakeFiles/test_isa.dir/test_disasm.cc.o"
  "CMakeFiles/test_isa.dir/test_disasm.cc.o.d"
  "CMakeFiles/test_isa.dir/test_encoding.cc.o"
  "CMakeFiles/test_isa.dir/test_encoding.cc.o.d"
  "CMakeFiles/test_isa.dir/test_isa.cc.o"
  "CMakeFiles/test_isa.dir/test_isa.cc.o.d"
  "CMakeFiles/test_isa.dir/test_regnames.cc.o"
  "CMakeFiles/test_isa.dir/test_regnames.cc.o.d"
  "test_isa"
  "test_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
