file(REMOVE_RECURSE
  "CMakeFiles/test_slipstream_system.dir/test_fault_tolerance.cc.o"
  "CMakeFiles/test_slipstream_system.dir/test_fault_tolerance.cc.o.d"
  "CMakeFiles/test_slipstream_system.dir/test_slipstream.cc.o"
  "CMakeFiles/test_slipstream_system.dir/test_slipstream.cc.o.d"
  "CMakeFiles/test_slipstream_system.dir/test_streams.cc.o"
  "CMakeFiles/test_slipstream_system.dir/test_streams.cc.o.d"
  "test_slipstream_system"
  "test_slipstream_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slipstream_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
