# Empty dependencies file for test_slipstream_system.
# This may be replaced when dependencies are built.
