
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_fault_tolerance.cc" "tests/CMakeFiles/test_slipstream_system.dir/test_fault_tolerance.cc.o" "gcc" "tests/CMakeFiles/test_slipstream_system.dir/test_fault_tolerance.cc.o.d"
  "/root/repo/tests/test_slipstream.cc" "tests/CMakeFiles/test_slipstream_system.dir/test_slipstream.cc.o" "gcc" "tests/CMakeFiles/test_slipstream_system.dir/test_slipstream.cc.o.d"
  "/root/repo/tests/test_streams.cc" "tests/CMakeFiles/test_slipstream_system.dir/test_streams.cc.o" "gcc" "tests/CMakeFiles/test_slipstream_system.dir/test_streams.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slipstream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
