
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assembler/assembler.cc" "src/CMakeFiles/slipstream.dir/assembler/assembler.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/assembler/assembler.cc.o.d"
  "/root/repo/src/assembler/lexer.cc" "src/CMakeFiles/slipstream.dir/assembler/lexer.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/assembler/lexer.cc.o.d"
  "/root/repo/src/assembler/parser.cc" "src/CMakeFiles/slipstream.dir/assembler/parser.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/assembler/parser.cc.o.d"
  "/root/repo/src/assembler/program.cc" "src/CMakeFiles/slipstream.dir/assembler/program.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/assembler/program.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/slipstream.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/slipstream.dir/common/random.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/common/random.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/slipstream.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/common/stats.cc.o.d"
  "/root/repo/src/func/arch_state.cc" "src/CMakeFiles/slipstream.dir/func/arch_state.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/func/arch_state.cc.o.d"
  "/root/repo/src/func/executor.cc" "src/CMakeFiles/slipstream.dir/func/executor.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/func/executor.cc.o.d"
  "/root/repo/src/func/func_sim.cc" "src/CMakeFiles/slipstream.dir/func/func_sim.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/func/func_sim.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/slipstream.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/sim_runner.cc" "src/CMakeFiles/slipstream.dir/harness/sim_runner.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/harness/sim_runner.cc.o.d"
  "/root/repo/src/harness/table.cc" "src/CMakeFiles/slipstream.dir/harness/table.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/harness/table.cc.o.d"
  "/root/repo/src/harness/thread_pool.cc" "src/CMakeFiles/slipstream.dir/harness/thread_pool.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/harness/thread_pool.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/slipstream.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/encoding.cc" "src/CMakeFiles/slipstream.dir/isa/encoding.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/isa/encoding.cc.o.d"
  "/root/repo/src/isa/isa.cc" "src/CMakeFiles/slipstream.dir/isa/isa.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/isa/isa.cc.o.d"
  "/root/repo/src/isa/regnames.cc" "src/CMakeFiles/slipstream.dir/isa/regnames.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/isa/regnames.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/slipstream.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/memory.cc" "src/CMakeFiles/slipstream.dir/mem/memory.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/mem/memory.cc.o.d"
  "/root/repo/src/slipstream/a_stream.cc" "src/CMakeFiles/slipstream.dir/slipstream/a_stream.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/slipstream/a_stream.cc.o.d"
  "/root/repo/src/slipstream/delay_buffer.cc" "src/CMakeFiles/slipstream.dir/slipstream/delay_buffer.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/slipstream/delay_buffer.cc.o.d"
  "/root/repo/src/slipstream/fault_injector.cc" "src/CMakeFiles/slipstream.dir/slipstream/fault_injector.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/slipstream/fault_injector.cc.o.d"
  "/root/repo/src/slipstream/ir_detector.cc" "src/CMakeFiles/slipstream.dir/slipstream/ir_detector.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/slipstream/ir_detector.cc.o.d"
  "/root/repo/src/slipstream/ir_predictor.cc" "src/CMakeFiles/slipstream.dir/slipstream/ir_predictor.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/slipstream/ir_predictor.cc.o.d"
  "/root/repo/src/slipstream/operand_rename_table.cc" "src/CMakeFiles/slipstream.dir/slipstream/operand_rename_table.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/slipstream/operand_rename_table.cc.o.d"
  "/root/repo/src/slipstream/r_stream.cc" "src/CMakeFiles/slipstream.dir/slipstream/r_stream.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/slipstream/r_stream.cc.o.d"
  "/root/repo/src/slipstream/rdfg.cc" "src/CMakeFiles/slipstream.dir/slipstream/rdfg.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/slipstream/rdfg.cc.o.d"
  "/root/repo/src/slipstream/recovery_controller.cc" "src/CMakeFiles/slipstream.dir/slipstream/recovery_controller.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/slipstream/recovery_controller.cc.o.d"
  "/root/repo/src/slipstream/slipstream_processor.cc" "src/CMakeFiles/slipstream.dir/slipstream/slipstream_processor.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/slipstream/slipstream_processor.cc.o.d"
  "/root/repo/src/uarch/branch_pred.cc" "src/CMakeFiles/slipstream.dir/uarch/branch_pred.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/uarch/branch_pred.cc.o.d"
  "/root/repo/src/uarch/core.cc" "src/CMakeFiles/slipstream.dir/uarch/core.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/uarch/core.cc.o.d"
  "/root/repo/src/uarch/fetch_source.cc" "src/CMakeFiles/slipstream.dir/uarch/fetch_source.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/uarch/fetch_source.cc.o.d"
  "/root/repo/src/uarch/ss_processor.cc" "src/CMakeFiles/slipstream.dir/uarch/ss_processor.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/uarch/ss_processor.cc.o.d"
  "/root/repo/src/uarch/trace.cc" "src/CMakeFiles/slipstream.dir/uarch/trace.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/uarch/trace.cc.o.d"
  "/root/repo/src/uarch/trace_pred.cc" "src/CMakeFiles/slipstream.dir/uarch/trace_pred.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/uarch/trace_pred.cc.o.d"
  "/root/repo/src/workloads/wl_compress.cc" "src/CMakeFiles/slipstream.dir/workloads/wl_compress.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/workloads/wl_compress.cc.o.d"
  "/root/repo/src/workloads/wl_gcc.cc" "src/CMakeFiles/slipstream.dir/workloads/wl_gcc.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/workloads/wl_gcc.cc.o.d"
  "/root/repo/src/workloads/wl_go.cc" "src/CMakeFiles/slipstream.dir/workloads/wl_go.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/workloads/wl_go.cc.o.d"
  "/root/repo/src/workloads/wl_jpeg.cc" "src/CMakeFiles/slipstream.dir/workloads/wl_jpeg.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/workloads/wl_jpeg.cc.o.d"
  "/root/repo/src/workloads/wl_li.cc" "src/CMakeFiles/slipstream.dir/workloads/wl_li.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/workloads/wl_li.cc.o.d"
  "/root/repo/src/workloads/wl_m88k.cc" "src/CMakeFiles/slipstream.dir/workloads/wl_m88k.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/workloads/wl_m88k.cc.o.d"
  "/root/repo/src/workloads/wl_perl.cc" "src/CMakeFiles/slipstream.dir/workloads/wl_perl.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/workloads/wl_perl.cc.o.d"
  "/root/repo/src/workloads/wl_vortex.cc" "src/CMakeFiles/slipstream.dir/workloads/wl_vortex.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/workloads/wl_vortex.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/CMakeFiles/slipstream.dir/workloads/workloads.cc.o" "gcc" "src/CMakeFiles/slipstream.dir/workloads/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
