# Empty dependencies file for slipstream.
# This may be replaced when dependencies are built.
