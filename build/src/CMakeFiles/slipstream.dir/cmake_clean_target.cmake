file(REMOVE_RECURSE
  "libslipstream.a"
)
