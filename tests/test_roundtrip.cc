/**
 * Whole-program round-trip property: disassembling every instruction
 * of every workload and reassembling the result must produce the
 * identical encoding. This locks the assembler, disassembler, and
 * encoder into mutual consistency across the full opcode/operand
 * surface that real programs exercise.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "assembler/assembler.hh"
#include "isa/disasm.hh"
#include "isa/encoding.hh"
#include "workloads/workloads.hh"

namespace slip
{
namespace
{

class WorkloadRoundTrip : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadRoundTrip, DisassembleReassembleIsIdentity)
{
    const Workload w = getWorkload(GetParam(), WorkloadSize::Test);
    const Program original = assemble(w.source);

    // Render the whole text section in relative-offset syntax (so it
    // reassembles position-independently) and reassemble it.
    std::ostringstream os;
    os << ".text\nmain:\n";
    for (Addr pc = original.textBase(); pc < original.textEnd();
         pc += kInstBytes) {
        const StaticInst &inst = original.fetch(pc);
        if (inst.isControl() && !inst.isIndirectJump()) {
            // Branch/jump offsets need label-free form: emit the raw
            // relative syntax the disassembler produces with
            // absoluteTargets=false, which the assembler does not
            // accept directly — so check encode/decode identity here
            // instead of re-parsing.
            EXPECT_EQ(decode(encode(inst)), inst)
                << disassemble(inst, pc);
            continue;
        }
        os << "    " << disassemble(inst, pc, false) << "\n";
    }

    // Non-control instructions reassemble to the same encodings.
    const Program rebuilt = assemble(os.str());
    size_t rebuiltIdx = 0;
    for (Addr pc = original.textBase(); pc < original.textEnd();
         pc += kInstBytes) {
        const StaticInst &inst = original.fetch(pc);
        if (inst.isControl() && !inst.isIndirectJump())
            continue;
        const Addr rebuiltPc =
            rebuilt.textBase() + rebuiltIdx * kInstBytes;
        ASSERT_TRUE(rebuilt.validPc(rebuiltPc));
        EXPECT_EQ(rebuilt.fetch(rebuiltPc), inst)
            << "at original pc 0x" << std::hex << pc << ": "
            << disassemble(inst, pc);
        ++rebuiltIdx;
    }
}

TEST_P(WorkloadRoundTrip, EveryInstructionEncodeDecodeStable)
{
    const Workload w = getWorkload(GetParam(), WorkloadSize::Test);
    const Program p = assemble(w.source);
    for (Addr pc = p.textBase(); pc < p.textEnd(); pc += kInstBytes) {
        const StaticInst &inst = p.fetch(pc);
        const uint32_t word = p.fetchRaw(pc);
        EXPECT_EQ(decode(word), inst);
        EXPECT_EQ(encode(inst), word);
    }
}

TEST_P(WorkloadRoundTrip, DisassemblyIsNonEmptyEverywhere)
{
    const Workload w = getWorkload(GetParam(), WorkloadSize::Test);
    const Program p = assemble(w.source);
    for (Addr pc = p.textBase(); pc < p.textEnd(); pc += kInstBytes)
        EXPECT_FALSE(disassemble(p.fetch(pc), pc).empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadRoundTrip,
    ::testing::Values("compress", "gcc", "go", "jpeg", "li", "m88ksim",
                      "perl", "vortex"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace slip
