/**
 * Assembler/disassembler round-trip properties.
 *
 * Two layers:
 *  - an exhaustive sweep over every encodable instruction form
 *    (every opcode x representative register/immediate corners),
 *    asserting encode/decode identity and that the disassembler's
 *    relative-offset text reassembles to the identical instruction;
 *  - whole-workload round trips, locking the assembler, disassembler,
 *    and encoder into mutual consistency across the opcode/operand
 *    surface that real programs exercise.
 *
 * Control flow is NOT skipped: pure-literal branch/jump targets are
 * PC-relative word offsets ("beq a0, a1, +3"), exactly the syntax
 * disassemble(inst, pc, false) emits.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "assembler/assembler.hh"
#include "isa/disasm.hh"
#include "isa/encoding.hh"
#include "workloads/workloads.hh"

namespace slip
{
namespace
{

// Register corners: zero, low, and both ends of the file.
const RegIndex kRegCorners[] = {0, 1, 2, 31, 63};
// Signed immediate corners per field width.
const int64_t kImm12Corners[] = {-2048, -1, 0, 1, 7, 2047};
const int64_t kImm18Corners[] = {-131072, -1, 0, 1, 4095, 131071};

/**
 * Every encodable instruction form in canonical (decoded) shape:
 * fields the encoding does not store are zero, matching what decode()
 * reconstructs.
 */
std::vector<StaticInst>
everyEncodableForm()
{
    std::vector<StaticInst> out;
    for (unsigned o = 0; o < unsigned(Opcode::NumOpcodes); ++o) {
        const Opcode op = static_cast<Opcode>(o);
        switch (opInfo(op).format) {
          case Format::R:
            for (RegIndex rd : kRegCorners)
                for (RegIndex rs1 : kRegCorners)
                    for (RegIndex rs2 : kRegCorners)
                        out.push_back({op, rd, rs1, rs2, 0});
            break;
          case Format::I:
            for (RegIndex rd : kRegCorners)
                for (RegIndex rs1 : kRegCorners)
                    for (int64_t imm : kImm12Corners)
                        out.push_back({op, rd, rs1, 0, imm});
            break;
          case Format::S:
            for (RegIndex rs1 : kRegCorners)
                for (RegIndex rs2 : kRegCorners)
                    for (int64_t imm : kImm12Corners)
                        out.push_back({op, 0, rs1, rs2, imm});
            break;
          case Format::B:
            for (RegIndex rs1 : kRegCorners)
                for (RegIndex rs2 : kRegCorners)
                    for (int64_t imm : kImm12Corners)
                        out.push_back({op, 0, rs1, rs2, imm});
            break;
          case Format::J:
            for (RegIndex rd : kRegCorners)
                for (int64_t imm : kImm18Corners)
                    out.push_back({op, rd, 0, 0, imm});
            break;
          case Format::Sys:
            if (op == Opcode::PUTC || op == Opcode::PUTN) {
                for (RegIndex rs1 : kRegCorners)
                    out.push_back({op, 0, rs1, 0, 0});
            } else {
                out.push_back({op, 0, 0, 0, 0});
            }
            break;
        }
    }
    return out;
}

TEST(ExhaustiveRoundTrip, EncodeDecodeIdentityEveryForm)
{
    for (const StaticInst &inst : everyEncodableForm())
        EXPECT_EQ(decode(encode(inst)), inst) << disassemble(inst, 0);
}

TEST(ExhaustiveRoundTrip, DisassembleReassembleEveryForm)
{
    const std::vector<StaticInst> forms = everyEncodableForm();

    // One program holding every form; relative branch targets need no
    // labels, so position is irrelevant and every source line maps to
    // exactly one instruction word.
    std::ostringstream os;
    os << ".text\nmain:\n";
    for (size_t i = 0; i < forms.size(); ++i) {
        const Addr pc = layout::kTextBase + i * kInstBytes;
        os << "    " << disassemble(forms[i], pc, false) << "\n";
    }

    const Program p = assemble(os.str());
    ASSERT_EQ((p.textEnd() - p.textBase()) / kInstBytes, forms.size());
    for (size_t i = 0; i < forms.size(); ++i) {
        const Addr pc = p.textBase() + i * kInstBytes;
        EXPECT_EQ(p.fetch(pc), forms[i])
            << "form " << i << ": " << disassemble(forms[i], pc, false);
        EXPECT_EQ(p.fetchRaw(pc), encode(forms[i]));
    }
}

class WorkloadRoundTrip : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadRoundTrip, DisassembleReassembleIsIdentity)
{
    const Workload w = getWorkload(GetParam(), WorkloadSize::Test);
    const Program original = assemble(w.source);

    // Render the whole text section — control flow included — in
    // relative-offset syntax and reassemble it. Every real opcode
    // assembles 1:1, so the rebuilt text must be word-identical.
    std::ostringstream os;
    os << ".text\nmain:\n";
    for (Addr pc = original.textBase(); pc < original.textEnd();
         pc += kInstBytes) {
        os << "    " << disassemble(original.fetch(pc), pc, false)
           << "\n";
    }

    const Program rebuilt = assemble(os.str());
    ASSERT_EQ(rebuilt.textEnd() - rebuilt.textBase(),
              original.textEnd() - original.textBase());
    for (Addr pc = original.textBase(); pc < original.textEnd();
         pc += kInstBytes) {
        EXPECT_EQ(rebuilt.fetch(pc), original.fetch(pc))
            << "at pc 0x" << std::hex << pc << ": "
            << disassemble(original.fetch(pc), pc);
        EXPECT_EQ(rebuilt.fetchRaw(pc), original.fetchRaw(pc));
    }
}

TEST_P(WorkloadRoundTrip, EveryInstructionEncodeDecodeStable)
{
    const Workload w = getWorkload(GetParam(), WorkloadSize::Test);
    const Program p = assemble(w.source);
    for (Addr pc = p.textBase(); pc < p.textEnd(); pc += kInstBytes) {
        const StaticInst &inst = p.fetch(pc);
        const uint32_t word = p.fetchRaw(pc);
        EXPECT_EQ(decode(word), inst);
        EXPECT_EQ(encode(inst), word);
    }
}

TEST_P(WorkloadRoundTrip, DisassemblyIsNonEmptyEverywhere)
{
    const Workload w = getWorkload(GetParam(), WorkloadSize::Test);
    const Program p = assemble(w.source);
    for (Addr pc = p.textBase(); pc < p.textEnd(); pc += kInstBytes)
        EXPECT_FALSE(disassemble(p.fetch(pc), pc).empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadRoundTrip,
    ::testing::Values("compress", "gcc", "go", "jpeg", "li", "m88ksim",
                      "perl", "vortex"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace slip
