#include <gtest/gtest.h>

#include "uarch/branch_pred.hh"

namespace slip
{
namespace
{

TEST(Bimodal, LearnsBias)
{
    BimodalPredictor p(8);
    const Addr pc = 0x1000;
    for (int i = 0; i < 4; ++i)
        p.update(pc, true);
    EXPECT_TRUE(p.predict(pc));
    for (int i = 0; i < 4; ++i)
        p.update(pc, false);
    EXPECT_FALSE(p.predict(pc));
}

TEST(Bimodal, HysteresisSurvivesOneFlip)
{
    BimodalPredictor p(8);
    const Addr pc = 0x1000;
    for (int i = 0; i < 4; ++i)
        p.update(pc, true);
    p.update(pc, false);
    EXPECT_TRUE(p.predict(pc)); // 2-bit counter not flipped yet
}

TEST(Gshare, LearnsAlternatingPatternViaHistory)
{
    GsharePredictor p(12, 8);
    const Addr pc = 0x2000;
    // T N T N ... — bimodal can't learn this; gshare can.
    bool taken = false;
    for (int i = 0; i < 200; ++i) {
        taken = !taken;
        p.update(pc, taken);
    }
    int correct = 0;
    for (int i = 0; i < 20; ++i) {
        taken = !taken;
        correct += p.predict(pc) == taken;
        p.update(pc, taken);
    }
    EXPECT_GE(correct, 18);
}

TEST(Gshare, TracksMispredictStats)
{
    GsharePredictor p;
    p.update(0x1000, true);
    EXPECT_EQ(p.stats().get("updates"), 1u);
}

TEST(Ras, LifoOrder)
{
    ReturnAddressStack ras(4);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_TRUE(ras.empty());
    EXPECT_EQ(ras.pop(), 0u); // empty pops are safe
}

TEST(Ras, BoundedDepthDropsOldest)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3);
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_TRUE(ras.empty()); // 1 was dropped
}

TEST(Ras, ClearEmpties)
{
    ReturnAddressStack ras;
    ras.push(7);
    ras.clear();
    EXPECT_TRUE(ras.empty());
}

} // namespace
} // namespace slip
