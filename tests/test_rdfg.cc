#include <gtest/gtest.h>

#include "slipstream/rdfg.hh"

namespace slip
{
namespace
{

TEST(Rdfg, DirectSelection)
{
    Rdfg g(4);
    g.select(2, reason::kBR);
    EXPECT_TRUE(g.selected(2));
    EXPECT_EQ(g.reasons(2), reason::kBR);
    EXPECT_EQ(g.irVec(), 0b100u);
}

TEST(Rdfg, NonRemovableSlotRefusesSelection)
{
    Rdfg g(4);
    g.setRemovable(1, false);
    g.select(1, reason::kBR);
    EXPECT_FALSE(g.selected(1));
    EXPECT_EQ(g.irVec(), 0u);
}

TEST(Rdfg, BackPropagationNeedsKillAndAllConsumersSelected)
{
    // 0 produces for 1 and 2 (all in-trace).
    Rdfg g(3);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.select(1, reason::kBR);
    EXPECT_FALSE(g.selected(0)); // consumer 2 not selected yet
    g.select(2, reason::kSV);
    EXPECT_FALSE(g.selected(0)); // not killed yet
    g.kill(0);
    EXPECT_TRUE(g.selected(0));
    // Inherits union of consumer reasons plus the P flag.
    EXPECT_EQ(g.reasons(0),
              uint8_t(reason::kProp | reason::kBR | reason::kSV));
}

TEST(Rdfg, KillBeforeSelectionAlsoPropagates)
{
    Rdfg g(2);
    g.addEdge(0, 1);
    g.kill(0);
    EXPECT_FALSE(g.selected(0));
    g.select(1, reason::kWW);
    EXPECT_TRUE(g.selected(0));
}

TEST(Rdfg, ExternalConsumerPinsProducer)
{
    Rdfg g(2);
    g.addEdge(0, 1);
    g.markExternalConsumer(0); // someone outside the trace reads it
    g.select(1, reason::kBR);
    g.kill(0);
    EXPECT_FALSE(g.selected(0));
}

TEST(Rdfg, KilledWithZeroConsumersIsNotPropSelected)
{
    // Unreferenced writes are selected *directly* by the detector
    // (WW trigger); kill alone with no consumers must not select.
    Rdfg g(1);
    g.kill(0);
    EXPECT_FALSE(g.selected(0));
}

TEST(Rdfg, ChainPropagatesTransitively)
{
    // 0 -> 1 -> 2 (branch). Selecting 2 and killing 0,1 removes all.
    Rdfg g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.select(2, reason::kBR);
    g.kill(1);
    EXPECT_TRUE(g.selected(1));
    g.kill(0);
    EXPECT_TRUE(g.selected(0));
    EXPECT_EQ(g.irVec(), 0b111u);
    EXPECT_EQ(g.reasons(0), uint8_t(reason::kProp | reason::kBR));
}

TEST(Rdfg, PartialConsumerSelectionBlocksChain)
{
    // 0 feeds a selected branch and an unselected ALU op.
    Rdfg g(3);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.select(1, reason::kBR);
    g.kill(0);
    EXPECT_FALSE(g.selected(0));
    EXPECT_EQ(g.irVec(), 0b010u);
}

TEST(Rdfg, ReasonVectorMatchesSlots)
{
    Rdfg g(3);
    g.select(0, reason::kWW);
    g.select(2, reason::kBR);
    const auto reasons = g.reasonVector();
    ASSERT_EQ(reasons.size(), 3u);
    EXPECT_EQ(reasons[0], reason::kWW);
    EXPECT_EQ(reasons[1], 0);
    EXPECT_EQ(reasons[2], reason::kBR);
}

TEST(Rdfg, DoubleSelectionMergesReasons)
{
    Rdfg g(1);
    g.select(0, reason::kWW);
    g.select(0, reason::kSV);
    EXPECT_EQ(g.reasons(0), uint8_t(reason::kWW | reason::kSV));
    EXPECT_EQ(g.irVec(), 0b1u);
}

TEST(Rdfg, OutOfRangePanics)
{
    Rdfg g(2);
    EXPECT_THROW(g.select(2, reason::kBR), PanicError);
    EXPECT_THROW(g.addEdge(0, 5), PanicError);
    EXPECT_THROW(g.addEdge(1, 1), PanicError); // self edge
}

} // namespace
} // namespace slip
