/**
 * Guards the calibration of the SPEC95 substitutes: each workload was
 * designed to land in a particular branch-predictability /
 * ineffectual-write regime (DESIGN.md §1), because those regimes are
 * what drive the paper's per-benchmark results. These tests pin the
 * *relative* characteristics so a workload edit that destroys its
 * character fails loudly, without over-constraining absolute numbers.
 */

#include <gtest/gtest.h>

#include <map>

#include "assembler/assembler.hh"
#include "harness/experiment.hh"
#include "workloads/workloads.hh"

namespace slip
{
namespace
{

struct Profile
{
    double ssIpc = 0.0;
    double mispPer1000 = 0.0;
    double removedFraction = 0.0;
    bool correct = false;
};

const std::map<std::string, Profile> &
profiles()
{
    static std::map<std::string, Profile> cache;
    if (cache.empty()) {
        for (const Workload &w : allWorkloads(WorkloadSize::Test)) {
            const Program p = assemble(w.source);
            const std::string want = goldenOutput(p);
            const RunMetrics ss =
                runSS(p, ss64x4Params(), "SS(64x4)", want);
            const RunMetrics cmp =
                runSlipstream(p, cmp2x64x4Params(), want);
            cache[w.name] = {ss.ipc, ss.branchMispPer1000,
                             cmp.removedFraction,
                             ss.outputCorrect && cmp.outputCorrect};
        }
    }
    return cache;
}

TEST(WorkloadCharacter, EveryModelRunIsArchitecturallyCorrect)
{
    for (const auto &[name, p] : profiles())
        EXPECT_TRUE(p.correct) << name;
}

TEST(WorkloadCharacter, M88ksimIsTheMostRemovable)
{
    // The paper's headline: the interpreter's dead flag writes and
    // deterministic dispatch make m88ksim the removal champion.
    const auto &p = profiles();
    for (const auto &[name, prof] : p) {
        if (name == "m88ksim")
            continue;
        EXPECT_GE(p.at("m88ksim").removedFraction,
                  prof.removedFraction * 0.9)
            << "m88ksim should be at or near the top; " << name
            << " removes more";
    }
    EXPECT_GT(p.at("m88ksim").removedFraction, 0.10);
}

TEST(WorkloadCharacter, PredictableBenchmarksAreBranchQuiet)
{
    // Table 3's correlation: vortex/m88ksim/jpeg are the most
    // predictable codes; li/go/gcc the least.
    const auto &p = profiles();
    const double quiet =
        std::max({p.at("m88ksim").mispPer1000,
                  p.at("vortex").mispPer1000,
                  p.at("jpeg").mispPer1000});
    const double noisy =
        std::min({p.at("li").mispPer1000, p.at("go").mispPer1000,
                  p.at("gcc").mispPer1000});
    EXPECT_LT(quiet, noisy)
        << "the predictable trio should mispredict less than the "
           "data-dependent trio";
}

TEST(WorkloadCharacter, DataDependentBenchmarksResistRemoval)
{
    // compress/go: data-dependent control flow -> little stable
    // removal (the paper's flat bars in Figure 6).
    const auto &p = profiles();
    EXPECT_LT(p.at("compress").removedFraction,
              p.at("m88ksim").removedFraction);
    EXPECT_LT(p.at("go").removedFraction,
              p.at("m88ksim").removedFraction);
}

TEST(WorkloadCharacter, JpegHasHighBaselineIlp)
{
    // The DCT kernel should already run fast on the baseline — the
    // reason slipstreaming has no headroom there.
    const auto &p = profiles();
    for (const auto &[name, prof] : p) {
        if (name == "jpeg" || name == "m88ksim")
            continue;
        EXPECT_GE(p.at("jpeg").ssIpc, prof.ssIpc) << name;
    }
    EXPECT_GT(p.at("jpeg").ssIpc, 3.0);
}

TEST(WorkloadCharacter, BaselineIpcsAreInThePlausibleBand)
{
    // The paper's SS(64x4) IPCs span 1.72 (compress) to 3.24
    // (jpeg/vortex). Ours should live in a similar band — no
    // benchmark degenerate (IPC < 1) or superscalar-impossible.
    for (const auto &[name, p] : profiles()) {
        EXPECT_GT(p.ssIpc, 1.0) << name;
        EXPECT_LE(p.ssIpc, 4.0) << name;
    }
}

} // namespace
} // namespace slip
