#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "common/random.hh"
#include "func/func_sim.hh"
#include "slipstream/slipstream_processor.hh"
#include "uarch/ss_processor.hh"

namespace slip
{
namespace
{

/**
 * A loop-heavy program with dead writes, same-value writes, and
 * predictable branches — prime slipstream material.
 */
const char *kRemovableProgram = R"(
.data
arr: .space 800
.text
main:
    la   a0, arr
    li   s0, 0
repeat:
    li   t0, 0
inner:
    slli t2, t0, 3
    add  t2, t2, a0
    ld   t3, 0(t2)
    add  s1, s1, t3
    addi t9, zero, 3    # dead: overwritten next iteration
    addi t0, t0, 1
    li   t4, 100
    blt  t0, t4, inner
    addi s0, s0, 1
    li   t4, 60
    blt  s0, t4, repeat
    putn s1
    halt
)";

std::string
golden(const Program &p)
{
    FuncSim sim(p);
    return sim.run().output;
}

TEST(Slipstream, OutputMatchesFunctionalSim)
{
    Program p = assemble(kRemovableProgram);
    SlipstreamProcessor proc(p);
    const SlipstreamRunResult r = proc.run();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.output, golden(p));
}

TEST(Slipstream, RemovesInstructionsWithConfidence)
{
    Program p = assemble(kRemovableProgram);
    SlipstreamProcessor proc(p);
    const SlipstreamRunResult r = proc.run();
    EXPECT_GT(r.removedFraction(), 0.2);
    // The A-stream retires meaningfully fewer instructions.
    EXPECT_LT(r.aRetired, r.rRetired);
    // Breakdown categories are populated.
    uint64_t total = 0;
    for (const auto &[name, count] : r.removedByReason)
        total += count;
    EXPECT_EQ(total, r.removedSlots);
}

TEST(Slipstream, IRMispredictionsAreRareWithConfidence)
{
    Program p = assemble(kRemovableProgram);
    SlipstreamProcessor proc(p);
    const SlipstreamRunResult r = proc.run();
    // Paper: < 0.05/1000 at threshold 32 on SPEC95. This program's
    // inner loop has a *fixed* trip count of 100, so its exit branch
    // is structurally unpredictable and its removal costs one type-1
    // recovery per lap (~1.2/1000) — cheap (near the 21-cycle
    // minimum) but counted. Bound well below the rate that would
    // indicate wrong-removal (type 2) recoveries.
    EXPECT_LT(r.irMispPer1000(), 2.0);
}

TEST(Slipstream, RecoveryPenaltyNearMinimumWhenTriggered)
{
    Program p = assemble(kRemovableProgram);
    SlipstreamProcessor proc(p);
    const SlipstreamRunResult r = proc.run();
    if (r.irMispredicts > 0) {
        EXPECT_GE(r.avgIRPenalty(), 21.0); // Table 2 minimum
        EXPECT_LT(r.avgIRPenalty(), 60.0);
    }
}

TEST(Slipstream, ReliableModeExecutesFullyRedundantly)
{
    Program p = assemble(kRemovableProgram);
    SlipstreamParams params;
    params.irPred.enabled = false; // AR-SMT style
    SlipstreamProcessor proc(p, params);
    const SlipstreamRunResult r = proc.run();
    EXPECT_EQ(r.output, golden(p));
    EXPECT_EQ(r.removedSlots, 0u);
    EXPECT_EQ(r.aRetired, r.rRetired);
    EXPECT_EQ(r.irMispredicts, 0u);
}

TEST(Slipstream, RecursiveProgramStaysCorrect)
{
    Program p = assemble(R"(
main:
    li   a0, 9
    call fib
    putn a1
    halt
fib:
    push ra
    li   t0, 2
    blt  a0, t0, base
    push a0
    addi a0, a0, -1
    call fib
    pop  a0
    push a1
    addi a0, a0, -2
    call fib
    pop  t1
    add  a1, a1, t1
    pop  ra
    ret
base:
    mv   a1, a0
    pop  ra
    ret
)");
    SlipstreamProcessor proc(p);
    const SlipstreamRunResult r = proc.run();
    EXPECT_EQ(r.output, "34\n");
}

// ---- adversarial predictors: recovery must preserve correctness ----

/** Removes every eligible instruction of every trace, always. */
class RemoveEverythingPredictor : public IRPredictor
{
  public:
    using IRPredictor::IRPredictor;

    std::optional<RemovalPlan>
    lookup(const PathHistory &, const TraceId &predicted) const override
    {
        RemovalPlan plan;
        plan.irVec = (uint64_t(1) << predicted.length) - 1;
        plan.reasons.assign(predicted.length, reason::kBR);
        return plan;
    }
};

/** Randomly removes ~30% of slots — stresses every recovery path. */
class RandomRemovalPredictor : public IRPredictor
{
  public:
    explicit RandomRemovalPredictor(uint64_t seed)
        : IRPredictor(IRPredictorParams{}), rng(seed)
    {
    }

    std::optional<RemovalPlan>
    lookup(const PathHistory &, const TraceId &predicted) const override
    {
        RemovalPlan plan;
        for (unsigned i = 0; i < predicted.length; ++i) {
            if (rng.chance(0.3))
                plan.irVec |= uint64_t(1) << i;
        }
        if (plan.irVec == 0)
            return std::nullopt;
        plan.reasons.assign(predicted.length, reason::kWW);
        return plan;
    }

  private:
    mutable Rng rng;
};

TEST(SlipstreamAdversarial, RemoveEverythingStillCorrect)
{
    Program p = assemble(kRemovableProgram);
    SlipstreamParams params;
    SlipstreamProcessor proc(
        p, params, std::make_unique<RemoveEverythingPredictor>());
    const SlipstreamRunResult r = proc.run();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.output, golden(p));
    EXPECT_GT(r.irMispredicts, 0u); // it definitely went wrong...
}

TEST(SlipstreamAdversarial, RandomRemovalStillCorrect)
{
    Program p = assemble(R"(
.data
buf: .space 256
.text
main:
    la   a0, buf
    li   s0, 0
loop:
    andi t0, s0, 31
    slli t0, t0, 3
    add  t0, t0, a0
    ld   t1, 0(t0)
    add  t1, t1, s0
    sd   t1, 0(t0)
    addi s0, s0, 1
    li   t2, 400
    blt  s0, t2, loop
    li   t0, 0
    li   t3, 0
sum:
    slli t1, t0, 3
    add  t1, t1, a0
    ld   t2, 0(t1)
    add  t3, t3, t2
    addi t0, t0, 1
    li   t4, 32
    blt  t0, t4, sum
    putn t3
    halt
)");
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
        SlipstreamParams params;
        SlipstreamProcessor proc(
            p, params, std::make_unique<RandomRemovalPredictor>(seed));
        const SlipstreamRunResult r = proc.run();
        EXPECT_TRUE(r.halted) << "seed " << seed;
        EXPECT_EQ(r.output, golden(p)) << "seed " << seed;
    }
}

TEST(Slipstream, MaxCyclesBoundsRun)
{
    Program p = assemble("main: j main\n");
    SlipstreamProcessor proc(p);
    const SlipstreamRunResult r = proc.run(2000);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.cycles, 2000u);
}

TEST(Slipstream, TinyProgramTerminates)
{
    Program p = assemble("main: halt\n");
    SlipstreamProcessor proc(p);
    const SlipstreamRunResult r = proc.run();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.rRetired, 1u);
}

} // namespace
} // namespace slip
