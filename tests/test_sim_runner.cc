/**
 * @file
 * Tests for the parallel experiment engine: the work-stealing thread
 * pool, the memoized program cache, and — the load-bearing property —
 * that SimJobRunner produces bit-identical results whatever the
 * worker count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "harness/sim_runner.hh"
#include "harness/thread_pool.hh"

namespace slip
{
namespace
{

TEST(ThreadPool, RunsEveryJob)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ReusableAfterWait)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&] { ++ran; });
        pool.wait();
        EXPECT_EQ(ran.load(), (round + 1) * 10);
    }
}

TEST(ThreadPool, SingleWorkerStillDrains)
{
    ThreadPool pool(1);
    std::atomic<int> ran{0};
    for (int i = 0; i < 20; ++i)
        pool.submit([&] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPool, DestructorDrainsOutstandingJobs)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < 50; ++i)
            pool.submit([&] { ++ran; });
        // No wait(): the destructor must finish the work.
    }
    EXPECT_EQ(ran.load(), 50);
}

TEST(SimJobRunner, ResultsComeBackInSubmissionOrder)
{
    SimJobRunner runner(4);
    for (int i = 0; i < 16; ++i) {
        runner.add([i] {
            RunMetrics m;
            m.retired = uint64_t(i);
            return m;
        });
    }
    const std::vector<RunMetrics> results = runner.run();
    ASSERT_EQ(results.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(results[i].retired, uint64_t(i));
}

TEST(SimJobRunner, RunClearsTheQueue)
{
    SimJobRunner runner(2);
    runner.add([] { return RunMetrics{}; });
    EXPECT_EQ(runner.pending(), 1u);
    runner.run();
    EXPECT_EQ(runner.pending(), 0u);
    EXPECT_TRUE(runner.run().empty());
}

TEST(SimJobRunner, JobExceptionIsRethrown)
{
    for (unsigned jobs : {1u, 4u}) {
        SimJobRunner runner(jobs);
        runner.add([] { return RunMetrics{}; });
        runner.add([]() -> RunMetrics {
            throw std::runtime_error("job failed");
        });
        EXPECT_THROW(runner.run(), std::runtime_error);
    }
}

TEST(ProgramCache, MemoizesPerWorkloadAndSize)
{
    ProgramCache cache;
    const ProgramCache::Entry &a =
        cache.get("compress", WorkloadSize::Test);
    const ProgramCache::Entry &b =
        cache.get("compress", WorkloadSize::Test);
    EXPECT_EQ(&a, &b); // same entry, not a re-assembly
    EXPECT_FALSE(a.golden.empty());
    EXPECT_GT(a.goldenInstCount, 0u);
}

void
expectIdenticalMetrics(const RunMetrics &a, const RunMetrics &b)
{
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.retired, b.retired);
    EXPECT_EQ(a.ipc, b.ipc); // bit-identical, not approximately
    EXPECT_EQ(a.branchMispPer1000, b.branchMispPer1000);
    EXPECT_EQ(a.outputCorrect, b.outputCorrect);
    EXPECT_EQ(a.outputBytes, b.outputBytes);
    EXPECT_EQ(a.removedFraction, b.removedFraction);
    EXPECT_EQ(a.removedByReason, b.removedByReason);
    EXPECT_EQ(a.removedByReasonMask, b.removedByReasonMask);
    EXPECT_EQ(a.irMispPer1000, b.irMispPer1000);
    EXPECT_EQ(a.avgIRPenalty, b.avgIRPenalty);
    EXPECT_EQ(a.recoveries, b.recoveries);
}

/**
 * The acceptance property: the same grid run serially and with
 * several workers yields byte-identical metrics. Simulations share
 * only const data, so worker count must not leak into results.
 */
TEST(SimJobRunner, ParallelRunsAreDeterministic)
{
    const std::vector<std::string> names = {"m88ksim", "compress"};

    const auto buildGrid = [&](SimJobRunner &runner) {
        for (const std::string &name : names) {
            const ProgramCache::Entry &e =
                ProgramCache::global().get(name, WorkloadSize::Test);
            runner.add([&e] {
                return runSS(e.program, ss64x4Params(), "SS(64x4)",
                             e.golden);
            });
            runner.add([&e] {
                return runSlipstream(e.program, cmp2x64x4Params(),
                                     e.golden);
            });
        }
    };

    SimJobRunner serial(1);
    buildGrid(serial);
    const std::vector<RunMetrics> want = serial.run();

    SimJobRunner parallel(4);
    buildGrid(parallel);
    const std::vector<RunMetrics> got = parallel.run();

    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i) {
        SCOPED_TRACE("grid index " + std::to_string(i));
        expectIdenticalMetrics(want[i], got[i]);
        EXPECT_TRUE(got[i].outputCorrect);
    }
}

TEST(DefaultJobs, EnvOverrideWins)
{
    setenv("SLIPSTREAM_JOBS", "3", 1);
    EXPECT_EQ(defaultJobs(), 3u);
    unsetenv("SLIPSTREAM_JOBS");
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(DefaultJobs, GarbageFallsBackToHardware)
{
    setenv("SLIPSTREAM_JOBS", "not-a-number", 1);
    EXPECT_GE(defaultJobs(), 1u);
    unsetenv("SLIPSTREAM_JOBS");
}

} // namespace
} // namespace slip
