/**
 * @file
 * Tests for the parallel experiment engine: the work-stealing thread
 * pool, the memoized program cache, and — the load-bearing property —
 * that SimJobRunner produces bit-identical results whatever the
 * worker count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <new>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <vector>

#include "common/env.hh"
#include "harness/sim_runner.hh"
#include "harness/thread_pool.hh"

namespace slip
{
namespace
{

TEST(ThreadPool, RunsEveryJob)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ReusableAfterWait)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&] { ++ran; });
        pool.wait();
        EXPECT_EQ(ran.load(), (round + 1) * 10);
    }
}

TEST(ThreadPool, SingleWorkerStillDrains)
{
    ThreadPool pool(1);
    std::atomic<int> ran{0};
    for (int i = 0; i < 20; ++i)
        pool.submit([&] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPool, DestructorDrainsOutstandingJobs)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < 50; ++i)
            pool.submit([&] { ++ran; });
        // No wait(): the destructor must finish the work.
    }
    EXPECT_EQ(ran.load(), 50);
}

TEST(SimJobRunner, ResultsComeBackInSubmissionOrder)
{
    SimJobRunner runner(4);
    for (int i = 0; i < 16; ++i) {
        runner.add([i] {
            RunMetrics m;
            m.retired = uint64_t(i);
            return m;
        });
    }
    const std::vector<RunMetrics> results = runner.run();
    ASSERT_EQ(results.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(results[i].retired, uint64_t(i));
}

TEST(SimJobRunner, RunClearsTheQueue)
{
    SimJobRunner runner(2);
    runner.add([] { return RunMetrics{}; });
    EXPECT_EQ(runner.pending(), 1u);
    runner.run();
    EXPECT_EQ(runner.pending(), 0u);
    EXPECT_TRUE(runner.run().empty());
}

TEST(SimJobRunner, JobExceptionIsRethrown)
{
    for (unsigned jobs : {1u, 4u}) {
        SimJobRunner runner(jobs);
        runner.add([] { return RunMetrics{}; });
        runner.add([]() -> RunMetrics {
            throw std::runtime_error("job failed");
        });
        EXPECT_THROW(runner.run(), std::runtime_error);
    }
}

TEST(ProgramCache, MemoizesPerWorkloadAndSize)
{
    ProgramCache cache;
    const ProgramCache::Entry &a =
        cache.get("compress", WorkloadSize::Test);
    const ProgramCache::Entry &b =
        cache.get("compress", WorkloadSize::Test);
    EXPECT_EQ(&a, &b); // same entry, not a re-assembly
    EXPECT_FALSE(a.golden.empty());
    EXPECT_GT(a.goldenInstCount, 0u);
}

void
expectIdenticalMetrics(const RunMetrics &a, const RunMetrics &b)
{
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.retired, b.retired);
    EXPECT_EQ(a.ipc, b.ipc); // bit-identical, not approximately
    EXPECT_EQ(a.branchMispPer1000, b.branchMispPer1000);
    EXPECT_EQ(a.outputCorrect, b.outputCorrect);
    EXPECT_EQ(a.outputBytes, b.outputBytes);
    EXPECT_EQ(a.removedFraction, b.removedFraction);
    EXPECT_EQ(a.removedByReason, b.removedByReason);
    EXPECT_EQ(a.removedByReasonMask, b.removedByReasonMask);
    EXPECT_EQ(a.irMispPer1000, b.irMispPer1000);
    EXPECT_EQ(a.avgIRPenalty, b.avgIRPenalty);
    EXPECT_EQ(a.recoveries, b.recoveries);
}

/**
 * The acceptance property: the same grid run serially and with
 * several workers yields byte-identical metrics. Simulations share
 * only const data, so worker count must not leak into results.
 */
TEST(SimJobRunner, ParallelRunsAreDeterministic)
{
    const std::vector<std::string> names = {"m88ksim", "compress"};

    const auto buildGrid = [&](SimJobRunner &runner) {
        for (const std::string &name : names) {
            const ProgramCache::Entry &e =
                ProgramCache::global().get(name, WorkloadSize::Test);
            runner.add([&e] {
                return runSS(e.program, ss64x4Params(), "SS(64x4)",
                             e.golden);
            });
            runner.add([&e] {
                return runSlipstream(e.program, cmp2x64x4Params(),
                                     e.golden);
            });
        }
    };

    SimJobRunner serial(1);
    buildGrid(serial);
    const std::vector<RunMetrics> want = serial.run();

    SimJobRunner parallel(4);
    buildGrid(parallel);
    const std::vector<RunMetrics> got = parallel.run();

    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i) {
        SCOPED_TRACE("grid index " + std::to_string(i));
        expectIdenticalMetrics(want[i], got[i]);
        EXPECT_TRUE(got[i].outputCorrect);
    }
}

/**
 * The satellite regression: one throwing job must not void its
 * siblings — N-1 good results survive, with the failure classified
 * in its own Outcome slot.
 */
TEST(SimJobRunner, SiblingResultsSurviveOneThrowingJob)
{
    for (unsigned jobs : {1u, 4u}) {
        SCOPED_TRACE(jobs);
        SimJobRunner runner(jobs, Supervision{});
        for (int i = 0; i < 8; ++i) {
            runner.add([i]() -> RunMetrics {
                if (i == 3)
                    throw std::runtime_error("trial 3 blew up");
                RunMetrics m;
                m.retired = uint64_t(i);
                return m;
            });
        }
        const std::vector<JobOutcome> outcomes =
            runner.runSupervised();
        ASSERT_EQ(outcomes.size(), 8u);
        for (int i = 0; i < 8; ++i) {
            if (i == 3) {
                EXPECT_EQ(outcomes[i].status,
                          JobOutcome::Status::Error);
                EXPECT_EQ(outcomes[i].errorKind, ErrorKind::Unknown);
                EXPECT_NE(
                    outcomes[i].errorMessage.find("trial 3 blew up"),
                    std::string::npos);
            } else {
                EXPECT_TRUE(outcomes[i].ok());
                EXPECT_EQ(outcomes[i].metrics.retired, uint64_t(i));
            }
        }
    }
}

/**
 * The acceptance property: a deliberately hung job is reaped as
 * timed-out within the configured deadline — via cooperative
 * cancellation, not process death — and its siblings are unharmed.
 */
TEST(SimJobRunner, HungJobReapedAsTimedOutWithoutVoidingBatch)
{
    Supervision sup;
    sup.timeoutMs = 50;
    SimJobRunner runner(2, sup);
    runner.add([](const CancelToken &cancel) {
        RunMetrics m;
        while (!cancel.cancelled()) // a stuck trial, cooperative
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        m.cancelled = true;
        return m;
    });
    runner.add([] {
        RunMetrics m;
        m.retired = 7;
        return m;
    });

    const auto start = std::chrono::steady_clock::now();
    const std::vector<JobOutcome> outcomes = runner.runSupervised();
    const auto elapsed = std::chrono::steady_clock::now() - start;

    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0].status, JobOutcome::Status::TimedOut);
    EXPECT_TRUE(outcomes[1].ok());
    EXPECT_EQ(outcomes[1].metrics.retired, 7u);
    // Reaped within the deadline plus slack, not after minutes.
    EXPECT_LT(elapsed, std::chrono::seconds(10));
}

TEST(SimJobRunner, SerialPathAlsoEnforcesTheDeadline)
{
    Supervision sup;
    sup.timeoutMs = 50;
    SimJobRunner runner(1, sup);
    runner.add([](const CancelToken &cancel) {
        while (!cancel.cancelled())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return RunMetrics{};
    });
    runner.add([] { return RunMetrics{}; });
    const std::vector<JobOutcome> outcomes = runner.runSupervised();
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0].status, JobOutcome::Status::TimedOut);
    EXPECT_TRUE(outcomes[1].ok());
}

TEST(SimJobRunner, RetryableFailuresRetryWithBoundedAttempts)
{
    Supervision sup;
    sup.retries = 2;
    sup.backoffMs = 1;
    SimJobRunner runner(1, sup);
    std::atomic<int> calls{0};
    runner.add([&]() -> RunMetrics {
        if (++calls < 3)
            throw std::system_error(std::make_error_code(
                std::errc::resource_unavailable_try_again));
        RunMetrics m;
        m.retired = 1;
        return m;
    });
    const std::vector<JobOutcome> outcomes = runner.runSupervised();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok());
    EXPECT_EQ(outcomes[0].attempts, 3u);
    EXPECT_EQ(calls.load(), 3);
}

TEST(SimJobRunner, ExhaustedRetriesReportTheError)
{
    Supervision sup;
    sup.retries = 1;
    sup.backoffMs = 1;
    SimJobRunner runner(1, sup);
    std::atomic<int> calls{0};
    runner.add([&]() -> RunMetrics {
        ++calls;
        throw std::bad_alloc();
    });
    const std::vector<JobOutcome> outcomes = runner.runSupervised();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].status, JobOutcome::Status::Error);
    EXPECT_EQ(outcomes[0].errorKind, ErrorKind::Resource);
    EXPECT_EQ(outcomes[0].attempts, 2u);
    EXPECT_EQ(calls.load(), 2);
}

TEST(SimJobRunner, DeterministicFailuresAreNeverRetried)
{
    Supervision sup;
    sup.retries = 3;
    sup.backoffMs = 1;
    SimJobRunner runner(1, sup);
    std::atomic<int> calls{0};
    runner.add([&]() -> RunMetrics {
        ++calls;
        SLIP_FATAL("bad trial configuration");
    });
    const std::vector<JobOutcome> outcomes = runner.runSupervised();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].status, JobOutcome::Status::Error);
    EXPECT_EQ(outcomes[0].errorKind, ErrorKind::UserError);
    EXPECT_EQ(outcomes[0].attempts, 1u);
    EXPECT_EQ(calls.load(), 1);
}

TEST(SimJobRunner, LegacyRunTurnsTimeoutsIntoFatal)
{
    Supervision sup;
    sup.timeoutMs = 50;
    SimJobRunner runner(1, sup);
    runner.add([](const CancelToken &cancel) {
        while (!cancel.cancelled())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return RunMetrics{};
    });
    EXPECT_THROW(runner.run(), FatalError);
}

TEST(Supervision, EnvKnobsOverrideDefaults)
{
    setenv("SLIPSTREAM_TRIAL_TIMEOUT_MS", "2500", 1);
    setenv("SLIPSTREAM_TRIAL_RETRIES", "4", 1);
    const Supervision s = Supervision::fromEnv();
    EXPECT_EQ(s.timeoutMs, 2500u);
    EXPECT_EQ(s.retries, 4u);
    unsetenv("SLIPSTREAM_TRIAL_TIMEOUT_MS");
    unsetenv("SLIPSTREAM_TRIAL_RETRIES");
}

TEST(Supervision, GarbageEnvValuesFallBackToDefaults)
{
    const Supervision defaults;
    setenv("SLIPSTREAM_TRIAL_TIMEOUT_MS", "soon", 1);
    setenv("SLIPSTREAM_TRIAL_RETRIES", "-2", 1);
    const Supervision s = Supervision::fromEnv();
    EXPECT_EQ(s.timeoutMs, defaults.timeoutMs);
    EXPECT_EQ(s.retries, defaults.retries);
    unsetenv("SLIPSTREAM_TRIAL_TIMEOUT_MS");
    unsetenv("SLIPSTREAM_TRIAL_RETRIES");
}

TEST(EnvKnobs, U64AndFlagValidation)
{
    setenv("SLIP_TEST_KNOB", "123", 1);
    EXPECT_EQ(envU64("SLIP_TEST_KNOB", 7), 123u);
    setenv("SLIP_TEST_KNOB", "12x", 1);
    EXPECT_EQ(envU64("SLIP_TEST_KNOB", 7), 7u); // warns, falls back
    setenv("SLIP_TEST_KNOB", "-5", 1);
    EXPECT_EQ(envU64("SLIP_TEST_KNOB", 7), 7u);
    unsetenv("SLIP_TEST_KNOB");
    EXPECT_EQ(envU64("SLIP_TEST_KNOB", 7), 7u);

    setenv("SLIP_TEST_FLAG", "yes", 1);
    EXPECT_TRUE(envFlag("SLIP_TEST_FLAG", false));
    setenv("SLIP_TEST_FLAG", "OFF", 1);
    EXPECT_FALSE(envFlag("SLIP_TEST_FLAG", true));
    setenv("SLIP_TEST_FLAG", "banana", 1);
    EXPECT_TRUE(envFlag("SLIP_TEST_FLAG", true)); // warns, falls back
    unsetenv("SLIP_TEST_FLAG");
    EXPECT_FALSE(envFlag("SLIP_TEST_FLAG", false));
}

TEST(DefaultJobs, EnvOverrideWins)
{
    setenv("SLIPSTREAM_JOBS", "3", 1);
    EXPECT_EQ(defaultJobs(), 3u);
    unsetenv("SLIPSTREAM_JOBS");
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(DefaultJobs, GarbageFallsBackToHardware)
{
    setenv("SLIPSTREAM_JOBS", "not-a-number", 1);
    EXPECT_GE(defaultJobs(), 1u);
    unsetenv("SLIPSTREAM_JOBS");
}

} // namespace
} // namespace slip
