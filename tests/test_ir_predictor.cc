#include <gtest/gtest.h>

#include "slipstream/ir_predictor.hh"

namespace slip
{
namespace
{

TraceId
traceAt(Addr pc)
{
    return TraceId{pc, 0b1, 1, 8};
}

RemovalPlan
plan(uint64_t irVec)
{
    RemovalPlan p;
    p.irVec = irVec;
    p.reasons.assign(8, reason::kBR);
    return p;
}

IRPredictorParams
lowThreshold(unsigned threshold = 3)
{
    IRPredictorParams p;
    p.confidenceThreshold = threshold;
    return p;
}

TEST(IRPredictor, NoRemovalBelowThreshold)
{
    IRPredictor pred(lowThreshold(3));
    PathHistory h;
    const TraceId t = traceAt(0x1000);
    pred.update(h, t, plan(0b0110));
    pred.update(h, t, plan(0b0110));
    pred.update(h, t, plan(0b0110));
    EXPECT_FALSE(pred.lookup(h, t).has_value());
    pred.update(h, t, plan(0b0110));
    auto got = pred.lookup(h, t);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->irVec, 0b0110u);
}

TEST(IRPredictor, ResettingCounterOnIrVecChange)
{
    IRPredictor pred(lowThreshold(2));
    PathHistory h;
    const TraceId t = traceAt(0x1000);
    for (int i = 0; i < 5; ++i)
        pred.update(h, t, plan(0b1));
    ASSERT_TRUE(pred.lookup(h, t).has_value());
    pred.update(h, t, plan(0b10)); // different ir-vec: reset
    EXPECT_FALSE(pred.lookup(h, t).has_value());
}

TEST(IRPredictor, UnstableNextTraceNeverConfident)
{
    // The same path history is followed alternately by two different
    // traces: the {trace-id, ir-vec} pair keeps changing, so the
    // entry never saturates — the paper's §2.1.3 instability effect.
    IRPredictor pred(lowThreshold(3));
    PathHistory h;
    const TraceId a = traceAt(0x1000);
    const TraceId b = traceAt(0x2000);
    for (int i = 0; i < 50; ++i) {
        pred.update(h, a, plan(0b1));
        pred.update(h, b, plan(0b1));
    }
    EXPECT_FALSE(pred.lookup(h, a).has_value());
    EXPECT_FALSE(pred.lookup(h, b).has_value());
}

TEST(IRPredictor, LookupRequiresMatchingTraceId)
{
    IRPredictor pred(lowThreshold(1));
    PathHistory h;
    const TraceId t = traceAt(0x1000);
    pred.update(h, t, plan(0b1));
    pred.update(h, t, plan(0b1));
    ASSERT_TRUE(pred.lookup(h, t).has_value());
    // Same history, different predicted trace: no plan.
    EXPECT_FALSE(pred.lookup(h, traceAt(0x2000)).has_value());
}

TEST(IRPredictor, EmptyIrVecYieldsNoPlan)
{
    IRPredictor pred(lowThreshold(1));
    PathHistory h;
    const TraceId t = traceAt(0x1000);
    for (int i = 0; i < 5; ++i)
        pred.update(h, t, plan(0));
    EXPECT_FALSE(pred.lookup(h, t).has_value());
}

TEST(IRPredictor, DisabledPredictorRemovesNothing)
{
    IRPredictorParams params = lowThreshold(1);
    params.enabled = false; // reliable (AR-SMT) mode
    IRPredictor pred(params);
    PathHistory h;
    const TraceId t = traceAt(0x1000);
    for (int i = 0; i < 5; ++i)
        pred.update(h, t, plan(0b1));
    EXPECT_FALSE(pred.lookup(h, t).has_value());
}

TEST(IRPredictor, ResetDropsAllConfidence)
{
    IRPredictor pred(lowThreshold(1));
    PathHistory h;
    const TraceId t = traceAt(0x1000);
    pred.update(h, t, plan(0b1));
    pred.update(h, t, plan(0b1));
    ASSERT_TRUE(pred.lookup(h, t).has_value());
    pred.reset();
    EXPECT_FALSE(pred.lookup(h, t).has_value());
}

TEST(IRPredictor, ResetEntryIsTargeted)
{
    IRPredictor pred(lowThreshold(1));
    PathHistory h1, h2;
    h2.push(traceAt(0x9000));
    const TraceId t1 = traceAt(0x1000);
    const TraceId t2 = traceAt(0x2000);
    for (int i = 0; i < 3; ++i) {
        pred.update(h1, t1, plan(0b1));
        pred.update(h2, t2, plan(0b10));
    }
    ASSERT_TRUE(pred.lookup(h1, t1).has_value());
    ASSERT_TRUE(pred.lookup(h2, t2).has_value());
    pred.resetEntry(h1, t1);
    EXPECT_FALSE(pred.lookup(h1, t1).has_value());
    EXPECT_TRUE(pred.lookup(h2, t2).has_value());
}

TEST(IRPredictor, ReasonsRideAlong)
{
    IRPredictor pred(lowThreshold(1));
    PathHistory h;
    const TraceId t = traceAt(0x1000);
    RemovalPlan p = plan(0b100);
    p.reasons.assign(8, 0);
    p.reasons[2] = reason::kSV;
    pred.update(h, t, p);
    pred.update(h, t, p);
    auto got = pred.lookup(h, t);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->reasonAt(2), reason::kSV);
    EXPECT_TRUE(got->removes(2));
    EXPECT_FALSE(got->removes(1));
    EXPECT_EQ(got->removedCount(), 1u);
}

TEST(ReasonName, PaperCategories)
{
    EXPECT_EQ(reasonName(reason::kBR), "BR");
    EXPECT_EQ(reasonName(reason::kWW), "WW");
    EXPECT_EQ(reasonName(reason::kSV), "SV");
    EXPECT_EQ(reasonName(reason::kProp | reason::kBR), "P:BR");
    EXPECT_EQ(reasonName(uint8_t(reason::kProp | reason::kSV |
                                 reason::kWW | reason::kBR)),
              "P:SV,WW,BR");
    EXPECT_EQ(reasonName(0), "none");
}

} // namespace
} // namespace slip
