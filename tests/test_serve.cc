/**
 * The slipd campaign-server stack: content-addressed result cache
 * (key stability, persistence, eviction), version negotiation that
 * fails closed in both directions with a diagnosis naming both
 * revisions, torn mid-stream frames surfacing as errors instead of
 * hangs, and the served-batch contracts — byte identity against the
 * single-process pipeline, cache hits on resubmission, cancellation
 * revoking undispatched trials, and drain rejecting new batches.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "common/cancel.hh"
#include "harness/fault_campaign.hh"
#include "harness/sim_runner.hh"
#include "harness/wire.hh"
#include "serve/client.hh"
#include "serve/result_cache.hh"
#include "serve/serve_proto.hh"
#include "serve/server.hh"

namespace slip::serve
{
namespace
{

namespace fs = std::filesystem;

/** A fresh scratch directory, removed on destruction. */
struct ScratchDir
{
    ScratchDir()
    {
        char tmpl[] = "/tmp/slip_serve_test.XXXXXX";
        path = mkdtemp(tmpl) ? tmpl : "";
        EXPECT_FALSE(path.empty());
    }
    ~ScratchDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string path;
};

// ---------------------------------------------------------------------
// Result cache.
// ---------------------------------------------------------------------

TEST(ResultCache, KeyIsStableAndContentSensitive)
{
    const CacheKey a = cacheKeyOf("trial-bytes");
    const CacheKey b = cacheKeyOf("trial-bytes");
    const CacheKey c = cacheKeyOf("trial-byteS");
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
    EXPECT_EQ(a.hex().size(), 32u);
    EXPECT_NE(a.hex(), c.hex());
}

TEST(ResultCache, StoreThenLookupRoundTrips)
{
    ScratchDir dir;
    ResultCache cache(dir.path + "/cache", 100);
    const CacheKey key = cacheKeyOf("k1");

    std::string line;
    EXPECT_FALSE(cache.lookup(key, line));
    EXPECT_EQ(cache.misses(), 1u);

    cache.store(key, "{\"trial\":0}");
    EXPECT_TRUE(cache.lookup(key, line));
    EXPECT_EQ(line, "{\"trial\":0}");
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.stores(), 1u);
}

TEST(ResultCache, PersistsAcrossInstances)
{
    ScratchDir dir;
    const CacheKey key = cacheKeyOf("survives-restart");
    {
        ResultCache cache(dir.path + "/cache", 100);
        cache.store(key, "line-bytes");
    }
    ResultCache reopened(dir.path + "/cache", 100);
    std::string line;
    EXPECT_TRUE(reopened.lookup(key, line));
    EXPECT_EQ(line, "line-bytes");
}

TEST(ResultCache, EvictsOldestWhenOverCap)
{
    ScratchDir dir;
    ResultCache cache(dir.path + "/cache", 16);
    for (int i = 0; i < 32; ++i)
        cache.store(cacheKeyOf("entry-" + std::to_string(i)),
                    "line-" + std::to_string(i));
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_LE(cache.entries(), 16u);
}

TEST(ResultCache, EmptyRootDisablesEverything)
{
    ResultCache cache("", 100);
    EXPECT_FALSE(cache.enabled());
    const CacheKey key = cacheKeyOf("k");
    cache.store(key, "line");
    std::string line;
    EXPECT_FALSE(cache.lookup(key, line));
    EXPECT_EQ(cache.stores(), 0u);
}

TEST(ResultCache, CampaignKeySeparatesSeedTrialAndBackend)
{
    FaultCampaignConfig cfg;
    cfg.workloads = {"compress"};
    cfg.size = WorkloadSize::Test;
    cfg.trialsPerWorkload = 2;
    cfg.seed = 7;
    const std::vector<CampaignTrialSpec> specs =
        planCampaignTrials(cfg);
    ASSERT_GE(specs.size(), 2u);

    const CacheKey base = campaignTrialKey(cfg, specs[0], 0);
    EXPECT_EQ(base, campaignTrialKey(cfg, specs[0], 0));
    EXPECT_FALSE(base == campaignTrialKey(cfg, specs[0], 1));
    EXPECT_FALSE(base == campaignTrialKey(cfg, specs[1], 1));

    FaultCampaignConfig other = cfg;
    other.seed = 8;
    const std::vector<CampaignTrialSpec> otherSpecs =
        planCampaignTrials(other);
    EXPECT_FALSE(base == campaignTrialKey(other, otherSpecs[0], 0));

    FaultCampaignConfig replay = cfg;
    replay.params.detect.kind = DetectBackendKind::Replay;
    EXPECT_FALSE(base == campaignTrialKey(replay, specs[0], 0));

    // Isolation and worker count must NOT reach the key: byte
    // identity says they cannot change result bytes.
    FaultCampaignConfig forked = cfg;
    forked.isolation = IsolationMode::Fork;
    forked.workers = 7;
    EXPECT_EQ(base, campaignTrialKey(forked, specs[0], 0));
}

TEST(ResultCache, CampaignKeySeparatesAStreamPolicies)
{
    FaultCampaignConfig cfg;
    cfg.workloads = {"compress"};
    cfg.size = WorkloadSize::Test;
    cfg.trialsPerWorkload = 1;
    cfg.seed = 7;
    const std::vector<CampaignTrialSpec> specs =
        planCampaignTrials(cfg);
    ASSERT_GE(specs.size(), 1u);
    const CacheKey base = campaignTrialKey(cfg, specs[0], 0);

    // Same program, same seed, different shortening policy: the keys
    // must differ pairwise, or one policy's cached line would answer
    // for another's trial.
    std::vector<CacheKey> keys;
    for (unsigned i = 0; i < kNumAStreamPolicies; ++i) {
        FaultCampaignConfig alt = cfg;
        alt.params.aPolicy.kind = AStreamPolicyKind(i);
        keys.push_back(campaignTrialKey(alt, specs[0], 0));
    }
    EXPECT_EQ(keys[size_t(AStreamPolicyKind::IRRemoval)], base);
    for (size_t a = 0; a < keys.size(); ++a)
        for (size_t b = a + 1; b < keys.size(); ++b)
            EXPECT_FALSE(keys[a] == keys[b]) << a << " vs " << b;

    // Policy tuning shapes trial dynamics, so it reaches the key too.
    FaultCampaignConfig tuned = cfg;
    tuned.params.aPolicy.runaheadTraces += 1;
    EXPECT_FALSE(base == campaignTrialKey(tuned, specs[0], 0));

    // And both policies really do land as two distinct cache entries.
    ScratchDir dir;
    ResultCache cache(dir.path + "/cache", 100);
    cache.store(keys[0], "line-ir");
    cache.store(keys[1], "line-runahead");
    std::string line;
    ASSERT_TRUE(cache.lookup(keys[0], line));
    EXPECT_EQ(line, "line-ir");
    ASSERT_TRUE(cache.lookup(keys[1], line));
    EXPECT_EQ(line, "line-runahead");
}

TEST(ServeProto, BatchRequestRoundTripsPolicyParams)
{
    BatchRequest req;
    req.kind = BatchKind::Campaign;
    req.id = 3;
    req.name = "proto_policy";
    req.workloads = {"compress"};
    req.policy.kind = AStreamPolicyKind::FilteredRunahead;
    req.policy.runaheadTraces = 9;
    req.policy.missLines = 32;
    req.policy.cooldownTraces = 5;

    wire::Encoder enc;
    encodeBatchRequest(enc, req);
    wire::Decoder dec(enc.bytes());
    const BatchRequest got = decodeBatchRequest(dec);
    EXPECT_TRUE(dec.atEnd());
    EXPECT_EQ(got.policy.kind, AStreamPolicyKind::FilteredRunahead);
    EXPECT_EQ(got.policy.runaheadTraces, 9u);
    EXPECT_EQ(got.policy.missLines, 32u);
    EXPECT_EQ(got.policy.cooldownTraces, 5u);

    // The served trial runs under the requested policy, not the
    // server's default.
    const FaultCampaignConfig cfg = got.toCampaignConfig();
    EXPECT_EQ(cfg.params.aPolicy.kind,
              AStreamPolicyKind::FilteredRunahead);
    EXPECT_EQ(cfg.params.aPolicy.runaheadTraces, 9u);
}

// ---------------------------------------------------------------------
// Version negotiation — both directions fail closed with a diagnosis.
// ---------------------------------------------------------------------

TEST(ServeHandshake, OldClientIsRejectedWithBothVersions)
{
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    // A v1 client's Hello, stamped with the old header version.
    wire::Encoder hello;
    hello.putString("old-client");
    ASSERT_TRUE(wire::writeFrameVersion(fds[0], wire::MsgType::Hello, 1,
                                        hello.bytes()));

    std::string clientName, err;
    EXPECT_FALSE(serverHandshake(fds[1], "testd", clientName, err));
    EXPECT_NE(err.find("v1"), std::string::npos) << err;
    EXPECT_NE(err.find("v" + std::to_string(wire::kVersion)),
              std::string::npos)
        << err;

    // The server told the old client why, not just hung up: a
    // HelloReject frame naming the server's revision.
    wire::FrameInfo reply;
    ASSERT_EQ(wire::readFrameInfo(fds[0], reply), wire::ReadResult::Ok);
    EXPECT_EQ(reply.type, wire::MsgType::HelloReject);
    close(fds[0]);
    close(fds[1]);
}

TEST(ServeHandshake, OldServerIsRefusedWithBothVersions)
{
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    std::string err;
    std::atomic<bool> ok{true};
    std::thread client([&] {
        if (clientHandshake(fds[0], "new-client", err))
            ok = false;
    });

    // The fake old server acks with a v1 header — the client must
    // refuse it even though the frame parses.
    wire::FrameInfo hello;
    ASSERT_EQ(wire::readFrameInfo(fds[1], hello), wire::ReadResult::Ok);
    EXPECT_EQ(hello.type, wire::MsgType::Hello);
    wire::Encoder ack;
    ack.putU16(1);
    ack.putString("oldd");
    ASSERT_TRUE(wire::writeFrameVersion(fds[1], wire::MsgType::HelloAck,
                                        1, ack.bytes()));
    client.join();
    EXPECT_TRUE(ok.load()) << "client accepted a v1 server";
    EXPECT_NE(err.find("v1"), std::string::npos) << err;
    EXPECT_NE(err.find("v" + std::to_string(wire::kVersion)),
              std::string::npos)
        << err;
    close(fds[0]);
    close(fds[1]);
}

TEST(ServeHandshake, RejectFromCurrentServerNamesItsVersion)
{
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    std::string err;
    std::thread client([&] {
        EXPECT_FALSE(clientHandshake(fds[0], "client", err));
    });

    wire::FrameInfo hello;
    ASSERT_EQ(wire::readFrameInfo(fds[1], hello), wire::ReadResult::Ok);
    wire::Encoder reject;
    reject.putU16(wire::kVersion);
    reject.putString("draining");
    ASSERT_TRUE(wire::writeFrame(fds[1], wire::MsgType::HelloReject,
                                 reject.bytes()));
    client.join();
    EXPECT_NE(err.find("draining"), std::string::npos) << err;
    close(fds[0]);
    close(fds[1]);
}

// ---------------------------------------------------------------------
// Torn mid-stream frames: errors, never hangs or misparses.
// ---------------------------------------------------------------------

TEST(ServeFraming, TruncatedHeaderIsErrorNotHang)
{
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    // Half a header, then close: the peer died mid-frame.
    const char partial[] = {0x10, 0x00, 0x00};
    ASSERT_EQ(write(fds[1], partial, sizeof(partial)),
              ssize_t(sizeof(partial)));
    close(fds[1]);

    wire::MsgType type;
    std::string payload;
    EXPECT_EQ(wire::readFrame(fds[0], type, payload),
              wire::ReadResult::Error);
    close(fds[0]);
}

TEST(ServeFraming, TruncatedPayloadIsErrorNotHang)
{
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    // A hand-built header promising 64 payload bytes, then only 3:
    // len | magic | version | type.
    std::string frame;
    const uint32_t len = 64;
    const uint32_t magic = 0x53504C57;
    const uint16_t version = wire::kVersion;
    frame.append(reinterpret_cast<const char *>(&len), 4);
    frame.append(reinterpret_cast<const char *>(&magic), 4);
    frame.append(reinterpret_cast<const char *>(&version), 2);
    frame.push_back(char(wire::MsgType::TrialResult));
    frame.append("abc"); // 3 of the promised 64 bytes
    ASSERT_EQ(write(fds[1], frame.data(), frame.size()),
              ssize_t(frame.size()));
    close(fds[1]);

    wire::MsgType type;
    std::string payload;
    EXPECT_EQ(wire::readFrame(fds[0], type, payload),
              wire::ReadResult::Error);
    close(fds[0]);
}

TEST(ServeFraming, MidStreamVersionDriftIsStrictlyRejected)
{
    // After the handshake every frame goes through the strict reader:
    // a frame stamped with a foreign version is an Error even though
    // readFrameInfo would have accepted it.
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    wire::Encoder enc;
    enc.putU64(1);
    ASSERT_TRUE(wire::writeFrameVersion(
        fds[1], wire::MsgType::CancelBatch, 1, enc.bytes()));
    close(fds[1]);

    wire::MsgType type;
    std::string payload;
    EXPECT_EQ(wire::readFrame(fds[0], type, payload),
              wire::ReadResult::Error);
    close(fds[0]);
}

// ---------------------------------------------------------------------
// Served batches end to end.
// ---------------------------------------------------------------------

struct ServerFixture : ::testing::Test
{
    void
    SetUp() override
    {
        opts.unixPath = dir.path + "/slipd.sock";
        opts.cacheDir = dir.path + "/cache";
        opts.workers = 2;
        server = std::make_unique<Server>(opts);
        std::string err;
        ASSERT_TRUE(server->start(err)) << err;
    }

    void
    TearDown() override
    {
        server->stop();
    }

    BatchRequest
    smallBatch() const
    {
        BatchRequest req;
        req.kind = BatchKind::Campaign;
        req.id = 1;
        req.name = "serve_test";
        req.workloads = {"compress"};
        req.size = WorkloadSize::Test;
        req.trialsPerWorkload = 4;
        req.seed = 41;
        return req;
    }

    /** Submit and return (sorted journal, done). */
    std::string
    submit(const BatchRequest &req, BatchDoneMsg &done)
    {
        Client client;
        std::string err;
        EXPECT_TRUE(client.connect(opts.unixPath, err)) << err;
        EXPECT_TRUE(client.handshake("test-client", err)) << err;
        std::map<uint64_t, std::string> lines;
        EXPECT_TRUE(client.submitBatch(
            req,
            [&](const TrialResultMsg &m) {
                lines[m.index] = m.line;
                return true;
            },
            done, err))
            << err;
        std::string journal;
        for (const auto &[index, line] : lines) {
            journal += line;
            journal += '\n';
        }
        return journal;
    }

    ScratchDir dir;
    ServerOptions opts;
    std::unique_ptr<Server> server;
};

TEST_F(ServerFixture, BatchMatchesSingleProcessPipelineByteForByte)
{
    const BatchRequest req = smallBatch();

    // The reference: the same batch through the local pipeline.
    const FaultCampaignConfig cfg = req.toCampaignConfig();
    const std::vector<CampaignTrialSpec> specs =
        planCampaignTrials(cfg);
    std::string expected;
    for (size_t i = 0; i < specs.size(); ++i) {
        CancelToken cancel;
        JobOutcome o;
        o.metrics = runCampaignTrial(cfg, specs[i], i, cancel);
        expected +=
            campaignTrialLine(cfg, i,
                              recordCampaignTrial(cfg, specs[i], i, o));
        expected += '\n';
    }

    BatchDoneMsg done;
    const std::string served = submit(req, done);
    EXPECT_EQ(done.status, BatchStatus::Ok);
    EXPECT_EQ(done.completed, specs.size());
    EXPECT_EQ(served, expected);
}

TEST_F(ServerFixture, ResubmittedBatchIsServedFromCache)
{
    const BatchRequest req = smallBatch();
    BatchDoneMsg first;
    const std::string cold = submit(req, first);
    EXPECT_EQ(first.cacheHits, 0u);
    EXPECT_EQ(first.cacheMisses, first.completed);

    BatchDoneMsg second;
    const std::string warm = submit(req, second);
    EXPECT_EQ(second.cacheHits, second.completed);
    EXPECT_EQ(second.cacheMisses, 0u);
    EXPECT_EQ(warm, cold);

    const ServeStats stats = server->statsSnapshot();
    EXPECT_EQ(stats.trialsCached, second.completed);
}

TEST_F(ServerFixture, TwoPoliciesOnSameProgramDoNotShareCacheEntries)
{
    // Same program, same seed, same trial count — only the A-stream
    // policy differs. If the policy were missing from the cache key,
    // the second batch would be served the first batch's lines.
    BatchRequest ir = smallBatch();
    BatchDoneMsg first;
    const std::string irJournal = submit(ir, first);
    EXPECT_EQ(first.cacheHits, 0u);
    EXPECT_EQ(first.cacheMisses, first.completed);

    BatchRequest reliability = smallBatch();
    reliability.policy.kind = AStreamPolicyKind::ReliabilityRunahead;
    BatchDoneMsg second;
    const std::string relJournal = submit(reliability, second);
    EXPECT_EQ(second.cacheHits, 0u) << "policy aliased in the cache";
    EXPECT_EQ(second.cacheMisses, second.completed);

    // The journals carry their own policy tags, so even identical
    // outcomes cannot produce identical bytes.
    EXPECT_NE(irJournal.find("\"policy\":\"ir\""), std::string::npos);
    EXPECT_NE(relJournal.find("\"policy\":\"reliability\""),
              std::string::npos);
    EXPECT_NE(irJournal, relJournal);

    // Resubmitting each batch now hits its own entry.
    BatchDoneMsg warm;
    EXPECT_EQ(submit(ir, warm), irJournal);
    EXPECT_EQ(warm.cacheHits, warm.completed);
    EXPECT_EQ(submit(reliability, warm), relJournal);
    EXPECT_EQ(warm.cacheHits, warm.completed);
}

TEST_F(ServerFixture, FuzzBatchStreamsSeedWindow)
{
    BatchRequest req;
    req.kind = BatchKind::Fuzz;
    req.id = 9;
    req.name = "serve_fuzz";
    req.seedBegin = 0;
    req.seedEnd = 3;
    BatchDoneMsg done;
    const std::string journal = submit(req, done);
    EXPECT_EQ(done.status, BatchStatus::Ok);
    EXPECT_EQ(done.completed, 3u);
    EXPECT_NE(journal.find("\"kind\":\"fuzz\""), std::string::npos)
        << journal;

    BatchDoneMsg warm;
    submit(req, warm);
    EXPECT_EQ(warm.cacheHits, 3u);
}

TEST_F(ServerFixture, DrainRejectsNewBatches)
{
    server->beginDrain();
    BatchDoneMsg done;
    submit(smallBatch(), done);
    EXPECT_EQ(done.status, BatchStatus::Rejected);
    EXPECT_EQ(done.completed, 0u);
    EXPECT_NE(done.error.find("draining"), std::string::npos)
        << done.error;
}

TEST(ServeCancel, CancelRevokesUndispatchedTrials)
{
    // Wave size 1 so a cancel sent after the first result can still
    // revoke the tail of the batch.
    ScratchDir dir;
    ServerOptions opts;
    opts.unixPath = dir.path + "/slipd.sock";
    opts.cacheDir = ""; // no cache: every trial really runs
    opts.workers = 1;
    opts.waveSize = 1;
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    BatchRequest req;
    req.kind = BatchKind::Campaign;
    req.id = 5;
    req.name = "serve_cancel";
    req.workloads = {"compress"};
    req.size = WorkloadSize::Test;
    req.trialsPerWorkload = 8;
    req.seed = 17;

    Client client;
    ASSERT_TRUE(client.connect(opts.unixPath, err)) << err;
    ASSERT_TRUE(client.handshake("canceller", err)) << err;
    BatchDoneMsg done;
    unsigned received = 0;
    ASSERT_TRUE(client.submitBatch(
        req,
        [&](const TrialResultMsg &) {
            return ++received > 1; // cancel after the first result
        },
        done, err))
        << err;
    EXPECT_EQ(done.status, BatchStatus::Cancelled);
    EXPECT_GT(done.revoked, 0u);
    EXPECT_LT(done.completed, 8u);
    EXPECT_EQ(done.completed + done.revoked, 8u);

    const ServeStats stats = server.statsSnapshot();
    EXPECT_EQ(stats.trialsRevoked, done.revoked);
    server.stop();
}

} // namespace
} // namespace slip::serve
