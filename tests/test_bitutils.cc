#include <gtest/gtest.h>

#include "common/bitutils.hh"

namespace slip
{
namespace
{

TEST(BitUtils, BitsExtractsFields)
{
    EXPECT_EQ(bits(0xdeadbeef, 0, 4), 0xfu);
    EXPECT_EQ(bits(0xdeadbeef, 4, 4), 0xeu);
    EXPECT_EQ(bits(0xdeadbeef, 16, 16), 0xdeadu);
    EXPECT_EQ(bits(~0ull, 0, 64), ~0ull);
    EXPECT_EQ(bits(0x80, 7, 1), 1u);
}

TEST(BitUtils, InsertBitsRoundTrips)
{
    uint64_t w = 0;
    w = insertBits(w, 24, 8, 0x5a);
    w = insertBits(w, 0, 12, 0xabc);
    EXPECT_EQ(bits(w, 24, 8), 0x5au);
    EXPECT_EQ(bits(w, 0, 12), 0xabcu);
    // Overwriting a field replaces it completely.
    w = insertBits(w, 0, 12, 0x001);
    EXPECT_EQ(bits(w, 0, 12), 0x001u);
    EXPECT_EQ(bits(w, 24, 8), 0x5au);
}

TEST(BitUtils, InsertBitsMasksOversizedField)
{
    const uint64_t w = insertBits(0, 4, 4, 0xff);
    EXPECT_EQ(w, 0xf0u);
}

TEST(BitUtils, SignExtension)
{
    EXPECT_EQ(sext(0xfff, 12), -1);
    EXPECT_EQ(sext(0x800, 12), -2048);
    EXPECT_EQ(sext(0x7ff, 12), 2047);
    EXPECT_EQ(sext(0, 12), 0);
    EXPECT_EQ(sext(0x2ffff, 18), -65537);
}

TEST(BitUtils, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(2047, 12));
    EXPECT_TRUE(fitsSigned(-2048, 12));
    EXPECT_FALSE(fitsSigned(2048, 12));
    EXPECT_FALSE(fitsSigned(-2049, 12));
    EXPECT_TRUE(fitsSigned(0, 1));
    EXPECT_TRUE(fitsSigned(-1, 1));
    EXPECT_FALSE(fitsSigned(1, 1));
}

TEST(BitUtils, FitsUnsigned)
{
    EXPECT_TRUE(fitsUnsigned(255, 8));
    EXPECT_FALSE(fitsUnsigned(256, 8));
    EXPECT_TRUE(fitsUnsigned(~0ull, 64));
}

TEST(BitUtils, Mix64IsDeterministicAndSpreads)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(1), mix64(2));
    // Nearby inputs should differ in many bits (avalanche smoke test).
    EXPECT_GT(popCount(mix64(100) ^ mix64(101)), 10u);
}

TEST(BitUtils, PowerOfTwoHelpers)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(48));
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
}

TEST(BitUtils, PopCount)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(0xff), 8u);
    EXPECT_EQ(popCount(~0ull), 64u);
}

} // namespace
} // namespace slip
