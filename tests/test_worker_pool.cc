#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/crash_report.hh"
#include "common/logging.hh"
#include "harness/worker_pool.hh"

namespace slip
{
namespace
{

/** Scoped environment override restoring the prior value on exit. */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *prev = getenv(name);
        hadPrev_ = prev != nullptr;
        if (hadPrev_)
            prev_ = prev;
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }

    ~EnvGuard()
    {
        if (hadPrev_)
            setenv(name_.c_str(), prev_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string prev_;
    bool hadPrev_ = false;
};

TEST(IsolationMode, NamesAndParsing)
{
    EXPECT_STREQ(isolationModeName(IsolationMode::None), "none");
    EXPECT_STREQ(isolationModeName(IsolationMode::Fork), "fork");

    IsolationMode m = IsolationMode::None;
    EXPECT_TRUE(parseIsolationMode("fork", m));
    EXPECT_EQ(m, IsolationMode::Fork);
    EXPECT_TRUE(parseIsolationMode("none", m));
    EXPECT_EQ(m, IsolationMode::None);
    EXPECT_FALSE(parseIsolationMode("container", m));
    EXPECT_FALSE(parseIsolationMode("", m));
}

TEST(IsolationMode, EnvUnsetUsesFallback)
{
    EnvGuard g("SLIPSTREAM_ISOLATION", nullptr);
    EXPECT_EQ(isolationFromEnv(), IsolationMode::None);
    EXPECT_EQ(isolationFromEnv(IsolationMode::Fork),
              IsolationMode::Fork);
}

TEST(IsolationMode, EnvSetOverrides)
{
    EnvGuard g("SLIPSTREAM_ISOLATION", "fork");
    EXPECT_EQ(isolationFromEnv(), IsolationMode::Fork);
}

TEST(IsolationMode, EnvGarbageThrows)
{
    // Mode knobs parse strictly (common/env::envChoice): a typo'd
    // isolation mode would run a whole campaign unsandboxed, so an
    // unrecognized value throws instead of falling back.
    EnvGuard g("SLIPSTREAM_ISOLATION", "yes-please");
    setLogQuiet(true);
    EXPECT_THROW(isolationFromEnv(), FatalError);
    setLogQuiet(false);
}

TEST(WorkerEnv, WorkerCountFromEnv)
{
    {
        EnvGuard g("SLIPSTREAM_WORKERS", nullptr);
        EXPECT_EQ(workerCountFromEnv(4), 4u);
    }
    {
        EnvGuard g("SLIPSTREAM_WORKERS", "7");
        EXPECT_EQ(workerCountFromEnv(4), 7u);
    }
    {
        EnvGuard g("SLIPSTREAM_WORKERS", "zero-ish");
        setLogQuiet(true);
        EXPECT_EQ(workerCountFromEnv(4), 4u);
        setLogQuiet(false);
    }
}

TEST(WorkerEnv, PoisonThresholdFromEnv)
{
    {
        EnvGuard g("SLIPSTREAM_POISON_THRESHOLD", nullptr);
        EXPECT_EQ(poisonThresholdFromEnv(), 2u);
    }
    {
        EnvGuard g("SLIPSTREAM_POISON_THRESHOLD", "5");
        EXPECT_EQ(poisonThresholdFromEnv(), 5u);
    }
    {
        // 0 would mean "quarantine before the first run": clamped.
        EnvGuard g("SLIPSTREAM_POISON_THRESHOLD", "0");
        setLogQuiet(true);
        EXPECT_GE(poisonThresholdFromEnv(), 1u);
        setLogQuiet(false);
    }
}

TEST(CrashReport, PhaseNamesAndPacking)
{
    EXPECT_STREQ(trialPhaseName(TrialPhase::Idle), "idle");
    EXPECT_STREQ(trialPhaseName(TrialPhase::Run), "run");
    const uint64_t word = packProgress(42, TrialPhase::Report);
    EXPECT_EQ(word >> 8, 42u);
    EXPECT_EQ(TrialPhase(word & 0xff), TrialPhase::Report);
}

TEST(CrashReport, SignalNames)
{
    char buf[32];
    EXPECT_STREQ(crashSignalName(SIGSEGV, buf, sizeof(buf)),
                 "SIGSEGV");
    EXPECT_STREQ(crashSignalName(SIGKILL, buf, sizeof(buf)),
                 "SIGKILL");
    // Unlisted signals render as a number, never garbage.
    const std::string odd = crashSignalName(64, buf, sizeof(buf));
    EXPECT_NE(odd.find("64"), std::string::npos);
}

WorkerPoolOptions
quietOpts(unsigned workers, uint64_t timeoutMs = 0)
{
    WorkerPoolOptions opts;
    opts.workers = workers;
    opts.timeoutMs = timeoutMs;
    return opts;
}

TEST(WorkerPool, HealthyJobsReturnPayloadsByIndex)
{
    WorkerPool pool(quietOpts(3));
    const auto results = pool.run(8, [](size_t job, unsigned attempt) {
        EXPECT_EQ(attempt, 1u);
        return "job-" + std::to_string(job);
    });
    ASSERT_EQ(results.size(), 8u);
    for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_TRUE(results[i].ok());
        EXPECT_EQ(results[i].payload, "job-" + std::to_string(i));
        EXPECT_EQ(results[i].attempts, 1u);
    }
}

TEST(WorkerPool, SigsegvLosesExactlyOneJob)
{
    setLogQuiet(true);
    WorkerPool pool(quietOpts(2));
    const auto results = pool.run(6, [](size_t job, unsigned) {
        if (job == 3) {
            setCrashContext(job, TrialPhase::Run);
            raise(SIGSEGV);
        }
        return std::string("ok");
    });
    setLogQuiet(false);

    ASSERT_EQ(results.size(), 6u);
    for (size_t i = 0; i < results.size(); ++i) {
        if (i == 3)
            continue;
        EXPECT_TRUE(results[i].ok()) << "job " << i;
    }
    const IsolatedOutcome &dead = results[3];
    EXPECT_EQ(dead.status, IsolatedOutcome::Status::Crashed);
    EXPECT_EQ(dead.signal, SIGSEGV);
    EXPECT_EQ(dead.phase, TrialPhase::Run);
    // Crashed on every dispatch: redispatched to the threshold, then
    // marked poisoned for the caller to quarantine.
    EXPECT_TRUE(dead.poisoned);
    EXPECT_GE(dead.attempts, 2u);
}

TEST(WorkerPool, PlainExitIsTriagedByExitCode)
{
    setLogQuiet(true);
    WorkerPool pool(quietOpts(2));
    const auto results = pool.run(4, [](size_t job, unsigned) {
        if (job == 1)
            _exit(3);
        return std::string("ok");
    });
    setLogQuiet(false);

    EXPECT_EQ(results[1].status, IsolatedOutcome::Status::Crashed);
    EXPECT_EQ(results[1].signal, 0);
    EXPECT_EQ(results[1].exitCode, 3);
    EXPECT_TRUE(results[1].poisoned);
    EXPECT_TRUE(results[0].ok());
    EXPECT_TRUE(results[2].ok());
    EXPECT_TRUE(results[3].ok());
}

TEST(WorkerPool, FirstAttemptCrashRedispatchSucceeds)
{
    // The crash happens on attempt 1 only — the redispatch must
    // recover the job with a fresh worker.
    setLogQuiet(true);
    WorkerPool pool(quietOpts(2));
    const auto results =
        pool.run(3, [](size_t job, unsigned attempt) {
            if (job == 2 && attempt == 1)
                raise(SIGSEGV);
            return "attempt-" + std::to_string(attempt);
        });
    setLogQuiet(false);

    ASSERT_TRUE(results[2].ok());
    EXPECT_EQ(results[2].payload, "attempt-2");
    EXPECT_EQ(results[2].attempts, 2u);
    EXPECT_FALSE(results[2].poisoned);
}

TEST(WorkerPool, DeadlineReapsSpinningWorker)
{
    setLogQuiet(true);
    WorkerPool pool(quietOpts(2, 1500));
    const auto results = pool.run(3, [](size_t job, unsigned) {
        if (job == 0) {
            setCrashContext(job, TrialPhase::Run);
            volatile uint64_t sink = 0;
            for (;;)
                sink = sink + 1;
        }
        return std::string("ok");
    });
    setLogQuiet(false);

    EXPECT_EQ(results[0].status, IsolatedOutcome::Status::TimedOut);
    EXPECT_EQ(results[0].signal, SIGKILL);
    // The heartbeat word survives the SIGKILL even though no handler
    // could run, so triage still knows where the trial was.
    EXPECT_EQ(results[0].phase, TrialPhase::Run);
    // A deadline is proof of non-termination, not flakiness: no
    // redispatch.
    EXPECT_EQ(results[0].attempts, 1u);
    EXPECT_TRUE(results[1].ok());
    EXPECT_TRUE(results[2].ok());
}

TEST(WorkerPool, OnOutcomeSeesEveryJob)
{
    setLogQuiet(true);
    std::vector<int> seen(5, 0);
    std::atomic<int> crashes{0};
    WorkerPool pool(quietOpts(2));
    pool.run(
        5,
        [](size_t job, unsigned) {
            if (job == 4)
                raise(SIGABRT);
            return std::string("ok");
        },
        [&](size_t job, const IsolatedOutcome &o) {
            ++seen[job];
            if (o.status == IsolatedOutcome::Status::Crashed)
                ++crashes;
        });
    setLogQuiet(false);
    for (int n : seen)
        EXPECT_EQ(n, 1);
    EXPECT_EQ(crashes.load(), 1);
}

TEST(WorkerPool, ZeroJobsIsANoOp)
{
    WorkerPool pool(quietOpts(2));
    const auto results =
        pool.run(0, [](size_t, unsigned) { return std::string(); });
    EXPECT_TRUE(results.empty());
}

TEST(WorkerPool, ManyMoreJobsThanWorkers)
{
    WorkerPool pool(quietOpts(2));
    const auto results =
        pool.run(32, [](size_t job, unsigned) {
            return std::to_string(job * job);
        });
    ASSERT_EQ(results.size(), 32u);
    for (size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i].payload, std::to_string(i * i));
}

} // namespace
} // namespace slip
