#include <gtest/gtest.h>

#include <tuple>

#include "common/random.hh"
#include "mem/cache.hh"

namespace slip
{
namespace
{

/** (sizeBytes, assoc, lineBytes) sweep over legal geometries. */
using Geometry = std::tuple<uint64_t, unsigned, unsigned>;

class CacheGeometry : public ::testing::TestWithParam<Geometry>
{
  protected:
    CacheParams
    params() const
    {
        auto [size, assoc, line] = GetParam();
        CacheParams p;
        p.name = "sweep";
        p.sizeBytes = size;
        p.assoc = assoc;
        p.lineBytes = line;
        p.hitLatency = 1;
        p.missPenalty = 9;
        return p;
    }
};

TEST_P(CacheGeometry, ResidentWorkingSetAlwaysHitsAfterWarmup)
{
    const CacheParams p = params();
    Cache cache(p);
    // Touch every line of a working set exactly the cache's size.
    for (Addr a = 0; a < p.sizeBytes; a += p.lineBytes)
        cache.access(a);
    // Second pass must be all hits (LRU with a perfectly-sized set).
    const uint64_t missesBefore = cache.misses();
    for (Addr a = 0; a < p.sizeBytes; a += p.lineBytes)
        EXPECT_EQ(cache.access(a), p.hitLatency) << "addr " << a;
    EXPECT_EQ(cache.misses(), missesBefore);
}

TEST_P(CacheGeometry, OversizedWorkingSetThrashes)
{
    const CacheParams p = params();
    Cache cache(p);
    // A working set of 2x capacity streamed in order defeats LRU:
    // every access misses in steady state.
    const Addr span = 2 * p.sizeBytes;
    for (int pass = 0; pass < 2; ++pass) {
        for (Addr a = 0; a < span; a += p.lineBytes)
            cache.access(a);
    }
    const uint64_t total = cache.hits() + cache.misses();
    EXPECT_EQ(cache.hits(), 0u) << "streaming over 2x capacity";
    EXPECT_EQ(total, 2 * span / p.lineBytes);
}

TEST_P(CacheGeometry, StatsAccountEveryAccess)
{
    const CacheParams p = params();
    Cache cache(p);
    Rng rng(99);
    const unsigned n = 5000;
    for (unsigned i = 0; i < n; ++i)
        cache.access(rng.below(4 * p.sizeBytes));
    EXPECT_EQ(cache.hits() + cache.misses(), n);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(Geometry{1024, 1, 32},   // direct mapped
                      Geometry{1024, 2, 32},
                      Geometry{4096, 4, 64},
                      Geometry{4096, 8, 64},   // highly associative
                      Geometry{65536, 4, 64},  // the paper's caches
                      Geometry{512, 8, 64}),   // fully assoc (1 set)
    [](const ::testing::TestParamInfo<Geometry> &info) {
        return "s" + std::to_string(std::get<0>(info.param)) + "_a" +
               std::to_string(std::get<1>(info.param)) + "_l" +
               std::to_string(std::get<2>(info.param));
    });

} // namespace
} // namespace slip
