#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "uarch/fetch_source.hh"
#include "uarch/trace.hh"

namespace slip
{
namespace
{

StaticInst
alu()
{
    return {Opcode::ADDI, 5, 5, 0, 1};
}

StaticInst
branch(int64_t off)
{
    return {Opcode::BNE, 0, 5, 0, off};
}

TEST(TraceId, HashDistinguishesComponents)
{
    TraceId a{0x1000, 0b101, 3, 10};
    TraceId b = a;
    EXPECT_EQ(a.hash(), b.hash());
    b.branchBits = 0b100;
    EXPECT_NE(a.hash(), b.hash());
    b = a;
    b.startPc = 0x1004;
    EXPECT_NE(a.hash(), b.hash());
    b = a;
    b.length = 11;
    EXPECT_NE(a.hash(), b.hash());
}

TEST(TraceBuilder, CutsAtMaxLength)
{
    TraceBuilder tb(TracePolicy{4, false});
    Addr pc = 0x1000;
    EXPECT_FALSE(tb.feed(pc, alu(), false, pc + 4));
    EXPECT_FALSE(tb.feed(pc + 4, alu(), false, pc + 8));
    EXPECT_FALSE(tb.feed(pc + 8, alu(), false, pc + 12));
    EXPECT_TRUE(tb.feed(pc + 12, alu(), false, pc + 16));
    const TraceId id = tb.take();
    EXPECT_EQ(id.startPc, 0x1000u);
    EXPECT_EQ(id.length, 4);
    EXPECT_EQ(id.numBranches, 0);
    EXPECT_EQ(tb.pendingLength(), 0u);
}

TEST(TraceBuilder, RecordsBranchBitsInOrder)
{
    TraceBuilder tb(TracePolicy{32, false});
    Addr pc = 0x1000;
    tb.feed(pc, branch(10), true, pc + 40);       // T (forward)
    tb.feed(pc + 40, branch(5), false, pc + 44);  // N
    tb.feed(pc + 44, branch(8), true, pc + 76);   // T
    const StaticInst jalr{Opcode::JALR, 0, 1, 0, 0};
    EXPECT_TRUE(tb.feed(pc + 76, jalr, true, 0x2000));
    const TraceId id = tb.take();
    EXPECT_EQ(id.numBranches, 3);
    EXPECT_EQ(id.branchBits, 0b101u);
    EXPECT_EQ(id.length, 4);
}

TEST(TraceBuilder, EndsAtIndirectAndHalt)
{
    TraceBuilder tb{TracePolicy{}};
    EXPECT_TRUE(tb.feed(0x1000, {Opcode::JALR, 0, 1, 0, 0}, true, 0x2000));
    EXPECT_TRUE(tb.feed(0x2000, {Opcode::HALT, 0, 0, 0, 0}, false,
                        0x2000));
}

TEST(TraceBuilder, BackwardTakenPolicy)
{
    TracePolicy loopEnd{32, true};
    TraceBuilder tb(loopEnd);
    EXPECT_FALSE(tb.feed(0x1000, alu(), false, 0x1004));
    // Backward taken branch closes the trace.
    EXPECT_TRUE(tb.feed(0x1004, branch(-1), true, 0x1000));
    EXPECT_EQ(tb.take().length, 2);

    // With the policy off, the same branch does not end the trace.
    TraceBuilder tb2(TracePolicy{32, false});
    EXPECT_FALSE(tb2.feed(0x1000, alu(), false, 0x1004));
    EXPECT_FALSE(tb2.feed(0x1004, branch(-1), true, 0x1000));
}

TEST(TraceBuilder, ForwardTakenDoesNotEndTrace)
{
    TraceBuilder tb{TracePolicy{}};
    EXPECT_FALSE(tb.feed(0x1000, branch(4), true, 0x1010));
}

TEST(TracePolicy, EndsTraceAfterPredicate)
{
    const TracePolicy p{};
    EXPECT_TRUE(endsTraceAfter(p, {Opcode::HALT, 0, 0, 0, 0}, false,
                               0x1000, 0x1000));
    EXPECT_TRUE(endsTraceAfter(p, {Opcode::JALR, 0, 1, 0, 0}, true,
                               0x1000, 0x2000));
    EXPECT_TRUE(endsTraceAfter(p, branch(-2), true, 0x1008, 0x1000));
    EXPECT_FALSE(endsTraceAfter(p, branch(-2), false, 0x1008, 0x100c));
    EXPECT_FALSE(endsTraceAfter(p, alu(), false, 0x1000, 0x1004));
    // Backward JAL (loop via jump) also ends the trace.
    EXPECT_TRUE(endsTraceAfter(p, {Opcode::JAL, 0, 0, 0, -4}, true,
                               0x1010, 0x1000));
}

TEST(BuildStaticTrace, FollowsBtfnHeuristic)
{
    Program p = assemble(R"(
main:
    addi t0, t0, 1
    beq  t0, t1, fwd    # forward: predicted not-taken
    addi t0, t0, 2
fwd:
    blt  t0, t1, main   # backward: predicted taken -> ends trace
    halt
)");
    const TraceId id = buildStaticTrace(p, p.entry());
    EXPECT_EQ(id.startPc, p.entry());
    // addi, beq(NT), addi, blt(T) -> 4 instructions, bits 0b10.
    EXPECT_EQ(id.length, 4);
    EXPECT_EQ(id.numBranches, 2);
    EXPECT_EQ(id.branchBits, 0b10u);
}

TEST(BuildStaticTrace, StopsAtHalt)
{
    Program p = assemble("main: nop\nhalt\n");
    const TraceId id = buildStaticTrace(p, p.entry());
    EXPECT_EQ(id.length, 2);
}

TEST(TraceToString, Readable)
{
    TraceId id{0x1000, 0b01, 2, 5};
    const std::string s = to_string(id);
    EXPECT_NE(s.find("pc=0x1000"), std::string::npos);
    EXPECT_NE(s.find("TN"), std::string::npos);
}

} // namespace
} // namespace slip
