#include <gtest/gtest.h>

#include "common/logging.hh"

namespace slip
{
namespace
{

TEST(Logging, FatalThrowsFatalError)
{
    try {
        SLIP_FATAL("bad input ", 42);
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("bad input 42"),
                  std::string::npos);
    }
}

TEST(Logging, PanicThrowsPanicError)
{
    try {
        SLIP_PANIC("invariant ", "broken");
        FAIL() << "panic did not throw";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("invariant broken"),
                  std::string::npos);
    }
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(SLIP_ASSERT(1 + 1 == 2, "math works"));
}

TEST(Logging, AssertPanicsOnFalse)
{
    EXPECT_THROW(SLIP_ASSERT(false, "should fire"), PanicError);
}

TEST(Logging, QuietFlagRoundTrips)
{
    setLogQuiet(true);
    EXPECT_TRUE(logQuiet());
    setLogQuiet(false);
    EXPECT_FALSE(logQuiet());
}

} // namespace
} // namespace slip
