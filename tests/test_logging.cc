#include <gtest/gtest.h>

#include <functional>
#include <new>
#include <stdexcept>
#include <system_error>

#include "common/logging.hh"

namespace slip
{
namespace
{

TEST(Logging, FatalThrowsFatalError)
{
    try {
        SLIP_FATAL("bad input ", 42);
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("bad input 42"),
                  std::string::npos);
    }
}

TEST(Logging, PanicThrowsPanicError)
{
    try {
        SLIP_PANIC("invariant ", "broken");
        FAIL() << "panic did not throw";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("invariant broken"),
                  std::string::npos);
    }
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(SLIP_ASSERT(1 + 1 == 2, "math works"));
}

TEST(Logging, AssertPanicsOnFalse)
{
    EXPECT_THROW(SLIP_ASSERT(false, "should fire"), PanicError);
}

TEST(Logging, QuietFlagRoundTrips)
{
    setLogQuiet(true);
    EXPECT_TRUE(logQuiet());
    setLogQuiet(false);
    EXPECT_FALSE(logQuiet());
}

ErrorInfo
classify(const std::function<void()> &thrower)
{
    try {
        thrower();
    } catch (...) {
        return classifyCurrentException();
    }
    return {};
}

TEST(ErrorTaxonomy, ClassifiesTheExceptionFamilies)
{
    const ErrorInfo user =
        classify([] { SLIP_FATAL("bad knob value"); });
    EXPECT_EQ(user.kind, ErrorKind::UserError);
    EXPECT_NE(user.message.find("bad knob value"), std::string::npos);

    const ErrorInfo internal =
        classify([] { SLIP_PANIC("invariant broke"); });
    EXPECT_EQ(internal.kind, ErrorKind::InternalError);

    const ErrorInfo alloc = classify([] { throw std::bad_alloc(); });
    EXPECT_EQ(alloc.kind, ErrorKind::Resource);

    const ErrorInfo sys = classify([] {
        throw std::system_error(std::make_error_code(
            std::errc::resource_unavailable_try_again));
    });
    EXPECT_EQ(sys.kind, ErrorKind::Resource);

    const ErrorInfo unknown =
        classify([] { throw std::runtime_error("odd"); });
    EXPECT_EQ(unknown.kind, ErrorKind::Unknown);
    EXPECT_EQ(unknown.message, "odd");

    const ErrorInfo nonStd = classify([] { throw 42; });
    EXPECT_EQ(nonStd.kind, ErrorKind::Unknown);
    EXPECT_FALSE(nonStd.message.empty());
}

TEST(ErrorTaxonomy, BadAllocDerivativesClassifyAsResource)
{
    // The whole std::bad_alloc family must reach the retryable
    // Resource bucket — including library-thrown derived types like
    // std::bad_array_new_length — or OOM-ish failures dead-end as
    // Unknown and never hit the supervisor's retry path.
    struct CustomOom : std::bad_alloc
    {
        const char *what() const noexcept override { return "oom"; }
    };
    const ErrorInfo derived = classify([] { throw CustomOom(); });
    EXPECT_EQ(derived.kind, ErrorKind::Resource);
    EXPECT_EQ(derived.message, "oom");

    const ErrorInfo arr =
        classify([] { throw std::bad_array_new_length(); });
    EXPECT_EQ(arr.kind, ErrorKind::Resource);
}

TEST(ErrorTaxonomy, ClassifyExceptionFromPointer)
{
    // The exception_ptr variant (used where the throw site and the
    // classification site are different threads or processes) must
    // agree with classifyCurrentException.
    const auto capture = [](const std::function<void()> &thrower) {
        try {
            thrower();
        } catch (...) {
            return std::current_exception();
        }
        return std::exception_ptr();
    };

    const ErrorInfo user = classifyException(
        capture([] { SLIP_FATAL("bad input"); }));
    EXPECT_EQ(user.kind, ErrorKind::UserError);
    EXPECT_NE(user.message.find("bad input"), std::string::npos);

    const ErrorInfo alloc =
        classifyException(capture([] { throw std::bad_alloc(); }));
    EXPECT_EQ(alloc.kind, ErrorKind::Resource);

    // Null pointers (a fork-isolated outcome has no exception) are
    // Unknown, not a crash.
    const ErrorInfo none = classifyException(nullptr);
    EXPECT_EQ(none.kind, ErrorKind::Unknown);
    EXPECT_EQ(none.message, "no exception");
}

TEST(ErrorTaxonomy, OnlyResourceFailuresAreRetryable)
{
    EXPECT_TRUE(errorRetryable(ErrorKind::Resource));
    EXPECT_FALSE(errorRetryable(ErrorKind::UserError));
    EXPECT_FALSE(errorRetryable(ErrorKind::InternalError));
    EXPECT_FALSE(errorRetryable(ErrorKind::Unknown));
}

TEST(ErrorTaxonomy, KindNamesAreStableReportKeys)
{
    EXPECT_STREQ(errorKindName(ErrorKind::UserError), "user_error");
    EXPECT_STREQ(errorKindName(ErrorKind::InternalError),
                 "internal_error");
    EXPECT_STREQ(errorKindName(ErrorKind::Resource), "resource");
    EXPECT_STREQ(errorKindName(ErrorKind::Unknown), "unknown");
}

} // namespace
} // namespace slip
