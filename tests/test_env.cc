/**
 * The environment-knob contract (common/env.hh), focused on the
 * clearing convention: an EMPTY or WHITESPACE-ONLY value means
 * *unset* — that is how shells (`SLIPSTREAM_DETECT= cmd`) and
 * supervisors clear a knob — never garbage, never a warning, and for
 * the strict mode knobs never a FatalError.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hh"
#include "common/logging.hh"

namespace slip
{
namespace
{

struct EnvGuard
{
    explicit EnvGuard(const char *n) : name(n) { unsetenv(name); }
    ~EnvGuard() { unsetenv(name); }
    void set(const char *value) { setenv(name, value, 1); }
    const char *name;
};

TEST(EnvKnobs, EmptyValueMeansUnsetForU64)
{
    EnvGuard env("SLIP_TEST_EMPTY_U64");
    EXPECT_EQ(envU64(env.name, 7), 7u); // truly unset
    env.set("");
    EXPECT_EQ(envU64(env.name, 7), 7u); // cleared, not garbage
    env.set("42");
    EXPECT_EQ(envU64(env.name, 7), 42u); // real value still wins
}

TEST(EnvKnobs, WhitespaceOnlyValueMeansUnsetForU64)
{
    EnvGuard env("SLIP_TEST_WS_U64");
    env.set("   ");
    EXPECT_EQ(envU64(env.name, 9), 9u);
    env.set("\t \n");
    EXPECT_EQ(envU64(env.name, 9), 9u);
}

TEST(EnvKnobs, EmptyAndWhitespaceMeanUnsetForFlag)
{
    EnvGuard env("SLIP_TEST_EMPTY_FLAG");
    env.set("");
    EXPECT_TRUE(envFlag(env.name, true));
    EXPECT_FALSE(envFlag(env.name, false));
    env.set("  ");
    EXPECT_TRUE(envFlag(env.name, true));
    env.set("no");
    EXPECT_FALSE(envFlag(env.name, true));
}

TEST(EnvKnobs, EmptyAndWhitespaceMeanUnsetForChoice)
{
    EnvGuard env("SLIP_TEST_EMPTY_CHOICE");
    const auto pick = [&] {
        return envChoice(env.name, {"none", "fork"}, 0);
    };
    env.set("");
    EXPECT_EQ(pick(), 0u); // cleared: fallback, no FatalError
    env.set(" \t ");
    EXPECT_EQ(pick(), 0u);
    env.set("fork");
    EXPECT_EQ(pick(), 1u);
    // A NON-empty unrecognized value keeps the strict contract.
    env.set("frok");
    EXPECT_THROW(pick(), FatalError);
}

} // namespace
} // namespace slip
