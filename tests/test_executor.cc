#include <gtest/gtest.h>

#include <limits>

#include "func/arch_state.hh"
#include "func/executor.hh"
#include "mem/memory.hh"

namespace slip
{
namespace
{

class ExecutorTest : public ::testing::Test
{
  protected:
    ExecutorTest()
        : port(mem), state(port)
    {
        state.setPc(0x1000);
    }

    ExecResult
    exec(const StaticInst &inst)
    {
        return execute(state, inst, &output);
    }

    Memory mem;
    DirectMemPort port;
    ArchState state;
    std::string output;
};

// ---- parameterized binary ALU semantics ----

struct AluCase
{
    Opcode op;
    Word a, b;
    Word expect;
};

class AluSemantics : public ExecutorTest,
                     public ::testing::WithParamInterface<AluCase>
{
};

TEST_P(AluSemantics, ComputesExpectedValue)
{
    const AluCase &c = GetParam();
    state.writeReg(1, c.a);
    state.writeReg(2, c.b);
    const ExecResult r = exec({c.op, 3, 1, 2, 0});
    EXPECT_EQ(state.readReg(3), c.expect);
    EXPECT_TRUE(r.wroteReg);
    EXPECT_EQ(r.destValue, c.expect);
    EXPECT_EQ(r.nextPc, 0x1004u);
}

constexpr Word kMinS64 = 0x8000000000000000ull;

INSTANTIATE_TEST_SUITE_P(
    AluOps, AluSemantics,
    ::testing::Values(
        AluCase{Opcode::ADD, 5, 7, 12},
        AluCase{Opcode::ADD, ~0ull, 1, 0}, // wraparound
        AluCase{Opcode::SUB, 5, 7, Word(-2)},
        AluCase{Opcode::MUL, Word(-3), 4, Word(-12)},
        AluCase{Opcode::MULH, kMinS64, 2, ~0ull}, // high bits of -2^64
        AluCase{Opcode::DIV, Word(-7), 2, Word(-3)},
        AluCase{Opcode::DIV, 7, 0, ~0ull},          // div by zero
        AluCase{Opcode::DIV, kMinS64, Word(-1), kMinS64}, // overflow
        AluCase{Opcode::DIVU, ~0ull, 2, 0x7fffffffffffffffull},
        AluCase{Opcode::DIVU, 5, 0, ~0ull},
        AluCase{Opcode::REM, Word(-7), 2, Word(-1)},
        AluCase{Opcode::REM, 7, 0, 7},
        AluCase{Opcode::REM, kMinS64, Word(-1), 0},
        AluCase{Opcode::REMU, 7, 3, 1},
        AluCase{Opcode::REMU, 7, 0, 7},
        AluCase{Opcode::AND, 0xf0f0, 0xff00, 0xf000},
        AluCase{Opcode::OR, 0xf0f0, 0x0f0f, 0xffff},
        AluCase{Opcode::XOR, 0xff, 0x0f, 0xf0},
        AluCase{Opcode::SLL, 1, 63, 1ull << 63},
        AluCase{Opcode::SLL, 1, 64, 1}, // shift amount masked to 6 bits
        AluCase{Opcode::SRL, kMinS64, 63, 1},
        AluCase{Opcode::SRA, kMinS64, 63, ~0ull},
        AluCase{Opcode::SLT, Word(-1), 0, 1},
        AluCase{Opcode::SLT, 0, Word(-1), 0},
        AluCase{Opcode::SLTU, Word(-1), 0, 0}, // -1 is max unsigned
        AluCase{Opcode::SLTU, 0, Word(-1), 1}));

// ---- immediates ----

TEST_F(ExecutorTest, ImmediateOps)
{
    state.writeReg(1, 10);
    exec({Opcode::ADDI, 2, 1, 0, -3});
    EXPECT_EQ(state.readReg(2), 7u);
    exec({Opcode::ANDI, 2, 1, 0, 3});
    EXPECT_EQ(state.readReg(2), 2u);
    exec({Opcode::ORI, 2, 1, 0, 5});
    EXPECT_EQ(state.readReg(2), 15u);
    exec({Opcode::XORI, 2, 1, 0, -1}); // pseudo `not`
    EXPECT_EQ(state.readReg(2), ~10ull);
    exec({Opcode::SLLI, 2, 1, 0, 4});
    EXPECT_EQ(state.readReg(2), 160u);
    exec({Opcode::SRAI, 2, 1, 0, 1});
    EXPECT_EQ(state.readReg(2), 5u);
    exec({Opcode::SLTI, 2, 1, 0, 11});
    EXPECT_EQ(state.readReg(2), 1u);
    exec({Opcode::SLTIU, 2, 1, 0, 10});
    EXPECT_EQ(state.readReg(2), 0u);
}

TEST_F(ExecutorTest, LuiShiftsBy12)
{
    exec({Opcode::LUI, 5, 0, 0, 0x100});
    EXPECT_EQ(state.readReg(5), 0x100000u);
    state.setPc(0x1000);
    exec({Opcode::LUI, 5, 0, 0, -1});
    EXPECT_EQ(state.readReg(5), Word(-4096));
}

// ---- the zero register ----

TEST_F(ExecutorTest, ZeroRegisterIsImmutable)
{
    exec({Opcode::ADDI, 0, 0, 0, 99});
    EXPECT_EQ(state.readReg(0), 0u);
}

// ---- memory ----

TEST_F(ExecutorTest, StoreThenLoadRoundTrip)
{
    state.writeReg(1, 0x2000); // base
    state.writeReg(2, 0xdeadbeefcafebabeull);
    const ExecResult st = exec({Opcode::SD, 0, 1, 2, 8});
    EXPECT_TRUE(st.isMem);
    EXPECT_EQ(st.memAddr, 0x2008u);
    EXPECT_EQ(st.storeValue, 0xdeadbeefcafebabeull);

    const ExecResult ld = exec({Opcode::LD, 3, 1, 0, 8});
    EXPECT_EQ(state.readReg(3), 0xdeadbeefcafebabeull);
    EXPECT_EQ(ld.loadedValue, ld.destValue);
}

TEST_F(ExecutorTest, LoadSignAndZeroExtension)
{
    state.writeReg(1, 0x2000);
    mem.write(0x2000, 8, 0xffffffffffffff80ull);
    exec({Opcode::LB, 2, 1, 0, 0});
    EXPECT_EQ(state.readReg(2), Word(-128));
    exec({Opcode::LBU, 2, 1, 0, 0});
    EXPECT_EQ(state.readReg(2), 0x80u);
    exec({Opcode::LH, 2, 1, 0, 0});
    EXPECT_EQ(state.readReg(2), Word(-128));
    exec({Opcode::LW, 2, 1, 0, 4});
    EXPECT_EQ(state.readReg(2), ~0ull); // 0xffffffff sign-extended
    exec({Opcode::LWU, 2, 1, 0, 4});
    EXPECT_EQ(state.readReg(2), 0xffffffffull);
}

// ---- control flow ----

TEST_F(ExecutorTest, BranchTakenAndNotTaken)
{
    state.writeReg(1, 5);
    state.writeReg(2, 5);
    ExecResult r = exec({Opcode::BEQ, 0, 1, 2, 10});
    EXPECT_TRUE(r.isControl);
    EXPECT_TRUE(r.taken);
    EXPECT_EQ(r.target, 0x1000 + 40u);
    EXPECT_EQ(state.pc(), 0x1028u);

    state.setPc(0x1000);
    r = exec({Opcode::BNE, 0, 1, 2, 10});
    EXPECT_FALSE(r.taken);
    EXPECT_EQ(state.pc(), 0x1004u);
}

TEST_F(ExecutorTest, SignedVersusUnsignedBranches)
{
    state.writeReg(1, Word(-1));
    state.writeReg(2, 1);
    EXPECT_TRUE(exec({Opcode::BLT, 0, 1, 2, 4}).taken);
    state.setPc(0x1000);
    EXPECT_FALSE(exec({Opcode::BLTU, 0, 1, 2, 4}).taken);
    state.setPc(0x1000);
    EXPECT_TRUE(exec({Opcode::BGEU, 0, 1, 2, 4}).taken);
}

TEST_F(ExecutorTest, JalLinksAndJumps)
{
    const ExecResult r = exec({Opcode::JAL, 1, 0, 0, -4});
    EXPECT_EQ(state.readReg(1), 0x1004u);
    EXPECT_EQ(state.pc(), 0x1000u - 16u);
    EXPECT_TRUE(r.taken);
}

TEST_F(ExecutorTest, JalrComputesTargetFromRegister)
{
    state.writeReg(5, 0x3000);
    const ExecResult r = exec({Opcode::JALR, 1, 5, 0, 8});
    EXPECT_EQ(state.readReg(1), 0x1004u);
    EXPECT_EQ(state.pc(), 0x3008u);
    EXPECT_EQ(r.target, 0x3008u);
}

// ---- system ----

TEST_F(ExecutorTest, OutputOps)
{
    state.writeReg(1, 'H');
    exec({Opcode::PUTC, 0, 1, 0, 0});
    state.writeReg(1, Word(-42));
    exec({Opcode::PUTN, 0, 1, 0, 0});
    EXPECT_EQ(output, "H-42\n");
}

TEST_F(ExecutorTest, OutputIgnoredWithNullSink)
{
    state.writeReg(1, 'x');
    EXPECT_NO_THROW(execute(state, {Opcode::PUTC, 0, 1, 0, 0}, nullptr));
}

TEST_F(ExecutorTest, HaltParksPc)
{
    const ExecResult r = exec({Opcode::HALT, 0, 0, 0, 0});
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(state.pc(), 0x1000u);
}

TEST_F(ExecutorTest, NopDoesNothingButAdvance)
{
    const ExecResult r = exec({Opcode::NOP, 0, 0, 0, 0});
    EXPECT_FALSE(r.wroteReg);
    EXPECT_FALSE(r.isMem);
    EXPECT_FALSE(r.isControl);
    EXPECT_EQ(state.pc(), 0x1004u);
}

} // namespace
} // namespace slip
