/**
 * Differential tests for the predecoded execution engine: the threaded
 * and switch engines must retire bit-identical architectural results —
 * ExecResult streams, registers, memory, program output, instruction
 * counts — to the legacy per-instruction switch executor, across every
 * opcode, randomized operands, assembled edge-case programs, and
 * fuzz-generated workloads.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <vector>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "func/exec_engine.hh"
#include "func/func_sim.hh"
#include "fuzz/generator.hh"
#include "isa/micro_op.hh"
#include "isa/regnames.hh"

namespace slip
{
namespace
{

// Every dispatch kind available in this build. Threaded quietly equals
// Switch when the computed-goto engine is compiled out, so including
// it unconditionally still exercises the right code paths.
std::vector<DispatchKind>
allKinds()
{
    return {DispatchKind::Legacy, DispatchKind::Switch,
            DispatchKind::Threaded};
}

void
expectSameResult(const ExecResult &a, const ExecResult &b,
                 const std::string &what)
{
    EXPECT_EQ(a.nextPc, b.nextPc) << what;
    EXPECT_EQ(a.wroteReg, b.wroteReg) << what;
    EXPECT_EQ(a.destReg, b.destReg) << what;
    EXPECT_EQ(a.destValue, b.destValue) << what;
    EXPECT_EQ(a.isMem, b.isMem) << what;
    EXPECT_EQ(a.memAddr, b.memAddr) << what;
    EXPECT_EQ(a.memBytes, b.memBytes) << what;
    EXPECT_EQ(a.storeValue, b.storeValue) << what;
    EXPECT_EQ(a.loadedValue, b.loadedValue) << what;
    EXPECT_EQ(a.isControl, b.isControl) << what;
    EXPECT_EQ(a.taken, b.taken) << what;
    EXPECT_EQ(a.target, b.target) << what;
    EXPECT_EQ(a.halted, b.halted) << what;
}

// ---- per-opcode ExecResult parity: execute() vs executeMicro() ----

class MicroParity : public ::testing::Test
{
  protected:
    MicroParity()
        : portA(memA), portB(memB), stateA(portA), stateB(portB)
    {}

    /**
     * Run `inst` at `pc` through both executors against identically
     * prepared contexts and assert everything observable matches.
     */
    void
    check(const StaticInst &inst, Addr pc)
    {
        stateA.setPc(pc);
        stateB.setPc(pc);
        stateB.copyRegsFrom(stateA);

        const ExecResult ra = execute(stateA, inst, &outA);
        const MicroOp u = predecode(inst, pc);
        const ExecResult rb = executeMicro(stateB, u, &outB);

        const std::string what =
            "op " + std::to_string(static_cast<int>(inst.op)) +
            " rd " + std::to_string(inst.rd) + " imm " +
            std::to_string(inst.imm);
        expectSameResult(ra, rb, what);
        EXPECT_TRUE(stateA.regsEqual(stateB)) << what;
        EXPECT_EQ(stateA.pc(), stateB.pc()) << what;
        EXPECT_TRUE(memA.equals(memB)) << what;
        EXPECT_EQ(outA, outB) << what;
    }

    Memory memA, memB;
    DirectMemPort portA, portB;
    ArchState stateA, stateB;
    std::string outA, outB;
};

TEST_F(MicroParity, EveryOpcodeRandomizedOperands)
{
    std::mt19937_64 rng(0xfeedface);

    // Seed both memories with the same random image so loads observe
    // non-trivial bytes, including across a page boundary.
    const Addr base = layout::kDataBase;
    for (unsigned i = 0; i < 64; ++i) {
        const Word v = rng();
        memA.write(base + 8 * i, 8, v);
        memB.write(base + 8 * i, 8, v);
    }
    const Addr pageEdge = base + Memory::kPageBytes - 4;
    for (unsigned i = 0; i < 16; ++i) {
        const Word v = rng() & 0xff;
        memA.write(pageEdge + i, 1, v);
        memB.write(pageEdge + i, 1, v);
    }

    for (int o = 0; o < static_cast<int>(Opcode::NumOpcodes); ++o) {
        const Opcode op = static_cast<Opcode>(o);
        for (int trial = 0; trial < 24; ++trial) {
            StaticInst inst;
            inst.op = op;
            inst.rd = static_cast<RegIndex>(rng() % kNumRegs);
            inst.rs1 = static_cast<RegIndex>(rng() % kNumRegs);
            inst.rs2 = static_cast<RegIndex>(rng() % kNumRegs);

            // Random register state each trial (r0 stays zero).
            for (unsigned r = 1; r < kNumRegs; ++r)
                stateA.writeReg(static_cast<RegIndex>(r), rng());

            if (inst.memBytes() != 0) {
                // Point loads/stores at the seeded image; odd trials
                // straddle the page boundary.
                const Addr target = (trial & 1)
                                        ? pageEdge + trial % 4
                                        : base + rng() % 256;
                inst.imm = static_cast<int64_t>(rng() % 32);
                stateA.writeReg(inst.rs1, target - inst.imm);
            } else if (inst.isCondBranch() || op == Opcode::JAL) {
                inst.imm =
                    static_cast<int64_t>(rng() % 33) - 16; // words
            } else if (op == Opcode::JALR) {
                // Half the trials take a wild target; half land on a
                // plausible text address. rd may alias rs1.
                inst.imm = static_cast<int64_t>(rng() % 64) - 32;
                if (trial % 2)
                    inst.rs1 = inst.rd;
                stateA.writeReg(
                    inst.rs1,
                    (trial & 2) ? rng() : 0x1000 + (rng() % 64) * 4);
            } else {
                inst.imm = static_cast<int64_t>(
                               static_cast<int32_t>(rng())) >>
                           (rng() % 32);
            }

            check(inst, 0x1000 + (rng() % 1024) * kInstBytes);
        }
    }
}

TEST_F(MicroParity, DivRemEdgeCases)
{
    const Word kMinS64 = 0x8000000000000000ull;
    const struct
    {
        Opcode op;
        Word a, b;
    } cases[] = {
        {Opcode::DIV, 7, 0},         {Opcode::DIV, kMinS64, Word(-1)},
        {Opcode::DIVU, 5, 0},        {Opcode::REM, 7, 0},
        {Opcode::REM, kMinS64, Word(-1)}, {Opcode::REMU, 7, 0},
        {Opcode::MULH, kMinS64, kMinS64},
    };
    for (const auto &c : cases) {
        stateA.writeReg(1, c.a);
        stateA.writeReg(2, c.b);
        check({c.op, 3, 1, 2, 0}, 0x1000);
    }
}

// ---- whole-program parity across dispatch kinds ----

/** Run a program under `kind` and capture everything observable. */
struct RunCapture
{
    FuncRunResult result;
    std::vector<Word> regs;
    Memory mem;

    RunCapture(const Program &p, DispatchKind kind, uint64_t maxInsts)
    {
        FuncSim sim(p);
        sim.setDispatch(kind);
        result = sim.run(maxInsts);
        for (unsigned r = 0; r < kNumRegs; ++r)
            regs.push_back(
                sim.state().readReg(static_cast<RegIndex>(r)));
        mem = sim.memory().clone();
    }
};

void
expectSameRun(const Program &p, uint64_t maxInsts = 0)
{
    const RunCapture ref(p, DispatchKind::Legacy, maxInsts);
    for (DispatchKind kind : allKinds()) {
        const RunCapture got(p, kind, maxInsts);
        const std::string what = dispatchName(kind);
        EXPECT_EQ(got.result.output, ref.result.output) << what;
        EXPECT_EQ(got.result.instCount, ref.result.instCount) << what;
        EXPECT_EQ(got.result.halted, ref.result.halted) << what;
        EXPECT_EQ(got.result.finalPc, ref.result.finalPc) << what;
        EXPECT_EQ(got.regs, ref.regs) << what;
        EXPECT_TRUE(got.mem.equals(ref.mem)) << what;
    }
}

TEST(EngineParity, LoopsCallsAndOutput)
{
    expectSameRun(assemble(R"(
main:
    li   a0, 10
    call sum
    putn a1
    halt
sum:
    push ra
    beqz a0, base
    push a0
    addi a0, a0, -1
    call sum
    pop  a0
    add  a1, a1, a0
    pop  ra
    ret
base:
    li   a1, 0
    pop  ra
    ret
)"));
}

TEST(EngineParity, MemoryWidthsAndPageCross)
{
    // Every store/load width, plus an unaligned 8-byte access that
    // straddles the first data page boundary (the engine's slow path).
    expectSameRun(assemble(R"(
.data
buf: .dword 0, 0, 0, 0
.text
main:
    la   t0, buf
    li   t1, -2
    sb   t1, 0(t0)
    sh   t1, 2(t0)
    sw   t1, 4(t0)
    sd   t1, 8(t0)
    lb   t2, 0(t0)
    lbu  t3, 0(t0)
    lh   t4, 2(t0)
    lhu  t5, 2(t0)
    lw   t6, 4(t0)
    lwu  t7, 4(t0)
    ld   t8, 8(t0)
    putn t2
    putn t3
    putn t4
    putn t5
    putn t6
    putn t7
    putn t8
    li   t0, 0x100ffc
    sd   t1, 0(t0)
    ld   s0, 0(t0)
    putn s0
    halt
)"));
}

TEST(EngineParity, FallsOffTextEnd)
{
    // No HALT: control falls off the end of the image and the wild-pc
    // path must retire the same synthetic HALT in every engine.
    expectSameRun(assemble("main: addi a0, a0, 1\naddi a0, a0, 2\n"));
}

TEST(EngineParity, WildJalrParks)
{
    const Program p = assemble(R"(
main:
    li  t0, 16
    jr  t0
    halt
)");
    // maxInsts == 2 cuts the run exactly at the wild jump; 3 retires
    // the synthetic HALT too. Both boundaries must agree with legacy.
    expectSameRun(p, 2);
    expectSameRun(p, 3);
    expectSameRun(p);
}

TEST(EngineParity, MisalignedJalrLeavesText)
{
    expectSameRun(assemble(R"(
main:
    li  t0, 0x1002
    jr  t0
    halt
)"));
}

TEST(EngineParity, InstructionBudgetBoundaries)
{
    const Program p = assemble("main: j main\n");
    for (uint64_t budget : {1ull, 2ull, 3ull, 100ull})
        expectSameRun(p, budget);
}

TEST(EngineParity, FuzzGeneratedPrograms)
{
    for (uint64_t seed = 0; seed < 20; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const fuzz::GeneratedProgram gp = fuzz::generate(seed);
        expectSameRun(assemble(gp.render()), 200'000);
    }
}

// ---- store observer parity ----

struct StoreRec
{
    Addr pc, addr;
    unsigned bytes;
    Word value;
    bool
    operator==(const StoreRec &o) const
    {
        return pc == o.pc && addr == o.addr && bytes == o.bytes &&
               value == o.value;
    }
};

TEST(EngineParity, StoreObserverSeesIdenticalStream)
{
    const Program p = assemble(R"(
.data
buf: .dword 0, 0
.text
main:
    la   t0, buf
    li   t1, 7
loop:
    sb   t1, 0(t0)
    sh   t1, 2(t0)
    sw   t1, 4(t0)
    sd   t1, 8(t0)
    addi t1, t1, -1
    bnez t1, loop
    halt
)");

    // Reference stream: the legacy per-instruction observer, filtered
    // to stores — exactly what the fuzz oracle used to do.
    std::vector<StoreRec> ref;
    {
        FuncSim sim(p);
        sim.setDispatch(DispatchKind::Legacy);
        sim.runWithObserver([&](Addr pc, const StaticInst &si,
                                const ExecResult &res) {
            if (si.isStore())
                ref.push_back(
                    {pc, res.memAddr, res.memBytes, res.storeValue});
        });
    }
    ASSERT_FALSE(ref.empty());

    for (DispatchKind kind : allKinds()) {
        std::vector<StoreRec> got;
        FuncSim sim(p);
        sim.setDispatch(kind);
        const FuncRunResult r = sim.runWithStoreObserver(
            [&](Addr pc, Addr addr, unsigned bytes, Word value) {
                got.push_back({pc, addr, bytes, value});
            });
        EXPECT_TRUE(r.halted);
        EXPECT_EQ(got, ref) << dispatchName(kind);
    }
}

// ---- the $SLIPSTREAM_DISPATCH knob ----

class DispatchEnv : public ::testing::Test
{
  protected:
    void SetUp() override { setLogQuiet(true); }
    void
    TearDown() override
    {
        unsetenv("SLIPSTREAM_DISPATCH");
        setLogQuiet(false);
    }
};

TEST_F(DispatchEnv, SelectsNamedEngines)
{
    setenv("SLIPSTREAM_DISPATCH", "legacy", 1);
    EXPECT_EQ(defaultDispatch(), DispatchKind::Legacy);
    setenv("SLIPSTREAM_DISPATCH", "switch", 1);
    EXPECT_EQ(defaultDispatch(), DispatchKind::Switch);
    setenv("SLIPSTREAM_DISPATCH", "threaded", 1);
    EXPECT_EQ(defaultDispatch(), threadedDispatchCompiled()
                                     ? DispatchKind::Threaded
                                     : DispatchKind::Switch);
}

TEST_F(DispatchEnv, UnsetUsesTheDefault)
{
    unsetenv("SLIPSTREAM_DISPATCH");
    EXPECT_EQ(defaultDispatch(), threadedDispatchCompiled()
                                     ? DispatchKind::Threaded
                                     : DispatchKind::Switch);
}

TEST_F(DispatchEnv, GarbageThrows)
{
    // Strict mode-knob contract: a typo'd engine name would silently
    // benchmark the wrong dispatch path, so it throws.
    setenv("SLIPSTREAM_DISPATCH", "turbo", 1);
    EXPECT_THROW(defaultDispatch(), FatalError);
}

} // namespace
} // namespace slip
