#include <gtest/gtest.h>

#include <tuple>

#include "common/bitutils.hh"
#include "common/random.hh"
#include "func/arch_state.hh"
#include "func/executor.hh"
#include "mem/memory.hh"

namespace slip
{
namespace
{

/** (store op, load op, bytes, signed) consistency sweep. */
struct MemOpCase
{
    Opcode store;
    Opcode load;
    unsigned bytes;
    bool loadSigned;
};

class MemOpSweep : public ::testing::TestWithParam<MemOpCase>
{
  protected:
    MemOpSweep()
        : port(mem), state(port)
    {
        state.setPc(0x1000);
    }

    Memory mem;
    DirectMemPort port;
    ArchState state;
};

TEST_P(MemOpSweep, StoreLoadRoundTripsWithCorrectExtension)
{
    const MemOpCase &c = GetParam();
    Rng rng(uint64_t(c.store) * 1000 + c.bytes);

    for (int i = 0; i < 200; ++i) {
        const Word value = rng.next();
        const Addr addr = 0x4000 + rng.below(256);
        state.writeReg(1, addr);
        state.writeReg(2, value);
        state.setPc(0x1000);
        execute(state, {c.store, 0, 1, 2, 0}, nullptr);

        state.setPc(0x1000);
        execute(state, {c.load, 3, 1, 0, 0}, nullptr);

        Word expect = bits(value, 0, c.bytes * 8);
        if (c.loadSigned)
            expect = Word(sext(expect, c.bytes * 8));
        EXPECT_EQ(state.readReg(3), expect)
            << opcodeName(c.store) << "/" << opcodeName(c.load)
            << " value " << std::hex << value;
    }
}

TEST_P(MemOpSweep, NarrowStoreLeavesNeighborsAlone)
{
    const MemOpCase &c = GetParam();
    mem.write(0x4000, 8, ~0ull);
    mem.write(0x4008, 8, ~0ull);
    state.writeReg(1, 0x4004);
    state.writeReg(2, 0);
    state.setPc(0x1000);
    execute(state, {c.store, 0, 1, 2, 0}, nullptr);
    // Bytes before the store are untouched.
    EXPECT_EQ(mem.read(0x4000, 4), 0xffffffffu);
    // Bytes after the stored field are untouched.
    EXPECT_EQ(mem.read(0x4004 + c.bytes, 1), 0xffu);
}

INSTANTIATE_TEST_SUITE_P(
    Widths, MemOpSweep,
    ::testing::Values(MemOpCase{Opcode::SB, Opcode::LB, 1, true},
                      MemOpCase{Opcode::SB, Opcode::LBU, 1, false},
                      MemOpCase{Opcode::SH, Opcode::LH, 2, true},
                      MemOpCase{Opcode::SH, Opcode::LHU, 2, false},
                      MemOpCase{Opcode::SW, Opcode::LW, 4, true},
                      MemOpCase{Opcode::SW, Opcode::LWU, 4, false},
                      MemOpCase{Opcode::SD, Opcode::LD, 8, false}),
    [](const ::testing::TestParamInfo<MemOpCase> &info) {
        return std::string(opcodeName(info.param.store)) + "_" +
               opcodeName(info.param.load);
    });

/**
 * Differential property: a random sequence of executor-level memory
 * ops equals a shadow model on plain Memory.
 */
TEST(ExecutorMemDifferential, RandomOpsMatchShadowMemory)
{
    Memory mem;
    DirectMemPort port(mem);
    ArchState state(port);
    Memory shadow;

    Rng rng(4242);
    const Opcode stores[] = {Opcode::SB, Opcode::SH, Opcode::SW,
                             Opcode::SD};
    const unsigned widths[] = {1, 2, 4, 8};

    for (int i = 0; i < 3000; ++i) {
        const unsigned pick = unsigned(rng.below(4));
        const Addr addr = 0x8000 + rng.below(512);
        const Word value = rng.next();
        state.writeReg(1, addr);
        state.writeReg(2, value);
        state.setPc(0x1000);
        execute(state, {stores[pick], 0, 1, 2, 0}, nullptr);
        shadow.write(addr, widths[pick], value);
    }
    for (Addr a = 0x8000; a < 0x8000 + 512 + 8; ++a)
        ASSERT_EQ(mem.read(a, 1), shadow.read(a, 1)) << "addr " << a;
}

} // namespace
} // namespace slip
