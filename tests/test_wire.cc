#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <unistd.h>

#include "common/logging.hh"
#include "harness/sim_runner.hh"
#include "harness/wire.hh"

namespace slip::wire
{
namespace
{

TEST(WireEncoder, IntegersRoundTrip)
{
    Encoder enc;
    enc.putU8(0xab);
    enc.putU16(0xbeef);
    enc.putU32(0xdeadbeefu);
    enc.putU64(0x0123456789abcdefull);
    enc.putI32(-42);
    enc.putBool(true);
    enc.putBool(false);

    Decoder dec(enc.bytes());
    EXPECT_EQ(dec.getU8(), 0xab);
    EXPECT_EQ(dec.getU16(), 0xbeef);
    EXPECT_EQ(dec.getU32(), 0xdeadbeefu);
    EXPECT_EQ(dec.getU64(), 0x0123456789abcdefull);
    EXPECT_EQ(dec.getI32(), -42);
    EXPECT_TRUE(dec.getBool());
    EXPECT_FALSE(dec.getBool());
    EXPECT_TRUE(dec.atEnd());
}

TEST(WireEncoder, IntegersAreLittleEndian)
{
    // The layout is part of the protocol (version 1), not an
    // implementation detail: a future mixed-endian supervisor/worker
    // pair must agree on it.
    Encoder enc;
    enc.putU32(0x04030201u);
    const std::string &b = enc.bytes();
    ASSERT_EQ(b.size(), 4u);
    EXPECT_EQ(uint8_t(b[0]), 1);
    EXPECT_EQ(uint8_t(b[1]), 2);
    EXPECT_EQ(uint8_t(b[2]), 3);
    EXPECT_EQ(uint8_t(b[3]), 4);
}

TEST(WireEncoder, DoublesRoundTripExactly)
{
    // Bit-pattern transport: determinism across isolation modes
    // depends on doubles surviving without a decimal detour.
    const double values[] = {0.0, -0.0, 1.0 / 3.0, 1e-308, 6.02e23,
                             -123.456789012345678};
    Encoder enc;
    for (double v : values)
        enc.putDouble(v);
    enc.putDouble(std::nan(""));

    Decoder dec(enc.bytes());
    for (double v : values) {
        const double got = dec.getDouble();
        uint64_t a = 0, b = 0;
        std::memcpy(&a, &v, sizeof(a));
        std::memcpy(&b, &got, sizeof(b));
        EXPECT_EQ(a, b);
    }
    EXPECT_TRUE(std::isnan(dec.getDouble()));
}

TEST(WireEncoder, StringsRoundTripIncludingNuls)
{
    Encoder enc;
    enc.putString("");
    enc.putString(std::string("a\0b", 3));
    enc.putString("plain");

    Decoder dec(enc.bytes());
    EXPECT_EQ(dec.getString(), "");
    EXPECT_EQ(dec.getString(), std::string("a\0b", 3));
    EXPECT_EQ(dec.getString(), "plain");
    EXPECT_TRUE(dec.atEnd());
}

TEST(WireDecoder, TruncationIsFatalNotSilent)
{
    Encoder enc;
    enc.putU64(7);
    const std::string whole = enc.bytes();

    Decoder short1(whole);
    EXPECT_EQ(short1.getU64(), 7u);
    EXPECT_THROW(short1.getU8(), FatalError); // past the end

    const std::string torn = whole.substr(0, 3);
    Decoder short2(torn);
    EXPECT_THROW(short2.getU64(), FatalError);
}

TEST(WireDecoder, TruncatedStringIsFatal)
{
    Encoder enc;
    enc.putString("hello");
    // Length prefix says 5, but only 2 payload bytes survive.
    const std::string torn = enc.bytes().substr(0, 6);
    Decoder dec(torn);
    EXPECT_THROW(dec.getString(), FatalError);
}

/** pipe(2) fixture for frame-level tests. */
class WireFrame : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ASSERT_EQ(pipe(fds), 0);
    }

    void
    TearDown() override
    {
        if (fds[0] >= 0)
            close(fds[0]);
        if (fds[1] >= 0)
            close(fds[1]);
    }

    void
    closeWrite()
    {
        close(fds[1]);
        fds[1] = -1;
    }

    int fds[2] = {-1, -1};
};

TEST_F(WireFrame, RoundTripOverPipe)
{
    Encoder enc;
    enc.putU64(31337);
    enc.putString("payload");
    ASSERT_TRUE(writeFrame(fds[1], MsgType::JobResult, enc.bytes()));

    MsgType type{};
    std::string payload;
    ASSERT_EQ(readFrame(fds[0], type, payload), ReadResult::Ok);
    EXPECT_EQ(type, MsgType::JobResult);
    Decoder dec(payload);
    EXPECT_EQ(dec.getU64(), 31337u);
    EXPECT_EQ(dec.getString(), "payload");
}

TEST_F(WireFrame, EmptyPayloadFrame)
{
    ASSERT_TRUE(writeFrame(fds[1], MsgType::Shutdown, ""));
    MsgType type{};
    std::string payload;
    ASSERT_EQ(readFrame(fds[0], type, payload), ReadResult::Ok);
    EXPECT_EQ(type, MsgType::Shutdown);
    EXPECT_TRUE(payload.empty());
}

TEST_F(WireFrame, CleanCloseBetweenFramesIsEof)
{
    closeWrite();
    MsgType type{};
    std::string payload;
    EXPECT_EQ(readFrame(fds[0], type, payload), ReadResult::Eof);
}

TEST_F(WireFrame, CloseMidFrameIsError)
{
    // A valid header promising 100 payload bytes, then death.
    Encoder enc;
    enc.putString(std::string(100, 'x'));
    std::string frame;
    {
        // Build a full frame in memory by writing to a scratch pipe.
        int scratch[2];
        ASSERT_EQ(pipe(scratch), 0);
        ASSERT_TRUE(
            writeFrame(scratch[1], MsgType::JobResult, enc.bytes()));
        char buf[4096];
        const ssize_t n = read(scratch[0], buf, sizeof(buf));
        ASSERT_GT(n, 12);
        frame.assign(buf, size_t(n));
        close(scratch[0]);
        close(scratch[1]);
    }
    // Ship the header plus half the payload, then hang up.
    ASSERT_EQ(write(fds[1], frame.data(), frame.size() / 2),
              ssize_t(frame.size() / 2));
    closeWrite();

    MsgType type{};
    std::string payload;
    setLogQuiet(true);
    EXPECT_EQ(readFrame(fds[0], type, payload), ReadResult::Error);
    setLogQuiet(false);
}

TEST_F(WireFrame, BadMagicIsError)
{
    // 12 garbage header bytes: enough for a full (wrong) header.
    const char junk[12] = {'x', 'x', 'x', 'x', 'x', 'x',
                           'x', 'x', 'x', 'x', 'x', 'x'};
    ASSERT_EQ(write(fds[1], junk, sizeof(junk)), ssize_t(sizeof(junk)));
    MsgType type{};
    std::string payload;
    setLogQuiet(true);
    EXPECT_EQ(readFrame(fds[0], type, payload), ReadResult::Error);
    setLogQuiet(false);
}

RunMetrics
sampleMetrics()
{
    RunMetrics m;
    m.model = "CMP(2x64x4)";
    m.cycles = 123456;
    m.retired = 98765;
    m.ipc = 1.75;
    m.branchMispPer1000 = 3.25;
    m.outputCorrect = true;
    m.outputBytes = 4242;
    m.removedFraction = 0.375;
    m.removedByReason = {{"branch", 17}, {"store", 3}};
    m.removedByReasonMask[0] = 11;
    m.removedByReasonMask[5] = 7;
    m.irMispPer1000 = 0.5;
    m.avgIRPenalty = 12.5;
    m.recoveries = 9;
    m.cancelled = false;
    m.hung = false;
    m.watchdogTrips = 2;
    m.degraded = true;
    m.degradedAtCycle = 555;
    m.rOnlyRetired = 333;
    m.faultOutcome.injected = true;
    m.faultOutcome.targetWasRedundant = true;
    m.faultOutcome.detected = true;
    m.faultOutcome.pc = 0x1234;
    m.faultOutcome.planned = 2;
    m.faultOutcome.numInjected = 2;
    m.faultOutcome.numDetected = 1;
    FaultRecord rec;
    rec.plan.target = FaultTarget::ARegister;
    rec.plan.dynIndex = 77;
    rec.plan.bit = 13;
    rec.plan.reg = 5;
    rec.fired = true;
    rec.injected = true;
    rec.targetWasRedundant = true;
    rec.detected = true;
    rec.pc = 0x2000;
    rec.injectCycle = 100;
    rec.detectCycle = 250;
    m.faultOutcome.records.push_back(rec);
    return m;
}

void
expectMetricsEqual(const RunMetrics &a, const RunMetrics &b)
{
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.retired, b.retired);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.branchMispPer1000, b.branchMispPer1000);
    EXPECT_EQ(a.outputCorrect, b.outputCorrect);
    EXPECT_EQ(a.outputBytes, b.outputBytes);
    EXPECT_EQ(a.removedFraction, b.removedFraction);
    EXPECT_EQ(a.removedByReason, b.removedByReason);
    EXPECT_EQ(a.removedByReasonMask, b.removedByReasonMask);
    EXPECT_EQ(a.irMispPer1000, b.irMispPer1000);
    EXPECT_EQ(a.avgIRPenalty, b.avgIRPenalty);
    EXPECT_EQ(a.recoveries, b.recoveries);
    EXPECT_EQ(a.cancelled, b.cancelled);
    EXPECT_EQ(a.hung, b.hung);
    EXPECT_EQ(a.watchdogTrips, b.watchdogTrips);
    EXPECT_EQ(a.degraded, b.degraded);
    EXPECT_EQ(a.degradedAtCycle, b.degradedAtCycle);
    EXPECT_EQ(a.rOnlyRetired, b.rOnlyRetired);
    EXPECT_EQ(a.faultOutcome.injected, b.faultOutcome.injected);
    EXPECT_EQ(a.faultOutcome.targetWasRedundant,
              b.faultOutcome.targetWasRedundant);
    EXPECT_EQ(a.faultOutcome.detected, b.faultOutcome.detected);
    EXPECT_EQ(a.faultOutcome.pc, b.faultOutcome.pc);
    EXPECT_EQ(a.faultOutcome.planned, b.faultOutcome.planned);
    EXPECT_EQ(a.faultOutcome.numInjected, b.faultOutcome.numInjected);
    EXPECT_EQ(a.faultOutcome.numDetected, b.faultOutcome.numDetected);
    ASSERT_EQ(a.faultOutcome.records.size(),
              b.faultOutcome.records.size());
    for (size_t i = 0; i < a.faultOutcome.records.size(); ++i) {
        const FaultRecord &ra = a.faultOutcome.records[i];
        const FaultRecord &rb = b.faultOutcome.records[i];
        EXPECT_EQ(ra.plan.target, rb.plan.target);
        EXPECT_EQ(ra.plan.dynIndex, rb.plan.dynIndex);
        EXPECT_EQ(ra.plan.bit, rb.plan.bit);
        EXPECT_EQ(ra.plan.reg, rb.plan.reg);
        EXPECT_EQ(ra.fired, rb.fired);
        EXPECT_EQ(ra.injected, rb.injected);
        EXPECT_EQ(ra.targetWasRedundant, rb.targetWasRedundant);
        EXPECT_EQ(ra.detected, rb.detected);
        EXPECT_EQ(ra.pc, rb.pc);
        EXPECT_EQ(ra.injectCycle, rb.injectCycle);
        EXPECT_EQ(ra.detectCycle, rb.detectCycle);
    }
}

TEST(WireCodec, RunMetricsRoundTrip)
{
    const RunMetrics m = sampleMetrics();
    Encoder enc;
    encodeRunMetrics(enc, m);
    Decoder dec(enc.bytes());
    const RunMetrics back = decodeRunMetrics(dec);
    EXPECT_TRUE(dec.atEnd());
    expectMetricsEqual(m, back);
}

TEST(WireCodec, JobOutcomeRoundTrip)
{
    JobOutcome o;
    o.status = JobOutcome::Status::Error;
    o.metrics = sampleMetrics();
    o.errorKind = ErrorKind::Resource;
    o.errorMessage = "allocation failed";
    o.attempts = 3;

    Encoder enc;
    encodeJobOutcome(enc, o);
    Decoder dec(enc.bytes());
    const JobOutcome back = decodeJobOutcome(dec);
    EXPECT_TRUE(dec.atEnd());
    EXPECT_EQ(back.status, JobOutcome::Status::Error);
    EXPECT_EQ(back.errorKind, ErrorKind::Resource);
    EXPECT_EQ(back.errorMessage, "allocation failed");
    EXPECT_EQ(back.attempts, 3u);
    // The exception_ptr never crosses the wire.
    EXPECT_EQ(back.exception, nullptr);
    expectMetricsEqual(o.metrics, back.metrics);
}

TEST(WireCodec, CrashTriageFieldsRoundTrip)
{
    JobOutcome o;
    o.status = JobOutcome::Status::Crashed;
    o.termSignal = 11;
    o.termExitCode = 0;
    o.crashAddr = 0xdeadbeef;
    o.crashPhase = TrialPhase::Run;
    o.poisoned = true;
    o.errorMessage = "worker killed by SIGSEGV";

    Encoder enc;
    encodeJobOutcome(enc, o);
    Decoder dec(enc.bytes());
    const JobOutcome back = decodeJobOutcome(dec);
    EXPECT_EQ(back.status, JobOutcome::Status::Crashed);
    EXPECT_EQ(back.termSignal, 11);
    EXPECT_EQ(back.crashAddr, 0xdeadbeefu);
    EXPECT_EQ(back.crashPhase, TrialPhase::Run);
    EXPECT_TRUE(back.poisoned);
}

} // namespace
} // namespace slip::wire
