#include <gtest/gtest.h>

#include <deque>

#include "uarch/core.hh"

namespace slip
{
namespace
{

/** Scripted fetch source: serves a fixed list of blocks. */
class ScriptedSource : public FetchSource
{
  public:
    bool
    nextBlock(FetchBlock &block) override
    {
        if (blocks.empty())
            return false;
        block = std::move(blocks.front());
        blocks.pop_front();
        return true;
    }

    bool exhausted() const override { return blocks.empty(); }

    /** Append a block of `n` simple ALU ops ending optionally in halt. */
    void
    addAluBlock(unsigned n, bool endWithHalt = false,
                RegIndex chainReg = kNoReg)
    {
        FetchBlock b;
        b.startAddr = nextPc;
        for (unsigned i = 0; i < n; ++i) {
            DynInst d;
            d.seq = ++seq;
            d.pc = nextPc;
            const bool last = endWithHalt && i + 1 == n;
            if (last) {
                d.si = {Opcode::HALT, 0, 0, 0, 0};
            } else if (chainReg != kNoReg) {
                // Serial dependence chain through chainReg.
                d.si = {Opcode::ADDI, chainReg, chainReg, 0, 1};
                d.exec.wroteReg = true;
                d.exec.destReg = chainReg;
            } else {
                d.si = {Opcode::ADDI, RegIndex(1 + (seq % 8)), 0, 0, 1};
                d.exec.wroteReg = true;
                d.exec.destReg = RegIndex(1 + (seq % 8));
            }
            d.exec.nextPc = nextPc + 4;
            nextPc += 4;
            b.insts.push_back(d);
        }
        blocks.push_back(std::move(b));
    }

    std::deque<FetchBlock> blocks;
    InstSeqNum seq = 0;
    Addr nextPc = 0x1000;
};

Cycle
runToHalt(OoOCore &core, Cycle limit = 100000)
{
    Cycle now = 0;
    while (!core.halted() && now < limit) {
        core.tick(now);
        ++now;
    }
    EXPECT_TRUE(core.halted()) << "core did not halt";
    return now;
}

CoreParams
narrowParams()
{
    CoreParams p;
    p.name = "test_core";
    return p;
}

TEST(OoOCore, RunsAndRetiresEverything)
{
    ScriptedSource src;
    src.addAluBlock(16);
    src.addAluBlock(16);
    src.addAluBlock(8, true);
    OoOCore core(narrowParams(), src);
    runToHalt(core);
    EXPECT_EQ(core.retiredCount(), 40u);
    EXPECT_TRUE(core.pipelineEmpty());
}

TEST(OoOCore, IndependentOpsReachRetireWidthIpc)
{
    ScriptedSource src;
    for (int i = 0; i < 40; ++i) {
        src.nextPc = 0x1000; // loop over one I-cache line: warm fetch
        src.addAluBlock(16);
    }
    src.addAluBlock(1, true);
    OoOCore core(narrowParams(), src);
    const Cycle cycles = runToHalt(core);
    const double ipc = double(core.retiredCount()) / cycles;
    // 4-wide machine on independent ALU ops: close to 4, minus ramp.
    EXPECT_GT(ipc, 3.2);
}

TEST(OoOCore, DependenceChainLimitsIpc)
{
    ScriptedSource src;
    for (int i = 0; i < 40; ++i)
        src.addAluBlock(16, false, 5); // serial chain through r5
    src.addAluBlock(1, true);
    OoOCore core(narrowParams(), src);
    const Cycle cycles = runToHalt(core);
    const double ipc = double(core.retiredCount()) / cycles;
    // One-at-a-time dependent ops: IPC ~1.
    EXPECT_LT(ipc, 1.3);
}

TEST(OoOCore, MispredictStallsFetch)
{
    // Same instruction stream, with and without a mispredicted branch.
    const auto build = [](bool mispredict) {
        auto src = std::make_unique<ScriptedSource>();
        src->addAluBlock(8);
        // A branch ending the block.
        FetchBlock b;
        b.startAddr = src->nextPc;
        DynInst br;
        br.seq = ++src->seq;
        br.pc = src->nextPc;
        br.si = {Opcode::BNE, 0, 1, 0, 4};
        br.exec.isControl = true;
        br.exec.taken = true;
        br.exec.target = src->nextPc + 16;
        br.exec.nextPc = br.exec.target;
        br.mispredicted = mispredict;
        src->nextPc = br.exec.target;
        b.insts.push_back(br);
        src->blocks.push_back(std::move(b));
        src->addAluBlock(8, true);
        return src;
    };

    auto clean = build(false);
    OoOCore coreClean(narrowParams(), *clean);
    const Cycle cleanCycles = runToHalt(coreClean);

    auto dirty = build(true);
    OoOCore coreDirty(narrowParams(), *dirty);
    const Cycle dirtyCycles = runToHalt(coreDirty);

    EXPECT_GT(dirtyCycles, cleanCycles + 3);
    EXPECT_EQ(coreDirty.stats().get("branch_mispredicts"), 1u);
}

TEST(OoOCore, FetchOnlyInstructionsNeverDispatch)
{
    ScriptedSource src;
    FetchBlock b;
    b.startAddr = 0x1000;
    for (int i = 0; i < 4; ++i) {
        DynInst d;
        d.seq = i + 1;
        d.pc = 0x1000 + 4 * i;
        d.si = {Opcode::ADDI, 1, 1, 0, 1};
        d.fetchOnly = i < 2; // first two removed pre-decode
        d.exec.nextPc = d.pc + 4;
        b.insts.push_back(d);
    }
    src.blocks.push_back(std::move(b));
    src.addAluBlock(1, true);
    OoOCore core(narrowParams(), src);
    runToHalt(core);
    EXPECT_EQ(core.stats().get("fetched"), 5u);
    EXPECT_EQ(core.stats().get("fetch_only_removed"), 2u);
    EXPECT_EQ(core.retiredCount(), 3u);
}

TEST(OoOCore, RetireHookBackPressureBlocksRetirement)
{
    ScriptedSource src;
    src.addAluBlock(4, true);
    OoOCore core(narrowParams(), src);
    int allowed = 0;
    core.onRetire = [&](const DynInst &, Cycle) {
        return allowed-- > 0; // permit one retire per grant
    };
    Cycle now = 0;
    while (!core.halted() && now < 1000) {
        allowed = 1;
        core.tick(now);
        ++now;
    }
    EXPECT_TRUE(core.halted());
    // One retirement per cycle at most under this back-pressure.
    EXPECT_GE(now, 4u);
}

TEST(OoOCore, FlushDiscardsInFlightWork)
{
    ScriptedSource src;
    for (int i = 0; i < 10; ++i)
        src.addAluBlock(16);
    OoOCore core(narrowParams(), src);
    for (Cycle now = 0; now < 6; ++now)
        core.tick(now);
    EXPECT_FALSE(core.pipelineEmpty());
    core.flush(6, 10);
    EXPECT_TRUE(core.pipelineEmpty());
    EXPECT_EQ(core.stats().get("flushes"), 1u);
}

TEST(OoOCore, IcacheMissDelaysFetch)
{
    // Two runs over many distinct lines vs the same line: the former
    // must take longer due to I-cache misses.
    ScriptedSource farSrc;
    for (int i = 0; i < 30; ++i) {
        farSrc.nextPc = 0x10000 + i * 0x10000; // distinct lines & sets
        farSrc.addAluBlock(8);
    }
    farSrc.addAluBlock(1, true);
    OoOCore farCore(narrowParams(), farSrc);
    const Cycle farCycles = runToHalt(farCore);

    ScriptedSource nearSrc;
    for (int i = 0; i < 30; ++i) {
        nearSrc.nextPc = 0x10000; // same line every time
        nearSrc.addAluBlock(8);
    }
    nearSrc.addAluBlock(1, true);
    OoOCore nearCore(narrowParams(), nearSrc);
    const Cycle nearCycles = runToHalt(nearCore);

    EXPECT_GT(farCycles, nearCycles);
    EXPECT_GT(farCore.icache().misses(), nearCore.icache().misses());
}

} // namespace
} // namespace slip
