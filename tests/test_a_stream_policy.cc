/**
 * A-stream shortening policies: name/parse round trips, the strip
 * semantics every runahead-family policy relies on, per-policy
 * end-to-end correctness on a real program, and the reliability
 * oracle — the reliability-aware policy must never publish a delay-
 * buffer packet carrying data, even under a forced IR-misprediction.
 */

#include <gtest/gtest.h>

#include <string>

#include "assembler/assembler.hh"
#include "func/func_sim.hh"
#include "slipstream/a_stream_policy.hh"
#include "slipstream/slipstream_processor.hh"

namespace slip
{
namespace
{

TEST(AStreamPolicy, NamesParseRoundTrip)
{
    EXPECT_STREQ(aStreamPolicyName(AStreamPolicyKind::IRRemoval),
                 "ir");
    EXPECT_STREQ(aStreamPolicyName(AStreamPolicyKind::Runahead),
                 "runahead");
    EXPECT_STREQ(
        aStreamPolicyName(AStreamPolicyKind::FilteredRunahead),
        "filtered");
    EXPECT_STREQ(
        aStreamPolicyName(AStreamPolicyKind::ReliabilityRunahead),
        "reliability");

    for (unsigned i = 0; i < kNumAStreamPolicies; ++i) {
        AStreamPolicyKind parsed;
        ASSERT_TRUE(parseAStreamPolicy(
            aStreamPolicyName(AStreamPolicyKind(i)), parsed));
        EXPECT_EQ(parsed, AStreamPolicyKind(i));
    }
    AStreamPolicyKind dummy;
    EXPECT_FALSE(parseAStreamPolicy("turbo", dummy));
    EXPECT_FALSE(parseAStreamPolicy("", dummy));
    EXPECT_FALSE(parseAStreamPolicy("IR", dummy));
}

/** A packet with `executed` value-carrying slots out of `slots`. */
Packet
packetOf(unsigned slots, unsigned executed)
{
    Packet p;
    p.num = 1;
    p.actualId = TraceId{0x1000, 0, 0, uint8_t(slots)};
    p.slots.resize(slots);
    for (unsigned i = 0; i < slots; ++i) {
        PacketSlot &slot = p.slots[i];
        slot.pc = 0x1000 + 4 * i;
        slot.si = StaticInst{Opcode::ADDI, RegIndex(5), RegIndex(6),
                             RegIndex(0), 1};
        if (i < executed) {
            slot.executedInA = true;
            slot.aExec.destValue = 0xdead0000 + i;
        }
        slot.pathTaken = (i % 2) == 0;
        slot.pathNextPc = slot.pc + 4;
    }
    p.executedCount = executed;
    return p;
}

TEST(AStreamPolicy, ReliabilityStripsValuesButKeepsPath)
{
    AStreamPolicyParams params;
    params.kind = AStreamPolicyKind::ReliabilityRunahead;
    auto policy = makeAStreamPolicy(params);

    Packet p = packetOf(6, 4);
    policy->onPacketComplete(p);

    EXPECT_EQ(p.executedCount, 0u);
    for (unsigned i = 0; i < p.slots.size(); ++i) {
        const PacketSlot &slot = p.slots[i];
        EXPECT_FALSE(slot.executedInA) << i;
        EXPECT_EQ(slot.aExec.destValue, 0u) << i;
        // Path info survives: direction-only validation needs it.
        EXPECT_EQ(slot.pathTaken, (i % 2) == 0) << i;
        EXPECT_EQ(slot.pathNextPc, slot.pc + 4) << i;
    }
    EXPECT_EQ(policy->stats().get("stripped_slots"), 4u);
    EXPECT_EQ(policy->stats().get("control_only_packets"), 1u);
    EXPECT_EQ(policy->stats().get("data_packets"), 0u);
}

TEST(AStreamPolicy, RunaheadStripsOnlyWhileInMode)
{
    AStreamPolicyParams params;
    params.kind = AStreamPolicyKind::Runahead;
    params.runaheadTraces = 2;
    auto policy = makeAStreamPolicy(params);

    // Out of mode: packets pass through untouched.
    Packet before = packetOf(4, 3);
    policy->onPacketComplete(before);
    EXPECT_EQ(before.executedCount, 3u);
    EXPECT_EQ(policy->stats().get("data_packets"), 1u);

    // A load whose line misses the (cold) tag array enters mode.
    const StaticInst load{Opcode::LD, RegIndex(5), RegIndex(6),
                          RegIndex(0), 0};
    ExecResult exec;
    exec.memAddr = 0x4000;
    policy->onSlotExecuted(load, exec);
    EXPECT_EQ(policy->stats().get("mode_entries"), 1u);

    // The next `runaheadTraces` packets forward control only...
    for (int i = 0; i < 2; ++i) {
        Packet in = packetOf(4, 3);
        policy->onPacketComplete(in);
        EXPECT_EQ(in.executedCount, 0u) << i;
    }
    EXPECT_EQ(policy->stats().get("mode_traces"), 2u);
    EXPECT_EQ(policy->stats().get("stripped_slots"), 6u);

    // ...then mode exits and values flow again.
    Packet after = packetOf(4, 3);
    policy->onPacketComplete(after);
    EXPECT_EQ(after.executedCount, 3u);

    // The same line hits now — no re-entry...
    policy->onSlotExecuted(load, exec);
    EXPECT_EQ(policy->stats().get("mode_entries"), 1u);

    // ...until a recovery resets the miss model with the rest of the
    // speculative context.
    policy->onRecovery();
    policy->onSlotExecuted(load, exec);
    EXPECT_EQ(policy->stats().get("mode_entries"), 2u);
}

TEST(AStreamPolicy, FilteredKeepsLoadSlicesInMode)
{
    AStreamPolicyParams params;
    params.kind = AStreamPolicyKind::FilteredRunahead;
    params.runaheadTraces = 1;
    auto policy = makeAStreamPolicy(params);

    const StaticInst trigger{Opcode::LD, RegIndex(5), RegIndex(6),
                             RegIndex(0), 0};
    ExecResult exec;
    exec.memAddr = 0x8000;
    policy->onSlotExecuted(trigger, exec);

    // Three executed slots: x7 = x8 + 1 feeds the load's address,
    // x9 = x9 * x9 feeds nothing the load needs, ld x10, 0(x7).
    Packet p;
    p.num = 2;
    p.slots.resize(3);
    p.slots[0].si = StaticInst{Opcode::ADDI, RegIndex(7), RegIndex(8),
                               RegIndex(0), 1};
    p.slots[1].si = StaticInst{Opcode::MUL, RegIndex(9), RegIndex(9),
                               RegIndex(9), 0};
    p.slots[2].si = StaticInst{Opcode::LD, RegIndex(10), RegIndex(7),
                               RegIndex(0), 0};
    for (PacketSlot &slot : p.slots) {
        slot.executedInA = true;
        slot.aExec.destValue = 1;
    }
    p.executedCount = 3;
    policy->onPacketComplete(p);

    EXPECT_TRUE(p.slots[0].executedInA);  // feeds the load address
    EXPECT_FALSE(p.slots[1].executedInA); // dead to every load
    EXPECT_TRUE(p.slots[2].executedInA);  // the load itself
    EXPECT_EQ(p.executedCount, 2u);
    EXPECT_EQ(policy->stats().get("stripped_slots"), 1u);
}

// ---------------------------------------------------------------------
// End-to-end: every policy yields architecturally correct output.
// ---------------------------------------------------------------------

const char *kProgram = R"(
.data
arr: .space 2048
.text
main:
    la   a0, arr
    li   s5, 0
again:
    li   s0, 0
fill:
    slli t0, s0, 3
    add  t0, t0, a0
    mul  t1, s0, s0
    sd   t1, 0(t0)
    addi t9, zero, 1     # removable bookkeeping
    addi s0, s0, 1
    li   t2, 256
    blt  s0, t2, fill
    li   s0, 0
    li   s1, 0
sum:
    slli t0, s0, 3
    add  t0, t0, a0
    ld   t1, 0(t0)
    add  s1, s1, t1
    addi s0, s0, 1
    li   t2, 256
    blt  s0, t2, sum
    addi s5, s5, 1
    li   t2, 4
    blt  s5, t2, again
    putn s1
    halt
)";

std::string
golden()
{
    Program p = assemble(kProgram);
    FuncSim sim(p);
    return sim.run().output;
}

TEST(AStreamPolicy, EveryPolicyProducesCorrectOutput)
{
    const std::string want = golden();
    for (unsigned i = 0; i < kNumAStreamPolicies; ++i) {
        const AStreamPolicyKind kind = AStreamPolicyKind(i);
        SCOPED_TRACE(aStreamPolicyName(kind));
        Program p = assemble(kProgram);
        SlipstreamParams params;
        params.aPolicy.kind = kind;
        SlipstreamProcessor proc(p, params);
        const SlipstreamRunResult r = proc.run();
        EXPECT_TRUE(r.halted);
        EXPECT_EQ(r.output, want);

        const uint64_t data =
            proc.aPolicy().stats().get("data_packets");
        const uint64_t stripped =
            proc.aPolicy().stats().get("stripped_slots");
        if (kind == AStreamPolicyKind::ReliabilityRunahead) {
            // The defining property: control only, always.
            EXPECT_EQ(data, 0u);
            EXPECT_GT(stripped, 0u);
        } else if (kind == AStreamPolicyKind::IRRemoval) {
            EXPECT_GT(data, 0u);
            EXPECT_EQ(stripped, 0u);
        } else {
            // The runahead variants strip in-mode only; the cold tag
            // array guarantees at least one miss -> one mode entry.
            EXPECT_GT(data, 0u);
            EXPECT_GT(proc.aPolicy().stats().get("mode_entries"), 0u);
            EXPECT_GT(stripped, 0u);
        }
    }
}

/**
 * The reliability oracle (the satellite's acceptance property): force
 * IR-mispredictions by corrupting predictor SRAM mid-run; recoveries
 * fire, and still not one delay-buffer packet with data is published.
 * A corrupted A-stream context cannot poison the delay buffer when no
 * speculative value ever rides it.
 */
TEST(AStreamPolicy, ReliabilityNeverPublishesDataUnderIRMisprediction)
{
    const std::string want = golden();
    for (unsigned bit : {0u, 3u, 8u, 20u, 40u}) {
        SCOPED_TRACE(bit);
        Program p = assemble(kProgram);
        SlipstreamParams params;
        params.aPolicy.kind = AStreamPolicyKind::ReliabilityRunahead;
        SlipstreamProcessor proc(p, params);
        proc.faultInjector().arm({FaultTarget::IRPredictor, 4000, bit});
        const SlipstreamRunResult r = proc.run();
        EXPECT_TRUE(r.halted);
        EXPECT_EQ(r.output, want);
        EXPECT_EQ(proc.aPolicy().stats().get("data_packets"), 0u);
        EXPECT_GT(proc.aPolicy().stats().get("control_only_packets"),
                  0u);
    }
}

} // namespace
} // namespace slip
