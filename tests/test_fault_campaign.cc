#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "harness/fault_campaign.hh"

namespace slip
{
namespace
{

FaultCampaignConfig
smallConfig()
{
    FaultCampaignConfig cfg;
    cfg.workloads = {"m88ksim", "li"};
    cfg.trialsPerWorkload = 6;
    return cfg;
}

uint64_t
outcomeSum(const CampaignTally &t)
{
    uint64_t sum = 0;
    for (unsigned o = 0; o < kNumTrialOutcomes; ++o)
        sum += t.byOutcome[o];
    return sum;
}

TEST(FaultCampaign, EveryTrialClassifiedAndNoneHang)
{
    const FaultCampaignConfig cfg = smallConfig();
    const FaultCampaignResult result = runFaultCampaign(cfg);

    ASSERT_EQ(result.trials.size(),
              cfg.workloads.size() * cfg.trialsPerWorkload);
    EXPECT_EQ(result.total.trials, result.trials.size());
    // Every trial lands in exactly one outcome bucket.
    EXPECT_EQ(outcomeSum(result.total), result.total.trials);
    for (const auto &[name, tally] : result.perWorkload)
        EXPECT_EQ(outcomeSum(tally), tally.trials) << name;
    // The cycle cap plus watchdog mean no trial may hang.
    EXPECT_EQ(result.total.outcomes(TrialOutcome::Hung), 0u);
    // The steady-state injection window must actually land faults.
    EXPECT_GT(result.total.faultsInjected, 0u);
    for (const TrialRecord &trial : result.trials) {
        EXPECT_FALSE(trial.metrics.hung) << trial.workload;
        EXPECT_GE(trial.plans.size(), cfg.minFaultsPerTrial);
        EXPECT_LE(trial.plans.size(), cfg.maxFaultsPerTrial);
    }
}

TEST(FaultCampaign, DeterministicAcrossWorkerCounts)
{
    const FaultCampaignConfig cfg = smallConfig();
    const char *prior = std::getenv("SLIPSTREAM_JOBS");
    const std::string saved = prior ? prior : "";

    setenv("SLIPSTREAM_JOBS", "1", 1);
    const std::string serial = campaignJson(cfg, runFaultCampaign(cfg));
    setenv("SLIPSTREAM_JOBS", "3", 1);
    const std::string parallel =
        campaignJson(cfg, runFaultCampaign(cfg));

    if (prior)
        setenv("SLIPSTREAM_JOBS", saved.c_str(), 1);
    else
        unsetenv("SLIPSTREAM_JOBS");

    EXPECT_EQ(serial, parallel);
}

TEST(FaultCampaign, ReliableModeHasNoSilentCorruption)
{
    FaultCampaignConfig cfg = smallConfig();
    cfg.reliableMode = true;
    cfg.trialsPerWorkload = 8;
    const FaultCampaignResult result = runFaultCampaign(cfg);

    EXPECT_EQ(result.total.outcomes(TrialOutcome::SilentCorrupt), 0u);
    EXPECT_EQ(result.total.outcomes(TrialOutcome::DetectedButCorrupt),
              0u);
    EXPECT_EQ(result.total.outcomes(TrialOutcome::Hung), 0u);
    // Full redundancy: the default reliable target mix always finds
    // a victim.
    EXPECT_EQ(result.total.faultsInjected, result.total.faultsPlanned);
}

TEST(FaultCampaign, ReliableTargetsExcludeMemoryAndPredictor)
{
    for (FaultTarget t : defaultCampaignTargets(true)) {
        EXPECT_NE(t, FaultTarget::MemoryCell);
        EXPECT_NE(t, FaultTarget::IRPredictor);
    }
    // The slipstream mix covers every target.
    EXPECT_EQ(defaultCampaignTargets(false).size(), 8u);
}

TEST(FaultCampaign, JsonReportIsWellFormedAndWritable)
{
    FaultCampaignConfig cfg = smallConfig();
    cfg.trialsPerWorkload = 2;
    const FaultCampaignResult result = runFaultCampaign(cfg);
    const std::string json = campaignJson(cfg, result);

    // Shape: balanced braces/brackets, the report keys present.
    long braces = 0, brackets = 0;
    for (char c : json) {
        braces += c == '{' ? 1 : c == '}' ? -1 : 0;
        brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    for (const char *key :
         {"\"campaign\"", "\"mode\"", "\"outcomes\"", "\"targets\"",
          "\"detection_latency_cycles\"", "\"workloads\"",
          "\"silent_corrupt\"", "\"degraded_runs\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;

    // writeFaultReport produces a readable JSON array at the path.
    const std::string path = "test_fault_campaign_report.json";
    writeFaultReport({json, json}, path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    EXPECT_EQ(text.front(), '[');
    EXPECT_NE(text.find("\"campaign\""), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace slip
