#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "harness/fault_campaign.hh"

namespace slip
{
namespace
{

FaultCampaignConfig
smallConfig()
{
    FaultCampaignConfig cfg;
    cfg.workloads = {"m88ksim", "li"};
    cfg.trialsPerWorkload = 6;
    // Keep test journals out of results/.
    cfg.journalPath = "test_fault_campaign.journal.jsonl";
    return cfg;
}

uint64_t
outcomeSum(const CampaignTally &t)
{
    uint64_t sum = 0;
    for (unsigned o = 0; o < kNumTrialOutcomes; ++o)
        sum += t.byOutcome[o];
    return sum;
}

TEST(FaultCampaign, EveryTrialClassifiedAndNoneHang)
{
    const FaultCampaignConfig cfg = smallConfig();
    const FaultCampaignResult result = runFaultCampaign(cfg);

    ASSERT_EQ(result.trials.size(),
              cfg.workloads.size() * cfg.trialsPerWorkload);
    EXPECT_EQ(result.total.trials, result.trials.size());
    // Every trial lands in exactly one outcome bucket.
    EXPECT_EQ(outcomeSum(result.total), result.total.trials);
    for (const auto &[name, tally] : result.perWorkload)
        EXPECT_EQ(outcomeSum(tally), tally.trials) << name;
    // The cycle cap plus watchdog mean no trial may hang.
    EXPECT_EQ(result.total.outcomes(TrialOutcome::Hung), 0u);
    // The steady-state injection window must actually land faults.
    EXPECT_GT(result.total.faultsInjected, 0u);
    for (const TrialRecord &trial : result.trials) {
        EXPECT_FALSE(trial.metrics.hung) << trial.workload;
        EXPECT_GE(trial.plans.size(), cfg.minFaultsPerTrial);
        EXPECT_LE(trial.plans.size(), cfg.maxFaultsPerTrial);
    }
}

TEST(FaultCampaign, DeterministicAcrossWorkerCounts)
{
    const FaultCampaignConfig cfg = smallConfig();
    const char *prior = std::getenv("SLIPSTREAM_JOBS");
    const std::string saved = prior ? prior : "";

    setenv("SLIPSTREAM_JOBS", "1", 1);
    const std::string serial = campaignJson(cfg, runFaultCampaign(cfg));
    setenv("SLIPSTREAM_JOBS", "3", 1);
    const std::string parallel =
        campaignJson(cfg, runFaultCampaign(cfg));

    if (prior)
        setenv("SLIPSTREAM_JOBS", saved.c_str(), 1);
    else
        unsetenv("SLIPSTREAM_JOBS");

    EXPECT_EQ(serial, parallel);
}

TEST(FaultCampaign, ReliableModeHasNoSilentCorruption)
{
    FaultCampaignConfig cfg = smallConfig();
    cfg.reliableMode = true;
    cfg.trialsPerWorkload = 8;
    const FaultCampaignResult result = runFaultCampaign(cfg);

    EXPECT_EQ(result.total.outcomes(TrialOutcome::SilentCorrupt), 0u);
    EXPECT_EQ(result.total.outcomes(TrialOutcome::DetectedButCorrupt),
              0u);
    EXPECT_EQ(result.total.outcomes(TrialOutcome::Hung), 0u);
    // Full redundancy: the default reliable target mix always finds
    // a victim.
    EXPECT_EQ(result.total.faultsInjected, result.total.faultsPlanned);
}

TEST(FaultCampaign, ReliableTargetsExcludeMemoryAndPredictor)
{
    for (FaultTarget t : defaultCampaignTargets(true)) {
        EXPECT_NE(t, FaultTarget::MemoryCell);
        EXPECT_NE(t, FaultTarget::IRPredictor);
    }
    // The slipstream mix covers every target.
    EXPECT_EQ(defaultCampaignTargets(false).size(), 8u);
}

TEST(FaultCampaign, JsonReportIsWellFormedAndWritable)
{
    FaultCampaignConfig cfg = smallConfig();
    cfg.trialsPerWorkload = 2;
    const FaultCampaignResult result = runFaultCampaign(cfg);
    const std::string json = campaignJson(cfg, result);

    // Shape: balanced braces/brackets, the report keys present.
    long braces = 0, brackets = 0;
    for (char c : json) {
        braces += c == '{' ? 1 : c == '}' ? -1 : 0;
        brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    for (const char *key :
         {"\"campaign\"", "\"mode\"", "\"outcomes\"", "\"targets\"",
          "\"detection_latency_cycles\"", "\"workloads\"",
          "\"detection_latency_histogram\"", "\"silent_corrupt\"",
          "\"degraded_runs\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;

    // Per-target histogram counts match the scalar sample count, so
    // the distribution is complete, not a subset.
    uint64_t histCount = 0;
    for (const auto &[target, hist] : result.total.latencyByTarget)
        histCount += hist.count();
    EXPECT_EQ(histCount, result.total.latencySamples);

    // writeFaultReport produces a readable JSON array at the path,
    // and the atomic temp sibling is gone once the rename lands.
    const std::string path = "test_fault_campaign_report.json";
    writeFaultReport({json, json}, path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    EXPECT_EQ(text.front(), '[');
    EXPECT_NE(text.find("\"campaign\""), std::string::npos);
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());
    std::remove(path.c_str());
}

TEST(FaultCampaign, ReportFailureWarnsInsteadOfThrowing)
{
    // Parent "directory" is a regular file: creation must fail, and
    // the failure must be a warning, not an exception or a crash.
    const std::string blocker = "test_fault_report_blocker";
    {
        std::ofstream out(blocker, std::ios::trunc);
        out << "not a directory\n";
    }
    EXPECT_NO_THROW(
        writeFaultReport({"{}"}, blocker + "/sub/report.json"));
    std::remove(blocker.c_str());
}

TEST(FaultCampaign, OutcomeNamesRoundTripThroughTheJournal)
{
    for (unsigned o = 0; o < kNumTrialOutcomes; ++o) {
        TrialOutcome parsed;
        ASSERT_TRUE(trialOutcomeFromName(
            trialOutcomeName(TrialOutcome(o)), parsed));
        EXPECT_EQ(parsed, TrialOutcome(o));
    }
    TrialOutcome dummy;
    EXPECT_FALSE(trialOutcomeFromName("not_an_outcome", dummy));
    EXPECT_FALSE(trialOutcomeFromName("", dummy));
}

/**
 * The tentpole acceptance property: kill a campaign at any point,
 * rerun in resume mode, and the final report comes out byte-identical
 * — for any SLIPSTREAM_JOBS. Simulated here by truncating the journal
 * at several cut points; one leg also appends a torn (half-written)
 * final line, which resume must skip, not choke on.
 */
TEST(FaultCampaign, ResumeReproducesTheReportByteForByte)
{
    FaultCampaignConfig cfg = smallConfig();
    cfg.name = "resume_determinism";
    cfg.trialsPerWorkload = 4; // 8 trials across the two workloads
    cfg.journalPath = "test_fault_campaign.resume.jsonl";

    const char *prior = std::getenv("SLIPSTREAM_JOBS");
    const std::string saved = prior ? prior : "";

    const FaultCampaignResult full = runFaultCampaign(cfg);
    const std::string expected = campaignJson(cfg, full);

    // Capture the uninterrupted run's journal lines.
    std::vector<std::string> lines;
    {
        std::ifstream in(cfg.journalPath);
        std::string line;
        while (std::getline(in, line))
            if (!line.empty())
                lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), full.trials.size());

    const size_t cuts[] = {0, 1, lines.size() / 2, lines.size() - 1};
    for (size_t cut : cuts) {
        for (const char *jobs : {"1", "3"}) {
            SCOPED_TRACE(std::string("cut=") + std::to_string(cut) +
                         " jobs=" + jobs);
            setenv("SLIPSTREAM_JOBS", jobs, 1);
            // A kill after `cut` completed trials: journal holds their
            // lines plus, on one leg, a torn line from the victim.
            {
                std::ofstream out(cfg.journalPath, std::ios::trunc);
                for (size_t i = 0; i < cut; ++i)
                    out << lines[i] << '\n';
                if (cut == 1)
                    out << lines[cut].substr(0, lines[cut].size() / 2);
            }
            FaultCampaignConfig again = cfg;
            again.resume = true;
            const std::string got =
                campaignJson(again, runFaultCampaign(again));
            EXPECT_EQ(got, expected);
        }
    }

    if (prior)
        setenv("SLIPSTREAM_JOBS", saved.c_str(), 1);
    else
        unsetenv("SLIPSTREAM_JOBS");
    std::remove(cfg.journalPath.c_str());
}

/**
 * Kill-during-write interaction: the journal ends in a torn partial
 * line AND the last *complete* record is a timed-out trial. Resume
 * must (a) skip the torn line and re-run only that trial, and (b)
 * restore the timed_out record as a terminal result — journaled
 * timeouts are not retried, or a resumed report could disagree with
 * the run it resumed.
 */
TEST(FaultCampaign, ResumeRestoresTimedOutRecordBeforeTornLine)
{
    FaultCampaignConfig cfg = smallConfig();
    cfg.name = "resume_torn_timeout";
    cfg.trialsPerWorkload = 4; // 8 trials across the two workloads
    cfg.journalPath = "test_fault_campaign.torn.jsonl";

    const FaultCampaignResult full = runFaultCampaign(cfg);
    std::vector<std::string> lines;
    {
        std::ifstream in(cfg.journalPath);
        std::string line;
        while (std::getline(in, line))
            if (!line.empty())
                lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), full.trials.size());
    const size_t timedOutTrial = lines.size() - 2;
    const size_t tornTrial = lines.size() - 1;
    // Precondition: the live run did NOT time out here, so if resume
    // were to quietly re-run the trial it would get a different
    // outcome and the assertion below would catch it.
    ASSERT_NE(full.trials[timedOutTrial].outcome,
              TrialOutcome::TimedOut);

    // Tamper the last complete record into a timeout, then append
    // the first half of the final record as the torn line a killed
    // writer leaves behind.
    std::string tampered = lines[timedOutTrial];
    const std::string key = "\"outcome\":\"";
    const size_t at = tampered.find(key);
    ASSERT_NE(at, std::string::npos);
    const size_t valueEnd = tampered.find('"', at + key.size());
    ASSERT_NE(valueEnd, std::string::npos);
    tampered.replace(at + key.size(), valueEnd - (at + key.size()),
                     "timed_out");
    {
        std::ofstream out(cfg.journalPath, std::ios::trunc);
        for (size_t i = 0; i < timedOutTrial; ++i)
            out << lines[i] << '\n';
        out << tampered << '\n';
        out << lines[tornTrial].substr(0, lines[tornTrial].size() / 2);
    }

    FaultCampaignConfig again = cfg;
    again.resume = true;
    const FaultCampaignResult resumed = runFaultCampaign(again);
    const std::string resumedJson = campaignJson(again, resumed);

    ASSERT_EQ(resumed.trials.size(), full.trials.size());
    // The tampered record was restored, not re-executed.
    EXPECT_EQ(resumed.trials[timedOutTrial].outcome,
              TrialOutcome::TimedOut);
    EXPECT_EQ(resumed.total.outcomes(TrialOutcome::TimedOut),
              full.total.outcomes(TrialOutcome::TimedOut) + 1);
    // The torn trial was re-run and reproduced the live run exactly.
    EXPECT_EQ(resumed.trials[tornTrial].outcome,
              full.trials[tornTrial].outcome);
    EXPECT_EQ(resumed.trials[tornTrial].cycles,
              full.trials[tornTrial].cycles);
    // Every other trial came back verbatim.
    for (size_t i = 0; i < timedOutTrial; ++i) {
        EXPECT_EQ(resumed.trials[i].outcome, full.trials[i].outcome)
            << "trial " << i;
        EXPECT_EQ(resumed.trials[i].cycles, full.trials[i].cycles)
            << "trial " << i;
    }
    EXPECT_EQ(outcomeSum(resumed.total), resumed.total.trials);

    // The re-run appended the torn trial's record, so a second resume
    // restores all trials (timeout included, still without retrying
    // it) and must render the identical report.
    const std::string secondJson =
        campaignJson(again, runFaultCampaign(again));
    EXPECT_EQ(secondJson, resumedJson);

    std::remove(cfg.journalPath.c_str());
}

/** A journal from a different campaign or seed must never leak in. */
TEST(FaultCampaign, ResumeIgnoresForeignJournalEntries)
{
    FaultCampaignConfig cfg = smallConfig();
    cfg.name = "resume_isolation";
    cfg.workloads = {"m88ksim"};
    cfg.trialsPerWorkload = 2;
    cfg.journalPath = "test_fault_campaign.foreign.jsonl";

    const FaultCampaignResult fresh = runFaultCampaign(cfg);
    const std::string expected = campaignJson(cfg, fresh);

    // Poison the journal with entries that would corrupt the tallies
    // if resume matched them: wrong campaign, wrong seed, wrong
    // workload, out-of-range trial, unknown outcome.
    {
        std::ofstream out(cfg.journalPath, std::ios::trunc);
        out << "{\"campaign\":\"someone_else\",\"seed\":" << cfg.seed
            << ",\"trial\":0,\"workload\":\"m88ksim\","
               "\"outcome\":\"crashed\",\"planned\":99,\"injected\":99,"
               "\"detected\":99,\"degraded\":1,\"latency_samples\":9,"
               "\"latency_total\":9,\"latency_max\":9,\"cycles\":9,"
               "\"error\":\"\"}\n";
        out << "{\"campaign\":\"resume_isolation\",\"seed\":1,"
               "\"trial\":0,\"workload\":\"m88ksim\","
               "\"outcome\":\"crashed\",\"planned\":99,\"injected\":99,"
               "\"detected\":99,\"degraded\":1,\"latency_samples\":9,"
               "\"latency_total\":9,\"latency_max\":9,\"cycles\":9,"
               "\"error\":\"\"}\n";
        out << "{\"campaign\":\"resume_isolation\",\"seed\":"
            << cfg.seed
            << ",\"trial\":0,\"workload\":\"wrong_workload\","
               "\"outcome\":\"crashed\",\"planned\":99,\"injected\":99,"
               "\"detected\":99,\"degraded\":1,\"latency_samples\":9,"
               "\"latency_total\":9,\"latency_max\":9,\"cycles\":9,"
               "\"error\":\"\"}\n";
        out << "{\"campaign\":\"resume_isolation\",\"seed\":"
            << cfg.seed
            << ",\"trial\":999,\"workload\":\"m88ksim\","
               "\"outcome\":\"crashed\",\"planned\":99,\"injected\":99,"
               "\"detected\":99,\"degraded\":1,\"latency_samples\":9,"
               "\"latency_total\":9,\"latency_max\":9,\"cycles\":9,"
               "\"error\":\"\"}\n";
        out << "{\"campaign\":\"resume_isolation\",\"seed\":"
            << cfg.seed
            << ",\"trial\":0,\"workload\":\"m88ksim\","
               "\"outcome\":\"abducted\",\"planned\":99,\"injected\":99,"
               "\"detected\":99,\"degraded\":1,\"latency_samples\":9,"
               "\"latency_total\":9,\"latency_max\":9,\"cycles\":9,"
               "\"error\":\"\"}\n";
    }
    FaultCampaignConfig again = cfg;
    again.resume = true;
    const std::string got =
        campaignJson(again, runFaultCampaign(again));
    EXPECT_EQ(got, expected);
    std::remove(cfg.journalPath.c_str());
}

/**
 * The policy matrix: for every A-stream shortening policy, the
 * campaign journal must come out byte-identical across worker counts
 * AND isolation modes. A policy that consulted wall-clock, worker
 * identity, or shared mutable state would diverge here.
 */
TEST(FaultCampaign, PolicyMatrixJournalsAreByteIdentical)
{
    const char *prior = std::getenv("SLIPSTREAM_JOBS");
    const std::string saved = prior ? prior : "";
    const std::string journal = "test_fault_campaign.policy.jsonl";

    for (size_t p = 0; p < kNumAStreamPolicies; ++p) {
        const AStreamPolicyKind kind = AStreamPolicyKind(p);
        const std::string policyName = aStreamPolicyName(kind);
        FaultCampaignConfig cfg;
        cfg.name = "policy_matrix_" + policyName;
        cfg.workloads = {"m88ksim"};
        cfg.trialsPerWorkload = 3;
        cfg.journalPath = journal;
        cfg.params.aPolicy.kind = kind;

        std::string reference;
        for (const char *jobs : {"1", "3"}) {
            for (IsolationMode iso :
                 {IsolationMode::None, IsolationMode::Fork}) {
                SCOPED_TRACE(policyName + " jobs=" + jobs +
                             " isolation=" +
                             (iso == IsolationMode::Fork ? "fork"
                                                         : "none"));
                setenv("SLIPSTREAM_JOBS", jobs, 1);
                std::remove(journal.c_str());
                cfg.isolation = iso;
                runFaultCampaign(cfg);
                std::ifstream in(journal, std::ios::binary);
                ASSERT_TRUE(in.good());
                std::stringstream buf;
                buf << in.rdbuf();
                if (reference.empty())
                    reference = buf.str();
                else
                    EXPECT_EQ(buf.str(), reference);
            }
        }
        // Every line carries the policy tag resume matches against.
        EXPECT_NE(reference.find("\"policy\":\"" + policyName + "\""),
                  std::string::npos);
    }

    if (prior)
        setenv("SLIPSTREAM_JOBS", saved.c_str(), 1);
    else
        unsetenv("SLIPSTREAM_JOBS");
    std::remove(journal.c_str());
}

/**
 * A journal written under one A-stream policy must never satisfy a
 * resume under another (the PR-8 backend-tag contract extended to
 * policies): trial dynamics differ per policy, so adopting a foreign
 * record would report results the configuration never produced.
 */
TEST(FaultCampaign, ResumeRejectsForeignPolicyJournal)
{
    FaultCampaignConfig cfg = smallConfig();
    cfg.name = "resume_policy";
    cfg.workloads = {"m88ksim"};
    cfg.trialsPerWorkload = 2;
    cfg.journalPath = "test_fault_campaign.policy_foreign.jsonl";
    cfg.params.aPolicy.kind = AStreamPolicyKind::Runahead;

    const FaultCampaignResult fresh = runFaultCampaign(cfg);
    const std::string expected = campaignJson(cfg, fresh);
    std::vector<std::string> lines;
    {
        std::ifstream in(cfg.journalPath);
        std::string line;
        while (std::getline(in, line))
            if (!line.empty())
                lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), fresh.trials.size());

    // Poison trial 0's record: flip its policy tag to `ir` and its
    // outcome to `crashed`. If resume matched it despite the foreign
    // tag, the bogus outcome would land in the report.
    std::string foreign = lines[0];
    const size_t tagAt = foreign.find("\"policy\":\"runahead\"");
    ASSERT_NE(tagAt, std::string::npos);
    foreign.replace(tagAt, std::string("\"policy\":\"runahead\"").size(),
                    "\"policy\":\"ir\"");
    const std::string outKey = "\"outcome\":\"";
    const size_t outAt = foreign.find(outKey);
    ASSERT_NE(outAt, std::string::npos);
    const size_t outEnd = foreign.find('"', outAt + outKey.size());
    foreign.replace(outAt + outKey.size(),
                    outEnd - (outAt + outKey.size()), "crashed");
    // A second poison line with no policy tag at all: legacy journals
    // are only sound for the paper's default (ir) policy, so a
    // runahead resume must re-run this trial too.
    std::string legacy = lines[1];
    const size_t legacyTag = legacy.find(",\"policy\":\"runahead\"");
    ASSERT_NE(legacyTag, std::string::npos);
    legacy.erase(legacyTag,
                 std::string(",\"policy\":\"runahead\"").size());
    {
        std::ofstream out(cfg.journalPath, std::ios::trunc);
        out << foreign << '\n' << legacy << '\n';
    }

    FaultCampaignConfig again = cfg;
    again.resume = true;
    const FaultCampaignResult resumed = runFaultCampaign(again);
    EXPECT_EQ(campaignJson(again, resumed), expected);
    EXPECT_EQ(resumed.total.outcomes(TrialOutcome::Crashed), 0u);
    std::remove(cfg.journalPath.c_str());
}

/**
 * The flip side of the legacy-journal rule: a pre-policy journal line
 * (no `policy` field) IS adopted by an `ir` resume — those journals
 * were written by the default configuration and remain sound for it.
 */
TEST(FaultCampaign, ResumeAdoptsLegacyJournalForDefaultPolicy)
{
    FaultCampaignConfig cfg = smallConfig();
    cfg.name = "resume_policy_legacy";
    cfg.workloads = {"m88ksim"};
    cfg.trialsPerWorkload = 2;
    cfg.journalPath = "test_fault_campaign.policy_legacy.jsonl";

    const FaultCampaignResult fresh = runFaultCampaign(cfg);
    ASSERT_NE(fresh.trials[0].outcome, TrialOutcome::TimedOut);
    std::vector<std::string> lines;
    {
        std::ifstream in(cfg.journalPath);
        std::string line;
        while (std::getline(in, line))
            if (!line.empty())
                lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), fresh.trials.size());

    // Strip the policy tag and tamper the outcome into a terminal
    // timeout: if the legacy line is adopted (it must be), the
    // timeout is restored rather than the trial re-run.
    std::string legacy = lines[0];
    const size_t tagAt = legacy.find(",\"policy\":\"ir\"");
    ASSERT_NE(tagAt, std::string::npos);
    legacy.erase(tagAt, std::string(",\"policy\":\"ir\"").size());
    const std::string outKey = "\"outcome\":\"";
    const size_t outAt = legacy.find(outKey);
    ASSERT_NE(outAt, std::string::npos);
    const size_t outEnd = legacy.find('"', outAt + outKey.size());
    legacy.replace(outAt + outKey.size(),
                   outEnd - (outAt + outKey.size()), "timed_out");
    {
        std::ofstream out(cfg.journalPath, std::ios::trunc);
        out << legacy << '\n';
    }

    FaultCampaignConfig again = cfg;
    again.resume = true;
    const FaultCampaignResult resumed = runFaultCampaign(again);
    ASSERT_EQ(resumed.trials.size(), fresh.trials.size());
    EXPECT_EQ(resumed.trials[0].outcome, TrialOutcome::TimedOut);
    std::remove(cfg.journalPath.c_str());
}

} // namespace
} // namespace slip
