#include <gtest/gtest.h>

#include "assembler/parser.hh"
#include "common/logging.hh"

namespace slip
{
namespace
{

std::vector<Stmt>
parseStr(const std::string &s)
{
    return parse(tokenize(s));
}

TEST(Parser, LabelThenInstructionOnOneLine)
{
    auto stmts = parseStr("loop: addi t0, t0, 1\n");
    ASSERT_EQ(stmts.size(), 2u);
    EXPECT_EQ(stmts[0].kind, Stmt::Kind::Label);
    EXPECT_EQ(stmts[0].name, "loop");
    EXPECT_EQ(stmts[1].kind, Stmt::Kind::Instruction);
    EXPECT_EQ(stmts[1].name, "addi");
    ASSERT_EQ(stmts[1].operands.size(), 3u);
}

TEST(Parser, MultipleLabels)
{
    auto stmts = parseStr("a: b: nop\n");
    ASSERT_EQ(stmts.size(), 3u);
    EXPECT_EQ(stmts[0].name, "a");
    EXPECT_EQ(stmts[1].name, "b");
}

TEST(Parser, RegisterOperands)
{
    auto stmts = parseStr("add a0, t3, s2\n");
    const auto &ops = stmts[0].operands;
    ASSERT_EQ(ops.size(), 3u);
    for (const auto &op : ops)
        EXPECT_EQ(op.kind, Operand::Kind::Reg);
    EXPECT_EQ(ops[1].reg, 17); // t3 = r14+3
}

TEST(Parser, ImmediateAndSymbolExpressions)
{
    auto stmts = parseStr("li t0, -42\nla t1, buf+8\nla t2, buf-4\n");
    EXPECT_EQ(stmts[0].operands[1].kind, Operand::Kind::Imm);
    EXPECT_EQ(stmts[0].operands[1].expr.offset, -42);
    EXPECT_TRUE(stmts[0].operands[1].expr.isLiteral());

    EXPECT_EQ(stmts[1].operands[1].expr.symbol, "buf");
    EXPECT_EQ(stmts[1].operands[1].expr.offset, 8);
    EXPECT_EQ(stmts[2].operands[1].expr.offset, -4);
}

TEST(Parser, MemoryOperands)
{
    auto stmts = parseStr("ld a0, -16(sp)\nsw a1, 0(t0)\n");
    const Operand &mem = stmts[0].operands[1];
    EXPECT_EQ(mem.kind, Operand::Kind::Mem);
    EXPECT_EQ(mem.reg, 2); // sp
    EXPECT_EQ(mem.expr.offset, -16);
}

TEST(Parser, SymbolDisplacementMemOperand)
{
    auto stmts = parseStr("ld a0, tbl(t0)\n");
    const Operand &mem = stmts[0].operands[1];
    EXPECT_EQ(mem.kind, Operand::Kind::Mem);
    EXPECT_EQ(mem.expr.symbol, "tbl");
}

TEST(Parser, DirectivesWithLists)
{
    auto stmts = parseStr(".word 1, 2, 3\n.asciz \"hey\"\n");
    EXPECT_EQ(stmts[0].kind, Stmt::Kind::Directive);
    EXPECT_EQ(stmts[0].name, ".word");
    EXPECT_EQ(stmts[0].operands.size(), 3u);
    EXPECT_EQ(stmts[1].operands[0].kind, Operand::Kind::Str);
    EXPECT_EQ(stmts[1].operands[0].str, "hey");
}

TEST(Parser, NoOperandInstruction)
{
    auto stmts = parseStr("ret\nhalt\n");
    EXPECT_TRUE(stmts[0].operands.empty());
    EXPECT_TRUE(stmts[1].operands.empty());
}

TEST(Parser, LineNumbersAttached)
{
    auto stmts = parseStr("nop\n\nnop\n");
    EXPECT_EQ(stmts[0].line, 1);
    EXPECT_EQ(stmts[1].line, 3);
}

TEST(Parser, GrammarErrorsAreFatal)
{
    EXPECT_THROW(parseStr("add a0 a1\n"), FatalError);     // missing comma
    EXPECT_THROW(parseStr("ld a0, 8(sp\n"), FatalError);   // missing ')'
    EXPECT_THROW(parseStr("ld a0, 8(99)\n"), FatalError);  // not a register
    EXPECT_THROW(parseStr(": nope\n"), FatalError);        // empty label
    EXPECT_THROW(parseStr("add a0, ,\n"), FatalError);     // empty operand
}

} // namespace
} // namespace slip
