/**
 * Stream-level integration tests: the A-stream / delay buffer /
 * R-stream plumbing observed through the SlipstreamProcessor's
 * component accessors while a real program runs.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "func/func_sim.hh"
#include "slipstream/slipstream_processor.hh"

namespace slip
{
namespace
{

const char *kProgram = R"(
.data
arr: .space 512
.text
main:
    la   a0, arr
    li   s0, 0
outer:
    li   t0, 0
inner:
    slli t1, t0, 3
    add  t1, t1, a0
    ld   t2, 0(t1)
    add  t3, t3, t2
    addi t9, zero, 5
    addi t0, t0, 1
    li   t4, 64
    blt  t0, t4, inner
    addi s0, s0, 1
    li   t4, 20
    blt  s0, t4, outer
    putn t3
    halt
)";

TEST(Streams, AStreamLeadsAndRStreamRetiresTheFullProgram)
{
    Program p = assemble(kProgram);
    FuncSim func(p);
    const FuncRunResult golden = func.run();

    SlipstreamProcessor proc(p);
    const SlipstreamRunResult r = proc.run();
    // The R-stream retires exactly the architectural stream.
    EXPECT_EQ(r.rRetired, golden.instCount);
    // The A-stream retires no more than that (it is a subset, modulo
    // the re-execution recoveries force).
    EXPECT_LE(r.aRetired,
              golden.instCount + r.irMispredicts * kMaxTraceLen);
}

TEST(Streams, DelayBufferIsDrainedAtCompletion)
{
    Program p = assemble(kProgram);
    SlipstreamProcessor proc(p);
    proc.run();
    // Everything published was consumed (or flushed at a recovery).
    EXPECT_EQ(proc.delayBuffer().controlEntries() +
                  proc.delayBuffer().dataEntries(),
              0u);
}

TEST(Streams, DelayBufferOccupancyRespectsTable2Caps)
{
    Program p = assemble(kProgram);
    SlipstreamProcessor proc(p);
    proc.run();
    const auto &ctrl = proc.delayBuffer().stats().getDistribution(
        "control_occupancy");
    const auto &data =
        proc.delayBuffer().stats().getDistribution("data_occupancy");
    EXPECT_GT(ctrl.count(), 0u);
    EXPECT_LE(ctrl.max(), 128u);
    EXPECT_LE(data.max(), 256u);
}

TEST(Streams, PacketsFlowInOrder)
{
    Program p = assemble(kProgram);
    SlipstreamProcessor proc(p);
    uint64_t lastPacket = 0;
    bool ordered = true;
    proc.rSource().onPacketRetired =
        [&](const Packet &packet, const std::vector<ExecResult> &) {
            if (packet.num < lastPacket)
                ordered = false;
            lastPacket = packet.num;
        };
    proc.run();
    EXPECT_TRUE(ordered);
    EXPECT_GT(lastPacket, 0u);
}

TEST(Streams, BothContextsProduceIdenticalOutputSpeculatively)
{
    // The A-stream's own (speculative) output should match the
    // R-stream's when no divergence corrupted it.
    Program p = assemble(kProgram);
    SlipstreamProcessor proc(p);
    const SlipstreamRunResult r = proc.run();
    if (r.irMispredicts == 0)
        EXPECT_EQ(proc.aSource().output(), r.output);
}

TEST(Streams, RecoveryLeavesContextsConverged)
{
    // Force divergence with an IR-predictor that removes everything;
    // after the run the A-stream register state must match the
    // R-stream's (both parked at HALT).
    struct RemoveAll : IRPredictor
    {
        using IRPredictor::IRPredictor;
        std::optional<RemovalPlan>
        lookup(const PathHistory &,
               const TraceId &predicted) const override
        {
            RemovalPlan plan;
            plan.irVec = (uint64_t(1) << predicted.length) - 1;
            plan.reasons.assign(predicted.length, reason::kWW);
            return plan;
        }
    };

    Program p = assemble(kProgram);
    SlipstreamParams params;
    SlipstreamProcessor proc(p, params, std::make_unique<RemoveAll>());
    const SlipstreamRunResult r = proc.run();
    EXPECT_TRUE(r.halted);
    EXPECT_GT(r.irMispredicts, 0u);
    FuncSim func(p);
    EXPECT_EQ(r.output, func.run().output);
}

TEST(Streams, WalkedCountTracksRStream)
{
    Program p = assemble(kProgram);
    SlipstreamProcessor proc(p);
    const SlipstreamRunResult r = proc.run();
    // The R-stream walker processed at least every retired slot.
    EXPECT_GE(proc.rSource().walkedCount(), r.rRetired);
}

} // namespace
} // namespace slip
