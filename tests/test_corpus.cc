/**
 * Regression corpus replay: every committed program under
 * tests/corpus/ runs through the three-way differential oracle with
 * invariant checkers enabled and must come back clean. New fuzz
 * findings get their minimized program.s committed here so the
 * divergence they exposed stays fixed.
 *
 * The corpus directory is baked in at compile time
 * (SLIPSTREAM_CORPUS_DIR) so the test binary works from any cwd.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "fuzz/oracle.hh"

namespace slip
{
namespace
{

namespace fs = std::filesystem;

std::vector<std::string>
corpusFiles()
{
    std::vector<std::string> files;
    for (const fs::directory_entry &e :
         fs::directory_iterator(SLIPSTREAM_CORPUS_DIR)) {
        if (e.path().extension() == ".s")
            files.push_back(e.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

TEST(Corpus, DirectoryIsNonEmpty)
{
    EXPECT_FALSE(corpusFiles().empty())
        << "no .s files under " << SLIPSTREAM_CORPUS_DIR;
}

TEST(Corpus, EveryProgramReplaysCleanThroughOracle)
{
    // The forced degraded-leg transition warns on every program.
    setLogQuiet(true);
    for (const std::string &path : corpusFiles()) {
        SCOPED_TRACE(path);
        const Program program = assemble(slurp(path));
        const fuzz::OracleVerdict v = fuzz::runOracle(program);
        EXPECT_FALSE(v.diverged) << v.report;
    }
    setLogQuiet(false);
}

TEST(Corpus, ReplayIsDeterministic)
{
    // Two oracle evaluations of the same program must agree exactly —
    // the property that makes a committed repro a stable regression.
    setLogQuiet(true);
    const std::vector<std::string> files = corpusFiles();
    ASSERT_FALSE(files.empty());
    const Program program = assemble(slurp(files.front()));
    const fuzz::OracleVerdict a = fuzz::runOracle(program);
    const fuzz::OracleVerdict b = fuzz::runOracle(program);
    EXPECT_EQ(a.diverged, b.diverged);
    EXPECT_EQ(a.report, b.report);
    setLogQuiet(false);
}

TEST(Corpus, ReplayIsEngineIndependent)
{
    // The oracle verdict — including its byte-exact report — must not
    // depend on which dispatch engine runs the functional reference
    // leg. $SLIPSTREAM_DISPATCH is re-read per run, so flipping it
    // between evaluations exercises each engine end to end.
    setLogQuiet(true);
    const std::vector<std::string> files = corpusFiles();
    ASSERT_FALSE(files.empty());
    for (const std::string &path : files) {
        SCOPED_TRACE(path);
        const Program program = assemble(slurp(path));

        setenv("SLIPSTREAM_DISPATCH", "legacy", 1);
        const fuzz::OracleVerdict ref = fuzz::runOracle(program);
        for (const char *engine : {"switch", "threaded"}) {
            setenv("SLIPSTREAM_DISPATCH", engine, 1);
            const fuzz::OracleVerdict got = fuzz::runOracle(program);
            EXPECT_EQ(got.diverged, ref.diverged) << engine;
            EXPECT_EQ(got.report, ref.report) << engine;
        }
        unsetenv("SLIPSTREAM_DISPATCH");
    }
    setLogQuiet(false);
}

} // namespace
} // namespace slip
