#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <sstream>
#include <vector>

#include "assembler/assembler.hh"
#include "harness/experiment.hh"
#include "harness/sim_runner.hh"
#include "obs/trace_session.hh"
#include "slipstream/slipstream_processor.hh"

namespace slip
{
namespace
{

using obs::Category;
using obs::EventRing;
using obs::Name;
using obs::Phase;
using obs::TraceConfig;
using obs::TraceEvent;
using obs::TraceSession;
using obs::TrialTrace;

/**
 * Temporarily enable the process-wide session with the given mask
 * (collect-only tests never write files, but TrialTrace only goes
 * live when the session is enabled).
 */
class SessionMask
{
  public:
    explicit SessionMask(uint32_t mask, size_t ringCapacity = 1 << 16)
        : saved_(TraceSession::global().config())
    {
        TraceConfig cfg = saved_;
        cfg.mask = mask;
        cfg.ringCapacity = ringCapacity;
        TraceSession::global().configure(cfg);
    }

    ~SessionMask() { TraceSession::global().configure(saved_); }

  private:
    TraceConfig saved_;
};

TEST(EventRingTest, OverflowDropsOldestAndCounts)
{
    EventRing ring(8);
    for (uint64_t i = 0; i < 11; ++i) {
        TraceEvent e{};
        e.cycle = i;
        ring.push(e);
    }
    EXPECT_EQ(ring.droppedOldest(), 3u);
    const std::vector<TraceEvent> events = ring.drain();
    ASSERT_EQ(events.size(), 8u);
    // The survivors are the *newest* 8, oldest first.
    EXPECT_EQ(events.front().cycle, 3u);
    EXPECT_EQ(events.back().cycle, 10u);
}

TEST(EventRingTest, CapacityRoundsUpToPowerOfTwo)
{
    EventRing ring(9);
    EXPECT_EQ(ring.capacity(), 16u);
}

TEST(ObsTrace, FooterAndHeaderReportDrops)
{
    std::vector<TraceEvent> events;
    TraceEvent e{};
    e.cycle = 42;
    e.category = obs::categoryBit(Category::Recovery);
    events.push_back(e);

    std::ostringstream os;
    obs::writeChromeTrace(os, "t0", events, 5);
    const std::string out = os.str();
    // Overflow is reported twice: machine-readable header and an
    // in-stream footer event — never silent.
    EXPECT_NE(out.find("\"dropped_oldest_events\": 5"),
              std::string::npos);
    EXPECT_NE(out.find("\"trace_footer\""), std::string::npos);
    EXPECT_NE(out.find("\"dropped_oldest\": 5"), std::string::npos);
}

TEST(ObsTrace, CategoryMaskParsing)
{
    EXPECT_EQ(obs::parseCategoryMask(""), 0u);
    EXPECT_EQ(obs::parseCategoryMask("none"), 0u);
    EXPECT_EQ(obs::parseCategoryMask("all"), obs::kAllCategories);
    EXPECT_EQ(obs::parseCategoryMask("recovery"),
              static_cast<uint32_t>(Category::Recovery));
    EXPECT_EQ(obs::parseCategoryMask("recovery,fault"),
              static_cast<uint32_t>(Category::Recovery) |
                  static_cast<uint32_t>(Category::Fault));
    // Unknown names warn and contribute nothing.
    EXPECT_EQ(obs::parseCategoryMask("recovery,bogus"),
              static_cast<uint32_t>(Category::Recovery));
}

// Emission-path tests need the hooks compiled in; a build with
// SLIPSTREAM_DISABLE_TRACING=ON turns every SLIP_TRACE into a no-op.
#ifdef SLIPSTREAM_DISABLE_TRACING
#define SKIP_WITHOUT_TRACING() \
    GTEST_SKIP() << "tracing compiled out (SLIPSTREAM_DISABLE_TRACING)"
#else
#define SKIP_WITHOUT_TRACING() ((void)0)
#endif

TEST(ObsTrace, MaskFiltersEmission)
{
    SKIP_WITHOUT_TRACING();
    SessionMask enable(static_cast<uint32_t>(Category::Recovery));
    TrialTrace scope("mask_filter", /*writeFile=*/false);
    ASSERT_TRUE(scope.active());
    SLIP_TRACE(Category::DelayBuffer, Name::ControlOccupancy,
               Phase::Counter, 1, 0);
    SLIP_TRACE(Category::Recovery, Name::WatchdogTrip, Phase::Instant,
               7, 0);
    // The scope's own TrialSpan frame is always present; of the two
    // SLIP_TRACE sites only the in-mask recovery event survives.
    const std::vector<TraceEvent> events = scope.take();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].name, Name::TrialSpan);
    EXPECT_EQ(events[1].name, Name::WatchdogTrip);
    EXPECT_EQ(events[1].arg0, 7u);
}

TEST(ObsTrace, InertWhenSessionDisabled)
{
    SessionMask enable(0);
    TrialTrace scope("inert", /*writeFile=*/false);
    EXPECT_FALSE(scope.active());
    SLIP_TRACE(Category::Recovery, Name::WatchdogTrip, Phase::Instant,
               1, 0);
    EXPECT_TRUE(scope.take().empty());
}

/** Slipstream material: dead writes and predictable branches. */
const char *kTracedProgram = R"(
.data
arr: .space 800
.text
main:
    la   a0, arr
    li   s0, 0
repeat:
    li   t0, 0
inner:
    slli t2, t0, 3
    add  t2, t2, a0
    ld   t3, 0(t2)
    add  s1, s1, t3
    addi t9, zero, 3    # dead: overwritten next iteration
    addi t0, t0, 1
    li   t4, 100
    blt  t0, t4, inner
    addi s0, s0, 1
    li   t4, 40
    blt  s0, t4, repeat
    putn s1
    halt
)";

std::vector<TraceEvent>
runTracedProgram()
{
    TrialTrace scope("traced_run", /*writeFile=*/false);
    Program p = assemble(kTracedProgram);
    SlipstreamProcessor proc(p);
    proc.run();
    return scope.take();
}

TEST(ObsTrace, SlipstreamRunCoversMultipleCategories)
{
    SKIP_WITHOUT_TRACING();
    SessionMask enable(obs::kAllCategories);
    const std::vector<TraceEvent> events = runTracedProgram();
    ASSERT_FALSE(events.empty());

    std::set<unsigned> categories;
    for (const TraceEvent &e : events)
        categories.insert(e.category);
    // The acceptance bar for exported traces: at least the delay
    // buffer, IR-predictor, recovery, and trial-lifecycle layers.
    EXPECT_GE(categories.size(), 4u);
    EXPECT_TRUE(
        categories.count(obs::categoryBit(Category::DelayBuffer)));
    EXPECT_TRUE(
        categories.count(obs::categoryBit(Category::IRPredictor)));
    EXPECT_TRUE(categories.count(obs::categoryBit(Category::Recovery)));
    EXPECT_TRUE(categories.count(obs::categoryBit(Category::Trial)));

    // Sorted by (cycle, seq): a total order any consumer can rely on.
    for (size_t i = 1; i < events.size(); ++i) {
        EXPECT_TRUE(events[i - 1].cycle < events[i].cycle ||
                    (events[i - 1].cycle == events[i].cycle &&
                     events[i - 1].seq <= events[i].seq))
            << "unsorted at index " << i;
    }
}

std::vector<std::vector<TraceEvent>>
runTrialsWithJobs(unsigned jobs, unsigned trials)
{
    std::vector<std::vector<TraceEvent>> streams(trials);
    SimJobRunner runner(jobs);
    for (unsigned t = 0; t < trials; ++t) {
        runner.add([&streams, t] {
            streams[t] = runTracedProgram();
            return RunMetrics{};
        });
    }
    runner.run();
    return streams;
}

TEST(ObsTrace, EventStreamIdenticalAcrossWorkerCounts)
{
    SessionMask enable(obs::kAllCategories);
    const auto serial = runTrialsWithJobs(1, 4);
    const auto parallel = runTrialsWithJobs(4, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t t = 0; t < serial.size(); ++t) {
        ASSERT_EQ(serial[t].size(), parallel[t].size())
            << "trial " << t;
        ASSERT_FALSE(serial[t].empty()) << "trial " << t;
        // TraceEvent is a packed POD: byte-identical means identical.
        EXPECT_EQ(std::memcmp(serial[t].data(), parallel[t].data(),
                              serial[t].size() * sizeof(TraceEvent)),
                  0)
            << "trial " << t;
    }
}

TEST(ObsTrace, OverflowSurfacesInScopeAndFooter)
{
    SKIP_WITHOUT_TRACING();
    SessionMask enable(static_cast<uint32_t>(Category::Recovery),
                       /*ringCapacity=*/8);
    TrialTrace scope("overflow", /*writeFile=*/false);
    for (uint64_t i = 0; i < 20; ++i) {
        SLIP_TRACE(Category::Recovery, Name::WatchdogTrip,
                   Phase::Instant, i, 0);
    }
    // 21 events hit the 8-slot ring (the scope's TrialSpan frame plus
    // 20 instants): 13 oldest dropped, newest 8 kept.
    EXPECT_EQ(scope.droppedOldest(), 13u);
    const uint64_t dropped = scope.droppedOldest();
    const std::vector<TraceEvent> events = scope.take();
    EXPECT_EQ(events.size(), 8u);
    EXPECT_EQ(events.front().arg0, 12u); // oldest went first

    std::ostringstream os;
    obs::writeChromeTrace(os, "overflow", events, dropped);
    EXPECT_NE(os.str().find("\"dropped_oldest\": 13"),
              std::string::npos);
}

} // namespace
} // namespace slip
