#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "assembler/assembler.hh"
#include "common/stats.hh"
#include "slipstream/slipstream_processor.hh"
#include "workloads/workloads.hh"

namespace slip
{
namespace
{

TEST(Stats, CounterStartsAtZeroAndIncrements)
{
    StatGroup g("g");
    EXPECT_EQ(g.get("c"), 0u);
    ++g.counter("c");
    g.counter("c") += 4;
    EXPECT_EQ(g.get("c"), 5u);
}

TEST(Stats, MissingCounterReadsZero)
{
    StatGroup g("g");
    EXPECT_EQ(g.get("never_created"), 0u);
    EXPECT_FALSE(g.hasCounter("never_created"));
}

TEST(Stats, DistributionTracksMoments)
{
    StatGroup g("g");
    auto &d = g.distribution("lat");
    d.sample(10);
    d.sample(20);
    d.sample(30);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_EQ(d.min(), 10u);
    EXPECT_EQ(d.max(), 30u);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
}

TEST(Stats, EmptyDistribution)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.min(), 0u);
    EXPECT_EQ(d.max(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
}

TEST(Stats, ResetZeroesEverything)
{
    StatGroup g("g");
    g.counter("c") += 7;
    g.distribution("d").sample(3);
    g.reset();
    EXPECT_EQ(g.get("c"), 0u);
    EXPECT_EQ(g.getDistribution("d").count(), 0u);
}

TEST(Stats, DumpIsPrefixedAndSorted)
{
    StatGroup g("core");
    g.counter("b") += 2;
    g.counter("a") += 1;
    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("core.a 1"), std::string::npos);
    EXPECT_NE(out.find("core.b 2"), std::string::npos);
    EXPECT_LT(out.find("core.a"), out.find("core.b"));
}

TEST(Stats, GetMissingDistributionPanics)
{
    StatGroup g("g");
    EXPECT_THROW(g.getDistribution("nope"), PanicError);
}

TEST(Stats, HandleIncrementsTheNamedCounter)
{
    StatGroup g("g");
    StatGroup::Handle h = g.handle("events");
    ASSERT_TRUE(h.bound());
    ++h;
    h += 9;
    EXPECT_EQ(g.get("events"), 10u);
    EXPECT_EQ(h.value(), 10u);
}

TEST(Stats, HandleSurvivesLaterCounterCreation)
{
    // The registry is node-based, so a handle must stay valid while
    // other counters are created around it.
    StatGroup g("g");
    StatGroup::Handle h = g.handle("m");
    for (int i = 0; i < 100; ++i)
        g.counter("other_" + std::to_string(i));
    ++h;
    EXPECT_EQ(g.get("m"), 1u);
}

TEST(Stats, UnboundHandleReadsZero)
{
    StatGroup::Handle h;
    EXPECT_FALSE(h.bound());
    EXPECT_EQ(h.value(), 0u);
}

TEST(Stats, LinkedCounterIsVisibleThroughTheGroup)
{
    StatGroup g("core");
    uint64_t hot = 0;
    g.link("retired", hot);
    hot += 42;
    EXPECT_TRUE(g.hasCounter("retired"));
    EXPECT_EQ(g.get("retired"), 42u);

    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("core.retired 42"), std::string::npos);

    g.reset();
    EXPECT_EQ(hot, 0u);
    EXPECT_EQ(g.get("retired"), 0u);
}

TEST(Stats, LinkedCountersSortWithOwnedOnesInDump)
{
    StatGroup g("core");
    uint64_t a = 1;
    g.counter("b") += 2;
    g.link("a", a);
    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_LT(out.find("core.a 1"), out.find("core.b 2"));
}

TEST(RemovalAccounting, NamesExpandFromMaskTallies)
{
    ReasonCounts c{};
    c[reason::kBR] = 5;
    c[reason::kSV | reason::kBR] = 2;
    c[reason::kProp | reason::kSV] = 3;
    const std::map<std::string, uint64_t> named = reasonCountsByName(c);
    ASSERT_EQ(named.size(), 3u);
    EXPECT_EQ(named.at("BR"), 5u);
    EXPECT_EQ(named.at("SV,BR"), 2u);
    EXPECT_EQ(named.at("P:SV"), 3u);
}

TEST(RemovalAccounting, SlipstreamRunTalliesAreConsistent)
{
    // The mask-indexed accounting (hot path) and the name-keyed map
    // (result view) must describe the same removals.
    const Workload w = getWorkload("m88ksim", WorkloadSize::Test);
    const Program program = assemble(w.source);
    SlipstreamProcessor proc(program, SlipstreamParams{});
    const SlipstreamRunResult r = proc.run();

    ASSERT_TRUE(r.halted);
    EXPECT_GT(r.removedSlots, 0u);

    const uint64_t maskTotal =
        std::accumulate(r.removedByReasonMask.begin(),
                        r.removedByReasonMask.end(), uint64_t(0));
    EXPECT_EQ(maskTotal, r.removedSlots);

    EXPECT_EQ(r.removedByReason,
              reasonCountsByName(r.removedByReasonMask));
    uint64_t nameTotal = 0;
    for (const auto &[name, count] : r.removedByReason)
        nameTotal += count;
    EXPECT_EQ(nameTotal, r.removedSlots);
}

TEST(Histogram, Log2Bucketing)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(~uint64_t(0)), 64u);
    // Bucket bounds tile the value space with no gaps.
    for (unsigned b = 0; b + 1 < Histogram::kBuckets; ++b)
        EXPECT_EQ(Histogram::bucketHi(b) + 1, Histogram::bucketLo(b + 1));
}

TEST(Histogram, SampleTracksMomentsAndBuckets)
{
    Histogram h;
    h.sample(0);
    h.sample(5);
    h.sample(5);
    h.sample(100);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_EQ(h.sum(), 110u);
    EXPECT_EQ(h.bucket(0), 1u);                       // the zero
    EXPECT_EQ(h.bucket(Histogram::bucketOf(5)), 2u);  // the fives
    EXPECT_EQ(h.bucket(Histogram::bucketOf(100)), 1u);
}

TEST(Histogram, AddToBucketReconstructs)
{
    // A journal round-trip: only bucket counts survive; counts (the
    // report's payload) must match exactly.
    Histogram live;
    live.sample(5);
    live.sample(6);
    live.sample(300);

    Histogram rebuilt;
    for (unsigned b = 0; b < Histogram::kBuckets; ++b)
        if (live.bucket(b))
            rebuilt.addToBucket(b, live.bucket(b));
    EXPECT_EQ(rebuilt.count(), live.count());
    for (unsigned b = 0; b < Histogram::kBuckets; ++b)
        EXPECT_EQ(rebuilt.bucket(b), live.bucket(b)) << "bucket " << b;
}

TEST(Histogram, MergeAddsCountsAndWidensRange)
{
    Histogram a, b;
    a.sample(4);
    b.sample(1000);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.min(), 4u);
    EXPECT_EQ(a.max(), 1000u);
    EXPECT_EQ(a.bucket(Histogram::bucketOf(1000)), 1u);
}

TEST(TimeSeries, WindowedAccumulation)
{
    TimeSeries ts(100);
    ts.record(0, 2);
    ts.record(99, 3);   // same window as cycle 0
    ts.record(100, 5);  // next window
    ts.record(350, 7);  // skips a window (window 2 stays zero)
    EXPECT_EQ(ts.windows(), 4u);
    EXPECT_EQ(ts.windowSum(0), 5u);
    EXPECT_EQ(ts.windowSum(1), 5u);
    EXPECT_EQ(ts.windowSum(2), 0u);
    EXPECT_EQ(ts.windowSum(3), 7u);
    EXPECT_EQ(ts.total(), 17u);
    EXPECT_DOUBLE_EQ(ts.meanPerWindow(), 17.0 / 4.0);
}

TEST(Stats, GroupRendersHistogramAndSeries)
{
    StatGroup g("obs");
    g.histogram("lat").sample(5);
    g.histogram("lat").sample(300);
    g.timeSeries("ipc", 100).record(150, 42);

    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("obs.lat.count 2"), std::string::npos);
    EXPECT_NE(out.find("obs.lat.bucket[4-7] 1"), std::string::npos);
    EXPECT_NE(out.find("obs.lat.bucket[256-511] 1"),
              std::string::npos);
    EXPECT_NE(out.find("obs.ipc.window 100"), std::string::npos);
    EXPECT_NE(out.find("obs.ipc.windows 2"), std::string::npos);
    EXPECT_NE(out.find("obs.ipc.total 42"), std::string::npos);

    g.reset();
    EXPECT_EQ(g.getHistogram("lat").count(), 0u);
    EXPECT_EQ(g.getTimeSeries("ipc").windows(), 0u);
}

} // namespace
} // namespace slip
