#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace slip
{
namespace
{

TEST(Stats, CounterStartsAtZeroAndIncrements)
{
    StatGroup g("g");
    EXPECT_EQ(g.get("c"), 0u);
    ++g.counter("c");
    g.counter("c") += 4;
    EXPECT_EQ(g.get("c"), 5u);
}

TEST(Stats, MissingCounterReadsZero)
{
    StatGroup g("g");
    EXPECT_EQ(g.get("never_created"), 0u);
    EXPECT_FALSE(g.hasCounter("never_created"));
}

TEST(Stats, DistributionTracksMoments)
{
    StatGroup g("g");
    auto &d = g.distribution("lat");
    d.sample(10);
    d.sample(20);
    d.sample(30);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_EQ(d.min(), 10u);
    EXPECT_EQ(d.max(), 30u);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
}

TEST(Stats, EmptyDistribution)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.min(), 0u);
    EXPECT_EQ(d.max(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
}

TEST(Stats, ResetZeroesEverything)
{
    StatGroup g("g");
    g.counter("c") += 7;
    g.distribution("d").sample(3);
    g.reset();
    EXPECT_EQ(g.get("c"), 0u);
    EXPECT_EQ(g.getDistribution("d").count(), 0u);
}

TEST(Stats, DumpIsPrefixedAndSorted)
{
    StatGroup g("core");
    g.counter("b") += 2;
    g.counter("a") += 1;
    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("core.a 1"), std::string::npos);
    EXPECT_NE(out.find("core.b 2"), std::string::npos);
    EXPECT_LT(out.find("core.a"), out.find("core.b"));
}

TEST(Stats, GetMissingDistributionPanics)
{
    StatGroup g("g");
    EXPECT_THROW(g.getDistribution("nope"), PanicError);
}

} // namespace
} // namespace slip
