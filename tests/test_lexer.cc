#include <gtest/gtest.h>

#include "assembler/lexer.hh"
#include "common/logging.hh"

namespace slip
{
namespace
{

std::vector<Token>
lex(const std::string &s)
{
    return tokenize(s);
}

TEST(Lexer, IdentifiersAndPunctuation)
{
    auto t = lex("add a0, a1, a2\n");
    ASSERT_EQ(t.size(), 7u);
    EXPECT_EQ(t[0].kind, TokKind::Identifier);
    EXPECT_EQ(t[0].text, "add");
    EXPECT_EQ(t[1].text, "a0");
    EXPECT_EQ(t[2].kind, TokKind::Comma);
    EXPECT_EQ(t[6].kind, TokKind::EndOfLine);
}

TEST(Lexer, DecimalHexAndCharLiterals)
{
    auto t = lex("42 0x2a '*' '\\n'\n");
    ASSERT_GE(t.size(), 4u);
    EXPECT_EQ(t[0].value, 42);
    EXPECT_EQ(t[1].value, 42);
    EXPECT_EQ(t[2].value, int64_t('*'));
    EXPECT_EQ(t[3].value, int64_t('\n'));
}

TEST(Lexer, NegativeNumbersLexAsMinusThenInteger)
{
    auto t = lex("-5\n");
    EXPECT_EQ(t[0].kind, TokKind::Minus);
    EXPECT_EQ(t[1].kind, TokKind::Integer);
    EXPECT_EQ(t[1].value, 5);
}

TEST(Lexer, StringsWithEscapes)
{
    auto t = lex(".asciz \"hi\\n\\t\\\"q\\\"\"\n");
    ASSERT_GE(t.size(), 2u);
    EXPECT_EQ(t[1].kind, TokKind::String);
    EXPECT_EQ(t[1].text, "hi\n\t\"q\"");
}

TEST(Lexer, CommentsRunToEndOfLine)
{
    auto t = lex("add # this, is, a comment\nsub ; semicolon too\n");
    // add EOL sub EOL
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0].text, "add");
    EXPECT_EQ(t[2].text, "sub");
}

TEST(Lexer, LineNumbersAdvance)
{
    auto t = lex("a\nb\n\nc\n");
    EXPECT_EQ(t[0].line, 1);
    EXPECT_EQ(t[2].line, 2);
    EXPECT_EQ(t.back().line, 4);
}

TEST(Lexer, DirectivesLexAsIdentifiers)
{
    auto t = lex(".data\n");
    EXPECT_EQ(t[0].kind, TokKind::Identifier);
    EXPECT_EQ(t[0].text, ".data");
}

TEST(Lexer, MemOperandPunctuation)
{
    auto t = lex("ld a0, 8(sp)\n");
    // ld a0 , 8 ( sp ) EOL
    ASSERT_EQ(t.size(), 8u);
    EXPECT_EQ(t[4].kind, TokKind::LParen);
    EXPECT_EQ(t[6].kind, TokKind::RParen);
}

TEST(Lexer, FinalLineWithoutNewlineGetsEol)
{
    auto t = lex("halt");
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[1].kind, TokKind::EndOfLine);
}

TEST(Lexer, MalformedLiteralsAreFatal)
{
    EXPECT_THROW(lex("0x\n"), FatalError);
    EXPECT_THROW(lex("'a\n"), FatalError);
    EXPECT_THROW(lex("\"unterminated\n"), FatalError);
    EXPECT_THROW(lex("$\n"), FatalError);
}

} // namespace
} // namespace slip
