#include <gtest/gtest.h>

#include "common/logging.hh"
#include "mem/cache.hh"

namespace slip
{
namespace
{

CacheParams
tiny()
{
    // 4 sets x 2 ways x 64B lines = 512B.
    CacheParams p;
    p.name = "tiny";
    p.sizeBytes = 512;
    p.assoc = 2;
    p.lineBytes = 64;
    p.hitLatency = 1;
    p.missPenalty = 10;
    return p;
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(tiny());
    EXPECT_EQ(c.access(0x0), 11u); // miss
    EXPECT_EQ(c.access(0x0), 1u);  // hit
    EXPECT_EQ(c.access(0x3f), 1u); // same line
    EXPECT_EQ(c.access(0x40), 11u); // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, AssociativityHoldsConflictingLines)
{
    Cache c(tiny());
    // Two addresses mapping to set 0: line stride = 64 * 4 sets = 256.
    c.access(0);
    c.access(256);
    EXPECT_EQ(c.access(0), 1u);
    EXPECT_EQ(c.access(256), 1u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(tiny());
    c.access(0);    // set 0, way A
    c.access(256);  // set 0, way B
    c.access(0);    // touch A: B is now LRU
    c.access(512);  // evicts B
    EXPECT_EQ(c.access(0), 1u);    // A still resident
    EXPECT_EQ(c.access(512), 1u);  // new line resident
    EXPECT_EQ(c.access(256), 11u); // B was evicted
}

TEST(Cache, ContainsDoesNotPerturbState)
{
    Cache c(tiny());
    c.access(0);
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(32)); // same line
    EXPECT_FALSE(c.contains(64));
    EXPECT_EQ(c.hits() + c.misses(), 1u); // contains not counted
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c(tiny());
    c.access(0);
    c.flush();
    EXPECT_FALSE(c.contains(0));
    EXPECT_EQ(c.access(0), 11u);
}

TEST(Cache, DistinctSetsDoNotConflict)
{
    Cache c(tiny());
    for (Addr a = 0; a < 4 * 64; a += 64)
        c.access(a);
    for (Addr a = 0; a < 4 * 64; a += 64)
        EXPECT_EQ(c.access(a), 1u) << "addr " << a;
}

TEST(Cache, PaperGeometryIsLegal)
{
    // Table 2: 64kB 4-way I-cache and D-cache.
    CacheParams icache{"i", 64 * 1024, 4, 64, 1, 12};
    CacheParams dcache{"d", 64 * 1024, 4, 64, 2, 14};
    EXPECT_NO_THROW(Cache a(icache));
    EXPECT_NO_THROW(Cache b(dcache));
}

TEST(Cache, BadGeometryIsFatal)
{
    CacheParams p = tiny();
    p.lineBytes = 48; // not a power of two
    EXPECT_THROW(Cache c(p), FatalError);

    CacheParams q = tiny();
    q.assoc = 0;
    EXPECT_THROW(Cache c(q), FatalError);

    CacheParams r = tiny();
    r.sizeBytes = 384; // 6 lines, assoc 2 -> 3 sets (not pow2)
    EXPECT_THROW(Cache c(r), FatalError);
}

} // namespace
} // namespace slip
