#include <gtest/gtest.h>

#include "isa/isa.hh"
#include "isa/regnames.hh"

namespace slip
{
namespace
{

TEST(Isa, OpInfoTableIsComplete)
{
    for (unsigned i = 0; i < unsigned(Opcode::NumOpcodes); ++i) {
        const OpInfo &info = opInfo(static_cast<Opcode>(i));
        EXPECT_NE(info.mnemonic, nullptr);
        EXPECT_GT(std::string(info.mnemonic).size(), 0u);
    }
}

TEST(Isa, ClassPredicates)
{
    StaticInst ld{Opcode::LD, 1, 2, 0, 8};
    EXPECT_TRUE(ld.isLoad());
    EXPECT_FALSE(ld.isStore());
    EXPECT_EQ(ld.memBytes(), 8u);

    StaticInst sw{Opcode::SW, 0, 2, 3, 4};
    EXPECT_TRUE(sw.isStore());
    EXPECT_EQ(sw.memBytes(), 4u);

    StaticInst beq{Opcode::BEQ, 0, 1, 2, -4};
    EXPECT_TRUE(beq.isCondBranch());
    EXPECT_TRUE(beq.isControl());
    EXPECT_FALSE(beq.isJump());

    StaticInst jal{Opcode::JAL, reg::ra, 0, 0, 10};
    EXPECT_TRUE(jal.isJump());
    EXPECT_FALSE(jal.isIndirectJump());
    EXPECT_TRUE(jal.isControl());

    StaticInst jalr{Opcode::JALR, 0, reg::ra, 0, 0};
    EXPECT_TRUE(jalr.isIndirectJump());

    StaticInst halt{Opcode::HALT, 0, 0, 0, 0};
    EXPECT_TRUE(halt.isHalt());
    EXPECT_TRUE(halt.isSyscall());

    StaticInst putc{Opcode::PUTC, 0, 5, 0, 0};
    EXPECT_TRUE(putc.isOutput());
}

TEST(Isa, DestRegOfAluOps)
{
    StaticInst add{Opcode::ADD, 7, 1, 2, 0};
    EXPECT_EQ(add.destReg(), 7);

    // Writes to r0 are architectural no-ops: no destination.
    StaticInst addZero{Opcode::ADD, 0, 1, 2, 0};
    EXPECT_EQ(addZero.destReg(), kNoReg);
}

TEST(Isa, DestRegOfNonWriters)
{
    StaticInst sw{Opcode::SW, 0, 2, 3, 0};
    EXPECT_EQ(sw.destReg(), kNoReg);
    StaticInst beq{Opcode::BEQ, 0, 1, 2, 4};
    EXPECT_EQ(beq.destReg(), kNoReg);
    StaticInst halt{Opcode::HALT, 0, 0, 0, 0};
    EXPECT_EQ(halt.destReg(), kNoReg);
    StaticInst putn{Opcode::PUTN, 0, 4, 0, 0};
    EXPECT_EQ(putn.destReg(), kNoReg);
}

TEST(Isa, JumpsWriteLinkRegister)
{
    StaticInst jal{Opcode::JAL, reg::ra, 0, 0, 5};
    EXPECT_EQ(jal.destReg(), reg::ra);
    StaticInst j{Opcode::JAL, reg::zero, 0, 0, 5};
    EXPECT_EQ(j.destReg(), kNoReg);
}

TEST(Isa, SrcRegsByFormat)
{
    RegIndex srcs[2];

    StaticInst add{Opcode::ADD, 3, 1, 2, 0};
    add.srcRegs(srcs);
    EXPECT_EQ(srcs[0], 1);
    EXPECT_EQ(srcs[1], 2);

    StaticInst addi{Opcode::ADDI, 3, 1, 0, 5};
    addi.srcRegs(srcs);
    EXPECT_EQ(srcs[0], 1);
    EXPECT_EQ(srcs[1], kNoReg);

    StaticInst sd{Opcode::SD, 0, 2, 9, 0}; // mem[r2+0] = r9
    sd.srcRegs(srcs);
    EXPECT_EQ(srcs[0], 2);
    EXPECT_EQ(srcs[1], 9);

    StaticInst lui{Opcode::LUI, 3, 0, 0, 100};
    lui.srcRegs(srcs);
    EXPECT_EQ(srcs[0], kNoReg);
    EXPECT_EQ(srcs[1], kNoReg);

    StaticInst putc{Opcode::PUTC, 0, 6, 0, 0};
    putc.srcRegs(srcs);
    EXPECT_EQ(srcs[0], 6);
}

TEST(Isa, OpClassLatencyBuckets)
{
    EXPECT_EQ(StaticInst{Opcode::MUL}.opClass(), OpClass::IntMult);
    EXPECT_EQ(StaticInst{Opcode::DIV}.opClass(), OpClass::IntDiv);
    EXPECT_EQ(StaticInst{Opcode::REMU}.opClass(), OpClass::IntDiv);
    EXPECT_EQ(StaticInst{Opcode::ADD}.opClass(), OpClass::IntAlu);
    EXPECT_EQ(StaticInst{Opcode::LW}.opClass(), OpClass::Load);
    EXPECT_EQ(StaticInst{Opcode::SB}.opClass(), OpClass::Store);
}

TEST(Isa, LoadSignednessAndWidths)
{
    EXPECT_TRUE(opInfo(Opcode::LB).loadSigned);
    EXPECT_FALSE(opInfo(Opcode::LBU).loadSigned);
    EXPECT_TRUE(opInfo(Opcode::LW).loadSigned);
    EXPECT_FALSE(opInfo(Opcode::LWU).loadSigned);
    EXPECT_EQ(opInfo(Opcode::LH).memBytes, 2);
    EXPECT_EQ(opInfo(Opcode::SD).memBytes, 8);
}

} // namespace
} // namespace slip
