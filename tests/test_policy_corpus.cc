/**
 * Per-policy differential-fuzz coverage: every committed program under
 * tests/corpus/ replays clean through the three-way oracle under each
 * A-stream shortening policy, and the replay verdict is deterministic
 * per policy. A policy that corrupted architectural state — by
 * stripping a value the R-stream then trusted, or by mis-counting a
 * packet's surviving data entries — diverges here first.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "fuzz/oracle.hh"
#include "slipstream/a_stream_policy.hh"

namespace slip
{
namespace
{

namespace fs = std::filesystem;

std::vector<std::string>
corpusFiles()
{
    std::vector<std::string> files;
    for (const fs::directory_entry &e :
         fs::directory_iterator(SLIPSTREAM_CORPUS_DIR)) {
        if (e.path().extension() == ".s")
            files.push_back(e.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

fuzz::OracleOptions
optionsFor(AStreamPolicyKind kind)
{
    fuzz::OracleOptions opt;
    opt.params.aPolicy.kind = kind;
    return opt;
}

TEST(PolicyCorpus, EveryProgramReplaysCleanUnderEveryPolicy)
{
    // The forced degraded-leg transition warns on every program.
    setLogQuiet(true);
    const std::vector<std::string> files = corpusFiles();
    ASSERT_FALSE(files.empty())
        << "no .s files under " << SLIPSTREAM_CORPUS_DIR;
    for (const std::string &path : files) {
        const Program program = assemble(slurp(path));
        for (unsigned i = 0; i < kNumAStreamPolicies; ++i) {
            const AStreamPolicyKind kind = AStreamPolicyKind(i);
            SCOPED_TRACE(path + " policy=" + aStreamPolicyName(kind));
            const fuzz::OracleVerdict v =
                fuzz::runOracle(program, optionsFor(kind));
            EXPECT_FALSE(v.diverged) << v.report;
        }
    }
    setLogQuiet(false);
}

TEST(PolicyCorpus, ReplayIsDeterministicPerPolicy)
{
    setLogQuiet(true);
    const std::vector<std::string> files = corpusFiles();
    ASSERT_FALSE(files.empty());
    const Program program = assemble(slurp(files.front()));
    for (unsigned i = 0; i < kNumAStreamPolicies; ++i) {
        const AStreamPolicyKind kind = AStreamPolicyKind(i);
        SCOPED_TRACE(aStreamPolicyName(kind));
        const fuzz::OracleVerdict a =
            fuzz::runOracle(program, optionsFor(kind));
        const fuzz::OracleVerdict b =
            fuzz::runOracle(program, optionsFor(kind));
        EXPECT_EQ(a.diverged, b.diverged);
        EXPECT_EQ(a.report, b.report);
    }
    setLogQuiet(false);
}

} // namespace
} // namespace slip
