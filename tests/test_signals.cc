/**
 * Graceful-interruption contract of the slip_campaign binary: SIGINT
 * exits 130 and SIGTERM (what supervisors and CI runners send) exits
 * 143 — both after printing the resume hint — so a killed campaign is
 * distinguishable from a failed one and restartable with --resume.
 * Spawns the real binary (path injected by CMake) and signals it
 * mid-campaign.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

namespace
{

namespace fs = std::filesystem;

struct CampaignRun
{
    int exitCode = -1;
    bool signaled = false; // died OF the signal instead of handling it
    std::string stderrText;
};

/**
 * Start slip_campaign on a long campaign, wait until it has journaled
 * at least one trial (the handler is installed before the first
 * trial runs), send `sig`, and reap it.
 */
CampaignRun
interruptCampaign(int sig, const std::string &scratch)
{
    CampaignRun run;
    const std::string journal = scratch + "/journal.jsonl";
    const std::string errPath = scratch + "/stderr.txt";

    const pid_t pid = fork();
    if (pid == 0) {
        const int errFd =
            open(errPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        dup2(errFd, STDERR_FILENO);
        const int nullFd = open("/dev/null", O_WRONLY);
        dup2(nullFd, STDOUT_FILENO);
        // Enough trials that the campaign is still running when the
        // signal lands (a test-size trial is milliseconds; 512 of
        // them is seconds).
        execl(SLIP_CAMPAIGN_BIN, "slip_campaign", "--size", "test",
              "--trials", "512", "--workloads", "compress", "--workers",
              "1", "--journal", journal.c_str(), "--quarantine",
              (scratch + "/quarantine").c_str(), (char *)nullptr);
        _exit(127);
    }
    EXPECT_GT(pid, 0);

    // Wait for evidence the campaign (and thus the handler) is live.
    bool journaled = false;
    for (int spin = 0; spin < 2000; ++spin) {
        struct stat st{};
        if (stat(journal.c_str(), &st) == 0 && st.st_size > 0) {
            journaled = true;
            break;
        }
        int status = 0;
        if (waitpid(pid, &status, WNOHANG) == pid) {
            // Died before journaling anything — report and bail.
            run.exitCode =
                WIFEXITED(status) ? WEXITSTATUS(status) : -1;
            std::ifstream in(errPath);
            std::ostringstream buf;
            buf << in.rdbuf();
            run.stderrText = buf.str();
            return run;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(journaled) << "campaign never journaled a trial";

    kill(pid, sig);
    int status = 0;
    EXPECT_EQ(waitpid(pid, &status, 0), pid);
    run.signaled = WIFSIGNALED(status);
    run.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;

    std::ifstream in(errPath);
    std::ostringstream buf;
    buf << in.rdbuf();
    run.stderrText = buf.str();
    return run;
}

struct ScratchDir
{
    ScratchDir()
    {
        char tmpl[] = "/tmp/slip_signal_test.XXXXXX";
        path = mkdtemp(tmpl) ? tmpl : "";
        EXPECT_FALSE(path.empty());
    }
    ~ScratchDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string path;
};

TEST(CampaignSignals, SigintExits130WithResumeHint)
{
    ScratchDir dir;
    const CampaignRun run = interruptCampaign(SIGINT, dir.path);
    EXPECT_FALSE(run.signaled) << "SIGINT killed the process instead "
                                  "of being handled";
    EXPECT_EQ(run.exitCode, 130) << run.stderrText;
    EXPECT_NE(run.stderrText.find("--resume"), std::string::npos)
        << run.stderrText;
}

TEST(CampaignSignals, SigtermExits143WithResumeHint)
{
    ScratchDir dir;
    const CampaignRun run = interruptCampaign(SIGTERM, dir.path);
    EXPECT_FALSE(run.signaled) << "SIGTERM killed the process instead "
                                  "of being handled";
    EXPECT_EQ(run.exitCode, 143) << run.stderrText;
    EXPECT_NE(run.stderrText.find("--resume"), std::string::npos)
        << run.stderrText;
}

} // namespace
