#include <gtest/gtest.h>

#include "uarch/trace_pred.hh"

namespace slip
{
namespace
{

TraceId
traceAt(Addr pc, uint8_t len = 8)
{
    return TraceId{pc, 0, 0, len};
}

TEST(PathHistory, PushShiftsAndRepairReplacesLast)
{
    PathHistory h;
    const uint64_t empty = h.correlatedHash();
    h.push(traceAt(0x1000));
    EXPECT_NE(h.correlatedHash(), empty);

    PathHistory h2;
    h2.push(traceAt(0x2000));
    h2.repairLast(traceAt(0x1000));
    EXPECT_EQ(h2.simpleHash(), [&] {
        PathHistory h3;
        h3.push(traceAt(0x1000));
        return h3.simpleHash();
    }());
}

TEST(PathHistory, CopyFrom)
{
    PathHistory a, b;
    a.push(traceAt(0x1000));
    a.push(traceAt(0x2000));
    b.copyFrom(a);
    EXPECT_EQ(a.correlatedHash(), b.correlatedHash());
}

TEST(TracePredictor, ColdPredictorReturnsNothing)
{
    TracePredictor pred;
    PathHistory h;
    EXPECT_FALSE(pred.predict(h).has_value());
}

TEST(TracePredictor, LearnsASequence)
{
    TracePredictor pred;
    const TraceId a = traceAt(0x1000);
    const TraceId b = traceAt(0x2000);

    PathHistory h;
    // Teach: after [.. a] comes b; after [.. b] comes a.
    for (int i = 0; i < 4; ++i) {
        pred.update(h, a);
        h.push(a);
        pred.update(h, b);
        h.push(b);
    }
    auto got = pred.predict(h); // history ends with b
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, a);
    h.push(a);
    got = pred.predict(h);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, b);
}

TEST(TracePredictor, CorrelatedBeatsSimpleOnContext)
{
    // Sequence: a x a y a x a y ... — the trace after `a` depends on
    // deeper history, which only the correlated table can capture.
    TracePredictor pred;
    const TraceId a = traceAt(0xa000);
    const TraceId x = traceAt(0xb000);
    const TraceId y = traceAt(0xc000);

    PathHistory h;
    const TraceId pattern[] = {a, x, a, y};
    for (int round = 0; round < 64; ++round) {
        for (const TraceId &next : pattern) {
            pred.update(h, next);
            h.push(next);
        }
    }
    // After ... y a the next is x; after ... x a the next is y.
    int correct = 0, total = 0;
    for (const TraceId &next : pattern) {
        auto got = pred.predict(h);
        correct += got && *got == next;
        ++total;
        pred.update(h, next);
        h.push(next);
    }
    EXPECT_EQ(correct, total);
}

TEST(TracePredictor, CounterDecaysBeforeReplacement)
{
    TracePredictor pred;
    PathHistory h;
    const TraceId a = traceAt(0x1000);
    const TraceId b = traceAt(0x2000);

    // Build confidence in `a` for the empty history.
    for (int i = 0; i < 4; ++i)
        pred.update(h, a);
    // One conflicting update must not displace it.
    pred.update(h, b);
    auto got = pred.predict(h);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, a);
    // Enough conflicts eventually displace.
    for (int i = 0; i < 8; ++i)
        pred.update(h, b);
    got = pred.predict(h);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, b);
}

TEST(TracePredictor, StatsCountPredictions)
{
    TracePredictor pred;
    PathHistory h;
    pred.predict(h);
    EXPECT_EQ(pred.stats().get("predict_none"), 1u);
    pred.update(h, traceAt(0x1000));
    pred.predict(h);
    EXPECT_GE(pred.stats().get("predict_simple") +
                  pred.stats().get("predict_correlated") +
                  pred.stats().get("predict_correlated_weak"),
              1u);
}

} // namespace
} // namespace slip
