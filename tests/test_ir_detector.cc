#include <gtest/gtest.h>

#include <vector>

#include "slipstream/ir_detector.hh"

namespace slip
{
namespace
{

/** Builds packets of hand-crafted retired instructions. */
class PacketBuilder
{
  public:
    explicit PacketBuilder(uint64_t num)
    {
        packet.num = num;
        packet.actualId.startPc = 0x1000 + num * 0x100;
    }

    /** rd = rs1 op rs2 producing `value`. */
    PacketBuilder &
    alu(RegIndex rd, Word value, RegIndex rs1 = 0, RegIndex rs2 = 0)
    {
        StaticInst si{Opcode::ADD, rd, rs1, rs2, 0};
        ExecResult r;
        r.wroteReg = rd != kZeroReg;
        r.destReg = rd;
        r.destValue = value;
        push(si, r);
        return *this;
    }

    PacketBuilder &
    store(Addr addr, Word value, RegIndex addrReg = 1,
          RegIndex dataReg = 2)
    {
        StaticInst si{Opcode::SD, 0, addrReg, dataReg, 0};
        ExecResult r;
        r.isMem = true;
        r.memAddr = addr;
        r.memBytes = 8;
        r.storeValue = value;
        push(si, r);
        return *this;
    }

    PacketBuilder &
    load(RegIndex rd, Addr addr, Word value, RegIndex addrReg = 1)
    {
        StaticInst si{Opcode::LD, rd, addrReg, 0, 0};
        ExecResult r;
        r.isMem = true;
        r.memAddr = addr;
        r.memBytes = 8;
        r.wroteReg = true;
        r.destReg = rd;
        r.destValue = value;
        r.loadedValue = value;
        push(si, r);
        return *this;
    }

    PacketBuilder &
    branch(bool taken, RegIndex rs1 = 3, RegIndex rs2 = 0)
    {
        StaticInst si{Opcode::BNE, 0, rs1, rs2, 4};
        ExecResult r;
        r.isControl = true;
        r.taken = taken;
        push(si, r);
        return *this;
    }

    PacketBuilder &
    halt()
    {
        push({Opcode::HALT, 0, 0, 0, 0}, ExecResult{});
        return *this;
    }

    PacketBuilder &
    predictedIrVec(uint64_t vec)
    {
        packet.predictedIrVec = vec;
        return *this;
    }

    RetiredTrace
    trace()
    {
        return RetiredTrace{&packet, &rExec, &history};
    }

    Packet packet;
    std::vector<ExecResult> rExec;
    PathHistory history;

  private:
    void
    push(const StaticInst &si, const ExecResult &r)
    {
        PacketSlot slot;
        slot.pc = 0x1000 + packet.slots.size() * 4;
        slot.si = si;
        slot.executedInA = true;
        slot.aExec = r;
        packet.slots.push_back(slot);
        rExec.push_back(r);
        ++packet.actualId.length;
    }
};

struct DetectorHarness
{
    explicit DetectorHarness(IRDetectorParams params = {})
        : irPred(lowThresholdParams()), detector(params, irPred)
    {
        detector.onIRMispredict = [this](uint64_t num) {
            mispredicts.push_back(num);
        };
        detector.onTraceVerified = [this](uint64_t num) {
            verified.push_back(num);
        };
    }

    static IRPredictorParams
    lowThresholdParams()
    {
        IRPredictorParams p;
        p.confidenceThreshold = 1;
        return p;
    }

    /** Drain and return the detector-computed plan for a packet. */
    RemovalPlan
    planFor(PacketBuilder &pb)
    {
        RemovalPlan out;
        // Probe the predictor after draining: two updates of the same
        // trace reach threshold 1.
        detector.processTrace(pb.trace());
        detector.drain();
        auto got = irPred.lookup(pb.history, pb.packet.actualId);
        if (got)
            out = *got;
        return out;
    }

    IRPredictor irPred;
    IRDetector detector;
    std::vector<uint64_t> mispredicts;
    std::vector<uint64_t> verified;
};

TEST(IRDetector, BranchesSelected)
{
    DetectorHarness h;
    PacketBuilder pb(0);
    pb.alu(5, 10).branch(true);
    h.detector.processTrace(pb.trace());
    h.detector.drain();
    EXPECT_EQ(h.detector.stats().get("trigger_br"), 1u);
}

TEST(IRDetector, NonModifyingWriteSelectedWithSV)
{
    DetectorHarness h;
    PacketBuilder pb(0);
    pb.alu(5, 100, 1, 2)  // slot 0: r5 = 100
        .alu(5, 100, 3, 4); // slot 1: r5 = 100 again -> SV
    // First pass: slot 1 is non-modifying. In steady state (the trace
    // repeating with the ORT already holding 100) slot 0 becomes
    // non-modifying too, so the stable ir-vec selects both; run three
    // passes so the steady-state pair clears threshold 1.
    for (uint64_t n = 0; n < 3; ++n) {
        PacketBuilder copy(n);
        copy.packet.actualId = pb.packet.actualId;
        copy.packet.slots = pb.packet.slots;
        copy.rExec = pb.rExec;
        h.detector.processTrace(copy.trace());
        h.detector.drain();
    }
    EXPECT_GE(h.detector.stats().get("trigger_sv"), 3u);

    auto plan = h.irPred.lookup(pb.history, pb.packet.actualId);
    ASSERT_TRUE(plan.has_value());
    EXPECT_TRUE(plan->removes(0));
    EXPECT_TRUE(plan->removes(1));
    EXPECT_EQ(plan->reasonAt(1) & reason::kSV, reason::kSV);
}

TEST(IRDetector, UnreferencedWriteSelectedWithWW)
{
    DetectorHarness h;
    PacketBuilder pb(0);
    pb.alu(5, 100) // slot 0: never read
        .alu(5, 200); // slot 1: overwrites -> slot 0 is WW
    h.detector.processTrace(pb.trace());
    h.detector.drain();
    EXPECT_EQ(h.detector.stats().get("trigger_ww"), 1u);
}

TEST(IRDetector, ReferencedWriteNotWW)
{
    DetectorHarness h;
    PacketBuilder pb(0);
    pb.alu(5, 100)      // slot 0
        .alu(6, 7, 5, 0)  // slot 1 reads r5
        .alu(5, 200);     // slot 2 kills slot 0 (referenced)
    h.detector.processTrace(pb.trace());
    h.detector.drain();
    EXPECT_EQ(h.detector.stats().get("trigger_ww"), 0u);
}

TEST(IRDetector, BackPropagationThroughBranchChain)
{
    // r5 = ... (slot 0) feeds only the branch (slot 1); when killed in
    // the same trace (slot 2), the producer inherits P:BR.
    DetectorHarness h;
    PacketBuilder pb(0);
    pb.alu(5, 1)          // slot 0: produces r5
        .branch(true, 5)    // slot 1: reads r5, BR-selected
        .alu(5, 9);         // slot 2: kills slot 0
    h.detector.processTrace(pb.trace());
    h.detector.drain();
    PacketBuilder pb2(1);
    pb2.packet.actualId = pb.packet.actualId;
    pb2.packet.slots = pb.packet.slots;
    pb2.rExec = pb.rExec;
    h.detector.processTrace(pb2.trace());
    h.detector.drain();

    auto plan = h.irPred.lookup(pb.history, pb.packet.actualId);
    ASSERT_TRUE(plan.has_value());
    EXPECT_TRUE(plan->removes(0));
    EXPECT_TRUE(plan->removes(1));
    EXPECT_EQ(plan->reasonAt(0),
              uint8_t(reason::kProp | reason::kBR));
    // Slot 2's write is live (not killed): not removed.
    EXPECT_FALSE(plan->removes(2));
}

TEST(IRDetector, CrossTraceConsumerPinsProducer)
{
    DetectorHarness h;
    PacketBuilder pb0(0);
    pb0.alu(5, 1); // producer in trace 0
    h.detector.processTrace(pb0.trace());

    PacketBuilder pb1(1);
    pb1.branch(true, 5) // trace 1 consumes r5 from trace 0
        .alu(5, 2);       // and kills it
    h.detector.processTrace(pb1.trace());
    h.detector.drain();

    // The producer was referenced across traces: kill must not
    // select it (back-propagation confined to a trace).
    EXPECT_EQ(h.detector.stats().get("trigger_ww"), 0u);
}

TEST(IRDetector, ScopeEvictionFinalizesOldest)
{
    IRDetectorParams params;
    params.scopeTraces = 2;
    DetectorHarness h(params);
    for (uint64_t i = 0; i < 3; ++i) {
        PacketBuilder pb(i);
        pb.alu(5, Word(i)).branch(true);
        h.detector.processTrace(pb.trace());
    }
    // 3 traces, scope 2: exactly one finalized so far.
    EXPECT_EQ(h.irPred.stats().get("updates"), 1u);
    h.detector.drain();
    EXPECT_EQ(h.irPred.stats().get("updates"), 3u);
}

TEST(IRDetector, PredictedRemovalConfirmedVerifiesTrace)
{
    DetectorHarness h;
    PacketBuilder pb(7);
    pb.branch(true).predictedIrVec(0b1); // branch removed: confirmable
    h.detector.processTrace(pb.trace());
    h.detector.drain();
    EXPECT_EQ(h.verified.size(), 1u);
    EXPECT_EQ(h.verified[0], 7u);
    EXPECT_TRUE(h.mispredicts.empty());
}

TEST(IRDetector, UnconfirmableStoreRemovalIsIRMispredict)
{
    DetectorHarness h;
    PacketBuilder pb(9);
    // A live (value-producing, never-confirmed) store was removed:
    // the A-stream may have skipped an effectual store.
    pb.store(0x2000, 7).predictedIrVec(0b1);
    h.detector.processTrace(pb.trace());
    h.detector.drain();
    ASSERT_EQ(h.mispredicts.size(), 1u);
    EXPECT_EQ(h.mispredicts[0], 9u);
    EXPECT_TRUE(h.verified.empty());
    EXPECT_EQ(h.detector.stats().get("irvec_mispredicts"), 1u);
}

TEST(IRDetector, UnconfirmableRegisterRemovalIsBenign)
{
    // A removed register write the detector cannot confirm (e.g. the
    // final iteration of a loop whose killing write never arrives) is
    // not a corruption signal: stale-register misuse surfaces as an
    // R-stream value mismatch and the register file is copied whole
    // on recovery. No recovery is requested; the entry's confidence
    // still resets through the normal update path.
    DetectorHarness h;
    PacketBuilder pb(11);
    pb.alu(5, 1).predictedIrVec(0b1);
    h.detector.processTrace(pb.trace());
    h.detector.drain();
    EXPECT_TRUE(h.mispredicts.empty());
    ASSERT_EQ(h.verified.size(), 1u);
    EXPECT_EQ(h.verified[0], 11u);
}

TEST(IRDetector, RemoveWritesKnob)
{
    IRDetectorParams params;
    params.removeWrites = false;
    DetectorHarness h(params);
    PacketBuilder pb(0);
    pb.alu(5, 100).alu(5, 100).alu(5, 200);
    h.detector.processTrace(pb.trace());
    h.detector.drain();
    EXPECT_EQ(h.detector.stats().get("trigger_sv"), 0u);
    EXPECT_EQ(h.detector.stats().get("trigger_ww"), 0u);
}

TEST(IRDetector, RemoveBranchesKnob)
{
    IRDetectorParams params;
    params.removeBranches = false;
    DetectorHarness h(params);
    PacketBuilder pb(0);
    pb.branch(true);
    h.detector.processTrace(pb.trace());
    h.detector.drain();
    EXPECT_EQ(h.detector.stats().get("trigger_br"), 0u);
}

TEST(IRDetector, HaltAndOutputNeverRemovable)
{
    DetectorHarness h;
    PacketBuilder pb(0);
    // An unreferenced write pattern on a HALT-ish slot cannot select
    // it; build: halt + branch to confirm only branch is in irVec.
    pb.halt().branch(true);
    h.detector.processTrace(pb.trace());
    h.detector.drain();
    PacketBuilder pb2(1);
    pb2.packet.actualId = pb.packet.actualId;
    pb2.packet.slots = pb.packet.slots;
    pb2.rExec = pb.rExec;
    h.detector.processTrace(pb2.trace());
    h.detector.drain();
    auto plan = h.irPred.lookup(pb.history, pb.packet.actualId);
    ASSERT_TRUE(plan.has_value());
    EXPECT_FALSE(plan->removes(0));
    EXPECT_TRUE(plan->removes(1));
}

TEST(IRDetector, MemoryWWAcrossTraces)
{
    DetectorHarness h;
    PacketBuilder pb0(0);
    pb0.store(0x2000, 1); // never loaded
    h.detector.processTrace(pb0.trace());
    PacketBuilder pb1(1);
    pb1.store(0x2000, 2); // kills the first store
    h.detector.processTrace(pb1.trace());
    h.detector.drain();
    EXPECT_EQ(h.detector.stats().get("trigger_ww"), 1u);
}

TEST(IRDetector, ResetClearsScope)
{
    DetectorHarness h;
    PacketBuilder pb(0);
    pb.alu(5, 1);
    h.detector.processTrace(pb.trace());
    h.detector.reset();
    h.detector.drain(); // nothing to finalize
    EXPECT_EQ(h.irPred.stats().get("updates"), 0u);
}

} // namespace
} // namespace slip
