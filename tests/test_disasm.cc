#include <gtest/gtest.h>

#include "isa/disasm.hh"
#include "isa/regnames.hh"

namespace slip
{
namespace
{

TEST(Disasm, RType)
{
    StaticInst in{Opcode::ADD, reg::a0, reg::t0, RegIndex(reg::t0 + 1), 0};
    EXPECT_EQ(disassemble(in), "add a0, t0, t1");
}

TEST(Disasm, IType)
{
    StaticInst in{Opcode::ADDI, RegIndex(reg::t0 + 2), reg::zero, 0, -7};
    EXPECT_EQ(disassemble(in), "addi t2, zero, -7");
}

TEST(Disasm, LoadStoreUseDisplacementForm)
{
    StaticInst ld{Opcode::LD, RegIndex(reg::a0 + 1), reg::sp, 0, 16};
    EXPECT_EQ(disassemble(ld), "ld a1, 16(sp)");
    StaticInst sd{Opcode::SD, 0, reg::sp, RegIndex(reg::a0 + 1), -8};
    EXPECT_EQ(disassemble(sd), "sd a1, -8(sp)");
}

TEST(Disasm, BranchTargetsAbsoluteAndRelative)
{
    StaticInst br{Opcode::BNE, 0, reg::t0, reg::zero, -2};
    EXPECT_EQ(disassemble(br, 0x1010), "bne t0, zero, 0x1008");
    EXPECT_EQ(disassemble(br, 0x1010, false), "bne t0, zero, -2");
}

TEST(Disasm, JumpAndLui)
{
    StaticInst jal{Opcode::JAL, reg::ra, 0, 0, 4};
    EXPECT_EQ(disassemble(jal, 0x1000), "jal ra, 0x1010");
    StaticInst lui{Opcode::LUI, reg::a0, 0, 0, 256};
    EXPECT_EQ(disassemble(lui), "lui a0, 256");
}

TEST(Disasm, SysOps)
{
    StaticInst putn{Opcode::PUTN, 0, reg::a0, 0, 0};
    EXPECT_EQ(disassemble(putn), "putn a0");
    StaticInst halt{Opcode::HALT, 0, 0, 0, 0};
    EXPECT_EQ(disassemble(halt), "halt");
}

} // namespace
} // namespace slip
