/**
 * Report validation behind tools/detect_report: a missing, truncated,
 * or foreign-schema-version report must be refused with a one-line
 * diagnosis instead of being misparsed into a silently wrong table.
 */

#include <gtest/gtest.h>

#include <string>

#include "harness/fault_campaign.hh"
#include "harness/shootout.hh"

namespace slip
{
namespace
{

TEST(ShootoutReport, EmptyReportIsRefused)
{
    std::string err;
    EXPECT_FALSE(validateShootoutReport("", err));
    EXPECT_NE(err.find("empty"), std::string::npos) << err;

    err.clear();
    EXPECT_FALSE(validateShootoutReport("  \n\t ", err));
    EXPECT_NE(err.find("empty"), std::string::npos) << err;
}

TEST(ShootoutReport, ForeignFileIsRefused)
{
    std::string err;
    EXPECT_FALSE(validateShootoutReport("<html>not json</html>", err));
    EXPECT_NE(err.find("JSON array"), std::string::npos) << err;
}

TEST(ShootoutReport, TruncatedReportIsRefused)
{
    std::string err;
    EXPECT_FALSE(validateShootoutReport(
        "[\n{\"campaign\": \"x\", \"trials\": 8", err));
    EXPECT_NE(err.find("truncated"), std::string::npos) << err;
}

TEST(ShootoutReport, LegacyReportWithoutVersionPasses)
{
    std::string err;
    EXPECT_TRUE(validateShootoutReport(
        "[\n{\"campaign\": \"old\", \"trials\": 8}\n]\n", err))
        << err;
}

TEST(ShootoutReport, CurrentVersionPasses)
{
    std::string err;
    const std::string report =
        "[\n{\"report_version\": " +
        std::to_string(kFaultReportVersion) +
        ",\n\"campaign\": \"x\"}\n]\n";
    EXPECT_TRUE(validateShootoutReport(report, err)) << err;
}

TEST(ShootoutReport, ForeignVersionIsRefusedNamingBoth)
{
    std::string err;
    const std::string report =
        "[\n{\"report_version\": 999,\n\"campaign\": \"x\"}\n]\n";
    EXPECT_FALSE(validateShootoutReport(report, err));
    EXPECT_NE(err.find("999"), std::string::npos) << err;
    EXPECT_NE(err.find(std::to_string(kFaultReportVersion)),
              std::string::npos)
        << err;
    EXPECT_NE(err.find("regenerate"), std::string::npos) << err;
}

TEST(ShootoutReport, MixedVersionsRefusedOnFirstForeignObject)
{
    std::string err;
    const std::string report =
        "[\n{\"report_version\": " +
        std::to_string(kFaultReportVersion) +
        ", \"campaign\": \"a\"},\n"
        "{\"report_version\": 0, \"campaign\": \"b\"}\n]\n";
    EXPECT_FALSE(validateShootoutReport(report, err));
    EXPECT_NE(err.find("version 0"), std::string::npos) << err;
}

} // namespace
} // namespace slip
