#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "func/func_sim.hh"
#include "isa/regnames.hh"

namespace slip
{
namespace
{

TEST(FuncSim, RunsToHaltAndCapturesOutput)
{
    Program p = assemble(R"(
main:
    li a0, 3
loop:
    putn a0
    addi a0, a0, -1
    bnez a0, loop
    halt
)");
    FuncSim sim(p);
    const FuncRunResult r = sim.run();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.output, "3\n2\n1\n");
    EXPECT_EQ(r.instCount, 1u + 3 * 3 + 1u);
}

TEST(FuncSim, StackPointerInitialized)
{
    Program p = assemble(R"(
main:
    push a0
    pop  a1
    halt
)");
    FuncSim sim(p);
    EXPECT_EQ(sim.state().readReg(reg::sp), layout::kStackTop);
    sim.run();
    EXPECT_EQ(sim.state().readReg(reg::sp), layout::kStackTop);
}

TEST(FuncSim, InstructionLimitStopsRunaways)
{
    Program p = assemble("main: j main\n");
    FuncSim sim(p);
    const FuncRunResult r = sim.run(100);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.instCount, 100u);
}

TEST(FuncSim, DataImageLoaded)
{
    Program p = assemble(R"(
.data
v: .dword 1234
.text
main:
    ld a0, v
    putn a0
    halt
)");
    FuncSim sim(p);
    EXPECT_EQ(sim.run().output, "1234\n");
}

TEST(FuncSim, StepInterface)
{
    Program p = assemble("main: li a0, 1\nhalt\n");
    FuncSim sim(p);
    const ExecResult r1 = sim.step();
    EXPECT_TRUE(r1.wroteReg);
    EXPECT_FALSE(sim.halted());
    sim.step();
    EXPECT_TRUE(sim.halted());
}

TEST(FuncSim, ObserverSeesEveryRetirement)
{
    Program p = assemble("main: nop\nnop\nhalt\n");
    FuncSim sim(p);
    std::vector<Addr> pcs;
    sim.runWithObserver(
        [&](Addr pc, const StaticInst &, const ExecResult &) {
            pcs.push_back(pc);
        });
    ASSERT_EQ(pcs.size(), 3u);
    EXPECT_EQ(pcs[0], p.entry());
    EXPECT_EQ(pcs[2], p.entry() + 8);
}

TEST(FuncSim, RecursionWithStack)
{
    // sum(n) = n + sum(n-1); sum(0) = 0 — exercises call/ret/push/pop.
    Program p = assemble(R"(
main:
    li   a0, 10
    call sum
    putn a1
    halt
sum:
    push ra
    beqz a0, base
    push a0
    addi a0, a0, -1
    call sum
    pop  a0
    add  a1, a1, a0
    pop  ra
    ret
base:
    li   a1, 0
    pop  ra
    ret
)");
    FuncSim sim(p);
    EXPECT_EQ(sim.run().output, "55\n");
}

} // namespace
} // namespace slip
