# ssir_fuzz generated program, seed 7
# generator: arena_words=32 scratch_regs=6 loops=1..3 iters=6..40 stmts=3..10 nested=0.3 unpredictable=0.2 predictable=0.1 redundant=0.2 output=0.05
# regenerate: ssir_fuzz --seeds 7:8 --dump <dir>
.data
arena: .space 256
.text
main:
    la   s19, arena
    li   t0, 3998
    li   t1, 1807
    li   t2, 1344
    li   t3, 183
    li   t4, 216
    li   t5, 170
    li   k1, 46393
    sd   k1, 0(s19)
    li   k1, 310
    sd   k1, 8(s19)
    li   k1, 57787
    sd   k1, 16(s19)
    li   k1, 16965
    sd   k1, 24(s19)
    li   s0, 7
loop0:
    andi k0, t0, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t3, 0(k0)
    andi k0, t3, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t0, 0(k0)
    bnez zero, sk0
    addi t4, t4, -4
sk0:
    bnez zero, sk1
    addi t5, t4, 1
sk1:
    andi k2, t5, 2
    beqz k2, els2
    addi t1, t4, -6
    j    end3
els2:
    xor  t0, t2, t3
end3:
    andi k0, t5, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t5, 0(k0)
    xor  t2, t1, t3
    andi k0, t4, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t4, 0(k0)
    li   s1, 2
loop1:
    andi k0, t2, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t3, 0(k0)
    andi k0, t1, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t0, 0(k0)
    andi k2, t2, 7
    bnez k2, sk4
    addi t0, t5, 8
sk4:
    or   t2, t2, t4
    xor  t2, t0, t5
    beqz zero, sk5
    addi t2, t1, 1
sk5:
    addi t4, t3, 32
    andi k0, t2, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t3, 0(k0)
    addi s1, s1, -1
    bnez s1, loop1
    add  t2, t5, t0
    andi k0, t4, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t4, 0(k0)
    addi s0, s0, -1
    bnez s0, loop0
    li   s2, 40
loop2:
    bnez zero, sk6
    addi t4, t1, -3
sk6:
    add  t5, t4, t4
    andi k0, t5, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t2, 0(k0)
    beqz zero, sk7
    addi t5, t5, 1
sk7:
    and  t4, t1, t1
    sub  t0, t5, t4
    andi k0, t0, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t4, 0(k0)
    add  t5, t0, t3
    andi k0, t4, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t3, 0(k0)
    addi s2, s2, -1
    bnez s2, loop2
    li   a0, 0
    add  a0, a0, t0
    add  a0, a0, t1
    add  a0, a0, t2
    add  a0, a0, t3
    add  a0, a0, t4
    add  a0, a0, t5
    li   s18, 0
cksum:
    slli k0, s18, 3
    add  k0, k0, s19
    ld   k1, 0(k0)
    add  a0, a0, k1
    addi s18, s18, 1
    li   k2, 32
    blt  s18, k2, cksum
    putn a0
    halt
