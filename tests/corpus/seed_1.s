# ssir_fuzz generated program, seed 1
# generator: arena_words=32 scratch_regs=6 loops=1..3 iters=6..40 stmts=3..10 nested=0.3 unpredictable=0.2 predictable=0.1 redundant=0.2 output=0.05
# regenerate: ssir_fuzz --seeds 1:2 --dump <dir>
.data
arena: .space 256
.text
main:
    la   s19, arena
    li   t0, 2953
    li   t1, 3048
    li   t2, 2372
    li   t3, 1937
    li   t4, 3865
    li   t5, 2807
    li   k1, 8234
    sd   k1, 0(s19)
    li   k1, 19646
    sd   k1, 8(s19)
    li   k1, 64482
    sd   k1, 16(s19)
    li   k1, 51514
    sd   k1, 24(s19)
    li   s0, 21
loop0:
    or   t2, t1, t4
    andi k0, t4, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t5, 0(k0)
    sd   t5, 0(k0)
    andi k0, t5, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t4, 0(k0)
    andi k0, t5, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t2, 0(k0)
    andi k0, t5, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t3, 0(k0)
    addi s0, s0, -1
    bnez s0, loop0
    li   s1, 27
loop1:
    bnez zero, sk0
    addi t3, t5, 4
sk0:
    li   k3, 1
    li   k3, 1
    andi k2, t2, 1
    beqz k2, els1
    addi t0, t4, 4
    j    end2
els1:
    xor  t2, t1, t2
end2:
    addi t4, t4, 53
    andi k0, t5, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t5, 0(k0)
    andi k2, t0, 3
    bnez k2, sk3
    addi t4, t0, 4
sk3:
    addi t0, t5, -5
    addi s1, s1, -1
    bnez s1, loop1
    li   a0, 0
    add  a0, a0, t0
    add  a0, a0, t1
    add  a0, a0, t2
    add  a0, a0, t3
    add  a0, a0, t4
    add  a0, a0, t5
    li   s18, 0
cksum:
    slli k0, s18, 3
    add  k0, k0, s19
    ld   k1, 0(k0)
    add  a0, a0, k1
    addi s18, s18, 1
    li   k2, 32
    blt  s18, k2, cksum
    putn a0
    halt
