# Hand-curated corpus entry: concentrated ineffectual-instruction
# idioms (silent stores, same-value rewrites, dead writes, statically
# known branches) inside nested loops, so the IR detector/predictor
# build confident traces and the A-stream runs far ahead. Replay:
#   ssir_fuzz --replay tests/corpus/handwritten_ir_stress.s
.data
arena: .space 128

.text
main:
    la   s19, arena
    li   t0, 41
    li   t1, 1000
    li   s0, 25
outer:
    li   s1, 8
inner:
    # silent store: load a slot, store the same value back
    andi k0, t0, 15
    slli k0, k0, 3
    add  k0, k0, s19
    ld   k1, 0(k0)
    sd   k1, 0(k0)
    # same-value register rewrite
    li   k3, 7
    li   k3, 7
    # dead write: k4 never read
    addi k4, t0, 3
    # statically always-taken branch guards dead code
    beqz zero, skip1
    addi t1, t1, 99
skip1:
    # statically never-taken branch, pure fall-through
    bnez zero, skip2
    addi t0, t0, 1
skip2:
    # a real store the R-stream must retire exactly
    andi k0, t1, 15
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t0, 0(k0)
    addi t1, t1, -3
    addi s1, s1, -1
    bnez s1, inner
    addi s0, s0, -1
    bnez s0, outer
    # checksum the arena and the live registers
    li   a0, 0
    add  a0, a0, t0
    add  a0, a0, t1
    li   s18, 0
cksum:
    slli k0, s18, 3
    add  k0, k0, s19
    ld   k1, 0(k0)
    add  a0, a0, k1
    addi s18, s18, 1
    li   k2, 16
    blt  s18, k2, cksum
    putn a0
    halt
