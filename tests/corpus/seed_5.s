# ssir_fuzz generated program, seed 5
# generator: arena_words=32 scratch_regs=6 loops=1..3 iters=6..40 stmts=3..10 nested=0.3 unpredictable=0.2 predictable=0.1 redundant=0.2 output=0.05
# regenerate: ssir_fuzz --seeds 5:6 --dump <dir>
.data
arena: .space 256
.text
main:
    la   s19, arena
    li   t0, 3263
    li   t1, 1270
    li   t2, 121
    li   t3, 3658
    li   t4, 1316
    li   t5, 2906
    li   k1, 3621
    sd   k1, 0(s19)
    li   k1, 87626
    sd   k1, 8(s19)
    li   k1, 73685
    sd   k1, 16(s19)
    li   k1, 196
    sd   k1, 24(s19)
    li   s0, 11
loop0:
    andi k0, t0, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t2, 0(k0)
    andi k0, t0, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t0, 0(k0)
    andi k0, t5, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t4, 0(k0)
    sd   t4, 0(k0)
    andi k0, t2, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   k1, 0(k0)
    sd   k1, 0(k0)
    addi s0, s0, -1
    bnez s0, loop0
    li   a0, 0
    add  a0, a0, t0
    add  a0, a0, t1
    add  a0, a0, t2
    add  a0, a0, t3
    add  a0, a0, t4
    add  a0, a0, t5
    li   s18, 0
cksum:
    slli k0, s18, 3
    add  k0, k0, s19
    ld   k1, 0(k0)
    add  a0, a0, k1
    addi s18, s18, 1
    li   k2, 32
    blt  s18, k2, cksum
    putn a0
    halt
