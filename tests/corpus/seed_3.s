# ssir_fuzz generated program, seed 3
# generator: arena_words=32 scratch_regs=6 loops=1..3 iters=6..40 stmts=3..10 nested=0.3 unpredictable=0.2 predictable=0.1 redundant=0.2 output=0.05
# regenerate: ssir_fuzz --seeds 3:4 --dump <dir>
.data
arena: .space 256
.text
main:
    la   s19, arena
    li   t0, 1823
    li   t1, 1846
    li   t2, 1526
    li   t3, 2878
    li   t4, 2756
    li   t5, 2959
    li   k1, 812
    sd   k1, 0(s19)
    li   k1, 51946
    sd   k1, 8(s19)
    li   k1, 68883
    sd   k1, 16(s19)
    li   k1, 2390
    sd   k1, 24(s19)
    li   s0, 30
loop0:
    andi k2, t3, 1
    bnez k2, sk0
    addi t0, t1, 2
sk0:
    andi k2, t5, 1
    beqz k2, els1
    addi t3, t4, -7
    j    end2
els1:
    xor  t2, t1, t2
end2:
    andi k0, t1, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t3, 0(k0)
    andi k2, t4, 3
    bnez k2, sk3
    addi t1, t1, 12
sk3:
    andi k2, t3, 2
    beqz k2, els4
    addi t0, t5, 7
    j    end5
els4:
    xor  t0, t1, t0
end5:
    andi k0, t4, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t2, 0(k0)
    andi k2, t3, 3
    beqz k2, els6
    addi t4, t0, -3
    j    end7
els6:
    xor  t5, t5, t0
end7:
    addi t0, t1, 17
    li   s1, 7
loop1:
    andi k0, t1, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t1, 0(k0)
    mul  t2, t2, t3
    andi k0, t2, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   k1, 0(k0)
    sd   k1, 0(k0)
    andi k2, t3, 1
    beqz k2, els8
    addi t3, t2, 5
    j    end9
els8:
    xor  t5, t2, t1
end9:
    andi k2, t2, 3
    beqz k2, els10
    addi t2, t5, -5
    j    end11
els10:
    xor  t3, t4, t2
end11:
    mul  t5, t0, t4
    andi k0, t5, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t2, 0(k0)
    and  t4, t4, t0
    andi k0, t4, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t4, 0(k0)
    addi s1, s1, -1
    bnez s1, loop1
    bnez zero, sk12
    addi t2, t1, -2
sk12:
    addi k4, t3, 22
    addi s0, s0, -1
    bnez s0, loop0
    li   s2, 7
loop2:
    andi k0, t4, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t3, 0(k0)
    andi k0, t3, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   k1, 0(k0)
    sd   k1, 0(k0)
    andi k0, t5, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   k1, 0(k0)
    sd   k1, 0(k0)
    li   s3, 5
loop3:
    sub  t1, t0, t4
    andi k0, t3, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t2, 0(k0)
    andi k0, t0, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t5, 0(k0)
    andi k0, t5, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t1, 0(k0)
    addi t4, t5, -32
    andi k2, t5, 3
    bnez k2, sk13
    addi t1, t4, 16
sk13:
    andi k2, t5, 2
    beqz k2, els14
    addi t5, t1, -8
    j    end15
els14:
    xor  t3, t2, t2
end15:
    andi k2, t5, 1
    bnez k2, sk16
    addi t2, t3, 2
sk16:
    addi t5, t2, -4
    andi k0, t2, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t1, 0(k0)
    addi s3, s3, -1
    bnez s3, loop3
    andi k0, t4, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t0, 0(k0)
    addi s2, s2, -1
    bnez s2, loop2
    li   a0, 0
    add  a0, a0, t0
    add  a0, a0, t1
    add  a0, a0, t2
    add  a0, a0, t3
    add  a0, a0, t4
    add  a0, a0, t5
    li   s18, 0
cksum:
    slli k0, s18, 3
    add  k0, k0, s19
    ld   k1, 0(k0)
    add  a0, a0, k1
    addi s18, s18, 1
    li   k2, 32
    blt  s18, k2, cksum
    putn a0
    halt
