# ssir_fuzz generated program, seed 0
# generator: arena_words=32 scratch_regs=6 loops=1..3 iters=6..40 stmts=3..10 nested=0.3 unpredictable=0.2 predictable=0.1 redundant=0.2 output=0.05
# regenerate: ssir_fuzz --seeds 0:1 --dump <dir>
.data
arena: .space 256
.text
main:
    la   s19, arena
    li   t0, 1923
    li   t1, 1611
    li   t2, 597
    li   t3, 2157
    li   t4, 346
    li   t5, 1145
    li   k1, 97809
    sd   k1, 0(s19)
    li   k1, 31438
    sd   k1, 8(s19)
    li   k1, 15467
    sd   k1, 16(s19)
    li   k1, 13478
    sd   k1, 24(s19)
    li   s0, 11
loop0:
    putn t0
    addi t4, t2, -50
    bnez zero, sk0
    addi t0, t2, 3
sk0:
    andi k0, t0, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t1, 0(k0)
    addi t3, t0, -8
    beqz zero, sk1
    addi t0, t1, 1
sk1:
    li   s1, 3
loop1:
    andi k2, t0, 3
    beqz k2, els2
    addi t5, t1, 0
    j    end3
els2:
    xor  t0, t4, t4
end3:
    mul  t0, t5, t4
    andi k2, t2, 5
    bnez k2, sk4
    addi t5, t3, 15
sk4:
    mul  t0, t4, t3
    sub  t0, t5, t0
    andi k0, t2, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t0, 0(k0)
    andi k2, t3, 1
    beqz k2, els5
    addi t1, t5, 7
    j    end6
els5:
    xor  t3, t4, t5
end6:
    and  t4, t0, t2
    andi k2, t2, 2
    beqz k2, els7
    addi t5, t4, -5
    j    end8
els7:
    xor  t3, t3, t2
end8:
    addi t0, t2, -53
    addi s1, s1, -1
    bnez s1, loop1
    andi k2, t4, 2
    beqz k2, els9
    addi t4, t2, -8
    j    end10
els9:
    xor  t2, t4, t3
end10:
    andi k0, t3, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t5, 0(k0)
    andi k0, t3, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t0, 0(k0)
    andi k0, t4, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   k1, 0(k0)
    sd   k1, 0(k0)
    addi s0, s0, -1
    bnez s0, loop0
    li   a0, 0
    add  a0, a0, t0
    add  a0, a0, t1
    add  a0, a0, t2
    add  a0, a0, t3
    add  a0, a0, t4
    add  a0, a0, t5
    li   s18, 0
cksum:
    slli k0, s18, 3
    add  k0, k0, s19
    ld   k1, 0(k0)
    add  a0, a0, k1
    addi s18, s18, 1
    li   k2, 32
    blt  s18, k2, cksum
    putn a0
    halt
