# ssir_fuzz generated program, seed 4
# generator: arena_words=32 scratch_regs=6 loops=1..3 iters=6..40 stmts=3..10 nested=0.3 unpredictable=0.2 predictable=0.1 redundant=0.2 output=0.05
# regenerate: ssir_fuzz --seeds 4:5 --dump <dir>
.data
arena: .space 256
.text
main:
    la   s19, arena
    li   t0, 1827
    li   t1, 2258
    li   t2, 2971
    li   t3, 3983
    li   t4, 415
    li   t5, 3198
    li   k1, 25250
    sd   k1, 0(s19)
    li   k1, 93380
    sd   k1, 8(s19)
    li   k1, 21440
    sd   k1, 16(s19)
    li   k1, 49143
    sd   k1, 24(s19)
    li   s0, 30
loop0:
    andi k0, t5, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t3, 0(k0)
    sd   t3, 0(k0)
    andi k0, t2, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t4, 0(k0)
    sd   t4, 0(k0)
    putn t0
    addi s0, s0, -1
    bnez s0, loop0
    li   s1, 40
loop1:
    andi k2, t5, 2
    beqz k2, els0
    addi t3, t0, 3
    j    end1
els0:
    xor  t1, t2, t4
end1:
    or   t0, t1, t3
    andi k0, t4, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t3, 0(k0)
    andi k0, t1, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t3, 0(k0)
    addi s1, s1, -1
    bnez s1, loop1
    li   s2, 22
loop2:
    andi k2, t2, 6
    bnez k2, sk2
    addi t0, t2, 6
sk2:
    andi k0, t4, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t0, 0(k0)
    andi k0, t3, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t0, 0(k0)
    xor  t4, t1, t5
    andi k0, t1, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t5, 0(k0)
    sub  t1, t3, t1
    or   t4, t5, t5
    andi k0, t5, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t0, 0(k0)
    addi s2, s2, -1
    bnez s2, loop2
    li   a0, 0
    add  a0, a0, t0
    add  a0, a0, t1
    add  a0, a0, t2
    add  a0, a0, t3
    add  a0, a0, t4
    add  a0, a0, t5
    li   s18, 0
cksum:
    slli k0, s18, 3
    add  k0, k0, s19
    ld   k1, 0(k0)
    add  a0, a0, k1
    addi s18, s18, 1
    li   k2, 32
    blt  s18, k2, cksum
    putn a0
    halt
