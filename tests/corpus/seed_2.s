# ssir_fuzz generated program, seed 2
# generator: arena_words=32 scratch_regs=6 loops=1..3 iters=6..40 stmts=3..10 nested=0.3 unpredictable=0.2 predictable=0.1 redundant=0.2 output=0.05
# regenerate: ssir_fuzz --seeds 2:3 --dump <dir>
.data
arena: .space 256
.text
main:
    la   s19, arena
    li   t0, 3859
    li   t1, 1894
    li   t2, 3786
    li   t3, 478
    li   t4, 1253
    li   t5, 936
    li   k1, 83719
    sd   k1, 0(s19)
    li   k1, 94614
    sd   k1, 8(s19)
    li   k1, 28910
    sd   k1, 16(s19)
    li   k1, 73876
    sd   k1, 24(s19)
    li   s0, 39
loop0:
    andi k0, t4, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t0, 0(k0)
    putn t5
    addi t0, t1, -50
    andi k0, t4, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t3, 0(k0)
    addi t5, t2, 21
    andi k0, t0, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t3, 0(k0)
    andi k2, t1, 2
    beqz k2, els0
    addi t3, t1, 0
    j    end1
els0:
    xor  t3, t1, t1
end1:
    andi k0, t0, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   k1, 0(k0)
    sd   k1, 0(k0)
    addi s0, s0, -1
    bnez s0, loop0
    li   s1, 19
loop1:
    or   t1, t5, t4
    addi t4, t2, -3
    mul  t4, t4, t2
    andi k2, t5, 6
    bnez k2, sk2
    addi t1, t2, 6
sk2:
    li   s2, 5
loop2:
    andi k2, t2, 5
    bnez k2, sk3
    addi t2, t0, 7
sk3:
    andi k0, t3, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t0, 0(k0)
    bnez zero, sk4
    addi t2, t0, -2
sk4:
    andi k0, t0, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t5, 0(k0)
    addi t3, t4, -58
    andi k0, t5, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t2, 0(k0)
    andi k2, t3, 2
    bnez k2, sk5
    addi t4, t4, 9
sk5:
    bnez zero, sk6
    addi t4, t5, -1
sk6:
    addi s2, s2, -1
    bnez s2, loop2
    addi t5, t4, 64
    addi t4, t4, 9
    andi k0, t0, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t2, 0(k0)
    mul  t1, t0, t0
    andi k2, t2, 6
    bnez k2, sk7
    addi t2, t0, 4
sk7:
    addi t2, t4, -57
    addi s1, s1, -1
    bnez s1, loop1
    li   s3, 38
loop3:
    andi k0, t5, 31
    slli k0, k0, 3
    add  k0, k0, s19
    sd   t4, 0(k0)
    li   k3, 2
    li   k3, 2
    andi k2, t0, 2
    bnez k2, sk8
    addi t5, t4, 14
sk8:
    addi s3, s3, -1
    bnez s3, loop3
    li   a0, 0
    add  a0, a0, t0
    add  a0, a0, t1
    add  a0, a0, t2
    add  a0, a0, t3
    add  a0, a0, t4
    add  a0, a0, t5
    li   s18, 0
cksum:
    slli k0, s18, 3
    add  k0, k0, s19
    ld   k1, 0(k0)
    add  a0, a0, k1
    addi s18, s18, 1
    li   k2, 32
    blt  s18, k2, cksum
    putn a0
    halt
