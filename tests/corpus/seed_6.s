# ssir_fuzz generated program, seed 6
# generator: arena_words=32 scratch_regs=6 loops=1..3 iters=6..40 stmts=3..10 nested=0.3 unpredictable=0.2 predictable=0.1 redundant=0.2 output=0.05
# regenerate: ssir_fuzz --seeds 6:7 --dump <dir>
.data
arena: .space 256
.text
main:
    la   s19, arena
    li   t0, 1972
    li   t1, 979
    li   t2, 3379
    li   t3, 4019
    li   t4, 3243
    li   t5, 1038
    li   k1, 17079
    sd   k1, 0(s19)
    li   k1, 75612
    sd   k1, 8(s19)
    li   k1, 28887
    sd   k1, 16(s19)
    li   k1, 16390
    sd   k1, 24(s19)
    li   s0, 37
loop0:
    bnez zero, sk0
    addi t0, t2, -1
sk0:
    andi k2, t3, 1
    beqz k2, els1
    addi t1, t3, 1
    j    end2
els1:
    xor  t3, t4, t4
end2:
    addi t3, t1, -49
    andi k0, t4, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   t4, 0(k0)
    beqz zero, sk3
    addi t1, t3, 1
sk3:
    addi s0, s0, -1
    bnez s0, loop0
    li   s1, 35
loop1:
    andi k0, t1, 31
    slli k0, k0, 3
    add  k0, k0, s19
    ld   k1, 0(k0)
    sd   k1, 0(k0)
    andi k2, t4, 2
    beqz k2, els4
    addi t2, t2, 8
    j    end5
els4:
    xor  t0, t5, t5
end5:
    beqz zero, sk6
    addi t2, t4, 1
sk6:
    and  t3, t5, t1
    or   t3, t1, t0
    addi k4, t4, 10
    li   s2, 7
loop2:
    bnez zero, sk7
    addi t4, t3, -1
sk7:
    andi k2, t1, 4
    bnez k2, sk8
    addi t5, t0, 2
sk8:
    add  t3, t3, t3
    xor  t3, t2, t2
    addi t5, t5, 54
    or   t0, t4, t3
    xor  t3, t5, t1
    sub  t3, t0, t5
    andi k2, t4, 2
    beqz k2, els9
    addi t3, t4, 2
    j    end10
els9:
    xor  t2, t3, t1
end10:
    addi s2, s2, -1
    bnez s2, loop2
    add  t4, t3, t4
    bnez zero, sk11
    addi t0, t4, 1
sk11:
    addi s1, s1, -1
    bnez s1, loop1
    li   a0, 0
    add  a0, a0, t0
    add  a0, a0, t1
    add  a0, a0, t2
    add  a0, a0, t3
    add  a0, a0, t4
    add  a0, a0, t5
    li   s18, 0
cksum:
    slli k0, s18, 3
    add  k0, k0, s19
    ld   k1, 0(k0)
    add  a0, a0, k1
    addi s18, s18, 1
    li   k2, 32
    blt  s18, k2, cksum
    putn a0
    halt
