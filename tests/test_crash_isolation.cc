/**
 * Crash containment at the campaign level: a trial that kills its
 * worker process (SIGSEGV, _exit, spin-until-SIGKILL) must cost
 * exactly that trial — classified, journaled with triage, quarantined
 * when poisoned — while every sibling completes, and healthy results
 * must be byte-identical whatever the isolation mode or worker count.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "harness/fault_campaign.hh"
#include "harness/worker_pool.hh"

namespace slip
{
namespace
{

/** Scoped environment override restoring the prior value on exit. */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *prev = getenv(name);
        hadPrev_ = prev != nullptr;
        if (hadPrev_)
            prev_ = prev;
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }

    ~EnvGuard()
    {
        if (hadPrev_)
            setenv(name_.c_str(), prev_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string prev_;
    bool hadPrev_ = false;
};

std::vector<std::string>
readLines(const std::string &path)
{
    std::vector<std::string> lines;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

/**
 * Journal lines keyed by trial index. The journal is an append-on-
 * completion crash log, so its *order* tracks completion order (which
 * legitimately varies with worker count); its *content* per trial is
 * what must be invariant.
 */
std::map<uint64_t, std::string>
journalByTrial(const std::string &path)
{
    std::map<uint64_t, std::string> byTrial;
    for (const std::string &line : readLines(path)) {
        const std::string needle = "\"trial\":";
        const size_t at = line.find(needle);
        if (at == std::string::npos)
            continue;
        byTrial[std::strtoull(line.c_str() + at + needle.size(),
                              nullptr, 10)] = line;
    }
    return byTrial;
}

FaultCampaignConfig
baseConfig(const std::string &journal)
{
    FaultCampaignConfig cfg;
    cfg.name = "crash_isolation_test";
    cfg.workloads = {"compress"};
    cfg.trialsPerWorkload = 6;
    cfg.journalPath = journal;
    cfg.journalFsync = 0; // durability is not under test here
    cfg.quarantineDir = "test_crash_isolation.quarantine";
    return cfg;
}

class CrashIsolation : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setLogQuiet(true);
    }

    void
    TearDown() override
    {
        setLogQuiet(false);
        for (const std::string &j : journals_)
            std::remove(j.c_str());
        std::error_code ec;
        std::filesystem::remove_all(
            "test_crash_isolation.quarantine", ec);
    }

    std::string
    journal(const std::string &tag)
    {
        journals_.push_back("test_crash_isolation." + tag + ".jsonl");
        return journals_.back();
    }

    std::vector<std::string> journals_;
};

TEST_F(CrashIsolation, MixedCampaignContainsWorkerDeaths)
{
    FaultCampaignConfig cfg = baseConfig(journal("mixed"));
    cfg.isolation = IsolationMode::Fork;
    cfg.trialHook = [](size_t trial) {
        if (trial == 1)
            raise(SIGSEGV);
        if (trial == 4)
            _exit(3);
    };

    const FaultCampaignResult result = runFaultCampaign(cfg);
    ASSERT_EQ(result.trials.size(), 6u);

    // The two sabotaged trials are classified with full triage.
    const TrialRecord &segv = result.trials[1];
    EXPECT_EQ(segv.outcome, TrialOutcome::Crashed);
    EXPECT_EQ(segv.crashSignal, SIGSEGV);
    EXPECT_EQ(segv.crashPhase, "run");
    EXPECT_NE(segv.error.find("SIGSEGV"), std::string::npos);

    const TrialRecord &exited = result.trials[4];
    EXPECT_EQ(exited.outcome, TrialOutcome::Crashed);
    EXPECT_EQ(exited.crashSignal, 0);
    EXPECT_EQ(exited.crashExit, 3);

    // Every sibling completed as if nothing happened.
    for (size_t i : {0u, 2u, 3u, 5u}) {
        EXPECT_NE(result.trials[i].outcome, TrialOutcome::Crashed)
            << "trial " << i;
        EXPECT_NE(result.trials[i].outcome, TrialOutcome::TimedOut)
            << "trial " << i;
    }

    // The tally's crash histogram names both causes.
    EXPECT_EQ(result.total.outcomes(TrialOutcome::Crashed), 2u);
    ASSERT_EQ(result.total.crashBySignal.size(), 2u);
    EXPECT_EQ(result.total.crashBySignal.at("SIGSEGV"), 1u);
    EXPECT_EQ(result.total.crashBySignal.at("exit_3"), 1u);

    // Both trials crash on every dispatch, so both end poisoned and
    // quarantined as repro bundles.
    namespace fs = std::filesystem;
    const fs::path q = "test_crash_isolation.quarantine";
    EXPECT_TRUE(
        fs::exists(q / "crash_isolation_test_trial_1/program.s"));
    EXPECT_TRUE(
        fs::exists(q / "crash_isolation_test_trial_1/README.txt"));
    EXPECT_TRUE(
        fs::exists(q / "crash_isolation_test_trial_4/program.s"));
}

TEST_F(CrashIsolation, JournalCarriesTriageOnlyForCrashedTrials)
{
    FaultCampaignConfig mixed = baseConfig(journal("triage"));
    mixed.isolation = IsolationMode::Fork;
    mixed.trialHook = [](size_t trial) {
        if (trial == 1)
            raise(SIGSEGV);
    };
    runFaultCampaign(mixed);
    const std::map<uint64_t, std::string> mixedLines =
        journalByTrial(mixed.journalPath);

    FaultCampaignConfig healthy = baseConfig(journal("healthy"));
    healthy.isolation = IsolationMode::Fork;
    runFaultCampaign(healthy);
    const std::map<uint64_t, std::string> healthyLines =
        journalByTrial(healthy.journalPath);

    ASSERT_EQ(mixedLines.size(), 6u);
    ASSERT_EQ(healthyLines.size(), 6u);
    for (uint64_t i = 0; i < 6; ++i) {
        const bool crashed = i == 1;
        const std::string &line = mixedLines.at(i);
        EXPECT_EQ(line.find("\"signal\"") != std::string::npos,
                  crashed)
            << line;
        EXPECT_EQ(line.find("\"crash_phase\"") != std::string::npos,
                  crashed)
            << line;
        // Healthy trials journal byte-identically whether or not a
        // sibling crashed — the containment left no residue.
        if (!crashed) {
            EXPECT_EQ(line, healthyLines.at(i));
        }
    }
}

TEST_F(CrashIsolation, HealthyCampaignByteIdenticalAcrossModes)
{
    std::string baselineReport;
    std::map<uint64_t, std::string> baselineJournal;

    const IsolationMode modes[] = {IsolationMode::None,
                                   IsolationMode::Fork};
    for (IsolationMode mode : modes) {
        for (unsigned workers : {1u, 3u}) {
            FaultCampaignConfig cfg = baseConfig(
                journal(std::string("det_") + isolationModeName(mode) +
                        "_" + std::to_string(workers)));
            cfg.isolation = mode;
            cfg.workers = workers;
            const std::string report =
                campaignJson(cfg, runFaultCampaign(cfg));
            const std::map<uint64_t, std::string> lines =
                journalByTrial(cfg.journalPath);
            if (baselineReport.empty()) {
                baselineReport = report;
                baselineJournal = lines;
                continue;
            }
            EXPECT_EQ(report, baselineReport)
                << isolationModeName(mode) << "/" << workers;
            EXPECT_EQ(lines, baselineJournal)
                << isolationModeName(mode) << "/" << workers;
        }
    }
    // The healthy campaign's report must not mention worker deaths.
    EXPECT_EQ(baselineReport.find("worker_crashes"),
              std::string::npos);
}

TEST_F(CrashIsolation, ResumeAfterInterruptionByteIdentical)
{
    // The uninterrupted run is the reference.
    FaultCampaignConfig ref = baseConfig(journal("resume_ref"));
    const std::string refReport =
        campaignJson(ref, runFaultCampaign(ref));
    const std::vector<std::string> refLines =
        readLines(ref.journalPath);
    ASSERT_EQ(refLines.size(), 6u);

    // Simulate a supervisor killed after 3 journaled trials, then a
    // --resume restart — in both isolation modes.
    for (IsolationMode mode :
         {IsolationMode::None, IsolationMode::Fork}) {
        FaultCampaignConfig cfg = baseConfig(
            journal(std::string("resume_") + isolationModeName(mode)));
        cfg.isolation = mode;
        cfg.resume = true;
        {
            std::ofstream out(cfg.journalPath, std::ios::trunc);
            for (size_t i = 0; i < 3; ++i)
                out << refLines[i] << "\n";
        }
        const std::string report =
            campaignJson(cfg, runFaultCampaign(cfg));
        EXPECT_EQ(report, refReport) << isolationModeName(mode);
    }
}

TEST_F(CrashIsolation, ResumeRestoresCrashedTrialsWithTriage)
{
    // A journaled crashed trial must survive resume — including its
    // crash histogram entry — without re-running the poison trial.
    FaultCampaignConfig first = baseConfig(journal("resume_crash"));
    first.isolation = IsolationMode::Fork;
    first.trialHook = [](size_t trial) {
        if (trial == 1)
            raise(SIGSEGV);
    };
    const FaultCampaignResult ran = runFaultCampaign(first);
    const std::string firstReport = campaignJson(first, ran);

    FaultCampaignConfig again = baseConfig(first.journalPath);
    again.isolation = IsolationMode::Fork;
    again.resume = true; // no trialHook: nothing may re-run trial 1
    const FaultCampaignResult resumed = runFaultCampaign(again);
    EXPECT_EQ(campaignJson(again, resumed), firstReport);
    EXPECT_EQ(resumed.trials[1].outcome, TrialOutcome::Crashed);
    EXPECT_EQ(resumed.trials[1].crashSignal, SIGSEGV);
    EXPECT_EQ(resumed.total.crashBySignal.at("SIGSEGV"), 1u);
}

TEST_F(CrashIsolation, SpinningTrialTimesOutUnderFork)
{
    EnvGuard deadline("SLIPSTREAM_TRIAL_TIMEOUT_MS", "1500");
    FaultCampaignConfig cfg = baseConfig(journal("spin"));
    cfg.isolation = IsolationMode::Fork;
    cfg.trialsPerWorkload = 3;
    cfg.trialHook = [](size_t trial) {
        if (trial == 0) {
            volatile uint64_t sink = 0;
            for (;;)
                sink = sink + 1;
        }
    };

    const FaultCampaignResult result = runFaultCampaign(cfg);
    ASSERT_EQ(result.trials.size(), 3u);
    EXPECT_EQ(result.trials[0].outcome, TrialOutcome::TimedOut);
    EXPECT_NE(result.trials[1].outcome, TrialOutcome::TimedOut);
    EXPECT_NE(result.trials[2].outcome, TrialOutcome::TimedOut);
}

TEST_F(CrashIsolation, QuarantineCapSkipsNewBundles)
{
    // SLIPSTREAM_QUARANTINE_MAX bounds results/quarantine growth: at
    // the cap, a poisoned trial still gets its journaled crashed
    // outcome, but no new repro bundle lands on disk.
    EnvGuard cap("SLIPSTREAM_QUARANTINE_MAX", "0");
    FaultCampaignConfig cfg = baseConfig(journal("qcap"));
    cfg.isolation = IsolationMode::Fork;
    cfg.trialsPerWorkload = 3;
    cfg.trialHook = [](size_t trial) {
        if (trial == 1)
            raise(SIGSEGV);
    };

    const FaultCampaignResult result = runFaultCampaign(cfg);
    EXPECT_EQ(result.trials[1].outcome, TrialOutcome::Crashed);
    EXPECT_FALSE(std::filesystem::exists(
        std::filesystem::path("test_crash_isolation.quarantine") /
        "crash_isolation_test_trial_1"));
}

TEST_F(CrashIsolation, FsyncKnobDoesNotChangeJournalContent)
{
    FaultCampaignConfig fsynced = baseConfig(journal("fsync_on"));
    fsynced.trialsPerWorkload = 2;
    fsynced.journalFsync = 1;
    runFaultCampaign(fsynced);

    FaultCampaignConfig buffered = baseConfig(journal("fsync_off"));
    buffered.trialsPerWorkload = 2;
    buffered.journalFsync = 0;
    runFaultCampaign(buffered);

    EXPECT_EQ(readLines(fsynced.journalPath),
              readLines(buffered.journalPath));
}

} // namespace
} // namespace slip
