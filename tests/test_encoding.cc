#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "isa/encoding.hh"

namespace slip
{
namespace
{

TEST(Encoding, RTypeRoundTrip)
{
    StaticInst in{Opcode::ADD, 7, 13, 63, 0};
    EXPECT_EQ(decode(encode(in)), in);
}

TEST(Encoding, ITypeImmediateExtremes)
{
    for (int64_t imm : {-2048ll, -1ll, 0ll, 1ll, 2047ll}) {
        StaticInst in{Opcode::ADDI, 5, 6, 0, imm};
        EXPECT_EQ(decode(encode(in)), in) << "imm=" << imm;
    }
}

TEST(Encoding, JTypeImmediateExtremes)
{
    for (int64_t imm : {-131072ll, -1ll, 0ll, 131071ll}) {
        StaticInst in{Opcode::JAL, 1, 0, 0, imm};
        EXPECT_EQ(decode(encode(in)), in) << "imm=" << imm;
    }
}

TEST(Encoding, StoreAndBranchFormats)
{
    StaticInst st{Opcode::SD, 0, 2, 17, -8};
    EXPECT_EQ(decode(encode(st)), st);
    StaticInst br{Opcode::BLTU, 0, 3, 4, 100};
    EXPECT_EQ(decode(encode(br)), br);
}

TEST(Encoding, SysOps)
{
    StaticInst putc{Opcode::PUTC, 0, 33, 0, 0};
    EXPECT_EQ(decode(encode(putc)), putc);
    StaticInst halt{Opcode::HALT, 0, 0, 0, 0};
    EXPECT_EQ(decode(encode(halt)), halt);
    StaticInst nop{Opcode::NOP, 0, 0, 0, 0};
    EXPECT_EQ(decode(encode(nop)), nop);
}

TEST(Encoding, IllegalOpcodeByteIsFatal)
{
    const uint32_t bad = 0xff000000u;
    EXPECT_THROW(decode(bad), FatalError);
}

TEST(Encoding, OutOfRangeImmediatePanics)
{
    StaticInst in{Opcode::ADDI, 1, 1, 0, 4096};
    EXPECT_THROW(encode(in), PanicError);
}

TEST(Encoding, OutOfRangeRegisterPanics)
{
    StaticInst in{Opcode::ADD, 64, 0, 0, 0};
    EXPECT_THROW(encode(in), PanicError);
}

/** Property: encode/decode round-trips for random legal instructions. */
TEST(Encoding, RandomRoundTripProperty)
{
    Rng rng(2024);
    for (int i = 0; i < 5000; ++i) {
        StaticInst in;
        in.op = static_cast<Opcode>(
            rng.below(uint64_t(Opcode::NumOpcodes)));
        switch (in.format()) {
          case Format::R:
            in.rd = RegIndex(rng.below(64));
            in.rs1 = RegIndex(rng.below(64));
            in.rs2 = RegIndex(rng.below(64));
            break;
          case Format::I:
            in.rd = RegIndex(rng.below(64));
            in.rs1 = RegIndex(rng.below(64));
            in.imm = rng.range(-2048, 2047);
            break;
          case Format::S:
          case Format::B:
            in.rs1 = RegIndex(rng.below(64));
            in.rs2 = RegIndex(rng.below(64));
            in.imm = rng.range(-2048, 2047);
            break;
          case Format::J:
            in.rd = RegIndex(rng.below(64));
            in.imm = rng.range(-131072, 131071);
            break;
          case Format::Sys:
            if (in.op == Opcode::PUTC || in.op == Opcode::PUTN)
                in.rs1 = RegIndex(rng.below(64));
            break;
        }
        EXPECT_EQ(decode(encode(in)), in)
            << "op=" << opcodeName(in.op) << " iter=" << i;
    }
}

} // namespace
} // namespace slip
