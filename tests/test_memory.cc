#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.hh"
#include "mem/memory.hh"

namespace slip
{
namespace
{

TEST(Memory, UntouchedReadsZero)
{
    Memory m;
    EXPECT_EQ(m.read(0x1234, 8), 0u);
    EXPECT_EQ(m.numPages(), 0u); // reads allocate nothing
}

TEST(Memory, ReadBackAllSizes)
{
    Memory m;
    m.write(0x100, 8, 0x1122334455667788ull);
    EXPECT_EQ(m.read(0x100, 8), 0x1122334455667788ull);
    EXPECT_EQ(m.read(0x100, 4), 0x55667788u);
    EXPECT_EQ(m.read(0x100, 2), 0x7788u);
    EXPECT_EQ(m.read(0x100, 1), 0x88u);
    EXPECT_EQ(m.read(0x104, 4), 0x11223344u); // little endian
}

TEST(Memory, UnalignedAndPageCrossing)
{
    Memory m;
    const Addr edge = Memory::kPageBytes - 3;
    m.write(edge, 8, 0xa1b2c3d4e5f60718ull);
    EXPECT_EQ(m.read(edge, 8), 0xa1b2c3d4e5f60718ull);
    EXPECT_EQ(m.numPages(), 2u);
    EXPECT_EQ(m.read(edge + 3, 1), 0xe5u);
}

TEST(Memory, PartialOverwrite)
{
    Memory m;
    m.write(0x40, 8, ~0ull);
    m.write(0x42, 2, 0);
    EXPECT_EQ(m.read(0x40, 8), 0xffffffff0000ffffull);
}

TEST(Memory, WildAddressesCostOnePage)
{
    Memory m;
    m.write(0xdeadbeefcafe, 1, 0x5a);
    EXPECT_EQ(m.read(0xdeadbeefcafe, 1), 0x5au);
    EXPECT_EQ(m.numPages(), 1u);
}

TEST(Memory, WriteBlockSpansPages)
{
    Memory m;
    std::vector<uint8_t> data(Memory::kPageBytes + 100, 0xab);
    data[0] = 1;
    data.back() = 2;
    m.writeBlock(Memory::kPageBytes - 50, data.data(), data.size());
    EXPECT_EQ(m.read(Memory::kPageBytes - 50, 1), 1u);
    EXPECT_EQ(m.read(Memory::kPageBytes - 50 + data.size() - 1, 1), 2u);
    EXPECT_EQ(m.read(Memory::kPageBytes, 1), 0xabu);
}

TEST(Memory, CloneIsDeepAndEqualRespectsZeroPages)
{
    Memory m;
    m.write(0x10, 8, 77);
    Memory c = m.clone();
    EXPECT_TRUE(m.equals(c));
    c.write(0x10, 8, 78);
    EXPECT_FALSE(m.equals(c));
    EXPECT_EQ(m.read(0x10, 8), 77u);

    // An explicitly zeroed page equals an absent page.
    Memory z;
    z.write(0x5000, 8, 1);
    z.write(0x5000, 8, 0);
    Memory empty;
    EXPECT_TRUE(z.equals(empty));
    EXPECT_TRUE(empty.equals(z));
}

TEST(Memory, RandomizedReadWriteConsistency)
{
    Memory m;
    std::vector<std::pair<Addr, uint8_t>> shadowWrites;
    Rng rng(31);
    for (int i = 0; i < 2000; ++i) {
        const Addr a = rng.below(1 << 16);
        const unsigned size = 1u << rng.below(4);
        const uint64_t v = rng.next();
        m.write(a, size, v);
        for (unsigned b = 0; b < size; ++b)
            shadowWrites.push_back({a + b, uint8_t(v >> (8 * b))});
    }
    // Last write per byte wins (insertion order preserves that).
    std::map<Addr, uint8_t> shadow;
    for (auto &[a, v] : shadowWrites)
        shadow[a] = v;
    for (auto &[a, v] : shadow)
        EXPECT_EQ(m.read(a, 1), v) << "addr " << a;
}

TEST(Memory, ReadBlockZeroFillsAbsentPages)
{
    Memory m;
    // A write straddling the first page edge, then a gap page: the
    // block read must stitch written bytes and zero fill together.
    m.write(Memory::kPageBytes - 1, 2, 0xbbaa);
    std::vector<uint8_t> out(3 * Memory::kPageBytes, 0x5a);
    m.readBlock(0, out.data(), out.size());
    for (size_t i = 0; i < out.size(); ++i) {
        const uint8_t expect = i == Memory::kPageBytes - 1 ? 0xaa
                               : i == Memory::kPageBytes   ? 0xbb
                                                           : 0;
        ASSERT_EQ(out[i], expect) << "offset " << i;
    }
    EXPECT_EQ(m.numPages(), 2u); // readBlock allocated nothing
}

TEST(Memory, ReadBlockMatchesByteReads)
{
    Memory m;
    Rng rng(77);
    for (int i = 0; i < 512; ++i)
        m.write(Memory::kPageBytes - 256 + rng.below(512), 1,
                rng.next());
    std::vector<uint8_t> block(600);
    const Addr start = Memory::kPageBytes - 300;
    m.readBlock(start, block.data(), block.size());
    for (size_t i = 0; i < block.size(); ++i)
        ASSERT_EQ(block[i], m.read(start + i, 1)) << "offset " << i;
}

TEST(Memory, PagePtrAccessors)
{
    Memory m;
    EXPECT_EQ(m.peekPagePtr(0), nullptr); // peek never allocates
    EXPECT_EQ(m.numPages(), 0u);

    uint8_t *p = m.touchPagePtr(Memory::kPageBytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(m.numPages(), 1u);
    p[3] = 0x42;
    EXPECT_EQ(m.read(Memory::kPageBytes + 3, 1), 0x42u);
    EXPECT_EQ(m.peekPagePtr(Memory::kPageBytes), p);
}

TEST(Memory, EpochInvalidatesOnClearAndMove)
{
    Memory m;
    m.write(0, 1, 1);
    const uint64_t e0 = m.epoch();
    m.write(8, 8, 2); // plain writes never invalidate page pointers
    EXPECT_EQ(m.epoch(), e0);
    m.clear();
    EXPECT_GT(m.epoch(), e0);

    m.write(0, 1, 3);
    const uint64_t e1 = m.epoch();
    Memory moved = std::move(m);
    EXPECT_GT(moved.epoch(), e1);
}

} // namespace
} // namespace slip
