#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "harness/experiment.hh"

namespace slip
{
namespace
{

const char *kTinyWorkload = R"(
main:
    li  s0, 300
loop:
    addi s1, s1, 2
    addi s0, s0, -1
    bnez s0, loop
    putn s1
    halt
)";

TEST(Experiment, ParamsMatchPaperTable2)
{
    const CoreParams ss = ss64x4Params();
    EXPECT_EQ(ss.robSize, 64u);
    EXPECT_EQ(ss.issueWidth, 4u);
    const CoreParams wide = ss128x8Params();
    EXPECT_EQ(wide.robSize, 128u);
    EXPECT_EQ(wide.issueWidth, 8u);
    const SlipstreamParams cmp = cmp2x64x4Params();
    EXPECT_EQ(cmp.aCore.robSize, 64u);
    EXPECT_EQ(cmp.rCore.robSize, 64u);
    EXPECT_EQ(cmp.irPred.confidenceThreshold, 32u);
    EXPECT_EQ(cmp.detector.scopeTraces, 8u);
    EXPECT_EQ(cmp.delayBuffer.dataCapacity, 256u);
    EXPECT_EQ(cmp.delayBuffer.controlCapacity, 128u);
}

TEST(Experiment, GoldenOutputComesFromFunctionalSim)
{
    const Program p = assemble(kTinyWorkload);
    EXPECT_EQ(goldenOutput(p), "600\n");
}

TEST(Experiment, GoldenOutputDetectsNonTermination)
{
    const Program p = assemble("main: j main\n");
    EXPECT_THROW(goldenOutput(p), FatalError);
}

TEST(Experiment, RunSSFillsMetrics)
{
    const Program p = assemble(kTinyWorkload);
    const std::string want = goldenOutput(p);
    const RunMetrics m = runSS(p, ss64x4Params(), "SS(64x4)", want);
    EXPECT_EQ(m.model, "SS(64x4)");
    EXPECT_TRUE(m.outputCorrect);
    EXPECT_GT(m.cycles, 0u);
    EXPECT_GT(m.ipc, 0.0);
    EXPECT_EQ(m.removedFraction, 0.0); // SS models remove nothing
}

TEST(Experiment, RunSSFlagsWrongGolden)
{
    const Program p = assemble(kTinyWorkload);
    const RunMetrics m =
        runSS(p, ss64x4Params(), "SS(64x4)", "wrong\n");
    EXPECT_FALSE(m.outputCorrect);
}

TEST(Experiment, RunSlipstreamFillsSlipstreamMetrics)
{
    const Program p = assemble(kTinyWorkload);
    const std::string want = goldenOutput(p);
    const RunMetrics m = runSlipstream(p, cmp2x64x4Params(), want);
    EXPECT_EQ(m.model, "CMP(2x64x4)");
    EXPECT_TRUE(m.outputCorrect);
    EXPECT_GE(m.removedFraction, 0.0);
    EXPECT_LE(m.removedFraction, 1.0);
}

TEST(Experiment, RunAllModelsCoversThePaperTrio)
{
    Workload w{"tiny", "n/a", "tiny loop", kTinyWorkload};
    const auto results = runAllModels(w);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results.count("SS(64x4)"));
    EXPECT_TRUE(results.count("SS(128x8)"));
    EXPECT_TRUE(results.count("CMP(2x64x4)"));
    for (const auto &[name, m] : results)
        EXPECT_TRUE(m.outputCorrect) << name;
}

} // namespace
} // namespace slip
