/**
 * Unit tests for the differential-fuzzing stack: generator
 * determinism and structure, oracle verdicts (clean programs and an
 * armed undetectable fault), greedy minimization, campaign-level
 * determinism across worker counts, and the SLIP_INVARIANT runtime
 * gating.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "assembler/assembler.hh"
#include "common/invariant.hh"
#include "common/logging.hh"
#include "fuzz/fuzzer.hh"
#include "fuzz/minimize.hh"
#include "fuzz/oracle.hh"

namespace slip::fuzz
{
namespace
{

namespace fs = std::filesystem;

FaultPlan
demoFault()
{
    // A memory-cell flip: invisible to slipstream redundancy (the
    // paper leaves main memory to ECC), so the oracle must diverge.
    FaultPlan plan;
    plan.target = FaultTarget::MemoryCell;
    plan.dynIndex = 40;
    plan.bit = 13;
    return plan;
}

/** A seed the demo fault is known to corrupt observably. */
constexpr uint64_t kDivergingSeed = 0;

class QuietLogs : public ::testing::Test
{
  protected:
    void SetUp() override { setLogQuiet(true); }
    void TearDown() override { setLogQuiet(false); }
};

using Generator = QuietLogs;
using Oracle = QuietLogs;
using Minimizer = QuietLogs;
using Fuzzer = QuietLogs;

TEST_F(Generator, SameSeedSameProgram)
{
    const GeneratorConfig cfg;
    EXPECT_EQ(generate(5, cfg).render(), generate(5, cfg).render());
    EXPECT_NE(generate(5, cfg).render(), generate(6, cfg).render());
}

TEST_F(Generator, ProgramsAssembleAndHaveRemovableUnits)
{
    for (uint64_t seed = 0; seed < 25; ++seed) {
        const GeneratedProgram gp = generate(seed);
        EXPECT_NO_THROW(assemble(gp.render())) << "seed " << seed;
        EXPECT_GT(gp.removableCount(), 0u) << "seed " << seed;
    }
}

TEST_F(Generator, RenderWithMaskKeepsScaffolding)
{
    const GeneratedProgram gp = generate(3);
    const std::vector<bool> all(gp.units.size(), true);
    EXPECT_EQ(gp.render(all), gp.render());

    // Dropping every removable unit must still leave an assemblable
    // skeleton (prologue + epilogue): the minimizer relies on this.
    const std::vector<bool> none(gp.units.size(), false);
    const std::string skeleton = gp.render(none);
    EXPECT_LT(skeleton.size(), gp.render().size());
    EXPECT_NO_THROW(assemble(skeleton));
}

TEST_F(Oracle, CleanProgramProducesNoDivergence)
{
    const OracleVerdict v =
        runOracle(assemble(generate(kDivergingSeed).render()));
    EXPECT_FALSE(v.diverged) << v.report;
    EXPECT_TRUE(v.report.empty());
}

TEST_F(Oracle, UndetectableMemoryFaultDiverges)
{
    OracleOptions opt;
    opt.faults.push_back(demoFault());
    const OracleVerdict v =
        runOracle(assemble(generate(kDivergingSeed).render()), opt);
    EXPECT_TRUE(v.diverged);
    EXPECT_FALSE(v.report.empty());
    // The report names the leg it caught and what differed.
    EXPECT_NE(v.report.find("slipstream"), std::string::npos)
        << v.report;
}

TEST_F(Oracle, VerdictIsDeterministic)
{
    OracleOptions opt;
    opt.faults.push_back(demoFault());
    const Program p = assemble(generate(kDivergingSeed).render());
    const OracleVerdict a = runOracle(p, opt);
    const OracleVerdict b = runOracle(p, opt);
    EXPECT_EQ(a.diverged, b.diverged);
    EXPECT_EQ(a.report, b.report);
}

TEST_F(Minimizer, ShrinksDivergingProgram)
{
    OracleOptions opt;
    opt.faults.push_back(demoFault());
    const GeneratedProgram gp = generate(kDivergingSeed);
    ASSERT_TRUE(runOracle(assemble(gp.render()), opt).diverged);

    const MinimizeResult mr =
        minimize(gp, [&opt](const std::string &candidate) {
            try {
                return runOracle(assemble(candidate), opt).diverged;
            } catch (const std::exception &) {
                return false;
            }
        });
    EXPECT_GT(mr.unitsRemoved, 0u);
    EXPECT_LT(mr.source.size(), gp.render().size());
    // The minimized program still reproduces the divergence.
    EXPECT_TRUE(runOracle(assemble(mr.source), opt).diverged);
}

TEST_F(Minimizer, PredicateControlsWhatSurvives)
{
    const GeneratedProgram gp = generate(4);

    // Nothing reproduces on any candidate: every trial removal is
    // rolled back, so the program survives untouched.
    const MinimizeResult none =
        minimize(gp, [](const std::string &) { return false; });
    EXPECT_EQ(none.unitsRemoved, 0u);
    EXPECT_EQ(none.unitsKept, gp.removableCount());
    EXPECT_EQ(none.source, gp.render());

    // Everything reproduces: greedy minimization strips every
    // removable unit, leaving just the fixed scaffolding.
    const MinimizeResult all =
        minimize(gp, [](const std::string &) { return true; });
    EXPECT_EQ(all.unitsRemoved, gp.removableCount());
    EXPECT_EQ(all.unitsKept, 0u);
    EXPECT_NO_THROW(assemble(all.source));
}

TEST_F(Fuzzer, CleanWindowReportsNoFindings)
{
    FuzzOptions opt;
    opt.seedBegin = 0;
    opt.seedEnd = 6;
    opt.bundleDir.clear();
    const FuzzSummary s = runFuzz(opt);
    EXPECT_EQ(s.seedsRun, 6u);
    EXPECT_EQ(s.divergences, 0u);
    EXPECT_EQ(s.errors, 0u);
    EXPECT_TRUE(s.findings.empty());
}

TEST_F(Fuzzer, FaultCampaignWritesMinimizedBundles)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / "slip_fuzz_bundles";
    fs::remove_all(dir);

    FuzzOptions opt;
    opt.seedBegin = 0;
    opt.seedEnd = 3;
    opt.oracle.faults.push_back(demoFault());
    opt.bundleDir = dir.string();
    const FuzzSummary s = runFuzz(opt);
    EXPECT_GE(s.divergences, 1u);
    ASSERT_FALSE(s.findings.empty());

    const FuzzCase &c = s.findings.front();
    EXPECT_TRUE(c.diverged);
    ASSERT_FALSE(c.bundlePath.empty());
    EXPECT_TRUE(fs::exists(fs::path(c.bundlePath) / "README.txt"));
    EXPECT_TRUE(fs::exists(fs::path(c.bundlePath) / "program.s"));
    EXPECT_TRUE(fs::exists(fs::path(c.bundlePath) / "report.txt"));
    EXPECT_TRUE(fs::exists(fs::path(c.bundlePath) / "disasm.txt"));

    // The bundled program is self-contained: reassembling it
    // reproduces the divergence under the same oracle options.
    std::ifstream in(fs::path(c.bundlePath) / "program.s");
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_TRUE(runOracle(assemble(buf.str()), opt.oracle).diverged);

    fs::remove_all(dir);
}

TEST_F(Fuzzer, ResultsAreIdenticalAcrossWorkerCounts)
{
    const auto campaign = [](unsigned jobs) {
        FuzzOptions opt;
        opt.seedBegin = 0;
        opt.seedEnd = 12;
        opt.jobs = jobs;
        opt.minimizeDivergences = false;
        opt.bundleDir.clear();
        opt.oracle.faults.push_back(demoFault());
        return runFuzz(opt);
    };
    const FuzzSummary one = campaign(1);
    const FuzzSummary four = campaign(4);
    EXPECT_EQ(one.divergences, four.divergences);
    ASSERT_EQ(one.findings.size(), four.findings.size());
    for (size_t i = 0; i < one.findings.size(); ++i) {
        EXPECT_EQ(one.findings[i].seed, four.findings[i].seed);
        EXPECT_EQ(one.findings[i].report, four.findings[i].report);
    }
}

// SLIPSTREAM_DISABLE_INVARIANTS=ON turns every SLIP_INVARIANT into a
// no-op; the runtime-gating tests only make sense with the sites in.
#ifdef SLIPSTREAM_DISABLE_INVARIANTS

TEST(Invariants, CompiledOut)
{
    GTEST_SKIP()
        << "invariants compiled out (SLIPSTREAM_DISABLE_INVARIANTS)";
}

#else

TEST(Invariants, MacroThrowsOnlyWhenEnabled)
{
    {
        invariants::Scope on(true);
        EXPECT_TRUE(SLIP_INVARIANTS_ACTIVE());
        EXPECT_NO_THROW(SLIP_INVARIANT(1 + 1 == 2, "arithmetic"));
        EXPECT_THROW(SLIP_INVARIANT(1 + 1 == 3, "broken math"),
                     InvariantViolation);
    }
    {
        invariants::Scope off(false);
        EXPECT_FALSE(SLIP_INVARIANTS_ACTIVE());
        EXPECT_NO_THROW(SLIP_INVARIANT(false, "disabled, never fires"));
    }
}

TEST(Invariants, ViolationMessageCarriesContext)
{
    invariants::Scope on(true);
    try {
        SLIP_INVARIANT(false, "occupancy ", 7, " exceeds capacity ", 4);
        FAIL() << "expected InvariantViolation";
    } catch (const InvariantViolation &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("occupancy 7 exceeds capacity 4"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("invariant failed"), std::string::npos);
    }
}

TEST(Invariants, ScopeRestoresPreviousState)
{
    const bool before = invariants::enabled();
    {
        invariants::Scope a(true);
        EXPECT_TRUE(invariants::enabled());
        {
            invariants::Scope b(false);
            EXPECT_FALSE(invariants::enabled());
        }
        EXPECT_TRUE(invariants::enabled());
    }
    EXPECT_EQ(invariants::enabled(), before);
}

#endif // SLIPSTREAM_DISABLE_INVARIANTS

} // namespace
} // namespace slip::fuzz
