#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "harness/table.hh"

namespace slip
{
namespace
{

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    // Header, rule, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    // First column left-aligned: both rows start at column 0.
    EXPECT_EQ(out.find("a "), out.find('\n') * 0 + out.find("a "));
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Second column right-aligned: "22" ends at the same offset as
    // the header's "value".
    std::istringstream is(out);
    std::string header, rule, row1, row2;
    std::getline(is, header);
    std::getline(is, rule);
    std::getline(is, row1);
    std::getline(is, row2);
    EXPECT_EQ(header.size(), row1.size());
    EXPECT_EQ(row1.size(), row2.size());
    EXPECT_EQ(rule.size(), header.size());
}

TEST(Table, NumericHelpers)
{
    EXPECT_EQ(Table::fixed(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fixed(2.0, 0), "2");
    EXPECT_EQ(Table::percent(0.0734), "7.3%");
    EXPECT_EQ(Table::percent(-0.021, 1), "-2.1%");
    EXPECT_EQ(Table::count(12345), "12345");
}

TEST(Table, RowWidthMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(Table, EmptyTablePrintsHeaderAndRule)
{
    Table t({"col"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

} // namespace
} // namespace slip
