#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "assembler/assembler.hh"
#include "func/func_sim.hh"
#include "harness/experiment.hh"
#include "workloads/workloads.hh"

namespace slip
{
namespace
{

class WorkloadTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadTest, AssemblesAndHalts)
{
    const Workload w = getWorkload(GetParam(), WorkloadSize::Test);
    const Program p = assemble(w.source);
    FuncSim sim(p);
    const FuncRunResult r = sim.run(20'000'000);
    EXPECT_TRUE(r.halted) << w.name;
    EXPECT_FALSE(r.output.empty()) << w.name;
    // Test size stays small enough for unit testing.
    EXPECT_LT(r.instCount, 1'000'000u) << w.name;
    EXPECT_GT(r.instCount, 10'000u) << w.name;
}

TEST_P(WorkloadTest, SSModelMatchesFunctional)
{
    const Workload w = getWorkload(GetParam(), WorkloadSize::Test);
    const Program p = assemble(w.source);
    const std::string want = goldenOutput(p);
    const RunMetrics m = runSS(p, ss64x4Params(), "SS(64x4)", want);
    EXPECT_TRUE(m.outputCorrect) << w.name;
    EXPECT_GT(m.ipc, 0.2) << w.name;
    EXPECT_LE(m.ipc, 4.0) << w.name;
}

TEST_P(WorkloadTest, SlipstreamMatchesFunctional)
{
    const Workload w = getWorkload(GetParam(), WorkloadSize::Test);
    const Program p = assemble(w.source);
    const std::string want = goldenOutput(p);
    const RunMetrics m =
        runSlipstream(p, cmp2x64x4Params(), want);
    EXPECT_TRUE(m.outputCorrect) << w.name;
}

// Assemble helper that keeps programs alive for the FuncSim refs.
const Program &
assembleCache(const std::string &src)
{
    static std::vector<std::unique_ptr<Program>> cache;
    cache.push_back(std::make_unique<Program>(assemble(src)));
    return *cache.back();
}

TEST_P(WorkloadTest, SizesScaleDynamicCount)
{
    const Workload test = getWorkload(GetParam(), WorkloadSize::Test);
    const Workload small = getWorkload(GetParam(), WorkloadSize::Small);
    FuncSim a(assembleCache(test.source));
    FuncSim b(assembleCache(small.source));
    // Use run limits generous enough for Small.
    const uint64_t na = a.run(100'000'000).instCount;
    const uint64_t nb = b.run(100'000'000).instCount;
    EXPECT_GT(nb, na * 2) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllEight, WorkloadTest,
    ::testing::Values("compress", "gcc", "go", "jpeg", "li", "m88ksim",
                      "perl", "vortex"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(Workloads, RegistryHasAllEightInPaperOrder)
{
    const auto all = allWorkloads(WorkloadSize::Test);
    ASSERT_EQ(all.size(), 8u);
    EXPECT_EQ(all[0].name, "compress");
    EXPECT_EQ(all[5].name, "m88ksim");
    for (const Workload &w : all) {
        EXPECT_FALSE(w.substitutes.empty());
        EXPECT_FALSE(w.description.empty());
        EXPECT_FALSE(w.source.empty());
    }
}

TEST(Workloads, UnknownNameIsFatal)
{
    EXPECT_THROW(getWorkload("nonesuch", WorkloadSize::Test),
                 FatalError);
}

TEST(Workloads, DeterministicAcrossRuns)
{
    const Workload w = getWorkload("compress", WorkloadSize::Test);
    const Program p1 = assemble(w.source);
    const Program p2 = assemble(w.source);
    FuncSim a(p1), b(p2);
    EXPECT_EQ(a.run().output, b.run().output);
}

} // namespace
} // namespace slip
