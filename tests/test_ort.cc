#include <gtest/gtest.h>

#include "slipstream/operand_rename_table.hh"

namespace slip
{
namespace
{

OrtProducer
prod(uint64_t packet, uint8_t slot)
{
    return OrtProducer{packet, slot};
}

TEST(Ort, FreshWriteKillsNothing)
{
    OperandRenameTable ort;
    const OrtWriteResult w = ort.writeReg(5, 100, prod(1, 0));
    EXPECT_FALSE(w.nonModifying);
    EXPECT_FALSE(w.killedValid);
}

TEST(Ort, SameValueWriteIsNonModifying)
{
    OperandRenameTable ort;
    ort.writeReg(5, 100, prod(1, 0));
    const OrtWriteResult w = ort.writeReg(5, 100, prod(1, 3));
    EXPECT_TRUE(w.nonModifying);
    EXPECT_FALSE(w.killedValid);
    // The old producer stays live: a later different write kills the
    // ORIGINAL producer, not the non-modifying one.
    const OrtWriteResult w2 = ort.writeReg(5, 200, prod(1, 5));
    ASSERT_TRUE(w2.killedValid);
    EXPECT_EQ(w2.killed, prod(1, 0));
}

TEST(Ort, DifferentValueKillsAndReportsUnreferenced)
{
    OperandRenameTable ort;
    ort.writeReg(5, 100, prod(1, 0));
    const OrtWriteResult w = ort.writeReg(5, 200, prod(1, 4));
    ASSERT_TRUE(w.killedValid);
    EXPECT_EQ(w.killed, prod(1, 0));
    EXPECT_TRUE(w.killedUnreferenced); // never read
}

TEST(Ort, ReadSetsReferenceBit)
{
    OperandRenameTable ort;
    ort.writeReg(5, 100, prod(1, 0));
    const OrtProducer *p = ort.readReg(5);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, prod(1, 0));
    const OrtWriteResult w = ort.writeReg(5, 200, prod(1, 4));
    ASSERT_TRUE(w.killedValid);
    EXPECT_FALSE(w.killedUnreferenced);
}

TEST(Ort, ZeroRegisterIsInert)
{
    OperandRenameTable ort;
    EXPECT_EQ(ort.readReg(kZeroReg), nullptr);
    const OrtWriteResult w = ort.writeReg(kZeroReg, 5, prod(1, 0));
    EXPECT_FALSE(w.nonModifying);
    EXPECT_FALSE(w.killedValid);
    EXPECT_EQ(ort.readReg(kZeroReg), nullptr);
}

TEST(Ort, MemoryLocationsTrackedLikeRegisters)
{
    OperandRenameTable ort;
    ort.writeMem(0x2000, 8, 42, prod(1, 1));
    EXPECT_TRUE(ort.writeMem(0x2000, 8, 42, prod(1, 2)).nonModifying);
    const OrtProducer *p = ort.readMem(0x2000, 8);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, prod(1, 1));
    const OrtWriteResult w = ort.writeMem(0x2000, 8, 43, prod(2, 0));
    ASSERT_TRUE(w.killedValid);
    EXPECT_FALSE(w.killedUnreferenced);
}

TEST(Ort, DifferentSizesAreDistinctLocations)
{
    OperandRenameTable ort;
    ort.writeMem(0x2000, 8, 42, prod(1, 0));
    // A 4-byte write to the same address is a different tracked
    // location: no kill, no non-modifying detection.
    const OrtWriteResult w = ort.writeMem(0x2000, 4, 42, prod(1, 1));
    EXPECT_FALSE(w.nonModifying);
    EXPECT_FALSE(w.killedValid);
    EXPECT_EQ(ort.memEntryCount(), 2u);
}

TEST(Ort, InvalidateProducerKeepsValueForSvDetection)
{
    OperandRenameTable ort;
    ort.writeReg(5, 100, prod(1, 0));
    ort.invalidateProducer(1);
    // Producer gone: reads find no producer, overwrites kill nothing.
    EXPECT_EQ(ort.readReg(5), nullptr);
    // But the value survives: a same-value write is still detected.
    EXPECT_TRUE(ort.writeReg(5, 100, prod(2, 0)).nonModifying);
}

TEST(Ort, InvalidateProducerSkipsNewerProducers)
{
    OperandRenameTable ort;
    ort.writeReg(5, 100, prod(1, 0));
    ort.writeReg(5, 200, prod(2, 0));
    ort.invalidateProducer(1); // r5's producer is now packet 2
    const OrtProducer *p = ort.readReg(5);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->packetNum, 2u);
}

TEST(Ort, KillAfterInvalidationYieldsNoVictim)
{
    OperandRenameTable ort;
    ort.writeMem(0x100, 8, 1, prod(1, 0));
    ort.invalidateProducer(1);
    const OrtWriteResult w = ort.writeMem(0x100, 8, 2, prod(9, 0));
    EXPECT_FALSE(w.killedValid);
}

TEST(Ort, ResetClearsEverything)
{
    OperandRenameTable ort;
    ort.writeReg(5, 1, prod(1, 0));
    ort.writeMem(0x100, 8, 1, prod(1, 1));
    ort.reset();
    EXPECT_EQ(ort.readReg(5), nullptr);
    EXPECT_EQ(ort.readMem(0x100, 8), nullptr);
    EXPECT_EQ(ort.memEntryCount(), 0u);
    // Values did not survive: same-value write is not non-modifying.
    EXPECT_FALSE(ort.writeReg(5, 1, prod(2, 0)).nonModifying);
}

} // namespace
} // namespace slip
