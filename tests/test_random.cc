#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/random.hh"

namespace slip
{
namespace
{

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(9);
    bool seen[8] = {};
    for (int i = 0; i < 500; ++i)
        seen[rng.below(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25);
    EXPECT_GT(hits, 2100);
    EXPECT_LT(hits, 2900);
}

// --- stream derivation (splitmix-style) -----------------------------

/** First `n` draws never coincide between two generators. */
bool
streamsDisjoint(Rng a, Rng b, int n = 100)
{
    int same = 0;
    for (int i = 0; i < n; ++i)
        same += a.next() == b.next();
    return same == 0;
}

TEST(RngStreams, DeterministicForEqualSeedAndStream)
{
    Rng a(123, 7), b(123, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngStreams, AdditiveAliasingDoesNotCollide)
{
    // The failure mode the derivation exists to kill: with naive
    // Rng(seed + stream), (0, 5) and (5, 0) would be the same
    // generator. Streams must decorrelate them.
    EXPECT_TRUE(streamsDisjoint(Rng(0, 5), Rng(5, 0)));
    EXPECT_TRUE(streamsDisjoint(Rng(3, 2), Rng(2, 3)));
    EXPECT_TRUE(streamsDisjoint(Rng(10, 90), Rng(90, 10)));
}

TEST(RngStreams, StreamZeroDiffersFromSingleSeedCtor)
{
    // Rng(s, 0) is its own stream, not an alias of Rng(s).
    EXPECT_TRUE(streamsDisjoint(Rng(42, 0), Rng(42)));
}

TEST(RngStreams, NeighboringSeedsSameStreamDiverge)
{
    // Parallel fuzz jobs draw (seed, sameStream) with consecutive
    // seeds; their programs must be unrelated.
    EXPECT_TRUE(streamsDisjoint(Rng(7, 99), Rng(8, 99)));
}

TEST(RngStreams, SameSeedDifferentStreamsDiverge)
{
    // One seed fanned out to per-subsystem streams.
    EXPECT_TRUE(streamsDisjoint(Rng(7, 1), Rng(7, 2)));
    EXPECT_TRUE(streamsDisjoint(Rng(7, 1), Rng(7, 1'000'000)));
}

TEST(RngStreams, GridHasNoPairwiseCollisions)
{
    // A small (seed, stream) grid: every pair of distinct generators
    // has fully disjoint 32-draw prefixes.
    constexpr int kN = 6;
    std::vector<std::array<uint64_t, 32>> prefixes;
    for (uint64_t seed = 0; seed < kN; ++seed) {
        for (uint64_t stream = 0; stream < kN; ++stream) {
            Rng rng(seed, stream);
            std::array<uint64_t, 32> p;
            for (uint64_t &v : p)
                v = rng.next();
            prefixes.push_back(p);
        }
    }
    for (size_t i = 0; i < prefixes.size(); ++i) {
        for (size_t j = i + 1; j < prefixes.size(); ++j) {
            int same = 0;
            for (int k = 0; k < 32; ++k)
                same += prefixes[i][k] == prefixes[j][k];
            EXPECT_EQ(same, 0)
                << "generators " << i << " and " << j << " overlap";
        }
    }
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

} // namespace
} // namespace slip
