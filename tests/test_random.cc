#include <gtest/gtest.h>

#include "common/random.hh"

namespace slip
{
namespace
{

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(9);
    bool seen[8] = {};
    for (int i = 0; i < 500; ++i)
        seen[rng.below(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25);
    EXPECT_GT(hits, 2100);
    EXPECT_LT(hits, 2900);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

} // namespace
} // namespace slip
