#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "func/func_sim.hh"
#include "uarch/ss_processor.hh"

namespace slip
{
namespace
{

const char *kLoopProgram = R"(
.data
arr: .space 256
.text
main:
    la   a0, arr
    li   t0, 0
fill:
    slli t1, t0, 3
    add  t1, t1, a0
    mul  t2, t0, t0
    sd   t2, 0(t1)
    addi t0, t0, 1
    li   t3, 32
    blt  t0, t3, fill
    li   t0, 0
    li   t4, 0
sum:
    slli t1, t0, 3
    add  t1, t1, a0
    ld   t2, 0(t1)
    add  t4, t4, t2
    addi t0, t0, 1
    li   t3, 32
    blt  t0, t3, sum
    putn t4
    halt
)";

TEST(SSProcessor, MatchesFunctionalSimulator)
{
    Program p = assemble(kLoopProgram);
    FuncSim func(p);
    const FuncRunResult golden = func.run();

    SSProcessor proc(p);
    const SSRunResult r = proc.run();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.output, golden.output);
    EXPECT_EQ(r.retired, golden.instCount);
}

TEST(SSProcessor, IpcIsPlausible)
{
    Program p = assemble(kLoopProgram);
    SSProcessor proc(p);
    const SSRunResult r = proc.run();
    EXPECT_GT(r.ipc(), 0.3);
    EXPECT_LE(r.ipc(), 4.0); // retire width bounds IPC
}

TEST(SSProcessor, WiderMachineIsFasterOnIlp)
{
    // Loop with abundant ILP: SS(128x8) must beat SS(64x4).
    const char *src = R"(
main:
    li   s0, 200
loop:
    addi t0, t0, 1
    addi t1, t1, 2
    addi t2, t2, 3
    addi t3, t3, 4
    addi t4, t4, 5
    addi t5, t5, 6
    addi t6, t6, 7
    addi t7, t7, 8
    addi s0, s0, -1
    bnez s0, loop
    halt
)";
    Program p = assemble(src);
    SSProcessor narrow(p);
    const Cycle narrowCycles = narrow.run().cycles;
    SSProcessor wide(p, CoreParams::wide8());
    const Cycle wideCycles = wide.run().cycles;
    EXPECT_LT(wideCycles, narrowCycles);
}

TEST(SSProcessor, TracePredictorReducesMispredicts)
{
    // A stable loop: after warmup, branch mispredictions should be
    // rare relative to total branches.
    Program p = assemble(R"(
main:
    li  s0, 2000
loop:
    addi s1, s1, 1
    addi s0, s0, -1
    bnez s0, loop
    putn s1
    halt
)");
    SSProcessor proc(p);
    const SSRunResult r = proc.run();
    EXPECT_EQ(r.output, "2000\n");
    EXPECT_LT(r.mispPer1000(), 10.0);
}

TEST(SSProcessor, MaxCyclesBoundsRun)
{
    Program p = assemble("main: j main\n");
    SSProcessor proc(p);
    const SSRunResult r = proc.run(500);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.cycles, 500u);
}

TEST(SSProcessor, RecursiveProgramMatchesFunctional)
{
    const char *src = R"(
main:
    li   a0, 8
    call fib
    putn a1
    halt
fib:
    push ra
    li   t0, 2
    blt  a0, t0, fib_base
    push a0
    addi a0, a0, -1
    call fib
    pop  a0
    push a1
    addi a0, a0, -2
    call fib
    pop  t1
    add  a1, a1, t1
    pop  ra
    ret
fib_base:
    mv   a1, a0
    pop  ra
    ret
)";
    Program p = assemble(src);
    FuncSim func(p);
    const FuncRunResult golden = func.run();
    EXPECT_EQ(golden.output, "21\n");

    SSProcessor proc(p);
    const SSRunResult r = proc.run();
    EXPECT_EQ(r.output, golden.output);
    EXPECT_EQ(r.retired, golden.instCount);
}

} // namespace
} // namespace slip
