#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "isa/regnames.hh"
#include "mem/memory.hh"

namespace slip
{
namespace
{

TEST(Assembler, MinimalProgram)
{
    Program p = assemble("main: halt\n");
    EXPECT_EQ(p.numInsts(), 1u);
    EXPECT_EQ(p.entry(), layout::kTextBase);
    EXPECT_EQ(p.fetch(p.entry()).op, Opcode::HALT);
}

TEST(Assembler, EntryDefaultsToTextBaseWithoutMain)
{
    Program p = assemble("start: nop\nhalt\n");
    EXPECT_EQ(p.entry(), layout::kTextBase);
    EXPECT_EQ(p.symbol("start"), layout::kTextBase);
}

TEST(Assembler, BranchOffsetsResolveForwardAndBackward)
{
    Program p = assemble(R"(
main:
    beq  a0, a1, fwd
back:
    nop
fwd:
    bne  a0, a1, back
    halt
)");
    const StaticInst &beq = p.fetch(layout::kTextBase);
    EXPECT_EQ(beq.op, Opcode::BEQ);
    EXPECT_EQ(beq.imm, 2); // skips `back: nop`
    const StaticInst &bne = p.fetch(layout::kTextBase + 8);
    EXPECT_EQ(bne.imm, -1);
}

TEST(Assembler, PseudoLiSmall)
{
    Program p = assemble("main: li a0, 42\nhalt\n");
    const StaticInst &i = p.fetch(p.entry());
    EXPECT_EQ(i.op, Opcode::ADDI);
    EXPECT_EQ(i.rs1, reg::zero);
    EXPECT_EQ(i.imm, 42);
}

TEST(Assembler, PseudoLiMedium)
{
    // Needs lui+addi (always exactly two instructions).
    Program p = assemble("main: li a0, 100000\nnop\nhalt\n");
    EXPECT_EQ(p.fetch(p.entry()).op, Opcode::LUI);
    EXPECT_EQ(p.fetch(p.entry() + 4).op, Opcode::ADDI);
    EXPECT_EQ(p.fetch(p.entry() + 8).op, Opcode::NOP);
}

TEST(Assembler, LaResolvesDataAddress)
{
    Program p = assemble(R"(
.data
x: .dword 7
y: .dword 9
.text
main:
    la a0, y
    halt
)");
    EXPECT_EQ(p.symbol("x"), layout::kDataBase);
    EXPECT_EQ(p.symbol("y"), layout::kDataBase + 8);
}

TEST(Assembler, DataDirectivesLayOutCorrectly)
{
    Program p = assemble(R"(
.data
b:  .byte 1, 2
h:  .half 0x1234
.align 8
d:  .dword -1
s:  .asciz "ab"
sp: .space 3, 0x7f
.text
main: halt
)");
    Memory mem;
    p.loadInto(mem);
    const Addr base = layout::kDataBase;
    EXPECT_EQ(p.symbol("b"), base);
    EXPECT_EQ(mem.read(base, 1), 1u);
    EXPECT_EQ(mem.read(base + 1, 1), 2u);
    EXPECT_EQ(p.symbol("h"), base + 2);
    EXPECT_EQ(mem.read(base + 2, 2), 0x1234u);
    EXPECT_EQ(p.symbol("d"), base + 8); // aligned
    EXPECT_EQ(mem.read(base + 8, 8), ~0ull);
    EXPECT_EQ(p.symbol("s"), base + 16);
    EXPECT_EQ(mem.read(base + 16, 1), uint64_t('a'));
    EXPECT_EQ(mem.read(base + 18, 1), 0u); // NUL
    EXPECT_EQ(p.symbol("sp"), base + 19);
    EXPECT_EQ(mem.read(base + 19, 1), 0x7fu);
}

TEST(Assembler, EquConstants)
{
    Program p = assemble(R"(
.equ LIMIT, 5
.text
main:
    li a0, LIMIT
    halt
)");
    EXPECT_EQ(p.fetch(p.entry()).op, Opcode::LUI); // symbolic: lui+addi
}

TEST(Assembler, DwordCanHoldSymbols)
{
    Program p = assemble(R"(
.data
ptr: .dword target
target: .dword 0
.text
main: halt
)");
    Memory mem;
    p.loadInto(mem);
    EXPECT_EQ(mem.read(p.symbol("ptr"), 8), p.symbol("target"));
}

TEST(Assembler, PushPopAndCallRet)
{
    Program p = assemble(R"(
main:
    call f
    halt
f:
    push s0
    pop  s0
    ret
)");
    // call = jal ra; ret = jalr zero, 0(ra)
    EXPECT_EQ(p.fetch(p.entry()).op, Opcode::JAL);
    EXPECT_EQ(p.fetch(p.entry()).rd, reg::ra);
    const Addr f = p.symbol("f");
    EXPECT_EQ(p.fetch(f).op, Opcode::ADDI);      // sp -= 8
    EXPECT_EQ(p.fetch(f + 4).op, Opcode::SD);
    EXPECT_EQ(p.fetch(f + 8).op, Opcode::LD);
    EXPECT_EQ(p.fetch(f + 12).op, Opcode::ADDI); // sp += 8
    EXPECT_EQ(p.fetch(f + 16).op, Opcode::JALR);
}

TEST(Assembler, SwappedAndZeroBranchPseudos)
{
    Program p = assemble(R"(
main:
    bgt a0, a1, main
    beqz a2, main
    blez a3, main
    halt
)");
    const StaticInst &bgt = p.fetch(p.entry());
    EXPECT_EQ(bgt.op, Opcode::BLT);
    EXPECT_EQ(bgt.rs1, reg::a0 + 1); // operands swapped
    const StaticInst &beqz = p.fetch(p.entry() + 4);
    EXPECT_EQ(beqz.op, Opcode::BEQ);
    EXPECT_EQ(beqz.rs2, reg::zero);
    const StaticInst &blez = p.fetch(p.entry() + 8);
    EXPECT_EQ(blez.op, Opcode::BGE);
    EXPECT_EQ(blez.rs1, reg::zero);
}

TEST(Assembler, GlobalLoadStorePseudoUsesScratch)
{
    Program p = assemble(R"(
.data
v: .dword 0
.text
main:
    ld a0, v
    sd a0, v
    halt
)");
    // Each expands to la k9 (2 insts) + access.
    EXPECT_EQ(p.numInsts(), 7u);
    EXPECT_EQ(p.fetch(p.entry() + 8).op, Opcode::LD);
    EXPECT_EQ(p.fetch(p.entry() + 8).rs1, reg::k0 + 9);
}

TEST(Assembler, UserErrorsAreFatalWithoutCrashing)
{
    EXPECT_THROW(assemble("main: bad_mnemonic a0\n"), FatalError);
    EXPECT_THROW(assemble("main: addi a0, a1, 99999\n"), FatalError);
    EXPECT_THROW(assemble("main: j nowhere\n"), FatalError);
    EXPECT_THROW(assemble("x: nop\nx: nop\n"), FatalError); // dup label
    EXPECT_THROW(assemble(".data\nw: .word 1\nnop\n"), FatalError);
    EXPECT_THROW(assemble("main: add a0, a1\n"), FatalError);
    EXPECT_THROW(assemble(".text\n.word 3\n"), FatalError);
}

TEST(Assembler, ValidPcChecks)
{
    Program p = assemble("main: nop\nhalt\n");
    EXPECT_TRUE(p.validPc(p.entry()));
    EXPECT_TRUE(p.validPc(p.entry() + 4));
    EXPECT_FALSE(p.validPc(p.entry() + 8));
    EXPECT_FALSE(p.validPc(p.entry() + 2));
    EXPECT_FALSE(p.validPc(0));
    // Invalid pc fetches park on HALT rather than crashing.
    EXPECT_EQ(p.fetch(0xdead000).op, Opcode::HALT);
}

} // namespace
} // namespace slip
