#include <gtest/gtest.h>

#include "isa/regnames.hh"

namespace slip
{
namespace
{

TEST(RegNames, CanonicalNames)
{
    EXPECT_EQ(regName(0), "zero");
    EXPECT_EQ(regName(1), "ra");
    EXPECT_EQ(regName(2), "sp");
    EXPECT_EQ(regName(3), "fp");
    EXPECT_EQ(regName(4), "a0");
    EXPECT_EQ(regName(13), "a9");
    EXPECT_EQ(regName(14), "t0");
    EXPECT_EQ(regName(33), "t19");
    EXPECT_EQ(regName(34), "s0");
    EXPECT_EQ(regName(53), "s19");
    EXPECT_EQ(regName(54), "k0");
    EXPECT_EQ(regName(63), "k9");
}

TEST(RegNames, ParseAliases)
{
    EXPECT_EQ(parseRegName("zero"), std::optional<RegIndex>(0));
    EXPECT_EQ(parseRegName("sp"), std::optional<RegIndex>(2));
    EXPECT_EQ(parseRegName("a3"), std::optional<RegIndex>(7));
    EXPECT_EQ(parseRegName("t10"), std::optional<RegIndex>(24));
    EXPECT_EQ(parseRegName("s19"), std::optional<RegIndex>(53));
    EXPECT_EQ(parseRegName("k9"), std::optional<RegIndex>(63));
}

TEST(RegNames, ParseRawForm)
{
    EXPECT_EQ(parseRegName("r0"), std::optional<RegIndex>(0));
    EXPECT_EQ(parseRegName("r63"), std::optional<RegIndex>(63));
}

TEST(RegNames, RejectsOutOfRangeAndJunk)
{
    EXPECT_FALSE(parseRegName("r64").has_value());
    EXPECT_FALSE(parseRegName("a10").has_value());
    EXPECT_FALSE(parseRegName("t20").has_value());
    EXPECT_FALSE(parseRegName("s20").has_value());
    EXPECT_FALSE(parseRegName("x1").has_value());
    EXPECT_FALSE(parseRegName("").has_value());
    EXPECT_FALSE(parseRegName("t").has_value());
    EXPECT_FALSE(parseRegName("t1x").has_value());
}

TEST(RegNames, RoundTripAllRegisters)
{
    for (unsigned r = 0; r < kNumRegs; ++r) {
        auto parsed = parseRegName(regName(RegIndex(r)));
        ASSERT_TRUE(parsed.has_value()) << regName(RegIndex(r));
        EXPECT_EQ(*parsed, r);
    }
}

} // namespace
} // namespace slip
