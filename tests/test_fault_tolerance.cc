#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "func/func_sim.hh"
#include "slipstream/slipstream_processor.hh"

namespace slip
{
namespace
{

const char *kProgram = R"(
.data
arr: .space 2048
.text
main:
    la   a0, arr
    li   s5, 0              # outer repeats (program length ~15k)
again:
    li   s0, 0
fill:
    slli t0, s0, 3
    add  t0, t0, a0
    mul  t1, s0, s0
    sd   t1, 0(t0)
    addi t9, zero, 1     # removable bookkeeping
    addi s0, s0, 1
    li   t2, 256
    blt  s0, t2, fill
    li   s0, 0
    li   s1, 0
sum:
    slli t0, s0, 3
    add  t0, t0, a0
    ld   t1, 0(t0)
    add  s1, s1, t1
    addi s0, s0, 1
    li   t2, 256
    blt  s0, t2, sum
    addi s5, s5, 1
    li   t2, 4
    blt  s5, t2, again
    putn s1
    halt
)";

std::string
golden()
{
    Program p = assemble(kProgram);
    FuncSim sim(p);
    return sim.run().output;
}

SlipstreamRunResult
runWithFault(const FaultPlan &plan, bool reliableMode = false)
{
    Program p = assemble(kProgram);
    SlipstreamParams params;
    if (reliableMode)
        params.irPred.enabled = false;
    SlipstreamProcessor proc(p, params);
    proc.faultInjector().arm(plan);
    return proc.run();
}

TEST(FaultTolerance, CleanRunHasNoFaultOutcome)
{
    Program p = assemble(kProgram);
    SlipstreamProcessor proc(p);
    const SlipstreamRunResult r = proc.run();
    EXPECT_FALSE(r.faultOutcome.injected);
    EXPECT_EQ(r.output, golden());
}

TEST(FaultTolerance, AStreamFaultDetectedAndRecovered)
{
    // Scenario #1, A-side: the fault corrupts the A-stream copy of a
    // redundantly executed instruction; the R-stream's independent
    // computation exposes it as a "misprediction".
    const SlipstreamRunResult r =
        runWithFault({FaultTarget::AStream, 500, 3}, true);
    ASSERT_TRUE(r.faultOutcome.injected);
    EXPECT_TRUE(r.faultOutcome.targetWasRedundant);
    EXPECT_TRUE(r.faultOutcome.detected);
    EXPECT_GE(r.irMispredicts, 1u);
    EXPECT_EQ(r.output, golden()); // transparently recovered
}

TEST(FaultTolerance, RPipelineFaultOnRedundantInstructionRecovered)
{
    // Scenario #1, R-side: the checker's view disagrees with the
    // A-stream value; squash and re-execute.
    const SlipstreamRunResult r =
        runWithFault({FaultTarget::RPipeline, 700, 17}, true);
    ASSERT_TRUE(r.faultOutcome.injected);
    EXPECT_TRUE(r.faultOutcome.targetWasRedundant);
    EXPECT_TRUE(r.faultOutcome.detected);
    EXPECT_EQ(r.output, golden());
}

TEST(FaultTolerance, FaultsAcrossManyInjectionPointsAllRecovered)
{
    // In reliable mode every instruction is redundant: any single
    // value fault must be detected and the output stay golden.
    const std::string want = golden();
    for (uint64_t idx : {50ull, 999ull, 6333ull, 13500ull}) {
        for (FaultTarget t :
             {FaultTarget::AStream, FaultTarget::RPipeline}) {
            const SlipstreamRunResult r =
                runWithFault({t, idx, unsigned(idx % 61)}, true);
            ASSERT_TRUE(r.faultOutcome.injected)
                << "idx " << idx;
            EXPECT_TRUE(r.faultOutcome.detected) << "idx " << idx;
            EXPECT_EQ(r.output, want) << "idx " << idx;
        }
    }
}

TEST(FaultTolerance, SkippedRegionFaultIsSilent)
{
    // Scenario #2: with slipstreaming ON, find an instruction the
    // A-stream skipped and hit its R-stream copy: nothing compares
    // against it, so the fault reaches architectural state
    // undetected. (The paper's coverage hole.)
    const std::string want = golden();
    bool foundSilent = false;
    // Scan injection points in the second lap's fill loop, where
    // confidence has built and the A-stream is skipping the dead
    // bookkeeping writes.
    for (uint64_t idx = 4600; idx < 5900 && !foundSilent; idx += 7) {
        const SlipstreamRunResult r =
            runWithFault({FaultTarget::RPipeline, idx, 0});
        if (!r.faultOutcome.injected)
            continue;
        if (r.faultOutcome.targetWasRedundant)
            continue;
        foundSilent = true;
        EXPECT_FALSE(r.faultOutcome.detected);
    }
    EXPECT_TRUE(foundSilent)
        << "no skipped-slot injection point found — removal absent?";
}

TEST(FaultTolerance, ReliableModeHasNoSilentVictims)
{
    // With removal disabled, every R instruction is compared: there
    // is no scenario-#2 hole.
    for (uint64_t idx = 100; idx < 14000; idx += 1721) {
        const SlipstreamRunResult r =
            runWithFault({FaultTarget::RPipeline, idx, 5}, true);
        if (!r.faultOutcome.injected)
            continue;
        EXPECT_TRUE(r.faultOutcome.targetWasRedundant) << idx;
        EXPECT_TRUE(r.faultOutcome.detected) << idx;
    }
}

TEST(FaultTolerance, FaultBeyondProgramNeverFires)
{
    const SlipstreamRunResult r =
        runWithFault({FaultTarget::RPipeline, 100'000'000, 1});
    EXPECT_FALSE(r.faultOutcome.injected);
    EXPECT_EQ(r.output, golden());
}

} // namespace
} // namespace slip
