#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "func/func_sim.hh"
#include "slipstream/slipstream_processor.hh"

namespace slip
{
namespace
{

const char *kProgram = R"(
.data
arr: .space 2048
.text
main:
    la   a0, arr
    li   s5, 0              # outer repeats (program length ~15k)
again:
    li   s0, 0
fill:
    slli t0, s0, 3
    add  t0, t0, a0
    mul  t1, s0, s0
    sd   t1, 0(t0)
    addi t9, zero, 1     # removable bookkeeping
    addi s0, s0, 1
    li   t2, 256
    blt  s0, t2, fill
    li   s0, 0
    li   s1, 0
sum:
    slli t0, s0, 3
    add  t0, t0, a0
    ld   t1, 0(t0)
    add  s1, s1, t1
    addi s0, s0, 1
    li   t2, 256
    blt  s0, t2, sum
    addi s5, s5, 1
    li   t2, 4
    blt  s5, t2, again
    putn s1
    halt
)";

std::string
golden()
{
    Program p = assemble(kProgram);
    FuncSim sim(p);
    return sim.run().output;
}

SlipstreamRunResult
runWithFault(const FaultPlan &plan, bool reliableMode = false)
{
    Program p = assemble(kProgram);
    SlipstreamParams params;
    if (reliableMode)
        params.irPred.enabled = false;
    SlipstreamProcessor proc(p, params);
    proc.faultInjector().arm(plan);
    return proc.run();
}

TEST(FaultTolerance, CleanRunHasNoFaultOutcome)
{
    Program p = assemble(kProgram);
    SlipstreamProcessor proc(p);
    const SlipstreamRunResult r = proc.run();
    EXPECT_FALSE(r.faultOutcome.injected);
    EXPECT_EQ(r.output, golden());
}

TEST(FaultTolerance, AStreamFaultDetectedAndRecovered)
{
    // Scenario #1, A-side: the fault corrupts the A-stream copy of a
    // redundantly executed instruction; the R-stream's independent
    // computation exposes it as a "misprediction".
    const SlipstreamRunResult r =
        runWithFault({FaultTarget::AStream, 500, 3}, true);
    ASSERT_TRUE(r.faultOutcome.injected);
    EXPECT_TRUE(r.faultOutcome.targetWasRedundant);
    EXPECT_TRUE(r.faultOutcome.detected);
    EXPECT_GE(r.irMispredicts, 1u);
    EXPECT_EQ(r.output, golden()); // transparently recovered
}

TEST(FaultTolerance, RPipelineFaultOnRedundantInstructionRecovered)
{
    // Scenario #1, R-side: the checker's view disagrees with the
    // A-stream value; squash and re-execute.
    const SlipstreamRunResult r =
        runWithFault({FaultTarget::RPipeline, 700, 17}, true);
    ASSERT_TRUE(r.faultOutcome.injected);
    EXPECT_TRUE(r.faultOutcome.targetWasRedundant);
    EXPECT_TRUE(r.faultOutcome.detected);
    EXPECT_EQ(r.output, golden());
}

TEST(FaultTolerance, FaultsAcrossManyInjectionPointsAllRecovered)
{
    // In reliable mode every instruction is redundant: any single
    // value fault must be detected and the output stay golden.
    const std::string want = golden();
    for (uint64_t idx : {50ull, 999ull, 6333ull, 13500ull}) {
        for (FaultTarget t :
             {FaultTarget::AStream, FaultTarget::RPipeline}) {
            const SlipstreamRunResult r =
                runWithFault({t, idx, unsigned(idx % 61)}, true);
            ASSERT_TRUE(r.faultOutcome.injected)
                << "idx " << idx;
            EXPECT_TRUE(r.faultOutcome.detected) << "idx " << idx;
            EXPECT_EQ(r.output, want) << "idx " << idx;
        }
    }
}

TEST(FaultTolerance, SkippedRegionFaultIsSilent)
{
    // Scenario #2: with slipstreaming ON, find an instruction the
    // A-stream skipped and hit its R-stream copy: nothing compares
    // against it, so the fault reaches architectural state
    // undetected. (The paper's coverage hole.)
    const std::string want = golden();
    bool foundSilent = false;
    // Scan injection points in the second lap's fill loop, where
    // confidence has built and the A-stream is skipping the dead
    // bookkeeping writes.
    for (uint64_t idx = 4600; idx < 5900 && !foundSilent; idx += 7) {
        const SlipstreamRunResult r =
            runWithFault({FaultTarget::RPipeline, idx, 0});
        if (!r.faultOutcome.injected)
            continue;
        if (r.faultOutcome.targetWasRedundant)
            continue;
        foundSilent = true;
        EXPECT_FALSE(r.faultOutcome.detected);
    }
    EXPECT_TRUE(foundSilent)
        << "no skipped-slot injection point found — removal absent?";
}

TEST(FaultTolerance, ReliableModeHasNoSilentVictims)
{
    // With removal disabled, every R instruction is compared: there
    // is no scenario-#2 hole.
    for (uint64_t idx = 100; idx < 14000; idx += 1721) {
        const SlipstreamRunResult r =
            runWithFault({FaultTarget::RPipeline, idx, 5}, true);
        if (!r.faultOutcome.injected)
            continue;
        EXPECT_TRUE(r.faultOutcome.targetWasRedundant) << idx;
        EXPECT_TRUE(r.faultOutcome.detected) << idx;
    }
}

TEST(FaultTolerance, FaultBeyondProgramNeverFires)
{
    const SlipstreamRunResult r =
        runWithFault({FaultTarget::RPipeline, 100'000'000, 1});
    EXPECT_FALSE(r.faultOutcome.injected);
    EXPECT_EQ(r.output, golden());
}

TEST(FaultTolerance, DelayBufferBranchFaultDetected)
{
    // A branch outcome flipped in transit between the cores: the
    // R-stream's own computation of the branch disagrees.
    const SlipstreamRunResult r =
        runWithFault({FaultTarget::DelayBufferBranch, 600, 0}, true);
    ASSERT_TRUE(r.faultOutcome.injected);
    EXPECT_TRUE(r.faultOutcome.detected);
    EXPECT_GE(r.irMispredicts, 1u);
    EXPECT_EQ(r.output, golden());
}

TEST(FaultTolerance, DelayBufferValueFaultDetected)
{
    // A value payload corrupted in transit is always compared against
    // the R-stream's redundant computation: always detectable.
    const SlipstreamRunResult r =
        runWithFault({FaultTarget::DelayBufferValue, 500, 7}, true);
    ASSERT_TRUE(r.faultOutcome.injected);
    EXPECT_TRUE(r.faultOutcome.targetWasRedundant);
    EXPECT_TRUE(r.faultOutcome.detected);
    EXPECT_EQ(r.output, golden());
}

TEST(FaultTolerance, ARegisterFaultHealedByRecovery)
{
    // Corrupt a live A-stream register (a0, the array base, read on
    // every iteration): the wrong values it produces disagree with
    // the R-stream, and the recovery resynchronizes the whole A
    // context — healing the register whatever else triggered it.
    const SlipstreamRunResult r = runWithFault(
        {FaultTarget::ARegister, 5000, 3, RegIndex(4)}, true);
    ASSERT_TRUE(r.faultOutcome.injected);
    EXPECT_TRUE(r.faultOutcome.detected);
    EXPECT_GE(r.irMispredicts, 1u);
    EXPECT_EQ(r.output, golden());
    // Detection latency was stamped by the repairing recovery.
    ASSERT_EQ(r.faultOutcome.records.size(), 1u);
    EXPECT_TRUE(r.faultOutcome.records[0].fired);
    EXPECT_GE(r.faultOutcome.records[0].detectCycle,
              r.faultOutcome.records[0].injectCycle);
}

TEST(FaultTolerance, IRPredictorFaultsNeverCorruptOutput)
{
    // Predictor SRAM corruption (confidence or ir-vec bits) can only
    // derail the A-stream; the R-stream's checks always repair it.
    const std::string want = golden();
    for (unsigned bit : {0u, 3u, 8u, 20u, 40u}) {
        const SlipstreamRunResult r =
            runWithFault({FaultTarget::IRPredictor, 4000, bit});
        EXPECT_TRUE(r.halted) << "bit " << bit;
        EXPECT_EQ(r.output, want) << "bit " << bit;
    }
}

TEST(FaultTolerance, MemoryCellFaultIsOutsideSphereOfReplication)
{
    // Both streams read the corrupted cell: redundancy cannot see it.
    // The run must still complete, and the fault must never be
    // counted as detected (the paper leaves main memory to ECC).
    const SlipstreamRunResult r =
        runWithFault({FaultTarget::MemoryCell, 5000, 2});
    EXPECT_TRUE(r.halted);
    ASSERT_TRUE(r.faultOutcome.injected);
    EXPECT_FALSE(r.faultOutcome.detected);
}

TEST(FaultTolerance, AStreamStallHealedByWatchdog)
{
    // A wedged A-stream front end starves the R-stream of delay
    // buffer packets; only the forward-progress watchdog can expose
    // it, and the forced recovery heals it.
    Program p = assemble(kProgram);
    SlipstreamParams params;
    params.watchdog.stallCycles = 2000;
    SlipstreamProcessor proc(p, params);
    proc.faultInjector().arm({FaultTarget::AStreamStall, 3000, 0});
    const SlipstreamRunResult r = proc.run();
    EXPECT_TRUE(r.halted);
    EXPECT_GE(r.watchdogTrips, 1u);
    ASSERT_TRUE(r.faultOutcome.injected);
    EXPECT_TRUE(r.faultOutcome.detected);
    EXPECT_EQ(r.output, golden());
}

TEST(FaultTolerance, ExhaustedWatchdogReportsHung)
{
    // With no trips allowed, a permanent stall ends the run as hung
    // instead of spinning forever.
    Program p = assemble(kProgram);
    SlipstreamParams params;
    params.watchdog.stallCycles = 1000;
    params.watchdog.maxTrips = 0;
    SlipstreamProcessor proc(p, params);
    proc.faultInjector().arm({FaultTarget::AStreamStall, 3000, 0});
    const SlipstreamRunResult r = proc.run();
    EXPECT_FALSE(r.halted);
    EXPECT_TRUE(r.hung);
    EXPECT_EQ(r.watchdogTrips, 1u);
}

TEST(FaultTolerance, CycleCapReportsHung)
{
    Program p = assemble(kProgram);
    SlipstreamProcessor proc(p);
    proc.faultInjector().arm({FaultTarget::AStreamStall, 3000, 0});
    const SlipstreamRunResult r = proc.run(30'000);
    EXPECT_FALSE(r.halted);
    EXPECT_TRUE(r.hung);
}

TEST(FaultTolerance, HighFaultRateDegradesToROnly)
{
    // A dense burst of A-side faults forces recovery after recovery;
    // past the threshold the processor sheds the A-stream and
    // finishes R-only — with the output still golden.
    Program p = assemble(kProgram);
    SlipstreamParams params;
    params.irPred.enabled = false; // reliable: every fault detected
    params.degrade.windowCycles = 100'000;
    params.degrade.recoveryThreshold = 4;
    SlipstreamProcessor proc(p, params);
    std::vector<FaultPlan> burst;
    for (uint64_t i = 0; i < 10; ++i)
        burst.push_back({FaultTarget::AStream, 4000 + 300 * i, 5});
    proc.faultInjector().arm(burst);
    const SlipstreamRunResult r = proc.run();
    EXPECT_TRUE(r.halted);
    EXPECT_TRUE(r.degraded);
    EXPECT_GT(r.degradedAtCycle, 0u);
    EXPECT_GT(r.rOnlyRetired, 0u);
    EXPECT_EQ(r.output, golden());
}

TEST(FaultTolerance, MultiFaultPlanRecordsEachFault)
{
    Program p = assemble(kProgram);
    SlipstreamParams params;
    params.irPred.enabled = false;
    SlipstreamProcessor proc(p, params);
    proc.faultInjector().arm(
        std::vector<FaultPlan>{{FaultTarget::AStream, 500, 3},
                               {FaultTarget::RPipeline, 4000, 11},
                               {FaultTarget::DelayBufferValue, 9000, 7}});
    const SlipstreamRunResult r = proc.run();
    EXPECT_EQ(r.faultOutcome.planned, 3u);
    EXPECT_EQ(r.faultOutcome.numInjected, 3u);
    EXPECT_EQ(r.faultOutcome.numDetected, 3u);
    EXPECT_TRUE(r.faultOutcome.detected);
    EXPECT_EQ(r.output, golden());
    ASSERT_EQ(r.faultOutcome.records.size(), 3u);
    for (const FaultRecord &rec : r.faultOutcome.records) {
        EXPECT_TRUE(rec.fired);
        EXPECT_TRUE(rec.detected);
    }
}

} // namespace
} // namespace slip
