#include <gtest/gtest.h>

#include "slipstream/recovery_controller.hh"

namespace slip
{
namespace
{

class RecoveryTest : public ::testing::Test
{
  protected:
    RecoveryTest()
        : rc(rMem)
    {
    }

    Memory rMem;
    RecoveryController rc;
};

TEST_F(RecoveryTest, AStreamReadsSeeOverlayOverBase)
{
    rMem.write(0x100, 8, 111);
    EXPECT_EQ(rc.read(0x100, 8), 111u); // falls through to R memory
    rc.write(0x100, 8, 222);            // A-stream store
    EXPECT_EQ(rc.read(0x100, 8), 222u); // A sees its own store
    EXPECT_EQ(rMem.read(0x100, 8), 111u); // R memory untouched
}

TEST_F(RecoveryTest, PartialOverlayComposition)
{
    rMem.write(0x200, 8, 0x1111111111111111ull);
    rc.write(0x202, 2, 0xaabb); // A stores 2 bytes in the middle
    EXPECT_EQ(rc.read(0x200, 8), 0x11111111aabb1111ull);
}

TEST_F(RecoveryTest, UndoWindowClosesWhenRStoreRetires)
{
    rc.write(0x300, 8, 42);
    EXPECT_EQ(rc.trackedAddresses(), 1u);
    // The companion R-stream store retires with the same data.
    rMem.write(0x300, 8, 42);
    rc.onRStoreRetired(0x300, 8);
    EXPECT_EQ(rc.trackedAddresses(), 0u);
    EXPECT_EQ(rc.read(0x300, 8), 42u); // still reads correctly
}

TEST_F(RecoveryTest, PendingYoungerStoreKeepsTracking)
{
    rc.write(0x300, 8, 1); // older A store
    rc.write(0x300, 8, 2); // younger A store, still in flight
    rMem.write(0x300, 8, 1);
    rc.onRStoreRetired(0x300, 8); // matches the older store only
    // The younger store is outstanding: overlay must persist.
    EXPECT_EQ(rc.trackedAddresses(), 1u);
    EXPECT_EQ(rc.read(0x300, 8), 2u);
    rMem.write(0x300, 8, 2);
    rc.onRStoreRetired(0x300, 8);
    EXPECT_EQ(rc.trackedAddresses(), 0u);
}

TEST_F(RecoveryTest, DivergentValueKeepsUndoEntry)
{
    rc.write(0x400, 8, 99); // A wrote a (possibly wrong) value
    rMem.write(0x400, 8, 77); // R computed something else
    rc.onRStoreRetired(0x400, 8);
    // Disagreement: the byte stays tracked until recovery.
    EXPECT_EQ(rc.trackedAddresses(), 1u);
}

TEST_F(RecoveryTest, DoSetTracksSkippedStoresUntilVerified)
{
    rc.onSkippedStoreRetired(5, 0x500, 8);
    rc.onSkippedStoreRetired(5, 0x508, 8);
    rc.onSkippedStoreRetired(6, 0x600, 8);
    EXPECT_EQ(rc.trackedAddresses(), 3u);
    rc.onTraceVerified(5);
    EXPECT_EQ(rc.trackedAddresses(), 1u);
    rc.onTraceVerified(6);
    EXPECT_EQ(rc.trackedAddresses(), 0u);
    rc.onTraceVerified(7); // unknown trace: harmless
}

TEST_F(RecoveryTest, RecoveryCollapsesOntoRMemory)
{
    rMem.write(0x700, 8, 1);
    rc.write(0x700, 8, 2);
    rc.onSkippedStoreRetired(3, 0x710, 8);
    rc.recover();
    EXPECT_EQ(rc.trackedAddresses(), 0u);
    EXPECT_EQ(rc.read(0x700, 8), 1u); // overlay discarded
}

TEST_F(RecoveryTest, LatencyModelMatchesTable2)
{
    // Minimum: 5 startup + 64 regs / 4 per cycle = 21 cycles.
    EXPECT_EQ(rc.recover(), 21u);

    // With 8 tracked granules: + ceil(8/4) = 2 memory cycles.
    for (int i = 0; i < 8; ++i)
        rc.write(0x800 + 8 * i, 8, i);
    EXPECT_EQ(rc.trackedAddresses(), 8u);
    EXPECT_EQ(rc.recover(), 23u);
}

TEST_F(RecoveryTest, TrackedCountUsesGranules)
{
    // 8 single-byte A-stores within one 8-byte granule = 1 tracked.
    for (int i = 0; i < 8; ++i)
        rc.write(0x900 + i, 1, i);
    EXPECT_EQ(rc.trackedAddresses(), 1u);
}

TEST_F(RecoveryTest, RecoveryMidWindowLeavesConsistentState)
{
    // A recovery can land while R-stream retirement callbacks for
    // pre-recovery instructions are still arriving (the R core drains
    // its older in-flight work during the repair). Those late
    // callbacks must not resurrect tracking or corrupt the overlay.
    rc.write(0x100, 8, 1);
    rc.onSkippedStoreRetired(2, 0x200, 8);
    EXPECT_EQ(rc.trackedAddresses(), 2u);
    rc.recover();
    EXPECT_EQ(rc.trackedAddresses(), 0u);

    // Late arrivals from the discarded window.
    rMem.write(0x100, 8, 1);
    rc.onRStoreRetired(0x100, 8);
    rc.onTraceVerified(2);
    EXPECT_EQ(rc.trackedAddresses(), 0u);

    // The controller keeps working normally afterwards.
    rc.write(0x300, 8, 7);
    EXPECT_EQ(rc.read(0x300, 8), 7u);
    EXPECT_EQ(rc.trackedAddresses(), 1u);
    rMem.write(0x300, 8, 7);
    rc.onRStoreRetired(0x300, 8);
    EXPECT_EQ(rc.trackedAddresses(), 0u);
}

TEST_F(RecoveryTest, TrackedReturnsToZeroAfterRecoverUnderLoad)
{
    // Dense mixed load: many overlay granules plus skipped-store
    // do-set entries across several traces.
    for (int i = 0; i < 64; ++i)
        rc.write(0x1000 + 8 * i, 8, uint64_t(i));
    for (int i = 0; i < 16; ++i)
        rc.onSkippedStoreRetired(uint64_t(i), 0x2000 + 8 * i, 8);
    EXPECT_EQ(rc.trackedAddresses(), 80u);

    rc.recover();
    EXPECT_EQ(rc.trackedAddresses(), 0u);
    // Empty again: a second recovery is back at the minimum latency.
    EXPECT_EQ(rc.recover(), 21u);
}

TEST_F(RecoveryTest, StatsRecordRecoveries)
{
    rc.write(0xa00, 8, 5);
    rc.recover();
    EXPECT_EQ(rc.stats().get("recoveries"), 1u);
    EXPECT_EQ(rc.stats().getDistribution("tracked_at_recovery").max(),
              1u);
}

} // namespace
} // namespace slip
