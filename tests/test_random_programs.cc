/**
 * Property-based differential testing: generate random (but
 * terminating) SSIR programs and check the architectural invariants
 * the models must uphold:
 *
 *   1. The SS timing model retires exactly the functional simulator's
 *      instruction stream (output and count).
 *   2. The slipstream processor's R-stream output equals the
 *      functional output — with the real IR-predictor AND with an
 *      adversarial one, proving recovery makes execution correct by
 *      construction.
 *
 * Programs are generated from a template grammar: a handful of loops
 * with random bodies of ALU ops, loads/stores into a scratch array,
 * and data-dependent conditionals, always ending in checksum output.
 * Loop bounds are fixed so every program terminates.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "assembler/assembler.hh"
#include "common/random.hh"
#include "func/func_sim.hh"
#include "slipstream/slipstream_processor.hh"
#include "uarch/ss_processor.hh"

namespace slip
{
namespace
{

/** Generate a complete random program. */
std::string
generateProgram(uint64_t seed)
{
    Rng rng(seed);
    std::ostringstream os;
    os << ".data\nscratch: .space 256\n.text\nmain:\n"
       << "    la   s9, scratch\n";

    // Seed the scratch registers with deterministic values.
    const int scratchRegs = 6;
    for (int i = 0; i < scratchRegs; ++i)
        os << "    li   t" << i << ", " << rng.below(1000) << "\n";

    const int loops = 1 + int(rng.below(3));
    for (int l = 0; l < loops; ++l) {
        const int iters = 20 + int(rng.below(120));
        const int bodyOps = 3 + int(rng.below(10));
        os << "    li   s" << l << ", " << iters << "\n"
           << "loop" << l << ":\n";
        int skipCounter = 0;
        for (int i = 0; i < bodyOps; ++i) {
            // Occasionally a data-dependent forward skip.
            if (rng.chance(0.2)) {
                const std::string label =
                    "sk" + std::to_string(l) + "_" +
                    std::to_string(skipCounter++);
                os << "    andi k2, t" << rng.below(scratchRegs)
                   << ", " << (1 + rng.below(3)) << "\n"
                   << "    beqz k2, " << label << "\n"
                   << "    addi t" << rng.below(scratchRegs) << ", t"
                   << rng.below(scratchRegs) << ", 1\n"
                   << label << ":\n";
            } else {
                switch (rng.below(9)) {
                  case 0:
                    os << "    add  t" << rng.below(scratchRegs)
                       << ", t" << rng.below(scratchRegs) << ", t"
                       << rng.below(scratchRegs) << "\n";
                    break;
                  case 1:
                    os << "    sub  t" << rng.below(scratchRegs)
                       << ", t" << rng.below(scratchRegs) << ", t"
                       << rng.below(scratchRegs) << "\n";
                    break;
                  case 2:
                    os << "    xor  t" << rng.below(scratchRegs)
                       << ", t" << rng.below(scratchRegs) << ", t"
                       << rng.below(scratchRegs) << "\n";
                    break;
                  case 3:
                    os << "    addi t" << rng.below(scratchRegs)
                       << ", t" << rng.below(scratchRegs) << ", "
                       << rng.range(-32, 32) << "\n";
                    break;
                  case 4:
                    os << "    mul  t" << rng.below(scratchRegs)
                       << ", t" << rng.below(scratchRegs) << ", t"
                       << rng.below(scratchRegs) << "\n";
                    break;
                  case 5:
                    os << "    andi k0, t" << rng.below(scratchRegs)
                       << ", 31\n"
                       << "    slli k0, k0, 3\n"
                       << "    add  k0, k0, s9\n"
                       << "    sd   t" << rng.below(scratchRegs)
                       << ", 0(k0)\n";
                    break;
                  case 6:
                    os << "    andi k0, t" << rng.below(scratchRegs)
                       << ", 31\n"
                       << "    slli k0, k0, 3\n"
                       << "    add  k0, k0, s9\n"
                       << "    ld   t" << rng.below(scratchRegs)
                       << ", 0(k0)\n";
                    break;
                  case 7: // dead-write fodder
                    os << "    addi k1, zero, " << rng.below(8)
                       << "\n";
                    break;
                  default: // same-value-write fodder
                    os << "    addi k3, zero, 7\n";
                    break;
                }
            }
        }
        os << "    addi s" << l << ", s" << l << ", -1\n"
           << "    bnez s" << l << ", loop" << l << "\n";
    }

    // Checksum everything observable.
    os << "    li   a0, 0\n";
    for (int i = 0; i < scratchRegs; ++i)
        os << "    add  a0, a0, t" << i << "\n";
    os << "    li   s0, 0\nck:\n"
       << "    slli t0, s0, 3\n"
       << "    add  t0, t0, s9\n"
       << "    ld   t1, 0(t0)\n"
       << "    add  a0, a0, t1\n"
       << "    addi s0, s0, 1\n"
       << "    li   t2, 32\n"
       << "    blt  s0, t2, ck\n"
       << "    putn a0\n"
       << "    halt\n";
    return os.str();
}

class RandomProgram : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomProgram, SSTimingModelMatchesFunctional)
{
    const Program p = assemble(generateProgram(GetParam()));
    FuncSim func(p);
    const FuncRunResult golden = func.run(50'000'000);
    ASSERT_TRUE(golden.halted);

    SSProcessor proc(p);
    const SSRunResult r = proc.run();
    EXPECT_EQ(r.output, golden.output);
    EXPECT_EQ(r.retired, golden.instCount);
}

TEST_P(RandomProgram, SlipstreamMatchesFunctional)
{
    const Program p = assemble(generateProgram(GetParam()));
    FuncSim func(p);
    const FuncRunResult golden = func.run(50'000'000);
    ASSERT_TRUE(golden.halted);

    SlipstreamProcessor proc(p);
    const SlipstreamRunResult r = proc.run();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.output, golden.output);
}

/** Removes a deterministic pseudo-random ~25% of slots, always. */
class HostileIRPredictor : public IRPredictor
{
  public:
    HostileIRPredictor()
        : IRPredictor(IRPredictorParams{})
    {
    }

    std::optional<RemovalPlan>
    lookup(const PathHistory &, const TraceId &predicted) const override
    {
        RemovalPlan plan;
        uint64_t h = predicted.hash();
        for (unsigned i = 0; i < predicted.length; ++i) {
            h = mix64(h);
            if ((h & 3) == 0)
                plan.irVec |= uint64_t(1) << i;
        }
        if (!plan.irVec)
            return std::nullopt;
        plan.reasons.assign(predicted.length, reason::kBR);
        return plan;
    }
};

TEST_P(RandomProgram, SlipstreamSurvivesHostileRemoval)
{
    const Program p = assemble(generateProgram(GetParam()));
    FuncSim func(p);
    const FuncRunResult golden = func.run(50'000'000);
    ASSERT_TRUE(golden.halted);

    SlipstreamParams params;
    SlipstreamProcessor proc(p, params,
                             std::make_unique<HostileIRPredictor>());
    const SlipstreamRunResult r = proc.run();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.output, golden.output);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram,
                         ::testing::Range(uint64_t(1), uint64_t(13)));

} // namespace
} // namespace slip
