/**
 * Detection-backend shootout machinery: strict backend selection,
 * per-backend campaign determinism (jobs × isolation × resume), the
 * coverage differences that motivate the shootout (replay closes the
 * memory-cell ECC hole, the checker closes scenario #2), and the
 * shootout table's live/offline round trip.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "detect/detect_params.hh"
#include "harness/fault_campaign.hh"
#include "harness/shootout.hh"
#include "slipstream/a_stream_policy.hh"
#include "slipstream/fault_injector.hh"

namespace slip
{
namespace
{

/** Scoped environment override restoring the prior value on exit. */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *prev = getenv(name);
        hadPrev_ = prev != nullptr;
        if (hadPrev_)
            prev_ = prev;
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }

    ~EnvGuard()
    {
        if (hadPrev_)
            setenv(name_.c_str(), prev_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string prev_;
    bool hadPrev_ = false;
};

std::vector<std::string>
readLines(const std::string &path)
{
    std::vector<std::string> lines;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(line);
    return lines;
}

constexpr DetectBackendKind kAllKinds[] = {
    DetectBackendKind::Slipstream,
    DetectBackendKind::Replay,
    DetectBackendKind::Checker,
};

FaultCampaignConfig
backendConfig(DetectBackendKind kind, const std::string &tag)
{
    FaultCampaignConfig cfg;
    cfg.name = "detect_test";
    cfg.workloads = {"compress"};
    cfg.trialsPerWorkload = 4;
    cfg.params.detect.kind = kind;
    cfg.journalPath = "test_detect." + tag + ".jsonl";
    cfg.journalFsync = 0;
    return cfg;
}

TEST(DetectBackend, NamesAndParsing)
{
    EXPECT_STREQ(detectBackendName(DetectBackendKind::Slipstream),
                 "slipstream");
    EXPECT_STREQ(detectBackendName(DetectBackendKind::Replay),
                 "replay");
    EXPECT_STREQ(detectBackendName(DetectBackendKind::Checker),
                 "checker");

    for (DetectBackendKind kind : kAllKinds) {
        DetectBackendKind parsed;
        ASSERT_TRUE(
            parseDetectBackend(detectBackendName(kind), parsed));
        EXPECT_EQ(parsed, kind);
    }
    DetectBackendKind dummy;
    EXPECT_FALSE(parseDetectBackend("parity", dummy));
    EXPECT_FALSE(parseDetectBackend("", dummy));
}

TEST(DetectEnv, UnsetUsesFallback)
{
    EnvGuard g("SLIPSTREAM_DETECT", nullptr);
    EXPECT_EQ(detectBackendFromEnv(), DetectBackendKind::Slipstream);
    EXPECT_EQ(detectBackendFromEnv(DetectBackendKind::Checker),
              DetectBackendKind::Checker);
}

TEST(DetectEnv, ValidValuesOverride)
{
    for (DetectBackendKind kind : kAllKinds) {
        EnvGuard g("SLIPSTREAM_DETECT", detectBackendName(kind));
        EXPECT_EQ(detectBackendFromEnv(), kind);
    }
}

TEST(DetectEnv, GarbageThrows)
{
    // Strict mode-knob contract: a typo'd backend would silently run
    // the wrong shootout lane, so an unknown value throws rather than
    // falling back.
    EnvGuard g("SLIPSTREAM_DETECT", "parity");
    setLogQuiet(true);
    EXPECT_THROW(detectBackendFromEnv(), FatalError);
    EXPECT_THROW(detectParamsFromEnv(), FatalError);
    setLogQuiet(false);
}

TEST(DetectEnv, TuningKnobsApplyAndRejectZero)
{
    EnvGuard d("SLIPSTREAM_DETECT", nullptr);
    {
        EnvGuard w("SLIPSTREAM_REPLAY_WINDOW", "64");
        EnvGuard b("SLIPSTREAM_CHECKER_BANDWIDTH", "8");
        const DetectParams p = detectParamsFromEnv();
        EXPECT_EQ(p.replayWindow, 64u);
        EXPECT_EQ(p.checkerBandwidth, 8u);
    }
    {
        // Zero-width backends cannot make progress: numeric knobs keep
        // the usual warn-and-fall-back contract.
        EnvGuard w("SLIPSTREAM_REPLAY_WINDOW", "0");
        EnvGuard b("SLIPSTREAM_CHECKER_BANDWIDTH", "0");
        setLogQuiet(true);
        const DetectParams p = detectParamsFromEnv();
        setLogQuiet(false);
        EXPECT_EQ(p.replayWindow, DetectParams().replayWindow);
        EXPECT_EQ(p.checkerBandwidth,
                  DetectParams().checkerBandwidth);
    }
}

// ---------------------------------------------------------------------
// The A-stream policy knob follows the same strict mode-knob contract
// as the detection backend: typos throw, valid names override, tuning
// knobs warn-and-fall-back on meaningless values.
// ---------------------------------------------------------------------

TEST(AStreamPolicyEnv, UnsetUsesFallback)
{
    EnvGuard g("SLIPSTREAM_ASTREAM_POLICY", nullptr);
    EXPECT_EQ(aStreamPolicyFromEnv(), AStreamPolicyKind::IRRemoval);
    EXPECT_EQ(aStreamPolicyFromEnv(AStreamPolicyKind::Runahead),
              AStreamPolicyKind::Runahead);
}

TEST(AStreamPolicyEnv, ValidValuesOverride)
{
    for (unsigned i = 0; i < kNumAStreamPolicies; ++i) {
        const AStreamPolicyKind kind = AStreamPolicyKind(i);
        EnvGuard g("SLIPSTREAM_ASTREAM_POLICY",
                   aStreamPolicyName(kind));
        EXPECT_EQ(aStreamPolicyFromEnv(), kind);
        EXPECT_EQ(aStreamPolicyParamsFromEnv().kind, kind);
    }
}

TEST(AStreamPolicyEnv, GarbageThrows)
{
    // A typo'd policy would silently benchmark the wrong shortening
    // mechanism, so an unknown value throws instead of falling back.
    EnvGuard g("SLIPSTREAM_ASTREAM_POLICY", "turbo");
    setLogQuiet(true);
    EXPECT_THROW(aStreamPolicyFromEnv(), FatalError);
    EXPECT_THROW(aStreamPolicyParamsFromEnv(), FatalError);
    setLogQuiet(false);
}

TEST(AStreamPolicyEnv, TuningKnobsApplyAndRejectZero)
{
    EnvGuard p("SLIPSTREAM_ASTREAM_POLICY", nullptr);
    {
        EnvGuard t("SLIPSTREAM_RUNAHEAD_TRACES", "9");
        EXPECT_EQ(aStreamPolicyParamsFromEnv().runaheadTraces, 9u);
    }
    {
        // A zero-length runahead mode never shortens anything:
        // numeric knobs keep the warn-and-fall-back contract.
        EnvGuard t("SLIPSTREAM_RUNAHEAD_TRACES", "0");
        setLogQuiet(true);
        const AStreamPolicyParams got = aStreamPolicyParamsFromEnv();
        setLogQuiet(false);
        EXPECT_EQ(got.runaheadTraces,
                  AStreamPolicyParams().runaheadTraces);
    }
}

TEST(DetectCampaign, ReportAndJournalCarryTheBackend)
{
    for (DetectBackendKind kind : kAllKinds) {
        const char *name = detectBackendName(kind);
        FaultCampaignConfig cfg =
            backendConfig(kind, std::string("carry_") + name);
        cfg.trialsPerWorkload = 2;
        const FaultCampaignResult result = runFaultCampaign(cfg);
        const std::string json = campaignJson(cfg, result);

        EXPECT_NE(json.find(std::string("\"detect_backend\": \"") +
                            name + "\""),
                  std::string::npos)
            << name;
        for (const TrialRecord &t : result.trials) {
            EXPECT_EQ(t.detectBackend, name);
            // Every backend validates the retired stream somehow.
            EXPECT_GT(t.detectChecked, 0u) << name;
        }
        for (const std::string &line : readLines(cfg.journalPath))
            EXPECT_NE(line.find(std::string("\"backend\":\"") + name +
                                "\""),
                      std::string::npos)
                << line;
        std::remove(cfg.journalPath.c_str());
    }
}

/**
 * The acceptance property, per backend: byte-identical reports for
 * any SLIPSTREAM_JOBS under both isolation modes. External backends
 * ride RunMetrics through the fork-isolation wire codec, so this is
 * also the codec's coverage for the detect block.
 */
TEST(DetectCampaign, DeterministicAcrossJobsAndIsolation)
{
    const char *prior = std::getenv("SLIPSTREAM_JOBS");
    const std::string saved = prior ? prior : "";

    for (DetectBackendKind kind : kAllKinds) {
        const char *name = detectBackendName(kind);
        std::string baseline;
        for (IsolationMode mode :
             {IsolationMode::None, IsolationMode::Fork}) {
            for (const char *jobs : {"1", "3"}) {
                SCOPED_TRACE(std::string(name) + "/" +
                             isolationModeName(mode) + "/jobs=" +
                             jobs);
                setenv("SLIPSTREAM_JOBS", jobs, 1);
                FaultCampaignConfig cfg = backendConfig(
                    kind, std::string("det_") + name + "_" +
                              isolationModeName(mode) + "_" + jobs);
                cfg.isolation = mode;
                const std::string report =
                    campaignJson(cfg, runFaultCampaign(cfg));
                std::remove(cfg.journalPath.c_str());
                if (baseline.empty())
                    baseline = report;
                else
                    EXPECT_EQ(report, baseline);
            }
        }
    }

    if (prior)
        setenv("SLIPSTREAM_JOBS", saved.c_str(), 1);
    else
        unsetenv("SLIPSTREAM_JOBS");
}

/**
 * The backend x policy cross: an external detection backend composed
 * with a non-default A-stream policy journals both tags on every
 * line, and the journal bytes — not just the report — are identical
 * across SLIPSTREAM_JOBS and both isolation modes. This is the
 * coverage/overhead composition the policy layer exists for (a
 * replay-checked reliability A-stream), so its determinism contract
 * gets the same matrix the backends alone get above.
 */
TEST(DetectCampaign, BackendAndPolicyComposeDeterministically)
{
    const char *prior = std::getenv("SLIPSTREAM_JOBS");
    const std::string saved = prior ? prior : "";

    std::string baseline;
    for (IsolationMode mode :
         {IsolationMode::None, IsolationMode::Fork}) {
        for (const char *jobs : {"1", "3"}) {
            SCOPED_TRACE(std::string(isolationModeName(mode)) +
                         "/jobs=" + jobs);
            setenv("SLIPSTREAM_JOBS", jobs, 1);
            FaultCampaignConfig cfg = backendConfig(
                DetectBackendKind::Replay, "policy_cross");
            cfg.params.aPolicy.kind =
                AStreamPolicyKind::ReliabilityRunahead;
            cfg.isolation = mode;
            std::remove(cfg.journalPath.c_str());
            runFaultCampaign(cfg);
            std::string bytes;
            for (const std::string &line :
                 readLines(cfg.journalPath)) {
                EXPECT_NE(line.find("\"backend\":\"replay\""),
                          std::string::npos)
                    << line;
                EXPECT_NE(line.find("\"policy\":\"reliability\""),
                          std::string::npos)
                    << line;
                bytes += line + "\n";
            }
            std::remove(cfg.journalPath.c_str());
            if (baseline.empty())
                baseline = bytes;
            else
                EXPECT_EQ(bytes, baseline);
        }
    }
    EXPECT_FALSE(baseline.empty());

    if (prior)
        setenv("SLIPSTREAM_JOBS", saved.c_str(), 1);
    else
        unsetenv("SLIPSTREAM_JOBS");
}

/**
 * Why the shootout exists, part 1: main memory sits outside the
 * sphere of replication (the paper leaves it to ECC), so the native
 * backend never sees a flipped cell. Replay re-executes from a clean
 * shadow memory and catches the corrupt value at its first use. The
 * checker trusts the leader's load values by construction, so it
 * shares the native blind spot.
 */
TEST(DetectCampaign, ReplayClosesTheMemoryEccHole)
{
    CampaignTally tally[kNumDetectBackends];
    for (DetectBackendKind kind : kAllKinds) {
        FaultCampaignConfig cfg = backendConfig(
            kind, std::string("ecc_") + detectBackendName(kind));
        cfg.workloads = {"compress", "li"};
        cfg.trialsPerWorkload = 6;
        cfg.targets = {FaultTarget::MemoryCell};
        tally[size_t(kind)] = runFaultCampaign(cfg).total;
        std::remove(cfg.journalPath.c_str());
    }

    const CampaignTally &native =
        tally[size_t(DetectBackendKind::Slipstream)];
    const CampaignTally &replay =
        tally[size_t(DetectBackendKind::Replay)];
    const CampaignTally &checker =
        tally[size_t(DetectBackendKind::Checker)];

    // Identical plans land identical faults (the backend observes;
    // it never perturbs the simulated machine).
    ASSERT_GT(native.faultsInjected, 0u);
    EXPECT_EQ(replay.faultsInjected, native.faultsInjected);
    EXPECT_EQ(checker.faultsInjected, native.faultsInjected);

    // The native mechanism is blind here; replay is not.
    EXPECT_EQ(native.detectExternal, 0u);
    EXPECT_EQ(native.faultsDetected, 0u);
    EXPECT_GT(replay.detectExternal, 0u);
    EXPECT_GT(replay.faultsDetected, native.faultsDetected);
    EXPECT_EQ(checker.detectExternal, 0u);

    // Detection without repair: corrupt-output trials that replay
    // caught move from silent_corrupt to detected_unrepaired, never
    // into the soundness tripwire.
    EXPECT_LE(replay.outcomes(TrialOutcome::SilentCorrupt),
              native.outcomes(TrialOutcome::SilentCorrupt));
    EXPECT_EQ(replay.outcomes(TrialOutcome::DetectedButCorrupt), 0u);
    EXPECT_EQ(native.outcomes(TrialOutcome::DetectedUnrepaired), 0u);

    // Replay's modeled cost is visible: windows flushed, instructions
    // re-executed, overhead cycles accumulated.
    EXPECT_GT(replay.detectOverhead, 0u);
    EXPECT_GT(replay.overheadHist.count(), 0u);
}

/**
 * Why the shootout exists, part 2: a non-redundant R-pipeline fault
 * (paper scenario #2) corrupts authoritative state that the delay-
 * buffer comparison never revisits. Both external backends re-execute
 * the retired stream independently, so they see the corruption at its
 * first downstream use.
 */
TEST(DetectCampaign, ExternalBackendsSeeScenarioTwo)
{
    CampaignTally tally[kNumDetectBackends];
    for (DetectBackendKind kind : kAllKinds) {
        FaultCampaignConfig cfg = backendConfig(
            kind, std::string("sc2_") + detectBackendName(kind));
        // Workloads where a non-redundant R-pipeline corruption is
        // actually consumed downstream (dead corruption is invisible
        // to any value-based detector, external ones included).
        cfg.workloads = {"m88ksim", "vortex"};
        cfg.trialsPerWorkload = 12;
        cfg.targets = {FaultTarget::RPipeline};
        tally[size_t(kind)] = runFaultCampaign(cfg).total;
        std::remove(cfg.journalPath.c_str());
    }

    const CampaignTally &native =
        tally[size_t(DetectBackendKind::Slipstream)];
    const CampaignTally &replay =
        tally[size_t(DetectBackendKind::Replay)];
    const CampaignTally &checker =
        tally[size_t(DetectBackendKind::Checker)];

    EXPECT_EQ(native.detectExternal, 0u);
    EXPECT_GT(replay.detectExternal, 0u);
    EXPECT_GT(checker.detectExternal, 0u);
    EXPECT_GE(replay.faultsDetected, native.faultsDetected);
    EXPECT_GE(checker.faultsDetected, native.faultsDetected);

    // The checker's lag model charges overhead whenever its queue
    // backs up or it finishes after the leader.
    EXPECT_GT(checker.detectChecked, 0u);
}

/** Kill/resume restores per-backend tallies and histograms exactly. */
TEST(DetectResume, ByteIdenticalPerBackend)
{
    for (DetectBackendKind kind : kAllKinds) {
        const char *name = detectBackendName(kind);
        SCOPED_TRACE(name);
        FaultCampaignConfig cfg =
            backendConfig(kind, std::string("resume_") + name);
        const std::string expected =
            campaignJson(cfg, runFaultCampaign(cfg));
        const std::vector<std::string> lines =
            readLines(cfg.journalPath);
        ASSERT_EQ(lines.size(), 4u);

        // Kill after two journaled trials, plus a torn third line.
        {
            std::ofstream out(cfg.journalPath, std::ios::trunc);
            out << lines[0] << '\n' << lines[1] << '\n';
            out << lines[2].substr(0, lines[2].size() / 2);
        }
        FaultCampaignConfig again = cfg;
        again.resume = true;
        EXPECT_EQ(campaignJson(again, runFaultCampaign(again)),
                  expected);
        std::remove(cfg.journalPath.c_str());
    }
}

/**
 * A journal written under one backend must not satisfy a campaign
 * running another: the trial aggregates (coverage, mismatches,
 * overhead) are backend-specific, so adopting them would fabricate
 * the shootout's comparison. Resume re-runs such trials instead.
 */
TEST(DetectResume, ForeignBackendJournalIsNotAdopted)
{
    FaultCampaignConfig replayCfg =
        backendConfig(DetectBackendKind::Replay, "foreign_replay");
    runFaultCampaign(replayCfg);
    const std::vector<std::string> replayLines =
        readLines(replayCfg.journalPath);
    ASSERT_EQ(replayLines.size(), 4u);

    FaultCampaignConfig checkerCfg =
        backendConfig(DetectBackendKind::Checker, "foreign_checker");
    const std::string expected =
        campaignJson(checkerCfg, runFaultCampaign(checkerCfg));

    // Seed a checker resume with the replay journal: every line
    // matches on campaign/seed/trial/workload but not on backend.
    FaultCampaignConfig poisoned =
        backendConfig(DetectBackendKind::Checker, "foreign_poisoned");
    {
        std::ofstream out(poisoned.journalPath, std::ios::trunc);
        for (const std::string &line : replayLines)
            out << line << '\n';
    }
    poisoned.resume = true;
    setLogQuiet(true); // the skipped-lines warning is expected
    const std::string got =
        campaignJson(poisoned, runFaultCampaign(poisoned));
    setLogQuiet(false);
    EXPECT_EQ(got, expected);

    std::remove(replayCfg.journalPath.c_str());
    std::remove(checkerCfg.journalPath.c_str());
    std::remove(poisoned.journalPath.c_str());
}

/** The table renders live and round-trips through the JSON report. */
TEST(Shootout, TableRoundTripsThroughTheReport)
{
    std::vector<ShootoutRow> live;
    std::vector<std::string> jsons;
    for (DetectBackendKind kind : kAllKinds) {
        const char *name = detectBackendName(kind);
        FaultCampaignConfig cfg =
            backendConfig(kind, std::string("table_") + name);
        cfg.trialsPerWorkload = 3;
        const FaultCampaignResult result = runFaultCampaign(cfg);
        live.push_back(shootoutRow(name, result.total));
        jsons.push_back(campaignJson(cfg, result));
        std::remove(cfg.journalPath.c_str());
    }

    const std::string table = renderShootoutTable(live);
    for (DetectBackendKind kind : kAllKinds)
        EXPECT_NE(table.find(detectBackendName(kind)),
                  std::string::npos);
    EXPECT_NE(table.find("coverage"), std::string::npos);
    EXPECT_NE(table.find("overhead"), std::string::npos);

    const std::string path = "test_detect_report.json";
    writeFaultReport(jsons, path);
    std::stringstream buf;
    buf << std::ifstream(path).rdbuf();
    const std::vector<ShootoutRow> parsed =
        shootoutRowsFromReport(buf.str());
    std::remove(path.c_str());

    ASSERT_EQ(parsed.size(), live.size());
    for (size_t i = 0; i < live.size(); ++i) {
        SCOPED_TRACE(live[i].backend);
        EXPECT_EQ(parsed[i].backend, live[i].backend);
        EXPECT_EQ(parsed[i].trials, live[i].trials);
        EXPECT_EQ(parsed[i].faultsInjected, live[i].faultsInjected);
        EXPECT_EQ(parsed[i].faultsDetected, live[i].faultsDetected);
        EXPECT_EQ(parsed[i].silentCorrupt, live[i].silentCorrupt);
        EXPECT_EQ(parsed[i].latencyMax, live[i].latencyMax);
        EXPECT_EQ(parsed[i].overheadCycles, live[i].overheadCycles);
        EXPECT_EQ(parsed[i].cyclesTotal, live[i].cyclesTotal);
        EXPECT_NEAR(parsed[i].coverage(), live[i].coverage(), 1e-9);
    }

    // The table writer is atomic and failure-tolerant like the JSON
    // report writer.
    const std::string tablePath = "test_detect_table.txt";
    writeShootoutTable(live, tablePath);
    std::stringstream tbuf;
    tbuf << std::ifstream(tablePath).rdbuf();
    EXPECT_EQ(tbuf.str(), table);
    EXPECT_FALSE(std::ifstream(tablePath + ".tmp").good());
    std::remove(tablePath.c_str());
    EXPECT_NO_THROW(writeShootoutTable(
        live, "no_such_dir_detect/sub/table.txt"));
}

} // namespace
} // namespace slip
