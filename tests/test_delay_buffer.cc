#include <gtest/gtest.h>

#include "slipstream/delay_buffer.hh"

namespace slip
{
namespace
{

Packet
packetOf(uint64_t num, unsigned slots, unsigned executed)
{
    Packet p;
    p.num = num;
    p.actualId = TraceId{0x1000, 0, 0, uint8_t(slots)};
    p.slots.resize(slots);
    for (unsigned i = 0; i < executed; ++i)
        p.slots[i].executedInA = true;
    p.executedCount = executed;
    return p;
}

TEST(DelayBuffer, FifoOrder)
{
    DelayBuffer db;
    db.push(packetOf(1, 4, 4));
    db.push(packetOf(2, 4, 4));
    EXPECT_EQ(db.front().num, 1u);
    EXPECT_EQ(db.pop().num, 1u);
    EXPECT_EQ(db.pop().num, 2u);
    EXPECT_TRUE(db.empty());
}

TEST(DelayBuffer, OccupancyAccounting)
{
    DelayBuffer db;
    db.push(packetOf(1, 8, 5));
    db.push(packetOf(2, 8, 3));
    EXPECT_EQ(db.controlEntries(), 2u);
    EXPECT_EQ(db.dataEntries(), 8u);
    db.pop();
    EXPECT_EQ(db.dataEntries(), 3u);
    db.pop();
    EXPECT_EQ(db.dataEntries(), 0u);
}

TEST(DelayBuffer, ControlCapacityLimit)
{
    DelayBufferParams params;
    params.controlCapacity = 2;
    params.dataCapacity = 1000;
    DelayBuffer db(params);
    EXPECT_TRUE(db.canPush(1));
    db.push(packetOf(1, 1, 1));
    db.push(packetOf(2, 1, 1));
    EXPECT_FALSE(db.canPush(1));
    db.pop();
    EXPECT_TRUE(db.canPush(1));
}

TEST(DelayBuffer, DataCapacityLimit)
{
    DelayBufferParams params;
    params.controlCapacity = 100;
    params.dataCapacity = 10;
    DelayBuffer db(params);
    db.push(packetOf(1, 8, 8));
    EXPECT_TRUE(db.canPush(2));
    EXPECT_FALSE(db.canPush(3));
    // Fully-removed traces consume only a control entry.
    EXPECT_TRUE(db.canPush(0));
}

TEST(DelayBuffer, PushBeyondCapacityPanics)
{
    DelayBufferParams params;
    params.controlCapacity = 1;
    DelayBuffer db(params);
    db.push(packetOf(1, 1, 1));
    EXPECT_THROW(db.push(packetOf(2, 1, 1)), PanicError);
}

TEST(DelayBuffer, ClearFlushesEverything)
{
    DelayBuffer db;
    db.push(packetOf(1, 4, 4));
    db.clear();
    EXPECT_TRUE(db.empty());
    EXPECT_EQ(db.dataEntries(), 0u);
    EXPECT_EQ(db.stats().get("flushes"), 1u);
}

TEST(DelayBuffer, EmptyAccessPanics)
{
    DelayBuffer db;
    EXPECT_THROW(db.front(), PanicError);
    EXPECT_THROW(db.pop(), PanicError);
}

TEST(DelayBuffer, PaperDefaultsMatchTable2)
{
    DelayBuffer db;
    EXPECT_EQ(db.params().controlCapacity, 128u);
    EXPECT_EQ(db.params().dataCapacity, 256u);
}

} // namespace
} // namespace slip
