/**
 * @file
 * The slipd campaign server: a persistent daemon that accepts trial
 * batches (fault campaigns, fuzz seed windows, fault-free bench
 * sweeps) over Unix/TCP sockets, shards them across the existing
 * crash-isolated SimJobRunner pool, and streams JSONL results back as
 * trials complete.
 *
 * Design invariants:
 *
 *  - Byte identity. A served batch's result lines are exactly the
 *    lines a local slip_campaign journal holds for the same config —
 *    the server drives the same plan → execute → record → render
 *    pipeline (harness/fault_campaign.hh) and streams each line
 *    tagged with its deterministic trial index. Worker count,
 *    isolation mode, client count, and cache state change *when*
 *    lines arrive, never their bytes.
 *
 *  - Crash isolation is inherited, not reimplemented. Batches run on
 *    SimJobRunner with the server's isolation mode; a trial that
 *    SIGSEGVs the simulator costs that trial (a `crashed` line), and
 *    poison/quarantine/deadline-reap semantics are the pool's.
 *
 *  - Batches dispatch in bounded waves, so client cancellation can
 *    revoke every not-yet-dispatched trial between waves, and a
 *    drain request lets in-flight batches finish while new ones are
 *    refused — SIGTERM never truncates a batch mid-stream.
 *
 *  - Results are cached content-addressed on disk (result_cache.hh);
 *    a repeated batch answers from the cache, surviving server
 *    restarts.
 */

#ifndef SLIPSTREAM_SERVE_SERVER_HH
#define SLIPSTREAM_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/worker_pool.hh"
#include "serve/result_cache.hh"
#include "serve/serve_proto.hh"

namespace slip::serve
{

struct ServerOptions
{
    /** Unix-domain socket path; non-empty enables the listener. */
    std::string unixPath;

    /**
     * TCP listener on 127.0.0.1; 0 disables, 1 picks an ephemeral
     * port (read it back from Server::tcpPort() after start()).
     */
    uint16_t tcpPort = 0;

    /** Result-cache root; empty disables caching. */
    std::string cacheDir;

    /** Cache entry cap; 0 = $SLIPSTREAM_CACHE_MAX (default 65536). */
    uint64_t cacheMax = 0;

    /** Workers per batch; 0 = $SLIPSTREAM_WORKERS, else defaultJobs(). */
    unsigned workers = 0;

    /** Trial sandboxing, as in FaultCampaignConfig. */
    IsolationMode isolation = isolationFromEnv();

    /** Trials dispatched per wave (cancel/drain granularity);
     *  0 = 4x the worker count. */
    unsigned waveSize = 0;

    std::string name = "slipd";
};

class Server
{
  public:
    explicit Server(ServerOptions opts);
    ~Server();

    /** Bind, listen, and start accepting. False + `err` on failure. */
    bool start(std::string &err);

    /**
     * Stop admitting batches: running batches finish and stream their
     * BatchDone, new BatchRequests are rejected with
     * BatchStatus::Rejected. Idempotent; also triggered remotely by a
     * DrainRequest frame.
     */
    void beginDrain();

    bool draining() const { return draining_.load(); }

    /** Block until no batch is executing (drain mode or not). */
    void waitIdle();

    /** Close the listeners and join every thread. Idempotent. */
    void stop();

    ServeStats statsSnapshot() const;

    ResultCache &cache() { return *cache_; }

    /** The bound TCP port (after start(); 0 if TCP is disabled). */
    uint16_t tcpPort() const { return boundTcpPort_; }

  private:
    void acceptLoop();
    void serveConnection(int fd, uint64_t connId);
    void handleBatch(int fd, const BatchRequest &req);

    ServerOptions opts_;
    std::unique_ptr<ResultCache> cache_;

    int unixFd_ = -1;
    int tcpFd_ = -1;
    uint16_t boundTcpPort_ = 0;
    int wakePipe_[2] = {-1, -1};

    std::thread acceptThread_;
    std::mutex connMu_;
    std::vector<std::thread> connThreads_;

    std::atomic<bool> running_{false};
    std::atomic<bool> draining_{false};
    std::atomic<bool> stopping_{false};

    mutable std::mutex statsMu_;
    std::condition_variable idleCv_;
    unsigned activeBatches_ = 0;
    ServeStats stats_;
};

} // namespace slip::serve

#endif // SLIPSTREAM_SERVE_SERVER_HH
