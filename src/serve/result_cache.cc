#include "serve/result_cache.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/env.hh"
#include "common/logging.hh"
#include "detect/detect_params.hh"
#include "harness/sim_runner.hh"
#include "harness/wire.hh"
#include "obs/trace_session.hh"

namespace fs = std::filesystem;

namespace slip::serve
{

namespace
{

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

/**
 * Two FNV-1a streams over the same bytes, decorrelated by seeding the
 * second with the first's offset basis xor a constant and walking the
 * bytes salted. 128 bits makes accidental collision over any
 * realistic campaign count (< 2^40 entries) a non-issue.
 */
CacheKey
fnv128(const std::string &bytes)
{
    uint64_t a = kFnvOffset;
    uint64_t b = kFnvOffset ^ 0x9e3779b97f4a7c15ULL;
    for (unsigned char c : bytes) {
        a = (a ^ c) * kFnvPrime;
        b = (b ^ (c + 0x7f)) * kFnvPrime;
    }
    return CacheKey{a, b};
}

} // namespace

std::string
CacheKey::hex() const
{
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return std::string(buf, 32);
}

CacheKey
cacheKeyOf(const std::string &canonicalBytes)
{
    return fnv128(canonicalBytes);
}

CacheKey
campaignTrialKey(const FaultCampaignConfig &cfg,
                 const CampaignTrialSpec &spec, size_t trial)
{
    const auto *entry =
        static_cast<const ProgramCache::Entry *>(spec.entry);
    wire::Encoder enc;

    // The wire revision versions the whole serialization: bump
    // wire::kVersion and every old entry silently misses.
    enc.putU16(wire::kVersion);

    // Program identity: the assembled image, not the source text.
    const Program &p = entry->program;
    enc.putU64(p.entry());
    enc.putU32(uint32_t(p.rawTextWords().size()));
    for (uint32_t w : p.rawTextWords())
        enc.putU32(w);
    enc.putU32(uint32_t(p.dataBytes().size()));
    for (uint8_t byte : p.dataBytes())
        enc.putU8(byte);

    // Trial identity within the campaign.
    enc.putString(cfg.name);
    enc.putString(spec.workload);
    enc.putU8(uint8_t(cfg.size));
    enc.putU64(cfg.seed);
    enc.putU64(trial);
    enc.putBool(cfg.reliableMode);
    enc.putU64(cfg.cycleCapPerInst);
    enc.putU64(spec.maxCycles);

    // The planned faults (already drawn; hashing the plan, not the
    // Rng inputs, keeps the key honest if planning ever changes).
    enc.putU32(uint32_t(spec.plans.size()));
    for (const FaultPlan &plan : spec.plans) {
        enc.putU8(uint8_t(plan.target));
        enc.putU64(plan.dynIndex);
        enc.putU32(plan.bit);
        enc.putU32(plan.reg);
    }

    // Detection backend + tuning (changes result bytes).
    const DetectParams &d = cfg.params.detect;
    enc.putU8(uint8_t(d.kind));
    enc.putU64(d.replayWindow);
    enc.putU32(d.replayWidth);
    enc.putU32(d.checkerBandwidth);
    enc.putU32(d.checkerQueue);

    // A-stream policy + tuning (changes trial dynamics AND result
    // bytes): two policies on the same program/seed must never alias
    // to one cache entry.
    const AStreamPolicyParams &ap = cfg.params.aPolicy;
    enc.putU8(uint8_t(ap.kind));
    enc.putU32(ap.runaheadTraces);
    enc.putU32(ap.missLines);
    enc.putU32(ap.cooldownTraces);

    // Watchdog shape feeds the cycle cap and hung classification.
    enc.putU64(cfg.params.watchdog.stallCycles);
    enc.putU32(cfg.params.watchdog.maxTrips);

    return fnv128(enc.bytes());
}

ResultCache::ResultCache(std::string root, uint64_t maxEntries)
    : root_(std::move(root)),
      maxEntries_(maxEntries
                      ? maxEntries
                      : envU64("SLIPSTREAM_CACHE_MAX", 65536))
{
    if (root_.empty())
        return;
    std::error_code ec;
    fs::create_directories(root_, ec);
    if (ec) {
        SLIP_WARN("result cache: cannot create '", root_, "' (",
                  ec.message(), "); caching disabled");
        root_.clear();
        return;
    }
    // Count what a previous slipd left behind — those entries are the
    // whole point of persistence, and the eviction cap must see them.
    uint64_t found = 0;
    for (const auto &shard : fs::directory_iterator(root_, ec)) {
        if (!shard.is_directory())
            continue;
        for (const auto &e :
             fs::directory_iterator(shard.path(), ec))
            if (e.is_regular_file())
                ++found;
    }
    entries_ = found;
}

std::string
ResultCache::pathFor(const CacheKey &key) const
{
    const std::string hex = key.hex();
    return root_ + "/" + hex.substr(0, 2) + "/" + hex;
}

bool
ResultCache::lookup(const CacheKey &key, std::string &line)
{
    if (root_.empty())
        return false;
    std::ifstream in(pathFor(key), std::ios::binary);
    std::lock_guard<std::mutex> lock(mu_);
    if (!in) {
        ++stats_.counter("misses");
        return false;
    }
    std::ostringstream body;
    body << in.rdbuf();
    line = body.str();
    ++stats_.counter("hits");
    SLIP_TRACE(obs::Category::Serve, obs::Name::CacheHit,
               obs::Phase::Instant, key.hi, key.lo);
    return true;
}

void
ResultCache::store(const CacheKey &key, const std::string &line)
{
    if (root_.empty())
        return;
    const std::string path = pathFor(key);
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (fs::exists(path, ec))
        return; // content-addressed: same key, same bytes
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            SLIP_WARN("result cache: cannot write '", tmp, "'");
            return;
        }
        out << line;
        if (!out.good()) {
            SLIP_WARN("result cache: short write to '", tmp, "'");
            fs::remove(tmp, ec);
            return;
        }
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        SLIP_WARN("result cache: rename into '", path, "' failed (",
                  ec.message(), ")");
        fs::remove(tmp, ec);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++entries_;
        ++stats_.counter("stores");
    }
    SLIP_TRACE(obs::Category::Serve, obs::Name::CacheStore,
               obs::Phase::Instant, key.hi, key.lo);
    evictIfNeeded();
}

void
ResultCache::evictIfNeeded()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (entries_ <= maxEntries_)
            return;
    }
    // Over the cap: sweep the whole tree once, drop the oldest
    // entries down to cap minus one sweep-quantum so the next stores
    // are free. mtime order is eviction policy, not correctness — a
    // mis-ordered eviction costs one re-simulation.
    std::vector<std::pair<fs::file_time_type, fs::path>> files;
    std::error_code ec;
    for (const auto &shard : fs::directory_iterator(root_, ec)) {
        if (!shard.is_directory())
            continue;
        for (const auto &e :
             fs::directory_iterator(shard.path(), ec)) {
            if (!e.is_regular_file())
                continue;
            files.emplace_back(e.last_write_time(ec), e.path());
        }
    }
    const uint64_t target =
        maxEntries_ > maxEntries_ / 16 ? maxEntries_ - maxEntries_ / 16
                                       : maxEntries_;
    if (files.size() <= target)
        return;
    std::sort(files.begin(), files.end());
    const uint64_t drop = files.size() - target;
    uint64_t dropped = 0;
    for (uint64_t i = 0; i < drop; ++i)
        if (fs::remove(files[i].second, ec))
            ++dropped;
    std::lock_guard<std::mutex> lock(mu_);
    entries_ = files.size() - dropped;
    stats_.counter("evictions") += dropped;
    SLIP_TRACE(obs::Category::Serve, obs::Name::CacheEvict,
               obs::Phase::Instant, dropped, entries_);
}

uint64_t
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_.get("hits");
}

uint64_t
ResultCache::misses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_.get("misses");
}

uint64_t
ResultCache::stores() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_.get("stores");
}

uint64_t
ResultCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_.get("evictions");
}

uint64_t
ResultCache::entries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_;
}

void
ResultCache::dumpStats(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    stats_.counter("entries").reset();
    stats_.counter("entries") += entries_;
    stats_.dump(os);
}

} // namespace slip::serve
