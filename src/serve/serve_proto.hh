/**
 * @file
 * The slipc <-> slipd application protocol, layered on the versioned
 * frame transport in harness/wire.hh.
 *
 * Connection lifecycle:
 *
 *   client                           server
 *   ------                           ------
 *   Hello {client name}        ->
 *                              <-    HelloAck {version, server name}
 *                                 or HelloReject {server version, why}
 *   BatchRequest {batch}       ->
 *                              <-    TrialResult* (completion order)
 *   [CancelBatch {id}]         ->
 *                              <-    BatchDone {summary}
 *
 * The handshake is the only version-lenient exchange (wire::
 * readFrameInfo): a peer speaking a different protocol revision is
 * told both versions and refused — negotiation fails closed with a
 * diagnosis, never open. Every frame after HelloAck goes through the
 * strict reader.
 *
 * Trial results stream back in *completion* order, each tagged with
 * its deterministic trial index; clients that want the canonical
 * (journal) order sort by index at batch end. The result line bytes
 * are exactly campaignTrialLine()'s, so a batch served over a socket
 * compares byte-for-byte against a local slip_campaign journal.
 */

#ifndef SLIPSTREAM_SERVE_SERVE_PROTO_HH
#define SLIPSTREAM_SERVE_SERVE_PROTO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "detect/detect_params.hh"
#include "harness/fault_campaign.hh"
#include "harness/wire.hh"
#include "slipstream/fault_injector.hh"
#include "workloads/workloads.hh"

namespace slip::serve
{

/** What a batch asks the server to run. */
enum class BatchKind : uint8_t
{
    Campaign = 0, // fault-injection campaign (FaultCampaignConfig)
    Fuzz = 1,     // differential-fuzz seed window
    Bench = 2,    // fault-free performance sweep (zero-fault trials)
};

/** "campaign", "fuzz", "bench". */
const char *batchKindName(BatchKind kind);

/**
 * One batch of trials. Campaign and Bench batches carry the portable
 * subset of FaultCampaignConfig (everything that shapes trial *plans*
 * and result bytes; isolation/workers/journal stay server policy,
 * preserving the byte-identity invariant). Fuzz batches carry a seed
 * window.
 */
struct BatchRequest
{
    BatchKind kind = BatchKind::Campaign;

    /** Client-chosen id, echoed on every reply frame. */
    uint64_t id = 0;

    // Campaign / Bench.
    std::string name = "serve_campaign";
    std::vector<std::string> workloads; // empty = all eight
    WorkloadSize size = WorkloadSize::Test;
    unsigned trialsPerWorkload = 8;
    unsigned minFaultsPerTrial = 1;
    unsigned maxFaultsPerTrial = 3;
    uint64_t seed = 20260806;
    bool reliableMode = false;
    std::vector<FaultTarget> targets; // empty = mode default
    DetectParams detect;
    AStreamPolicyParams policy;
    Cycle cycleCapPerInst = 10;

    // Fuzz.
    uint64_t seedBegin = 0;
    uint64_t seedEnd = 0;

    /** The equivalent local config (campaign/bench kinds). */
    FaultCampaignConfig toCampaignConfig() const;
};

void encodeBatchRequest(wire::Encoder &enc, const BatchRequest &b);
BatchRequest decodeBatchRequest(wire::Decoder &dec);

/** One finished trial, streamed as it completes. */
struct TrialResultMsg
{
    uint64_t batchId = 0;
    uint64_t index = 0;     // deterministic trial index in the batch
    bool fromCache = false; // served from the result cache
    std::string line;       // canonical JSONL bytes (no newline)
};

void encodeTrialResult(wire::Encoder &enc, const TrialResultMsg &m);
TrialResultMsg decodeTrialResult(wire::Decoder &dec);

/** How a batch ended. */
enum class BatchStatus : uint8_t
{
    Ok = 0,        // every trial completed
    Cancelled = 1, // client revoked the undispatched remainder
    Rejected = 2,  // server draining: batch refused before any trial
    Error = 3,     // server-side failure (message in `error`)
};

/** "ok", "cancelled", "rejected", "error". */
const char *batchStatusName(BatchStatus status);

/** Batch summary, always the last frame of a batch. */
struct BatchDoneMsg
{
    uint64_t batchId = 0;
    BatchStatus status = BatchStatus::Ok;
    uint64_t completed = 0;  // TrialResult frames sent
    uint64_t revoked = 0;    // trials never dispatched (cancel/drain)
    uint64_t cacheHits = 0;  // completed trials served from cache
    uint64_t cacheMisses = 0;
    std::string error;
};

void encodeBatchDone(wire::Encoder &enc, const BatchDoneMsg &m);
BatchDoneMsg decodeBatchDone(wire::Decoder &dec);

/** Server-lifetime counters (StatsReply payload). */
struct ServeStats
{
    uint64_t connections = 0;
    uint64_t batches = 0;
    uint64_t trialsRun = 0;      // executed (cache misses)
    uint64_t trialsCached = 0;   // served from cache
    uint64_t trialsRevoked = 0;  // cancelled before dispatch
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t cacheStores = 0;
    uint64_t cacheEvictions = 0;
    bool draining = false;
};

void encodeServeStats(wire::Encoder &enc, const ServeStats &s);
ServeStats decodeServeStats(wire::Decoder &dec);

// ---------------------------------------------------------------------
// Handshake.
// ---------------------------------------------------------------------

/**
 * Client side: send Hello and interpret the reply. Returns false with
 * a one-line diagnosis in `err` — including the "server speaks vX,
 * this client speaks vY" case, read leniently so the mismatch can be
 * *named* rather than surfacing as a torn frame.
 */
bool clientHandshake(int fd, const std::string &clientName,
                     std::string &err);

/**
 * Server side: read the client's Hello (leniently), and either accept
 * (HelloAck) or refuse (HelloReject naming both versions). Returns
 * false after a reject or on transport failure; `clientName` is
 * filled on success.
 */
bool serverHandshake(int fd, const std::string &serverName,
                     std::string &clientName, std::string &err);

} // namespace slip::serve

#endif // SLIPSTREAM_SERVE_SERVE_PROTO_HH
