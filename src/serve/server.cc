#include "serve/server.hh"

#include <algorithm>
#include <cstring>
#include <csignal>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "fuzz/generator.hh"
#include "fuzz/oracle.hh"
#include "harness/sim_runner.hh"
#include "obs/trace_session.hh"
#include "workloads/workloads.hh"

namespace slip::serve
{

namespace
{

/** Is one frame's worth of data (possibly) waiting on fd? */
bool
pollReadable(int fd, int timeoutMs)
{
    struct pollfd p = {};
    p.fd = fd;
    p.events = POLLIN;
    const int r = ::poll(&p, 1, timeoutMs);
    return r > 0 && (p.revents & (POLLIN | POLLHUP | POLLERR));
}

bool
sendTrialResult(int fd, const TrialResultMsg &m)
{
    wire::Encoder enc;
    encodeTrialResult(enc, m);
    return wire::writeFrame(fd, wire::MsgType::TrialResult,
                            enc.bytes());
}

/**
 * Bench sweeps are zero-fault campaign trials: same entries, same
 * cycle-cap formula as planCampaignTrials(), empty plan lists — so
 * the record/render pipeline (and the result cache) treats them
 * uniformly, and a bench line is a campaign line whose trial planned
 * no faults.
 */
std::vector<CampaignTrialSpec>
planBenchTrials(const FaultCampaignConfig &cfg)
{
    std::vector<std::string> names = cfg.workloads;
    if (names.empty())
        for (const Workload &w : allWorkloads(cfg.size))
            names.push_back(w.name);

    std::vector<CampaignTrialSpec> specs;
    for (const std::string &name : names) {
        const ProgramCache::Entry &e =
            ProgramCache::global().get(name, cfg.size);
        const Cycle maxCycles =
            e.goldenInstCount * cfg.cycleCapPerInst +
            Cycle(cfg.params.watchdog.maxTrips + 2) *
                cfg.params.watchdog.stallCycles +
            100'000;
        for (unsigned t = 0; t < cfg.trialsPerWorkload; ++t)
            specs.push_back({&e, name, {}, maxCycles});
    }
    return specs;
}

/** Canonical key bytes of one fuzz trial (see result_cache.hh). */
CacheKey
fuzzTrialKey(const BatchRequest &req, uint64_t seed,
             const std::string &source)
{
    wire::Encoder enc;
    enc.putU16(wire::kVersion);
    enc.putString("fuzz");
    enc.putString(req.name);
    enc.putU64(seed);
    // The rendered source is the generator's identity: a generator
    // change produces different text and silently misses.
    enc.putString(source);
    return cacheKeyOf(enc.bytes());
}

/** One fuzz seed as a canonical JSONL line (no newline). */
std::string
fuzzTrialLine(const BatchRequest &req, uint64_t seed,
              const JobOutcome &o)
{
    std::string line = "{\"campaign\":\"" + req.name +
                       "\",\"kind\":\"fuzz\",\"seed\":" +
                       std::to_string(seed);
    line += ",\"status\":\"";
    line += jobStatusName(o.status);
    line += "\"";
    if (o.status == JobOutcome::Status::Ok)
        line += std::string(",\"diverged\":") +
                (o.metrics.outputCorrect ? "0" : "1");
    line += "}";
    return line;
}

} // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts))
{
    cache_ = std::make_unique<ResultCache>(opts_.cacheDir,
                                           opts_.cacheMax);
}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string &err)
{
    // A dying client must surface as a failed write, not SIGPIPE.
    ::signal(SIGPIPE, SIG_IGN);

    if (opts_.unixPath.empty() && opts_.tcpPort == 0) {
        err = "no listener configured (need a unix path or tcp port)";
        return false;
    }
    if (::pipe(wakePipe_) != 0) {
        err = std::string("pipe: ") + std::strerror(errno);
        return false;
    }

    if (!opts_.unixPath.empty()) {
        struct sockaddr_un addr = {};
        if (opts_.unixPath.size() >= sizeof(addr.sun_path)) {
            err = "unix socket path too long: " + opts_.unixPath;
            return false;
        }
        unixFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (unixFd_ < 0) {
            err = std::string("socket: ") + std::strerror(errno);
            return false;
        }
        ::unlink(opts_.unixPath.c_str());
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opts_.unixPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(unixFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(unixFd_, 64) != 0) {
            err = "bind/listen on '" + opts_.unixPath +
                  "': " + std::strerror(errno);
            return false;
        }
    }

    if (opts_.tcpPort != 0) {
        tcpFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (tcpFd_ < 0) {
            err = std::string("socket: ") + std::strerror(errno);
            return false;
        }
        int one = 1;
        ::setsockopt(tcpFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        struct sockaddr_in addr = {};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        // Port 1 is "any ephemeral": nothing binds there unprivileged,
        // so treat it as 0 and read the port back.
        addr.sin_port =
            htons(opts_.tcpPort == 1 ? 0 : opts_.tcpPort);
        if (::bind(tcpFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(tcpFd_, 64) != 0) {
            err = std::string("bind/listen on tcp port: ") +
                  std::strerror(errno);
            return false;
        }
        socklen_t len = sizeof(addr);
        ::getsockname(tcpFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len);
        boundTcpPort_ = ntohs(addr.sin_port);
    }

    running_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
Server::acceptLoop()
{
    while (!stopping_.load()) {
        struct pollfd fds[3];
        nfds_t n = 0;
        if (unixFd_ >= 0)
            fds[n++] = {unixFd_, POLLIN, 0};
        if (tcpFd_ >= 0)
            fds[n++] = {tcpFd_, POLLIN, 0};
        fds[n++] = {wakePipe_[0], POLLIN, 0};
        if (::poll(fds, n, -1) <= 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (nfds_t i = 0; i + 1 < n; ++i) {
            if (!(fds[i].revents & POLLIN))
                continue;
            const int fd = ::accept(fds[i].fd, nullptr, nullptr);
            if (fd < 0)
                continue;
            uint64_t connId;
            {
                std::lock_guard<std::mutex> lock(statsMu_);
                connId = ++stats_.connections;
            }
            std::lock_guard<std::mutex> lock(connMu_);
            connThreads_.emplace_back(
                [this, fd, connId] { serveConnection(fd, connId); });
        }
    }
}

void
Server::serveConnection(int fd, uint64_t connId)
{
    SLIP_TRACE(obs::Category::Serve, obs::Name::ClientConnect,
               obs::Phase::Instant, connId, 0);
    std::string clientName, err;
    if (!serverHandshake(fd, opts_.name, clientName, err)) {
        SLIP_INFORM("slipd: refused connection ", connId, ": ", err);
        ::close(fd);
        return;
    }

    for (;;) {
        // Poll with a timeout so an idle connection notices stop().
        if (!pollReadable(fd, 200)) {
            if (stopping_.load())
                break;
            continue;
        }
        wire::MsgType type;
        std::string payload;
        const wire::ReadResult r = wire::readFrame(fd, type, payload);
        if (r != wire::ReadResult::Ok)
            break;
        switch (type) {
          case wire::MsgType::BatchRequest: {
            wire::Decoder dec(payload);
            handleBatch(fd, decodeBatchRequest(dec));
            break;
          }
          case wire::MsgType::StatsRequest: {
            wire::Encoder enc;
            encodeServeStats(enc, statsSnapshot());
            wire::writeFrame(fd, wire::MsgType::StatsReply,
                             enc.bytes());
            break;
          }
          case wire::MsgType::DrainRequest: {
            beginDrain();
            wire::writeFrame(fd, wire::MsgType::DrainAck, {});
            break;
          }
          case wire::MsgType::CancelBatch:
            // No batch in flight on this connection: stale cancel.
            break;
          default:
            SLIP_INFORM("slipd: connection ", connId,
                        " sent unexpected frame type ",
                        unsigned(type), "; closing");
            ::close(fd);
            return;
        }
    }
    SLIP_TRACE(obs::Category::Serve, obs::Name::ClientDisconnect,
               obs::Phase::Instant, connId, 0);
    ::close(fd);
}

void
Server::handleBatch(int fd, const BatchRequest &req)
{
    BatchDoneMsg done;
    done.batchId = req.id;

    if (draining_.load() || stopping_.load()) {
        done.status = BatchStatus::Rejected;
        done.error = "server is draining; submit to another instance "
                     "or retry after restart";
        wire::Encoder enc;
        encodeBatchDone(enc, done);
        wire::writeFrame(fd, wire::MsgType::BatchDone, enc.bytes());
        return;
    }

    {
        std::lock_guard<std::mutex> lock(statsMu_);
        ++activeBatches_;
        ++stats_.batches;
    }
    SLIP_TRACE(obs::Category::Serve, obs::Name::BatchSpan,
               obs::Phase::Begin, req.id, 0);

    size_t totalTrials = 0;
    bool cancelled = false;
    bool clientGone = false;

    // Dispatch one wave of campaign-style specs (cache probe, then
    // the misses on the pool), streaming every finished line.
    const auto runSpecWave =
        [&](const FaultCampaignConfig &cfg,
            const std::vector<CampaignTrialSpec> &specs, size_t lo,
            size_t hi) {
            std::vector<size_t> missIdx;
            std::vector<CacheKey> missKey;
            for (size_t i = lo; i < hi; ++i) {
                const CacheKey key =
                    campaignTrialKey(cfg, specs[i], i);
                std::string line;
                if (cache_->lookup(key, line)) {
                    if (!sendTrialResult(
                            fd, {req.id, i, true, line})) {
                        clientGone = true;
                        return;
                    }
                    ++done.completed;
                    ++done.cacheHits;
                    std::lock_guard<std::mutex> lock(statsMu_);
                    ++stats_.trialsCached;
                } else {
                    SLIP_TRACE(obs::Category::Serve,
                               obs::Name::CacheMiss,
                               obs::Phase::Instant, req.id, i);
                    missIdx.push_back(i);
                    missKey.push_back(key);
                }
            }
            if (missIdx.empty())
                return;
            SimJobRunner runner(opts_.workers);
            runner.setIsolation(opts_.isolation);
            for (const size_t i : missIdx) {
                const CampaignTrialSpec *s = &specs[i];
                runner.add([&cfg, s, i](const CancelToken &cancel) {
                    return runCampaignTrial(cfg, *s, i, cancel);
                });
            }
            runner.runSupervised([&](size_t job,
                                     const JobOutcome &o) {
                const size_t i = missIdx[job];
                const TrialRecord t =
                    recordCampaignTrial(cfg, specs[i], i, o);
                const std::string line =
                    campaignTrialLine(cfg, i, t);
                cache_->store(missKey[job], line);
                if (!sendTrialResult(fd, {req.id, i, false, line}))
                    clientGone = true;
                ++done.completed;
                ++done.cacheMisses;
            });
            std::lock_guard<std::mutex> lock(statsMu_);
            stats_.trialsRun += missIdx.size();
        };

    // Between waves: did the client revoke the rest of the batch?
    const auto checkCancel = [&] {
        while (!clientGone && pollReadable(fd, 0)) {
            wire::MsgType type;
            std::string payload;
            if (wire::readFrame(fd, type, payload) !=
                wire::ReadResult::Ok) {
                clientGone = true;
                return;
            }
            if (type == wire::MsgType::CancelBatch) {
                wire::Decoder dec(payload);
                if (dec.getU64() == req.id)
                    cancelled = true;
            }
        }
    };

    try {
        if (req.kind == BatchKind::Campaign ||
            req.kind == BatchKind::Bench) {
            FaultCampaignConfig cfg = req.toCampaignConfig();
            const std::vector<CampaignTrialSpec> specs =
                req.kind == BatchKind::Bench
                    ? planBenchTrials(cfg)
                    : planCampaignTrials(cfg);
            totalTrials = specs.size();
            const size_t wave =
                opts_.waveSize
                    ? opts_.waveSize
                    : size_t(4) * SimJobRunner(opts_.workers).jobs();
            for (size_t next = 0;
                 next < specs.size() && !cancelled && !clientGone &&
                 !stopping_.load();
                 ) {
                const size_t hi =
                    std::min(next + wave, specs.size());
                runSpecWave(cfg, specs, next, hi);
                next = hi;
                checkCancel();
            }
        } else if (req.kind == BatchKind::Fuzz) {
            totalTrials = req.seedEnd > req.seedBegin
                              ? size_t(req.seedEnd - req.seedBegin)
                              : 0;
            const size_t wave =
                opts_.waveSize
                    ? opts_.waveSize
                    : size_t(4) * SimJobRunner(opts_.workers).jobs();
            for (uint64_t next = req.seedBegin;
                 next < req.seedEnd && !cancelled && !clientGone &&
                 !stopping_.load();
                 ) {
                const uint64_t hi =
                    std::min<uint64_t>(next + wave, req.seedEnd);
                // Generate first: the rendered source is both the
                // cache identity and the job input.
                std::vector<uint64_t> seeds;
                std::vector<std::string> sources;
                std::vector<CacheKey> keys;
                for (uint64_t s = next; s < hi; ++s) {
                    const std::string src =
                        fuzz::generate(s).render();
                    const CacheKey key = fuzzTrialKey(req, s, src);
                    std::string line;
                    if (cache_->lookup(key, line)) {
                        if (!sendTrialResult(
                                fd, {req.id, s - req.seedBegin, true,
                                     line})) {
                            clientGone = true;
                            break;
                        }
                        ++done.completed;
                        ++done.cacheHits;
                        std::lock_guard<std::mutex> lock(statsMu_);
                        ++stats_.trialsCached;
                    } else {
                        seeds.push_back(s);
                        sources.push_back(src);
                        keys.push_back(key);
                    }
                }
                if (!seeds.empty() && !clientGone) {
                    SimJobRunner runner(opts_.workers);
                    runner.setIsolation(opts_.isolation);
                    for (const std::string &src : sources) {
                        runner.add([src](const CancelToken &) {
                            const Program p = assemble(src);
                            const fuzz::OracleVerdict v =
                                fuzz::runOracle(p);
                            RunMetrics m;
                            m.model = "fuzz_oracle";
                            m.outputCorrect = !v.diverged;
                            m.outputBytes = v.report.size();
                            return m;
                        });
                    }
                    runner.runSupervised([&](size_t job,
                                             const JobOutcome &o) {
                        const uint64_t s = seeds[job];
                        const std::string line =
                            fuzzTrialLine(req, s, o);
                        cache_->store(keys[job], line);
                        if (!sendTrialResult(
                                fd, {req.id, s - req.seedBegin,
                                     false, line}))
                            clientGone = true;
                        ++done.completed;
                        ++done.cacheMisses;
                    });
                    std::lock_guard<std::mutex> lock(statsMu_);
                    stats_.trialsRun += seeds.size();
                }
                next = hi;
                checkCancel();
            }
        } else {
            done.status = BatchStatus::Error;
            done.error = "unknown batch kind " +
                         std::to_string(unsigned(req.kind));
        }
    } catch (const std::exception &e) {
        done.status = BatchStatus::Error;
        done.error = e.what();
        SLIP_WARN("slipd: batch ", req.id, " failed: ", e.what());
    }

    if (done.status == BatchStatus::Ok) {
        done.revoked = totalTrials - done.completed;
        if (cancelled || done.revoked > 0)
            done.status = BatchStatus::Cancelled;
        if (done.revoked > 0) {
            SLIP_TRACE(obs::Category::Serve,
                       obs::Name::BatchCancelled,
                       obs::Phase::Instant, req.id, done.revoked);
            std::lock_guard<std::mutex> lock(statsMu_);
            stats_.trialsRevoked += done.revoked;
        }
    }

    {
        std::lock_guard<std::mutex> lock(statsMu_);
        --activeBatches_;
    }
    idleCv_.notify_all();
    SLIP_TRACE(obs::Category::Serve, obs::Name::BatchSpan,
               obs::Phase::End, req.id, done.completed);

    if (!clientGone) {
        wire::Encoder enc;
        encodeBatchDone(enc, done);
        wire::writeFrame(fd, wire::MsgType::BatchDone, enc.bytes());
    }
}

void
Server::beginDrain()
{
    const bool was = draining_.exchange(true);
    if (!was) {
        SLIP_TRACE(obs::Category::Serve, obs::Name::DrainSpan,
                   obs::Phase::Begin, 0, 0);
        SLIP_INFORM("slipd: draining — finishing in-flight batches, "
                    "rejecting new ones");
    }
}

void
Server::waitIdle()
{
    std::unique_lock<std::mutex> lock(statsMu_);
    idleCv_.wait(lock, [this] { return activeBatches_ == 0; });
}

void
Server::stop()
{
    if (!running_.exchange(false))
        return;
    stopping_ = true;
    // Wake the accept loop.
    if (wakePipe_[1] >= 0) {
        const ssize_t n = ::write(wakePipe_[1], "x", 1);
        (void)n;
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    {
        std::lock_guard<std::mutex> lock(connMu_);
        for (std::thread &t : connThreads_)
            if (t.joinable())
                t.join();
        connThreads_.clear();
    }
    if (unixFd_ >= 0) {
        ::close(unixFd_);
        unixFd_ = -1;
        ::unlink(opts_.unixPath.c_str());
    }
    if (tcpFd_ >= 0) {
        ::close(tcpFd_);
        tcpFd_ = -1;
    }
    for (int &fd : wakePipe_) {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }
    if (draining_.load()) {
        SLIP_TRACE(obs::Category::Serve, obs::Name::DrainSpan,
                   obs::Phase::End, 0, 0);
    }
}

ServeStats
Server::statsSnapshot() const
{
    ServeStats s;
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        s = stats_;
    }
    s.cacheHits = cache_->hits();
    s.cacheMisses = cache_->misses();
    s.cacheStores = cache_->stores();
    s.cacheEvictions = cache_->evictions();
    s.draining = draining_.load();
    return s;
}

} // namespace slip::serve
