/**
 * @file
 * Persistent content-addressed result cache for served trials.
 *
 * A trial's result line is a pure function of (program bytes, config,
 * seed, trial index, fault plans, detection backend + tuning, wire
 * protocol version) — deliberately NOT of isolation mode, worker
 * count, or client count, which the byte-identity invariant says must
 * not change result bytes. The cache key is a 128-bit FNV-1a hash of
 * a canonical wire::Encoder serialization of exactly those inputs, so
 * a repeated batch — same client, different client, or a slipd
 * restarted yesterday — answers from disk without re-simulating.
 *
 * Layout: one file per entry, `root/<hh>/<32-hex-key>`, holding the
 * exact JSONL line bytes (no newline). Stores write to a temp sibling
 * and rename into place, so a killed slipd never leaves a torn entry
 * — a half-written temp file just never becomes visible. The two-hex
 * shard keeps directories small at 6-figure entry counts.
 *
 * Hashing the *assembled program image* (raw text words + data +
 * entry pc) rather than the workload name alone means a workload
 * generator change silently invalidates every affected entry; there
 * is no version file to forget to bump.
 */

#ifndef SLIPSTREAM_SERVE_RESULT_CACHE_HH
#define SLIPSTREAM_SERVE_RESULT_CACHE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "harness/fault_campaign.hh"

namespace slip::serve
{

/** 128-bit content hash (two independent FNV-1a streams). */
struct CacheKey
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    /** 32 lowercase hex digits (the on-disk file name). */
    std::string hex() const;

    bool
    operator==(const CacheKey &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
};

/**
 * The canonical key of one campaign trial. `cfg` and `spec` must be
 * the planCampaignTrials() inputs/outputs the trial will run under.
 */
CacheKey campaignTrialKey(const FaultCampaignConfig &cfg,
                          const CampaignTrialSpec &spec, size_t trial);

/** A key over arbitrary canonical bytes (fuzz trials, tests). */
CacheKey cacheKeyOf(const std::string &canonicalBytes);

/**
 * The cache itself. Thread-safe: servers probe and store from many
 * connection threads. An empty root disables everything (lookup
 * always misses, store drops), so callers need no special-casing.
 */
class ResultCache
{
  public:
    /**
     * `maxEntries` caps the entry count; 0 consults
     * $SLIPSTREAM_CACHE_MAX (default 65536). When a store would
     * exceed the cap, the oldest entries (by modification time) are
     * evicted in bulk — 1/16th of the cap per sweep, so eviction cost
     * amortizes instead of landing on every store.
     */
    explicit ResultCache(std::string root, uint64_t maxEntries = 0);

    /** True + the stored line on a hit. */
    bool lookup(const CacheKey &key, std::string &line);

    /** Persist one result line (atomic rename; never throws). */
    void store(const CacheKey &key, const std::string &line);

    uint64_t hits() const;
    uint64_t misses() const;
    uint64_t stores() const;
    uint64_t evictions() const;

    /** Entries currently on disk (tracked, not re-scanned). */
    uint64_t entries() const;

    const std::string &root() const { return root_; }
    bool enabled() const { return !root_.empty(); }

    /** Counters above as a StatGroup dump ("serve_cache.*"). */
    void dumpStats(std::ostream &os) const;

  private:
    void evictIfNeeded();

    std::string pathFor(const CacheKey &key) const;

    std::string root_;
    uint64_t maxEntries_;

    mutable std::mutex mu_;
    uint64_t entries_ = 0;
    mutable StatGroup stats_{"serve_cache"};
};

} // namespace slip::serve

#endif // SLIPSTREAM_SERVE_RESULT_CACHE_HH
