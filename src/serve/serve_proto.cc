#include "serve/serve_proto.hh"

#include "common/logging.hh"
#include "detect/detect_params.hh"

namespace slip::serve
{

const char *
batchKindName(BatchKind kind)
{
    switch (kind) {
      case BatchKind::Campaign:
        return "campaign";
      case BatchKind::Fuzz:
        return "fuzz";
      case BatchKind::Bench:
        return "bench";
    }
    return "?";
}

const char *
batchStatusName(BatchStatus status)
{
    switch (status) {
      case BatchStatus::Ok:
        return "ok";
      case BatchStatus::Cancelled:
        return "cancelled";
      case BatchStatus::Rejected:
        return "rejected";
      case BatchStatus::Error:
        return "error";
    }
    return "?";
}

FaultCampaignConfig
BatchRequest::toCampaignConfig() const
{
    FaultCampaignConfig cfg;
    cfg.name = name;
    cfg.workloads = workloads;
    cfg.size = size;
    cfg.trialsPerWorkload = trialsPerWorkload;
    cfg.minFaultsPerTrial = minFaultsPerTrial;
    cfg.maxFaultsPerTrial = maxFaultsPerTrial;
    cfg.seed = seed;
    cfg.reliableMode = reliableMode;
    cfg.targets = targets;
    cfg.params.detect = detect;
    cfg.params.aPolicy = policy;
    if (reliableMode)
        cfg.params.irPred.enabled = false;
    cfg.cycleCapPerInst = cycleCapPerInst;
    return cfg;
}

void
encodeBatchRequest(wire::Encoder &enc, const BatchRequest &b)
{
    enc.putU8(uint8_t(b.kind));
    enc.putU64(b.id);
    enc.putString(b.name);
    enc.putU32(uint32_t(b.workloads.size()));
    for (const std::string &w : b.workloads)
        enc.putString(w);
    enc.putU8(uint8_t(b.size));
    enc.putU32(b.trialsPerWorkload);
    enc.putU32(b.minFaultsPerTrial);
    enc.putU32(b.maxFaultsPerTrial);
    enc.putU64(b.seed);
    enc.putBool(b.reliableMode);
    enc.putU32(uint32_t(b.targets.size()));
    for (FaultTarget t : b.targets)
        enc.putU8(uint8_t(t));
    enc.putU8(uint8_t(b.detect.kind));
    enc.putU64(b.detect.replayWindow);
    enc.putU32(b.detect.replayWidth);
    enc.putU32(b.detect.checkerBandwidth);
    enc.putU32(b.detect.checkerQueue);
    enc.putU8(uint8_t(b.policy.kind));
    enc.putU32(b.policy.runaheadTraces);
    enc.putU32(b.policy.missLines);
    enc.putU32(b.policy.cooldownTraces);
    enc.putU64(b.cycleCapPerInst);
    enc.putU64(b.seedBegin);
    enc.putU64(b.seedEnd);
}

BatchRequest
decodeBatchRequest(wire::Decoder &dec)
{
    BatchRequest b;
    b.kind = BatchKind(dec.getU8());
    b.id = dec.getU64();
    b.name = dec.getString();
    const uint32_t nw = dec.getU32();
    for (uint32_t i = 0; i < nw; ++i)
        b.workloads.push_back(dec.getString());
    b.size = WorkloadSize(dec.getU8());
    b.trialsPerWorkload = dec.getU32();
    b.minFaultsPerTrial = dec.getU32();
    b.maxFaultsPerTrial = dec.getU32();
    b.seed = dec.getU64();
    b.reliableMode = dec.getBool();
    const uint32_t nt = dec.getU32();
    for (uint32_t i = 0; i < nt; ++i)
        b.targets.push_back(FaultTarget(dec.getU8()));
    b.detect.kind = DetectBackendKind(dec.getU8());
    b.detect.replayWindow = dec.getU64();
    b.detect.replayWidth = dec.getU32();
    b.detect.checkerBandwidth = dec.getU32();
    b.detect.checkerQueue = dec.getU32();
    b.policy.kind = AStreamPolicyKind(dec.getU8());
    b.policy.runaheadTraces = dec.getU32();
    b.policy.missLines = dec.getU32();
    b.policy.cooldownTraces = dec.getU32();
    b.cycleCapPerInst = dec.getU64();
    b.seedBegin = dec.getU64();
    b.seedEnd = dec.getU64();
    return b;
}

void
encodeTrialResult(wire::Encoder &enc, const TrialResultMsg &m)
{
    enc.putU64(m.batchId);
    enc.putU64(m.index);
    enc.putBool(m.fromCache);
    enc.putString(m.line);
}

TrialResultMsg
decodeTrialResult(wire::Decoder &dec)
{
    TrialResultMsg m;
    m.batchId = dec.getU64();
    m.index = dec.getU64();
    m.fromCache = dec.getBool();
    m.line = dec.getString();
    return m;
}

void
encodeBatchDone(wire::Encoder &enc, const BatchDoneMsg &m)
{
    enc.putU64(m.batchId);
    enc.putU8(uint8_t(m.status));
    enc.putU64(m.completed);
    enc.putU64(m.revoked);
    enc.putU64(m.cacheHits);
    enc.putU64(m.cacheMisses);
    enc.putString(m.error);
}

BatchDoneMsg
decodeBatchDone(wire::Decoder &dec)
{
    BatchDoneMsg m;
    m.batchId = dec.getU64();
    m.status = BatchStatus(dec.getU8());
    m.completed = dec.getU64();
    m.revoked = dec.getU64();
    m.cacheHits = dec.getU64();
    m.cacheMisses = dec.getU64();
    m.error = dec.getString();
    return m;
}

void
encodeServeStats(wire::Encoder &enc, const ServeStats &s)
{
    enc.putU64(s.connections);
    enc.putU64(s.batches);
    enc.putU64(s.trialsRun);
    enc.putU64(s.trialsCached);
    enc.putU64(s.trialsRevoked);
    enc.putU64(s.cacheHits);
    enc.putU64(s.cacheMisses);
    enc.putU64(s.cacheStores);
    enc.putU64(s.cacheEvictions);
    enc.putBool(s.draining);
}

ServeStats
decodeServeStats(wire::Decoder &dec)
{
    ServeStats s;
    s.connections = dec.getU64();
    s.batches = dec.getU64();
    s.trialsRun = dec.getU64();
    s.trialsCached = dec.getU64();
    s.trialsRevoked = dec.getU64();
    s.cacheHits = dec.getU64();
    s.cacheMisses = dec.getU64();
    s.cacheStores = dec.getU64();
    s.cacheEvictions = dec.getU64();
    s.draining = dec.getBool();
    return s;
}

// ---------------------------------------------------------------------
// Handshake.
// ---------------------------------------------------------------------

bool
clientHandshake(int fd, const std::string &clientName, std::string &err)
{
    wire::Encoder hello;
    hello.putString(clientName);
    if (!wire::writeFrame(fd, wire::MsgType::Hello, hello.bytes())) {
        err = "handshake: server closed the connection";
        return false;
    }

    wire::FrameInfo reply;
    if (wire::readFrameInfo(fd, reply) != wire::ReadResult::Ok) {
        err = "handshake: no valid reply from server (not a slipd "
              "endpoint, or the connection died)";
        return false;
    }
    if (reply.type == wire::MsgType::HelloReject) {
        // The reject payload is versioned like its header; only trust
        // it when the server speaks our revision, otherwise the header
        // version is the diagnosis.
        std::string reason = "refused";
        uint16_t serverVersion = reply.version;
        if (reply.version == wire::kVersion) {
            wire::Decoder dec(reply.payload);
            serverVersion = dec.getU16();
            reason = dec.getString();
        }
        err = "handshake rejected: server speaks protocol v" +
              std::to_string(serverVersion) +
              ", this client speaks v" +
              std::to_string(wire::kVersion) + " (" + reason + ")";
        return false;
    }
    if (reply.type != wire::MsgType::HelloAck) {
        err = "handshake: unexpected frame type " +
              std::to_string(unsigned(reply.type)) + " from server";
        return false;
    }
    if (reply.version != wire::kVersion) {
        err = "handshake failed: server speaks protocol v" +
              std::to_string(reply.version) +
              ", this client speaks v" +
              std::to_string(wire::kVersion) +
              "; upgrade the older side";
        return false;
    }
    return true;
}

bool
serverHandshake(int fd, const std::string &serverName,
                std::string &clientName, std::string &err)
{
    wire::FrameInfo hello;
    if (wire::readFrameInfo(fd, hello) != wire::ReadResult::Ok) {
        err = "handshake: no valid Hello from client";
        return false;
    }
    if (hello.version != wire::kVersion ||
        hello.type != wire::MsgType::Hello) {
        const std::string reason =
            hello.type != wire::MsgType::Hello
                ? "first frame was not Hello"
                : "protocol revision mismatch";
        err = "handshake rejected: client speaks protocol v" +
              std::to_string(hello.version) +
              ", this server speaks v" +
              std::to_string(wire::kVersion) + " (" + reason + ")";
        wire::Encoder reject;
        reject.putU16(wire::kVersion);
        reject.putString(reason);
        wire::writeFrame(fd, wire::MsgType::HelloReject,
                         reject.bytes());
        return false;
    }
    wire::Decoder dec(hello.payload);
    clientName = dec.getString();

    wire::Encoder ack;
    ack.putU16(wire::kVersion);
    ack.putString(serverName);
    if (!wire::writeFrame(fd, wire::MsgType::HelloAck, ack.bytes())) {
        err = "handshake: client closed before HelloAck";
        return false;
    }
    return true;
}

} // namespace slip::serve
