/**
 * @file
 * Client library for the slipd campaign server — the engine behind
 * the slipc CLI and the serve_throughput bench.
 *
 * A Client owns one connection: connect (unix path or host:port),
 * handshake (version-checked, fails closed with a diagnosis), then
 * any number of batches, stats queries, or a drain request.
 * submitBatch() streams results to a callback in completion order;
 * callers wanting the canonical journal order sort by
 * TrialResultMsg::index when the batch finishes. Returning false from
 * the callback sends CancelBatch — the server revokes every
 * not-yet-dispatched trial and finishes the batch with
 * BatchStatus::Cancelled.
 */

#ifndef SLIPSTREAM_SERVE_CLIENT_HH
#define SLIPSTREAM_SERVE_CLIENT_HH

#include <functional>
#include <string>

#include "serve/serve_proto.hh"

namespace slip::serve
{

class Client
{
  public:
    /** Receives each result as it arrives; false requests cancel. */
    using OnResult = std::function<bool(const TrialResultMsg &)>;

    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Connect to `address`: "unix:PATH" (or a bare path containing
     * '/') for a Unix socket, "HOST:PORT" for TCP. False + `err` on
     * failure.
     */
    bool connect(const std::string &address, std::string &err);

    /** The version-checked Hello exchange (serve_proto.hh). */
    bool handshake(const std::string &clientName, std::string &err);

    /**
     * Run one batch. Returns true when the server finished the
     * exchange with a BatchDone (whatever its status — inspect
     * `done`); false + `err` on transport failure.
     */
    bool submitBatch(const BatchRequest &req, const OnResult &onResult,
                     BatchDoneMsg &done, std::string &err);

    bool queryStats(ServeStats &stats, std::string &err);

    /** Ask the server to drain (finish in-flight, reject new). */
    bool requestDrain(std::string &err);

    bool connected() const { return fd_ >= 0; }
    void close();

  private:
    int fd_ = -1;
};

} // namespace slip::serve

#endif // SLIPSTREAM_SERVE_CLIENT_HH
