#include "serve/client.hh"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace slip::serve
{

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::connect(const std::string &address, std::string &err)
{
    ::signal(SIGPIPE, SIG_IGN);
    close();

    std::string path;
    if (address.rfind("unix:", 0) == 0)
        path = address.substr(5);
    else if (address.find('/') != std::string::npos)
        path = address;

    if (!path.empty()) {
        struct sockaddr_un addr = {};
        if (path.size() >= sizeof(addr.sun_path)) {
            err = "unix socket path too long: " + path;
            return false;
        }
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0) {
            err = std::string("socket: ") + std::strerror(errno);
            return false;
        }
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            err = "connect '" + path + "': " + std::strerror(errno);
            close();
            return false;
        }
        return true;
    }

    const size_t colon = address.rfind(':');
    if (colon == std::string::npos || colon + 1 >= address.size()) {
        err = "bad address '" + address +
              "' (want unix:PATH or HOST:PORT)";
        return false;
    }
    const std::string host = address.substr(0, colon);
    const std::string port = address.substr(colon + 1);

    struct addrinfo hints = {};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo *res = nullptr;
    const int rc =
        ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
    if (rc != 0 || !res) {
        err = "resolve '" + host + "': " + gai_strerror(rc);
        return false;
    }
    fd_ = ::socket(res->ai_family, res->ai_socktype,
                   res->ai_protocol);
    if (fd_ < 0 ||
        ::connect(fd_, res->ai_addr, res->ai_addrlen) != 0) {
        err = "connect '" + address + "': " + std::strerror(errno);
        ::freeaddrinfo(res);
        close();
        return false;
    }
    ::freeaddrinfo(res);
    return true;
}

bool
Client::handshake(const std::string &clientName, std::string &err)
{
    if (fd_ < 0) {
        err = "not connected";
        return false;
    }
    return clientHandshake(fd_, clientName, err);
}

bool
Client::submitBatch(const BatchRequest &req, const OnResult &onResult,
                    BatchDoneMsg &done, std::string &err)
{
    if (fd_ < 0) {
        err = "not connected";
        return false;
    }
    wire::Encoder enc;
    encodeBatchRequest(enc, req);
    if (!wire::writeFrame(fd_, wire::MsgType::BatchRequest,
                          enc.bytes())) {
        err = "server closed the connection";
        return false;
    }

    bool cancelSent = false;
    for (;;) {
        wire::MsgType type;
        std::string payload;
        const wire::ReadResult r =
            wire::readFrame(fd_, type, payload);
        if (r != wire::ReadResult::Ok) {
            err = r == wire::ReadResult::Eof
                      ? "server closed mid-batch (drained or died)"
                      : "protocol error mid-batch (torn or foreign "
                        "frame)";
            return false;
        }
        if (type == wire::MsgType::TrialResult) {
            wire::Decoder dec(payload);
            const TrialResultMsg m = decodeTrialResult(dec);
            const bool keep = onResult ? onResult(m) : true;
            if (!keep && !cancelSent) {
                wire::Encoder cancel;
                cancel.putU64(req.id);
                // A failed cancel write means the server is gone; the
                // next read will say so.
                wire::writeFrame(fd_, wire::MsgType::CancelBatch,
                                 cancel.bytes());
                cancelSent = true;
            }
            continue;
        }
        if (type == wire::MsgType::BatchDone) {
            wire::Decoder dec(payload);
            done = decodeBatchDone(dec);
            return true;
        }
        err = "unexpected frame type " +
              std::to_string(unsigned(type)) + " mid-batch";
        return false;
    }
}

bool
Client::queryStats(ServeStats &stats, std::string &err)
{
    if (fd_ < 0) {
        err = "not connected";
        return false;
    }
    if (!wire::writeFrame(fd_, wire::MsgType::StatsRequest, {})) {
        err = "server closed the connection";
        return false;
    }
    wire::MsgType type;
    std::string payload;
    if (wire::readFrame(fd_, type, payload) != wire::ReadResult::Ok ||
        type != wire::MsgType::StatsReply) {
        err = "no stats reply";
        return false;
    }
    wire::Decoder dec(payload);
    stats = decodeServeStats(dec);
    return true;
}

bool
Client::requestDrain(std::string &err)
{
    if (fd_ < 0) {
        err = "not connected";
        return false;
    }
    if (!wire::writeFrame(fd_, wire::MsgType::DrainRequest, {})) {
        err = "server closed the connection";
        return false;
    }
    wire::MsgType type;
    std::string payload;
    if (wire::readFrame(fd_, type, payload) != wire::ReadResult::Ok ||
        type != wire::MsgType::DrainAck) {
        err = "no drain acknowledgment";
        return false;
    }
    return true;
}

} // namespace slip::serve
