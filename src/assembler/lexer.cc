#include "assembler/lexer.hh"

#include <cctype>

#include "common/logging.hh"

namespace slip
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
}

/** Decode one escape sequence; `i` points at the char after '\'. */
char
unescape(const std::string &s, size_t &i, int line)
{
    if (i >= s.size())
        SLIP_FATAL("line ", line, ": dangling escape");
    const char c = s[i++];
    switch (c) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case '\\': return '\\';
      case '\'': return '\'';
      case '"': return '"';
      default:
        SLIP_FATAL("line ", line, ": unknown escape '\\", c, "'");
    }
}

} // namespace

std::vector<Token>
tokenize(const std::string &source)
{
    std::vector<Token> tokens;
    int line = 1;
    size_t i = 0;
    const size_t n = source.size();
    size_t lineStart = 0;

    const auto col = [&](size_t pos) {
        return static_cast<int>(pos - lineStart) + 1;
    };
    const auto push = [&](TokKind kind, size_t pos, std::string text = "",
                          int64_t value = 0) {
        tokens.push_back({kind, std::move(text), value, line, col(pos)});
    };

    while (i < n) {
        const char c = source[i];

        if (c == '\n') {
            push(TokKind::EndOfLine, i);
            ++i;
            ++line;
            lineStart = i;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r') {
            ++i;
            continue;
        }
        if (c == '#' || c == ';') {
            while (i < n && source[i] != '\n')
                ++i;
            continue;
        }
        if (isIdentStart(c)) {
            const size_t start = i;
            while (i < n && isIdentChar(source[i]))
                ++i;
            push(TokKind::Identifier, start,
                 source.substr(start, i - start));
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            const size_t start = i;
            int64_t value = 0;
            if (c == '0' && i + 1 < n &&
                (source[i + 1] == 'x' || source[i + 1] == 'X')) {
                i += 2;
                if (i >= n ||
                    !std::isxdigit(static_cast<unsigned char>(source[i])))
                    SLIP_FATAL("line ", line, ": malformed hex literal");
                while (i < n &&
                       std::isxdigit(
                           static_cast<unsigned char>(source[i]))) {
                    const char d = source[i++];
                    const int dv = std::isdigit(
                                       static_cast<unsigned char>(d))
                                       ? d - '0'
                                       : (std::tolower(d) - 'a') + 10;
                    value = static_cast<int64_t>(
                        static_cast<uint64_t>(value) * 16 + dv);
                }
            } else {
                while (i < n &&
                       std::isdigit(
                           static_cast<unsigned char>(source[i]))) {
                    value = static_cast<int64_t>(
                        static_cast<uint64_t>(value) * 10 +
                        (source[i] - '0'));
                    ++i;
                }
            }
            push(TokKind::Integer, start, "", value);
            continue;
        }
        if (c == '\'') {
            const size_t start = i;
            ++i;
            if (i >= n)
                SLIP_FATAL("line ", line, ": unterminated char literal");
            char v;
            if (source[i] == '\\') {
                ++i;
                v = unescape(source, i, line);
            } else {
                v = source[i++];
            }
            if (i >= n || source[i] != '\'')
                SLIP_FATAL("line ", line, ": unterminated char literal");
            ++i;
            push(TokKind::Integer, start, "",
                 static_cast<int64_t>(static_cast<unsigned char>(v)));
            continue;
        }
        if (c == '"') {
            const size_t start = i;
            ++i;
            std::string text;
            while (i < n && source[i] != '"') {
                if (source[i] == '\n')
                    SLIP_FATAL("line ", line,
                               ": unterminated string literal");
                if (source[i] == '\\') {
                    ++i;
                    text += unescape(source, i, line);
                } else {
                    text += source[i++];
                }
            }
            if (i >= n)
                SLIP_FATAL("line ", line, ": unterminated string literal");
            ++i;
            push(TokKind::String, start, std::move(text));
            continue;
        }

        switch (c) {
          case ',': push(TokKind::Comma, i); break;
          case ':': push(TokKind::Colon, i); break;
          case '(': push(TokKind::LParen, i); break;
          case ')': push(TokKind::RParen, i); break;
          case '+': push(TokKind::Plus, i); break;
          case '-': push(TokKind::Minus, i); break;
          default:
            SLIP_FATAL("line ", line, ": unexpected character '", c, "'");
        }
        ++i;
    }

    // Terminate the final (possibly newline-less) line.
    if (tokens.empty() || tokens.back().kind != TokKind::EndOfLine ||
        tokens.back().line == line) {
        tokens.push_back({TokKind::EndOfLine, "", 0, line, col(i)});
    }
    return tokens;
}

} // namespace slip
