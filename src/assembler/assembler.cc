#include "assembler/assembler.hh"

#include <map>
#include <unordered_map>

#include "assembler/lexer.hh"
#include "assembler/parser.hh"
#include "common/bitutils.hh"
#include "common/logging.hh"
#include "isa/encoding.hh"
#include "isa/regnames.hh"

namespace slip
{

namespace
{

/** Reserved scratch register for assembler macro expansions. */
constexpr RegIndex kScratch = reg::k0 + 9; // k9

[[noreturn]] void
asmError(const Stmt &stmt, const std::string &what)
{
    SLIP_FATAL("line ", stmt.line, ": ", what, " (in '", stmt.name, "')");
}

/** Number of real instructions li expands to for a known constant. */
unsigned
liLength(int64_t v)
{
    if (fitsSigned(v, 12))
        return 1;
    if (fitsSigned(v, 30))
        return 2;
    const int64_t lo = sext(static_cast<uint64_t>(v) & 0xfff, 12);
    const int64_t rest = (v - lo) >> 12;
    return liLength(rest) + 2; // recursive materialize + slli + addi
}

/** Append the expansion of `li rd, v` to out. */
void
emitLi(std::vector<StaticInst> &out, RegIndex rd, int64_t v)
{
    if (fitsSigned(v, 12)) {
        out.push_back({Opcode::ADDI, rd, reg::zero, 0, v});
        return;
    }
    if (fitsSigned(v, 30)) {
        const int64_t hi = (v + 0x800) >> 12;
        const int64_t lo = v - (hi << 12);
        // Always emit the addi (even for lo == 0) so the expansion
        // length matches liLength() and pass-1 layout stays exact.
        out.push_back({Opcode::LUI, rd, 0, 0, hi});
        out.push_back({Opcode::ADDI, rd, rd, 0, lo});
        return;
    }
    const int64_t lo = sext(static_cast<uint64_t>(v) & 0xfff, 12);
    const int64_t rest = (v - lo) >> 12;
    emitLi(out, rd, rest);
    out.push_back({Opcode::SLLI, rd, rd, 0, 12});
    out.push_back({Opcode::ADDI, rd, rd, 0, lo});
}

/**
 * For fitsSigned(v, 30) values (all label addresses), the lui+addi pair
 * has a fixed worst-case length of 2; emitLi may produce 1 when the low
 * part is zero, so pad with NOP to keep pass-1 layout exact.
 */
void
emitLiFixed2(std::vector<StaticInst> &out, RegIndex rd, int64_t v)
{
    const size_t before = out.size();
    SLIP_ASSERT(fitsSigned(v, 30),
                "symbolic constant 0x", std::hex, v,
                " exceeds the 30-bit la/li range");
    const int64_t hi = (v + 0x800) >> 12;
    const int64_t lo = v - (hi << 12);
    out.push_back({Opcode::LUI, rd, 0, 0, hi});
    out.push_back({Opcode::ADDI, rd, rd, 0, lo});
    SLIP_ASSERT(out.size() - before == 2, "la expansion size drift");
}

/** Per-mnemonic operand shapes we accept. */
struct OperandView
{
    const Stmt &stmt;

    size_t count() const { return stmt.operands.size(); }

    void
    expectCount(size_t n) const
    {
        if (stmt.operands.size() != n)
            asmError(stmt, "expected " + std::to_string(n) +
                               " operand(s), got " +
                               std::to_string(stmt.operands.size()));
    }

    RegIndex
    reg(size_t i) const
    {
        const Operand &op = stmt.operands[i];
        if (op.kind != Operand::Kind::Reg)
            asmError(stmt, "operand " + std::to_string(i + 1) +
                               " must be a register");
        return op.reg;
    }

    const Expr &
    imm(size_t i) const
    {
        const Operand &op = stmt.operands[i];
        if (op.kind != Operand::Kind::Imm)
            asmError(stmt, "operand " + std::to_string(i + 1) +
                               " must be an immediate or symbol");
        return op.expr;
    }

    /** Memory operand: displacement expr + base register. */
    const Operand &
    mem(size_t i) const
    {
        const Operand &op = stmt.operands[i];
        if (op.kind != Operand::Kind::Mem)
            asmError(stmt, "operand " + std::to_string(i + 1) +
                               " must be disp(base)");
        return op;
    }
};

/** Resolves symbol expressions against the symbol table. */
class Resolver
{
  public:
    explicit Resolver(const std::map<std::string, Addr> &symbols)
        : symbols(symbols)
    {}

    int64_t
    value(const Expr &e, const Stmt &stmt) const
    {
        if (e.isLiteral())
            return e.offset;
        auto it = symbols.find(e.symbol);
        if (it == symbols.end())
            asmError(stmt, "undefined symbol '" + e.symbol + "'");
        return static_cast<int64_t>(it->second) + e.offset;
    }

  private:
    const std::map<std::string, Addr> &symbols;
};

/** Branch opcode family lookup for the b* mnemonics. */
const std::unordered_map<std::string, Opcode> branchOps = {
    {"beq", Opcode::BEQ}, {"bne", Opcode::BNE}, {"blt", Opcode::BLT},
    {"bge", Opcode::BGE}, {"bltu", Opcode::BLTU}, {"bgeu", Opcode::BGEU},
};

/** Swapped-operand pseudo branches: bgt a,b == blt b,a etc. */
const std::unordered_map<std::string, Opcode> swappedBranchOps = {
    {"bgt", Opcode::BLT}, {"ble", Opcode::BGE},
    {"bgtu", Opcode::BLTU}, {"bleu", Opcode::BGEU},
};

/** Zero-comparison pseudo branches: mnemonic -> {op, zeroIsFirst}. */
struct ZeroBranch
{
    Opcode op;
    bool zeroFirst;
};
const std::unordered_map<std::string, ZeroBranch> zeroBranchOps = {
    {"beqz", {Opcode::BEQ, false}}, {"bnez", {Opcode::BNE, false}},
    {"bltz", {Opcode::BLT, false}}, {"bgez", {Opcode::BGE, false}},
    {"blez", {Opcode::BGE, true}},  {"bgtz", {Opcode::BLT, true}},
};

const std::unordered_map<std::string, Opcode> rTypeOps = {
    {"add", Opcode::ADD}, {"sub", Opcode::SUB}, {"mul", Opcode::MUL},
    {"mulh", Opcode::MULH}, {"div", Opcode::DIV}, {"divu", Opcode::DIVU},
    {"rem", Opcode::REM}, {"remu", Opcode::REMU}, {"and", Opcode::AND},
    {"or", Opcode::OR}, {"xor", Opcode::XOR}, {"sll", Opcode::SLL},
    {"srl", Opcode::SRL}, {"sra", Opcode::SRA}, {"slt", Opcode::SLT},
    {"sltu", Opcode::SLTU},
};

const std::unordered_map<std::string, Opcode> iTypeOps = {
    {"addi", Opcode::ADDI}, {"andi", Opcode::ANDI}, {"ori", Opcode::ORI},
    {"xori", Opcode::XORI}, {"slli", Opcode::SLLI},
    {"srli", Opcode::SRLI}, {"srai", Opcode::SRAI},
    {"slti", Opcode::SLTI}, {"sltiu", Opcode::SLTIU},
};

const std::unordered_map<std::string, Opcode> loadOps = {
    {"lb", Opcode::LB}, {"lbu", Opcode::LBU}, {"lh", Opcode::LH},
    {"lhu", Opcode::LHU}, {"lw", Opcode::LW}, {"lwu", Opcode::LWU},
    {"ld", Opcode::LD},
};

const std::unordered_map<std::string, Opcode> storeOps = {
    {"sb", Opcode::SB}, {"sh", Opcode::SH}, {"sw", Opcode::SW},
    {"sd", Opcode::SD},
};

/**
 * Expansion length in real instructions of one Instruction statement.
 * Must agree exactly with expand() — pass 1 uses this for layout.
 */
unsigned
expansionLength(const Stmt &stmt)
{
    const std::string &m = stmt.name;
    const OperandView ops{stmt};

    if (m == "li") {
        ops.expectCount(2);
        const Operand &src = stmt.operands[1];
        if (src.kind == Operand::Kind::Imm && src.expr.isLiteral())
            return liLength(src.expr.offset);
        return 2; // symbolic: fixed lui+addi
    }
    if (m == "la")
        return 2;
    if (m == "push" || m == "pop")
        return 2;
    if ((loadOps.count(m) || storeOps.count(m)) && stmt.operands.size() >=
            2 && stmt.operands[1].kind == Operand::Kind::Imm) {
        return 3; // la k9, sym ; op reg, 0(k9)
    }
    return 1;
}

/**
 * Expand one Instruction statement into real instructions, appending
 * to `out`, which must be the whole text section so far (emit PCs for
 * branch offsets are derived from its length). Branch targets are
 * resolved through `resolver`.
 */
void
expand(const Stmt &stmt, const Resolver &resolver, Addr textBase,
       std::vector<StaticInst> &out)
{
    const std::string &m = stmt.name;
    const OperandView ops{stmt};

    /** Word offset from the next-emitted instruction to the target. */
    const auto branchOffset = [&](const Expr &e, unsigned width) {
        // A pure literal target IS the relative word offset — the
        // syntax the disassembler emits with absoluteTargets=false
        // ("beq a0, a1, +3"), so disassembled control flow
        // reassembles to the identical encoding. Symbolic targets
        // (labels, label+off) resolve to absolute addresses and are
        // converted to an offset from the emitting PC.
        int64_t words;
        if (e.isLiteral()) {
            words = e.offset;
        } else {
            const int64_t target = resolver.value(e, stmt);
            const int64_t delta =
                target -
                static_cast<int64_t>(textBase + out.size() * kInstBytes);
            if (delta % kInstBytes != 0)
                asmError(stmt, "misaligned branch target");
            words = delta / kInstBytes;
        }
        if (!fitsSigned(words, width))
            asmError(stmt, "branch target out of range (" +
                               std::to_string(words) + " words)");
        return words;
    };

    const auto imm12 = [&](const Expr &e) {
        const int64_t v = resolver.value(e, stmt);
        if (!fitsSigned(v, 12))
            asmError(stmt,
                     "immediate " + std::to_string(v) +
                         " does not fit in 12 bits (use li)");
        return v;
    };

    // --- real R-type ---
    if (auto it = rTypeOps.find(m); it != rTypeOps.end()) {
        ops.expectCount(3);
        out.push_back({it->second, ops.reg(0), ops.reg(1), ops.reg(2), 0});
        return;
    }
    // --- real I-type ALU ---
    if (auto it = iTypeOps.find(m); it != iTypeOps.end()) {
        ops.expectCount(3);
        out.push_back(
            {it->second, ops.reg(0), ops.reg(1), 0, imm12(ops.imm(2))});
        return;
    }
    // --- loads ---
    if (auto it = loadOps.find(m); it != loadOps.end()) {
        ops.expectCount(2);
        if (stmt.operands[1].kind == Operand::Kind::Mem) {
            const Operand &memOp = ops.mem(1);
            out.push_back({it->second, ops.reg(0), memOp.reg, 0,
                           imm12(memOp.expr)});
        } else {
            // lX rd, symbol  ->  la k9, symbol ; lX rd, 0(k9)
            emitLiFixed2(out, kScratch,
                         resolver.value(ops.imm(1), stmt));
            out.push_back({it->second, ops.reg(0), kScratch, 0, 0});
        }
        return;
    }
    // --- stores ---
    if (auto it = storeOps.find(m); it != storeOps.end()) {
        ops.expectCount(2);
        if (stmt.operands[1].kind == Operand::Kind::Mem) {
            const Operand &memOp = ops.mem(1);
            out.push_back({it->second, 0, memOp.reg, ops.reg(0),
                           imm12(memOp.expr)});
        } else {
            emitLiFixed2(out, kScratch,
                         resolver.value(ops.imm(1), stmt));
            out.push_back({it->second, 0, kScratch, ops.reg(0), 0});
        }
        return;
    }
    // --- branches ---
    if (auto it = branchOps.find(m); it != branchOps.end()) {
        ops.expectCount(3);
        const RegIndex a = ops.reg(0), b = ops.reg(1);
        out.push_back(
            {it->second, 0, a, b, branchOffset(ops.imm(2), 12)});
        return;
    }
    if (auto it = swappedBranchOps.find(m); it != swappedBranchOps.end()) {
        ops.expectCount(3);
        const RegIndex a = ops.reg(0), b = ops.reg(1);
        out.push_back(
            {it->second, 0, b, a, branchOffset(ops.imm(2), 12)});
        return;
    }
    if (auto it = zeroBranchOps.find(m); it != zeroBranchOps.end()) {
        ops.expectCount(2);
        const RegIndex r = ops.reg(0);
        const RegIndex rs1 = it->second.zeroFirst ? reg::zero : r;
        const RegIndex rs2 = it->second.zeroFirst ? r : reg::zero;
        out.push_back({it->second.op, 0, rs1, rs2,
                       branchOffset(ops.imm(1), 12)});
        return;
    }
    // --- jumps ---
    if (m == "jal") {
        ops.expectCount(2);
        out.push_back(
            {Opcode::JAL, ops.reg(0), 0, 0, branchOffset(ops.imm(1), 18)});
        return;
    }
    if (m == "j") {
        ops.expectCount(1);
        out.push_back(
            {Opcode::JAL, reg::zero, 0, 0, branchOffset(ops.imm(0), 18)});
        return;
    }
    if (m == "call") {
        ops.expectCount(1);
        out.push_back(
            {Opcode::JAL, reg::ra, 0, 0, branchOffset(ops.imm(0), 18)});
        return;
    }
    if (m == "jalr") {
        ops.expectCount(2);
        const Operand &memOp = ops.mem(1);
        out.push_back(
            {Opcode::JALR, ops.reg(0), memOp.reg, 0, imm12(memOp.expr)});
        return;
    }
    if (m == "jr") {
        ops.expectCount(1);
        out.push_back({Opcode::JALR, reg::zero, ops.reg(0), 0, 0});
        return;
    }
    if (m == "ret") {
        ops.expectCount(0);
        out.push_back({Opcode::JALR, reg::zero, reg::ra, 0, 0});
        return;
    }
    // --- moves / unary pseudos ---
    if (m == "mv") {
        ops.expectCount(2);
        out.push_back({Opcode::ADDI, ops.reg(0), ops.reg(1), 0, 0});
        return;
    }
    if (m == "not") {
        ops.expectCount(2);
        out.push_back({Opcode::XORI, ops.reg(0), ops.reg(1), 0, -1});
        return;
    }
    if (m == "neg") {
        ops.expectCount(2);
        out.push_back({Opcode::SUB, ops.reg(0), reg::zero, ops.reg(1), 0});
        return;
    }
    if (m == "seqz") {
        ops.expectCount(2);
        out.push_back({Opcode::SLTIU, ops.reg(0), ops.reg(1), 0, 1});
        return;
    }
    if (m == "snez") {
        ops.expectCount(2);
        out.push_back({Opcode::SLTU, ops.reg(0), reg::zero, ops.reg(1), 0});
        return;
    }
    if (m == "sltz") {
        ops.expectCount(2);
        out.push_back({Opcode::SLT, ops.reg(0), ops.reg(1), reg::zero, 0});
        return;
    }
    if (m == "sgtz") {
        ops.expectCount(2);
        out.push_back({Opcode::SLT, ops.reg(0), reg::zero, ops.reg(1), 0});
        return;
    }
    if (m == "lui") {
        ops.expectCount(2);
        const int64_t v = resolver.value(ops.imm(1), stmt);
        if (!fitsSigned(v, 18))
            asmError(stmt, "lui immediate out of 18-bit range");
        out.push_back({Opcode::LUI, ops.reg(0), 0, 0, v});
        return;
    }
    // --- constants ---
    if (m == "li") {
        ops.expectCount(2);
        const Operand &src = stmt.operands[1];
        if (src.kind != Operand::Kind::Imm)
            asmError(stmt, "li needs an immediate or symbol");
        if (src.expr.isLiteral())
            emitLi(out, ops.reg(0), src.expr.offset);
        else
            emitLiFixed2(out, ops.reg(0), resolver.value(src.expr, stmt));
        return;
    }
    if (m == "la") {
        ops.expectCount(2);
        emitLiFixed2(out, ops.reg(0), resolver.value(ops.imm(1), stmt));
        return;
    }
    // --- stack ---
    if (m == "push") {
        ops.expectCount(1);
        out.push_back({Opcode::ADDI, reg::sp, reg::sp, 0, -8});
        out.push_back({Opcode::SD, 0, reg::sp, ops.reg(0), 0});
        return;
    }
    if (m == "pop") {
        ops.expectCount(1);
        out.push_back({Opcode::LD, ops.reg(0), reg::sp, 0, 0});
        out.push_back({Opcode::ADDI, reg::sp, reg::sp, 0, 8});
        return;
    }
    // --- system ---
    if (m == "putc") {
        ops.expectCount(1);
        out.push_back({Opcode::PUTC, 0, ops.reg(0), 0, 0});
        return;
    }
    if (m == "putn") {
        ops.expectCount(1);
        out.push_back({Opcode::PUTN, 0, ops.reg(0), 0, 0});
        return;
    }
    if (m == "halt") {
        ops.expectCount(0);
        out.push_back({Opcode::HALT, 0, 0, 0, 0});
        return;
    }
    if (m == "nop") {
        ops.expectCount(0);
        out.push_back({Opcode::NOP, 0, 0, 0, 0});
        return;
    }

    asmError(stmt, "unknown mnemonic '" + m + "'");
}

enum class Section : uint8_t { Text, Data };

/** Size in bytes of one element of a data directive. */
unsigned
dataElemSize(const std::string &directive)
{
    if (directive == ".byte")
        return 1;
    if (directive == ".half")
        return 2;
    if (directive == ".word")
        return 4;
    if (directive == ".dword")
        return 8;
    return 0;
}

} // namespace

Program
assemble(const std::string &source)
{
    const std::vector<Stmt> stmts = parse(tokenize(source));

    std::map<std::string, Addr> symbols;
    const Addr textBase = layout::kTextBase;
    const Addr dataBase = layout::kDataBase;

    // ---- Pass 1: layout ----
    {
        Section section = Section::Text;
        uint64_t textWords = 0;
        uint64_t dataBytes = 0;

        for (const Stmt &stmt : stmts) {
            switch (stmt.kind) {
              case Stmt::Kind::Label: {
                const Addr addr =
                    section == Section::Text
                        ? textBase + textWords * kInstBytes
                        : dataBase + dataBytes;
                if (!symbols.emplace(stmt.name, addr).second)
                    asmError(stmt, "duplicate label '" + stmt.name + "'");
                break;
              }
              case Stmt::Kind::Directive: {
                const std::string &d = stmt.name;
                if (d == ".text") {
                    section = Section::Text;
                } else if (d == ".data") {
                    section = Section::Data;
                } else if (d == ".globl" || d == ".global") {
                    // accepted for compatibility; no effect
                } else if (d == ".equ") {
                    if (stmt.operands.size() != 2 ||
                        stmt.operands[0].kind != Operand::Kind::Imm ||
                        stmt.operands[0].expr.isLiteral() ||
                        stmt.operands[1].kind != Operand::Kind::Imm ||
                        !stmt.operands[1].expr.isLiteral()) {
                        asmError(stmt, ".equ name, literal");
                    }
                    const std::string &name = stmt.operands[0].expr.symbol;
                    if (name.empty())
                        asmError(stmt, ".equ needs a symbol name");
                    if (!symbols
                             .emplace(name, static_cast<Addr>(
                                                stmt.operands[1].expr
                                                    .offset))
                             .second) {
                        asmError(stmt, "duplicate symbol '" + name + "'");
                    }
                } else if (d == ".align") {
                    if (section != Section::Data)
                        asmError(stmt, ".align only valid in .data");
                    if (stmt.operands.size() != 1 ||
                        stmt.operands[0].kind != Operand::Kind::Imm ||
                        !stmt.operands[0].expr.isLiteral())
                        asmError(stmt, ".align needs a literal");
                    const uint64_t a = stmt.operands[0].expr.offset;
                    if (!isPowerOfTwo(a))
                        asmError(stmt, ".align must be a power of two");
                    dataBytes = (dataBytes + a - 1) & ~(a - 1);
                } else if (unsigned elem = dataElemSize(d)) {
                    if (section != Section::Data)
                        asmError(stmt, d + " only valid in .data");
                    dataBytes += elem * stmt.operands.size();
                } else if (d == ".ascii" || d == ".asciz") {
                    if (section != Section::Data)
                        asmError(stmt, d + " only valid in .data");
                    if (stmt.operands.size() != 1 ||
                        stmt.operands[0].kind != Operand::Kind::Str)
                        asmError(stmt, d + " needs one string");
                    dataBytes += stmt.operands[0].str.size() +
                                 (d == ".asciz" ? 1 : 0);
                } else if (d == ".space") {
                    if (section != Section::Data)
                        asmError(stmt, ".space only valid in .data");
                    if (stmt.operands.empty() ||
                        stmt.operands[0].kind != Operand::Kind::Imm ||
                        !stmt.operands[0].expr.isLiteral())
                        asmError(stmt, ".space needs a literal size");
                    dataBytes += stmt.operands[0].expr.offset;
                } else {
                    asmError(stmt, "unknown directive '" + d + "'");
                }
                break;
              }
              case Stmt::Kind::Instruction:
                if (section != Section::Text)
                    asmError(stmt, "instruction outside .text");
                textWords += expansionLength(stmt);
                break;
            }
        }
    }

    // ---- Pass 2: emit ----
    const Resolver resolver(symbols);
    std::vector<StaticInst> text;
    std::vector<uint8_t> data;

    for (const Stmt &stmt : stmts) {
        switch (stmt.kind) {
          case Stmt::Kind::Label:
            break;
          case Stmt::Kind::Directive: {
            const std::string &d = stmt.name;
            if (d == ".text" || d == ".data") {
                // section bookkeeping was all done in pass 1
            } else if (d == ".globl" || d == ".global" || d == ".equ") {
                // handled in pass 1 / no-op
            } else if (d == ".align") {
                const uint64_t a = stmt.operands[0].expr.offset;
                while (data.size() % a != 0)
                    data.push_back(0);
            } else if (unsigned elem = dataElemSize(d)) {
                for (const Operand &op : stmt.operands) {
                    if (op.kind != Operand::Kind::Imm)
                        asmError(stmt, "data values must be immediates");
                    const uint64_t v = static_cast<uint64_t>(
                        resolver.value(op.expr, stmt));
                    for (unsigned b = 0; b < elem; ++b)
                        data.push_back(
                            static_cast<uint8_t>(v >> (8 * b)));
                }
            } else if (d == ".ascii" || d == ".asciz") {
                for (char c : stmt.operands[0].str)
                    data.push_back(static_cast<uint8_t>(c));
                if (d == ".asciz")
                    data.push_back(0);
            } else if (d == ".space") {
                const int64_t count = stmt.operands[0].expr.offset;
                uint8_t fill = 0;
                if (stmt.operands.size() > 1) {
                    if (stmt.operands[1].kind != Operand::Kind::Imm ||
                        !stmt.operands[1].expr.isLiteral())
                        asmError(stmt, ".space fill must be a literal");
                    fill = static_cast<uint8_t>(
                        stmt.operands[1].expr.offset);
                }
                data.insert(data.end(), count, fill);
            }
            break;
          }
          case Stmt::Kind::Instruction: {
            const size_t before = text.size();
            const unsigned expect = expansionLength(stmt);
            expand(stmt, resolver, textBase, text);
            if (text.size() - before != expect) {
                SLIP_PANIC("pass1/pass2 size mismatch for '", stmt.name,
                           "' at line ", stmt.line, ": laid out ", expect,
                           ", emitted ", text.size() - before);
            }
            break;
          }
        }
    }

    std::vector<uint32_t> words;
    words.reserve(text.size());
    for (const StaticInst &inst : text)
        words.push_back(encode(inst));

    const Addr entry = symbols.count("main") ? symbols.at("main")
                                             : textBase;
    return Program(std::move(words), std::move(data), entry,
                   std::move(symbols), textBase, dataBase);
}

} // namespace slip
