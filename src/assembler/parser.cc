#include "assembler/parser.hh"

#include "common/logging.hh"
#include "isa/regnames.hh"

namespace slip
{

namespace
{

/** Cursor over the token stream with common error helpers. */
class Parser
{
  public:
    explicit Parser(const std::vector<Token> &tokens)
        : toks(tokens)
    {}

    std::vector<Stmt>
    run()
    {
        std::vector<Stmt> stmts;
        while (pos < toks.size())
            parseLine(stmts);
        return stmts;
    }

  private:
    const Token &peek() const { return toks[pos]; }

    const Token &
    advance()
    {
        SLIP_ASSERT(pos < toks.size(), "parser ran past end of tokens");
        return toks[pos++];
    }

    bool
    match(TokKind kind)
    {
        if (pos < toks.size() && toks[pos].kind == kind) {
            ++pos;
            return true;
        }
        return false;
    }

    [[noreturn]] void
    errorHere(const std::string &what) const
    {
        SLIP_FATAL("line ", peek().line, ":", peek().column, ": ", what);
    }

    void
    parseLine(std::vector<Stmt> &stmts)
    {
        // Leading labels: ident ':' (possibly several).
        while (peek().kind == TokKind::Identifier &&
               pos + 1 < toks.size() &&
               toks[pos + 1].kind == TokKind::Colon) {
            Stmt label{Stmt::Kind::Label, peek().text, {}, peek().line};
            stmts.push_back(std::move(label));
            pos += 2;
        }

        if (match(TokKind::EndOfLine))
            return;

        if (peek().kind != TokKind::Identifier)
            errorHere("expected mnemonic, directive, or label");

        const Token &head = advance();
        Stmt stmt;
        stmt.kind = head.text[0] == '.' ? Stmt::Kind::Directive
                                        : Stmt::Kind::Instruction;
        stmt.name = head.text;
        stmt.line = head.line;

        if (!match(TokKind::EndOfLine)) {
            stmt.operands.push_back(parseOperand());
            while (match(TokKind::Comma))
                stmt.operands.push_back(parseOperand());
            if (!match(TokKind::EndOfLine))
                errorHere("trailing tokens after operands");
        }
        stmts.push_back(std::move(stmt));
    }

    /** Parse `[+-] integer` or `symbol [± integer]` or string or reg. */
    Operand
    parseOperand()
    {
        Operand op;

        if (peek().kind == TokKind::String) {
            op.kind = Operand::Kind::Str;
            op.str = advance().text;
            return op;
        }

        if (peek().kind == TokKind::Identifier) {
            // Register, or a symbol expression.
            const std::string name = peek().text;
            if (auto r = parseRegName(name)) {
                advance();
                op.kind = Operand::Kind::Reg;
                op.reg = *r;
                return op;
            }
            advance();
            op.expr.symbol = name;
            if (match(TokKind::Plus))
                op.expr.offset = parseIntLiteral();
            else if (match(TokKind::Minus))
                op.expr.offset = -parseIntLiteral();
            return finishImmOrMem(op);
        }

        if (peek().kind == TokKind::Integer ||
            peek().kind == TokKind::Minus || peek().kind == TokKind::Plus) {
            op.expr.offset = parseSignedLiteral();
            return finishImmOrMem(op);
        }

        errorHere("expected operand");
    }

    /** After an expression, a '(' reg ')' suffix makes it a Mem operand. */
    Operand
    finishImmOrMem(Operand op)
    {
        if (match(TokKind::LParen)) {
            if (peek().kind != TokKind::Identifier)
                errorHere("expected base register");
            auto r = parseRegName(peek().text);
            if (!r)
                errorHere("'" + peek().text + "' is not a register");
            advance();
            if (!match(TokKind::RParen))
                errorHere("expected ')'");
            op.kind = Operand::Kind::Mem;
            op.reg = *r;
        } else {
            op.kind = Operand::Kind::Imm;
        }
        return op;
    }

    int64_t
    parseIntLiteral()
    {
        if (peek().kind != TokKind::Integer)
            errorHere("expected integer");
        return advance().value;
    }

    int64_t
    parseSignedLiteral()
    {
        int64_t sign = 1;
        if (match(TokKind::Minus))
            sign = -1;
        else
            match(TokKind::Plus);
        return sign * parseIntLiteral();
    }

    const std::vector<Token> &toks;
    size_t pos = 0;
};

} // namespace

std::vector<Stmt>
parse(const std::vector<Token> &tokens)
{
    return Parser(tokens).run();
}

} // namespace slip
