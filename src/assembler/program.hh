/**
 * @file
 * An assembled SSIR program: encoded text image, initialized data image,
 * symbol table, and entry point — plus a predecoded instruction array so
 * simulators can fetch without re-decoding on every access.
 */

#ifndef SLIPSTREAM_ASSEMBLER_PROGRAM_HH
#define SLIPSTREAM_ASSEMBLER_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"
#include "isa/micro_op.hh"

namespace slip
{

class Memory;

/** Default memory layout for assembled programs. */
namespace layout
{
constexpr Addr kTextBase = 0x1000;
constexpr Addr kDataBase = 0x100000;   // 1 MiB
constexpr Addr kStackTop = 0x4000000;  // 64 MiB, grows down
} // namespace layout

/** A loadable, executable SSIR program image. */
class Program
{
  public:
    Program(std::vector<uint32_t> textWords, std::vector<uint8_t> dataBytes,
            Addr entryPc, std::map<std::string, Addr> symbols,
            Addr textBase = layout::kTextBase,
            Addr dataBase = layout::kDataBase);

    Addr textBase() const { return textBase_; }
    Addr dataBase() const { return dataBase_; }
    Addr entry() const { return entry_; }

    /** One past the last text address. */
    Addr textEnd() const
    {
        return textBase_ + text.size() * kInstBytes;
    }

    size_t numInsts() const { return text.size(); }

    /** True if pc points at an instruction of this program. */
    bool
    validPc(Addr pc) const
    {
        return pc >= textBase_ && pc < textEnd() &&
               (pc - textBase_) % kInstBytes == 0;
    }

    /**
     * Fetch the decoded instruction at pc. Out-of-range or misaligned
     * PCs (reachable when a corrupted A-stream context jumps wild)
     * return HALT so the stream parks instead of crashing the host.
     */
    const StaticInst &fetch(Addr pc) const;

    /** Raw encoded word at pc (panics if pc is invalid). */
    uint32_t fetchRaw(Addr pc) const;

    /**
     * Predecoded micro-op at pc; the HALT micro-op for invalid PCs
     * (mirrors fetch()). Predecode is eager — done once in the
     * constructor — so a Program shared read-only across worker
     * threads (the ProgramCache case) needs no synchronisation here.
     */
    const MicroOp &
    microAt(Addr pc) const
    {
        if (!validPc(pc))
            return microHalt_;
        return micro_[(pc - textBase_) / kInstBytes];
    }

    /** The whole predecoded text image, indexed like `text`. */
    const std::vector<MicroOp> &microOps() const { return micro_; }

    /**
     * The encoded text image exactly as assembled. Together with
     * dataBytes() and entry() this is the program's complete identity
     * — the serve result cache hashes these (not the source string, so
     * comment/whitespace edits that assemble identically still hit).
     */
    const std::vector<uint32_t> &rawTextWords() const { return rawText; }

    /** The initialized data image (see rawTextWords()). */
    const std::vector<uint8_t> &dataBytes() const { return data; }

    /** Address of a label; fatal if absent. */
    Addr symbol(const std::string &name) const;

    bool hasSymbol(const std::string &name) const
    {
        return symbols_.count(name) != 0;
    }

    const std::map<std::string, Addr> &symbols() const { return symbols_; }

    /** Copy the data image into a simulated memory. */
    void loadInto(Memory &mem) const;

  private:
    std::vector<uint32_t> rawText;
    std::vector<StaticInst> text;
    std::vector<MicroOp> micro_;
    std::vector<uint8_t> data;
    Addr textBase_;
    Addr dataBase_;
    Addr entry_;
    std::map<std::string, Addr> symbols_;
    StaticInst haltInst;
    MicroOp microHalt_;
};

} // namespace slip

#endif // SLIPSTREAM_ASSEMBLER_PROGRAM_HH
