/**
 * @file
 * Parser for SSIR assembly: turns the token stream into a list of
 * statements (labels, directives, instructions) with structured
 * operands. Resolution of symbols and encoding happens later, in the
 * assembler proper.
 */

#ifndef SLIPSTREAM_ASSEMBLER_PARSER_HH
#define SLIPSTREAM_ASSEMBLER_PARSER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "assembler/lexer.hh"
#include "common/types.hh"

namespace slip
{

/**
 * A symbol-relative constant expression: `symbol + offset`, where the
 * symbol part is optional (pure literals have no symbol).
 */
struct Expr
{
    std::string symbol; // empty for pure literals
    int64_t offset = 0;

    bool isLiteral() const { return symbol.empty(); }
};

/** One parsed operand. */
struct Operand
{
    enum class Kind : uint8_t
    {
        Reg,  // t3
        Imm,  // 42, label, label+8
        Mem,  // 8(sp), label(t0)
        Str,  // "text" (directives only)
    };

    Kind kind = Kind::Imm;
    RegIndex reg = 0;   // Reg / Mem base
    Expr expr;          // Imm / Mem displacement
    std::string str;    // Str
};

/** One parsed source statement. */
struct Stmt
{
    enum class Kind : uint8_t
    {
        Label,       // name:
        Directive,   // .word 1, 2 — name holds ".word"
        Instruction, // mnemonic + operands
    };

    Kind kind;
    std::string name; // label name / directive / mnemonic
    std::vector<Operand> operands;
    int line = 0;
};

/**
 * Parse a token stream into statements. Multiple labels per line and a
 * label followed by an instruction on the same line are allowed.
 * Fatal (with line numbers) on grammar errors.
 */
std::vector<Stmt> parse(const std::vector<Token> &tokens);

} // namespace slip

#endif // SLIPSTREAM_ASSEMBLER_PARSER_HH
