#include "assembler/program.hh"

#include "common/logging.hh"
#include "isa/encoding.hh"
#include "mem/memory.hh"

namespace slip
{

Program::Program(std::vector<uint32_t> textWords,
                 std::vector<uint8_t> dataBytes, Addr entryPc,
                 std::map<std::string, Addr> symbols, Addr textBase,
                 Addr dataBase)
    : rawText(std::move(textWords)), data(std::move(dataBytes)),
      textBase_(textBase), dataBase_(dataBase), entry_(entryPc),
      symbols_(std::move(symbols))
{
    text.reserve(rawText.size());
    for (uint32_t w : rawText)
        text.push_back(decode(w));
    haltInst.op = Opcode::HALT;
    micro_.reserve(text.size());
    for (size_t i = 0; i < text.size(); ++i)
        micro_.push_back(
            predecode(text[i], textBase_ + i * kInstBytes));
    microHalt_ = predecode(haltInst, 0);
    SLIP_ASSERT(validPc(entry_) || text.empty(),
                "entry pc 0x", std::hex, entry_, " not in text");
}

const StaticInst &
Program::fetch(Addr pc) const
{
    if (!validPc(pc))
        return haltInst;
    return text[(pc - textBase_) / kInstBytes];
}

uint32_t
Program::fetchRaw(Addr pc) const
{
    SLIP_ASSERT(validPc(pc), "fetchRaw of invalid pc 0x", std::hex, pc);
    return rawText[(pc - textBase_) / kInstBytes];
}

Addr
Program::symbol(const std::string &name) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        SLIP_FATAL("undefined symbol '", name, "'");
    return it->second;
}

void
Program::loadInto(Memory &mem) const
{
    if (!data.empty())
        mem.writeBlock(dataBase_, data.data(), data.size());
}

} // namespace slip
