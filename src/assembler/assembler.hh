/**
 * @file
 * Two-pass SSIR assembler.
 *
 * Pass 1 lays out sections (text at 0x1000, data at 0x100000), assigns
 * label addresses, and computes the size of pseudo-instruction
 * expansions. Pass 2 resolves symbols and emits encoded words.
 *
 * Supported directives:
 *   .text .data .align N
 *   .byte/.half/.word/.dword e[, e...]   (values may be symbol±offset)
 *   .ascii "s"  .asciz "s"  .space N[, fill]
 *   .equ name, value   .globl name (accepted, ignored)
 *
 * Pseudo-instructions (expanded to real SSIR):
 *   li rd, imm64        la rd, symbol       mv rd, rs
 *   not/neg/seqz/snez/sltz/sgtz
 *   beqz/bnez/blez/bgez/bltz/bgtz rs, target
 *   bgt/ble/bgtu/bleu a, b, target
 *   j target   jr rs   call target   ret
 *   push rs    pop rd
 *   lX rd, symbol / sX rs, symbol  (global access via the reserved
 *   assembler scratch register k9)
 *
 * The program entry point is the label `main` if defined, otherwise the
 * first text instruction.
 */

#ifndef SLIPSTREAM_ASSEMBLER_ASSEMBLER_HH
#define SLIPSTREAM_ASSEMBLER_ASSEMBLER_HH

#include <string>

#include "assembler/program.hh"

namespace slip
{

/**
 * Assemble SSIR source text into a loadable program.
 * Throws FatalError (with source line numbers) on any user error:
 * unknown mnemonics, bad operand shapes, out-of-range immediates or
 * branch offsets, duplicate or undefined labels.
 */
Program assemble(const std::string &source);

} // namespace slip

#endif // SLIPSTREAM_ASSEMBLER_ASSEMBLER_HH
