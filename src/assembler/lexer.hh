/**
 * @file
 * Line-oriented lexer for SSIR assembly source.
 *
 * Token kinds: identifiers (mnemonics, labels, register names,
 * directives beginning with '.'), integer literals (decimal, hex,
 * character), string literals, and the punctuation the grammar needs
 * (comma, colon, parentheses, plus, minus). Comments run from '#' or
 * ';' to end of line.
 */

#ifndef SLIPSTREAM_ASSEMBLER_LEXER_HH
#define SLIPSTREAM_ASSEMBLER_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace slip
{

enum class TokKind : uint8_t
{
    Identifier, // foo, .data, main
    Integer,    // 42, -7 is Minus+Integer, 0x1f, 'a'
    String,     // "bytes"
    Comma,
    Colon,
    LParen,
    RParen,
    Plus,
    Minus,
    EndOfLine,
};

struct Token
{
    TokKind kind;
    std::string text;  // identifier/string payload
    int64_t value = 0; // integer payload
    int line = 0;
    int column = 0;
};

/**
 * Tokenize a full source buffer. Each source line yields its tokens
 * followed by one EndOfLine token; blank/comment-only lines yield just
 * the EndOfLine (keeping line numbers in diagnostics accurate).
 * Fatal on malformed literals.
 */
std::vector<Token> tokenize(const std::string &source);

} // namespace slip

#endif // SLIPSTREAM_ASSEMBLER_LEXER_HH
