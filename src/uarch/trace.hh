/**
 * @file
 * Trace identification and construction (Jacobson-style path-based
 * next-trace prediction substrate, paper §2.1.1).
 *
 * A trace is a dynamic instruction sequence of up to 32 instructions,
 * possibly spanning multiple taken branches. A trace id is the start PC
 * plus the outcomes of the embedded conditional branches; together with
 * the static program text this uniquely determines the instructions in
 * the trace.
 *
 * The selection policy is deterministic and static (required for trace
 * alignment between the IR-predictor, the A-stream, and the
 * IR-detector): a trace ends when it reaches the maximum length, or
 * just after an indirect jump (JALR) or HALT.
 *
 * Naming note: "trace" here means the trace-cache fetch unit above —
 * not the *observability* traces in src/obs/ (trace_event.hh), which
 * record simulator events for Perfetto. The two subsystems are
 * unrelated; see DESIGN.md §5.
 */

#ifndef SLIPSTREAM_UARCH_TRACE_HH
#define SLIPSTREAM_UARCH_TRACE_HH

#include <cstdint>
#include <string>

#include "common/bitutils.hh"
#include "common/types.hh"
#include "isa/isa.hh"

namespace slip
{

/** Maximum dynamic instructions per trace (paper: length-32 traces). */
constexpr unsigned kMaxTraceLen = 32;

/**
 * Trace selection policy. `endAtBackwardTaken` additionally terminates
 * traces after a taken backward branch (loop-closing edge). This keeps
 * trace boundaries phase-aligned with loop iterations, which the
 * single-confidence-counter-per-trace removal scheme needs: without
 * it, a loop whose body length does not divide the trace length
 * produces a different trace id per alignment phase and confidence
 * never saturates — the "unstable traces" effect the paper's §2.1.3
 * discusses. The ablation bench sweeps this knob.
 */
struct TracePolicy
{
    unsigned maxLen = kMaxTraceLen;
    bool endAtBackwardTaken = true;
};

/**
 * Should the trace end *after* this instruction? `taken` is the
 * instruction's (actual or presumed) direction and `nextPc` its
 * follow-on fetch address.
 */
inline bool
endsTraceAfter(const TracePolicy &policy, const StaticInst &si,
               bool taken, Addr pc, Addr nextPc)
{
    if (si.isIndirectJump() || si.isHalt())
        return true;
    if (policy.endAtBackwardTaken && si.isControl() && taken &&
        nextPc <= pc) {
        return true;
    }
    return false;
}

/** Identity of one dynamic trace. */
struct TraceId
{
    Addr startPc = 0;
    uint64_t branchBits = 0;  // bit i = taken-ness of i-th cond branch
    uint8_t numBranches = 0;
    uint8_t length = 0;       // instructions in the trace

    bool operator==(const TraceId &other) const = default;

    bool valid() const { return length > 0; }

    /** 64-bit identity hash for predictor indexing and tags. */
    uint64_t
    hash() const
    {
        uint64_t h = mix64(startPc);
        h = hashCombine(h, branchBits);
        h = hashCombine(h, (uint64_t(numBranches) << 8) | length);
        return h;
    }
};

/**
 * Incremental trace construction over a retired/walked instruction
 * stream. Shared by every component that segments the dynamic stream
 * into traces so the boundary policy exists in exactly one place.
 */
class TraceBuilder
{
  public:
    explicit TraceBuilder(const TracePolicy &policy = {})
        : policy(policy)
    {}

    /**
     * Feed the next instruction on the path.
     *
     * @param pc     the instruction's address
     * @param inst   the decoded instruction
     * @param taken  actual/predicted direction for conditional branches
     * @param nextPc the follow-on fetch address
     * @return true if this instruction *completes* the current trace;
     *         the completed id is then available via take().
     */
    bool
    feed(Addr pc, const StaticInst &inst, bool taken, Addr nextPc)
    {
        if (current.length == 0)
            current.startPc = pc;
        ++current.length;

        if (inst.isCondBranch() && current.numBranches < 64) {
            if (taken)
                current.branchBits |= 1ull << current.numBranches;
            ++current.numBranches;
        }

        const bool ends = current.length >= policy.maxLen ||
                          endsTraceAfter(policy, inst, taken, pc, nextPc);
        if (ends) {
            completed = current;
            current = TraceId{};
        }
        return ends;
    }

    /** The most recently completed trace id. */
    const TraceId &take() const { return completed; }

    /** Instructions accumulated in the in-progress trace. */
    unsigned pendingLength() const { return current.length; }

    /** Abandon the in-progress trace (stream redirected externally). */
    void reset() { current = TraceId{}; }

    unsigned maxLength() const { return policy.maxLen; }

  private:
    TracePolicy policy;
    TraceId current;
    TraceId completed;
};

/** Human-readable form, e.g. "{pc=0x1000 len=32 br=3 bits=TNT}". */
std::string to_string(const TraceId &id);

} // namespace slip

#endif // SLIPSTREAM_UARCH_TRACE_HH
