#include "uarch/fetch_source.hh"

#include "common/logging.hh"
#include "isa/regnames.hh"

namespace slip
{

TraceId
buildStaticTrace(const Program &program, Addr startPc,
                 const TracePolicy &policy)
{
    TraceId id;
    id.startPc = startPc;
    Addr pc = startPc;

    while (id.length < policy.maxLen) {
        const Addr here = pc;
        const StaticInst &si = program.fetch(here);
        ++id.length;

        bool taken = false;
        if (si.isCondBranch()) {
            // Backward-taken / forward-not-taken static heuristic.
            taken = si.imm < 0;
            if (taken && id.numBranches < 64)
                id.branchBits |= 1ull << id.numBranches;
            ++id.numBranches;
            pc = taken ? here + si.imm * kInstBytes : here + kInstBytes;
        } else if (si.op == Opcode::JAL) {
            taken = true;
            pc = here + si.imm * kInstBytes;
        } else {
            pc = here + kInstBytes;
        }
        if (endsTraceAfter(policy, si, taken, here, pc))
            break;
    }
    return id;
}

void
BlockSlicer::push(const DynInst &d, Addr fetchAddr,
                  std::deque<FetchBlock> &out)
{
    const bool discontinuous = open && fetchAddr != nextAddr;
    if (open && (discontinuous || current.insts.size() >= maxBlock))
        finish(out);

    if (!open) {
        current.startAddr = fetchAddr;
        open = true;
    }
    current.insts.push_back(d);
    nextAddr = fetchAddr + kInstBytes;

    // Blocks end at taken control flow and after mispredictions (the
    // core must not see past a front-end redirect point).
    const bool takenControl = d.exec.isControl && d.exec.taken;
    if (takenControl || d.mispredicted || d.si.isHalt())
        finish(out);
}

void
BlockSlicer::finish(std::deque<FetchBlock> &out)
{
    if (open && !current.insts.empty())
        out.push_back(std::move(current));
    current = FetchBlock{};
    open = false;
}

TraceFetchSource::TraceFetchSource(const Program &program,
                                   TracePredictor &predictor,
                                   unsigned fetchWidth,
                                   const TracePolicy &policy)
    : program(program), predictor(predictor), fetchWidth(fetchWidth),
      policy(policy), port(mem), state_(port),
      slicer(fetchWidth), stats_("fetch_source")
{
    program.loadInto(mem);
    state_.setPc(program.entry());
    state_.writeReg(reg::sp, layout::kStackTop);
}

TraceFetchSource::TraceFetchSource(const Program &program,
                                   TracePredictor &predictor,
                                   Memory &sharedMem,
                                   const ArchState &resumeFrom,
                                   unsigned fetchWidth,
                                   const TracePolicy &policy)
    : program(program), predictor(predictor), fetchWidth(fetchWidth),
      policy(policy), port(sharedMem), state_(port),
      slicer(fetchWidth), stats_("fetch_source")
{
    // Resume mode: the program image and data already live in
    // `sharedMem` (the slipstream R-stream ran there until now);
    // continue from the handed-over context instead of a cold start.
    state_.copyRegsFrom(resumeFrom);
    state_.setPc(resumeFrom.pc());
}

bool
TraceFetchSource::exhausted() const
{
    return haltWalked && blocks.empty();
}

bool
TraceFetchSource::nextBlock(FetchBlock &block)
{
    while (blocks.empty()) {
        if (haltWalked)
            return false;
        walkTrace();
    }
    block = std::move(blocks.front());
    blocks.pop_front();
    return true;
}

void
TraceFetchSource::walkTrace()
{
    const Addr startPc = state_.pc();

    // --- choose the front end's guess for this trace ---
    std::optional<TraceId> pred;
    if (cachedNextPredValid) {
        pred = cachedNextPred;
        cachedNextPredValid = false;
    } else {
        pred = predictor.predict(history);
    }

    TraceId guess;
    if (pred && pred->valid() && pred->startPc == startPc &&
        program.validPc(startPc)) {
        guess = *pred;
        ++statTracesPredicted;
    } else {
        guess = buildStaticTrace(program, startPc, policy);
        ++statTracesFallback;
    }

    const PathHistory historyBefore = history;
    const uint64_t traceNum = nextTraceNum++;

    // --- walk the trace, executing on the architectural state ---
    TraceId actual;
    actual.startPc = startPc;
    unsigned branchIdx = 0;
    const unsigned lengthCap =
        std::min<unsigned>(guess.length ? guess.length : policy.maxLen,
                           policy.maxLen);

    DynInst last;
    bool anyEmitted = false;
    bool truncated = false;

    while (actual.length < lengthCap) {
        const Addr pc = state_.pc();
        const StaticInst &si = program.fetch(pc);

        DynInst d;
        d.seq = nextSeq++;
        d.pc = pc;
        d.si = si;
        d.packetSeq = traceNum;
        d.packetSlot = static_cast<uint8_t>(actual.length);
        d.exec = executeMicro(state_, program.microAt(pc), &output_);
        ++actual.length;

        if (si.isCondBranch()) {
            const bool predTaken =
                branchIdx < guess.numBranches
                    ? ((guess.branchBits >> branchIdx) & 1) != 0
                    : si.imm < 0; // BTFN beyond known bits
            ++branchIdx;
            if (d.exec.taken && actual.numBranches < 64)
                actual.branchBits |= 1ull << actual.numBranches;
            ++actual.numBranches;
            if (predTaken != d.exec.taken) {
                d.mispredicted = true;
                truncated = true;
            }
        } else if (si.op == Opcode::JAL && si.rd == reg::ra) {
            ras.push(pc + kInstBytes); // call: remember return address
        } else if (si.isIndirectJump() && si.rd == reg::ra) {
            ras.push(pc + kInstBytes); // indirect call
        }

        const bool structuralEnd =
            endsTraceAfter(policy, si, d.exec.taken, pc, d.exec.nextPc);
        if (si.isHalt())
            haltWalked = true;

        slicer.push(d, pc, blocks);
        last = d;
        anyEmitted = true;

        if (truncated || structuralEnd)
            break;
    }

    SLIP_ASSERT(anyEmitted, "walked an empty trace at pc 0x", std::hex,
                startPc);

    // --- update speculative history with the actual trace ---
    history.push(actual);
    pendingTrain.emplace(
        traceNum, PendingTrain{historyBefore, actual, last.seq});

    if (truncated)
        ++statTraceMispredicts;

    if (haltWalked) {
        slicer.finish(blocks);
        return;
    }

    // --- validate the next fetch address (JALR target prediction) ---
    const Addr actualNext = state_.pc();
    if (last.si.isIndirectJump() && !truncated) {
        std::optional<TraceId> next = predictor.predict(history);
        Addr predictedTarget = 0;
        if (next && next->valid()) {
            predictedTarget = next->startPc;
        } else if (last.si.rs1 == reg::ra &&
                   last.si.rd == reg::zero) {
            predictedTarget = ras.pop(); // return: use the RAS
        }
        if (predictedTarget != actualNext) {
            // The front end could not know the target: charge a
            // misprediction on the indirect jump itself.
            ++statIndirectMispredicts;
            // Patch the already-sliced last instruction.
            SLIP_ASSERT(!blocks.empty() && !blocks.back().insts.empty(),
                        "indirect jump block missing");
            blocks.back().insts.back().mispredicted = true;
        } else if (last.si.rs1 == reg::ra && last.si.rd == reg::zero &&
                   next && next->valid()) {
            // Predictor supplied the target; keep the RAS balanced.
            ras.pop();
        }
        cachedNextPred = next;
        cachedNextPredValid = true;
    }

    slicer.finish(blocks);
}

void
TraceFetchSource::notifyRetire(const DynInst &d)
{
    auto it = pendingTrain.find(d.packetSeq);
    if (it == pendingTrain.end())
        return;
    if (d.seq != it->second.lastSeq)
        return;
    predictor.update(it->second.history, it->second.actual);
    pendingTrain.erase(it);
}

} // namespace slip
