#include "uarch/core.hh"

#include "common/logging.hh"
#include "obs/trace_session.hh"

namespace slip
{

OoOCore::OoOCore(const CoreParams &params, FetchSource &source)
    : params_(params), source(source),
      icache_([&] {
          CacheParams c = params.icache;
          c.name = params.name + ".icache";
          return c;
      }()),
      dcache_([&] {
          CacheParams c = params.dcache;
          c.name = params.name + ".dcache";
          return c;
      }()),
      slotsUsed(kRingSize, 0), slotsTag(kRingSize, ~Cycle(0)),
      stats_(params.name)
{
    stats_.link("retired", retired);
    stats_.link("retired_cond_branches", numRetiredCondBranches);
    stats_.link("branch_mispredicts", numBranchMispredicts);
    stats_.link("dispatched", numDispatched);
    stats_.link("fetched", numFetched);
    stats_.link("fetch_only_removed", numFetchOnlyRemoved);
    stats_.link("flushes", numFlushes);
}

Cycle
OoOCore::execLatency(const StaticInst &si) const
{
    switch (si.opClass()) {
      case OpClass::IntAlu:
        return 1;
      case OpClass::IntMult:
        return params_.intMultLat;
      case OpClass::IntDiv:
        return params_.intDivLat;
      case OpClass::Load:
        return 1; // address generation; cache access added separately
      case OpClass::Store:
        return 1; // address generation
      case OpClass::Branch:
      case OpClass::Jump:
      case OpClass::Syscall:
        return 1;
    }
    return 1;
}

Cycle
OoOCore::claimIssueSlot(Cycle earliest)
{
    Cycle c = earliest;
    while (true) {
        const size_t idx = static_cast<size_t>(c) & (kRingSize - 1);
        if (slotsTag[idx] != c) {
            slotsTag[idx] = c;
            slotsUsed[idx] = 0;
        }
        if (slotsUsed[idx] < params_.issueWidth) {
            ++slotsUsed[idx];
            return c;
        }
        ++c;
    }
}

void
OoOCore::tick(Cycle now)
{
    if (halted_)
        return;
    doRetire(now);
    doDispatch(now);
    doFetch(now);
    // Coarse per-core throughput samples; the core tag (first byte of
    // the stats name, 'a'/'r'/'c') rides in arg1 to keep the tracks
    // apart without a per-core name table.
    if ((now & 4095) == 0 && SLIP_TRACE_ACTIVE(obs::Category::Core)) {
        [[maybe_unused]] const uint64_t tag =
            params_.name.empty()
                ? '?'
                : static_cast<unsigned char>(params_.name[0]);
        SLIP_TRACE(obs::Category::Core, obs::Name::CoreRetired,
                   obs::Phase::Counter, retired, tag);
        SLIP_TRACE(obs::Category::Core, obs::Name::CoreFetched,
                   obs::Phase::Counter, numFetched, tag);
    }
}

void
OoOCore::doRetire(Cycle now)
{
    unsigned count = 0;
    while (count < params_.retireWidth && !rob.empty() &&
           rob.front().completeAt <= now) {
        const DynInst &d = rob.front().d;
        if (onRetire && !onRetire(d, now))
            break; // back-pressure: retry next cycle
        ++retired;
        lastRetire = now;
        if (d.si.isCondBranch())
            ++numRetiredCondBranches;
        if (d.mispredicted)
            ++numBranchMispredicts;
        if (d.si.isHalt())
            halted_ = true;
        rob.pop_front();
        ++count;
        if (halted_)
            return;
    }
}

void
OoOCore::doDispatch(Cycle now)
{
    unsigned count = 0;
    while (count < params_.dispatchWidth && !fetchBuffer.empty() &&
           fetchBuffer.front().readyAt <= now &&
           rob.size() < params_.robSize) {
        DynInst d = fetchBuffer.front().d;
        fetchBuffer.pop_front();
        ++count;
        ++numDispatched;

        // Operand readiness through the register scoreboard (skipped
        // entirely when the delay buffer supplies source values).
        Cycle depReady = now;
        if (!d.valuePredicted) {
            RegIndex srcs[2];
            d.si.srcRegs(srcs);
            for (RegIndex s : srcs) {
                if (s != kNoReg && s != kZeroReg)
                    depReady = std::max(depReady, regReady[s]);
            }
            if (d.si.isLoad()) {
                // Perfect disambiguation + store-to-load forwarding:
                // wait for the youngest earlier store to these bytes.
                const Addr first = d.exec.memAddr >> 3;
                const Addr last =
                    (d.exec.memAddr + d.exec.memBytes - 1) >> 3;
                for (Addr k = first; k <= last; ++k) {
                    auto it = storeReady.find(k);
                    if (it != storeReady.end())
                        depReady = std::max(depReady, it->second);
                }
            }
        }

        const Cycle issueAt = claimIssueSlot(std::max(depReady, now + 1));
        Cycle completeAt = issueAt + execLatency(d.si);

        if (d.si.isLoad()) {
            completeAt += dcache_.access(d.exec.memAddr);
        } else if (d.si.isStore()) {
            // Charge the access for cache state/bandwidth statistics;
            // forwarding makes the data available at address
            // generation, so dependents do not wait for the write.
            dcache_.access(d.exec.memAddr);
            const Addr first = d.exec.memAddr >> 3;
            const Addr last = (d.exec.memAddr + d.exec.memBytes - 1) >> 3;
            for (Addr k = first; k <= last; ++k)
                storeReady[k] = completeAt;
            if (storeReady.size() > (1u << 16)) {
                std::erase_if(storeReady, [now](const auto &kv) {
                    return kv.second <= now;
                });
            }
        }

        if (d.exec.wroteReg)
            regReady[d.exec.destReg] = completeAt;

        if (d.mispredicted) {
            // The branch resolves at completion; fetch restarts on the
            // corrected path after the redirect penalty.
            fetchResumeAt =
                std::max(fetchResumeAt, completeAt + params_.redirectPenalty);
            if (fetchBlockedOnBranch && blockedBranchSeq == d.seq)
                fetchBlockedOnBranch = false;
        }

        rob.push_back({std::move(d), completeAt});
    }
}

void
OoOCore::doFetch(Cycle now)
{
    if (halted_ || fetchBlockedOnBranch || now < fetchResumeAt)
        return;
    if (fetchBuffer.size() + params_.fetchWidth > params_.fetchBufferCap)
        return;

    FetchBlock block;
    if (!source.nextBlock(block))
        return;
    if (block.insts.empty())
        return;

    SLIP_ASSERT(block.insts.size() <= params_.fetchWidth,
                "fetch block of ", block.insts.size(),
                " exceeds fetch width ", params_.fetchWidth);

    // I-cache: charge every line the block touches; the block is
    // delivered after the slowest access (2-way interleaving fetches
    // a full block across a line boundary in one attempt).
    const unsigned lineBytes = icache_.params().lineBytes;
    const Addr firstLine = block.startAddr / lineBytes;
    const Addr lastLine =
        (block.startAddr + (block.insts.size() - 1) * kInstBytes) /
        lineBytes;
    Cycle latency = 0;
    for (Addr line = firstLine; line <= lastLine; ++line)
        latency = std::max(latency, icache_.access(line * lineBytes));
    const Cycle extra = latency > icache_.params().hitLatency
                            ? latency - icache_.params().hitLatency
                            : 0;
    if (extra > 0) {
        // A miss occupies the fetch unit until the line arrives.
        fetchResumeAt = std::max(fetchResumeAt, now + extra);
    }

    const Cycle readyAt = now + params_.fetchToDispatch + extra;
    for (DynInst &d : block.insts) {
        ++numFetched;
        if (d.fetchOnly) {
            // Removed by the ir-vec between fetch and decode: consumes
            // fetch bandwidth only.
            ++numFetchOnlyRemoved;
            continue;
        }
        if (d.mispredicted) {
            // Sources must end a block at a mispredicted control
            // instruction: what follows is the corrected path, which
            // the front end cannot see until the branch resolves.
            SLIP_ASSERT(&d == &block.insts.back(),
                        "mispredicted instruction not last in block");
            fetchBlockedOnBranch = true;
            blockedBranchSeq = d.seq;
        }
        fetchBuffer.push_back({std::move(d), readyAt});
    }
}

void
OoOCore::flush(Cycle now, Cycle resumeFetchAt)
{
    SLIP_TRACE(obs::Category::Core, obs::Name::CoreFlush,
               obs::Phase::Instant, fetchBuffer.size() + rob.size(),
               params_.name.empty()
                   ? '?'
                   : static_cast<unsigned char>(params_.name[0]));
    fetchBuffer.clear();
    rob.clear();
    regReady.fill(now);
    storeReady.clear();
    fetchBlockedOnBranch = false;
    fetchResumeAt = resumeFetchAt;
    // A flush is a full restart: an A-stream that speculatively walked
    // (and retired) a wrong-path HALT must resume after recovery.
    halted_ = false;
    ++numFlushes;
}

} // namespace slip
