/**
 * @file
 * Hybrid path-based next-trace predictor (Jacobson, Rotenberg, Smith —
 * "Path-Based Next Trace Prediction"; the paper's §2.1.1 builds its
 * IR-predictor on this design).
 *
 * Two tables predict the id of the next trace:
 *  - a correlated table indexed by a hash of the last 8 trace ids,
 *    with the hash favoring bits of more recent ids;
 *  - a simple table indexed by only the most recent trace id (shorter
 *    learning time, less aliasing pressure).
 * Each entry holds a predicted trace id and a 2-bit counter used both
 * for replacement and as the hybrid selector: the correlated table
 * wins when its counter is nonzero.
 *
 * Path history is owned by the *user* of the predictor (each stream
 * keeps its own speculative history and repairs it on mispredictions
 * and recoveries), so history management is explicit here.
 */

#ifndef SLIPSTREAM_UARCH_TRACE_PRED_HH
#define SLIPSTREAM_UARCH_TRACE_PRED_HH

#include <array>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "uarch/trace.hh"

namespace slip
{

/** Rolling path history of the last N trace ids (as hashes). */
class PathHistory
{
  public:
    static constexpr unsigned kDepth = 8;

    PathHistory() { clear(); }

    void
    push(const TraceId &id)
    {
        for (unsigned i = kDepth - 1; i > 0; --i)
            ids[i] = ids[i - 1];
        ids[0] = id.hash();
    }

    /** Replace the most recent entry (mispredict repair). */
    void repairLast(const TraceId &id) { ids[0] = id.hash(); }

    void clear() { ids.fill(0); }

    /**
     * Index hash over the full path, weighting recent traces more:
     * older ids are shifted right so fewer of their bits survive into
     * the low-order index bits.
     */
    uint64_t
    correlatedHash() const
    {
        uint64_t h = 0;
        for (unsigned i = 0; i < kDepth; ++i)
            h = hashCombine(h, ids[i] >> (2 * i));
        return h;
    }

    /** Hash of only the most recent trace id. */
    uint64_t simpleHash() const { return mix64(ids[0]); }

    /** Copy another stream's history (used at recovery resync). */
    void copyFrom(const PathHistory &other) { ids = other.ids; }

  private:
    std::array<uint64_t, kDepth> ids;
};

/** Configuration for the trace predictor (paper Table 2 defaults). */
struct TracePredParams
{
    unsigned correlatedBits = 16; // 2^16-entry path-based table
    unsigned simpleBits = 16;     // 2^16-entry simple table
};

/** The hybrid next-trace predictor. */
class TracePredictor
{
  public:
    explicit TracePredictor(const TracePredParams &params = {});

    /**
     * Predict the trace that follows the given path history.
     * Returns nullopt when neither table has a (plausibly) useful
     * entry — the fetch unit then falls back to static construction.
     */
    std::optional<TraceId> predict(const PathHistory &history) const;

    /**
     * Train with the actual next trace for the path that *preceded*
     * it. Both tables update their entry: matching predictions gain
     * counter confidence, mismatches decay and eventually replace.
     */
    void update(const PathHistory &history, const TraceId &actual);

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    struct Entry
    {
        bool valid = false;
        TraceId pred;
        uint8_t counter = 0; // 2-bit saturating
    };

    static void trainEntry(Entry &entry, const TraceId &actual);

    size_t correlatedIndex(const PathHistory &history) const;
    size_t simpleIndex(const PathHistory &history) const;

    TracePredParams params;
    std::vector<Entry> correlated;
    std::vector<Entry> simple;
    mutable StatGroup stats_;
    StatGroup::Handle statPredictCorrelated{
        stats_.handle("predict_correlated")};
    StatGroup::Handle statPredictSimple{stats_.handle("predict_simple")};
    StatGroup::Handle statPredictCorrelatedWeak{
        stats_.handle("predict_correlated_weak")};
    StatGroup::Handle statPredictNone{stats_.handle("predict_none")};
    StatGroup::Handle statUpdates{stats_.handle("updates")};
};

} // namespace slip

#endif // SLIPSTREAM_UARCH_TRACE_PRED_HH
