#include "uarch/ss_processor.hh"

#include "common/logging.hh"
#include "obs/trace_session.hh"

namespace slip
{

namespace
{
/** Cycles with no retirement before the model declares deadlock. */
constexpr Cycle kWatchdogInterval = 1'000'000;
} // namespace

SSProcessor::SSProcessor(const Program &program,
                         const CoreParams &coreParams,
                         const TracePredParams &predParams,
                         const TracePolicy &tracePolicy)
    : predictor_(std::make_unique<TracePredictor>(predParams)),
      source_(std::make_unique<TraceFetchSource>(program, *predictor_,
                                                 coreParams.fetchWidth,
                                                 tracePolicy)),
      core_(std::make_unique<OoOCore>(coreParams, *source_))
{
    core_->onRetire = [this](const DynInst &d, Cycle) {
        source_->notifyRetire(d);
        return true;
    };
}

SSRunResult
SSProcessor::run(Cycle maxCycles, const CancelToken *cancel)
{
    Cycle now = 0;
    Cycle lastProgress = 0;
    bool cancelled = false;

    while (!core_->halted() && (maxCycles == 0 || now < maxCycles)) {
        if (cancel && cancel->cancelled()) {
            cancelled = true;
            break;
        }
        SLIP_TRACE_SET_CYCLE(now);
        core_->tick(now);
        if (core_->lastRetireCycle() > lastProgress)
            lastProgress = core_->lastRetireCycle();
        if (now - lastProgress > kWatchdogInterval) {
            SLIP_PANIC("SSProcessor deadlock: no retirement since cycle ",
                       lastProgress, " (now ", now, ", retired ",
                       core_->retiredCount(), ")");
        }
        ++now;
    }

    SSRunResult result;
    result.cycles = now;
    result.retired = core_->retiredCount();
    result.condBranches = core_->retiredCondBranches();
    result.branchMispredicts = core_->branchMispredicts();
    result.output = source_->output();
    result.halted = core_->halted();
    result.cancelled = cancelled;
    return result;
}

} // namespace slip
