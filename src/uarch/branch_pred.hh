/**
 * @file
 * Conventional single-branch predictors: bimodal and gshare, plus a
 * return-address stack. Figure 1 shows each core keeping its
 * conventional branch predictor (disconnected while slipstreaming);
 * these are used by ablation studies comparing trace-based and
 * conventional prediction, and the RAS assists static fallback trace
 * construction in the fetch unit.
 */

#ifndef SLIPSTREAM_UARCH_BRANCH_PRED_HH
#define SLIPSTREAM_UARCH_BRANCH_PRED_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace slip
{

/** Classic 2-bit bimodal predictor. */
class BimodalPredictor
{
  public:
    explicit BimodalPredictor(unsigned indexBits = 14);

    bool predict(Addr pc) const;
    void update(Addr pc, bool taken);

  private:
    size_t index(Addr pc) const;

    unsigned indexBits;
    std::vector<uint8_t> table; // 2-bit counters
};

/** Gshare: global history XOR PC indexing a 2-bit counter table. */
class GsharePredictor
{
  public:
    explicit GsharePredictor(unsigned indexBits = 14,
                             unsigned historyBits = 12);

    bool predict(Addr pc) const;

    /** Update the counter and shift the outcome into global history. */
    void update(Addr pc, bool taken);

    StatGroup &stats() { return stats_; }

  private:
    size_t index(Addr pc) const;

    unsigned indexBits;
    unsigned historyBits;
    uint64_t history = 0;
    std::vector<uint8_t> table;
    StatGroup stats_;
    StatGroup::Handle statUpdates{stats_.handle("updates")};
    StatGroup::Handle statMispredicts{stats_.handle("mispredicts")};
};

/** Bounded return-address stack. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth = 32)
        : depth(depth)
    {}

    void
    push(Addr ra)
    {
        if (entries.size() == depth)
            entries.erase(entries.begin());
        entries.push_back(ra);
    }

    /** Pop the predicted return target; 0 if empty. */
    Addr
    pop()
    {
        if (entries.empty())
            return 0;
        const Addr ra = entries.back();
        entries.pop_back();
        return ra;
    }

    bool empty() const { return entries.empty(); }
    void clear() { entries.clear(); }

  private:
    unsigned depth;
    std::vector<Addr> entries;
};

} // namespace slip

#endif // SLIPSTREAM_UARCH_BRANCH_PRED_HH
