/**
 * @file
 * A conventional single-core superscalar processor model: one OoOCore
 * fed by a TraceFetchSource. Instantiated as SS(64x4) and SS(128x8)
 * in the paper's evaluation (§5).
 */

#ifndef SLIPSTREAM_UARCH_SS_PROCESSOR_HH
#define SLIPSTREAM_UARCH_SS_PROCESSOR_HH

#include <memory>
#include <string>

#include "assembler/program.hh"
#include "common/cancel.hh"
#include "uarch/core.hh"
#include "uarch/fetch_source.hh"
#include "uarch/trace_pred.hh"

namespace slip
{

/** Results of a timing-simulator run. */
struct SSRunResult
{
    Cycle cycles = 0;
    uint64_t retired = 0;
    uint64_t condBranches = 0;
    uint64_t branchMispredicts = 0;
    std::string output;
    bool halted = false;

    /** A supervisor's CancelToken ended the run early. */
    bool cancelled = false;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(retired) / cycles : 0.0;
    }

    /** Branch mispredictions per 1000 retired instructions. */
    double
    mispPer1000() const
    {
        return retired
                   ? 1000.0 * static_cast<double>(branchMispredicts) /
                         retired
                   : 0.0;
    }
};

/** Single conventional superscalar processor. */
class SSProcessor
{
  public:
    SSProcessor(const Program &program, const CoreParams &coreParams = {},
                const TracePredParams &predParams = {},
                const TracePolicy &tracePolicy = {});

    /**
     * Run to HALT (or until maxCycles, 0 = unbounded). A watchdog
     * panics if no instruction retires for a long interval — that is
     * a model deadlock, not a legal outcome. When `cancel` is given
     * the loop polls it each cycle and winds down cleanly (result
     * marked `cancelled`) once it fires — the hook a supervising
     * deadline watchdog reaps stuck trials through.
     */
    SSRunResult run(Cycle maxCycles = 0,
                    const CancelToken *cancel = nullptr);

    OoOCore &core() { return *core_; }
    TraceFetchSource &fetchSource() { return *source_; }
    TracePredictor &predictor() { return *predictor_; }

  private:
    std::unique_ptr<TracePredictor> predictor_;
    std::unique_ptr<TraceFetchSource> source_;
    std::unique_ptr<OoOCore> core_;
};

} // namespace slip

#endif // SLIPSTREAM_UARCH_SS_PROCESSOR_HH
