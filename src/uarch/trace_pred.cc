#include "uarch/trace_pred.hh"

namespace slip
{

TracePredictor::TracePredictor(const TracePredParams &params)
    : params(params),
      correlated(size_t(1) << params.correlatedBits),
      simple(size_t(1) << params.simpleBits),
      stats_("trace_pred")
{
}

size_t
TracePredictor::correlatedIndex(const PathHistory &history) const
{
    return history.correlatedHash() &
           ((size_t(1) << params.correlatedBits) - 1);
}

size_t
TracePredictor::simpleIndex(const PathHistory &history) const
{
    return history.simpleHash() & ((size_t(1) << params.simpleBits) - 1);
}

std::optional<TraceId>
TracePredictor::predict(const PathHistory &history) const
{
    const Entry &corr = correlated[correlatedIndex(history)];
    const Entry &simp = simple[simpleIndex(history)];

    // Hybrid selection: the correlated table wins once it has shown
    // at least one correct prediction for this path.
    if (corr.valid && corr.counter > 0) {
        ++statPredictCorrelated;
        return corr.pred;
    }
    if (simp.valid) {
        ++statPredictSimple;
        return simp.pred;
    }
    if (corr.valid) {
        ++statPredictCorrelatedWeak;
        return corr.pred;
    }
    ++statPredictNone;
    return std::nullopt;
}

void
TracePredictor::trainEntry(Entry &entry, const TraceId &actual)
{
    if (entry.valid && entry.pred == actual) {
        if (entry.counter < 3)
            ++entry.counter;
        return;
    }
    if (entry.valid && entry.counter > 0) {
        // 2-bit counter governs replacement: decay before displacing.
        --entry.counter;
        return;
    }
    entry.valid = true;
    entry.pred = actual;
    entry.counter = 0;
}

void
TracePredictor::update(const PathHistory &history, const TraceId &actual)
{
    ++statUpdates;
    trainEntry(correlated[correlatedIndex(history)], actual);
    trainEntry(simple[simpleIndex(history)], actual);
}

} // namespace slip
