/**
 * @file
 * Trace-predictor-driven instruction fetch for the conventional
 * superscalar models, plus the walk/slice helpers shared with the
 * slipstream A-stream source.
 *
 * The model is execution-driven and correct-path-only: the source
 * walks the program functionally, slot by slot, following the
 * *predicted* trace; the first conditional branch whose predicted
 * direction disagrees with its executed outcome truncates the trace
 * and is marked mispredicted (the core charges the redirect penalty).
 * Indirect-jump targets are validated against the next-trace
 * prediction (with a return-address stack assisting cold starts).
 *
 * The same trace predictor serves all processor models, as in the
 * paper's evaluation ("the same trace predictor is used for accurate
 * and high-bandwidth control flow prediction in all three processor
 * models").
 */

#ifndef SLIPSTREAM_UARCH_FETCH_SOURCE_HH
#define SLIPSTREAM_UARCH_FETCH_SOURCE_HH

#include <deque>
#include <optional>
#include <unordered_map>

#include "assembler/program.hh"
#include "func/arch_state.hh"
#include "func/executor.hh"
#include "mem/memory.hh"
#include "uarch/branch_pred.hh"
#include "uarch/core.hh"
#include "uarch/trace.hh"
#include "uarch/trace_pred.hh"

namespace slip
{

/**
 * Statically construct the trace starting at `startPc`: conditional
 * branches follow the backward-taken/forward-not-taken heuristic,
 * direct jumps are followed, and the trace ends per the standard
 * policy (max length, JALR, HALT). Used when the trace predictor has
 * no prediction for the current path.
 */
TraceId buildStaticTrace(const Program &program, Addr startPc,
                         const TracePolicy &policy = {});

/**
 * Slices a stream of walked instructions into fetch blocks: a block
 * ends at taken control flow, at fetch-width capacity, at any
 * discontinuity in the fetch address (A-stream skip points), and
 * after a mispredicted instruction (core contract).
 */
class BlockSlicer
{
  public:
    explicit BlockSlicer(unsigned maxBlock)
        : maxBlock(maxBlock)
    {}

    /**
     * Append one instruction.
     * @param fetchAddr the address the front end fetches this
     *        instruction from (== d.pc in every current model)
     * @param out completed blocks are appended here
     */
    void push(const DynInst &d, Addr fetchAddr,
              std::deque<FetchBlock> &out);

    /** Flush the in-progress block (end of trace). */
    void finish(std::deque<FetchBlock> &out);

  private:
    unsigned maxBlock;
    FetchBlock current;
    Addr nextAddr = 0; // expected fetchAddr for sequential flow
    bool open = false;
};

/**
 * Fetch source for a conventional superscalar processor (the SS(64x4)
 * and SS(128x8) models): full program, trace-predictor control flow,
 * self-training at retirement.
 */
class TraceFetchSource : public FetchSource
{
  public:
    TraceFetchSource(const Program &program, TracePredictor &predictor,
                     unsigned fetchWidth = 16,
                     const TracePolicy &policy = {});

    /**
     * Resume-mode source (slipstream graceful degradation): walk the
     * program on an *external* memory image, continuing from
     * `resumeFrom`'s registers and PC instead of loading a fresh
     * image and cold-starting at the entry point.
     */
    TraceFetchSource(const Program &program, TracePredictor &predictor,
                     Memory &sharedMem, const ArchState &resumeFrom,
                     unsigned fetchWidth = 16,
                     const TracePolicy &policy = {});

    bool nextBlock(FetchBlock &block) override;
    bool exhausted() const override;

    /**
     * Must be called from the core's retire hook for every retired
     * instruction: trains the trace predictor with the actual trace
     * once its last instruction retires (modeling update latency).
     */
    void notifyRetire(const DynInst &d);

    const std::string &output() const { return output_; }
    Memory &memory() { return mem; }
    const ArchState &state() const { return state_; }
    StatGroup &stats() { return stats_; }

  private:
    /** Walk one full trace, appending its fetch blocks. */
    void walkTrace();

    const Program &program;
    TracePredictor &predictor;
    unsigned fetchWidth;
    TracePolicy policy;

    Memory mem;
    DirectMemPort port;
    ArchState state_;
    std::string output_;

    PathHistory history;
    ReturnAddressStack ras;
    std::optional<TraceId> cachedNextPred; // consumed by next walk
    bool cachedNextPredValid = false;

    std::deque<FetchBlock> blocks;
    BlockSlicer slicer;

    InstSeqNum nextSeq = 1;
    uint64_t nextTraceNum = 0;
    bool haltWalked = false;

    /** Pending predictor training, keyed by trace number. */
    struct PendingTrain
    {
        PathHistory history; // history *before* this trace
        TraceId actual;
        InstSeqNum lastSeq;
    };
    std::unordered_map<uint64_t, PendingTrain> pendingTrain;

    StatGroup stats_;
    StatGroup::Handle statTracesPredicted{
        stats_.handle("traces_predicted")};
    StatGroup::Handle statTracesFallback{
        stats_.handle("traces_fallback")};
    StatGroup::Handle statTraceMispredicts{
        stats_.handle("trace_mispredicts")};
    StatGroup::Handle statIndirectMispredicts{
        stats_.handle("indirect_mispredicts")};
};

} // namespace slip

#endif // SLIPSTREAM_UARCH_FETCH_SOURCE_HH
