#include "uarch/trace.hh"

#include <sstream>

namespace slip
{

std::string
to_string(const TraceId &id)
{
    std::ostringstream os;
    os << "{pc=0x" << std::hex << id.startPc << std::dec << " len="
       << unsigned(id.length) << " br=" << unsigned(id.numBranches)
       << " bits=";
    for (unsigned i = 0; i < id.numBranches; ++i)
        os << ((id.branchBits >> i) & 1 ? 'T' : 'N');
    os << "}";
    return os.str();
}

} // namespace slip
