/**
 * @file
 * Cycle-based out-of-order superscalar core timing model.
 *
 * The model is execution-driven in the style the paper describes: the
 * fetch source supplies dynamic instructions with their *real* (already
 * computed, possibly architecturally wrong for the A-stream) outcomes,
 * and this core charges time — fetch bandwidth and I-cache behaviour,
 * a front-end pipeline, ROB occupancy, dispatch/issue/retire widths,
 * operand dependences through a register scoreboard, perfect memory
 * disambiguation with store-to-load forwarding, D-cache access latency,
 * function-unit latencies (MIPS R10000-flavored), and branch
 * misprediction redirect penalties.
 *
 * Wrong-path instructions are not simulated; a misprediction instead
 * blocks fetch from the mispredicted branch until it resolves, plus a
 * redirect penalty — the standard approximation in trace-driven
 * timing models.
 */

#ifndef SLIPSTREAM_UARCH_CORE_HH
#define SLIPSTREAM_UARCH_CORE_HH

#include <array>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "func/executor.hh"
#include "isa/isa.hh"
#include "mem/cache.hh"

namespace slip
{

/** One dynamic instruction flowing through a core. */
struct DynInst
{
    InstSeqNum seq = 0;
    Addr pc = 0;
    StaticInst si;
    ExecResult exec; // precomputed functional outcome

    /**
     * Front-end direction/target was wrong; fetch stalls after this
     * instruction until it resolves (conventional misprediction,
     * A-stream-detectable in slipstream terms).
     */
    bool mispredicted = false;

    /**
     * R-stream only: source operands arrive from the delay buffer, so
     * the instruction issues without waiting on register dependences.
     */
    bool valuePredicted = false;

    /**
     * A-stream only: fetched (consumes fetch bandwidth) but removed
     * before decode by the ir-vec; never dispatched.
     */
    bool fetchOnly = false;

    /**
     * R-stream only: this instruction exposed an IR-misprediction (or
     * transient fault); the slipstream processor initiates recovery
     * when it retires.
     */
    bool triggersRecovery = false;

    /** Identifies the packet (trace) this instruction belongs to. */
    uint64_t packetSeq = 0;
    uint8_t packetSlot = 0;

    /** Removal reason mask (slipstream statistics; 0 = not removed). */
    uint8_t removalReason = 0;
};

/** A fetch block: consecutive-on-path instructions, one per cycle. */
struct FetchBlock
{
    Addr startAddr = 0;
    std::vector<DynInst> insts;
};

/**
 * Supplies the core's dynamic instruction stream, one fetch block at a
 * time. Blocks end at taken control flow, at I-cache line capacity,
 * and (for the A-stream) at instruction-removal skip points.
 */
class FetchSource
{
  public:
    virtual ~FetchSource() = default;

    /**
     * Produce the next fetch block.
     * @return false if nothing can be supplied this cycle (source
     *         exhausted or stalled, e.g. delay buffer empty).
     */
    virtual bool nextBlock(FetchBlock &block) = 0;

    /** True once the source will never supply instructions again. */
    virtual bool exhausted() const = 0;
};

/** Core configuration (defaults = the paper's Table 2 SS(64x4)). */
struct CoreParams
{
    std::string name = "core";
    unsigned fetchWidth = 16;     // one full I-cache line per cycle
    unsigned dispatchWidth = 4;
    unsigned issueWidth = 4;
    unsigned retireWidth = 4;
    unsigned robSize = 64;
    unsigned fetchToDispatch = 4; // front-end depth (cycles)
    unsigned redirectPenalty = 2; // extra bubbles after branch resolve
    unsigned fetchBufferCap = 48;
    Cycle intMultLat = 5;         // MIPS R10000 flavor
    Cycle intDivLat = 34;
    CacheParams icache{"icache", 64 * 1024, 4, 64, 1, 12};
    CacheParams dcache{"dcache", 64 * 1024, 4, 64, 2, 14};

    /** Convenience: widen to the paper's SS(128x8) configuration. */
    static CoreParams
    wide8()
    {
        CoreParams p;
        p.name = "core8";
        p.dispatchWidth = p.issueWidth = p.retireWidth = 8;
        p.robSize = 128;
        return p;
    }
};

/** The out-of-order core. */
class OoOCore
{
  public:
    OoOCore(const CoreParams &params, FetchSource &source);

    /** Advance one cycle: retire, dispatch/schedule, fetch. */
    void tick(Cycle now);

    /** True once HALT has retired. */
    bool halted() const { return halted_; }

    /** In-flight work (ROB plus fetch buffer). */
    bool
    pipelineEmpty() const
    {
        return rob.empty() && fetchBuffer.empty();
    }

    /**
     * Full pipeline flush (slipstream recovery): discards in-flight
     * instructions and clears scoreboards. Fetch resumes when `now`
     * reaches resumeFetchAt.
     */
    void flush(Cycle now, Cycle resumeFetchAt);

    /** Freeze fetch until the given cycle (recovery stall). */
    void stallFetchUntil(Cycle cycle) { fetchResumeAt = cycle; }

    /**
     * Retire hook: invoked for every retiring instruction, in program
     * order. Returning false blocks retirement (back-pressure) this
     * cycle; the same instruction is offered again next cycle.
     */
    std::function<bool(const DynInst &, Cycle)> onRetire;

    const CoreParams &params() const { return params_; }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }
    Cache &icache() { return icache_; }
    Cache &dcache() { return dcache_; }

    uint64_t retiredCount() const { return retired; }
    Cycle lastRetireCycle() const { return lastRetire; }

    // Hot-counter accessors (no StatGroup string lookup).
    uint64_t retiredCondBranches() const { return numRetiredCondBranches; }
    uint64_t branchMispredicts() const { return numBranchMispredicts; }

  private:
    struct FetchEntry
    {
        DynInst d;
        Cycle readyAt; // earliest dispatch cycle
    };

    struct RobEntry
    {
        DynInst d;
        Cycle completeAt;
    };

    void doRetire(Cycle now);
    void doDispatch(Cycle now);
    void doFetch(Cycle now);

    /** Earliest cycle >= earliest with a free issue slot; claims it. */
    Cycle claimIssueSlot(Cycle earliest);

    Cycle execLatency(const StaticInst &si) const;

    CoreParams params_;
    FetchSource &source;
    Cache icache_;
    Cache dcache_;

    std::deque<FetchEntry> fetchBuffer;
    std::deque<RobEntry> rob;

    std::array<Cycle, kNumRegs> regReady{};
    std::unordered_map<Addr, Cycle> storeReady; // key: addr >> 3

    // Issue bandwidth ring: slots used per cycle.
    static constexpr size_t kRingSize = 1 << 14;
    std::vector<uint8_t> slotsUsed;
    std::vector<Cycle> slotsTag;

    Cycle fetchResumeAt = 0;
    bool fetchBlockedOnBranch = false;
    InstSeqNum blockedBranchSeq = 0;

    bool halted_ = false;
    uint64_t retired = 0;
    Cycle lastRetire = 0;

    // Per-instruction counters: plain integers on the hot path,
    // linked into stats_ so get()/dump() still see them by name.
    uint64_t numRetiredCondBranches = 0;
    uint64_t numBranchMispredicts = 0;
    uint64_t numDispatched = 0;
    uint64_t numFetched = 0;
    uint64_t numFetchOnlyRemoved = 0;
    uint64_t numFlushes = 0;

    StatGroup stats_;
};

} // namespace slip

#endif // SLIPSTREAM_UARCH_CORE_HH
