#include "uarch/branch_pred.hh"

#include "common/bitutils.hh"

namespace slip
{

namespace
{

void
train2bit(uint8_t &counter, bool taken)
{
    if (taken) {
        if (counter < 3)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
}

} // namespace

BimodalPredictor::BimodalPredictor(unsigned indexBits)
    : indexBits(indexBits), table(size_t(1) << indexBits, 1)
{
}

size_t
BimodalPredictor::index(Addr pc) const
{
    return (pc / kInstBytes) & ((size_t(1) << indexBits) - 1);
}

bool
BimodalPredictor::predict(Addr pc) const
{
    return table[index(pc)] >= 2;
}

void
BimodalPredictor::update(Addr pc, bool taken)
{
    train2bit(table[index(pc)], taken);
}

GsharePredictor::GsharePredictor(unsigned indexBits, unsigned historyBits)
    : indexBits(indexBits), historyBits(historyBits),
      table(size_t(1) << indexBits, 1), stats_("gshare")
{
}

size_t
GsharePredictor::index(Addr pc) const
{
    const uint64_t h = history & ((uint64_t(1) << historyBits) - 1);
    return ((pc / kInstBytes) ^ h) & ((size_t(1) << indexBits) - 1);
}

bool
GsharePredictor::predict(Addr pc) const
{
    return table[index(pc)] >= 2;
}

void
GsharePredictor::update(Addr pc, bool taken)
{
    ++statUpdates;
    if (predict(pc) != taken)
        ++statMispredicts;
    train2bit(table[index(pc)], taken);
    history = (history << 1) | (taken ? 1 : 0);
}

} // namespace slip
