#include "workloads/workloads.hh"

#include <string>

namespace slip
{

/**
 * gcc substitute: a compiler-flavored pass pipeline. A pseudo-random
 * stream of postfix expression tokens (constants and operators) is
 * "compiled": evaluated on an operand stack with constant folding,
 * algebraic simplification (x+0, x*1, x*0 peepholes), and a small
 * common-subexpression cache keyed by (op, lhs, rhs). The operator
 * mix is semi-random, so dispatch branches are only moderately
 * predictable — like gcc's mixed, call-heavy behaviour, there is some
 * removable work but unstable control flow dilutes it (the paper
 * measures gcc at a modest 4%).
 */
std::string
wlGccSource(WorkloadSize size)
{
    // One token costs roughly 40 host instructions.
    unsigned tokens;
    switch (size) {
      case WorkloadSize::Test: tokens = 1300; break;
      case WorkloadSize::Small: tokens = 9000; break;
      default: tokens = 55000; break;
    }

    std::string src = R"(
# gcc substitute: token stream -> fold/simplify pipeline (see wl_gcc.cc)
.equ NTOKENS, )" + std::to_string(tokens) + R"(

.data
.align 8
seed:    .dword 20260705
stack:   .space 2048            # operand stack (256 dwords)
csetab:  .space 2048            # 128 x {key, value} CSE cache
stats:   .space 64              # per-op counters (8 dwords)

.text
main:
    li   s0, NTOKENS
    la   s1, stack
    li   s2, 0                  # stack depth
    li   s3, 0                  # checksum
    ld   s4, seed
    li   s5, 0                  # folds performed
    li   s6, 0                  # cse hits

token_loop:
    beqz s0, done
    addi s0, s0, -1

    # next pseudo-random token
    li   t0, 1103515245
    mul  s4, s4, t0
    addi s4, s4, 1013
    li   t0, 0x7fffffff
    and  s4, s4, t0
    srli t1, s4, 7
    andi t1, t1, 7              # token class 0..7

    # classes 0..3: push a small constant; 4..7: operator
    li   t0, 4
    blt  t1, t0, push_const

    # need two operands; underflow pushes a constant instead
    li   t0, 2
    blt  s2, t0, push_const

    # pop rhs, lhs
    addi s2, s2, -1
    slli t2, s2, 3
    add  t2, t2, s1
    ld   t3, 0(t2)              # rhs
    addi s2, s2, -1
    slli t2, s2, 3
    add  t2, t2, s1
    ld   t4, 0(t2)              # lhs

    # ---- CSE probe: key = op*1e6 + lhs*1000 + rhs (approx) ----
    slli t5, t1, 20
    slli t6, t4, 10
    add  t5, t5, t6
    add  t5, t5, t3
    li   t6, 127
    srli t7, t5, 7
    xor  t7, t7, t5
    and  t7, t7, t6             # cache index
    la   t8, csetab
    slli t9, t7, 4
    add  t8, t8, t9
    ld   t9, 0(t8)              # cached key
    bne  t9, t5, cse_miss
    ld   t9, 8(t8)              # cached value
    addi s6, s6, 1
    mv   t6, t9
    j    push_result
cse_miss:
    sd   t5, 0(t8)              # remember key (value stored below)

    # ---- dispatch on operator ----
    li   t0, 4
    beq  t1, t0, op_add
    li   t0, 5
    beq  t1, t0, op_sub
    li   t0, 6
    beq  t1, t0, op_mul
    # op 7: bitwise mix
    xor  t6, t4, t3
    slli t7, t4, 1
    add  t6, t6, t7
    j    fold_done

op_add:
    # peephole: x + 0 -> x
    bnez t3, add_full
    mv   t6, t4
    addi s5, s5, 1
    j    fold_done
add_full:
    add  t6, t4, t3
    j    fold_done

op_sub:
    sub  t6, t4, t3
    # normalize negatives into small positives (keeps values bounded)
    bgez t6, fold_done
    neg  t6, t6
    j    fold_done

op_mul:
    # peepholes: x * 0 -> 0, x * 1 -> x
    bnez t3, mul_notzero
    li   t6, 0
    addi s5, s5, 1
    j    fold_done
mul_notzero:
    li   t0, 1
    bne  t3, t0, mul_full
    mv   t6, t4
    addi s5, s5, 1
    j    fold_done
mul_full:
    mul  t6, t4, t3
    li   t0, 0xffff
    and  t6, t6, t0             # keep magnitudes bounded

fold_done:
    sd   t6, 8(t8)              # fill the CSE value slot
    # per-op statistics (write-heavy bookkeeping)
    la   t0, stats
    andi t2, t1, 7
    slli t2, t2, 3
    add  t0, t0, t2
    ld   t2, 0(t0)
    addi t2, t2, 1
    sd   t2, 0(t0)

push_result:
    slli t2, s2, 3
    add  t2, t2, s1
    sd   t6, 0(t2)
    addi s2, s2, 1
    # fold into checksum
    slli t0, s3, 3
    add  s3, s3, t0
    add  s3, s3, t6
    j    token_loop

push_const:
    srli t2, s4, 13
    andi t2, t2, 31             # constants 0..31 (0 and 1 common)
    li   t0, 256
    blt  s2, t0, push_ok
    li   s2, 128                # stack overflow: recycle (rare)
push_ok:
    slli t3, s2, 3
    add  t3, t3, s1
    sd   t2, 0(t3)
    addi s2, s2, 1
    j    token_loop

done:
    putn s2
    putn s5
    putn s6
    li   t0, 0xffffff
    and  s3, s3, t0
    putn s3
    halt
)";
    return src;
}

} // namespace slip
