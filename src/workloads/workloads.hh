/**
 * @file
 * The benchmark suite: eight SSIR workloads substituting for the
 * SPEC95 integer benchmarks the paper evaluates (Table 1). SPEC95 is
 * proprietary and the SimpleScalar toolchain is unavailable, so each
 * workload is written from scratch to mirror its original's
 * *character* — the branch-predictability and ineffectual-write
 * profile that drives slipstream behaviour:
 *
 *   compress  LZ-style compressor on pseudo-random text: data-
 *             dependent branches, poor predictability.
 *   gcc       expression tokenizer + constant folder over generated
 *             source: mixed predictability, many short functions.
 *   go        board-position evaluator with capture search: data-
 *             dependent control, modest predictability.
 *   jpeg      integer 8x8 DCT + quantization over an image: regular
 *             loops, high ILP, very predictable.
 *   li        N-queens backtracking interpreter-style recursion (the
 *             paper's li runs `(queens 7)`).
 *   m88ksim   instruction-set interpreter of a toy CPU running a
 *             fixed program: near-deterministic dispatch, many dead
 *             condition-flag writes — the paper's best case.
 *   perl      dictionary word scoring with string hashing (the
 *             paper's perl runs a scrabble game).
 *   vortex    in-memory object database: insert/lookup/traverse with
 *             redundant status-field writes — predictable control.
 *
 * Each workload is self-contained: inputs are generated in-program
 * from a deterministic LCG, and each prints a checksum so runs are
 * self-validating against the functional simulator.
 */

#ifndef SLIPSTREAM_WORKLOADS_WORKLOADS_HH
#define SLIPSTREAM_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

namespace slip
{

/** Dynamic-instruction-count scale for a workload. */
enum class WorkloadSize
{
    Test,    // tens of thousands of instructions (unit tests)
    Small,   // a few hundred thousand (quick benches)
    Default, // a few million (paper-style evaluation)
};

/** "test" / "small" / "default" — cache keys and $SLIPSTREAM_BENCH_SIZE. */
const char *sizeName(WorkloadSize size);

/** One benchmark program. */
struct Workload
{
    std::string name;        // e.g. "m88ksim"
    std::string substitutes; // e.g. "SPEC95 m88ksim (-c dcrand.big)"
    std::string description; // one-line behaviour summary
    std::string source;      // SSIR assembly text
};

/** All eight workloads at the given size, in the paper's order. */
std::vector<Workload> allWorkloads(WorkloadSize size);

/** Look up one workload by name; fatal if unknown. */
Workload getWorkload(const std::string &name, WorkloadSize size);

/** The per-workload source generators. */
std::string wlCompressSource(WorkloadSize size);
std::string wlGccSource(WorkloadSize size);
std::string wlGoSource(WorkloadSize size);
std::string wlJpegSource(WorkloadSize size);
std::string wlLiSource(WorkloadSize size);
std::string wlM88kSource(WorkloadSize size);
std::string wlPerlSource(WorkloadSize size);
std::string wlVortexSource(WorkloadSize size);

} // namespace slip

#endif // SLIPSTREAM_WORKLOADS_WORKLOADS_HH
