#include "workloads/workloads.hh"

#include <string>

namespace slip
{

/**
 * vortex substitute: an in-memory object database. Records (id, kind,
 * status, value, hits, next) live in an arena and are indexed by a
 * chained hash on id. The transaction mix is lookup-heavy with
 * occasional inserts and a periodic full scan, like vortex's mailing-
 * list workload. Crucially, every touched record gets its status
 * re-derived and written back — and the derivation is usually
 * idempotent, so the writes are largely *non-modifying*: the same-
 * value-store seam that gives vortex its slipstream win (7% with the
 * lowest misprediction rate in the suite, 1.1/1000).
 */
std::string
wlVortexSource(WorkloadSize size)
{
    // One transaction costs ~120 host instructions.
    unsigned txns;
    switch (size) {
      case WorkloadSize::Test: txns = 500; break;
      case WorkloadSize::Small: txns = 3200; break;
      default: txns = 6000; break;
    }

    std::string src = R"(
# vortex substitute: object database transactions (see wl_vortex.cc)
.equ NTXNS, )" + std::to_string(txns) + R"(
.equ NREC0, 64                  # preloaded records
.equ RECSZ, 48                  # 6 dwords per record
.equ NBUCKET, 64

.data
.align 8
seed:    .dword 31337
arena:   .space 49152           # room for 1024 records
nrec:    .dword 0
buckets: .space 512             # 64 chain heads (record index + 1)
found:   .dword 0
missed:  .dword 0
scans:   .dword 0

.text
# --- insert(a0 = id): appends a record, links into its bucket ---
insert:
    ld   t0, nrec
    li   t1, 1024
    bge  t0, t1, insert_full    # arena full: drop (rare)
    li   t1, RECSZ
    mul  t1, t0, t1
    la   t2, arena
    add  t1, t1, t2             # record base
    sd   a0, 0(t1)              # id
    andi t3, a0, 3
    sd   t3, 8(t1)              # kind = id & 3
    slli t4, a0, 1
    addi t4, t4, 17
    sd   t4, 24(t1)             # value
    # status is initialized in its derived form (kind*2 + value&1),
    # so every later re-derivation during scans and touches is a
    # non-modifying write — vortex's same-value-store seam
    andi t5, t4, 1
    slli t3, t3, 1
    add  t3, t3, t5
    sd   t3, 16(t1)             # status
    sd   zero, 32(t1)           # hits
    # link into bucket
    andi t3, a0, 63
    la   t4, buckets
    slli t5, t3, 3
    add  t4, t4, t5
    ld   t5, 0(t4)              # old head
    sd   t5, 40(t1)             # next = old head
    addi t6, t0, 1
    sd   t6, 0(t4)              # head = index + 1
    sd   t6, nrec
insert_full:
    ret

# --- lookup(a0 = id) -> a1 = record addr or 0 ---
lookup:
    andi t0, a0, 63
    la   t1, buckets
    slli t2, t0, 3
    add  t1, t1, t2
    ld   t2, 0(t1)              # index + 1
chase:
    beqz t2, miss
    addi t2, t2, -1
    li   t3, RECSZ
    mul  t3, t2, t3
    la   t4, arena
    add  t3, t3, t4             # record base
    ld   t5, 0(t3)              # id
    beq  t5, a0, hit
    ld   t2, 40(t3)             # next
    j    chase
hit:
    mv   a1, t3
    ret
miss:
    li   a1, 0
    ret

main:
    # ---- preload NREC0 records ----
    li   s0, 0
preload:
    slli a0, s0, 2
    addi a0, a0, 5              # ids 5, 9, 13, ...
    call insert
    addi s0, s0, 1
    li   t0, NREC0
    blt  s0, t0, preload

    # ---- transaction loop ----
    li   s10, NTXNS
    ld   s9, seed
    li   s11, 0                 # checksum
txn_loop:
    li   t0, 1103515245
    mul  s9, s9, t0
    addi s9, s9, 1013
    li   t0, 0x7fffffff
    and  s9, s9, t0

    # pick an id in the preloaded working set: lookups nearly
    # always hit, like vortex's mailing-list queries
    srli t1, s9, 5
    andi t1, t1, 63
    slli a0, t1, 2
    addi a0, a0, 5

    # transaction kind: 0..12 lookup+touch, 13 insert, 14..15 scan
    srli t2, s9, 16
    andi t2, t2, 15
    li   t3, 13
    blt  t2, t3, do_lookup
    beq  t2, t3, do_insert

    # ---- periodic scan: re-derive every record's status ----
    ld   t0, scans
    addi t0, t0, 1
    sd   t0, scans
    ld   s1, nrec
    li   s2, 0
scan_rec:
    bge  s2, s1, txn_next
    li   t3, RECSZ
    mul  t3, s2, t3
    la   t4, arena
    add  t3, t3, t4
    # status = kind * 2 + (value & 1): idempotent after first scan,
    # so these stores are non-modifying in steady state
    ld   t5, 8(t3)
    ld   t6, 24(t3)
    andi t6, t6, 1
    slli t5, t5, 1
    add  t5, t5, t6
    sd   t5, 16(t3)
    addi s2, s2, 1
    j    scan_rec

do_insert:
    srli t1, s9, 3
    andi a0, t1, 1023
    addi a0, a0, 2000           # new id range, no dup pressure
    call insert
    j    txn_next

do_lookup:
    call lookup
    beqz a1, lk_miss
    ld   t0, found
    addi t0, t0, 1
    sd   t0, found
    # touch: bump hits, re-derive status (idempotent most times)
    ld   t0, 32(a1)
    addi t0, t0, 1
    sd   t0, 32(a1)
    ld   t1, 8(a1)
    ld   t2, 24(a1)
    andi t2, t2, 1
    slli t1, t1, 1
    add  t1, t1, t2
    sd   t1, 16(a1)             # usually the same value
    ld   t2, 24(a1)
    add  s11, s11, t2
    j    txn_next
lk_miss:
    ld   t0, missed
    addi t0, t0, 1
    sd   t0, missed

txn_next:
    addi s10, s10, -1
    bnez s10, txn_loop

    ld   t0, found
    putn t0
    ld   t0, missed
    putn t0
    ld   t0, nrec
    putn t0
    li   t0, 0xffffff
    and  s11, s11, t0
    putn s11
    halt
)";
    return src;
}

} // namespace slip
