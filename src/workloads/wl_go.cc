#include "workloads/workloads.hh"

#include <string>

namespace slip
{

/**
 * go substitute: positional evaluation over a 9x9 board. Stones are
 * placed pseudo-randomly, then every point is scored: occupied points
 * count group liberties through neighbor scans, empty points get
 * territory influence from adjacent stones. The branch behaviour is
 * dominated by board contents — essentially random data — so, like
 * SPEC95 go (one of the least predictable integer codes), neither the
 * trace predictor nor instruction removal finds much traction.
 */
std::string
wlGoSource(WorkloadSize size)
{
    // One position evaluation costs ~9k host instructions.
    unsigned positions;
    switch (size) {
      case WorkloadSize::Test: positions = 6; break;
      case WorkloadSize::Small: positions = 40; break;
      default: positions = 260; break;
    }

    std::string src = R"(
# go substitute: 9x9 board evaluation (see wl_go.cc)
.equ NPOS, )" + std::to_string(positions) + R"(

.data
.align 8
seed:   .dword 777001
board:  .space 968              # 11x11 padded board of dwords
                                # 0 empty, 1 black, 2 white, 3 edge

.text
main:
    li   s10, NPOS
    li   s11, 0                 # total score checksum
    ld   s9, seed

position_loop:
    # ---- set up padded board: edges = 3 ----
    la   s0, board
    li   t0, 0
pad_init:
    li   t1, 3
    slli t2, t0, 3
    add  t2, t2, s0
    sd   t1, 0(t2)
    addi t0, t0, 1
    li   t1, 121
    blt  t0, t1, pad_init

    # ---- scatter stones on the 9x9 interior ----
    li   t0, 1                  # row 1..9
fill_row:
    li   t1, 1                  # col 1..9
fill_col:
    li   t3, 1103515245
    mul  s9, s9, t3
    addi s9, s9, 1013
    li   t3, 0x7fffffff
    and  s9, s9, t3
    srli t4, s9, 9
    # ~1/3 empty, 1/3 black, 1/3 white
    li   t5, 3
    remu t4, t4, t5
    li   t5, 11
    mul  t6, t0, t5
    add  t6, t6, t1
    slli t6, t6, 3
    add  t6, t6, s0
    sd   t4, 0(t6)
    addi t1, t1, 1
    li   t5, 10
    blt  t1, t5, fill_col
    addi t0, t0, 1
    blt  t0, t5, fill_row

    # ---- evaluate every interior point ----
    li   s1, 0                  # position score
    li   t0, 1
eval_row:
    li   t1, 1
eval_col:
    li   t5, 11
    mul  t2, t0, t5
    add  t2, t2, t1
    slli t3, t2, 3
    add  t3, t3, s0
    ld   t4, 0(t3)              # point contents

    # neighbor contents
    addi t5, t2, -11
    slli t5, t5, 3
    add  t5, t5, s0
    ld   t5, 0(t5)              # north
    addi t6, t2, 11
    slli t6, t6, 3
    add  t6, t6, s0
    ld   t6, 0(t6)              # south
    addi t7, t2, -1
    slli t7, t7, 3
    add  t7, t7, s0
    ld   t7, 0(t7)              # west
    addi t8, t2, 1
    slli t8, t8, 3
    add  t8, t8, s0
    ld   t8, 0(t8)              # east

    beqz t4, empty_point

    # occupied: count liberties (empty neighbors)
    li   t9, 0
    snez t2, t5
    xori t2, t2, 1
    add  t9, t9, t2
    snez t2, t6
    xori t2, t2, 1
    add  t9, t9, t2
    snez t2, t7
    xori t2, t2, 1
    add  t9, t9, t2
    snez t2, t8
    xori t2, t2, 1
    add  t9, t9, t2
    # atari bonus/penalty: stones with <= 1 liberty are weak
    li   t2, 2
    blt  t9, t2, weak_stone
    # healthy stone: score +liberties for black, -liberties for white
    li   t2, 1
    beq  t4, t2, black_stone
    sub  s1, s1, t9
    j    next_point
black_stone:
    add  s1, s1, t9
    j    next_point
weak_stone:
    li   t2, 1
    beq  t4, t2, black_weak
    addi s1, s1, 5              # weak white helps black
    j    next_point
black_weak:
    addi s1, s1, -5
    j    next_point

empty_point:
    # territory influence: majority of adjacent stone colors
    li   t9, 0                  # black neighbors
    li   t2, 0                  # white neighbors
    li   t3, 1
    bne  t5, t3, ep1
    addi t9, t9, 1
ep1:
    li   t3, 2
    bne  t5, t3, ep2
    addi t2, t2, 1
ep2:
    li   t3, 1
    bne  t6, t3, ep3
    addi t9, t9, 1
ep3:
    li   t3, 2
    bne  t6, t3, ep4
    addi t2, t2, 1
ep4:
    li   t3, 1
    bne  t7, t3, ep5
    addi t9, t9, 1
ep5:
    li   t3, 2
    bne  t7, t3, ep6
    addi t2, t2, 1
ep6:
    li   t3, 1
    bne  t8, t3, ep7
    addi t9, t9, 1
ep7:
    li   t3, 2
    bne  t8, t3, ep8
    addi t2, t2, 1
ep8:
    ble  t9, t2, maybe_white
    addi s1, s1, 1
    j    next_point
maybe_white:
    bge  t9, t2, next_point     # tie: neutral
    addi s1, s1, -1

next_point:
    addi t1, t1, 1
    li   t5, 10
    blt  t1, t5, eval_col
    addi t0, t0, 1
    blt  t0, t5, eval_row

    # fold the position score into the checksum
    slli t0, s11, 3
    add  s11, s11, t0
    add  s11, s11, s1
    li   t0, 0xffffff
    and  s11, s11, t0

    addi s10, s10, -1
    bnez s10, position_loop

    putn s11
    halt
)";
    return src;
}

} // namespace slip
