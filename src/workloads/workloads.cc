#include "workloads/workloads.hh"

#include "common/logging.hh"

namespace slip
{

const char *
sizeName(WorkloadSize size)
{
    switch (size) {
      case WorkloadSize::Test:
        return "test";
      case WorkloadSize::Small:
        return "small";
      case WorkloadSize::Default:
        return "default";
    }
    return "?";
}

std::vector<Workload>
allWorkloads(WorkloadSize size)
{
    return {
        {"compress", "SPEC95 compress (40000 e 2231)",
         "LZ-style compression, data-dependent branches",
         wlCompressSource(size)},
        {"gcc", "SPEC95 gcc (-O3 genrecog.i)",
         "expression tokenizing and constant folding",
         wlGccSource(size)},
        {"go", "SPEC95 go (99)",
         "board evaluation with capture search", wlGoSource(size)},
        {"jpeg", "SPEC95 ijpeg (vigo.ppm)",
         "integer 8x8 DCT and quantization", wlJpegSource(size)},
        {"li", "SPEC95 li (test.lsp: queens 7)",
         "N-queens backtracking recursion", wlLiSource(size)},
        {"m88ksim", "SPEC95 m88ksim (-c dcrand.big)",
         "toy-CPU instruction-set interpreter", wlM88kSource(size)},
        {"perl", "SPEC95 perl (scrabble.pl)",
         "dictionary word scoring with hashing", wlPerlSource(size)},
        {"vortex", "SPEC95 vortex (persons.250)",
         "in-memory object database operations",
         wlVortexSource(size)},
    };
}

Workload
getWorkload(const std::string &name, WorkloadSize size)
{
    for (Workload &w : allWorkloads(size)) {
        if (w.name == name)
            return w;
    }
    SLIP_FATAL("unknown workload '", name, "'");
}

} // namespace slip
