#include "workloads/workloads.hh"

#include <string>

namespace slip
{

/**
 * perl substitute: scrabble-style word scoring over a generated
 * dictionary — the paper's perl input plays a scrabble game against a
 * dictionary. Words of length 3..8 are generated from a skewed
 * letter distribution, scored with a letter-value table plus bonus
 * rules, and interned into a chained hash table to detect duplicates.
 * The inner character loops are short but their *pattern* repeats
 * (the dictionary is scanned repeatedly), making control flow fairly
 * predictable with steady pockets of removable bookkeeping — perl is
 * one of the paper's big winners (16%).
 */
std::string
wlPerlSource(WorkloadSize size)
{
    // One scoring round costs ~90 host instructions per word.
    unsigned words, rounds;
    switch (size) {
      case WorkloadSize::Test: words = 60; rounds = 6; break;
      case WorkloadSize::Small: words = 120; rounds = 28; break;
      default: words = 200; rounds = 110; break;
    }

    std::string src = R"(
# perl substitute: scrabble word scoring (see wl_perl.cc)
.equ NWORDS, )" + std::to_string(words) + R"(
.equ NROUNDS, )" + std::to_string(rounds) + R"(

.data
.align 8
seed:    .dword 13579
# scrabble letter values for 'a'..'z'
letval:  .dword 1, 3, 3, 2, 1, 4, 2, 4, 1, 8, 5, 1, 3
         .dword 1, 1, 3, 10, 1, 1, 1, 1, 4, 4, 8, 4, 10
words:   .space 1800            # up to 200 words x 9 bytes (len + 8 ch)
hashtab: .space 1024            # 128 buckets: word index + 1, 0 empty
hashlnk: .space 1600            # chain links per word
bestsc:  .dword 0
bestix:  .dword 0
lastsc:  .dword 0               # dead: overwritten per word
errflag: .dword 0               # dead: always zero (same value)

.text
main:
    # ---- generate the dictionary ----
    ld   t0, seed
    la   s0, words
    li   s1, 0                  # word index
gen_word:
    li   t1, 1103515245
    mul  t0, t0, t1
    addi t0, t0, 1013
    li   t1, 0x7fffffff
    and  t0, t0, t1
    srli t2, t0, 6
    li   t3, 6
    remu t2, t2, t3
    addi t2, t2, 3              # length 3..8: the variety makes each
                                # dictionary position's trace history
                                # distinctive, so the fixed scan order
                                # becomes fully predictable by round 2
    # store length byte
    li   t4, 9
    mul  t5, s1, t4
    add  t5, t5, s0
    sb   t2, 0(t5)
    li   t6, 0                  # char position
gen_char:
    li   t1, 1103515245
    mul  t0, t0, t1
    addi t0, t0, 1013
    li   t1, 0x7fffffff
    and  t0, t0, t1
    srli t7, t0, 8
    andi t7, t7, 63
    # skew toward common letters: fold 26..63 down into 0..12
    li   t8, 26
    blt  t7, t8, store_char
    li   t8, 13
    remu t7, t7, t8
store_char:
    addi t7, t7, 'a'
    addi t8, t5, 1
    add  t8, t8, t6
    sb   t7, 0(t8)
    addi t6, t6, 1
    blt  t6, t2, gen_char
    addi s1, s1, 1
    li   t1, NWORDS
    blt  s1, t1, gen_word
    sd   t0, seed

    # ---- scoring rounds ----
    li   s10, NROUNDS
    li   s11, 0                 # grand total
round_loop:
    sd   zero, bestsc
    sd   zero, bestix
    li   s1, 0                  # word index
score_loop:
    li   t4, 9
    mul  t5, s1, t4
    la   t6, words
    add  t5, t5, t6
    lbu  t2, 0(t5)              # length
    li   t7, 0                  # position
    li   t8, 0                  # word score
    li   t9, 0                  # word hash
score_char:
    addi t0, t5, 1
    add  t0, t0, t7
    lbu  t0, 0(t0)              # letter
    addi t1, t0, -'a'
    la   t3, letval
    slli t1, t1, 3
    add  t1, t1, t3
    ld   t1, 0(t1)              # letter value
    add  t8, t8, t1
    # hash = hash*31 + letter
    slli t1, t9, 5
    sub  t9, t1, t9
    add  t9, t9, t0
    addi t7, t7, 1
    blt  t7, t2, score_char

    # bonus rules: 7+ letters doubles, q/z presence adds 10 (checked
    # via value >= 8 letters seen — approximation keeps loops tight)
    li   t0, 7
    blt  t2, t0, no_len_bonus
    slli t8, t8, 1
no_len_bonus:

    # dedup via hash table; first sighting scores, repeats score half
    li   t0, 127
    srli t1, t9, 7
    xor  t1, t1, t9
    and  t1, t1, t0
    la   t3, hashtab
    slli t0, t1, 3
    add  t3, t3, t0
    ld   t0, 0(t3)              # bucket head (index+1)
    bnez t0, seen_before
    addi t0, s1, 1
    sd   t0, 0(t3)
    j    tally_full
seen_before:
    # repeat sighting: half score (common, predictable after round 1)
    srai t8, t8, 1

tally_full:
    # interpreter-style bookkeeping the program never consumes
    sd   t8, lastsc             # dead: overwritten by the next word
    sd   zero, errflag          # same-value store
    add  s11, s11, t8
    # track the best word this round
    ld   t0, bestsc
    ble  t8, t0, not_best
    sd   t8, bestsc
    sd   s1, bestix
not_best:
    addi s1, s1, 1
    li   t0, NWORDS
    blt  s1, t0, score_loop

    ld   t0, bestix
    add  s11, s11, t0
    addi s10, s10, -1
    bnez s10, round_loop

    li   t0, 0xffffff
    and  s11, s11, t0
    putn s11
    ld   t0, bestsc
    putn t0
    halt
)";
    return src;
}

} // namespace slip
