#include "workloads/workloads.hh"

#include <string>

namespace slip
{

/**
 * compress substitute: an LZ-style compressor with a hash chain,
 * run over pseudo-random (mildly repetitive) text. Like the original
 * UNIX compress on its SPEC input, the hot loop is dominated by
 * data-dependent branches — hash hit or miss, match-length compare
 * loops of unpredictable trip count — so both the trace predictor and
 * the IR-predictor find little that is stable. The paper shows
 * compress gaining essentially nothing from slipstreaming; this
 * workload is designed to land in the same regime.
 */
std::string
wlCompressSource(WorkloadSize size)
{
    // Compressing one buffer byte costs ~55 host instructions.
    unsigned bytes;
    switch (size) {
      case WorkloadSize::Test: bytes = 900; break;
      case WorkloadSize::Small: bytes = 6000; break;
      default: bytes = 38000; break;
    }

    std::string src = R"(
# compress substitute: hash-chain LZ compressor (see wl_compress.cc)
.equ NBYTES, )" + std::to_string(bytes) + R"(

.data
.align 8
seed:    .dword 424242
.align 8
htab:    .space 4096            # 512 hash buckets -> last position+1
.text
main:
    # ---- generate input text at dataBase+0x10000 ----
    li   s0, 0x110000           # text buffer (absolute address)
    li   s1, NBYTES
    ld   t2, seed
    li   t0, 0
gen:
    li   t3, 1103515245
    mul  t2, t2, t3
    addi t2, t2, 1013
    li   t3, 0x7fffffff
    and  t2, t2, t3
    srli t4, t2, 11
    andi t4, t4, 15             # 16-symbol alphabet => repetition
    addi t4, t4, 'a'
    add  t5, s0, t0
    sb   t4, 0(t5)
    addi t0, t0, 1
    blt  t0, s1, gen

    # ---- LZ pass ----
    li   s2, 0                  # position
    li   s3, 0                  # literal count
    li   s4, 0                  # match count
    li   s5, 0                  # total match length
    li   s6, 0                  # rolling checksum
    addi s7, s1, -3             # last position with a full 3-byte probe
scan:
    bge  s2, s7, finish
    # h = (text[p] * 33 + text[p+1]) * 33 + text[p+2], folded to 9 bits
    add  t0, s0, s2
    lbu  t1, 0(t0)
    lbu  t2, 1(t0)
    lbu  t3, 2(t0)
    li   t4, 33
    mul  t5, t1, t4
    add  t5, t5, t2
    mul  t5, t5, t4
    add  t5, t5, t3
    srli t6, t5, 9
    xor  t5, t5, t6
    li   t6, 511
    and  t5, t5, t6

    # probe hash bucket
    la   t6, htab
    slli t7, t5, 3
    add  t6, t6, t7
    ld   t8, 0(t6)              # previous position + 1 (0 = empty)
    addi t9, s2, 1
    sd   t9, 0(t6)              # update bucket to current position
    beqz t8, literal            # miss -> emit literal

    addi t8, t8, -1             # candidate position
    # verify the 3-byte match (hash may collide)
    add  t7, s0, t8
    lbu  t9, 0(t7)
    bne  t9, t1, literal
    lbu  t9, 1(t7)
    bne  t9, t2, literal
    lbu  t9, 2(t7)
    bne  t9, t3, literal

    # extend the match (data-dependent trip count)
    li   t9, 3                  # match length
extend:
    add  t0, s2, t9
    bge  t0, s1, have_match
    add  t1, s0, t0
    lbu  t1, 0(t1)
    add  t2, s0, t8
    add  t2, t2, t9
    lbu  t2, 0(t2)
    bne  t1, t2, have_match
    addi t9, t9, 1
    li   t0, 64
    blt  t9, t0, extend         # cap match length
have_match:
    addi s4, s4, 1
    add  s5, s5, t9
    # checksum: fold in (offset, length)
    sub  t0, s2, t8
    slli t1, s6, 5
    add  s6, s6, t1
    add  s6, s6, t0
    add  s6, s6, t9
    add  s2, s2, t9             # skip the matched run
    j    scan

literal:
    addi s3, s3, 1
    slli t0, s6, 5
    add  s6, s6, t0
    add  s6, s6, t1             # fold the literal byte
    addi s2, s2, 1
    j    scan

finish:
    # report literals, matches, total match length, checksum
    putn s3
    putn s4
    putn s5
    li   t0, 0xffffff
    and  s6, s6, t0
    putn s6
    halt
)";
    return src;
}

} // namespace slip
