#include "workloads/workloads.hh"

#include <cstdint>
#include <string>

namespace slip
{

namespace
{

/** Pack one toy instruction {op, a, b, c} into a bytecode word. */
constexpr uint64_t
enc(unsigned op, unsigned a, unsigned b, unsigned c)
{
    return uint64_t(op) | (uint64_t(a) << 8) | (uint64_t(b) << 16) |
           (uint64_t(c) << 24);
}

/**
 * The interpreted toy program: a counted loop of ALU busywork.
 * Toy ISA: 0 ADD, 1 SUB, 2 AND, 3 XOR, 4 LI, 5 JNZ, 6 MOV, 7 END.
 */
constexpr uint64_t kToyProgram[] = {
    enc(4, 1, 0, 25), // LI  r1, 25      (loop counter)
    enc(4, 2, 0, 0),  // LI  r2, 0       (accumulator)
    enc(4, 3, 0, 3),  // LI  r3, 3
    enc(4, 4, 0, 7),  // LI  r4, 7
    // loop body (toy pc = 4)
    enc(0, 2, 2, 3),   // ADD r2, r2, r3
    enc(3, 5, 2, 4),   // XOR r5, r2, r4
    enc(2, 6, 5, 3),   // AND r6, r5, r3
    enc(0, 7, 6, 2),   // ADD r7, r6, r2
    enc(1, 8, 7, 4),   // SUB r8, r7, r4
    enc(6, 9, 8, 0),   // MOV r9, r8
    enc(0, 10, 9, 3),  // ADD r10, r9, r3
    enc(3, 11, 10, 2), // XOR r11, r10, r2
    enc(0, 12, 2, 11), // ADD r12, r2, r11
    enc(6, 13, 12, 0), // MOV r13, r12
    enc(1, 14, 13, 3), // SUB r14, r13, r3
    enc(0, 15, 14, 4), // ADD r15, r14, r4
    enc(4, 6, 0, 1),   // LI  r6, 1
    enc(1, 1, 1, 6),   // SUB r1, r1, r6  (counter--)
    enc(6, 5, 1, 0),   // MOV r5, r1      (sets Z flag)
    enc(5, 0, 0, 4),   // JNZ toy pc = 4
    enc(0, 2, 2, 15),  // ADD r2, r2, r15
    enc(6, 15, 2, 0),  // MOV r15, r2
    enc(7, 0, 0, 0),   // END
};

} // namespace

/**
 * m88ksim substitute: an instruction-set interpreter for a toy 16-
 * register CPU, running a fixed bytecode program in a loop. Like the
 * original (which simulates a Motorola 88100 running dcrand.big):
 *
 *  - the dispatch control flow is near-deterministic once learned --
 *    the interpreted program is constant -- so the trace predictor
 *    makes it look like straight-line code (the paper's best case,
 *    1.9 branch misp/1000);
 *  - every step performs serial work (fetch the packed bytecode word,
 *    extract fields, index the register array) that bounds the
 *    baseline superscalar's ILP -- and that the R-stream's delay-
 *    buffer value predictions dissolve;
 *  - every ALU step updates condition flags (Z/N/C/V), a last-result
 *    register, and a step gauge that the program almost never reads:
 *    dense ineffectual-write removal fodder (the paper removes nearly
 *    half of m88ksim's instruction stream).
 */
std::string
wlM88kSource(WorkloadSize size)
{
    // One toy-program run costs ~11k host instructions.
    unsigned runs;
    switch (size) {
      case WorkloadSize::Test: runs = 5; break;
      case WorkloadSize::Small: runs = 30; break;
      default: runs = 190; break;
    }

    std::string prog;
    for (uint64_t word : kToyProgram)
        prog += "    .dword " + std::to_string(word) + "\n";

    std::string src = R"(
# m88ksim substitute: toy-CPU interpreter (see wl_m88k.cc)
.equ RUNS, )" + std::to_string(runs) + R"(

.data
.align 8
regs:       .space 128          # 16 x 8-byte toy registers
flagz:      .dword 0
flagn:      .dword 0
flagc:      .dword 0            # dead: never read by this program
flagv:      .dword 0            # dead: always zero (same-value)
lastres:    .dword 0            # dead: overwritten every ALU op
stepgauge:  .dword 0            # dead: overwritten every step
# Toy program: one packed dword per instruction (op|a<<8|b<<16|c<<24).
prog:
)" + prog + R"(
.text
main:
    li   s10, RUNS              # outer run counter
    li   s11, 0                 # grand checksum
run_loop:
    # reset toy machine: r0..r15 = 0
    la   t0, regs
    li   t1, 16
clear_regs:
    sd   zero, 0(t0)
    addi t0, t0, 8
    addi t1, t1, -1
    bnez t1, clear_regs

    li   s0, 0                  # toy pc
    la   s1, prog
    la   s2, regs
step:
    # fetch and decode the packed toy instruction (serial chain)
    slli t0, s0, 3
    add  t0, t0, s1
    ld   t1, 0(t0)              # packed word
    andi t2, t1, 255            # op -- decode is serial on the load
    srli t3, t1, 8
    andi t3, t3, 255            # a
    srli t4, t1, 16
    andi t4, t4, 255            # b
    srli t5, t1, 24
    andi t5, t5, 255            # c

    # read toy source registers r[b], r[c]
    slli t6, t4, 3
    add  t6, t6, s2
    ld   t6, 0(t6)              # vb
    slli t7, t5, 3
    add  t7, t7, s2
    ld   t7, 0(t7)              # vc

    # dead bookkeeping: record the step's toy pc (never read)
    sd   s0, stepgauge

    # dispatch
    li   t8, 4
    blt  t2, t8, alu_op
    beq  t2, t8, op_li
    li   t8, 5
    beq  t2, t8, op_jnz
    li   t8, 6
    beq  t2, t8, op_mov
    j    op_end                 # op 7: END

alu_op:
    beqz t2, do_add
    li   t8, 1
    beq  t2, t8, do_sub
    li   t8, 2
    beq  t2, t8, do_and
    xor  t9, t6, t7             # XOR
    j    writeback
do_add:
    add  t9, t6, t7
    j    writeback
do_sub:
    sub  t9, t6, t7
    j    writeback
do_and:
    and  t9, t6, t7
    j    writeback

op_li:
    mv   t9, t5
    j    writeback
op_mov:
    mv   t9, t6
    j    writeback

op_jnz:
    ld   t8, flagz
    bnez t8, fallthrough
    mv   s0, t5                 # taken: toy pc = c
    j    step
fallthrough:
    addi s0, s0, 1
    j    step

writeback:
    # r[a] = result
    slli t8, t3, 3
    add  t8, t8, s2
    sd   t9, 0(t8)
    # condition flags, 88100-style: only Z is ever consumed (by JNZ);
    # N, C, and V are faithful bookkeeping the program never reads.
    seqz t8, t9
    sd   t8, flagz
    sltz t8, t9
    sd   t8, flagn              # dead in this program
    sd   zero, flagc            # dead + same value (the toy ALU is
                                # 64-bit: a toy op never carries out)
    sd   zero, flagv            # dead + same value every time
    sd   t9, lastres            # dead: overwritten every ALU op
    addi s0, s0, 1
    j    step

op_end:
    # fold toy machine state into the checksum: sum of r0..r15
    la   t0, regs
    li   t1, 16
    li   t2, 0
sum_regs:
    ld   t3, 0(t0)
    add  t2, t2, t3
    addi t0, t0, 8
    addi t1, t1, -1
    bnez t1, sum_regs
    add  s11, s11, t2

    addi s10, s10, -1
    bnez s10, run_loop

    putn s11
    halt
)";
    return src;
}

} // namespace slip
