#include "workloads/workloads.hh"

#include <string>

namespace slip
{

/**
 * li substitute: N-queens by backtracking — the actual computation the
 * paper's li benchmark performs (its input `test.lsp` evaluates
 * `(queens 7)`). Written in the style a Lisp interpreter induces:
 * deep call/return recursion, an explicit environment array on the
 * stack, and per-call bookkeeping writes (a call-depth gauge and an
 * allocation counter) that are almost never consumed — moderately
 * predictable control with a removable-write seam, matching li's
 * mid-pack slipstream behaviour (7-11%).
 */
std::string
wlLiSource(WorkloadSize size)
{
    // One full queens(7) solve costs ~190k host instructions.
    unsigned solves;
    switch (size) {
      case WorkloadSize::Test: solves = 1; break;
      case WorkloadSize::Small: solves = 3; break;
      default: solves = 12; break;
    }

    std::string src = R"(
# li substitute: (queens 7) via backtracking recursion (see wl_li.cc)
.equ NSOLVES, )" + std::to_string(solves) + R"(
.equ N, 7

.data
.align 8
cols:     .space 64             # queen column per row
depthg:   .dword 0              # "interpreter" depth gauge (dead-ish)
alloccnt: .dword 0              # cons-cell counter (never read)
evalcnt:  .dword 0              # eval-step counter (never read)
lastrow:  .dword 0              # dead: overwritten per probe
errflag:  .dword 0              # dead: always zero
allocg:   .dword 0              # heap gauge (never read back)
evalg:    .dword 0              # eval counter (never read back)
evalrow:  .dword 0              # dead: overwritten per probe
gcflag:   .dword 0              # dead: always zero
solcount: .dword 0

.text
# --- solve(row in a0): recursive backtracking ---
solve:
    push ra
    push s1                     # col iterator
    push s2                     # row

    # interpreter-style bookkeeping (rarely consumed)
    ld   t0, depthg
    addi t0, t0, 1
    sd   t0, depthg
    ld   t0, alloccnt
    addi t0, t0, 3
    sd   t0, alloccnt

    mv   s2, a0
    li   t0, N
    blt  s2, t0, try_cols
    # row == N: found a solution
    ld   t0, solcount
    addi t0, t0, 1
    sd   t0, solcount
    j    solve_ret

try_cols:
    li   s1, 0
col_loop:
    # check column s1 against rows 0..s2-1
    li   t0, 0                  # r
    la   t1, cols
check:
    bge  t0, s2, place
    # per-"eval" bookkeeping, Lisp-interpreter flavored: each probe
    # acts like an interpreter step — bump the cons-cell counter,
    # stamp the eval context, clear the error cell — none of which
    # the program ever reads back
    ld   t6, 16(s4)             # alloccnt (interpreter heap gauge)
    addi t6, t6, 2
    sd   t6, 16(s4)
    ld   t7, 24(s4)             # evalcnt
    addi t7, t7, 1
    sd   t7, 24(s4)
    sd   t0, 0(s4)              # lastrow: dead (overwritten next probe)
    sd   s2, 32(s4)             # evalrow: dead (overwritten next probe)
    sd   zero, 8(s4)            # errflag: same-value store
    sd   zero, 40(s4)           # gcflag: same-value store
    slli t2, t0, 3
    add  t2, t2, t1
    ld   t3, 0(t2)              # cols[r]
    beq  t3, s1, conflict       # same column
    sub  t4, s2, t0             # row distance
    sub  t5, s1, t3             # column distance
    bgez t5, absdone
    neg  t5, t5
absdone:
    beq  t4, t5, conflict       # same diagonal
    addi t0, t0, 1
    j    check

place:
    # cols[row] = col; recurse
    la   t1, cols
    slli t2, s2, 3
    add  t2, t2, t1
    sd   s1, 0(t2)
    addi a0, s2, 1
    call solve

conflict:
    addi s1, s1, 1
    li   t0, N
    blt  s1, t0, col_loop

solve_ret:
    ld   t0, depthg
    addi t0, t0, -1
    sd   t0, depthg
    pop  s2
    pop  s1
    pop  ra
    ret

main:
    li   s10, NSOLVES
    li   s11, 0
    la   s4, lastrow            # bookkeeping base kept in a register
solve_loop:
    sd   zero, solcount
    sd   zero, depthg
    li   a0, 0
    call solve
    ld   t0, solcount
    add  s11, s11, t0
    addi s10, s10, -1
    bnez s10, solve_loop
    putn s11                    # NSOLVES * 40 (queens(7) has 40)
    halt
)";
    return src;
}

} // namespace slip
