/**
 * @file
 * Register naming for SSIR's 64 general-purpose registers.
 *
 * ABI aliases (used by the assembler and disassembler):
 *   r0 = zero   hardwired zero
 *   r1 = ra     return address
 *   r2 = sp     stack pointer
 *   r3 = fp     frame pointer
 *   r4  - r13 = a0 - a9    argument / result registers
 *   r14 - r33 = t0 - t19   caller-saved temporaries
 *   r34 - r53 = s0 - s19   callee-saved registers
 *   r54 - r63 = k0 - k9    assembler/runtime scratch
 */

#ifndef SLIPSTREAM_ISA_REGNAMES_HH
#define SLIPSTREAM_ISA_REGNAMES_HH

#include <optional>
#include <string>
#include <string_view>

#include "common/types.hh"

namespace slip
{

/** Canonical (ABI) name of a register, e.g. "a0" for r4. */
std::string regName(RegIndex reg);

/**
 * Parse a register name — either the raw form ("r17") or an ABI alias
 * ("t3"). Returns nullopt if the token is not a register name.
 */
std::optional<RegIndex> parseRegName(std::string_view name);

namespace reg
{
constexpr RegIndex zero = 0;
constexpr RegIndex ra = 1;
constexpr RegIndex sp = 2;
constexpr RegIndex fp = 3;
constexpr RegIndex a0 = 4;   // a0..a9 = r4..r13
constexpr RegIndex t0 = 14;  // t0..t19 = r14..r33
constexpr RegIndex s0 = 34;  // s0..s19 = r34..r53
constexpr RegIndex k0 = 54;  // k0..k9 = r54..r63
} // namespace reg

} // namespace slip

#endif // SLIPSTREAM_ISA_REGNAMES_HH
