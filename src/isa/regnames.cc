#include "isa/regnames.hh"

#include <cctype>

namespace slip
{

std::string
regName(RegIndex r)
{
    if (r == reg::zero)
        return "zero";
    if (r == reg::ra)
        return "ra";
    if (r == reg::sp)
        return "sp";
    if (r == reg::fp)
        return "fp";
    if (r >= reg::a0 && r < reg::t0)
        return "a" + std::to_string(r - reg::a0);
    if (r >= reg::t0 && r < reg::s0)
        return "t" + std::to_string(r - reg::t0);
    if (r >= reg::s0 && r < reg::k0)
        return "s" + std::to_string(r - reg::s0);
    if (r < kNumRegs)
        return "k" + std::to_string(r - reg::k0);
    return "r?" + std::to_string(r);
}

namespace
{

/** Parse "<prefix><decimal>" where the decimal is within [0, count). */
std::optional<RegIndex>
parseIndexed(std::string_view s, char prefix, unsigned base, unsigned count)
{
    if (s.size() < 2 || s[0] != prefix)
        return std::nullopt;
    unsigned value = 0;
    for (size_t i = 1; i < s.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(s[i])))
            return std::nullopt;
        value = value * 10 + (s[i] - '0');
        if (value >= 1000)
            return std::nullopt;
    }
    if (value >= count)
        return std::nullopt;
    return static_cast<RegIndex>(base + value);
}

} // namespace

std::optional<RegIndex>
parseRegName(std::string_view s)
{
    if (s == "zero")
        return reg::zero;
    if (s == "ra")
        return reg::ra;
    if (s == "sp")
        return reg::sp;
    if (s == "fp")
        return reg::fp;
    if (auto r = parseIndexed(s, 'r', 0, kNumRegs))
        return r;
    if (auto r = parseIndexed(s, 'a', reg::a0, 10))
        return r;
    if (auto r = parseIndexed(s, 't', reg::t0, 20))
        return r;
    if (auto r = parseIndexed(s, 's', reg::s0, 20))
        return r;
    if (auto r = parseIndexed(s, 'k', reg::k0, 10))
        return r;
    return std::nullopt;
}

} // namespace slip
