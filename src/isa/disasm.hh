/**
 * @file
 * SSIR disassembler: renders decoded instructions in the assembler's
 * input syntax, used by trace dumps, the pipeline viewer example, and
 * error messages.
 */

#ifndef SLIPSTREAM_ISA_DISASM_HH
#define SLIPSTREAM_ISA_DISASM_HH

#include <string>

#include "isa/isa.hh"

namespace slip
{

/**
 * Disassemble one instruction. If pc is provided, branch/jump targets
 * are rendered as absolute addresses; otherwise as relative offsets.
 */
std::string disassemble(const StaticInst &inst, Addr pc = 0,
                        bool absoluteTargets = true);

} // namespace slip

#endif // SLIPSTREAM_ISA_DISASM_HH
