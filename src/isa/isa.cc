#include "isa/isa.hh"

#include "common/logging.hh"

namespace slip
{

namespace
{

constexpr OpInfo opTable[] = {
    // mnemonic  format      opClass           memBytes  loadSigned
    {"add",   Format::R,   OpClass::IntAlu,   0, false},
    {"sub",   Format::R,   OpClass::IntAlu,   0, false},
    {"mul",   Format::R,   OpClass::IntMult,  0, false},
    {"mulh",  Format::R,   OpClass::IntMult,  0, false},
    {"div",   Format::R,   OpClass::IntDiv,   0, false},
    {"divu",  Format::R,   OpClass::IntDiv,   0, false},
    {"rem",   Format::R,   OpClass::IntDiv,   0, false},
    {"remu",  Format::R,   OpClass::IntDiv,   0, false},
    {"and",   Format::R,   OpClass::IntAlu,   0, false},
    {"or",    Format::R,   OpClass::IntAlu,   0, false},
    {"xor",   Format::R,   OpClass::IntAlu,   0, false},
    {"sll",   Format::R,   OpClass::IntAlu,   0, false},
    {"srl",   Format::R,   OpClass::IntAlu,   0, false},
    {"sra",   Format::R,   OpClass::IntAlu,   0, false},
    {"slt",   Format::R,   OpClass::IntAlu,   0, false},
    {"sltu",  Format::R,   OpClass::IntAlu,   0, false},
    {"addi",  Format::I,   OpClass::IntAlu,   0, false},
    {"andi",  Format::I,   OpClass::IntAlu,   0, false},
    {"ori",   Format::I,   OpClass::IntAlu,   0, false},
    {"xori",  Format::I,   OpClass::IntAlu,   0, false},
    {"slli",  Format::I,   OpClass::IntAlu,   0, false},
    {"srli",  Format::I,   OpClass::IntAlu,   0, false},
    {"srai",  Format::I,   OpClass::IntAlu,   0, false},
    {"slti",  Format::I,   OpClass::IntAlu,   0, false},
    {"sltiu", Format::I,   OpClass::IntAlu,   0, false},
    {"lui",   Format::J,   OpClass::IntAlu,   0, false},
    {"lb",    Format::I,   OpClass::Load,     1, true},
    {"lbu",   Format::I,   OpClass::Load,     1, false},
    {"lh",    Format::I,   OpClass::Load,     2, true},
    {"lhu",   Format::I,   OpClass::Load,     2, false},
    {"lw",    Format::I,   OpClass::Load,     4, true},
    {"lwu",   Format::I,   OpClass::Load,     4, false},
    {"ld",    Format::I,   OpClass::Load,     8, false},
    {"sb",    Format::S,   OpClass::Store,    1, false},
    {"sh",    Format::S,   OpClass::Store,    2, false},
    {"sw",    Format::S,   OpClass::Store,    4, false},
    {"sd",    Format::S,   OpClass::Store,    8, false},
    {"beq",   Format::B,   OpClass::Branch,   0, false},
    {"bne",   Format::B,   OpClass::Branch,   0, false},
    {"blt",   Format::B,   OpClass::Branch,   0, false},
    {"bge",   Format::B,   OpClass::Branch,   0, false},
    {"bltu",  Format::B,   OpClass::Branch,   0, false},
    {"bgeu",  Format::B,   OpClass::Branch,   0, false},
    {"jal",   Format::J,   OpClass::Jump,     0, false},
    {"jalr",  Format::I,   OpClass::Jump,     0, false},
    {"putc",  Format::Sys, OpClass::Syscall,  0, false},
    {"putn",  Format::Sys, OpClass::Syscall,  0, false},
    {"halt",  Format::Sys, OpClass::Syscall,  0, false},
    {"nop",   Format::Sys, OpClass::IntAlu,   0, false},
};

static_assert(sizeof(opTable) / sizeof(opTable[0]) ==
                  static_cast<size_t>(Opcode::NumOpcodes),
              "opTable out of sync with Opcode enum");

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    const auto idx = static_cast<size_t>(op);
    SLIP_ASSERT(idx < static_cast<size_t>(Opcode::NumOpcodes),
                "bad opcode ", idx);
    return opTable[idx];
}

} // namespace slip
