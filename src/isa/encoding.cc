#include "isa/encoding.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace slip
{

uint32_t
encode(const StaticInst &inst)
{
    uint64_t w = 0;
    w = insertBits(w, 24, 8, static_cast<uint64_t>(inst.op));

    const auto checkReg = [&](RegIndex r) {
        SLIP_ASSERT(r < kNumRegs, "register index ", unsigned(r),
                    " out of range encoding ", opcodeName(inst.op));
    };

    switch (inst.format()) {
      case Format::R:
        checkReg(inst.rd);
        checkReg(inst.rs1);
        checkReg(inst.rs2);
        w = insertBits(w, 18, 6, inst.rd);
        w = insertBits(w, 12, 6, inst.rs1);
        w = insertBits(w, 6, 6, inst.rs2);
        break;
      case Format::I:
        checkReg(inst.rd);
        checkReg(inst.rs1);
        SLIP_ASSERT(fitsSigned(inst.imm, 12), "imm ", inst.imm,
                    " out of I-type range for ", opcodeName(inst.op));
        w = insertBits(w, 18, 6, inst.rd);
        w = insertBits(w, 12, 6, inst.rs1);
        w = insertBits(w, 0, 12, static_cast<uint64_t>(inst.imm));
        break;
      case Format::S:
        checkReg(inst.rs1);
        checkReg(inst.rs2);
        SLIP_ASSERT(fitsSigned(inst.imm, 12), "imm ", inst.imm,
                    " out of S-type range for ", opcodeName(inst.op));
        w = insertBits(w, 18, 6, inst.rs2);
        w = insertBits(w, 12, 6, inst.rs1);
        w = insertBits(w, 0, 12, static_cast<uint64_t>(inst.imm));
        break;
      case Format::B:
        checkReg(inst.rs1);
        checkReg(inst.rs2);
        SLIP_ASSERT(fitsSigned(inst.imm, 12), "imm ", inst.imm,
                    " out of B-type range for ", opcodeName(inst.op));
        w = insertBits(w, 18, 6, inst.rs1);
        w = insertBits(w, 12, 6, inst.rs2);
        w = insertBits(w, 0, 12, static_cast<uint64_t>(inst.imm));
        break;
      case Format::J:
        checkReg(inst.rd);
        SLIP_ASSERT(fitsSigned(inst.imm, 18), "imm ", inst.imm,
                    " out of J-type range for ", opcodeName(inst.op));
        w = insertBits(w, 18, 6, inst.rd);
        w = insertBits(w, 0, 18, static_cast<uint64_t>(inst.imm));
        break;
      case Format::Sys:
        if (inst.op == Opcode::PUTC || inst.op == Opcode::PUTN) {
            checkReg(inst.rs1);
            w = insertBits(w, 12, 6, inst.rs1);
        }
        break;
    }
    return static_cast<uint32_t>(w);
}

StaticInst
decode(uint32_t word)
{
    const uint64_t w = word;
    const uint64_t opByte = bits(w, 24, 8);
    if (opByte >= static_cast<uint64_t>(Opcode::NumOpcodes))
        SLIP_FATAL("illegal instruction word 0x", std::hex, word,
                   " (opcode byte ", std::dec, opByte, ")");

    StaticInst inst;
    inst.op = static_cast<Opcode>(opByte);

    switch (inst.format()) {
      case Format::R:
        inst.rd = static_cast<RegIndex>(bits(w, 18, 6));
        inst.rs1 = static_cast<RegIndex>(bits(w, 12, 6));
        inst.rs2 = static_cast<RegIndex>(bits(w, 6, 6));
        break;
      case Format::I:
        inst.rd = static_cast<RegIndex>(bits(w, 18, 6));
        inst.rs1 = static_cast<RegIndex>(bits(w, 12, 6));
        inst.imm = sext(bits(w, 0, 12), 12);
        break;
      case Format::S:
        inst.rs2 = static_cast<RegIndex>(bits(w, 18, 6));
        inst.rs1 = static_cast<RegIndex>(bits(w, 12, 6));
        inst.imm = sext(bits(w, 0, 12), 12);
        break;
      case Format::B:
        inst.rs1 = static_cast<RegIndex>(bits(w, 18, 6));
        inst.rs2 = static_cast<RegIndex>(bits(w, 12, 6));
        inst.imm = sext(bits(w, 0, 12), 12);
        break;
      case Format::J:
        inst.rd = static_cast<RegIndex>(bits(w, 18, 6));
        inst.imm = sext(bits(w, 0, 18), 18);
        break;
      case Format::Sys:
        if (inst.op == Opcode::PUTC || inst.op == Opcode::PUTN)
            inst.rs1 = static_cast<RegIndex>(bits(w, 12, 6));
        break;
    }
    return inst;
}

} // namespace slip
