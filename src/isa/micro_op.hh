/**
 * @file
 * Predecoded micro-ops: the execution-ready form of a StaticInst.
 *
 * A StaticInst still pays per-execution decode work — opInfo() table
 * walks for memBytes/signedness, destReg() format dispatch, branch
 * target scaling — on every dynamic instance. A MicroOp resolves all
 * of that once, at program load:
 *
 *  - `handler` is the dispatch index (the raw opcode value), ready for
 *    a computed-goto table or a dense switch,
 *  - `rd` is the already-resolved destination (kNoReg when the
 *    instruction has none, including writes to the zero register),
 *  - `rdSlot` maps kNoReg onto a 65th sink slot so the threaded engine
 *    can write destinations unconditionally,
 *  - `imm` is pre-transformed (LUI pre-shifted, shift amounts
 *    pre-masked) so handlers do no immediate massaging,
 *  - `target` is the pre-scaled absolute branch/JAL destination.
 *
 * Predecoding is pure per-instruction work keyed by (inst, pc), so the
 * array is built eagerly in the Program constructor and shared
 * read-only across threads like the rest of the image.
 */

#ifndef SLIPSTREAM_ISA_MICRO_OP_HH
#define SLIPSTREAM_ISA_MICRO_OP_HH

#include "common/types.hh"
#include "isa/isa.hh"

namespace slip
{

/** One execution-ready micro-op (24 bytes, trivially copyable). */
struct MicroOp
{
    uint8_t handler = static_cast<uint8_t>(Opcode::NOP);
    RegIndex rd = kNoReg;  // resolved destination; kNoReg = none
    uint8_t rdSlot = kNumRegs; // rd for a 65-slot file; kNumRegs = sink
    RegIndex rs1 = 0;
    RegIndex rs2 = 0;
    uint8_t memBytes = 0;  // 1/2/4/8 for loads & stores
    int64_t imm = 0;       // pre-transformed immediate
    Addr target = 0;       // absolute pre-scaled branch/JAL target

    Opcode op() const { return static_cast<Opcode>(handler); }
};

/**
 * Predecode one instruction sitting at `pc`. The result is only valid
 * for execution at that address (the branch target is absolute).
 */
MicroOp predecode(const StaticInst &inst, Addr pc);

} // namespace slip

#endif // SLIPSTREAM_ISA_MICRO_OP_HH
