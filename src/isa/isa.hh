/**
 * @file
 * The SSIR instruction set.
 *
 * SSIR is the MIPS-flavored RISC ISA this repository substitutes for the
 * proprietary SimpleScalar ISA used in the slipstream paper: 64
 * general-purpose 64-bit registers (r0 hardwired to zero), fixed 32-bit
 * instruction words, loads/stores, conditional branches, and direct and
 * indirect jumps. The slipstream machinery only cares about operation
 * *classes* (what writes what, what branches where), so any RISC ISA with
 * this shape exercises the same paths.
 *
 * Encoding (32 bits, opcode always in [31:24]):
 *   R-type:  op | rd[23:18]  | rs1[17:12] | rs2[11:6] | 0[5:0]
 *   I-type:  op | rd[23:18]  | rs1[17:12] | imm12[11:0] (signed)
 *   S-type:  op | rs2[23:18] | rs1[17:12] | imm12[11:0] (store)
 *   B-type:  op | rs1[23:18] | rs2[17:12] | imm12[11:0] (branch offset,
 *            in instruction words, relative to the branch PC)
 *   J-type:  op | rd[23:18]  | imm18[17:0] (JAL offset in instruction
 *            words; LUI places sext(imm18) << 12 in rd)
 */

#ifndef SLIPSTREAM_ISA_ISA_HH
#define SLIPSTREAM_ISA_ISA_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace slip
{

/** Every SSIR operation. Order is the binary opcode value. */
enum class Opcode : uint8_t
{
    // R-type ALU
    ADD, SUB, MUL, MULH, DIV, DIVU, REM, REMU,
    AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
    // I-type ALU
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, SLTIU,
    LUI,
    // Loads (I-type)
    LB, LBU, LH, LHU, LW, LWU, LD,
    // Stores (S-type)
    SB, SH, SW, SD,
    // Branches (B-type)
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    // Jumps
    JAL,   // J-type: rd = pc + 4, pc += imm * 4
    JALR,  // I-type: rd = pc + 4, pc = rs1 + imm
    // System (I-type operand usage)
    PUTC,  // emit low byte of rs1 to the program output stream
    PUTN,  // emit signed decimal of rs1 plus newline
    HALT,  // terminate the program
    NOP,

    NumOpcodes
};

/** Instruction word layout family. */
enum class Format : uint8_t
{
    R, I, S, B, J, Sys
};

/** Functional-unit class; determines execution latency (Table 2). */
enum class OpClass : uint8_t
{
    IntAlu,   // 1 cycle
    IntMult,  // MIPS R10000-style multiply latency
    IntDiv,   // MIPS R10000-style divide latency
    Load,     // address generation + cache access
    Store,    // address generation
    Branch,   // 1 cycle (resolves the direction)
    Jump,     // 1 cycle
    Syscall   // output / halt
};

/** Static (decode-time) properties of an opcode. */
struct OpInfo
{
    const char *mnemonic;
    Format format;
    OpClass opClass;
    uint8_t memBytes;     // 1/2/4/8 for loads & stores, else 0
    bool loadSigned;      // sign-extend the loaded value
};

/** Static properties table lookup. */
const OpInfo &opInfo(Opcode op);

/** Mnemonic for an opcode (lower case). */
inline const char *opcodeName(Opcode op) { return opInfo(op).mnemonic; }

/**
 * A decoded SSIR instruction. This is the common currency between the
 * assembler, the functional executor, the timing cores, and the
 * slipstream components.
 */
struct StaticInst
{
    Opcode op = Opcode::NOP;
    RegIndex rd = 0;
    RegIndex rs1 = 0;
    RegIndex rs2 = 0;
    int64_t imm = 0;

    Format format() const { return opInfo(op).format; }
    OpClass opClass() const { return opInfo(op).opClass; }

    bool isLoad() const { return opClass() == OpClass::Load; }
    bool isStore() const { return opClass() == OpClass::Store; }
    bool isCondBranch() const { return opClass() == OpClass::Branch; }
    bool isJump() const { return opClass() == OpClass::Jump; }
    bool isIndirectJump() const { return op == Opcode::JALR; }
    bool isHalt() const { return op == Opcode::HALT; }
    bool isOutput() const
    {
        return op == Opcode::PUTC || op == Opcode::PUTN;
    }
    bool isSyscall() const { return opClass() == OpClass::Syscall; }

    /** Any instruction that can redirect the PC. */
    bool
    isControl() const
    {
        return isCondBranch() || isJump();
    }

    /** Number of bytes touched by a load or store. */
    unsigned memBytes() const { return opInfo(op).memBytes; }

    /** Destination register, or kNoReg if none (or the zero reg). */
    RegIndex
    destReg() const
    {
        switch (format()) {
          case Format::R:
          case Format::I:
          case Format::J:
            if (op == Opcode::PUTC || op == Opcode::PUTN ||
                op == Opcode::HALT || op == Opcode::NOP) {
                return kNoReg;
            }
            return rd == kZeroReg ? kNoReg : rd;
          default:
            return kNoReg;
        }
    }

    /**
     * Source registers. Fills srcs[0..1]; absent sources are kNoReg.
     * The zero register is reported (reads of r0 are real reads that
     * always yield 0) so dependence tracking can ignore it explicitly.
     */
    void
    srcRegs(RegIndex srcs[2]) const
    {
        srcs[0] = kNoReg;
        srcs[1] = kNoReg;
        switch (format()) {
          case Format::R:
            srcs[0] = rs1;
            srcs[1] = rs2;
            break;
          case Format::I:
            if (op == Opcode::LUI)
                break;
            srcs[0] = rs1;
            break;
          case Format::S:
          case Format::B:
            srcs[0] = rs1;
            srcs[1] = rs2;
            break;
          case Format::J:
            break;
          case Format::Sys:
            if (op == Opcode::PUTC || op == Opcode::PUTN)
                srcs[0] = rs1;
            break;
        }
    }

    bool operator==(const StaticInst &other) const = default;
};

} // namespace slip

#endif // SLIPSTREAM_ISA_ISA_HH
