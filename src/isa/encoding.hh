/**
 * @file
 * Binary encode/decode for SSIR's fixed 32-bit instruction words.
 * The assembler emits encoded words into the program image; the
 * functional simulator and timing cores decode at fetch.
 */

#ifndef SLIPSTREAM_ISA_ENCODING_HH
#define SLIPSTREAM_ISA_ENCODING_HH

#include <cstdint>

#include "isa/isa.hh"

namespace slip
{

/**
 * Encode a decoded instruction into its 32-bit word.
 * Panics if an immediate does not fit its field — the assembler is
 * responsible for range-checking user input with fatal() first.
 */
uint32_t encode(const StaticInst &inst);

/** Decode a 32-bit instruction word. Fatal on an unknown opcode byte. */
StaticInst decode(uint32_t word);

} // namespace slip

#endif // SLIPSTREAM_ISA_ENCODING_HH
