#include "isa/micro_op.hh"

namespace slip
{

MicroOp
predecode(const StaticInst &inst, Addr pc)
{
    MicroOp u;
    u.handler = static_cast<uint8_t>(inst.op);
    u.rd = inst.destReg();
    u.rdSlot = u.rd == kNoReg ? static_cast<uint8_t>(kNumRegs) : u.rd;
    u.rs1 = inst.rs1;
    u.rs2 = inst.rs2;
    u.memBytes = opInfo(inst.op).memBytes;
    u.imm = inst.imm;

    switch (inst.op) {
      case Opcode::LUI:
        // The executor computes Word(imm) << 12; bake it in.
        u.imm = static_cast<int64_t>(static_cast<Word>(inst.imm) << 12);
        break;
      case Opcode::SLLI:
      case Opcode::SRLI:
      case Opcode::SRAI:
        // Shift amounts are masked to 6 bits at execution; pre-mask.
        u.imm = static_cast<int64_t>(static_cast<Word>(inst.imm) & 63);
        break;
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
      case Opcode::BLTU:
      case Opcode::BGEU:
      case Opcode::JAL:
        // Branch offsets are in instruction words relative to pc.
        u.target = pc + static_cast<int64_t>(inst.imm) * kInstBytes;
        break;
      default:
        break;
    }
    return u;
}

} // namespace slip
