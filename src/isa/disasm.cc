#include "isa/disasm.hh"

#include <sstream>

#include "isa/regnames.hh"

namespace slip
{

std::string
disassemble(const StaticInst &inst, Addr pc, bool absoluteTargets)
{
    std::ostringstream os;
    os << opcodeName(inst.op);

    const auto target = [&](int64_t imm_words) -> std::string {
        if (absoluteTargets) {
            std::ostringstream t;
            t << "0x" << std::hex
              << (pc + static_cast<int64_t>(imm_words) * kInstBytes);
            return t.str();
        }
        return (imm_words >= 0 ? "+" : "") + std::to_string(imm_words);
    };

    switch (inst.format()) {
      case Format::R:
        os << " " << regName(inst.rd) << ", " << regName(inst.rs1)
           << ", " << regName(inst.rs2);
        break;
      case Format::I:
        if (inst.isLoad()) {
            os << " " << regName(inst.rd) << ", " << inst.imm << "("
               << regName(inst.rs1) << ")";
        } else if (inst.op == Opcode::JALR) {
            os << " " << regName(inst.rd) << ", " << inst.imm << "("
               << regName(inst.rs1) << ")";
        } else {
            os << " " << regName(inst.rd) << ", " << regName(inst.rs1)
               << ", " << inst.imm;
        }
        break;
      case Format::S:
        os << " " << regName(inst.rs2) << ", " << inst.imm << "("
           << regName(inst.rs1) << ")";
        break;
      case Format::B:
        os << " " << regName(inst.rs1) << ", " << regName(inst.rs2)
           << ", " << target(inst.imm);
        break;
      case Format::J:
        if (inst.op == Opcode::LUI)
            os << " " << regName(inst.rd) << ", " << inst.imm;
        else
            os << " " << regName(inst.rd) << ", " << target(inst.imm);
        break;
      case Format::Sys:
        if (inst.op == Opcode::PUTC || inst.op == Opcode::PUTN)
            os << " " << regName(inst.rs1);
        break;
    }
    return os.str();
}

} // namespace slip
