/**
 * @file
 * Sparse paged simulated memory.
 *
 * The simulated address space is flat and 64-bit; pages are allocated
 * on first touch so wild addresses (which a corrupted A-stream context
 * can legitimately generate) cost one page rather than crashing the
 * host. All accesses are little-endian and may be unaligned — again so
 * that corrupt-context execution stays well-defined.
 */

#ifndef SLIPSTREAM_MEM_MEMORY_HH
#define SLIPSTREAM_MEM_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace slip
{

/** Flat byte-addressed sparse memory. Untouched bytes read as zero. */
class Memory
{
  public:
    static constexpr unsigned kPageShift = 12;
    static constexpr Addr kPageBytes = 1ull << kPageShift;

    Memory() = default;

    // Memory images can be large; copying must be explicit (clone()).
    Memory(const Memory &) = delete;
    Memory &operator=(const Memory &) = delete;
    // Moves bump the epoch: any cached page pointer into either image
    // must be revalidated.
    Memory(Memory &&other) noexcept
        : pages(std::move(other.pages)), epoch_(other.epoch_ + 1)
    {
        ++other.epoch_;
    }
    Memory &
    operator=(Memory &&other) noexcept
    {
        pages = std::move(other.pages);
        ++other.epoch_;
        ++epoch_;
        return *this;
    }

    /** Read `bytes` (1/2/4/8) little-endian starting at addr. */
    uint64_t read(Addr addr, unsigned bytes) const;

    /** Write the low `bytes` (1/2/4/8) of value little-endian at addr. */
    void write(Addr addr, unsigned bytes, uint64_t value);

    /** Bulk copy-in, used by the program loader. */
    void writeBlock(Addr addr, const uint8_t *data, size_t len);

    /** Bulk copy-out; bytes on never-touched pages read as zero. */
    void readBlock(Addr addr, uint8_t *out, size_t len) const;

    /**
     * Raw storage of the page containing `pageAddr` (which must be
     * page-aligned), or nullptr if never touched. Never allocates, so
     * it is safe on the load path where sparse semantics require that
     * reads leave the footprint unchanged. The pointer stays valid
     * until epoch() changes (unordered_map nodes are stable across
     * inserts; only clear()/moves invalidate).
     */
    const uint8_t *
    peekPagePtr(Addr pageAddr) const
    {
        const Page *p = findPage(pageAddr);
        return p ? p->data() : nullptr;
    }

    uint8_t *
    peekPagePtr(Addr pageAddr)
    {
        Page *p = const_cast<Page *>(findPage(pageAddr));
        return p ? p->data() : nullptr;
    }

    /** Like peekPagePtr but allocates a zero page on first touch. */
    uint8_t *
    touchPagePtr(Addr pageAddr)
    {
        return touchPage(pageAddr).data();
    }

    /**
     * Invalidation counter for cached page pointers: incremented by
     * clear() and by moves — the only operations that can invalidate
     * a Page's storage.
     */
    uint64_t epoch() const { return epoch_; }

    /** Deep copy of the full image (tests / golden snapshots). */
    Memory clone() const;

    /**
     * Structural equality of contents: pages absent on one side compare
     * equal to all-zero pages on the other.
     */
    bool equals(const Memory &other) const;

    /** Number of allocated pages (footprint diagnostics). */
    size_t numPages() const { return pages.size(); }

    /** Drop every page. */
    void
    clear()
    {
        pages.clear();
        ++epoch_;
    }

  private:
    using Page = std::vector<uint8_t>;

    /** Page lookup for reads; returns nullptr if never touched. */
    const Page *findPage(Addr pageAddr) const;

    /** Page lookup for writes; allocates a zero page on first touch. */
    Page &touchPage(Addr pageAddr);

    std::unordered_map<Addr, Page> pages;
    uint64_t epoch_ = 0;
};

} // namespace slip

#endif // SLIPSTREAM_MEM_MEMORY_HH
