#include "mem/memory.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/logging.hh"

namespace slip
{

namespace
{

constexpr Addr
pageOf(Addr addr)
{
    return addr >> Memory::kPageShift << Memory::kPageShift;
}

constexpr size_t
offsetOf(Addr addr)
{
    return static_cast<size_t>(addr & (Memory::kPageBytes - 1));
}

bool
validSize(unsigned bytes)
{
    return bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8;
}

} // namespace

const Memory::Page *
Memory::findPage(Addr pageAddr) const
{
    auto it = pages.find(pageAddr);
    return it == pages.end() ? nullptr : &it->second;
}

Memory::Page &
Memory::touchPage(Addr pageAddr)
{
    auto &page = pages[pageAddr];
    if (page.empty())
        page.assign(kPageBytes, 0);
    return page;
}

uint64_t
Memory::read(Addr addr, unsigned bytes) const
{
    SLIP_ASSERT(validSize(bytes), "bad access size ", bytes);
    // Single-page fast path: one hash lookup and a memcpy. The memcpy
    // reassembles the value only on little-endian hosts, where the
    // in-page byte order matches the architectural order.
    if constexpr (std::endian::native == std::endian::little) {
        const size_t off = offsetOf(addr);
        if (off + bytes <= kPageBytes) {
            const Page *page = findPage(pageOf(addr));
            if (!page)
                return 0;
            uint64_t value = 0;
            std::memcpy(&value, page->data() + off, bytes);
            return value;
        }
    }
    uint64_t value = 0;
    for (unsigned i = 0; i < bytes; ++i) {
        const Addr a = addr + i;
        const Page *page = findPage(pageOf(a));
        const uint8_t byte = page ? (*page)[offsetOf(a)] : 0;
        value |= static_cast<uint64_t>(byte) << (8 * i);
    }
    return value;
}

void
Memory::write(Addr addr, unsigned bytes, uint64_t value)
{
    SLIP_ASSERT(validSize(bytes), "bad access size ", bytes);
    if constexpr (std::endian::native == std::endian::little) {
        const size_t off = offsetOf(addr);
        if (off + bytes <= kPageBytes) {
            std::memcpy(touchPage(pageOf(addr)).data() + off, &value,
                        bytes);
            return;
        }
    }
    for (unsigned i = 0; i < bytes; ++i) {
        const Addr a = addr + i;
        touchPage(pageOf(a))[offsetOf(a)] =
            static_cast<uint8_t>(value >> (8 * i));
    }
}

void
Memory::writeBlock(Addr addr, const uint8_t *data, size_t len)
{
    size_t done = 0;
    while (done < len) {
        const Addr a = addr + done;
        Page &page = touchPage(pageOf(a));
        const size_t off = offsetOf(a);
        const size_t chunk = std::min(len - done, kPageBytes - off);
        std::memcpy(page.data() + off, data + done, chunk);
        done += chunk;
    }
}

void
Memory::readBlock(Addr addr, uint8_t *out, size_t len) const
{
    size_t done = 0;
    while (done < len) {
        const Addr a = addr + done;
        const size_t off = offsetOf(a);
        const size_t chunk = std::min(len - done, kPageBytes - off);
        const Page *page = findPage(pageOf(a));
        if (page)
            std::memcpy(out + done, page->data() + off, chunk);
        else
            std::memset(out + done, 0, chunk);
        done += chunk;
    }
}

Memory
Memory::clone() const
{
    Memory copy;
    copy.pages = pages;
    return copy;
}

bool
Memory::equals(const Memory &other) const
{
    const auto zeroPage = [](const Page &p) {
        return std::all_of(p.begin(), p.end(),
                           [](uint8_t b) { return b == 0; });
    };
    for (const auto &[addr, page] : pages) {
        const Page *o = other.findPage(addr);
        if (o ? page != *o : !zeroPage(page))
            return false;
    }
    for (const auto &[addr, page] : other.pages) {
        if (!findPage(addr) && !zeroPage(page))
            return false;
    }
    return true;
}

} // namespace slip
