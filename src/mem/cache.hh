/**
 * @file
 * Set-associative cache timing model with true-LRU replacement.
 *
 * This is a *timing* model only: data lives in the simulated Memory;
 * the cache tracks tags to decide hit vs miss latency, exactly the role
 * the private I- and D-caches play in the paper's Table 2 (the shared
 * L2 always hits, so a miss costs a flat penalty).
 */

#ifndef SLIPSTREAM_MEM_CACHE_HH
#define SLIPSTREAM_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace slip
{

/** Configuration of one cache (sizes in bytes). */
struct CacheParams
{
    std::string name = "cache";
    uint64_t sizeBytes = 64 * 1024;
    unsigned assoc = 4;
    unsigned lineBytes = 64;
    Cycle hitLatency = 1;
    Cycle missPenalty = 12;
};

/** Tag-only set-associative cache with LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Access the line containing addr, updating tags and LRU state.
     * @return total latency in cycles (hitLatency, plus missPenalty on
     *         a miss).
     */
    Cycle access(Addr addr);

    /** Probe without updating state. True if the line is resident. */
    bool contains(Addr addr) const;

    /** Invalidate all lines (used on context recovery in tests). */
    void flush();

    const CacheParams &params() const { return params_; }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        uint64_t lastUse = 0; // LRU timestamp
    };

    unsigned setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheParams params_;
    unsigned numSets;
    std::vector<Line> lines; // numSets * assoc, set-major
    uint64_t useClock = 0;

    // Touched on every access; linked into stats_ (no string lookup).
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;

    StatGroup stats_;
};

} // namespace slip

#endif // SLIPSTREAM_MEM_CACHE_HH
