#include "mem/cache.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace slip
{

Cache::Cache(const CacheParams &params)
    : params_(params), stats_(params.name)
{
    stats_.link("hits", hits_);
    stats_.link("misses", misses_);
    if (!isPowerOfTwo(params_.lineBytes))
        SLIP_FATAL("cache line size must be a power of two, got ",
                   params_.lineBytes);
    if (params_.assoc == 0 || params_.sizeBytes == 0)
        SLIP_FATAL("cache size and associativity must be nonzero");
    const uint64_t linesTotal = params_.sizeBytes / params_.lineBytes;
    if (linesTotal % params_.assoc != 0)
        SLIP_FATAL("cache geometry does not divide evenly: ",
                   linesTotal, " lines, assoc ", params_.assoc);
    numSets = static_cast<unsigned>(linesTotal / params_.assoc);
    if (!isPowerOfTwo(numSets))
        SLIP_FATAL("cache set count must be a power of two, got ",
                   numSets);
    lines.resize(linesTotal);
}

unsigned
Cache::setIndex(Addr addr) const
{
    return static_cast<unsigned>(
        (addr / params_.lineBytes) & (numSets - 1));
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr / params_.lineBytes / numSets;
}

Cycle
Cache::access(Addr addr)
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines[static_cast<size_t>(set) * params_.assoc];

    ++useClock;

    Line *victim = base;
    for (unsigned way = 0; way < params_.assoc; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock;
            ++hits_;
            return params_.hitLatency;
        }
        if (!line.valid) {
            victim = &line; // prefer an invalid way
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock;
    ++misses_;
    return params_.hitLatency + params_.missPenalty;
}

bool
Cache::contains(Addr addr) const
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const Line *base = &lines[static_cast<size_t>(set) * params_.assoc];
    for (unsigned way = 0; way < params_.assoc; ++way) {
        if (base[way].valid && base[way].tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines)
        line.valid = false;
}

} // namespace slip
