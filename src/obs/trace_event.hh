/**
 * @file
 * Cycle-level observability: structured trace events (the wire format
 * of the obs subsystem).
 *
 * Naming note: `src/uarch/trace.*` is the *trace cache* substrate
 * (Jacobson-style dynamic instruction traces, paper §2.1.1); this
 * directory is the unrelated *observability* subsystem. Cross-cutting
 * instrumentation lives here under `slip::obs` to keep the two apart.
 *
 * Events are fixed-size binary records — category, phase
 * (begin/end/instant/counter), a sim-cycle timestamp, a name id, and
 * two payload words — produced into per-thread ring buffers
 * (trace_session.hh) and exported as Chrome trace-event JSON that
 * loads directly in Perfetto UI / chrome://tracing.
 *
 * The emission macros below compile to a single thread-local branch
 * when tracing is disabled at runtime, and to nothing at all when
 * SLIPSTREAM_DISABLE_TRACING is defined at build time — hot loops pay
 * at most one predictable branch.
 */

#ifndef SLIPSTREAM_OBS_TRACE_EVENT_HH
#define SLIPSTREAM_OBS_TRACE_EVENT_HH

#include <cstdint>
#include <string>

namespace slip::obs
{

/**
 * Event categories, used both as a runtime filter (SLIPSTREAM_TRACE /
 * --trace select a bitmask) and as the Chrome `cat` field. One bit
 * per instrumented layer.
 */
enum class Category : uint32_t
{
    DelayBuffer = 1u << 0, // A→R FIFO occupancy and flushes
    IRPredictor = 1u << 1, // removal-predictor lookups and resets
    Removal = 1u << 2,     // per-trace removal decisions
    Recovery = 1u << 3,    // recovery spans, causes, degradation
    Core = 1u << 4,        // per-core fetch/retire windows, squashes
    Trial = 1u << 5,       // trial lifecycle, retries, timeouts
    Fault = 1u << 6,       // fault injection → detection spans
    Worker = 1u << 7,      // sandbox worker lifecycle, crashes
    Serve = 1u << 8,       // slipd client/batch lifecycle, cache
};

inline constexpr unsigned kNumCategories = 9;
inline constexpr uint32_t kAllCategories =
    (1u << kNumCategories) - 1;

/** "delay_buffer", "ir_predictor", ... (Chrome `cat` / CLI names). */
const char *categoryName(Category category);

/**
 * Parse a SLIPSTREAM_TRACE / --trace category list: comma-separated
 * category names, or "all"/"1" for everything, or ""/"0"/"none" for
 * nothing. Unknown names warn (naming the offender) and are skipped.
 */
uint32_t parseCategoryMask(const std::string &spec);

/** Render a mask back to a stable comma-separated list. */
std::string categoryMaskNames(uint32_t mask);

/** Chrome trace-event phase of an event. */
enum class Phase : uint8_t
{
    Begin,   // "B": opens a named span on the category track
    End,     // "E": closes the innermost open span
    Instant, // "i": a point event
    Counter, // "C": a sampled value (arg0), plotted as a track
};

/** Event names — a static table so events stay fixed-size binary. */
enum class Name : uint16_t
{
    // DelayBuffer
    ControlOccupancy, // counter: {trace-id, ir-vec} pairs buffered
    DataOccupancy,    // counter: instruction data entries buffered
    DelayBufferFlush, // instant: buffer cleared (recovery/degrade)

    // IRPredictor
    IRLookupConfident,      // instant: removal plan served (arg0 irVec)
    IRLookupBelowThreshold, // instant: entry known, confidence short
    IRConfidenceReset,      // instant: detector reset an entry

    // Removal
    RemovalApplied, // instant: trace walked under a plan
                    // (arg0 startPc, arg1 removed slots)

    // Recovery
    RecoverySpan,     // begin/end: arg0 cause, arg1 latency
    WatchdogTrip,     // instant: forced recovery (arg0 trip count)
    DegradeToROnly,   // instant: A-stream shed (arg0 recent recoveries)
    RecoveriesTotal,  // counter: cumulative recoveries this run

    // Core
    CoreFlush,        // instant: pipeline flush (arg0 discarded,
                      //          arg1 core tag)
    CoreRetired,      // counter: cumulative retired (arg1 core tag)
    CoreFetched,      // counter: cumulative fetched (arg1 core tag)

    // Trial
    TrialSpan,    // begin/end: one supervised trial (arg0 attempt)
    TrialOutcome, // instant: classified outcome index (arg0)
    TrialTimeout, // instant: the wall-clock deadline reaped the run

    // Fault
    FaultInjected, // instant: arg0 target, arg1 dynamic index
    FaultDetected, // instant: arg0 target, arg1 detection latency

    // Worker
    WorkerSpawn,    // instant: arg0 slot index, arg1 pid
    WorkerExit,     // instant: arg0 pid, arg1 wait status
    WorkerCrash,    // instant: arg0 signal, arg1 job index
    JobRedispatch,  // instant: arg0 job index, arg1 new attempt
    JobQuarantined, // instant: arg0 job index, arg1 signal

    // Serve
    ClientConnect,   // instant: arg0 connection id
    ClientDisconnect,// instant: arg0 connection id
    BatchSpan,       // begin/end: arg0 batch id, arg1 trial count
    BatchCancelled,  // instant: arg0 batch id, arg1 trials revoked
    CacheHit,        // instant: arg0 batch id, arg1 trial index
    CacheMiss,       // instant: arg0 batch id, arg1 trial index
    CacheStore,      // instant: arg0 batch id, arg1 trial index
    CacheEvict,      // instant: arg0 entries evicted, arg1 remaining
    DrainSpan,       // begin/end: graceful-drain window
};

/** Display string for a name id (the Chrome `name` field). */
const char *eventNameString(Name name);

/**
 * One observability event. 32 bytes, POD, no indirection — the ring
 * buffers copy these by value and the exporters stringify them after
 * the simulation work is done.
 */
struct TraceEvent
{
    uint64_t cycle = 0; // sim-cycle timestamp
    uint64_t arg0 = 0;  // payload words (meaning per Name)
    uint64_t arg1 = 0;
    uint32_t seq = 0;   // per-trial emission order (sort tiebreak)
    Name name = Name::TrialSpan;
    uint8_t category = 0; // bit index into Category (0..31)
    Phase phase = Phase::Instant;
};

static_assert(sizeof(TraceEvent) == 32, "TraceEvent must stay compact");

/** Bit index of a category (TraceEvent::category encoding). */
unsigned categoryBit(Category category);

} // namespace slip::obs

// ---------------------------------------------------------------------
// Emission macros. SLIP_TRACE_* are the only spellings instrumentation
// sites use, so a build with SLIPSTREAM_DISABLE_TRACING compiles every
// hook out entirely (the CI overhead guard builds both flavors).
// ---------------------------------------------------------------------

#ifdef SLIPSTREAM_DISABLE_TRACING

#define SLIP_TRACE_ACTIVE(cat) false
#define SLIP_TRACE_SET_CYCLE(now) ((void)0)
#define SLIP_TRACE(cat, name, phase, a0, a1) ((void)0)
#define SLIP_TRACE_AT(cat, name, phase, cycle, a0, a1) ((void)0)

#else

/** Is this category live on this thread? (One TLS load + branch.) */
#define SLIP_TRACE_ACTIVE(cat) (::slip::obs::categoryActive(cat))

/** Stamp the thread's current sim cycle (cheap; call once per cycle). */
#define SLIP_TRACE_SET_CYCLE(now) ::slip::obs::setCurrentCycle(now)

/** Emit at the thread's current sim cycle. */
#define SLIP_TRACE(cat, name, phase, a0, a1) \
    do { \
        if (::slip::obs::categoryActive(cat)) \
            ::slip::obs::emitEvent(cat, name, phase, a0, a1); \
    } while (0)

/** Emit at an explicit cycle (sites that know a future/past time). */
#define SLIP_TRACE_AT(cat, name, phase, cycle, a0, a1) \
    do { \
        if (::slip::obs::categoryActive(cat)) \
            ::slip::obs::emitEventAt(cat, name, phase, cycle, a0, a1); \
    } while (0)

#endif // SLIPSTREAM_DISABLE_TRACING

#endif // SLIPSTREAM_OBS_TRACE_EVENT_HH
