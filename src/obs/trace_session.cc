#include "obs/trace_session.hh"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/env.hh"
#include "common/logging.hh"

namespace slip::obs
{

thread_local ThreadSink tlsSink;

namespace
{

thread_local unsigned tlsTrialAttempt = 1;

} // namespace

// ---------------------------------------------------------------------
// Category / name tables
// ---------------------------------------------------------------------

const char *
categoryName(Category category)
{
    switch (category) {
      case Category::DelayBuffer:
        return "delay_buffer";
      case Category::IRPredictor:
        return "ir_predictor";
      case Category::Removal:
        return "removal";
      case Category::Recovery:
        return "recovery";
      case Category::Core:
        return "core";
      case Category::Trial:
        return "trial";
      case Category::Fault:
        return "fault";
      case Category::Worker:
        return "worker";
      case Category::Serve:
        return "serve";
    }
    return "?";
}

unsigned
categoryBit(Category category)
{
    const uint32_t v = static_cast<uint32_t>(category);
    unsigned bit = 0;
    while ((v >> bit) > 1)
        ++bit;
    return bit;
}

uint32_t
parseCategoryMask(const std::string &spec)
{
    if (spec.empty() || spec == "0" || spec == "none" ||
        spec == "off")
        return 0;
    if (spec == "all" || spec == "1" || spec == "on")
        return kAllCategories;

    uint32_t mask = 0;
    std::istringstream in(spec);
    std::string token;
    while (std::getline(in, token, ',')) {
        if (token.empty())
            continue;
        bool known = false;
        for (unsigned bit = 0; bit < kNumCategories; ++bit) {
            const Category c = Category(1u << bit);
            if (token == categoryName(c)) {
                mask |= static_cast<uint32_t>(c);
                known = true;
                break;
            }
        }
        if (!known)
            SLIP_WARN("unknown trace category '", token,
                      "' (want ", categoryMaskNames(kAllCategories),
                      " or 'all'); skipping it");
    }
    return mask;
}

std::string
categoryMaskNames(uint32_t mask)
{
    std::string out;
    for (unsigned bit = 0; bit < kNumCategories; ++bit) {
        if (!(mask & (1u << bit)))
            continue;
        if (!out.empty())
            out += ",";
        out += categoryName(Category(1u << bit));
    }
    return out;
}

const char *
eventNameString(Name name)
{
    switch (name) {
      case Name::ControlOccupancy:
        return "control_occupancy";
      case Name::DataOccupancy:
        return "data_occupancy";
      case Name::DelayBufferFlush:
        return "delay_buffer_flush";
      case Name::IRLookupConfident:
        return "ir_lookup_confident";
      case Name::IRLookupBelowThreshold:
        return "ir_lookup_below_threshold";
      case Name::IRConfidenceReset:
        return "ir_confidence_reset";
      case Name::RemovalApplied:
        return "removal_applied";
      case Name::RecoverySpan:
        return "recovery";
      case Name::WatchdogTrip:
        return "watchdog_trip";
      case Name::DegradeToROnly:
        return "degrade_to_r_only";
      case Name::RecoveriesTotal:
        return "recoveries_total";
      case Name::CoreFlush:
        return "core_flush";
      case Name::CoreRetired:
        return "core_retired";
      case Name::CoreFetched:
        return "core_fetched";
      case Name::TrialSpan:
        return "trial";
      case Name::TrialOutcome:
        return "trial_outcome";
      case Name::TrialTimeout:
        return "trial_timeout";
      case Name::FaultInjected:
        return "fault_injected";
      case Name::FaultDetected:
        return "fault_detected";
      case Name::WorkerSpawn:
        return "worker_spawn";
      case Name::WorkerExit:
        return "worker_exit";
      case Name::WorkerCrash:
        return "worker_crash";
      case Name::JobRedispatch:
        return "job_redispatch";
      case Name::JobQuarantined:
        return "job_quarantined";
      case Name::ClientConnect:
        return "client_connect";
      case Name::ClientDisconnect:
        return "client_disconnect";
      case Name::BatchSpan:
        return "batch";
      case Name::BatchCancelled:
        return "batch_cancelled";
      case Name::CacheHit:
        return "cache_hit";
      case Name::CacheMiss:
        return "cache_miss";
      case Name::CacheStore:
        return "cache_store";
      case Name::CacheEvict:
        return "cache_evict";
      case Name::DrainSpan:
        return "drain";
    }
    return "?";
}

// ---------------------------------------------------------------------
// EventRing
// ---------------------------------------------------------------------

namespace
{

size_t
roundUpPow2(size_t n)
{
    size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

EventRing::EventRing(size_t capacity)
    : slots_(roundUpPow2(std::max<size_t>(capacity, 8)))
{
}

void
EventRing::push(const TraceEvent &event)
{
    const uint64_t h = head_.load(std::memory_order_relaxed);
    const uint64_t t = tail_.load(std::memory_order_relaxed);
    if (h - t == slots_.size()) {
        // Full: sacrifice the oldest event, visibly. The producer owns
        // both indices until drain() (the trial has quiesced by then).
        tail_.store(t + 1, std::memory_order_relaxed);
        dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    slots_[h & (slots_.size() - 1)] = event;
    head_.store(h + 1, std::memory_order_release);
}

std::vector<TraceEvent>
EventRing::drain()
{
    const uint64_t h = head_.load(std::memory_order_acquire);
    uint64_t t = tail_.load(std::memory_order_relaxed);
    std::vector<TraceEvent> out;
    out.reserve(size_t(h - t));
    for (; t != h; ++t)
        out.push_back(slots_[t & (slots_.size() - 1)]);
    tail_.store(t, std::memory_order_release);
    return out;
}

size_t
EventRing::size() const
{
    return size_t(head_.load(std::memory_order_acquire) -
                  tail_.load(std::memory_order_acquire));
}

// ---------------------------------------------------------------------
// TraceSession
// ---------------------------------------------------------------------

TraceSession::TraceSession()
{
    TraceConfig cfg;
    if (const char *env = std::getenv("SLIPSTREAM_TRACE"))
        cfg.mask = parseCategoryMask(env);
    if (const char *env = std::getenv("SLIPSTREAM_TRACE_DIR"))
        if (*env)
            cfg.dir = env;
    cfg.ringCapacity =
        size_t(envU64("SLIPSTREAM_TRACE_BUFFER", cfg.ringCapacity));
    configure(cfg);
}

TraceSession &
TraceSession::global()
{
    static TraceSession session;
    return session;
}

void
TraceSession::configure(const TraceConfig &config)
{
    std::lock_guard<std::mutex> lock(mu_);
    config_ = config;
    mask_.store(config.mask, std::memory_order_relaxed);
}

TraceConfig
TraceSession::config() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return config_;
}

namespace
{

/** Trial name → safe file stem ('/' and friends become '_'). */
std::string
sanitizeStem(const std::string &name)
{
    std::string out = name.empty() ? "trial" : name;
    for (char &c : out) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '-' || c == '_';
        if (!ok)
            c = '_';
    }
    return out;
}

} // namespace

std::string
TraceSession::writeTrial(const std::string &trial,
                         const std::vector<TraceEvent> &events,
                         uint64_t droppedOldest)
{
    const std::string dir = config().dir;
    const std::string path =
        dir + "/" + sanitizeStem(trial) + ".trace.json";
    try {
        if (!dir.empty())
            std::filesystem::create_directories(dir);
    } catch (const std::exception &e) {
        SLIP_WARN("cannot create trace directory '", dir,
                  "' for trial '", trial, "': ", e.what(),
                  "; trace not written");
        return "";
    }
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        SLIP_WARN("cannot open trace file '", path,
                  "' for writing; trace for trial '", trial,
                  "' not written");
        return "";
    }
    writeChromeTrace(out, trial, events, droppedOldest);
    out.flush();
    if (!out) {
        SLIP_WARN("write to trace file '", path,
                  "' failed; trace may be truncated");
        return "";
    }
    return path;
}

// ---------------------------------------------------------------------
// TrialTrace
// ---------------------------------------------------------------------

TrialTrace::TrialTrace(std::string name, bool writeFile)
    : name_(std::move(name)), writeFile_(writeFile)
{
    TraceSession &session = TraceSession::global();
    const uint32_t mask = session.mask();
    if (mask == 0)
        return; // inert scope: tracing is off

    ring_ = std::make_unique<EventRing>(session.config().ringCapacity);

    prevRing_ = tlsSink.ring;
    prevMask_ = tlsSink.mask;
    prevSeq_ = tlsSink.seq;
    prevCycle_ = tlsSink.cycle;

    tlsSink.ring = ring_.get();
    tlsSink.mask = mask;
    tlsSink.seq = 0;
    tlsSink.cycle = 0;

    emitEvent(Category::Trial, Name::TrialSpan, Phase::Begin,
              trialAttempt(), 0);
}

std::vector<TraceEvent>
TrialTrace::take()
{
    if (!ring_)
        return {};
    taken_ = true;
    std::vector<TraceEvent> events = ring_->drain();
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.cycle != b.cycle
                                    ? a.cycle < b.cycle
                                    : a.seq < b.seq;
                     });
    return events;
}

TrialTrace::~TrialTrace()
{
    if (!ring_)
        return;

    emitEvent(Category::Trial, Name::TrialSpan, Phase::End,
              trialAttempt(), 0);

    // Restore the outer sink before any I/O.
    tlsSink.ring = prevRing_;
    tlsSink.mask = prevMask_;
    tlsSink.seq = prevSeq_;
    tlsSink.cycle = prevCycle_;

    if (taken_ || !writeFile_)
        return;

    const uint64_t dropped = ring_->droppedOldest();
    std::vector<TraceEvent> events = ring_->drain();
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.cycle != b.cycle
                                    ? a.cycle < b.cycle
                                    : a.seq < b.seq;
                     });
    TraceSession::global().writeTrial(name_, events, dropped);
}

// ---------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------

void
emitEvent(Category category, Name name, Phase phase, uint64_t arg0,
          uint64_t arg1)
{
    emitEventAt(category, name, phase, tlsSink.cycle, arg0, arg1);
}

void
emitEventAt(Category category, Name name, Phase phase, uint64_t cycle,
            uint64_t arg0, uint64_t arg1)
{
    if (!tlsSink.ring)
        return;
    TraceEvent e;
    e.cycle = cycle;
    e.arg0 = arg0;
    e.arg1 = arg1;
    e.seq = tlsSink.seq++;
    e.name = name;
    e.category = uint8_t(categoryBit(category));
    e.phase = phase;
    tlsSink.ring->push(e);
}

void
setTrialAttempt(unsigned attempt)
{
    tlsTrialAttempt = attempt > 0 ? attempt : 1;
}

unsigned
trialAttempt()
{
    return tlsTrialAttempt;
}

// ---------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------

namespace
{

char
phaseChar(Phase phase)
{
    switch (phase) {
      case Phase::Begin:
        return 'B';
      case Phase::End:
        return 'E';
      case Phase::Instant:
        return 'i';
      case Phase::Counter:
        return 'C';
    }
    return 'i';
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += ' ';
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace

void
writeChromeTrace(std::ostream &os, const std::string &trial,
                 const std::vector<TraceEvent> &events,
                 uint64_t droppedOldest)
{
    // One category per Chrome "thread" so Perfetto renders one track
    // per instrumented layer. ts is the simulation cycle (Perfetto
    // displays it as microseconds; the unit label is cosmetic).
    os << "{\n\"otherData\": {\"trial\": \"" << jsonEscape(trial)
       << "\", \"clock\": \"sim_cycles\", \"event_count\": "
       << events.size() << ", \"dropped_oldest_events\": "
       << droppedOldest << "},\n";
    os << "\"traceEvents\": [\n";

    bool first = true;
    const auto comma = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"tid\": 0, \"args\": {\"name\": \""
       << jsonEscape(trial) << "\"}}";
    first = false;
    for (unsigned bit = 0; bit < kNumCategories; ++bit) {
        comma();
        os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
              "\"tid\": "
           << bit + 1 << ", \"args\": {\"name\": \""
           << categoryName(Category(1u << bit)) << "\"}}";
    }

    for (const TraceEvent &e : events) {
        comma();
        const Category cat = Category(1u << e.category);
        const char ph = phaseChar(e.phase);
        os << "{\"name\": \"" << eventNameString(e.name)
           << "\", \"cat\": \"" << categoryName(cat)
           << "\", \"ph\": \"" << ph << "\", \"ts\": " << e.cycle
           << ", \"pid\": 1, \"tid\": " << unsigned(e.category) + 1;
        if (e.phase == Phase::Counter) {
            os << ", \"args\": {\"value\": " << e.arg0 << "}";
        } else {
            if (e.phase == Phase::Instant)
                os << ", \"s\": \"t\"";
            os << ", \"args\": {\"a0\": " << e.arg0
               << ", \"a1\": " << e.arg1 << ", \"seq\": " << e.seq
               << "}";
        }
        os << "}";
    }

    // Footer: the overflow count rides in the event stream itself so
    // a consumer that only reads traceEvents still sees it.
    const uint64_t lastCycle =
        events.empty() ? 0 : events.back().cycle;
    comma();
    os << "{\"name\": \"trace_footer\", \"cat\": \"trial\", \"ph\": "
          "\"i\", \"s\": \"g\", \"ts\": "
       << lastCycle << ", \"pid\": 1, \"tid\": "
       << categoryBit(Category::Trial) + 1
       << ", \"args\": {\"dropped_oldest\": " << droppedOldest
       << ", \"events\": " << events.size() << "}}";

    os << "\n]\n}\n";
}

} // namespace slip::obs
