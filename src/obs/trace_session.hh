/**
 * @file
 * TraceSession: the runtime half of the observability subsystem.
 *
 * Design (low overhead first):
 *
 *  - Every simulation trial runs inside a TrialTrace scope on one
 *    worker thread. The scope owns a fixed-size single-producer ring
 *    of binary TraceEvents and installs itself as the thread's event
 *    sink; emission is an enabled-mask check (one thread-local load
 *    and branch — the *only* cost on a hot loop when tracing is off)
 *    plus a bounded ring write when it is on.
 *  - The ring never blocks the simulation: when full it drops the
 *    *oldest* event and counts the drop, and the count is reported in
 *    the exported trace footer — overflow is visible, never silent.
 *  - When the scope closes, the session drains the ring, sorts by
 *    (cycle, seq) — a per-trial total order that is byte-identical
 *    for any SLIPSTREAM_JOBS worker count, since a trial's events all
 *    come from its own thread — and writes one Chrome trace-event /
 *    Perfetto-loadable JSON file per trial under the session's
 *    directory (results/trace by default).
 *
 * Runtime knobs:
 *
 *    SLIPSTREAM_TRACE        category list ("all", "recovery,fault",
 *                            ...; empty/unset = tracing off)
 *    SLIPSTREAM_TRACE_DIR    output directory (default results/trace)
 *    SLIPSTREAM_TRACE_BUFFER ring capacity in events (default 262144)
 *
 * Benches additionally accept --trace[=categories] (bench_common.hh),
 * which overrides SLIPSTREAM_TRACE for that invocation.
 */

#ifndef SLIPSTREAM_OBS_TRACE_SESSION_HH
#define SLIPSTREAM_OBS_TRACE_SESSION_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace_event.hh"

namespace slip::obs
{

/** Session-wide configuration (one per process). */
struct TraceConfig
{
    uint32_t mask = 0; // enabled Category bits; 0 = tracing off
    std::string dir = "results/trace";
    // Events per trial ring: 32 B each, so the default is 8 MiB per
    // in-flight trial — enough for a test-size workload at full
    // fidelity. Longer runs either raise SLIPSTREAM_TRACE_BUFFER or
    // accept (loudly reported) drop-oldest truncation.
    size_t ringCapacity = 1 << 18;
};

/**
 * Fixed-size single-producer event ring with drop-oldest overflow.
 *
 * The producer is the simulation thread that owns the enclosing
 * TrialTrace; drain() runs at scope teardown (the trial has quiesced),
 * so push() never contends with it. Indices are monotonic atomics so
 * a diagnostic reader on another thread sees a consistent snapshot.
 */
class EventRing
{
  public:
    explicit EventRing(size_t capacity);

    /** Append; drops (and counts) the oldest event when full. */
    void push(const TraceEvent &event);

    /** Remove and return all buffered events, oldest first. */
    std::vector<TraceEvent> drain();

    size_t size() const;
    size_t capacity() const { return slots_.size(); }

    /** Events discarded to make room (reported in the footer). */
    uint64_t droppedOldest() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

  private:
    std::vector<TraceEvent> slots_; // power-of-two size
    std::atomic<uint64_t> head_{0}; // next write slot (monotonic)
    std::atomic<uint64_t> tail_{0}; // next read slot (monotonic)
    std::atomic<uint64_t> dropped_{0};
};

/** The process-wide session: configuration + trial-file output. */
class TraceSession
{
  public:
    /** The shared instance; first use reads the SLIPSTREAM_TRACE* env. */
    static TraceSession &global();

    void configure(const TraceConfig &config);
    TraceConfig config() const;

    uint32_t mask() const
    {
        return mask_.load(std::memory_order_relaxed);
    }
    bool enabled() const { return mask() != 0; }

    /**
     * Write one trial's events (already sorted) as a Chrome trace
     * JSON file named after the trial under the session directory.
     * Returns the path written, or "" on failure (which warns with
     * the path and reason — an unwritable directory is a clear error,
     * never a silent throw).
     */
    std::string writeTrial(const std::string &trial,
                           const std::vector<TraceEvent> &events,
                           uint64_t droppedOldest);

  private:
    TraceSession();

    mutable std::mutex mu_; // guards config_ (mask_ mirrors it)
    TraceConfig config_;
    std::atomic<uint32_t> mask_{0};
};

/**
 * RAII scope: "this thread is now running trial `name`". Inert (no
 * allocation, no TLS install) when the session has no category
 * enabled. On destruction the ring is drained, sorted by (cycle,
 * seq), and exported — unless take() already claimed the events.
 * Scopes nest; the inner scope shadows the outer until it closes.
 */
class TrialTrace
{
  public:
    /**
     * @param name   trial identity; becomes <dir>/<name>.trace.json
     *               ('/' and other non-filename characters become '_').
     * @param writeFile  false = collect only (tests, summaries).
     */
    explicit TrialTrace(std::string name, bool writeFile = true);
    ~TrialTrace();

    TrialTrace(const TrialTrace &) = delete;
    TrialTrace &operator=(const TrialTrace &) = delete;

    /** Whether this scope is live (session enabled at construction). */
    bool active() const { return ring_ != nullptr; }

    /** Drain now and suppress the file write; sorted by (cycle, seq). */
    std::vector<TraceEvent> take();

    uint64_t droppedOldest() const
    {
        return ring_ ? ring_->droppedOldest() : 0;
    }

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    bool writeFile_;
    bool taken_ = false;
    std::unique_ptr<EventRing> ring_;

    // Saved outer-sink state, restored on destruction.
    EventRing *prevRing_ = nullptr;
    uint32_t prevMask_ = 0;
    uint32_t prevSeq_ = 0;
    uint64_t prevCycle_ = 0;
};

// ---------------------------------------------------------------------
// Thread-local emission state (the macro targets in trace_event.hh).
// ---------------------------------------------------------------------

/** Per-thread sink; mask == 0 whenever no live scope is installed. */
struct ThreadSink
{
    uint32_t mask = 0;
    uint32_t seq = 0;
    uint64_t cycle = 0;
    EventRing *ring = nullptr;
};

extern thread_local ThreadSink tlsSink;

inline bool
categoryActive(Category category)
{
    return (tlsSink.mask & static_cast<uint32_t>(category)) != 0;
}

inline void
setCurrentCycle(uint64_t cycle)
{
    tlsSink.cycle = cycle;
}

/** Emit at the thread's current cycle. Caller checked categoryActive. */
void emitEvent(Category category, Name name, Phase phase,
               uint64_t arg0, uint64_t arg1);

/** Emit at an explicit cycle. Caller checked categoryActive. */
void emitEventAt(Category category, Name name, Phase phase,
                 uint64_t cycle, uint64_t arg0, uint64_t arg1);

/**
 * Supervised-retry plumbing: the trial supervisor stamps the attempt
 * number (1-based) on the worker thread before invoking the job, so
 * the TrialTrace the job opens can record which attempt it is (the
 * TrialSpan begin event's arg0; attempts > 1 also emit a TrialRetry-
 * visible arg without the harness knowing trial names).
 */
void setTrialAttempt(unsigned attempt);
unsigned trialAttempt();

/**
 * Serialize events as the Chrome trace-event JSON object format
 * (loads in Perfetto UI and chrome://tracing). One category per
 * thread track; the footer instant event and otherData both carry
 * the dropped-oldest count so ring overflow is never silent.
 */
void writeChromeTrace(std::ostream &os, const std::string &trial,
                      const std::vector<TraceEvent> &events,
                      uint64_t droppedOldest);

} // namespace slip::obs

#endif // SLIPSTREAM_OBS_TRACE_SESSION_HH
