#include "fuzz/minimize.hh"

#include <utility>
#include <vector>

namespace slip::fuzz
{

namespace
{

/** Index ranges of candidate removals: loop spans, then statements. */
std::vector<std::pair<size_t, size_t>>
candidates(const GeneratedProgram &program)
{
    std::vector<std::pair<size_t, size_t>> out;
    // Loop spans (inner loops nest inside outer spans; trying the
    // outer span first removes the most at once).
    for (size_t i = 0; i < program.units.size(); ++i) {
        if (program.units[i].kind != ProgramUnit::Kind::LoopBegin)
            continue;
        for (size_t j = i + 1; j < program.units.size(); ++j) {
            if (program.units[j].kind == ProgramUnit::Kind::LoopEnd &&
                program.units[j].loopId == program.units[i].loopId) {
                out.emplace_back(i, j);
                break;
            }
        }
    }
    for (size_t i = 0; i < program.units.size(); ++i) {
        if (program.units[i].kind == ProgramUnit::Kind::Stmt)
            out.emplace_back(i, i);
    }
    return out;
}

} // namespace

MinimizeResult
minimize(const GeneratedProgram &program,
         const std::function<bool(const std::string &)> &stillDiverges,
         unsigned maxAttempts)
{
    const auto ranges = candidates(program);
    std::vector<bool> keep(program.units.size(), true);
    MinimizeResult result;

    bool removedAny = true;
    while (removedAny && result.attempts < maxAttempts) {
        removedAny = false;
        for (const auto &[lo, hi] : ranges) {
            if (result.attempts >= maxAttempts)
                break;
            // Skip ranges already gone (e.g. inside a removed span).
            bool live = false;
            for (size_t i = lo; i <= hi; ++i)
                live = live || keep[i];
            if (!live)
                continue;

            std::vector<bool> trial = keep;
            for (size_t i = lo; i <= hi; ++i)
                trial[i] = false;
            ++result.attempts;
            if (stillDiverges(program.render(trial))) {
                keep = std::move(trial);
                removedAny = true;
            }
        }
    }

    for (size_t i = 0; i < program.units.size(); ++i) {
        if (program.units[i].kind == ProgramUnit::Kind::Fixed)
            continue;
        if (keep[i])
            ++result.unitsKept;
        else
            ++result.unitsRemoved;
    }
    result.source = program.render(keep);
    return result;
}

} // namespace slip::fuzz
