#include "fuzz/generator.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/random.hh"

namespace slip::fuzz
{

namespace
{

/**
 * Rng stream id for program generation. Every fuzz subsystem draws on
 * its own stream so equal seeds across subsystems stay uncorrelated.
 */
constexpr uint64_t kGeneratorStream = 0x67656e2d70726f67ull; // "gen-prog"

/** Loop counters live in s0..s7; s18/s19 are the epilogue's. */
constexpr int kMaxTotalLoops = 8;

/** Builds the unit list for one program. */
class Builder
{
  public:
    Builder(uint64_t seed, const GeneratorConfig &config)
        : rng(seed, kGeneratorStream), cfg(config),
          arenaMask(config.arenaWords - 1)
    {
        SLIP_ASSERT((config.arenaWords & (config.arenaWords - 1)) == 0 &&
                        config.arenaWords != 0,
                    "arenaWords must be a nonzero power of two");
        SLIP_ASSERT(config.scratchRegs >= 2 && config.scratchRegs <= 10,
                    "scratchRegs out of [2, 10]");
    }

    std::vector<ProgramUnit>
    build()
    {
        prologue();
        const unsigned loops =
            cfg.minLoops + rng.below(cfg.maxLoops - cfg.minLoops + 1);
        for (unsigned l = 0; l < loops; ++l)
            emitLoop(0);
        epilogue();
        return std::move(units);
    }

  private:
    std::string
    scratch()
    {
        std::string r = "t";
        r += std::to_string(rng.below(cfg.scratchRegs));
        return r;
    }

    void
    fixed(const std::string &text)
    {
        units.push_back({ProgramUnit::Kind::Fixed, -1, text});
    }

    void
    stmt(const std::string &text)
    {
        units.push_back({ProgramUnit::Kind::Stmt, -1, text});
    }

    std::string
    label(const char *stem)
    {
        return stem + std::to_string(nextLabel++);
    }

    void
    prologue()
    {
        std::ostringstream os;
        os << ".data\n"
           << "arena: .space " << cfg.arenaWords * 8 << "\n"
           << ".text\n"
           << "main:\n"
           << "    la   s19, arena\n";
        for (unsigned i = 0; i < cfg.scratchRegs; ++i)
            os << "    li   t" << i << ", " << rng.below(4096) << "\n";
        // Seed a few arena words so first loads are not all zero.
        for (unsigned i = 0; i < 4 && i < cfg.arenaWords; ++i) {
            os << "    li   k1, " << rng.below(100000) << "\n"
               << "    sd   k1, " << i * 8 << "(s19)\n";
        }
        fixed(os.str());
    }

    /** Random arena address into k0 (always in bounds). */
    std::string
    arenaAddr()
    {
        std::ostringstream os;
        os << "    andi k0, " << scratch() << ", " << arenaMask << "\n"
           << "    slli k0, k0, 3\n"
           << "    add  k0, k0, s19\n";
        return os.str();
    }

    std::string
    aluStmt()
    {
        static const char *ops[] = {"add ", "sub ", "xor ", "and ",
                                    "or  ", "mul "};
        std::ostringstream os;
        if (rng.chance(0.35)) {
            os << "    addi " << scratch() << ", " << scratch() << ", "
               << rng.range(-64, 64) << "\n";
        } else {
            os << "    " << ops[rng.below(6)] << " " << scratch()
               << ", " << scratch() << ", " << scratch() << "\n";
        }
        return os.str();
    }

    std::string
    loadStmt()
    {
        return arenaAddr() + "    ld   " + scratch() + ", 0(k0)\n";
    }

    std::string
    storeStmt()
    {
        return arenaAddr() + "    sd   " + scratch() + ", 0(k0)\n";
    }

    /** Forward branch whose direction depends on evolving data. */
    std::string
    unpredictableStmt()
    {
        std::ostringstream os;
        if (rng.chance(0.5)) {
            // if/else diamond (exercises J-format jumps).
            const std::string els = label("els");
            const std::string end = label("end");
            os << "    andi k2, " << scratch() << ", "
               << (1 + rng.below(3)) << "\n"
               << "    beqz k2, " << els << "\n"
               << "    addi " << scratch() << ", " << scratch() << ", "
               << rng.range(-8, 8) << "\n"
               << "    j    " << end << "\n"
               << els << ":\n"
               << "    xor  " << scratch() << ", " << scratch() << ", "
               << scratch() << "\n"
               << end << ":\n";
        } else {
            const std::string sk = label("sk");
            os << "    andi k2, " << scratch() << ", "
               << (1 + rng.below(7)) << "\n"
               << "    bnez k2, " << sk << "\n"
               << "    addi " << scratch() << ", " << scratch() << ", "
               << (1 + rng.below(16)) << "\n"
               << sk << ":\n";
        }
        return os.str();
    }

    /** Forward branch whose direction is statically known. */
    std::string
    predictableStmt()
    {
        std::ostringstream os;
        const std::string sk = label("sk");
        if (rng.chance(0.5)) {
            // Always taken: the guarded instruction is dead code.
            os << "    beqz zero, " << sk << "\n"
               << "    addi " << scratch() << ", " << scratch()
               << ", 1\n"
               << sk << ":\n";
        } else {
            // Never taken: pure fall-through.
            os << "    bnez zero, " << sk << "\n"
               << "    addi " << scratch() << ", " << scratch() << ", "
               << rng.range(-4, 4) << "\n"
               << sk << ":\n";
        }
        return os.str();
    }

    /** IR-detector fodder: redundant writes and dead code. */
    std::string
    redundantStmt()
    {
        std::ostringstream os;
        switch (rng.below(4)) {
          case 0: { // same-value register write, repeated
            const std::string v = std::to_string(rng.below(16));
            os << "    li   k3, " << v << "\n"
               << "    li   k3, " << v << "\n";
            break;
          }
          case 1: // dead write: k4 is never read anywhere
            os << "    addi k4, " << scratch() << ", "
               << rng.below(32) << "\n";
            break;
          case 2: { // double store of the same value to one slot
            const std::string store =
                "    sd   " + scratch() + ", 0(k0)\n";
            os << arenaAddr() << store << store;
            break;
          }
          default: // silent store: load a word, store it back
            os << arenaAddr()
               << "    ld   k1, 0(k0)\n"
               << "    sd   k1, 0(k0)\n";
            break;
        }
        return os.str();
    }

    std::string
    outputStmt()
    {
        return "    putn " + scratch() + "\n";
    }

    std::string
    bodyStmt()
    {
        if (rng.chance(cfg.unpredictableChance))
            return unpredictableStmt();
        if (rng.chance(cfg.predictableChance))
            return predictableStmt();
        if (rng.chance(cfg.redundantChance))
            return redundantStmt();
        if (rng.chance(cfg.outputChance))
            return outputStmt();
        switch (rng.below(4)) {
          case 0:
            return loadStmt();
          case 1:
            return storeStmt();
          default:
            return aluStmt();
        }
    }

    void
    emitLoop(int depth)
    {
        if (loopCount >= kMaxTotalLoops)
            return;
        const int id = loopCount++;
        std::string ctr = "s";
        ctr += std::to_string(id);
        std::string head = "loop";
        head += std::to_string(id);
        // Inner loops get short trip counts to bound dynamic length.
        const unsigned span = cfg.maxIters - cfg.minIters + 1;
        const unsigned iters =
            depth == 0 ? cfg.minIters + rng.below(span)
                       : 2 + rng.below(6);

        std::ostringstream begin;
        begin << "    li   " << ctr << ", " << iters << "\n"
              << head << ":\n";
        units.push_back(
            {ProgramUnit::Kind::LoopBegin, id, begin.str()});

        const unsigned stmts =
            cfg.minStmts + rng.below(cfg.maxStmts - cfg.minStmts + 1);
        const unsigned nestAt =
            depth == 0 && rng.chance(cfg.nestedLoopChance)
                ? rng.below(stmts)
                : stmts;
        for (unsigned i = 0; i < stmts; ++i) {
            if (i == nestAt)
                emitLoop(depth + 1);
            stmt(bodyStmt());
        }

        std::ostringstream end;
        end << "    addi " << ctr << ", " << ctr << ", -1\n"
            << "    bnez " << ctr << ", " << head << "\n";
        units.push_back({ProgramUnit::Kind::LoopEnd, id, end.str()});
    }

    void
    epilogue()
    {
        std::ostringstream os;
        os << "    li   a0, 0\n";
        for (unsigned i = 0; i < cfg.scratchRegs; ++i)
            os << "    add  a0, a0, t" << i << "\n";
        os << "    li   s18, 0\n"
           << "cksum:\n"
           << "    slli k0, s18, 3\n"
           << "    add  k0, k0, s19\n"
           << "    ld   k1, 0(k0)\n"
           << "    add  a0, a0, k1\n"
           << "    addi s18, s18, 1\n"
           << "    li   k2, " << cfg.arenaWords << "\n"
           << "    blt  s18, k2, cksum\n"
           << "    putn a0\n"
           << "    halt\n";
        fixed(os.str());
    }

    Rng rng;
    const GeneratorConfig &cfg;
    unsigned arenaMask;
    std::vector<ProgramUnit> units;
    int loopCount = 0;
    unsigned nextLabel = 0;
};

} // namespace

std::string
GeneratorConfig::summary() const
{
    std::ostringstream os;
    os << "arena_words=" << arenaWords << " scratch_regs=" << scratchRegs
       << " loops=" << minLoops << ".." << maxLoops
       << " iters=" << minIters << ".." << maxIters
       << " stmts=" << minStmts << ".." << maxStmts
       << " nested=" << nestedLoopChance
       << " unpredictable=" << unpredictableChance
       << " predictable=" << predictableChance
       << " redundant=" << redundantChance
       << " output=" << outputChance;
    return os.str();
}

std::string
GeneratedProgram::render() const
{
    std::string out;
    for (const ProgramUnit &u : units)
        out += u.text;
    return out;
}

std::string
GeneratedProgram::render(const std::vector<bool> &keep) const
{
    SLIP_ASSERT(keep.size() == units.size(),
                "keep mask size ", keep.size(), " != unit count ",
                units.size());
    std::string out;
    for (size_t i = 0; i < units.size(); ++i) {
        if (units[i].kind == ProgramUnit::Kind::Fixed || keep[i])
            out += units[i].text;
    }
    return out;
}

size_t
GeneratedProgram::removableCount() const
{
    size_t n = 0;
    for (const ProgramUnit &u : units)
        n += u.kind != ProgramUnit::Kind::Fixed;
    return n;
}

GeneratedProgram
generate(uint64_t seed, const GeneratorConfig &config)
{
    GeneratedProgram prog;
    prog.seed = seed;
    prog.config = config;
    prog.units = Builder(seed, config).build();
    return prog;
}

} // namespace slip::fuzz
