#include "fuzz/repro.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "isa/disasm.hh"

namespace slip::fuzz
{

namespace
{

void
writeFile(const std::filesystem::path &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out)
        SLIP_FATAL("cannot write repro file ", path.string());
    out << content;
    if (!out.good())
        SLIP_FATAL("short write to repro file ", path.string());
}

/** Disassemble an assembled program, one labeled line per word. */
std::string
disassembly(const std::string &source)
{
    std::ostringstream os;
    try {
        const Program p = assemble(source);
        for (Addr pc = p.textBase(); pc < p.textEnd();
             pc += kInstBytes) {
            os << "0x" << std::hex << pc << std::dec << ":  "
               << disassemble(p.fetch(pc), pc) << "\n";
        }
    } catch (const std::exception &e) {
        os << "(disassembly unavailable: " << e.what() << ")\n";
    }
    return os.str();
}

} // namespace

std::string
describeFaults(const std::vector<FaultPlan> &faults)
{
    std::ostringstream os;
    for (size_t i = 0; i < faults.size(); ++i) {
        if (i)
            os << "; ";
        os << "target=" << faultTargetName(faults[i].target)
           << " index=" << faults[i].dynIndex
           << " bit=" << faults[i].bit;
        if (faults[i].target == FaultTarget::ARegister)
            os << " reg=" << unsigned(faults[i].reg);
    }
    return os.str();
}

std::string
writeReproBundle(const std::string &outDir, const ReproSpec &spec)
{
    namespace fs = std::filesystem;
    const std::string name = !spec.bundleName.empty()
                                 ? spec.bundleName
                                 : "seed_" + std::to_string(spec.seed);
    const fs::path dir = fs::path(outDir) / name;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        SLIP_FATAL("cannot create repro bundle directory ",
                   dir.string(), ": ", ec.message());

    const bool shrunk = spec.minimizedSource != spec.originalSource;

    const std::string title = !spec.title.empty()
                                  ? spec.title
                                  : "SSIR differential-fuzz divergence";
    std::ostringstream readme;
    readme << title << "\n"
           << std::string(title.size(), '=') << "\n\n"
           << "seed:       " << spec.seed << "\n"
           << "generator:  " << spec.configSummary << "\n";
    if (!spec.faults.empty())
        readme << "faults:     " << describeFaults(spec.faults) << "\n";
    if (shrunk) {
        readme << "minimized:  removed " << spec.unitsRemoved
               << " units in " << spec.minimizeAttempts
               << " oracle evaluations\n";
    }
    readme << "\nreplay:\n"
           << "  "
           << (!spec.replayCommand.empty()
                   ? spec.replayCommand
                   : "tools/ssir_fuzz --replay " +
                         (dir / "program.s").string())
           << "\n\nfiles:\n"
           << "  program.s       minimized reproducer\n";
    if (shrunk)
        readme << "  program_full.s  original generated program\n";
    readme << "  disasm.txt      disassembly of program.s\n"
           << "  report.txt      the divergence report\n";

    writeFile(dir / "README.txt", readme.str());
    writeFile(dir / "program.s", spec.minimizedSource);
    if (shrunk)
        writeFile(dir / "program_full.s", spec.originalSource);
    writeFile(dir / "disasm.txt", disassembly(spec.minimizedSource));
    writeFile(dir / "report.txt", spec.report + "\n");
    return dir.string();
}

} // namespace slip::fuzz
