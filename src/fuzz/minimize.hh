/**
 * @file
 * Greedy test-case minimization for divergent generated programs.
 *
 * Works on the generator's unit list, never on raw text: candidates
 * are whole loop spans (LoopBegin..LoopEnd inclusive, so back-edge
 * labels never dangle) first, then individual statement units. A
 * removal is kept if and only if the re-rendered program still
 * assembles and the caller's predicate still reports a divergence;
 * passes repeat until a full pass removes nothing (or the attempt
 * budget runs out).
 */

#ifndef SLIPSTREAM_FUZZ_MINIMIZE_HH
#define SLIPSTREAM_FUZZ_MINIMIZE_HH

#include <functional>
#include <string>

#include "fuzz/generator.hh"

namespace slip::fuzz
{

struct MinimizeResult
{
    std::string source;       // minimized program text
    size_t unitsRemoved = 0;  // removable units dropped
    size_t unitsKept = 0;     // removable units remaining
    unsigned attempts = 0;    // predicate evaluations spent
};

/**
 * Shrink `program` while `stillDiverges(source)` holds. The predicate
 * receives a complete candidate source and must return true when the
 * divergence reproduces on it (it should return false, not throw, on
 * candidates it cannot evaluate).
 */
MinimizeResult
minimize(const GeneratedProgram &program,
         const std::function<bool(const std::string &)> &stillDiverges,
         unsigned maxAttempts = 400);

} // namespace slip::fuzz

#endif // SLIPSTREAM_FUZZ_MINIMIZE_HH
