#include "fuzz/oracle.hh"

#include <array>
#include <sstream>

#include "common/invariant.hh"
#include "common/logging.hh"
#include "func/func_sim.hh"
#include "isa/regnames.hh"

namespace slip::fuzz
{

namespace
{

std::string
hex(uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

std::string
describe(const StoreEvent &e)
{
    return "pc=" + hex(e.pc) + " addr=" + hex(e.addr) + " bytes=" +
           std::to_string(e.bytes) + " value=" + hex(e.value);
}

/** First ~6 lines of a byte diff between two output strings. */
std::string
diffOutput(const std::string &golden, const std::string &got)
{
    size_t i = 0;
    while (i < golden.size() && i < got.size() && golden[i] == got[i])
        ++i;
    std::ostringstream os;
    os << "first difference at byte " << i << "\n"
       << "  golden: "
       << golden.substr(i > 8 ? i - 8 : 0, 48) << "\n"
       << "  leg:    " << got.substr(i > 8 ? i - 8 : 0, 48) << "\n"
       << "  sizes " << golden.size() << " vs " << got.size();
    return os.str();
}

struct Golden
{
    FuncRunResult run;
    std::vector<StoreEvent> stores;
    std::array<Word, kNumRegs> regs{};
};

/** Everything one timing leg produced. */
struct Leg
{
    std::string error; // exception text; empty = ran to the end
    bool completed = false;
    SlipstreamRunResult result;
    std::vector<StoreEvent> stores;
};

Leg
runLeg(SlipstreamProcessor &proc, const std::vector<FaultPlan> &faults,
       Cycle maxCycles)
{
    Leg leg;
    proc.onArchRetire = [&leg](const DynInst &d, Cycle) {
        if (d.si.isStore()) {
            leg.stores.push_back({d.pc, d.exec.memAddr,
                                  d.exec.memBytes, d.exec.storeValue});
        }
    };
    if (!faults.empty())
        proc.faultInjector().arm(faults);
    try {
        leg.result = proc.run(maxCycles);
        leg.completed = leg.result.halted;
    } catch (const InvariantViolation &e) {
        leg.error = std::string("invariant violation: ") + e.what();
    } catch (const std::exception &e) {
        leg.error = e.what();
    }
    return leg;
}

/**
 * Diff one timing leg against the functional reference. `exact` is
 * false for the degraded leg: the forced transition discards
 * walked-but-unretired R work whose architectural effects already
 * landed, so its retirement count may legitimately fall short of the
 * dynamic instruction count and its retired-store stream may miss a
 * contiguous chunk around the transition. Output, final registers,
 * and final memory remain exact in every mode.
 */
std::string
compareLeg(const char *name, const Golden &golden, Leg &leg,
           SlipstreamProcessor &proc, FuncSim &func, bool exact)
{
    std::ostringstream os;
    os << "[" << name << "] ";

    if (!leg.error.empty()) {
        os << leg.error;
        return os.str();
    }
    if (!leg.completed) {
        os << "did not complete: "
           << (leg.result.hung ? "hung (watchdog gave up or cycle "
                                 "budget exhausted)"
                               : "cancelled")
           << " after " << leg.result.cycles << " cycles, "
           << leg.result.rRetired << " retired";
        return os.str();
    }
    if (leg.result.output != golden.run.output) {
        os << "output mismatch: "
           << diffOutput(golden.run.output, leg.result.output);
        return os.str();
    }
    if (exact && leg.result.rRetired != golden.run.instCount) {
        os << "retired " << leg.result.rRetired << " instructions, "
           << "functional reference retired " << golden.run.instCount;
        return os.str();
    }
    if (!exact && leg.result.rRetired > golden.run.instCount) {
        os << "retired " << leg.result.rRetired
           << " instructions, more than the functional reference's "
           << golden.run.instCount;
        return os.str();
    }

    if (exact) {
        if (leg.stores.size() != golden.stores.size()) {
            os << "retired-store stream length " << leg.stores.size()
               << " != golden " << golden.stores.size();
            return os.str();
        }
        for (size_t i = 0; i < golden.stores.size(); ++i) {
            if (!(leg.stores[i] == golden.stores[i])) {
                os << "retired-store stream diverges at store " << i
                   << ":\n  golden: " << describe(golden.stores[i])
                   << "\n  leg:    " << describe(leg.stores[i]);
                return os.str();
            }
        }
    }

    const ArchState &state = proc.archState();
    for (RegIndex r = 0; r < kNumRegs; ++r) {
        if (state.readReg(r) != golden.regs[r]) {
            os << "final register file diverges at " << regName(r)
               << ": golden " << hex(golden.regs[r]) << ", leg "
               << hex(state.readReg(r));
            return os.str();
        }
    }

    if (!func.memory().equals(proc.rMemory())) {
        os << "final memory image differs from the functional "
              "reference";
        return os.str();
    }
    return "";
}

} // namespace

OracleVerdict
runOracle(const Program &program, const OracleOptions &options)
{
    OracleVerdict verdict;

    // Leg 1: the functional reference, observing every retired store.
    FuncSim func(program);
    Golden golden;
    golden.run = func.runWithStoreObserver(
        [&golden](Addr pc, Addr addr, unsigned bytes, Word value) {
            golden.stores.push_back({pc, addr, bytes, value});
        },
        options.maxInsts);
    if (!golden.run.halted) {
        verdict.diverged = true;
        verdict.report = "[functional] did not halt within " +
                         std::to_string(options.maxInsts) +
                         " instructions (non-terminating program?)";
        return verdict;
    }
    for (RegIndex r = 0; r < kNumRegs; ++r)
        golden.regs[r] = func.state().readReg(r);

    const invariants::Scope scope(options.invariants);

    // Leg 2: the full slipstream dual-core.
    {
        SlipstreamProcessor proc(program, options.params);
        Leg leg = runLeg(proc, options.faults, options.maxCycles);
        verdict.report = compareLeg("slipstream", golden, leg, proc,
                                    func, /*exact=*/true);
        if (!verdict.report.empty()) {
            verdict.diverged = true;
            return verdict;
        }
    }

    // Leg 3: degraded R-only, forced mid-run.
    {
        SlipstreamParams params = options.params;
        params.degrade.enabled = true;
        params.degrade.forceAtCycle = options.degradeAtCycle;
        SlipstreamProcessor proc(program, params);
        // The demo faults target the slipstream leg; the degraded leg
        // runs clean so a divergence here always means the
        // degradation path itself broke architectural state.
        Leg leg = runLeg(proc, {}, options.maxCycles);
        verdict.report = compareLeg("r_only_degraded", golden, leg,
                                    proc, func, /*exact=*/false);
        if (!verdict.report.empty()) {
            verdict.diverged = true;
            return verdict;
        }
    }

    return verdict;
}

} // namespace slip::fuzz
