#include "fuzz/fuzzer.hh"

#include <algorithm>
#include <chrono>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "fuzz/minimize.hh"
#include "fuzz/repro.hh"
#include "harness/sim_runner.hh"
#include "harness/wire.hh"

namespace slip::fuzz
{

namespace
{

/** Run one seed end to end (executes on a pool worker). */
FuzzCase
runSeed(uint64_t seed, const FuzzOptions &opt)
{
    FuzzCase c;
    c.seed = seed;
    GeneratedProgram gp;
    std::string source;
    try {
        gp = generate(seed, opt.gen);
        source = gp.render();
        const Program program = assemble(source);
        const OracleVerdict v = runOracle(program, opt.oracle);
        if (!v.diverged)
            return c;
        c.diverged = true;
        c.report = v.report;
    } catch (const std::exception &e) {
        c.error = e.what();
        return c;
    }

    // Divergence: minimize greedily, then bundle. Failures past this
    // point must not lose the finding, so they degrade the bundle
    // rather than abort the case.
    std::string minimized = source;
    MinimizeResult mr;
    if (opt.minimizeDivergences) {
        mr = minimize(
            gp,
            [&opt](const std::string &candidate) {
                try {
                    return runOracle(assemble(candidate), opt.oracle)
                        .diverged;
                } catch (const std::exception &) {
                    // A candidate that breaks assembly (or the
                    // harness) is not a reproducer.
                    return false;
                }
            },
            opt.minimizeAttempts);
        minimized = mr.source;
        try {
            // Re-derive the report from the minimized program so the
            // bundle's report matches the bundle's program.s.
            const OracleVerdict v =
                runOracle(assemble(minimized), opt.oracle);
            if (v.diverged)
                c.report = v.report;
        } catch (const std::exception &) {
        }
    }

    if (!opt.bundleDir.empty()) {
        try {
            ReproSpec spec;
            spec.seed = seed;
            spec.configSummary = opt.gen.summary();
            spec.report = c.report;
            spec.originalSource = source;
            spec.minimizedSource = minimized;
            spec.faults = opt.oracle.faults;
            spec.unitsRemoved = mr.unitsRemoved;
            spec.minimizeAttempts = mr.attempts;
            c.bundlePath = writeReproBundle(opt.bundleDir, spec);
        } catch (const std::exception &e) {
            c.error = std::string("bundle write failed: ") + e.what();
        }
    }
    return c;
}

/** FuzzCase over the worker-pool wire (fork isolation). */
void
encodeFuzzCase(wire::Encoder &enc, const FuzzCase &c)
{
    enc.putU64(c.seed);
    enc.putBool(c.diverged);
    enc.putString(c.report);
    enc.putString(c.bundlePath);
    enc.putString(c.error);
}

FuzzCase
decodeFuzzCase(wire::Decoder &dec)
{
    FuzzCase c;
    c.seed = dec.getU64();
    c.diverged = dec.getBool();
    c.report = dec.getString();
    c.bundlePath = dec.getString();
    c.error = dec.getString();
    return c;
}

/**
 * A sandboxed worker died on this seed: the crash *is* the finding.
 * The worker cannot write its own bundle (its handler may only
 * write(2) a CrashNote), so the supervisor regenerates the program
 * from the seed — generation is deterministic — and bundles it here.
 */
FuzzCase
crashCase(uint64_t seed, const FuzzOptions &opt,
          const IsolatedOutcome &iso)
{
    FuzzCase c;
    c.seed = seed;
    char scratch[32];
    std::string how;
    if (iso.status == IsolatedOutcome::Status::TimedOut) {
        how = "sandboxed worker exceeded the trial deadline "
              "(SIGKILLed)";
    } else if (iso.signal) {
        how = std::string("sandboxed worker killed by ") +
              crashSignalName(iso.signal, scratch, sizeof(scratch));
    } else {
        how = "sandboxed worker exited with code " +
              std::to_string(iso.exitCode);
    }
    c.error = how + " (phase " + trialPhaseName(iso.phase) + ")";

    if (opt.bundleDir.empty() ||
        iso.status != IsolatedOutcome::Status::Crashed)
        return c;
    try {
        ReproSpec spec;
        spec.seed = seed;
        spec.title = "SSIR fuzz worker crash";
        spec.configSummary = opt.gen.summary();
        spec.report = c.error;
        spec.originalSource = generate(seed, opt.gen).render();
        spec.minimizedSource = spec.originalSource;
        spec.faults = opt.oracle.faults;
        c.bundlePath = writeReproBundle(opt.bundleDir, spec);
    } catch (const std::exception &e) {
        SLIP_WARN("failed to bundle crashed fuzz seed ", seed, ": ",
                  e.what());
    }
    return c;
}

} // namespace

FuzzSummary
runFuzz(const FuzzOptions &options)
{
    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();
    const auto elapsedMs = [&start] {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - start)
                .count());
    };

    FuzzSummary summary;
    uint64_t next = options.seedBegin;
    while (next < options.seedEnd) {
        if (options.budgetMs != 0 && elapsedMs() >= options.budgetMs) {
            summary.budgetExhausted = true;
            break;
        }

        SimJobRunner runner(options.jobs);
        const uint64_t batch =
            std::min<uint64_t>(options.seedEnd - next,
                               std::max(16u, runner.jobs() * 4));
        std::vector<FuzzCase> cases(batch);

        if (options.isolation == IsolationMode::Fork) {
            // Sandboxed: each seed runs in a worker process. The case
            // crosses back serialized (the in-process path's
            // write-into-cases[i] side effect would die with the
            // child); divergence bundles are written by the child
            // (filesystem effects survive fork), crash bundles by the
            // supervisor.
            WorkerPoolOptions po;
            po.workers = runner.jobs();
            po.timeoutMs = runner.supervision().timeoutMs;
            WorkerPool pool(po);
            pool.run(
                batch,
                [&](size_t i, unsigned) {
                    wire::Encoder enc;
                    encodeFuzzCase(enc,
                                   runSeed(next + i, options));
                    return enc.bytes();
                },
                [&](size_t i, const IsolatedOutcome &iso) {
                    if (iso.ok()) {
                        wire::Decoder dec(iso.payload);
                        cases[i] = decodeFuzzCase(dec);
                        return;
                    }
                    if (iso.status == IsolatedOutcome::Status::Crashed)
                        ++summary.workerCrashes;
                    cases[i] = crashCase(next + i, options, iso);
                });
        } else {
            for (uint64_t i = 0; i < batch; ++i) {
                const uint64_t seed = next + i;
                runner.add([&cases, i, seed, &options] {
                    cases[i] = runSeed(seed, options);
                    RunMetrics m;
                    m.model = "fuzz";
                    m.outputCorrect = !cases[i].diverged;
                    return m;
                });
            }
            const std::vector<JobOutcome> outcomes =
                runner.runSupervised();
            for (uint64_t i = 0; i < batch; ++i) {
                FuzzCase &c = cases[i];
                if (!outcomes[i].ok() && c.error.empty() &&
                    !c.diverged) {
                    // The supervisor reaped the job (deadline) or it
                    // threw outside runSeed's own handling.
                    c.seed = next + i;
                    c.error =
                        outcomes[i].errorMessage.empty()
                            ? std::string("job ") +
                                  jobStatusName(outcomes[i].status)
                            : outcomes[i].errorMessage;
                }
            }
        }

        for (uint64_t i = 0; i < batch; ++i) {
            FuzzCase &c = cases[i];
            ++summary.seedsRun;
            const bool diverged = c.diverged;
            if (c.diverged)
                ++summary.divergences;
            if (!c.error.empty())
                ++summary.errors;
            if (c.diverged || !c.error.empty())
                summary.findings.push_back(std::move(c));
            if (options.onSeed)
                options.onSeed(next + i, diverged);
        }
        next += batch;
    }
    return summary;
}

} // namespace slip::fuzz
