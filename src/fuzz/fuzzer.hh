/**
 * @file
 * The differential-fuzz campaign driver: generates one program per
 * seed, runs the three-way oracle on each, and — on divergence —
 * greedily minimizes the program and writes a self-contained repro
 * bundle. Seeds execute in parallel on the existing supervised
 * SimJobRunner pool; results are collected in seed order, so a
 * campaign's summary, reports, and bundles are byte-identical
 * whatever $SLIPSTREAM_JOBS says.
 */

#ifndef SLIPSTREAM_FUZZ_FUZZER_HH
#define SLIPSTREAM_FUZZ_FUZZER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/generator.hh"
#include "fuzz/oracle.hh"
#include "harness/worker_pool.hh"

namespace slip::fuzz
{

/** Campaign configuration. */
struct FuzzOptions
{
    uint64_t seedBegin = 0; // [seedBegin, seedEnd)
    uint64_t seedEnd = 100;

    /** Worker threads; 0 = defaultJobs() ($SLIPSTREAM_JOBS). */
    unsigned jobs = 0;

    /**
     * Wall-clock budget in ms; 0 = none. Checked between batches:
     * once exceeded, no further seeds start (running ones finish).
     */
    uint64_t budgetMs = 0;

    bool minimizeDivergences = true;
    unsigned minimizeAttempts = 400;

    /** Where repro bundles land; empty disables bundle writing. */
    std::string bundleDir = "fuzz-repros";

    /**
     * Sandboxing for the oracle legs. Defaults to
     * $SLIPSTREAM_ISOLATION; under fork isolation a generated program
     * that hard-crashes the simulator (wild store, stack smash,
     * sanitizer abort) costs one seed — reported as a finding with a
     * crash bundle — instead of killing the whole campaign. This is
     * what lets the nightly ASan fuzzer survive the crashes it
     * exists to find.
     */
    IsolationMode isolation = isolationFromEnv();

    GeneratorConfig gen;
    OracleOptions oracle;

    /**
     * Progress hook, called once per finished seed in seed order from
     * the collecting thread (no synchronization needed).
     */
    std::function<void(uint64_t seed, bool diverged)> onSeed;
};

/** What one seed produced. */
struct FuzzCase
{
    uint64_t seed = 0;
    bool diverged = false;
    std::string report;     // oracle report (minimized program's)
    std::string bundlePath; // written bundle, if any
    std::string error;      // infrastructure failure (not a divergence)
};

/** Campaign totals. */
struct FuzzSummary
{
    uint64_t seedsRun = 0;
    uint64_t divergences = 0;
    uint64_t errors = 0;
    uint64_t workerCrashes = 0; // seeds whose sandboxed worker died
    bool budgetExhausted = false; // stopped early on budgetMs
    std::vector<FuzzCase> findings; // divergent + errored cases only
};

/** Run the campaign. */
FuzzSummary runFuzz(const FuzzOptions &options);

} // namespace slip::fuzz

#endif // SLIPSTREAM_FUZZ_FUZZER_HH
