/**
 * @file
 * Three-way differential co-simulation oracle.
 *
 * Every program is executed through three independent models:
 *
 *  1. the functional reference (src/func) — architectural truth;
 *  2. the full slipstream dual-core (src/slipstream);
 *  3. the slipstream processor forced into degraded R-only mode
 *     mid-run (the graceful-degradation path, which swaps fetch
 *     sources and retire hooks and must remain architecturally
 *     invisible).
 *
 * The oracle diffs, per timing leg against the functional reference:
 * program output, retired instruction count, the complete retired
 * architectural store stream (address/width/value in retirement
 * order), the final register file, and the final memory image. Runs
 * execute with runtime invariant checkers enabled, so a violated
 * model invariant (delay-buffer FIFO consistency, IR-predictor
 * confidence bounds, recovery postconditions) surfaces as a
 * divergence too, not a crash.
 */

#ifndef SLIPSTREAM_FUZZ_ORACLE_HH
#define SLIPSTREAM_FUZZ_ORACLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "assembler/program.hh"
#include "slipstream/fault_injector.hh"
#include "slipstream/slipstream_processor.hh"

namespace slip::fuzz
{

/** One architecturally retired store. */
struct StoreEvent
{
    Addr pc = 0;
    Addr addr = 0;
    unsigned bytes = 0;
    uint64_t value = 0;

    bool operator==(const StoreEvent &other) const = default;
};

/** Oracle knobs. */
struct OracleOptions
{
    /** Functional-reference instruction budget (safety net). */
    uint64_t maxInsts = 20'000'000;

    /** Timing-leg cycle budget; exceeding it is a divergence. */
    Cycle maxCycles = 20'000'000;

    /** Cycle at which leg 3 forces the degrade-to-R-only transition. */
    Cycle degradeAtCycle = 400;

    /** Run the timing legs with runtime invariant checkers on. */
    bool invariants = true;

    /** Faults to arm on the *slipstream* leg (fault-injection demos;
     *  an undetectable fault must surface as a divergence). */
    std::vector<FaultPlan> faults;

    /** Base configuration for both slipstream legs. */
    SlipstreamParams params;
};

/** Oracle outcome: clean, or a divergence with a readable report. */
struct OracleVerdict
{
    bool diverged = false;

    /**
     * Self-contained description: which leg, which comparison failed
     * first, and the values on both sides. Empty when clean.
     */
    std::string report;
};

/** Run all three legs and diff them. */
OracleVerdict runOracle(const Program &program,
                        const OracleOptions &options = {});

} // namespace slip::fuzz

#endif // SLIPSTREAM_FUZZ_ORACLE_HH
