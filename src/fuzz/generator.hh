/**
 * @file
 * Seeded SSIR program generator for differential fuzzing.
 *
 * Programs come from a template grammar: a prologue binding an arena
 * pointer and seeding scratch registers, a body of counted loops
 * (optionally nested) whose statements mix ALU work, bounded
 * arena loads/stores, predictable and data-dependent branches, and
 * the redundant-write / dead-code idioms the IR-detector feeds on,
 * then a checksum epilogue that makes every scratch register and
 * arena word observable through PUTN before HALT.
 *
 * Three properties are load-bearing:
 *
 *  - Deterministic: the program is a pure function of (seed, config).
 *    Equal seeds reproduce byte-identical sources on any host.
 *  - Terminating: all loops count a fixed register down to zero and
 *    every other branch is strictly forward, so the functional oracle
 *    always halts.
 *  - Minimizable: the program is kept as a unit list, not a flat
 *    string. Scaffolding (prologue, loop heads/tails, epilogue) is
 *    marked so the greedy minimizer can drop statement units or whole
 *    loop spans and re-render a still-assemblable program.
 */

#ifndef SLIPSTREAM_FUZZ_GENERATOR_HH
#define SLIPSTREAM_FUZZ_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace slip::fuzz
{

/** Shape knobs for generated programs (defaults fuzz well). */
struct GeneratorConfig
{
    unsigned arenaWords = 32;  // 8-byte slots; must be a power of two
    unsigned scratchRegs = 6;  // t0..t(N-1), at most 10
    unsigned minLoops = 1;     // top-level loop count range
    unsigned maxLoops = 3;
    unsigned minIters = 6;     // per-loop trip count range
    unsigned maxIters = 40;
    unsigned minStmts = 3;     // per-loop-body statement range
    unsigned maxStmts = 10;
    double nestedLoopChance = 0.3;   // loop gains one inner loop
    double unpredictableChance = 0.2; // data-dependent forward branch
    double predictableChance = 0.1;  // statically-known forward branch
    double redundantChance = 0.2;    // IR-detector fodder idioms
    double outputChance = 0.05;      // mid-loop PUTN observation

    /** One-line "key=value ..." rendering for repro bundles. */
    std::string summary() const;
};

/** One renderable piece of a generated program. */
struct ProgramUnit
{
    enum class Kind : uint8_t
    {
        Fixed,     // scaffolding the minimizer must keep
        Stmt,      // independently removable statement
        LoopBegin, // loop head; removable only with its LoopEnd
        LoopEnd,   // loop tail (counter decrement + back edge)
    };

    Kind kind = Kind::Fixed;
    int loopId = -1; // pairs LoopBegin/LoopEnd spans
    std::string text; // complete assembly lines, self-contained labels
};

/** A generated program: unit list plus its provenance. */
struct GeneratedProgram
{
    uint64_t seed = 0;
    GeneratorConfig config;
    std::vector<ProgramUnit> units;

    /** Full source (every unit kept). */
    std::string render() const;

    /**
     * Source with only the units whose `keep` bit is set; Fixed units
     * are always emitted regardless of their bit. `keep` must match
     * units.size().
     */
    std::string render(const std::vector<bool> &keep) const;

    /** Units the minimizer may drop (non-Fixed). */
    size_t removableCount() const;
};

/**
 * Generate a program. Internally seeds the shared Rng on a dedicated
 * stream (splitmix stream derivation), so a fuzz campaign's generator
 * draws can never alias another subsystem's draws from the same seed,
 * nor a neighboring job's from seed+1.
 */
GeneratedProgram generate(uint64_t seed,
                          const GeneratorConfig &config = {});

} // namespace slip::fuzz

#endif // SLIPSTREAM_FUZZ_GENERATOR_HH
