/**
 * @file
 * Self-contained repro bundles for fuzz divergences.
 *
 * A bundle is a directory holding everything needed to reproduce and
 * debug one divergence with no access to the fuzz campaign that found
 * it: the seed and generator configuration, the minimized program
 * (and the original, when minimization shrank it), its disassembly,
 * the divergence report, and a README with the exact replay command.
 */

#ifndef SLIPSTREAM_FUZZ_REPRO_HH
#define SLIPSTREAM_FUZZ_REPRO_HH

#include <cstdint>
#include <string>

#include "slipstream/fault_injector.hh"

namespace slip::fuzz
{

/** Everything a bundle records about one divergence. */
struct ReproSpec
{
    uint64_t seed = 0;
    std::string configSummary;    // GeneratorConfig::summary()
    std::string report;           // the oracle's divergence report
    std::string originalSource;   // as generated
    std::string minimizedSource;  // after greedy minimization
    std::vector<FaultPlan> faults; // armed faults, if any
    size_t unitsRemoved = 0;      // minimizer statistics
    unsigned minimizeAttempts = 0;

    // Overrides for non-fuzz producers (the campaign supervisor's
    // poison-trial quarantine reuses the bundle format). Empty keeps
    // the fuzz defaults.
    std::string bundleName;    // directory name; "" = "seed_<seed>"
    std::string title;         // README heading
    std::string replayCommand; // README replay line
};

/** "target=memory_cell index=40 bit=3" style rendering. */
std::string describeFaults(const std::vector<FaultPlan> &faults);

/**
 * Write the bundle under `outDir` (created if needed) as
 * `<outDir>/seed_<seed>/`. Returns the bundle directory path.
 * Filesystem errors raise fatal() — a fuzz campaign that cannot
 * record its findings should stop, not drop them.
 */
std::string writeReproBundle(const std::string &outDir,
                             const ReproSpec &spec);

} // namespace slip::fuzz

#endif // SLIPSTREAM_FUZZ_REPRO_HH
