#include "harness/table.hh"

#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace slip
{

Table::Table(std::vector<std::string> header)
    : header(std::move(header))
{
}

void
Table::addRow(std::vector<std::string> row)
{
    SLIP_ASSERT(row.size() == header.size(), "table row width ",
                row.size(), " != header width ", header.size());
    rows.push_back(std::move(row));
}

std::string
Table::fixed(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::percent(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision)
       << fraction * 100.0 << "%";
    return os.str();
}

std::string
Table::count(uint64_t v)
{
    return std::to_string(v);
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> width(header.size());
    for (size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &row : rows) {
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    const auto printRow = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            // Left-align the first column, right-align the rest.
            if (c == 0)
                os << std::left << std::setw(int(width[c])) << row[c];
            else
                os << std::right << std::setw(int(width[c])) << row[c];
        }
        os << "\n";
    };

    printRow(header);
    size_t total = 0;
    for (size_t c = 0; c < header.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows)
        printRow(row);
}

} // namespace slip
