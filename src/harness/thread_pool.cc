#include "harness/thread_pool.hh"

namespace slip
{

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = 1;
    queues_.resize(workers);
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queues_[nextQueue_].push_back(std::move(job));
        nextQueue_ = (nextQueue_ + 1) % queues_.size();
        ++queued_;
    }
    wake_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return queued_ == 0 && inFlight_ == 0; });
}

bool
ThreadPool::takeJob(unsigned self, std::function<void()> &job)
{
    if (!queues_[self].empty()) {
        job = std::move(queues_[self].front());
        queues_[self].pop_front();
        return true;
    }
    // Steal from the back of the first non-empty victim.
    for (size_t k = 1; k < queues_.size(); ++k) {
        auto &victim = queues_[(self + k) % queues_.size()];
        if (!victim.empty()) {
            job = std::move(victim.back());
            victim.pop_back();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        wake_.wait(lock, [this] { return queued_ > 0 || stopping_; });
        if (queued_ == 0 && stopping_)
            return;

        std::function<void()> job;
        if (!takeJob(self, job))
            continue; // raced with another worker; re-wait
        --queued_;
        ++inFlight_;

        lock.unlock();
        job();
        lock.lock();

        --inFlight_;
        if (queued_ == 0 && inFlight_ == 0)
            idle_.notify_all();
    }
}

} // namespace slip
