/**
 * @file
 * Plain-text table formatting for the benchmark harnesses: aligned
 * columns, a header rule, and numeric cell helpers, so every bench
 * binary prints rows in the same layout as the paper's tables.
 */

#ifndef SLIPSTREAM_HARNESS_TABLE_HH
#define SLIPSTREAM_HARNESS_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace slip
{

/** Column-aligned text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Formatting helpers for numeric cells. */
    static std::string fixed(double v, int precision = 2);
    static std::string percent(double fraction, int precision = 1);
    static std::string count(uint64_t v);

    /** Render with aligned columns and a rule under the header. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace slip

#endif // SLIPSTREAM_HARNESS_TABLE_HH
