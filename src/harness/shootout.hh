/**
 * @file
 * Detection-backend shootout reporting: the three-way coverage /
 * detection-latency / overhead comparison table that none of the
 * source papers prints. One row per backend, built either live from
 * a CampaignTally or offline from a fault-campaign JSON report
 * (tools/detect_report re-renders results/detect_shootout.json).
 */

#ifndef SLIPSTREAM_HARNESS_SHOOTOUT_HH
#define SLIPSTREAM_HARNESS_SHOOTOUT_HH

#include <string>
#include <vector>

#include "harness/fault_campaign.hh"

namespace slip
{

/** One backend's line in the shootout table. */
struct ShootoutRow
{
    std::string backend;
    uint64_t trials = 0;
    uint64_t faultsInjected = 0;
    uint64_t faultsDetected = 0;
    uint64_t silentCorrupt = 0;
    uint64_t detectedUnrepaired = 0;
    double latencyAvg = 0.0;
    uint64_t latencyMax = 0;
    uint64_t overheadCycles = 0;
    uint64_t cyclesTotal = 0;

    /** Detected fraction of landed faults. */
    double
    coverage() const
    {
        return faultsInjected
                   ? double(faultsDetected) / double(faultsInjected)
                   : 0.0;
    }

    /** Modeled detection cost relative to simulated cycles (IPC tax). */
    double
    overheadFraction() const
    {
        return cyclesTotal ? double(overheadCycles) / double(cyclesTotal)
                           : 0.0;
    }
};

/** Condense one campaign's grand tally into a table row. */
ShootoutRow shootoutRow(const std::string &backend,
                        const CampaignTally &tally);

/** The aligned three-way table, ready to print. */
std::string renderShootoutTable(const std::vector<ShootoutRow> &rows);

/**
 * Write the rendered table to `path` (atomic tmp+rename, like the
 * JSON report). Never throws; failures warn with path and reason.
 */
void writeShootoutTable(const std::vector<ShootoutRow> &rows,
                        const std::string &path);

/**
 * Reconstruct rows from a fault-campaign report (the JSON array
 * campaignJson/writeFaultReport emit — a format we own, parsed by
 * string search like the journal). Campaigns whose top-level tally
 * carries a "detect_backend" key each become one row, in file order.
 */
std::vector<ShootoutRow> shootoutRowsFromReport(
    const std::string &jsonText);

/**
 * Sanity-check raw report text before parsing it: the file must be a
 * complete JSON array (writeFaultReport writes `[...]` atomically, so
 * anything else is a truncated or foreign file) and every
 * "report_version" present must equal kFaultReportVersion (reports
 * predating the field count as legacy and pass). False puts a
 * one-line diagnosis — empty / truncated / version N vs M — in
 * `err`; consumers print it and exit non-zero instead of rendering a
 * silently wrong table.
 */
bool validateShootoutReport(const std::string &jsonText,
                            std::string &err);

} // namespace slip

#endif // SLIPSTREAM_HARNESS_SHOOTOUT_HH
