/**
 * @file
 * The parallel experiment engine: simulation runs in a grid (workload
 * x model x configuration) are independent, so the harness expresses
 * each run as a job and executes the jobs on a work-stealing thread
 * pool. Three pieces:
 *
 *  - defaultJobs(): worker-count policy ($SLIPSTREAM_JOBS, else the
 *    hardware concurrency).
 *  - ProgramCache: a process-wide memo of assembled programs and
 *    their golden (functional-simulator) outputs, keyed by workload
 *    name + size. Assembly and golden execution happen exactly once
 *    per workload even when many jobs share it, and the resulting
 *    Entry is immutable, so jobs on different threads share it
 *    freely.
 *  - SimJobRunner: collects RunMetrics-producing jobs and runs them
 *    across the pool, returning results in submission order — output
 *    is byte-identical whatever the worker count, because each job is
 *    a pure function of const inputs. Batches are *supervised*: each
 *    job yields a per-job Outcome (ok / error / timed-out) so one
 *    failure never voids its siblings, a wall-clock deadline reaps
 *    stuck jobs via cooperative cancellation, and retryably-failing
 *    jobs re-run with bounded backoff.
 */

#ifndef SLIPSTREAM_HARNESS_SIM_RUNNER_HH
#define SLIPSTREAM_HARNESS_SIM_RUNNER_HH

#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "assembler/program.hh"
#include "common/cancel.hh"
#include "common/logging.hh"
#include "harness/experiment.hh"
#include "harness/worker_pool.hh"
#include "workloads/workloads.hh"

namespace slip
{

/**
 * Worker count for experiment harnesses: $SLIPSTREAM_JOBS if set and
 * a positive integer (else a warning), otherwise the hardware
 * concurrency (at least 1). Re-reads the environment on every call so
 * tests can override per-run.
 */
unsigned defaultJobs();

/**
 * Process-wide memo of assembled workloads. get() assembles the
 * program and computes its golden output the first time a given
 * {name, size} is requested; every later request — from any thread —
 * returns the same immutable entry.
 */
class ProgramCache
{
  public:
    struct Entry
    {
        Program program;
        std::string golden;        // functional-simulator output
        uint64_t goldenInstCount;  // dynamic instructions to halt
    };

    /** Look up a registry workload (getWorkload semantics). */
    const Entry &get(const std::string &name, WorkloadSize size);

    /** The shared instance used by benches and runAllModels(). */
    static ProgramCache &global();

  private:
    struct Slot
    {
        std::once_flag once;
        std::unique_ptr<Entry> entry;
    };

    std::mutex mu_; // guards the map shape only; Slots are stable
    std::map<std::string, Slot> slots_;
};

/**
 * How one supervised job ended. `ok` carries the full metrics;
 * `timed_out` means the supervisor's wall-clock deadline reaped the
 * job (metrics hold whatever partial state the cancelled run
 * returned); `error` means the job threw, with the exception
 * classified (common/logging taxonomy) and preserved for rethrow;
 * `crashed` (fork isolation only) means the worker process running
 * the job died — signal, exit code, faulting address, and last-known
 * phase come from the supervisor's triage.
 */
struct JobOutcome
{
    enum class Status : uint8_t
    {
        Ok,
        Error,
        TimedOut,
        Crashed,
    };

    Status status = Status::Ok;
    RunMetrics metrics;

    // Error only.
    ErrorKind errorKind = ErrorKind::Unknown;
    std::string errorMessage;
    std::exception_ptr exception;

    // Crashed only (fork isolation): worker-death triage.
    int termSignal = 0;   // terminating signal, 0 if it _exit()ed
    int termExitCode = 0; // exit status when termSignal == 0
    uint64_t crashAddr = 0;
    TrialPhase crashPhase = TrialPhase::Idle;
    bool poisoned = false; // crashed repeatedly — quarantine material

    /** Executions performed, including retries (>= 1). */
    unsigned attempts = 1;

    bool ok() const { return status == Status::Ok; }
};

/** "ok", "error", "timed_out", "crashed". */
const char *jobStatusName(JobOutcome::Status status);

/**
 * Per-job supervision policy for a batch: a wall-clock deadline
 * (enforced via cooperative cancellation — the simulators poll the
 * token in their cycle loops) and bounded retry-with-backoff for
 * failures whose classification says re-running could help.
 */
struct Supervision
{
    /** Wall-clock deadline per attempt in ms; 0 = no deadline. */
    uint64_t timeoutMs = 0;

    /** Re-executions allowed after a retryable failure. */
    unsigned retries = 1;

    /** First retry delay; doubles per subsequent retry. */
    uint64_t backoffMs = 100;

    /**
     * $SLIPSTREAM_TRIAL_TIMEOUT_MS / $SLIPSTREAM_TRIAL_RETRIES over
     * the defaults above (garbage values warn and fall back).
     */
    static Supervision fromEnv();
};

/**
 * Runs a batch of simulation jobs on a thread pool. Usage:
 *
 *   SimJobRunner runner;                   // defaultJobs() workers
 *   for (...) runner.add([=] { return runSS(...); });
 *   std::vector<RunMetrics> results = runner.run();
 *
 * Results come back in add() order regardless of completion order.
 * With jobs() == 1 the batch executes inline on the calling thread —
 * a true serial baseline with no pool machinery.
 *
 * runSupervised() is the resilient form: every job yields a
 * JobOutcome, so one failing or hung trial never voids its siblings'
 * results. Jobs may take a CancelToken (polled by the simulators'
 * cycle loops) so the deadline watchdog can reap a stuck trial
 * without killing the process. The legacy run() keeps its original
 * contract — the first-added error is rethrown — but is now a
 * wrapper over runSupervised(), so supervision (timeouts, retries)
 * applies there too.
 */
class SimJobRunner
{
  public:
    using Job = std::function<RunMetrics()>;
    using CancellableJob = std::function<RunMetrics(const CancelToken &)>;

    /** Called once per finished job (serialized, any thread). */
    using OnOutcome = std::function<void(size_t, const JobOutcome &)>;

    /** `jobs` == 0 means defaultJobs(). Isolation defaults to
     *  $SLIPSTREAM_ISOLATION (none when unset). */
    explicit SimJobRunner(unsigned jobs = 0,
                          Supervision supervision = Supervision::fromEnv());

    /**
     * Select how jobs are sandboxed. Fork isolation executes each job
     * in a worker *process* (harness/worker_pool.hh): a job that
     * SIGSEGVs or gets OOM-killed becomes a `crashed` outcome instead
     * of taking the harness down. Results are byte-identical to
     * in-process execution for jobs that complete (the wire codec
     * round-trips RunMetrics exactly); crashes and timeouts differ
     * only in how much partial state survives.
     */
    void setIsolation(IsolationMode mode) { isolation_ = mode; }
    IsolationMode isolation() const { return isolation_; }

    /** Queue one job; returns its index in the result vector. */
    size_t add(Job job);

    /** Queue one cancellation-aware job. */
    size_t add(CancellableJob job);

    /**
     * Execute all queued jobs; clears the queue. Rethrows the
     * first-added job error; a timed-out job raises fatal().
     */
    std::vector<RunMetrics> run();

    /**
     * Execute all queued jobs, returning one JobOutcome per job in
     * add() order; clears the queue. Never throws on job failure.
     * `onOutcome` (optional) fires as each job finishes — callers
     * journal completed trials through it.
     */
    std::vector<JobOutcome> runSupervised(const OnOutcome &onOutcome = {});

    unsigned jobs() const { return jobs_; }
    size_t pending() const { return pending_.size(); }
    const Supervision &supervision() const { return supervision_; }

  private:
    class DeadlineWatchdog;

    JobOutcome executeOne(const CancellableJob &job,
                          DeadlineWatchdog *watchdog) const;

    std::vector<JobOutcome>
    runForkIsolated(const std::vector<CancellableJob> &batch,
                    const OnOutcome &onOutcome) const;

    unsigned jobs_;
    Supervision supervision_;
    IsolationMode isolation_;
    std::vector<CancellableJob> pending_;
};

} // namespace slip

#endif // SLIPSTREAM_HARNESS_SIM_RUNNER_HH
