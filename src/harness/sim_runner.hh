/**
 * @file
 * The parallel experiment engine: simulation runs in a grid (workload
 * x model x configuration) are independent, so the harness expresses
 * each run as a job and executes the jobs on a work-stealing thread
 * pool. Three pieces:
 *
 *  - defaultJobs(): worker-count policy ($SLIPSTREAM_JOBS, else the
 *    hardware concurrency).
 *  - ProgramCache: a process-wide memo of assembled programs and
 *    their golden (functional-simulator) outputs, keyed by workload
 *    name + size. Assembly and golden execution happen exactly once
 *    per workload even when many jobs share it, and the resulting
 *    Entry is immutable, so jobs on different threads share it
 *    freely.
 *  - SimJobRunner: collects RunMetrics-producing jobs and runs them
 *    across the pool, returning results in submission order — output
 *    is byte-identical whatever the worker count, because each job is
 *    a pure function of const inputs.
 */

#ifndef SLIPSTREAM_HARNESS_SIM_RUNNER_HH
#define SLIPSTREAM_HARNESS_SIM_RUNNER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "assembler/program.hh"
#include "harness/experiment.hh"
#include "workloads/workloads.hh"

namespace slip
{

/**
 * Worker count for experiment harnesses: $SLIPSTREAM_JOBS if set and
 * a positive integer (else a warning), otherwise the hardware
 * concurrency (at least 1). Re-reads the environment on every call so
 * tests can override per-run.
 */
unsigned defaultJobs();

/**
 * Process-wide memo of assembled workloads. get() assembles the
 * program and computes its golden output the first time a given
 * {name, size} is requested; every later request — from any thread —
 * returns the same immutable entry.
 */
class ProgramCache
{
  public:
    struct Entry
    {
        Program program;
        std::string golden;        // functional-simulator output
        uint64_t goldenInstCount;  // dynamic instructions to halt
    };

    /** Look up a registry workload (getWorkload semantics). */
    const Entry &get(const std::string &name, WorkloadSize size);

    /** The shared instance used by benches and runAllModels(). */
    static ProgramCache &global();

  private:
    struct Slot
    {
        std::once_flag once;
        std::unique_ptr<Entry> entry;
    };

    std::mutex mu_; // guards the map shape only; Slots are stable
    std::map<std::string, Slot> slots_;
};

/**
 * Runs a batch of simulation jobs on a thread pool. Usage:
 *
 *   SimJobRunner runner;                   // defaultJobs() workers
 *   for (...) runner.add([=] { return runSS(...); });
 *   std::vector<RunMetrics> results = runner.run();
 *
 * run() returns results in add() order regardless of completion
 * order. With jobs() == 1 the batch executes inline on the calling
 * thread — a true serial baseline with no pool machinery. A job that
 * throws has its exception rethrown from run(), first-added wins.
 */
class SimJobRunner
{
  public:
    /** `jobs` == 0 means defaultJobs(). */
    explicit SimJobRunner(unsigned jobs = 0);

    /** Queue one job; returns its index in the result vector. */
    size_t add(std::function<RunMetrics()> job);

    /** Execute all queued jobs; clears the queue. */
    std::vector<RunMetrics> run();

    unsigned jobs() const { return jobs_; }
    size_t pending() const { return pending_.size(); }

  private:
    unsigned jobs_;
    std::vector<std::function<RunMetrics()>> pending_;
};

} // namespace slip

#endif // SLIPSTREAM_HARNESS_SIM_RUNNER_HH
