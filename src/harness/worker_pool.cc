#include "harness/worker_pool.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fcntl.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/env.hh"
#include "common/logging.hh"
#include "harness/wire.hh"
#include "obs/trace_session.hh"

namespace slip
{

const char *
isolationModeName(IsolationMode mode)
{
    switch (mode) {
      case IsolationMode::None:
        return "none";
      case IsolationMode::Fork:
        return "fork";
    }
    return "?";
}

bool
parseIsolationMode(const std::string &text, IsolationMode &mode)
{
    if (text == "none") {
        mode = IsolationMode::None;
        return true;
    }
    if (text == "fork") {
        mode = IsolationMode::Fork;
        return true;
    }
    return false;
}

IsolationMode
isolationFromEnv(IsolationMode fallback)
{
    // Strict mode-knob contract: a typo'd isolation mode would run a
    // whole campaign unsandboxed — refuse rather than guess.
    switch (envChoice("SLIPSTREAM_ISOLATION", {"none", "fork"},
                      size_t(fallback))) {
      case 1:
        return IsolationMode::Fork;
      default:
        return IsolationMode::None;
    }
}

unsigned
workerCountFromEnv(unsigned fallback)
{
    const uint64_t v = envU64("SLIPSTREAM_WORKERS", fallback);
    if (v == 0) {
        SLIP_WARN("SLIPSTREAM_WORKERS: 0 is not a pool; using ", fallback);
        return fallback;
    }
    return unsigned(std::min<uint64_t>(v, 1024));
}

unsigned
poisonThresholdFromEnv()
{
    const uint64_t v = envU64("SLIPSTREAM_POISON_THRESHOLD", 2);
    if (v == 0) {
        SLIP_WARN("SLIPSTREAM_POISON_THRESHOLD: 0 would retry forever; "
                  "using 2");
        return 2;
    }
    return unsigned(std::min<uint64_t>(v, 100));
}

const char *
isolatedStatusName(IsolatedOutcome::Status status)
{
    switch (status) {
      case IsolatedOutcome::Status::Ok:
        return "ok";
      case IsolatedOutcome::Status::Crashed:
        return "crashed";
      case IsolatedOutcome::Status::TimedOut:
        return "timed_out";
    }
    return "?";
}

WorkerPool::WorkerPool(WorkerPoolOptions opts) : opts_(opts)
{
    if (opts_.workers == 0)
        opts_.workers = workerCountFromEnv(1);
    if (opts_.poisonThreshold == 0)
        opts_.poisonThreshold = poisonThresholdFromEnv();
}

namespace
{

using Clock = std::chrono::steady_clock;

/** One worker process and its supervisor-side plumbing. */
struct WorkerSlot
{
    pid_t pid = -1;
    int reqFd = -1;   // supervisor writes JobRequest frames here
    int resFd = -1;   // supervisor reads JobResult frames here
    int crashFd = -1; // crash handler's CrashNote lands here
    bool alive = false;
    bool busy = false;
    size_t job = 0;
    Clock::time_point deadline{};
};

void
closeFd(int &fd)
{
    if (fd >= 0) {
        close(fd);
        fd = -1;
    }
}

/** Heartbeat slot: (trialId << 8) | phase, updated lock-free. */
std::atomic<uint64_t> *
heartbeatSlot(void *map, unsigned index)
{
    return reinterpret_cast<std::atomic<uint64_t> *>(
               static_cast<char *>(map)) +
           index;
}

/**
 * The worker child's whole life: read a request, run it, ship the
 * result, repeat until Shutdown/EOF. Never returns.
 */
[[noreturn]] void
workerMain(WorkerSlot &self, std::atomic<uint64_t> *heartbeat,
           const WorkerPool::Execute &execute)
{
    installCrashHandler(self.crashFd);
    setHeartbeatSlot(heartbeat);

    for (;;) {
        setCrashContext(0, TrialPhase::Receive);
        wire::MsgType type;
        std::string req;
        const wire::ReadResult r = wire::readFrame(self.reqFd, type, req);
        if (r != wire::ReadResult::Ok || type == wire::MsgType::Shutdown)
            _exit(0);
        if (type != wire::MsgType::JobRequest)
            _exit(112); // protocol confusion: supervisor will notice

        wire::Decoder dec(req);
        const uint64_t job = dec.getU64();
        const uint32_t attempt = dec.getU32();

        setCrashContext(job, TrialPhase::Setup);
        std::string result;
        try {
            result = execute(size_t(job), attempt);
        } catch (...) {
            // Execute's contract is "serialize errors, don't throw";
            // a throw here is a harness bug, reported as an exit-code
            // death so the supervisor still only loses this trial.
            _exit(111);
        }

        setCrashContext(job, TrialPhase::Report);
        wire::Encoder enc;
        enc.putU64(job);
        enc.putString(result);
        if (!wire::writeFrame(self.resFd, wire::MsgType::JobResult,
                              enc.bytes()))
            _exit(0); // supervisor went away; nothing left to do

        setCrashContext(0, TrialPhase::Idle);
    }
}

} // namespace

std::vector<IsolatedOutcome>
WorkerPool::run(size_t jobCount, const Execute &execute,
                const OnOutcome &onOutcome)
{
    std::vector<IsolatedOutcome> results(jobCount);
    if (jobCount == 0)
        return results;

    const unsigned nWorkers =
        unsigned(std::min<size_t>(opts_.workers, jobCount));

    // Workers write results into pipes the supervisor may have stopped
    // reading (e.g. mid-shutdown); a SIGPIPE must not kill either side.
    struct sigaction ignorePipe, oldPipe;
    std::memset(&ignorePipe, 0, sizeof(ignorePipe));
    ignorePipe.sa_handler = SIG_IGN;
    sigaction(SIGPIPE, &ignorePipe, &oldPipe);

    // One shared progress word per worker slot, surviving the worker's
    // death — the triage source when the crash pipe is empty (SIGKILL).
    void *hbMap =
        mmap(nullptr, nWorkers * sizeof(std::atomic<uint64_t>),
             PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (hbMap == MAP_FAILED)
        SLIP_FATAL("worker pool: mmap of heartbeat page failed: ",
                   std::strerror(errno));

    std::vector<WorkerSlot> slots(nWorkers);
    unsigned spawns = 0;
    // Generous ceiling: every trial may crash to its poison limit and
    // time out once; anything past that is a respawn storm (a bug).
    const unsigned spawnBudget =
        nWorkers + unsigned(jobCount) * (opts_.poisonThreshold + 1);

    auto spawn = [&](unsigned index) {
        WorkerSlot &slot = slots[index];
        int req[2], res[2], crash[2];
        if (pipe(req) != 0 || pipe(res) != 0 || pipe(crash) != 0)
            SLIP_FATAL("worker pool: pipe() failed: ",
                       std::strerror(errno));
        if (++spawns > spawnBudget)
            SLIP_FATAL("worker pool: respawn budget exhausted (", spawns,
                       " spawns for ", jobCount, " jobs)");
        heartbeatSlot(hbMap, index)
            ->store(0, std::memory_order_relaxed);
        const pid_t pid = fork();
        if (pid < 0)
            SLIP_FATAL("worker pool: fork() failed: ",
                       std::strerror(errno));
        if (pid == 0) {
            // Child: keep only this slot's ends; drop every fd that
            // belongs to the supervisor or to sibling workers so their
            // pipes still deliver EOF when their owners die.
            for (WorkerSlot &other : slots) {
                closeFd(other.reqFd);
                closeFd(other.resFd);
                closeFd(other.crashFd);
            }
            close(req[1]);
            close(res[0]);
            close(crash[0]);
            WorkerSlot self;
            self.reqFd = req[0];
            self.resFd = res[1];
            self.crashFd = crash[1];
            workerMain(self, heartbeatSlot(hbMap, index), execute);
        }
        close(req[0]);
        close(res[1]);
        close(crash[1]);
        slot.pid = pid;
        slot.reqFd = req[1];
        slot.resFd = res[0];
        slot.crashFd = crash[0];
        // Non-blocking so triage can ask "is there a note?" without
        // hanging on an empty pipe.
        fcntl(slot.crashFd, F_SETFL, O_NONBLOCK);
        slot.alive = true;
        slot.busy = false;
        SLIP_TRACE(obs::Category::Worker, obs::Name::WorkerSpawn,
                   obs::Phase::Instant, index, uint64_t(pid));
    };

    std::deque<size_t> pending;
    for (size_t j = 0; j < jobCount; ++j)
        pending.push_back(j);
    std::vector<unsigned> dispatches(jobCount, 0);
    std::vector<bool> done(jobCount, false);
    size_t completed = 0;

    auto finish = [&](size_t job, IsolatedOutcome outcome) {
        outcome.attempts = std::max(1u, dispatches[job]);
        results[job] = std::move(outcome);
        done[job] = true;
        ++completed;
        if (onOutcome)
            onOutcome(job, results[job]);
    };

    /** SIGKILL (optionally) + blocking waitpid; returns wait status. */
    auto reap = [&](WorkerSlot &slot, bool forceKill) -> int {
        if (forceKill)
            kill(slot.pid, SIGKILL);
        int status = 0;
        while (waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {}
        slot.alive = false;
        SLIP_TRACE(obs::Category::Worker, obs::Name::WorkerExit,
                   obs::Phase::Instant, uint64_t(slot.pid),
                   uint64_t(unsigned(status)));
        return status;
    };

    /**
     * A worker died out from under us. Triage (waitpid + CrashNote +
     * heartbeat), charge its in-flight job if it had one, and decide
     * re-dispatch vs quarantine.
     */
    auto handleDeath = [&](unsigned index, bool forceKill) {
        WorkerSlot &slot = slots[index];
        const int status = reap(slot, forceKill);

        CrashNote note;
        const bool haveNote = readCrashNote(slot.crashFd, note);
        const uint64_t hb =
            heartbeatSlot(hbMap, index)->load(std::memory_order_relaxed);

        closeFd(slot.reqFd);
        closeFd(slot.resFd);
        closeFd(slot.crashFd);

        if (!slot.busy) {
            // Died between trials; nothing to charge.
            SLIP_WARN("worker ", slot.pid, " died while idle (status ",
                      status, ")");
            return;
        }
        slot.busy = false;
        const size_t job = slot.job;

        IsolatedOutcome out;
        out.status = IsolatedOutcome::Status::Crashed;
        if (WIFSIGNALED(status))
            out.signal = WTERMSIG(status);
        else if (WIFEXITED(status))
            out.exitCode = WEXITSTATUS(status);
        if (haveNote) {
            out.faultAddr = note.faultAddr;
            out.phase = TrialPhase(note.phase);
        } else {
            out.phase = TrialPhase(uint8_t(hb & 0xff));
        }

        SLIP_TRACE(obs::Category::Worker, obs::Name::WorkerCrash,
                   obs::Phase::Instant, uint64_t(out.signal),
                   uint64_t(job));

        char scratch[32];
        const std::string how =
            out.signal ? crashSignalName(out.signal, scratch,
                                         sizeof(scratch))
                       : "exit " + std::to_string(out.exitCode);
        if (dispatches[job] < opts_.poisonThreshold) {
            SLIP_WARN("trial ", job, " crashed (", how, ", phase ",
                      trialPhaseName(out.phase),
                      "); re-dispatching (attempt ", dispatches[job] + 1,
                      " of ", opts_.poisonThreshold, ")");
            SLIP_TRACE(obs::Category::Worker, obs::Name::JobRedispatch,
                       obs::Phase::Instant, uint64_t(job),
                       uint64_t(dispatches[job] + 1));
            pending.push_front(job);
        } else {
            out.poisoned = true;
            SLIP_WARN("trial ", job, " crashed (", how, ", phase ",
                      trialPhaseName(out.phase), ") ", dispatches[job],
                      " times — poisoned, quarantining");
            SLIP_TRACE(obs::Category::Worker, obs::Name::JobQuarantined,
                       obs::Phase::Instant, uint64_t(job),
                       uint64_t(out.signal));
            finish(job, std::move(out));
        }
    };

    auto dispatch = [&](unsigned index) -> bool {
        WorkerSlot &slot = slots[index];
        const size_t job = pending.front();
        wire::Encoder enc;
        enc.putU64(job);
        enc.putU32(dispatches[job] + 1);
        if (!wire::writeFrame(slot.reqFd, wire::MsgType::JobRequest,
                              enc.bytes())) {
            // The worker was already dead before this job reached it —
            // the job is not charged an attempt.
            handleDeath(index, true);
            return false;
        }
        pending.pop_front();
        ++dispatches[job];
        slot.busy = true;
        slot.job = job;
        if (opts_.timeoutMs > 0)
            slot.deadline = Clock::now() +
                            std::chrono::milliseconds(opts_.timeoutMs);
        return true;
    };

    for (unsigned i = 0; i < nWorkers; ++i)
        spawn(i);

    while (completed < jobCount) {
        // Keep every live worker fed while work remains; respawn any
        // dead slot that still has a job to take.
        for (unsigned i = 0; i < nWorkers && !pending.empty(); ++i) {
            if (!slots[i].alive)
                spawn(i);
            if (slots[i].alive && !slots[i].busy)
                dispatch(i);
        }

        std::vector<struct pollfd> fds;
        std::vector<unsigned> fdSlot;
        for (unsigned i = 0; i < nWorkers; ++i) {
            if (!slots[i].alive || !slots[i].busy)
                continue;
            fds.push_back({slots[i].resFd, POLLIN, 0});
            fdSlot.push_back(i);
        }
        if (fds.empty()) {
            if (pending.empty() && completed < jobCount)
                SLIP_FATAL("worker pool: no workers in flight but ",
                           jobCount - completed, " jobs unresolved");
            continue; // respawn loop above will refill
        }

        int timeout = -1;
        if (opts_.timeoutMs > 0) {
            const auto now = Clock::now();
            Clock::time_point nearest = Clock::time_point::max();
            for (unsigned i : fdSlot)
                nearest = std::min(nearest, slots[i].deadline);
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    nearest - now)
                    .count();
            timeout = int(std::max<long long>(0, left)) + 1;
        }

        const int npoll = poll(fds.data(), int(fds.size()), timeout);
        if (npoll < 0) {
            if (errno == EINTR)
                continue;
            SLIP_FATAL("worker pool: poll() failed: ",
                       std::strerror(errno));
        }

        // Deadlines first: a worker both readable and expired gets to
        // deliver its result (it finished in time; scheduling jitter
        // is not the trial's fault).
        for (size_t k = 0; k < fds.size(); ++k) {
            const unsigned i = fdSlot[k];
            WorkerSlot &slot = slots[i];
            if (!slot.alive || !slot.busy)
                continue;

            if (fds[k].revents & (POLLIN | POLLHUP | POLLERR)) {
                wire::MsgType type;
                std::string payload;
                const wire::ReadResult r =
                    wire::readFrame(slot.resFd, type, payload);
                if (r == wire::ReadResult::Ok &&
                    type == wire::MsgType::JobResult) {
                    wire::Decoder dec(payload);
                    const uint64_t job = dec.getU64();
                    std::string body = dec.getString();
                    if (job != slot.job)
                        SLIP_FATAL("worker pool: result for job ", job,
                                   " from a worker running job ",
                                   slot.job);
                    slot.busy = false;
                    IsolatedOutcome out;
                    out.status = IsolatedOutcome::Status::Ok;
                    out.payload = std::move(body);
                    finish(job, std::move(out));
                } else {
                    // EOF or a torn/garbled frame: the worker is gone
                    // (or unusable — same thing to the supervisor).
                    handleDeath(i, r == wire::ReadResult::Error);
                }
                continue;
            }

            if (opts_.timeoutMs > 0 && Clock::now() >= slot.deadline) {
                const size_t job = slot.job;
                slot.busy = false; // reap must not charge a crash
                reap(slot, true);
                closeFd(slot.reqFd);
                closeFd(slot.resFd);
                closeFd(slot.crashFd);
                IsolatedOutcome out;
                out.status = IsolatedOutcome::Status::TimedOut;
                out.signal = SIGKILL;
                out.phase = TrialPhase(
                    uint8_t(heartbeatSlot(hbMap, i)->load(
                                std::memory_order_relaxed) &
                            0xff));
                SLIP_TRACE(obs::Category::Worker, obs::Name::WorkerCrash,
                           obs::Phase::Instant, uint64_t(SIGKILL),
                           uint64_t(job));
                finish(job, std::move(out));
            }
        }
    }

    // All jobs resolved: ask the survivors to exit and collect them.
    for (WorkerSlot &slot : slots) {
        if (!slot.alive)
            continue;
        wire::writeFrame(slot.reqFd, wire::MsgType::Shutdown, {});
        reap(slot, false);
        closeFd(slot.reqFd);
        closeFd(slot.resFd);
        closeFd(slot.crashFd);
    }

    munmap(hbMap, nWorkers * sizeof(std::atomic<uint64_t>));
    sigaction(SIGPIPE, &oldPipe, nullptr);
    return results;
}

} // namespace slip
