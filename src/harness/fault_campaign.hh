/**
 * @file
 * Fault-injection campaign runner (paper §3, made quantitative).
 *
 * A campaign draws a reproducible batch of multi-fault trial plans —
 * mixed targets, random dynamic positions and bits — and fans the
 * trials out on the parallel SimJobRunner. Each trial is one full
 * slipstream simulation, cycle-capped so a wedged run ends in a
 * classified `hung` outcome instead of hanging the harness, and is
 * classified against the golden output:
 *
 *   detected+recovered   every landed fault detected, output correct
 *   hung+recovered       the watchdog forced the recovery that saved
 *                        the run (A-stream derailed, no comparison
 *                        could fire); output correct
 *   silent-benign        a fault landed undetected, output correct
 *   silent-corrupt       output corrupted with at least one landed
 *                        fault undetected — the undetected fault's
 *                        doing (paper scenario #2)
 *   detected-but-corrupt output corrupted although every landed
 *                        fault was detected (model-soundness
 *                        tripwire: should stay zero)
 *   no-victim            no planned fault found a physical victim
 *   hung                 the run did not complete
 *   timed-out            the supervisor's wall-clock deadline reaped
 *                        the trial (SLIPSTREAM_TRIAL_TIMEOUT_MS)
 *   crashed              the trial's job threw; the exception is
 *                        classified and recorded, siblings unaffected
 *
 * Plans are drawn serially from one Rng before any job is submitted
 * and SimJobRunner returns results in submission order, so campaign
 * results are byte-identical for any SLIPSTREAM_JOBS.
 *
 * Campaigns are crash-safe: every completed trial is appended (and
 * flushed) as one JSONL line to a journal
 * (results/fault_campaign.journal.jsonl by default), and a campaign
 * started in resume mode skips already-journaled trials — the final
 * report is byte-identical wherever a previous run died.
 */

#ifndef SLIPSTREAM_HARNESS_FAULT_CAMPAIGN_HH
#define SLIPSTREAM_HARNESS_FAULT_CAMPAIGN_HH

#include <array>
#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "harness/experiment.hh"
#include "harness/sim_runner.hh"
#include "harness/worker_pool.hh"
#include "workloads/workloads.hh"

namespace slip
{

/** How one fault-injection trial ended. */
enum class TrialOutcome : uint8_t
{
    DetectedRecovered,
    HungRecovered,
    SilentBenign,
    SilentCorrupt,
    DetectedButCorrupt,
    NoVictim,
    Hung,
    TimedOut,
    Crashed,

    /**
     * Output corrupted, every landed fault detected, and at least
     * one detection came from an external backend (replay / checker)
     * — which observes but does not repair. The corruption was
     * *caught*, just not healed: the machine knows it must not
     * commit the result. Distinct from DetectedButCorrupt, where the
     * repairing mechanism itself claimed the detection and a corrupt
     * output is a model-soundness anomaly.
     */
    DetectedUnrepaired,
};

inline constexpr unsigned kNumTrialOutcomes = 10;

/** "detected_recovered", "hung_recovered", ... (report keys). */
const char *trialOutcomeName(TrialOutcome outcome);

/** Inverse of trialOutcomeName (journal parsing); false = unknown. */
bool trialOutcomeFromName(const std::string &name, TrialOutcome &out);

/** Classify one finished trial from its metrics. */
TrialOutcome classifyTrial(const RunMetrics &m);

/**
 * Target mix when the config leaves `targets` empty. Reliable
 * (AR-SMT) campaigns exclude MemoryCell — main memory sits outside
 * the sphere of replication (the paper leaves it to ECC), so
 * including it would break the mode's zero-silent-corruption
 * guarantee by construction — and IRPredictor, whose SRAM is unused
 * when removal is off (never a victim).
 */
std::vector<FaultTarget> defaultCampaignTargets(bool reliableMode);

/** One campaign's shape. */
struct FaultCampaignConfig
{
    std::string name = "fault_campaign";

    /** Workload names; empty = all eight, paper order. */
    std::vector<std::string> workloads;
    WorkloadSize size = WorkloadSize::Test;

    unsigned trialsPerWorkload = 32;
    unsigned minFaultsPerTrial = 1;
    unsigned maxFaultsPerTrial = 3;
    uint64_t seed = 20260806;

    /** AR-SMT mode: removal disabled, full redundancy. */
    bool reliableMode = false;

    /** Empty = defaultCampaignTargets(reliableMode). */
    std::vector<FaultTarget> targets;

    /** Processor configuration shared by every trial. */
    SlipstreamParams params;

    /**
     * Per-trial cycle cap: goldenInstCount * cycleCapPerInst plus
     * full watchdog allowance. Generous for any healthy run (IPC
     * never drops below ~0.5 on these workloads).
     */
    Cycle cycleCapPerInst = 10;

    /**
     * Trial journal path. Empty = $SLIPSTREAM_FAULT_JOURNAL, else
     * results/fault_campaign.journal.jsonl. Every completed trial is
     * appended and flushed as one JSONL line, so a killed campaign
     * loses at most the trials still in flight.
     */
    std::string journalPath;

    /**
     * Skip trials already journaled (matched by campaign name, seed,
     * trial index, and workload) instead of re-running them. Also
     * enabled by $SLIPSTREAM_CAMPAIGN_RESUME. The final report is
     * byte-identical to an uninterrupted run's.
     */
    bool resume = false;

    /**
     * How trials are sandboxed. The constructor reads
     * $SLIPSTREAM_ISOLATION (default none). Under fork isolation a
     * trial that SIGSEGVs the simulator becomes a journaled `crashed`
     * outcome (with signal + last-known phase) instead of killing the
     * campaign; after `poisonThresholdFromEnv()` crashes the trial is
     * quarantined as a repro bundle under `quarantineDir`.
     */
    IsolationMode isolation = IsolationMode::None;

    /** Trial workers; 0 = $SLIPSTREAM_WORKERS, else defaultJobs(). */
    unsigned workers = 0;

    /** Where poisoned trials' repro bundles land. */
    std::string quarantineDir = "results/quarantine";

    /**
     * fsync the journal after every appended trial: -1 consults
     * $SLIPSTREAM_JOURNAL_FSYNC (default on), 0/1 force. Durability
     * against power loss, at ~ms per trial — campaigns default on;
     * the test suite turns it off via ctest's environment.
     */
    int journalFsync = -1;

    /**
     * Test/CI hook: runs inside the trial job (in the worker process
     * under fork isolation) before the simulation, with the trial
     * index. Lets crash-containment tests make specific trials
     * raise(SIGSEGV) / _exit(3) / spin without touching simulator
     * code.
     */
    std::function<void(size_t trial)> trialHook;

    FaultCampaignConfig();
};

/**
 * One trial's full story. The aggregate fields (fault counts,
 * latency sums, cycles) are what the tallies and the JSON report
 * consume; they are journaled verbatim, so a trial reconstructed on
 * resume contributes exactly what the live run did. `metrics` is
 * populated for trials executed in this process only (empty for
 * resumed ones).
 */
struct TrialRecord
{
    std::string workload;
    std::vector<FaultPlan> plans;
    TrialOutcome outcome = TrialOutcome::NoVictim;
    RunMetrics metrics;

    /** Crashed trials: the classified exception text. */
    std::string error;

    // Worker-death triage (fork isolation only; journaled so resumed
    // campaigns keep their crash histogram).
    int crashSignal = 0;    // terminating signal, 0 if it _exit()ed
    int crashExit = 0;      // exit status when crashSignal == 0
    std::string crashPhase; // trialPhaseName() of last-known progress

    // Journaled aggregates (the report's inputs).
    uint64_t faultsPlanned = 0;
    uint64_t faultsInjected = 0;
    uint64_t faultsDetected = 0;
    bool degraded = false;
    uint64_t latencySamples = 0;
    Cycle latencyTotal = 0;
    Cycle latencyMax = 0;
    Cycle cycles = 0;

    /** A-stream policy the trial ran under (journaled, tag-matched). */
    std::string aStreamPolicy;

    // Detection-backend aggregates (journaled; see RunMetrics).
    std::string detectBackend;
    uint64_t detectChecked = 0;
    uint64_t detectMismatches = 0;
    uint64_t detectExternal = 0;
    uint64_t detectReplays = 0;
    uint64_t detectReplayedInsts = 0;
    uint64_t detectOverhead = 0;

    /**
     * Detection latency distribution per fault target (log2 buckets),
     * keyed by faultTargetName(). Journaled as compact bucket counts,
     * so resumed trials reproduce the report's histograms exactly.
     */
    std::map<std::string, Histogram> latencyByTarget;
};

/** Aggregated counts (whole campaign or one workload). */
struct CampaignTally
{
    uint64_t trials = 0;
    uint64_t faultsPlanned = 0;
    uint64_t faultsInjected = 0;
    uint64_t faultsDetected = 0;
    std::array<uint64_t, kNumTrialOutcomes> byOutcome{};
    uint64_t degradedRuns = 0;

    // Detection latency over detected fault records.
    uint64_t latencySamples = 0;
    Cycle latencyTotal = 0;
    Cycle latencyMax = 0;

    // Detection-backend totals over the tally's trials.
    uint64_t cyclesTotal = 0;
    uint64_t detectChecked = 0;
    uint64_t detectMismatches = 0;
    uint64_t detectExternal = 0;
    uint64_t detectOverhead = 0;

    /** Per-trial detection-overhead distribution (log2 buckets). */
    Histogram overheadHist;

    /** Per-target latency histograms, merged over the tally's trials. */
    std::map<std::string, Histogram> latencyByTarget;

    /**
     * Trials whose final outcome was a worker death, by cause
     * ("SIGSEGV", "exit_3", ...). A trial re-dispatched after a crash
     * and then succeeding does not appear. Empty when no worker died
     * — in-process (`none`) campaigns always, healthy fork campaigns
     * too — so reports stay byte-identical across isolation modes.
     */
    std::map<std::string, uint64_t> crashBySignal;

    void add(const TrialRecord &trial);

    uint64_t
    outcomes(TrialOutcome o) const
    {
        return byOutcome[static_cast<unsigned>(o)];
    }

    double
    avgLatency() const
    {
        return latencySamples
                   ? static_cast<double>(latencyTotal) / latencySamples
                   : 0.0;
    }
};

struct FaultCampaignResult
{
    std::vector<TrialRecord> trials;

    /** Per-workload tallies in config order, plus the grand total. */
    std::vector<std::pair<std::string, CampaignTally>> perWorkload;
    CampaignTally total;
};

// ---------------------------------------------------------------------
// The campaign pipeline, stage by stage. runFaultCampaign() composes
// these; the slipd campaign server drives them one trial at a time
// (plan -> cache probe -> execute -> record -> render), so a trial
// served remotely reports byte-for-byte what the batch CLI reports.
// ---------------------------------------------------------------------

/** One planned trial: workload, fault plans, and its cycle cap. */
struct CampaignTrialSpec
{
    /**
     * The shared immutable ProgramCache::Entry (program + golden);
     * consumers recover it with
     * static_cast<const ProgramCache::Entry *>(entry).
     */
    const void *entry = nullptr;
    std::string workload;
    std::vector<FaultPlan> plans;
    Cycle maxCycles = 0;
};

/**
 * Draw every trial's plan list, serially from one Rng seeded with
 * cfg.seed, in a fixed order — the determinism root for any worker
 * count, any isolation mode, and any client count. Index i in the
 * returned vector is campaign trial i everywhere (journal, cache,
 * serve protocol).
 */
std::vector<CampaignTrialSpec>
planCampaignTrials(const FaultCampaignConfig &cfg);

/**
 * Execute one planned trial (the exact job body batch campaigns run:
 * trialHook, then the armed slipstream simulation under the spec's
 * cycle cap).
 */
RunMetrics runCampaignTrial(const FaultCampaignConfig &cfg,
                            const CampaignTrialSpec &spec, size_t trial,
                            const CancelToken &cancel);

/**
 * Classify one finished job into the TrialRecord the tallies, the
 * journal, and the JSONL stream consume — including crash triage for
 * trials whose worker died.
 */
TrialRecord recordCampaignTrial(const FaultCampaignConfig &cfg,
                                const CampaignTrialSpec &spec,
                                size_t trial, const JobOutcome &outcome);

/**
 * One trial as its canonical JSONL journal line (no trailing
 * newline). The journal, the serve result stream, and the result
 * cache all store exactly these bytes.
 */
std::string campaignTrialLine(const FaultCampaignConfig &cfg,
                              size_t trial, const TrialRecord &t);

/** Run the campaign (parallel trials, deterministic results). */
FaultCampaignResult runFaultCampaign(const FaultCampaignConfig &cfg);

/**
 * Schema revision stamped into every campaign JSON object
 * ("report_version"). Consumers (tools/detect_report) refuse a
 * report from a different revision with a diagnostic instead of
 * misparsing it; reports from before the field existed read as
 * legacy and are accepted.
 */
inline constexpr unsigned kFaultReportVersion = 1;

/**
 * One campaign as a JSON object (config echo, outcome counts,
 * detection-latency stats, per-workload breakdown). Deliberately
 * excludes wall-clock so reports are byte-stable across machines.
 */
std::string campaignJson(const FaultCampaignConfig &cfg,
                         const FaultCampaignResult &result);

/**
 * Write campaign objects as a JSON array to `path`, or (when empty)
 * to $SLIPSTREAM_FAULT_JSON, else results/fault_campaign.json —
 * alongside bench_perf.json. The file is written to a temp sibling
 * and atomically renamed into place, so no kill point leaves a
 * truncated report. Never throws; failures warn with the path and
 * the reason.
 */
void writeFaultReport(const std::vector<std::string> &campaignObjects,
                      const std::string &path = "");

} // namespace slip

#endif // SLIPSTREAM_HARNESS_FAULT_CAMPAIGN_HH
