#include "harness/sim_runner.hh"

#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "func/func_sim.hh"
#include "harness/thread_pool.hh"

namespace slip
{

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("SLIPSTREAM_JOBS")) {
        char *end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && n > 0)
            return unsigned(n);
        SLIP_WARN("ignoring SLIPSTREAM_JOBS='", env,
                  "' (want a positive integer); using hardware "
                  "concurrency");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

const ProgramCache::Entry &
ProgramCache::get(const std::string &name, WorkloadSize size)
{
    Slot *slot;
    {
        std::lock_guard<std::mutex> lock(mu_);
        slot = &slots_[name + "#" + sizeName(size)];
    }
    std::call_once(slot->once, [&] {
        const Workload w = getWorkload(name, size);
        Program program = assemble(w.source);
        FuncSim sim(program);
        const FuncRunResult r = sim.run();
        if (!r.halted)
            SLIP_FATAL("workload '", name,
                       "' did not halt within the functional "
                       "simulator's instruction limit");
        slot->entry = std::make_unique<Entry>(
            Entry{std::move(program), r.output, r.instCount});
    });
    return *slot->entry;
}

ProgramCache &
ProgramCache::global()
{
    static ProgramCache cache;
    return cache;
}

SimJobRunner::SimJobRunner(unsigned jobs)
    : jobs_(jobs > 0 ? jobs : defaultJobs())
{
}

size_t
SimJobRunner::add(std::function<RunMetrics()> job)
{
    pending_.push_back(std::move(job));
    return pending_.size() - 1;
}

std::vector<RunMetrics>
SimJobRunner::run()
{
    std::vector<std::function<RunMetrics()>> batch;
    batch.swap(pending_);

    std::vector<RunMetrics> results(batch.size());

    if (jobs_ <= 1 || batch.size() <= 1) {
        // Serial baseline: no pool, no thread hop.
        for (size_t i = 0; i < batch.size(); ++i)
            results[i] = batch[i]();
        return results;
    }

    std::vector<std::exception_ptr> errors(batch.size());
    {
        ThreadPool pool(jobs_);
        for (size_t i = 0; i < batch.size(); ++i) {
            pool.submit([&, i] {
                try {
                    results[i] = batch[i]();
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            });
        }
        pool.wait();
    }
    for (const std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return results;
}

} // namespace slip
