#include "harness/sim_runner.hh"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>

#include "assembler/assembler.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "func/func_sim.hh"
#include "harness/thread_pool.hh"
#include "obs/trace_session.hh"

namespace slip
{

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("SLIPSTREAM_JOBS")) {
        char *end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && n > 0)
            return unsigned(n);
        SLIP_WARN("ignoring SLIPSTREAM_JOBS='", env,
                  "' (want a positive integer); using hardware "
                  "concurrency");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

const ProgramCache::Entry &
ProgramCache::get(const std::string &name, WorkloadSize size)
{
    Slot *slot;
    {
        std::lock_guard<std::mutex> lock(mu_);
        slot = &slots_[name + "#" + sizeName(size)];
    }
    std::call_once(slot->once, [&] {
        const Workload w = getWorkload(name, size);
        Program program = assemble(w.source);
        FuncSim sim(program);
        const FuncRunResult r = sim.run();
        if (!r.halted)
            SLIP_FATAL("workload '", name,
                       "' did not halt within the functional "
                       "simulator's instruction limit");
        slot->entry = std::make_unique<Entry>(
            Entry{std::move(program), r.output, r.instCount});
    });
    return *slot->entry;
}

ProgramCache &
ProgramCache::global()
{
    static ProgramCache cache;
    return cache;
}

const char *
jobStatusName(JobOutcome::Status status)
{
    switch (status) {
      case JobOutcome::Status::Ok:
        return "ok";
      case JobOutcome::Status::Error:
        return "error";
      case JobOutcome::Status::TimedOut:
        return "timed_out";
    }
    return "?";
}

Supervision
Supervision::fromEnv()
{
    Supervision s;
    s.timeoutMs = envU64("SLIPSTREAM_TRIAL_TIMEOUT_MS", s.timeoutMs);
    s.retries =
        unsigned(envU64("SLIPSTREAM_TRIAL_RETRIES", s.retries));
    return s;
}

/**
 * One thread watching every in-flight job's wall-clock deadline.
 * watch() registers a token with deadline now+timeout; the thread
 * sleeps until the earliest registered deadline and cancels overdue
 * tokens. unwatch() must be called before the token is destroyed;
 * registration and cancellation share one mutex, so a token is never
 * touched after unwatch() returns.
 */
class SimJobRunner::DeadlineWatchdog
{
    using Clock = std::chrono::steady_clock;

  public:
    explicit DeadlineWatchdog(std::chrono::milliseconds timeout)
        : timeout_(timeout), thread_([this] { loop(); })
    {
    }

    ~DeadlineWatchdog()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stopping_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

    void
    watch(CancelToken *token)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            armed_[token] = Clock::now() + timeout_;
        }
        cv_.notify_all();
    }

    void
    unwatch(CancelToken *token)
    {
        std::lock_guard<std::mutex> lock(mu_);
        armed_.erase(token);
    }

  private:
    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        while (!stopping_) {
            if (armed_.empty()) {
                cv_.wait(lock);
                continue;
            }
            auto earliest = armed_.begin();
            for (auto it = armed_.begin(); it != armed_.end(); ++it)
                if (it->second < earliest->second)
                    earliest = it;
            if (Clock::now() >= earliest->second) {
                earliest->first->cancel();
                armed_.erase(earliest);
                continue;
            }
            cv_.wait_until(lock, earliest->second);
        }
    }

    const std::chrono::milliseconds timeout_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::map<CancelToken *, Clock::time_point> armed_;
    bool stopping_ = false;
    std::thread thread_;
};

SimJobRunner::SimJobRunner(unsigned jobs, Supervision supervision)
    : jobs_(jobs > 0 ? jobs : defaultJobs()), supervision_(supervision)
{
}

size_t
SimJobRunner::add(Job job)
{
    pending_.push_back(
        [job = std::move(job)](const CancelToken &) { return job(); });
    return pending_.size() - 1;
}

size_t
SimJobRunner::add(CancellableJob job)
{
    pending_.push_back(std::move(job));
    return pending_.size() - 1;
}

JobOutcome
SimJobRunner::executeOne(const CancellableJob &job,
                         DeadlineWatchdog *watchdog) const
{
    JobOutcome out;
    for (unsigned attempt = 1;; ++attempt) {
        out.attempts = attempt;
        CancelToken token;
        if (watchdog)
            watchdog->watch(&token);
        obs::setTrialAttempt(attempt);
        try {
            RunMetrics m = job(token);
            if (watchdog)
                watchdog->unwatch(&token);
            out.metrics = std::move(m);
            out.status = token.cancelled()
                             ? JobOutcome::Status::TimedOut
                             : JobOutcome::Status::Ok;
            return out;
        } catch (...) {
            if (watchdog)
                watchdog->unwatch(&token);
            if (token.cancelled()) {
                // The deadline tripped mid-flight and the wind-down
                // threw: the deadline is the story, not the throw.
                out.status = JobOutcome::Status::TimedOut;
                out.metrics = RunMetrics{};
                out.metrics.cancelled = true;
                return out;
            }
            const ErrorInfo info = classifyCurrentException();
            out.errorKind = info.kind;
            out.errorMessage = info.message;
            out.exception = std::current_exception();
            if (!errorRetryable(info.kind) ||
                attempt > supervision_.retries) {
                out.status = JobOutcome::Status::Error;
                return out;
            }
            SLIP_WARN("retrying job after ",
                      errorKindName(info.kind), " failure (attempt ",
                      attempt, " of ", supervision_.retries + 1,
                      "): ", info.message);
            std::this_thread::sleep_for(std::chrono::milliseconds(
                supervision_.backoffMs << (attempt - 1)));
        }
    }
}

std::vector<JobOutcome>
SimJobRunner::runSupervised(const OnOutcome &onOutcome)
{
    std::vector<CancellableJob> batch;
    batch.swap(pending_);

    std::vector<JobOutcome> outcomes(batch.size());

    std::unique_ptr<DeadlineWatchdog> watchdog;
    if (supervision_.timeoutMs > 0)
        watchdog = std::make_unique<DeadlineWatchdog>(
            std::chrono::milliseconds(supervision_.timeoutMs));

    std::mutex outcomeMu; // serializes onOutcome across workers
    const auto finish = [&](size_t i) {
        outcomes[i] = executeOne(batch[i], watchdog.get());
        if (onOutcome) {
            std::lock_guard<std::mutex> lock(outcomeMu);
            onOutcome(i, outcomes[i]);
        }
    };

    if (jobs_ <= 1 || batch.size() <= 1) {
        // Serial baseline: no pool, no thread hop (the deadline
        // watchdog still runs — a stuck inline job is reaped too).
        for (size_t i = 0; i < batch.size(); ++i)
            finish(i);
        return outcomes;
    }

    ThreadPool pool(jobs_);
    for (size_t i = 0; i < batch.size(); ++i)
        pool.submit([&, i] { finish(i); });
    pool.wait();
    return outcomes;
}

std::vector<RunMetrics>
SimJobRunner::run()
{
    std::vector<JobOutcome> outcomes = runSupervised();

    std::vector<RunMetrics> results;
    results.reserve(outcomes.size());
    std::exception_ptr firstError;
    size_t firstTimeout = outcomes.size();
    for (size_t i = 0; i < outcomes.size(); ++i) {
        JobOutcome &o = outcomes[i];
        if (o.status == JobOutcome::Status::Error && !firstError)
            firstError = o.exception;
        if (o.status == JobOutcome::Status::TimedOut &&
            firstTimeout == outcomes.size())
            firstTimeout = i;
        results.push_back(std::move(o.metrics));
    }
    if (firstError)
        std::rethrow_exception(firstError);
    if (firstTimeout != outcomes.size())
        SLIP_FATAL("job ", firstTimeout, " exceeded the ",
                   supervision_.timeoutMs,
                   " ms trial deadline (SLIPSTREAM_TRIAL_TIMEOUT_MS); "
                   "use runSupervised() to tolerate timeouts");
    return results;
}

} // namespace slip
