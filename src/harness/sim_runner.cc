#include "harness/sim_runner.hh"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <sstream>
#include <thread>
#include <utility>

#include "assembler/assembler.hh"
#include "common/crash_report.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "func/func_sim.hh"
#include "harness/thread_pool.hh"
#include "harness/wire.hh"
#include "obs/trace_session.hh"

namespace slip
{

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("SLIPSTREAM_JOBS")) {
        char *end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && n > 0)
            return unsigned(n);
        SLIP_WARN("ignoring SLIPSTREAM_JOBS='", env,
                  "' (want a positive integer); using hardware "
                  "concurrency");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

const ProgramCache::Entry &
ProgramCache::get(const std::string &name, WorkloadSize size)
{
    Slot *slot;
    {
        std::lock_guard<std::mutex> lock(mu_);
        slot = &slots_[name + "#" + sizeName(size)];
    }
    std::call_once(slot->once, [&] {
        const Workload w = getWorkload(name, size);
        Program program = assemble(w.source);
        FuncSim sim(program);
        const FuncRunResult r = sim.run();
        if (!r.halted)
            SLIP_FATAL("workload '", name,
                       "' did not halt within the functional "
                       "simulator's instruction limit");
        slot->entry = std::make_unique<Entry>(
            Entry{std::move(program), r.output, r.instCount});
    });
    return *slot->entry;
}

ProgramCache &
ProgramCache::global()
{
    static ProgramCache cache;
    return cache;
}

const char *
jobStatusName(JobOutcome::Status status)
{
    switch (status) {
      case JobOutcome::Status::Ok:
        return "ok";
      case JobOutcome::Status::Error:
        return "error";
      case JobOutcome::Status::TimedOut:
        return "timed_out";
      case JobOutcome::Status::Crashed:
        return "crashed";
    }
    return "?";
}

Supervision
Supervision::fromEnv()
{
    Supervision s;
    s.timeoutMs = envU64("SLIPSTREAM_TRIAL_TIMEOUT_MS", s.timeoutMs);
    s.retries =
        unsigned(envU64("SLIPSTREAM_TRIAL_RETRIES", s.retries));
    return s;
}

/**
 * One thread watching every in-flight job's wall-clock deadline.
 * watch() registers a token with deadline now+timeout; the thread
 * sleeps until the earliest registered deadline and cancels overdue
 * tokens. unwatch() must be called before the token is destroyed;
 * registration and cancellation share one mutex, so a token is never
 * touched after unwatch() returns.
 */
class SimJobRunner::DeadlineWatchdog
{
    using Clock = std::chrono::steady_clock;

  public:
    explicit DeadlineWatchdog(std::chrono::milliseconds timeout)
        : timeout_(timeout), thread_([this] { loop(); })
    {
    }

    ~DeadlineWatchdog()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stopping_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

    void
    watch(CancelToken *token)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            armed_[token] = Clock::now() + timeout_;
        }
        cv_.notify_all();
    }

    void
    unwatch(CancelToken *token)
    {
        std::lock_guard<std::mutex> lock(mu_);
        armed_.erase(token);
    }

  private:
    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        while (!stopping_) {
            if (armed_.empty()) {
                cv_.wait(lock);
                continue;
            }
            auto earliest = armed_.begin();
            for (auto it = armed_.begin(); it != armed_.end(); ++it)
                if (it->second < earliest->second)
                    earliest = it;
            if (Clock::now() >= earliest->second) {
                earliest->first->cancel();
                armed_.erase(earliest);
                continue;
            }
            cv_.wait_until(lock, earliest->second);
        }
    }

    const std::chrono::milliseconds timeout_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::map<CancelToken *, Clock::time_point> armed_;
    bool stopping_ = false;
    std::thread thread_;
};

SimJobRunner::SimJobRunner(unsigned jobs, Supervision supervision)
    : jobs_(jobs > 0 ? jobs : defaultJobs()), supervision_(supervision),
      isolation_(isolationFromEnv())
{
}

size_t
SimJobRunner::add(Job job)
{
    pending_.push_back(
        [job = std::move(job)](const CancelToken &) { return job(); });
    return pending_.size() - 1;
}

size_t
SimJobRunner::add(CancellableJob job)
{
    pending_.push_back(std::move(job));
    return pending_.size() - 1;
}

JobOutcome
SimJobRunner::executeOne(const CancellableJob &job,
                         DeadlineWatchdog *watchdog) const
{
    JobOutcome out;
    for (unsigned attempt = 1;; ++attempt) {
        out.attempts = attempt;
        CancelToken token;
        if (watchdog)
            watchdog->watch(&token);
        obs::setTrialAttempt(attempt);
        try {
            RunMetrics m = job(token);
            if (watchdog)
                watchdog->unwatch(&token);
            out.metrics = std::move(m);
            out.status = token.cancelled()
                             ? JobOutcome::Status::TimedOut
                             : JobOutcome::Status::Ok;
            return out;
        } catch (...) {
            if (watchdog)
                watchdog->unwatch(&token);
            if (token.cancelled()) {
                // The deadline tripped mid-flight and the wind-down
                // threw: the deadline is the story, not the throw.
                out.status = JobOutcome::Status::TimedOut;
                out.metrics = RunMetrics{};
                out.metrics.cancelled = true;
                return out;
            }
            const ErrorInfo info = classifyCurrentException();
            out.errorKind = info.kind;
            out.errorMessage = info.message;
            out.exception = std::current_exception();
            if (!errorRetryable(info.kind) ||
                attempt > supervision_.retries) {
                out.status = JobOutcome::Status::Error;
                return out;
            }
            SLIP_WARN("retrying job after ",
                      errorKindName(info.kind), " failure (attempt ",
                      attempt, " of ", supervision_.retries + 1,
                      "): ", info.message);
            std::this_thread::sleep_for(std::chrono::milliseconds(
                supervision_.backoffMs << (attempt - 1)));
        }
    }
}

/**
 * Fork-isolation path: the jobs stay in this process's memory (the
 * workers inherit them copy-on-write at fork), only indices go down
 * the pipe and serialized JobOutcomes come back. The per-attempt
 * deadline is enforced by the supervisor with SIGKILL — cooperative
 * cancellation cannot cross a process boundary — and in-child retry
 * of retryable exceptions still applies, so classification matches
 * in-process execution.
 */
std::vector<JobOutcome>
SimJobRunner::runForkIsolated(const std::vector<CancellableJob> &batch,
                              const OnOutcome &onOutcome) const
{
    WorkerPoolOptions opts;
    opts.workers = jobs_;
    opts.timeoutMs = supervision_.timeoutMs;
    WorkerPool pool(opts);

    std::vector<JobOutcome> outcomes(batch.size());

    const auto execute = [&](size_t job, unsigned) -> std::string {
        // Worker child. No watchdog: the parent holds the deadline.
        setCrashContext(job, TrialPhase::Run);
        const JobOutcome out = executeOne(batch[job], nullptr);
        wire::Encoder enc;
        wire::encodeJobOutcome(enc, out);
        return enc.bytes();
    };

    const auto collect = [&](size_t job, const IsolatedOutcome &iso) {
        JobOutcome out;
        switch (iso.status) {
          case IsolatedOutcome::Status::Ok: {
            wire::Decoder dec(iso.payload);
            out = wire::decodeJobOutcome(dec);
            break;
          }
          case IsolatedOutcome::Status::Crashed: {
            out.status = JobOutcome::Status::Crashed;
            out.errorKind = ErrorKind::InternalError;
            out.termSignal = iso.signal;
            out.termExitCode = iso.exitCode;
            out.crashAddr = iso.faultAddr;
            out.crashPhase = iso.phase;
            out.poisoned = iso.poisoned;
            char scratch[32];
            std::ostringstream msg;
            if (iso.signal) {
                msg << "worker killed by "
                    << crashSignalName(iso.signal, scratch,
                                       sizeof(scratch));
                if (iso.faultAddr)
                    msg << " at 0x" << std::hex << iso.faultAddr
                        << std::dec;
            } else {
                msg << "worker exited with code " << iso.exitCode;
            }
            msg << " (phase " << trialPhaseName(iso.phase) << ")";
            out.errorMessage = msg.str();
            break;
          }
          case IsolatedOutcome::Status::TimedOut:
            out.status = JobOutcome::Status::TimedOut;
            out.metrics.cancelled = true;
            out.crashPhase = iso.phase;
            break;
        }
        out.attempts = std::max(out.attempts, iso.attempts);
        outcomes[job] = std::move(out);
        if (onOutcome)
            onOutcome(job, outcomes[job]);
    };

    pool.run(batch.size(), execute, collect);
    return outcomes;
}

std::vector<JobOutcome>
SimJobRunner::runSupervised(const OnOutcome &onOutcome)
{
    std::vector<CancellableJob> batch;
    batch.swap(pending_);

    if (isolation_ == IsolationMode::Fork && !batch.empty())
        return runForkIsolated(batch, onOutcome);

    std::vector<JobOutcome> outcomes(batch.size());

    std::unique_ptr<DeadlineWatchdog> watchdog;
    if (supervision_.timeoutMs > 0)
        watchdog = std::make_unique<DeadlineWatchdog>(
            std::chrono::milliseconds(supervision_.timeoutMs));

    std::mutex outcomeMu; // serializes onOutcome across workers
    const auto finish = [&](size_t i) {
        outcomes[i] = executeOne(batch[i], watchdog.get());
        if (onOutcome) {
            std::lock_guard<std::mutex> lock(outcomeMu);
            onOutcome(i, outcomes[i]);
        }
    };

    if (jobs_ <= 1 || batch.size() <= 1) {
        // Serial baseline: no pool, no thread hop (the deadline
        // watchdog still runs — a stuck inline job is reaped too).
        for (size_t i = 0; i < batch.size(); ++i)
            finish(i);
        return outcomes;
    }

    ThreadPool pool(jobs_);
    for (size_t i = 0; i < batch.size(); ++i)
        pool.submit([&, i] { finish(i); });
    pool.wait();
    return outcomes;
}

std::vector<RunMetrics>
SimJobRunner::run()
{
    std::vector<JobOutcome> outcomes = runSupervised();

    std::vector<RunMetrics> results;
    results.reserve(outcomes.size());
    std::exception_ptr firstError;
    std::string firstErrorMessage;
    size_t firstTimeout = outcomes.size();
    for (size_t i = 0; i < outcomes.size(); ++i) {
        JobOutcome &o = outcomes[i];
        const bool failed = o.status == JobOutcome::Status::Error ||
                            o.status == JobOutcome::Status::Crashed;
        if (failed && !firstError && firstErrorMessage.empty()) {
            // Fork-isolated failures carry no exception_ptr (it
            // cannot cross the process boundary); keep the message.
            firstError = o.exception;
            firstErrorMessage = "job " + std::to_string(i) + ": " +
                                o.errorMessage;
        }
        if (o.status == JobOutcome::Status::TimedOut &&
            firstTimeout == outcomes.size())
            firstTimeout = i;
        results.push_back(std::move(o.metrics));
    }
    if (firstError)
        std::rethrow_exception(firstError);
    if (!firstErrorMessage.empty())
        throw FatalError(firstErrorMessage);
    if (firstTimeout != outcomes.size())
        SLIP_FATAL("job ", firstTimeout, " exceeded the ",
                   supervision_.timeoutMs,
                   " ms trial deadline (SLIPSTREAM_TRIAL_TIMEOUT_MS); "
                   "use runSupervised() to tolerate timeouts");
    return results;
}

} // namespace slip
