/**
 * @file
 * Experiment driver: runs workloads on the paper's three processor
 * models — SS(64x4), SS(128x8), and the CMP(2x64x4) slipstream
 * processor — validates every run's program output against the
 * functional simulator, and collects the metrics the paper's tables
 * and figures report.
 */

#ifndef SLIPSTREAM_HARNESS_EXPERIMENT_HH
#define SLIPSTREAM_HARNESS_EXPERIMENT_HH

#include <map>
#include <string>

#include "assembler/program.hh"
#include "common/cancel.hh"
#include "slipstream/slipstream_processor.hh"
#include "uarch/ss_processor.hh"
#include "workloads/workloads.hh"

namespace slip
{

/** Everything measured for one workload on one model. */
struct RunMetrics
{
    std::string model;   // "SS(64x4)", "SS(128x8)", "CMP(2x64x4)"
    Cycle cycles = 0;
    uint64_t retired = 0;
    double ipc = 0.0;
    double branchMispPer1000 = 0.0;
    bool outputCorrect = false;
    uint64_t outputBytes = 0;

    // Slipstream-only metrics (zero for the SS models).
    double removedFraction = 0.0;
    std::map<std::string, uint64_t> removedByReason;
    ReasonCounts removedByReasonMask{};
    double irMispPer1000 = 0.0;
    double avgIRPenalty = 0.0;
    uint64_t recoveries = 0;

    // Robustness telemetry (slipstream only).
    bool cancelled = false;     // a supervisor deadline reaped the run
    bool hung = false;          // run did not complete
    unsigned watchdogTrips = 0; // watchdog-forced recoveries
    bool degraded = false;      // shed the A-stream mid-run
    Cycle degradedAtCycle = 0;
    uint64_t rOnlyRetired = 0;

    // Detection-backend telemetry (slipstream only; the backend named
    // by SlipstreamParams::detect observes every retired instruction).
    std::string detectBackend;         // "slipstream"|"replay"|"checker"
    uint64_t detectChecked = 0;        // instructions validated
    uint64_t detectMismatches = 0;     // raw mismatch events
    uint64_t detectExternal = 0;       // fault records newly detected
    uint64_t detectReplays = 0;        // replay windows flushed
    uint64_t detectReplayedInsts = 0;  // instructions re-executed
    uint64_t detectOverheadCycles = 0; // modeled detection cost

    // Fault-campaign result (meaningful when a FaultPlan was armed).
    FaultOutcome faultOutcome;
};

/** The paper's core processor configurations. */
CoreParams ss64x4Params();
CoreParams ss128x8Params();
SlipstreamParams cmp2x64x4Params();

/**
 * Assemble and functionally execute a workload, returning the golden
 * output (also sanity-checks it terminates).
 */
std::string goldenOutput(const Program &program);

/** Run a program on a conventional superscalar model. */
RunMetrics runSS(const Program &program, const CoreParams &core,
                 const std::string &modelName,
                 const std::string &golden);

/**
 * Run a program on the slipstream CMP model. When `fault` is given,
 * the injector is armed with it before the run and the outcome lands
 * in RunMetrics::faultOutcome.
 */
RunMetrics runSlipstream(const Program &program,
                         const SlipstreamParams &params,
                         const std::string &golden,
                         const FaultPlan *fault = nullptr);

/**
 * Multi-fault variant: arms the whole plan list and (when `maxCycles`
 * is nonzero) caps the run — a hung run then reports `hung` instead
 * of spinning forever. A supervisor may pass a CancelToken; the cycle
 * loop polls it and a reaped run reports `cancelled`.
 */
RunMetrics runSlipstream(const Program &program,
                         const SlipstreamParams &params,
                         const std::string &golden,
                         const std::vector<FaultPlan> &faults,
                         Cycle maxCycles,
                         const CancelToken *cancel = nullptr);

/**
 * Run one workload on all three models (assembling once), validating
 * outputs. Keyed by model name. The three model runs execute as
 * parallel jobs when defaultJobs() allows.
 */
std::map<std::string, RunMetrics> runAllModels(const Workload &workload);

} // namespace slip

#endif // SLIPSTREAM_HARNESS_EXPERIMENT_HH
