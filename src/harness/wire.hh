/**
 * @file
 * The versioned, length-prefixed frame protocol shared by the trial
 * supervisor / forked-worker pipes and the slipd campaign server's
 * client sockets.
 *
 * Framing: every message is
 *
 *     u32 payload length | u32 magic | u16 version | u8 type | payload
 *
 * read and written with plain read(2)/write(2) loops (EINTR-safe,
 * partial-I/O-safe). The magic and version are checked on every frame
 * — a supervisor never interprets bytes from a worker running a
 * different protocol revision; it fails loudly instead.
 *
 * Two readers exist for two trust models:
 *
 *  - readFrame(): strict — any version other than kVersion is an
 *    Error. The worker pipes use this everywhere, and the serve
 *    protocol uses it for every frame after the handshake.
 *  - readFrameInfo(): lenient on *version only* (magic and length are
 *    still enforced). Used exactly once per connection, for the
 *    Hello/HelloReject exchange, so a peer speaking a different
 *    protocol revision gets told "server speaks v2, you speak v1"
 *    instead of a silent close — version negotiation fails closed
 *    with a diagnosis, never open.
 *
 * Payloads are built with Encoder/Decoder: fixed-width little-endian
 * integers, bit-pattern doubles (exact round-trip — determinism
 * across isolation modes depends on it), and length-prefixed strings.
 * Decoder getters bounds-check and raise fatal() on truncation, so a
 * torn or corrupt payload is an error, never a silent misparse.
 *
 * The higher-level codecs (RunMetrics, JobOutcome) serialize exactly
 * the state the harness consumes, so a trial executed in a worker
 * process reports byte-for-byte what the same trial reports in-process.
 */

#ifndef SLIPSTREAM_HARNESS_WIRE_HH
#define SLIPSTREAM_HARNESS_WIRE_HH

#include <cstdint>
#include <string>

#include "harness/experiment.hh"

namespace slip
{
struct JobOutcome; // harness/sim_runner.hh
} // namespace slip

namespace slip::wire
{

inline constexpr uint32_t kMagic = 0x53504C57; // "WLPS" on the wire
inline constexpr uint16_t kVersion = 3; // v3: A-stream policy params

/** Frame types the worker and serve protocols speak. */
enum class MsgType : uint8_t
{
    // Worker pipes (supervisor <-> forked worker).
    JobRequest = 1, // supervisor -> worker: {u64 job, u32 attempt}
    JobResult = 2,  // worker -> supervisor: {u64 job, bytes payload}
    Shutdown = 3,   // supervisor -> worker: drain and _exit(0)

    // Serve protocol (slipc <-> slipd). Types 16+ so a serve frame
    // misdelivered to a worker pipe reads as protocol confusion, not
    // as a job.
    Hello = 16,        // client -> server: {string client name}
    HelloAck = 17,     // server -> client: {u16 version, string server}
    HelloReject = 18,  // server -> client: {u16 server version,
                       //                    string reason}
    BatchRequest = 19, // client -> server: serve::BatchRequest codec
    TrialResult = 20,  // server -> client: one finished trial's JSONL
    BatchDone = 21,    // server -> client: batch summary + status
    CancelBatch = 22,  // client -> server: revoke undispatched trials
    StatsRequest = 23, // client -> server: {}
    StatsReply = 24,   // server -> client: serve::ServeStats codec
    DrainRequest = 25, // client -> server: drain + exit after reply
    DrainAck = 26,     // server -> client: drain began
};

/**
 * One frame as read leniently: the header's version rides along
 * instead of being enforced, so handshake code can diagnose a
 * revision mismatch in its error message. Magic and the length
 * sanity cap are still enforced — this is version-lenient, not
 * trust-everything.
 */
struct FrameInfo
{
    MsgType type = MsgType::Shutdown;
    uint16_t version = 0;
    std::string payload;
};

/** Append-only payload builder. */
class Encoder
{
  public:
    void putU8(uint8_t v) { buf_.push_back(char(v)); }
    void putU16(uint16_t v);
    void putU32(uint32_t v);
    void putU64(uint64_t v);
    void putI32(int32_t v) { putU32(uint32_t(v)); }
    void putBool(bool v) { putU8(v ? 1 : 0); }
    /** Bit pattern, not decimal text: doubles round-trip exactly. */
    void putDouble(double v);
    void putString(const std::string &s);

    const std::string &bytes() const { return buf_; }

  private:
    std::string buf_;
};

/** Bounds-checked payload reader; truncation raises fatal(). */
class Decoder
{
  public:
    explicit Decoder(const std::string &bytes) : buf_(bytes) {}

    uint8_t getU8();
    uint16_t getU16();
    uint32_t getU32();
    uint64_t getU64();
    int32_t getI32() { return int32_t(getU32()); }
    bool getBool() { return getU8() != 0; }
    double getDouble();
    std::string getString();

    bool atEnd() const { return pos_ == buf_.size(); }

  private:
    void need(size_t n) const;

    const std::string &buf_;
    size_t pos_ = 0;
};

/** Result of one frame read. */
enum class ReadResult : uint8_t
{
    Ok,
    Eof,   // clean close before any byte of a frame
    Error, // torn frame, bad magic/version, or an I/O error
};

/**
 * Write one frame; returns false on any write error (a dead peer —
 * the caller treats it like a crashed worker, not an exception).
 * The caller is expected to have SIGPIPE ignored.
 */
bool writeFrame(int fd, MsgType type, const std::string &payload);

/**
 * Read one frame (blocking). Eof only when the peer closed cleanly
 * between frames; a close mid-frame is Error.
 */
ReadResult readFrame(int fd, MsgType &type, std::string &payload);

/**
 * Write one frame stamping an explicit protocol version into the
 * header (tests and cross-version handshake probes; everything else
 * uses writeFrame, which stamps kVersion).
 */
bool writeFrameVersion(int fd, MsgType type, uint16_t version,
                       const std::string &payload);

/**
 * Read one frame accepting any header version (see FrameInfo).
 * Handshake use only; mid-stream frames go through readFrame.
 */
ReadResult readFrameInfo(int fd, FrameInfo &frame);

// ---------------------------------------------------------------------
// Harness codecs.
// ---------------------------------------------------------------------

/** Everything in RunMetrics, including the per-fault records. */
void encodeRunMetrics(Encoder &enc, const RunMetrics &m);
RunMetrics decodeRunMetrics(Decoder &dec);

/**
 * A JobOutcome minus the bits that cannot cross a process boundary:
 * the exception_ptr stays behind (kind + message travel instead).
 */
void encodeJobOutcome(Encoder &enc, const JobOutcome &o);
JobOutcome decodeJobOutcome(Decoder &dec);

} // namespace slip::wire

#endif // SLIPSTREAM_HARNESS_WIRE_HH
