/**
 * @file
 * Fork-based trial sandboxing: a pool of worker processes that execute
 * jobs shipped over the wire protocol (harness/wire.hh), supervised so
 * that a worker dying — SIGSEGV through a wild store, SIGABRT from an
 * invariant, SIGKILL from the OOM killer — loses exactly one trial.
 *
 * The design follows the speculative-dispatch-to-expendable-executors
 * model: workers are cheap and replaceable; the supervisor owns all
 * durable state. Jobs are closures registered *before* fork, so the
 * children inherit them copy-on-write and only job indices cross the
 * pipe going down; results come back as opaque serialized payloads
 * (the caller layers its codec — JobOutcome, FuzzCase — on top).
 *
 * Supervision per worker:
 *  - a request pipe (supervisor -> worker) carrying JobRequest frames,
 *  - a result pipe (worker -> supervisor) carrying JobResult frames,
 *  - a crash pipe the worker's async-signal-safe handler
 *    (common/crash_report.hh) writes one CrashNote to before dying,
 *  - a shared-memory heartbeat word (trialId << 8 | phase) the worker
 *    updates as it moves through a trial — the fallback triage source
 *    when death was too sudden for the handler (SIGKILL, OOM).
 *
 * A crashed trial is re-dispatched to a fresh worker until it has
 * crashed `poisonThreshold` times, then reported as poisoned — the
 * caller quarantines it (writes a repro bundle) instead of retrying
 * forever. A trial that exceeds the wall-clock deadline is SIGKILLed
 * and reported TimedOut without re-dispatch: the deadline already
 * proved the run does not terminate usefully.
 */

#ifndef SLIPSTREAM_HARNESS_WORKER_POOL_HH
#define SLIPSTREAM_HARNESS_WORKER_POOL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/crash_report.hh"

namespace slip
{

/** How trial execution is sandboxed. */
enum class IsolationMode : uint8_t
{
    None, // in-process (thread pool) — crashes kill the campaign
    Fork, // one forked worker process per in-flight trial
};

/** "none", "fork". */
const char *isolationModeName(IsolationMode mode);

/** Parse "none"/"fork" (case-sensitive); false on anything else. */
bool parseIsolationMode(const std::string &text, IsolationMode &mode);

/**
 * $SLIPSTREAM_ISOLATION per the STRICT mode-knob contract: unset
 * means `fallback`; an unrecognized value throws FatalError listing
 * the valid choices (none|fork) — see common/env::envChoice.
 */
IsolationMode isolationFromEnv(IsolationMode fallback = IsolationMode::None);

/** $SLIPSTREAM_WORKERS, else `fallback` (defaultJobs() for callers). */
unsigned workerCountFromEnv(unsigned fallback);

/**
 * $SLIPSTREAM_POISON_THRESHOLD: crashes a single trial may cause
 * before it is quarantined instead of re-dispatched. Default 2 (one
 * re-dispatch), minimum 1.
 */
unsigned poisonThresholdFromEnv();

/** Pool shape and supervision policy. */
struct WorkerPoolOptions
{
    /** Worker processes; 0 means workerCountFromEnv(1). */
    unsigned workers = 0;

    /** Per-dispatch wall-clock deadline in ms; 0 = no deadline. */
    uint64_t timeoutMs = 0;

    /** Crashes before quarantine; 0 means poisonThresholdFromEnv(). */
    unsigned poisonThreshold = 0;
};

/** How one sandboxed job ended, as seen by the supervisor. */
struct IsolatedOutcome
{
    enum class Status : uint8_t
    {
        Ok,       // payload holds the worker's serialized result
        Crashed,  // the worker died while running this job
        TimedOut, // the deadline expired; the worker was SIGKILLed
    };

    Status status = Status::Ok;
    std::string payload; // Ok only

    // Crashed only: triage from waitpid + CrashNote + heartbeat.
    int signal = 0;       // terminating signal, 0 if it _exit()ed
    int exitCode = 0;     // exit status when signal == 0
    uint64_t faultAddr = 0;
    TrialPhase phase = TrialPhase::Idle; // last-known progress
    bool poisoned = false; // crashed poisonThreshold times — quarantine

    /** Dispatches performed for this job (>= 1). */
    unsigned attempts = 1;

    bool ok() const { return status == Status::Ok; }
};

/** "ok", "crashed", "timed_out". */
const char *isolatedStatusName(IsolatedOutcome::Status status);

/**
 * The pool itself. Usage:
 *
 *   WorkerPool pool(opts);
 *   auto results = pool.run(jobs.size(),
 *       [&](size_t job, unsigned attempt) { return serialize(run(job)); },
 *       [&](size_t job, const IsolatedOutcome &o) { journal(job, o); });
 *
 * run() forks the workers (so `execute` and everything it captures is
 * inherited copy-on-write), dispatches job indices, collects results
 * in any completion order, and returns them indexed by job. The
 * supervisor never dies with a worker: pipe errors, crashes, and
 * timeouts all resolve to per-job outcomes.
 *
 * `execute` runs in the *child* and must not throw — serialize errors
 * into the payload. `onOutcome` runs in the parent as each job
 * resolves (dispatch order is job order, completion order is not).
 */
class WorkerPool
{
  public:
    using Execute = std::function<std::string(size_t job, unsigned attempt)>;
    using OnOutcome =
        std::function<void(size_t job, const IsolatedOutcome &outcome)>;

    explicit WorkerPool(WorkerPoolOptions opts = {});

    std::vector<IsolatedOutcome> run(size_t jobCount, const Execute &execute,
                                     const OnOutcome &onOutcome = {});

    unsigned workers() const { return opts_.workers; }
    unsigned poisonThreshold() const { return opts_.poisonThreshold; }

  private:
    WorkerPoolOptions opts_;
};

} // namespace slip

#endif // SLIPSTREAM_HARNESS_WORKER_POOL_HH
