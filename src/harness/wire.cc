#include "harness/wire.hh"

#include <cerrno>
#include <cstring>
#include <unistd.h>

#include "common/logging.hh"
#include "harness/sim_runner.hh"

namespace slip::wire
{

// ---------------------------------------------------------------------
// Encoder.
// ---------------------------------------------------------------------

void
Encoder::putU16(uint16_t v)
{
    putU8(uint8_t(v));
    putU8(uint8_t(v >> 8));
}

void
Encoder::putU32(uint32_t v)
{
    putU16(uint16_t(v));
    putU16(uint16_t(v >> 16));
}

void
Encoder::putU64(uint64_t v)
{
    putU32(uint32_t(v));
    putU32(uint32_t(v >> 32));
}

void
Encoder::putDouble(double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
Encoder::putString(const std::string &s)
{
    putU32(uint32_t(s.size()));
    buf_.append(s);
}

// ---------------------------------------------------------------------
// Decoder.
// ---------------------------------------------------------------------

void
Decoder::need(size_t n) const
{
    if (buf_.size() - pos_ < n)
        SLIP_FATAL("wire: truncated payload (need ", n,
                   " bytes at offset ", pos_, " of ", buf_.size(), ")");
}

uint8_t
Decoder::getU8()
{
    need(1);
    return uint8_t(buf_[pos_++]);
}

uint16_t
Decoder::getU16()
{
    const uint16_t lo = getU8();
    const uint16_t hi = getU8();
    return uint16_t(lo | (hi << 8));
}

uint32_t
Decoder::getU32()
{
    const uint32_t lo = getU16();
    const uint32_t hi = getU16();
    return lo | (hi << 16);
}

uint64_t
Decoder::getU64()
{
    const uint64_t lo = getU32();
    const uint64_t hi = getU32();
    return lo | (hi << 32);
}

double
Decoder::getDouble()
{
    const uint64_t bits = getU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
Decoder::getString()
{
    const uint32_t n = getU32();
    need(n);
    std::string s = buf_.substr(pos_, n);
    pos_ += n;
    return s;
}

// ---------------------------------------------------------------------
// Frame I/O.
// ---------------------------------------------------------------------

namespace
{

bool
writeAll(int fd, const void *data, size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        const ssize_t n = write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= size_t(n);
    }
    return true;
}

/** 1 = full read, 0 = clean EOF before the first byte, -1 = torn. */
int
readAll(int fd, void *data, size_t len)
{
    char *p = static_cast<char *>(data);
    size_t have = 0;
    while (have < len) {
        const ssize_t n = read(fd, p + have, len - have);
        if (n > 0) {
            have += size_t(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n == 0)
            return have == 0 ? 0 : -1;
        return -1;
    }
    return 1;
}

struct FrameHeader
{
    uint32_t length; // payload bytes following the header
    uint32_t magic;
    uint16_t version;
    uint8_t type;
    uint8_t pad;
};

static_assert(sizeof(FrameHeader) == 12, "frame header is wire format");

// Frames carry one trial result at most; anything bigger than this is
// a corrupt length field, not a real message.
constexpr uint32_t kMaxFrame = 64u << 20;

} // namespace

bool
writeFrame(int fd, MsgType type, const std::string &payload)
{
    return writeFrameVersion(fd, type, kVersion, payload);
}

bool
writeFrameVersion(int fd, MsgType type, uint16_t version,
                  const std::string &payload)
{
    FrameHeader hdr;
    hdr.length = uint32_t(payload.size());
    hdr.magic = kMagic;
    hdr.version = version;
    hdr.type = uint8_t(type);
    hdr.pad = 0;
    if (!writeAll(fd, &hdr, sizeof(hdr)))
        return false;
    return payload.empty() || writeAll(fd, payload.data(), payload.size());
}

ReadResult
readFrame(int fd, MsgType &type, std::string &payload)
{
    FrameHeader hdr;
    const int got = readAll(fd, &hdr, sizeof(hdr));
    if (got == 0)
        return ReadResult::Eof;
    if (got < 0)
        return ReadResult::Error;
    if (hdr.magic != kMagic || hdr.version != kVersion ||
        hdr.length > kMaxFrame) {
        SLIP_WARN("wire: bad frame header (magic 0x", std::hex, hdr.magic,
                  std::dec, " version ", hdr.version, " length ",
                  hdr.length, ")");
        return ReadResult::Error;
    }
    payload.resize(hdr.length);
    if (hdr.length > 0 && readAll(fd, payload.data(), hdr.length) != 1)
        return ReadResult::Error;
    type = MsgType(hdr.type);
    return ReadResult::Ok;
}

ReadResult
readFrameInfo(int fd, FrameInfo &frame)
{
    FrameHeader hdr;
    const int got = readAll(fd, &hdr, sizeof(hdr));
    if (got == 0)
        return ReadResult::Eof;
    if (got < 0)
        return ReadResult::Error;
    // Version deliberately unchecked (the caller negotiates); a bad
    // magic or an insane length is still garbage, not a peer.
    if (hdr.magic != kMagic || hdr.length > kMaxFrame) {
        SLIP_WARN("wire: bad frame header (magic 0x", std::hex, hdr.magic,
                  std::dec, " length ", hdr.length, ")");
        return ReadResult::Error;
    }
    frame.payload.resize(hdr.length);
    if (hdr.length > 0 &&
        readAll(fd, frame.payload.data(), hdr.length) != 1)
        return ReadResult::Error;
    frame.type = MsgType(hdr.type);
    frame.version = hdr.version;
    return ReadResult::Ok;
}

// ---------------------------------------------------------------------
// Harness codecs.
// ---------------------------------------------------------------------

namespace
{

void
encodeFaultRecord(Encoder &enc, const FaultRecord &r)
{
    enc.putU8(uint8_t(r.plan.target));
    enc.putU64(r.plan.dynIndex);
    enc.putU32(r.plan.bit);
    enc.putU8(r.plan.reg);
    enc.putBool(r.fired);
    enc.putBool(r.injected);
    enc.putBool(r.targetWasRedundant);
    enc.putBool(r.detected);
    enc.putU64(r.pc);
    enc.putU64(r.injectCycle);
    enc.putU64(r.detectCycle);
}

FaultRecord
decodeFaultRecord(Decoder &dec)
{
    FaultRecord r;
    r.plan.target = FaultTarget(dec.getU8());
    r.plan.dynIndex = dec.getU64();
    r.plan.bit = dec.getU32();
    r.plan.reg = dec.getU8();
    r.fired = dec.getBool();
    r.injected = dec.getBool();
    r.targetWasRedundant = dec.getBool();
    r.detected = dec.getBool();
    r.pc = dec.getU64();
    r.injectCycle = dec.getU64();
    r.detectCycle = dec.getU64();
    return r;
}

void
encodeFaultOutcome(Encoder &enc, const FaultOutcome &o)
{
    enc.putBool(o.injected);
    enc.putBool(o.targetWasRedundant);
    enc.putBool(o.detected);
    enc.putU64(o.pc);
    enc.putU32(o.planned);
    enc.putU32(o.numInjected);
    enc.putU32(o.numDetected);
    enc.putU32(uint32_t(o.records.size()));
    for (const FaultRecord &r : o.records)
        encodeFaultRecord(enc, r);
}

FaultOutcome
decodeFaultOutcome(Decoder &dec)
{
    FaultOutcome o;
    o.injected = dec.getBool();
    o.targetWasRedundant = dec.getBool();
    o.detected = dec.getBool();
    o.pc = dec.getU64();
    o.planned = dec.getU32();
    o.numInjected = dec.getU32();
    o.numDetected = dec.getU32();
    const uint32_t n = dec.getU32();
    o.records.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        o.records.push_back(decodeFaultRecord(dec));
    return o;
}

} // namespace

void
encodeRunMetrics(Encoder &enc, const RunMetrics &m)
{
    enc.putString(m.model);
    enc.putU64(m.cycles);
    enc.putU64(m.retired);
    enc.putDouble(m.ipc);
    enc.putDouble(m.branchMispPer1000);
    enc.putBool(m.outputCorrect);
    enc.putU64(m.outputBytes);

    enc.putDouble(m.removedFraction);
    enc.putU32(uint32_t(m.removedByReason.size()));
    for (const auto &[reason, count] : m.removedByReason) {
        enc.putString(reason);
        enc.putU64(count);
    }
    enc.putU32(uint32_t(m.removedByReasonMask.size()));
    for (uint64_t count : m.removedByReasonMask)
        enc.putU64(count);
    enc.putDouble(m.irMispPer1000);
    enc.putDouble(m.avgIRPenalty);
    enc.putU64(m.recoveries);

    enc.putBool(m.cancelled);
    enc.putBool(m.hung);
    enc.putU32(m.watchdogTrips);
    enc.putBool(m.degraded);
    enc.putU64(m.degradedAtCycle);
    enc.putU64(m.rOnlyRetired);

    enc.putString(m.detectBackend);
    enc.putU64(m.detectChecked);
    enc.putU64(m.detectMismatches);
    enc.putU64(m.detectExternal);
    enc.putU64(m.detectReplays);
    enc.putU64(m.detectReplayedInsts);
    enc.putU64(m.detectOverheadCycles);

    encodeFaultOutcome(enc, m.faultOutcome);
}

RunMetrics
decodeRunMetrics(Decoder &dec)
{
    RunMetrics m;
    m.model = dec.getString();
    m.cycles = dec.getU64();
    m.retired = dec.getU64();
    m.ipc = dec.getDouble();
    m.branchMispPer1000 = dec.getDouble();
    m.outputCorrect = dec.getBool();
    m.outputBytes = dec.getU64();

    m.removedFraction = dec.getDouble();
    const uint32_t reasons = dec.getU32();
    for (uint32_t i = 0; i < reasons; ++i) {
        std::string reason = dec.getString();
        const uint64_t count = dec.getU64();
        m.removedByReason.emplace(std::move(reason), count);
    }
    const uint32_t masks = dec.getU32();
    if (masks != m.removedByReasonMask.size())
        SLIP_FATAL("wire: removedByReasonMask arity mismatch (", masks,
                   " vs ", m.removedByReasonMask.size(),
                   ") — mixed-version worker?");
    for (uint64_t &count : m.removedByReasonMask)
        count = dec.getU64();
    m.irMispPer1000 = dec.getDouble();
    m.avgIRPenalty = dec.getDouble();
    m.recoveries = dec.getU64();

    m.cancelled = dec.getBool();
    m.hung = dec.getBool();
    m.watchdogTrips = dec.getU32();
    m.degraded = dec.getBool();
    m.degradedAtCycle = dec.getU64();
    m.rOnlyRetired = dec.getU64();

    m.detectBackend = dec.getString();
    m.detectChecked = dec.getU64();
    m.detectMismatches = dec.getU64();
    m.detectExternal = dec.getU64();
    m.detectReplays = dec.getU64();
    m.detectReplayedInsts = dec.getU64();
    m.detectOverheadCycles = dec.getU64();

    m.faultOutcome = decodeFaultOutcome(dec);
    return m;
}

void
encodeJobOutcome(Encoder &enc, const JobOutcome &o)
{
    enc.putU8(uint8_t(o.status));
    encodeRunMetrics(enc, o.metrics);
    enc.putU8(uint8_t(o.errorKind));
    enc.putString(o.errorMessage);
    // Crash triage: filled by the supervisor, not the worker (a
    // worker never reports its own death), but carried so the codec
    // round-trips the whole struct.
    enc.putI32(o.termSignal);
    enc.putI32(o.termExitCode);
    enc.putU64(o.crashAddr);
    enc.putU8(uint8_t(o.crashPhase));
    enc.putBool(o.poisoned);
    enc.putU32(o.attempts);
}

JobOutcome
decodeJobOutcome(Decoder &dec)
{
    JobOutcome o;
    o.status = JobOutcome::Status(dec.getU8());
    o.metrics = decodeRunMetrics(dec);
    o.errorKind = ErrorKind(dec.getU8());
    o.errorMessage = dec.getString();
    o.termSignal = dec.getI32();
    o.termExitCode = dec.getI32();
    o.crashAddr = dec.getU64();
    o.crashPhase = TrialPhase(dec.getU8());
    o.poisoned = dec.getBool();
    o.attempts = dec.getU32();
    // o.exception stays null: exceptions don't cross processes. The
    // kind + message carry what the supervisor needs.
    return o;
}

} // namespace slip::wire
