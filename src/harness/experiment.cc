#include "harness/experiment.hh"

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "func/func_sim.hh"
#include "harness/sim_runner.hh"

namespace slip
{

CoreParams
ss64x4Params()
{
    CoreParams p; // defaults are the paper's Table 2 single processor
    p.name = "ss64x4";
    return p;
}

CoreParams
ss128x8Params()
{
    CoreParams p = CoreParams::wide8();
    p.name = "ss128x8";
    return p;
}

SlipstreamParams
cmp2x64x4Params()
{
    return SlipstreamParams{}; // Table 2 defaults throughout
}

std::string
goldenOutput(const Program &program)
{
    FuncSim sim(program);
    const FuncRunResult r = sim.run();
    if (!r.halted)
        SLIP_FATAL("workload did not halt within the functional "
                   "simulator's instruction limit");
    return r.output;
}

RunMetrics
runSS(const Program &program, const CoreParams &core,
      const std::string &modelName, const std::string &golden)
{
    SSProcessor proc(program, core);
    const SSRunResult r = proc.run();

    RunMetrics m;
    m.model = modelName;
    m.cycles = r.cycles;
    m.retired = r.retired;
    m.ipc = r.ipc();
    m.branchMispPer1000 = r.mispPer1000();
    m.outputCorrect = r.halted && r.output == golden;
    m.outputBytes = r.output.size();
    return m;
}

RunMetrics
runSlipstream(const Program &program, const SlipstreamParams &params,
              const std::string &golden, const FaultPlan *fault)
{
    std::vector<FaultPlan> faults;
    if (fault)
        faults.push_back(*fault);
    return runSlipstream(program, params, golden, faults, 0);
}

RunMetrics
runSlipstream(const Program &program, const SlipstreamParams &params,
              const std::string &golden,
              const std::vector<FaultPlan> &faults, Cycle maxCycles,
              const CancelToken *cancel)
{
    SlipstreamProcessor proc(program, params);
    if (!faults.empty())
        proc.faultInjector().arm(faults);
    const SlipstreamRunResult r = proc.run(maxCycles, cancel);

    RunMetrics m;
    m.model = "CMP(2x64x4)";
    m.cycles = r.cycles;
    m.retired = r.rRetired;
    m.ipc = r.ipc();
    m.branchMispPer1000 = r.mispPer1000();
    m.outputCorrect = r.halted && r.output == golden;
    m.outputBytes = r.output.size();
    m.cancelled = r.cancelled;
    m.removedFraction = r.removedFraction();
    m.removedByReason = r.removedByReason;
    m.removedByReasonMask = r.removedByReasonMask;
    m.irMispPer1000 = r.irMispPer1000();
    m.avgIRPenalty = r.avgIRPenalty();
    m.recoveries = r.irMispredicts;
    m.hung = r.hung;
    m.watchdogTrips = r.watchdogTrips;
    m.degraded = r.degraded;
    m.degradedAtCycle = r.degradedAtCycle;
    m.rOnlyRetired = r.rOnlyRetired;
    m.faultOutcome = r.faultOutcome;
    return m;
}

std::map<std::string, RunMetrics>
runAllModels(const Workload &workload)
{
    const Program program = assemble(workload.source);
    const std::string golden = goldenOutput(program);

    SimJobRunner runner;
    runner.add([&] {
        return runSS(program, ss64x4Params(), "SS(64x4)", golden);
    });
    runner.add([&] {
        return runSS(program, ss128x8Params(), "SS(128x8)", golden);
    });
    runner.add([&] {
        return runSlipstream(program, cmp2x64x4Params(), golden);
    });
    const std::vector<RunMetrics> results = runner.run();

    std::map<std::string, RunMetrics> out;
    for (const RunMetrics &m : results)
        out[m.model] = m;
    return out;
}

} // namespace slip
