#include "harness/experiment.hh"

#include <memory>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "detect/detection_backend.hh"
#include "func/func_sim.hh"
#include "harness/sim_runner.hh"

namespace slip
{

CoreParams
ss64x4Params()
{
    CoreParams p; // defaults are the paper's Table 2 single processor
    p.name = "ss64x4";
    return p;
}

CoreParams
ss128x8Params()
{
    CoreParams p = CoreParams::wide8();
    p.name = "ss128x8";
    return p;
}

SlipstreamParams
cmp2x64x4Params()
{
    SlipstreamParams p; // Table 2 defaults throughout
    // Benches honor the strict A-stream-policy knob, so a policy
    // sweep is one environment variable away from any experiment.
    p.aPolicy = aStreamPolicyParamsFromEnv(p.aPolicy);
    return p;
}

std::string
goldenOutput(const Program &program)
{
    FuncSim sim(program);
    const FuncRunResult r = sim.run();
    if (!r.halted)
        SLIP_FATAL("workload did not halt within the functional "
                   "simulator's instruction limit");
    return r.output;
}

RunMetrics
runSS(const Program &program, const CoreParams &core,
      const std::string &modelName, const std::string &golden)
{
    SSProcessor proc(program, core);
    const SSRunResult r = proc.run();

    RunMetrics m;
    m.model = modelName;
    m.cycles = r.cycles;
    m.retired = r.retired;
    m.ipc = r.ipc();
    m.branchMispPer1000 = r.mispPer1000();
    m.outputCorrect = r.halted && r.output == golden;
    m.outputBytes = r.output.size();
    return m;
}

RunMetrics
runSlipstream(const Program &program, const SlipstreamParams &params,
              const std::string &golden, const FaultPlan *fault)
{
    std::vector<FaultPlan> faults;
    if (fault)
        faults.push_back(*fault);
    return runSlipstream(program, params, golden, faults, 0);
}

RunMetrics
runSlipstream(const Program &program, const SlipstreamParams &params,
              const std::string &golden,
              const std::vector<FaultPlan> &faults, Cycle maxCycles,
              const CancelToken *cancel)
{
    SlipstreamProcessor proc(program, params);
    if (!faults.empty())
        proc.faultInjector().arm(faults);

    // The detection backend observes the architectural stream; the
    // processor only detects/repairs through its native mechanism.
    const std::unique_ptr<DetectionBackend> backend =
        makeDetectionBackend(params.detect, program,
                             proc.faultInjector());
    proc.onArchRetire = [&](const DynInst &d, Cycle now) {
        backend->onRetire(d, now);
    };
    proc.onRecoveryEvent = [&](Cycle now) { backend->onSuspicion(now); };
    proc.onDegradeEvent = [&](Cycle now) {
        backend->onDegrade(proc.archState(), proc.rMemory(), now);
    };

    const SlipstreamRunResult r = proc.run(maxCycles, cancel);
    backend->finish(r.cycles);

    RunMetrics m;
    m.model = "CMP(2x64x4)";
    m.cycles = r.cycles;
    m.retired = r.rRetired;
    m.ipc = r.ipc();
    m.branchMispPer1000 = r.mispPer1000();
    m.outputCorrect = r.halted && r.output == golden;
    m.outputBytes = r.output.size();
    m.cancelled = r.cancelled;
    m.removedFraction = r.removedFraction();
    m.removedByReason = r.removedByReason;
    m.removedByReasonMask = r.removedByReasonMask;
    m.irMispPer1000 = r.irMispPer1000();
    m.avgIRPenalty = r.avgIRPenalty();
    m.recoveries = r.irMispredicts;
    m.hung = r.hung;
    m.watchdogTrips = r.watchdogTrips;
    m.degraded = r.degraded;
    m.degradedAtCycle = r.degradedAtCycle;
    m.rOnlyRetired = r.rOnlyRetired;
    m.detectBackend = detectBackendName(params.detect.kind);
    m.detectChecked = backend->stats().checked;
    m.detectMismatches = backend->stats().mismatches;
    m.detectExternal = backend->stats().externalDetections;
    m.detectReplays = backend->stats().replays;
    m.detectReplayedInsts = backend->stats().replayedInsts;
    m.detectOverheadCycles = backend->stats().overheadCycles;
    // Re-fetch rather than copying r.faultOutcome: finish() drains
    // buffered validation and may mark detections after run() already
    // snapshotted the outcome.
    m.faultOutcome = proc.faultInjector().outcome();
    return m;
}

std::map<std::string, RunMetrics>
runAllModels(const Workload &workload)
{
    const Program program = assemble(workload.source);
    const std::string golden = goldenOutput(program);

    SimJobRunner runner;
    runner.add([&] {
        return runSS(program, ss64x4Params(), "SS(64x4)", golden);
    });
    runner.add([&] {
        return runSS(program, ss128x8Params(), "SS(128x8)", golden);
    });
    runner.add([&] {
        return runSlipstream(program, cmp2x64x4Params(), golden);
    });
    const std::vector<RunMetrics> results = runner.run();

    std::map<std::string, RunMetrics> out;
    for (const RunMetrics &m : results)
        out[m.model] = m;
    return out;
}

} // namespace slip
