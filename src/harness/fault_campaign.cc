#include "harness/fault_campaign.hh"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/random.hh"
#include "harness/sim_runner.hh"

namespace slip
{

const char *
trialOutcomeName(TrialOutcome outcome)
{
    switch (outcome) {
      case TrialOutcome::DetectedRecovered:
        return "detected_recovered";
      case TrialOutcome::HungRecovered:
        return "hung_recovered";
      case TrialOutcome::SilentBenign:
        return "silent_benign";
      case TrialOutcome::SilentCorrupt:
        return "silent_corrupt";
      case TrialOutcome::DetectedButCorrupt:
        return "detected_but_corrupt";
      case TrialOutcome::NoVictim:
        return "no_victim";
      case TrialOutcome::Hung:
        return "hung";
    }
    return "?";
}

TrialOutcome
classifyTrial(const RunMetrics &m)
{
    if (m.hung)
        return TrialOutcome::Hung;
    if (m.faultOutcome.numInjected == 0)
        return TrialOutcome::NoVictim;
    if (m.outputCorrect) {
        if (m.watchdogTrips > 0)
            return TrialOutcome::HungRecovered;
        if (m.faultOutcome.numDetected > 0)
            return TrialOutcome::DetectedRecovered;
        return TrialOutcome::SilentBenign;
    }
    // Corrupted output with an undetected landed fault is that
    // fault's doing (scenario #2). Only when *every* landed fault was
    // detected is a corrupt output anomalous.
    return m.faultOutcome.numDetected >= m.faultOutcome.numInjected
               ? TrialOutcome::DetectedButCorrupt
               : TrialOutcome::SilentCorrupt;
}

std::vector<FaultTarget>
defaultCampaignTargets(bool reliableMode)
{
    if (reliableMode) {
        return {FaultTarget::AStream,          FaultTarget::RPipeline,
                FaultTarget::DelayBufferValue,
                FaultTarget::DelayBufferBranch, FaultTarget::ARegister,
                FaultTarget::AStreamStall};
    }
    return {FaultTarget::AStream,           FaultTarget::RPipeline,
            FaultTarget::DelayBufferValue,  FaultTarget::DelayBufferBranch,
            FaultTarget::IRPredictor,       FaultTarget::ARegister,
            FaultTarget::MemoryCell,        FaultTarget::AStreamStall};
}

FaultCampaignConfig::FaultCampaignConfig()
{
    // Campaign trials deliberately provoke stalls (AStreamStall, wild
    // A-side corruption): a short watchdog fuse keeps those trials
    // cheap without risking false trips — healthy runs never go even
    // hundreds of cycles without R retirement.
    params.watchdog.stallCycles = 20'000;
}

void
CampaignTally::add(const TrialRecord &trial)
{
    ++trials;
    const FaultOutcome &fo = trial.metrics.faultOutcome;
    faultsPlanned += fo.planned;
    faultsInjected += fo.numInjected;
    faultsDetected += fo.numDetected;
    ++byOutcome[static_cast<unsigned>(trial.outcome)];
    if (trial.metrics.degraded)
        ++degradedRuns;
    for (const FaultRecord &r : fo.records) {
        if (!r.detected)
            continue;
        const Cycle latency = r.detectionLatency();
        ++latencySamples;
        latencyTotal += latency;
        latencyMax = std::max(latencyMax, latency);
    }
}

FaultCampaignResult
runFaultCampaign(const FaultCampaignConfig &cfg)
{
    std::vector<std::string> names = cfg.workloads;
    if (names.empty())
        for (const Workload &w : allWorkloads(cfg.size))
            names.push_back(w.name);

    const std::vector<FaultTarget> targets =
        !cfg.targets.empty() ? cfg.targets
                             : defaultCampaignTargets(cfg.reliableMode);
    SLIP_ASSERT(!targets.empty(), "campaign has no fault targets");
    SLIP_ASSERT(cfg.minFaultsPerTrial >= 1 &&
                    cfg.minFaultsPerTrial <= cfg.maxFaultsPerTrial,
                "bad faults-per-trial range [", cfg.minFaultsPerTrial,
                ", ", cfg.maxFaultsPerTrial, "]");

    SlipstreamParams params = cfg.params;
    if (cfg.reliableMode)
        params.irPred.enabled = false;

    // Draw every trial's plan list serially, in a fixed order, before
    // submitting any job: determinism for any worker count.
    struct TrialSpec
    {
        const ProgramCache::Entry *entry;
        std::string workload;
        std::vector<FaultPlan> plans;
        Cycle maxCycles;
    };
    Rng rng(cfg.seed);
    std::vector<TrialSpec> specs;
    for (const std::string &name : names) {
        const ProgramCache::Entry &e =
            ProgramCache::global().get(name, cfg.size);
        // Generous completion allowance: the full run at a pessimistic
        // IPC, plus every watchdog trip the processor may spend.
        const Cycle maxCycles =
            e.goldenInstCount * cfg.cycleCapPerInst +
            Cycle(params.watchdog.maxTrips + 2) *
                params.watchdog.stallCycles +
            100'000;
        for (unsigned t = 0; t < cfg.trialsPerWorkload; ++t) {
            const unsigned numFaults =
                cfg.minFaultsPerTrial +
                unsigned(rng.below(cfg.maxFaultsPerTrial -
                                   cfg.minFaultsPerTrial + 1));
            std::vector<FaultPlan> plans;
            for (unsigned k = 0; k < numFaults; ++k) {
                FaultPlan p;
                p.target = targets[rng.below(targets.size())];
                // Inject in the steady-state half of the run.
                p.dynIndex =
                    e.goldenInstCount / 4 +
                    rng.below(std::max<uint64_t>(
                        e.goldenInstCount / 2, 1));
                p.bit = unsigned(rng.below(64));
                p.reg = RegIndex(1 + rng.below(kNumRegs - 1));
                plans.push_back(p);
            }
            specs.push_back(
                {&e, name, std::move(plans), maxCycles});
        }
    }

    SimJobRunner runner;
    for (const TrialSpec &spec : specs) {
        const TrialSpec *s = &spec;
        runner.add([&params, s] {
            return runSlipstream(s->entry->program, params,
                                 s->entry->golden, s->plans,
                                 s->maxCycles);
        });
    }
    const std::vector<RunMetrics> metrics = runner.run();

    FaultCampaignResult result;
    result.perWorkload.reserve(names.size());
    for (const std::string &name : names)
        result.perWorkload.emplace_back(name, CampaignTally{});
    for (size_t i = 0; i < specs.size(); ++i) {
        TrialRecord trial;
        trial.workload = specs[i].workload;
        trial.plans = std::move(specs[i].plans);
        trial.metrics = metrics[i];
        trial.outcome = classifyTrial(trial.metrics);
        result.total.add(trial);
        for (auto &[wname, tally] : result.perWorkload)
            if (wname == trial.workload)
                tally.add(trial);
        result.trials.push_back(std::move(trial));
    }
    return result;
}

namespace
{

void
tallyJson(std::ostringstream &out, const CampaignTally &t,
          const char *indent)
{
    out << indent << "\"trials\": " << t.trials << ",\n"
        << indent << "\"faults\": {\"planned\": " << t.faultsPlanned
        << ", \"injected\": " << t.faultsInjected
        << ", \"detected\": " << t.faultsDetected << "},\n"
        << indent << "\"outcomes\": {";
    for (unsigned o = 0; o < kNumTrialOutcomes; ++o) {
        if (o)
            out << ", ";
        out << "\"" << trialOutcomeName(TrialOutcome(o))
            << "\": " << t.byOutcome[o];
    }
    out << "},\n"
        << indent << "\"degraded_runs\": " << t.degradedRuns << ",\n"
        << indent << "\"detection_latency_cycles\": {\"samples\": "
        << t.latencySamples << ", \"avg\": " << t.avgLatency()
        << ", \"max\": " << t.latencyMax << "}";
}

} // namespace

std::string
campaignJson(const FaultCampaignConfig &cfg,
             const FaultCampaignResult &result)
{
    const std::vector<FaultTarget> targets =
        !cfg.targets.empty() ? cfg.targets
                             : defaultCampaignTargets(cfg.reliableMode);

    std::ostringstream out;
    out << "{\n"
        << "  \"campaign\": \"" << cfg.name << "\",\n"
        << "  \"mode\": \""
        << (cfg.reliableMode ? "reliable" : "slipstream") << "\",\n"
        << "  \"size\": \"" << sizeName(cfg.size) << "\",\n"
        << "  \"seed\": " << cfg.seed << ",\n"
        << "  \"trials_per_workload\": " << cfg.trialsPerWorkload
        << ",\n"
        << "  \"faults_per_trial\": [" << cfg.minFaultsPerTrial << ", "
        << cfg.maxFaultsPerTrial << "],\n"
        << "  \"targets\": [";
    for (size_t i = 0; i < targets.size(); ++i) {
        if (i)
            out << ", ";
        out << "\"" << faultTargetName(targets[i]) << "\"";
    }
    out << "],\n";
    tallyJson(out, result.total, "  ");
    out << ",\n  \"workloads\": [\n";
    for (size_t i = 0; i < result.perWorkload.size(); ++i) {
        const auto &[name, tally] = result.perWorkload[i];
        out << "    {\n      \"name\": \"" << name << "\",\n";
        tallyJson(out, tally, "      ");
        out << "\n    }" << (i + 1 < result.perWorkload.size() ? "," : "")
            << "\n";
    }
    out << "  ]\n}";
    return out.str();
}

void
writeFaultReport(const std::vector<std::string> &campaignObjects,
                 const std::string &path)
{
    try {
        std::string target = path;
        if (target.empty()) {
            if (const char *env =
                    std::getenv("SLIPSTREAM_FAULT_JSON"))
                target = env;
            else
                target = "results/fault_campaign.json";
        }
        const std::filesystem::path dir =
            std::filesystem::path(target).parent_path();
        if (!dir.empty())
            std::filesystem::create_directories(dir);

        std::ofstream out(target, std::ios::trunc);
        if (!out)
            return;
        out << "[\n";
        for (size_t i = 0; i < campaignObjects.size(); ++i)
            out << campaignObjects[i]
                << (i + 1 < campaignObjects.size() ? "," : "") << "\n";
        out << "]\n";
    } catch (...) {
        // Reporting must never take down a campaign.
    }
}

} // namespace slip
