#include "harness/fault_campaign.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <unistd.h>

#include "common/crash_report.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "fuzz/repro.hh"
#include "harness/sim_runner.hh"
#include "obs/trace_session.hh"

namespace slip
{

const char *
trialOutcomeName(TrialOutcome outcome)
{
    switch (outcome) {
      case TrialOutcome::DetectedRecovered:
        return "detected_recovered";
      case TrialOutcome::HungRecovered:
        return "hung_recovered";
      case TrialOutcome::SilentBenign:
        return "silent_benign";
      case TrialOutcome::SilentCorrupt:
        return "silent_corrupt";
      case TrialOutcome::DetectedButCorrupt:
        return "detected_but_corrupt";
      case TrialOutcome::NoVictim:
        return "no_victim";
      case TrialOutcome::Hung:
        return "hung";
      case TrialOutcome::TimedOut:
        return "timed_out";
      case TrialOutcome::Crashed:
        return "crashed";
      case TrialOutcome::DetectedUnrepaired:
        return "detected_unrepaired";
    }
    return "?";
}

bool
trialOutcomeFromName(const std::string &name, TrialOutcome &out)
{
    for (unsigned o = 0; o < kNumTrialOutcomes; ++o) {
        if (name == trialOutcomeName(TrialOutcome(o))) {
            out = TrialOutcome(o);
            return true;
        }
    }
    return false;
}

TrialOutcome
classifyTrial(const RunMetrics &m)
{
    if (m.cancelled)
        return TrialOutcome::TimedOut;
    if (m.hung)
        return TrialOutcome::Hung;
    if (m.faultOutcome.numInjected == 0)
        return TrialOutcome::NoVictim;
    if (m.outputCorrect) {
        if (m.watchdogTrips > 0)
            return TrialOutcome::HungRecovered;
        if (m.faultOutcome.numDetected > 0)
            return TrialOutcome::DetectedRecovered;
        return TrialOutcome::SilentBenign;
    }
    // Corrupted output with an undetected landed fault is that
    // fault's doing (scenario #2). When every landed fault was
    // detected, ask who detected: an external backend observes but
    // never repairs, so corruption it caught is expected
    // (detected-unrepaired); if the *repairing* mechanism claimed
    // every detection, a corrupt output is anomalous.
    if (m.faultOutcome.numDetected < m.faultOutcome.numInjected)
        return TrialOutcome::SilentCorrupt;
    return m.detectExternal > 0 ? TrialOutcome::DetectedUnrepaired
                                : TrialOutcome::DetectedButCorrupt;
}

std::vector<FaultTarget>
defaultCampaignTargets(bool reliableMode)
{
    if (reliableMode) {
        return {FaultTarget::AStream,          FaultTarget::RPipeline,
                FaultTarget::DelayBufferValue,
                FaultTarget::DelayBufferBranch, FaultTarget::ARegister,
                FaultTarget::AStreamStall};
    }
    return {FaultTarget::AStream,           FaultTarget::RPipeline,
            FaultTarget::DelayBufferValue,  FaultTarget::DelayBufferBranch,
            FaultTarget::IRPredictor,       FaultTarget::ARegister,
            FaultTarget::MemoryCell,        FaultTarget::AStreamStall};
}

FaultCampaignConfig::FaultCampaignConfig()
{
    // Campaign trials deliberately provoke stalls (AStreamStall, wild
    // A-side corruption): a short watchdog fuse keeps those trials
    // cheap without risking false trips — healthy runs never go even
    // hundreds of cycles without R retirement.
    params.watchdog.stallCycles = 20'000;
    isolation = isolationFromEnv();
    // $SLIPSTREAM_DETECT (strict) + the backend tuning knobs pick the
    // detection architecture every trial runs under.
    params.detect = detectParamsFromEnv(params.detect);
    // $SLIPSTREAM_ASTREAM_POLICY (strict) picks the A-stream
    // shortening policy the same way.
    params.aPolicy = aStreamPolicyParamsFromEnv(params.aPolicy);
}

void
CampaignTally::add(const TrialRecord &trial)
{
    // Consumes only the trial's journaled aggregates, so resumed
    // trials (reconstructed from the journal, no metrics) tally
    // exactly as live ones do.
    ++trials;
    faultsPlanned += trial.faultsPlanned;
    faultsInjected += trial.faultsInjected;
    faultsDetected += trial.faultsDetected;
    ++byOutcome[static_cast<unsigned>(trial.outcome)];
    if (trial.degraded)
        ++degradedRuns;
    latencySamples += trial.latencySamples;
    latencyTotal += trial.latencyTotal;
    latencyMax = std::max(latencyMax, trial.latencyMax);
    cyclesTotal += trial.cycles;
    detectChecked += trial.detectChecked;
    detectMismatches += trial.detectMismatches;
    detectExternal += trial.detectExternal;
    detectOverhead += trial.detectOverhead;
    if (trial.detectOverhead)
        overheadHist.sample(trial.detectOverhead);
    for (const auto &[target, hist] : trial.latencyByTarget)
        latencyByTarget[target].merge(hist);
    if (trial.crashSignal != 0) {
        char scratch[32];
        ++crashBySignal[crashSignalName(trial.crashSignal, scratch,
                                        sizeof(scratch))];
    } else if (!trial.crashPhase.empty()) {
        // A worker death without a signal is a bare _exit().
        ++crashBySignal["exit_" + std::to_string(trial.crashExit)];
    }
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
    }
    return out;
}

/** Extract "key":"value" from a journal line we wrote ourselves. */
bool
jsonFieldString(const std::string &line, const char *key,
                std::string &out)
{
    const std::string needle = std::string("\"") + key + "\":\"";
    const size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    out.clear();
    for (size_t i = at + needle.size(); i < line.size(); ++i) {
        char c = line[i];
        if (c == '\\' && i + 1 < line.size()) {
            char e = line[++i];
            out += e == 'n' ? '\n' : e == 'r' ? '\r' : e == 't' ? '\t'
                                                                : e;
            continue;
        }
        if (c == '"')
            return true;
        out += c;
    }
    return false; // unterminated string: a torn final line
}

/** Extract "key":<integer> from a journal line. */
bool
jsonFieldU64(const std::string &line, const char *key, uint64_t &out)
{
    const std::string needle = std::string("\"") + key + "\":";
    const size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    const char *p = line.c_str() + at + needle.size();
    char *end = nullptr;
    out = std::strtoull(p, &end, 10);
    return end != p;
}

std::string
resolveJournalPath(const FaultCampaignConfig &cfg)
{
    if (!cfg.journalPath.empty())
        return cfg.journalPath;
    if (const char *env = std::getenv("SLIPSTREAM_FAULT_JOURNAL"))
        if (*env)
            return env;
    return "results/fault_campaign.journal.jsonl";
}

/**
 * Whether this is the first time the process opens `path` as a
 * journal. A fresh (non-resume) campaign truncates the journal on
 * the process's first open only, so multi-campaign benches keep one
 * journal covering the whole invocation — and a kill during campaign
 * 3 still resumes campaigns 1 and 2 from their journaled trials.
 */
bool
firstJournalOpen(const std::string &path)
{
    static std::mutex mu;
    static std::set<std::string> opened;
    std::lock_guard<std::mutex> lock(mu);
    return opened.insert(path).second;
}

/**
 * Compact per-target histogram encoding for the journal:
 * "target=bucket:count,bucket:count;target2=..." (non-zero buckets
 * only; empty when the trial detected nothing). Only bucket counts
 * round-trip — and only bucket counts reach the report — so a
 * resumed campaign renders byte-identical histograms.
 */
std::string
encodeLatencyHistograms(const std::map<std::string, Histogram> &hists)
{
    std::ostringstream out;
    bool firstTarget = true;
    for (const auto &[target, h] : hists) {
        if (h.count() == 0)
            continue;
        if (!firstTarget)
            out << ';';
        firstTarget = false;
        out << target << '=';
        bool firstBucket = true;
        for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
            if (!h.bucket(b))
                continue;
            if (!firstBucket)
                out << ',';
            firstBucket = false;
            out << b << ':' << h.bucket(b);
        }
    }
    return out.str();
}

void
decodeLatencyHistograms(const std::string &enc,
                        std::map<std::string, Histogram> &out)
{
    size_t pos = 0;
    while (pos < enc.size()) {
        size_t end = enc.find(';', pos);
        if (end == std::string::npos)
            end = enc.size();
        const std::string part = enc.substr(pos, end - pos);
        pos = end + 1;
        const size_t eq = part.find('=');
        if (eq == std::string::npos)
            continue;
        Histogram &h = out[part.substr(0, eq)];
        size_t p = eq + 1;
        while (p < part.size()) {
            size_t e = part.find(',', p);
            if (e == std::string::npos)
                e = part.size();
            char *after = nullptr;
            const unsigned long b =
                std::strtoul(part.c_str() + p, &after, 10);
            if (after && *after == ':' && b < Histogram::kBuckets) {
                const uint64_t n =
                    std::strtoull(after + 1, nullptr, 10);
                if (n)
                    h.addToBucket(unsigned(b), n);
            }
            p = e + 1;
        }
    }
}

std::string
journalLine(const FaultCampaignConfig &cfg, size_t trial,
            const TrialRecord &t)
{
    std::ostringstream out;
    out << "{\"campaign\":\"" << jsonEscape(cfg.name) << "\""
        << ",\"seed\":" << cfg.seed << ",\"trial\":" << trial
        << ",\"workload\":\"" << jsonEscape(t.workload) << "\""
        << ",\"outcome\":\"" << trialOutcomeName(t.outcome) << "\""
        << ",\"planned\":" << t.faultsPlanned
        << ",\"injected\":" << t.faultsInjected
        << ",\"detected\":" << t.faultsDetected
        << ",\"degraded\":" << (t.degraded ? 1 : 0)
        << ",\"latency_samples\":" << t.latencySamples
        << ",\"latency_total\":" << t.latencyTotal
        << ",\"latency_max\":" << t.latencyMax
        << ",\"lat_hist\":\""
        << jsonEscape(encodeLatencyHistograms(t.latencyByTarget))
        << "\",\"cycles\":" << t.cycles
        << ",\"backend\":\"" << jsonEscape(t.detectBackend) << "\""
        << ",\"checked\":" << t.detectChecked
        << ",\"det_mismatch\":" << t.detectMismatches
        << ",\"det_external\":" << t.detectExternal
        << ",\"det_replays\":" << t.detectReplays
        << ",\"det_replayed\":" << t.detectReplayedInsts
        << ",\"det_overhead\":" << t.detectOverhead
        << ",\"policy\":\"" << jsonEscape(t.aStreamPolicy) << "\""
        << ",\"error\":\"" << jsonEscape(t.error) << "\"";
    // Worker-death triage rides along only when a worker actually
    // died, so healthy trials' lines are byte-identical across
    // isolation modes (and to journals written before fork isolation
    // existed).
    if (!t.crashPhase.empty())
        out << ",\"signal\":" << t.crashSignal
            << ",\"wexit\":" << t.crashExit << ",\"crash_phase\":\""
            << jsonEscape(t.crashPhase) << "\"";
    out << "}";
    return out.str();
}

/**
 * Append-and-flush journal of completed trials, on a raw fd so each
 * line can be fsync'd. Flushing alone survives process death (the
 * page cache holds the bytes); only fsync survives power loss — that
 * durability costs ~ms per trial, so it is a knob
 * ($SLIPSTREAM_JOURNAL_FSYNC, default on; the test suite turns it
 * off). Opening failures warn and disable journaling; they never
 * take down the campaign.
 */
class TrialJournal
{
  public:
    TrialJournal(const std::string &path, bool resume, bool fsyncEach)
        : path_(path), fsyncEach_(fsyncEach)
    {
        try {
            const std::filesystem::path dir =
                std::filesystem::path(path_).parent_path();
            if (!dir.empty())
                std::filesystem::create_directories(dir);
        } catch (const std::exception &e) {
            SLIP_WARN("cannot create directory for campaign journal '",
                      path_, "': ", e.what());
        }
        const bool truncate = !resume && firstJournalOpen(path_);
        fd_ = ::open(path_.c_str(),
                     O_WRONLY | O_CREAT | O_APPEND |
                         (truncate ? O_TRUNC : 0),
                     0644);
        if (fd_ < 0)
            SLIP_WARN("cannot open campaign journal '", path_,
                      "'; trials will not be journaled (a killed "
                      "campaign cannot be resumed)");
    }

    ~TrialJournal()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    void
    append(const FaultCampaignConfig &cfg, size_t trial,
           const TrialRecord &t)
    {
        if (fd_ < 0)
            return;
        std::lock_guard<std::mutex> lock(mu_);
        // One write() per line: O_APPEND makes the line land whole
        // even if several campaigns share the journal file.
        const std::string line = journalLine(cfg, trial, t) + "\n";
        size_t off = 0;
        while (off < line.size()) {
            const ssize_t n =
                ::write(fd_, line.data() + off, line.size() - off);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                SLIP_WARN("write to campaign journal '", path_,
                          "' failed; journaling disabled");
                ::close(fd_);
                fd_ = -1;
                return;
            }
            off += size_t(n);
        }
        if (fsyncEach_)
            ::fsync(fd_);
    }

  private:
    std::string path_;
    bool fsyncEach_;
    std::mutex mu_;
    int fd_ = -1;
};

/** Per-trial aggregates the tallies and the journal consume. */
void
fillAggregates(TrialRecord &t)
{
    const FaultOutcome &fo = t.metrics.faultOutcome;
    t.faultsInjected = fo.numInjected;
    t.faultsDetected = fo.numDetected;
    t.degraded = t.metrics.degraded;
    t.cycles = t.metrics.cycles;
    t.detectChecked = t.metrics.detectChecked;
    t.detectMismatches = t.metrics.detectMismatches;
    t.detectExternal = t.metrics.detectExternal;
    t.detectReplays = t.metrics.detectReplays;
    t.detectReplayedInsts = t.metrics.detectReplayedInsts;
    t.detectOverhead = t.metrics.detectOverheadCycles;
    for (const FaultRecord &r : fo.records) {
        if (!r.detected)
            continue;
        const Cycle latency = r.detectionLatency();
        ++t.latencySamples;
        t.latencyTotal += latency;
        t.latencyMax = std::max(t.latencyMax, latency);
        t.latencyByTarget[faultTargetName(r.plan.target)].sample(
            latency);
    }
}

} // namespace

std::vector<CampaignTrialSpec>
planCampaignTrials(const FaultCampaignConfig &cfg)
{
    std::vector<std::string> names = cfg.workloads;
    if (names.empty())
        for (const Workload &w : allWorkloads(cfg.size))
            names.push_back(w.name);

    const std::vector<FaultTarget> targets =
        !cfg.targets.empty() ? cfg.targets
                             : defaultCampaignTargets(cfg.reliableMode);
    SLIP_ASSERT(!targets.empty(), "campaign has no fault targets");
    SLIP_ASSERT(cfg.minFaultsPerTrial >= 1 &&
                    cfg.minFaultsPerTrial <= cfg.maxFaultsPerTrial,
                "bad faults-per-trial range [", cfg.minFaultsPerTrial,
                ", ", cfg.maxFaultsPerTrial, "]");

    // Draw every trial's plan list serially, in a fixed order, before
    // any job runs: determinism for any worker count — and for any
    // *client* count, since the serve protocol addresses trials by
    // index into exactly this vector.
    Rng rng(cfg.seed);
    std::vector<CampaignTrialSpec> specs;
    for (const std::string &name : names) {
        const ProgramCache::Entry &e =
            ProgramCache::global().get(name, cfg.size);
        // Generous completion allowance: the full run at a pessimistic
        // IPC, plus every watchdog trip the processor may spend.
        const Cycle maxCycles =
            e.goldenInstCount * cfg.cycleCapPerInst +
            Cycle(cfg.params.watchdog.maxTrips + 2) *
                cfg.params.watchdog.stallCycles +
            100'000;
        for (unsigned t = 0; t < cfg.trialsPerWorkload; ++t) {
            const unsigned numFaults =
                cfg.minFaultsPerTrial +
                unsigned(rng.below(cfg.maxFaultsPerTrial -
                                   cfg.minFaultsPerTrial + 1));
            std::vector<FaultPlan> plans;
            for (unsigned k = 0; k < numFaults; ++k) {
                FaultPlan p;
                p.target = targets[rng.below(targets.size())];
                // Inject in the steady-state half of the run.
                p.dynIndex =
                    e.goldenInstCount / 4 +
                    rng.below(std::max<uint64_t>(
                        e.goldenInstCount / 2, 1));
                p.bit = unsigned(rng.below(64));
                p.reg = RegIndex(1 + rng.below(kNumRegs - 1));
                plans.push_back(p);
            }
            specs.push_back(
                {&e, name, std::move(plans), maxCycles});
        }
    }
    return specs;
}

RunMetrics
runCampaignTrial(const FaultCampaignConfig &cfg,
                 const CampaignTrialSpec &spec, size_t trial,
                 const CancelToken &cancel)
{
    const auto *entry =
        static_cast<const ProgramCache::Entry *>(spec.entry);
    const std::string trialName =
        cfg.name + "_" + spec.workload + "_t" + std::to_string(trial);
    obs::TrialTrace scope(trialName);
    if (cfg.trialHook)
        cfg.trialHook(trial);
    SlipstreamParams params = cfg.params;
    if (cfg.reliableMode)
        params.irPred.enabled = false;
    RunMetrics m = runSlipstream(entry->program, params, entry->golden,
                                 spec.plans, spec.maxCycles, &cancel);
    if (m.cancelled) {
        SLIP_TRACE(obs::Category::Trial, obs::Name::TrialTimeout,
                   obs::Phase::Instant, m.cycles, 0);
    }
    return m;
}

TrialRecord
recordCampaignTrial(const FaultCampaignConfig &cfg,
                    const CampaignTrialSpec &spec, size_t trial,
                    const JobOutcome &o)
{
    TrialRecord t;
    t.workload = spec.workload;
    t.plans = spec.plans;
    t.faultsPlanned = spec.plans.size();
    // Every trial ran under the config's backend and A-stream policy,
    // whatever its outcome — crashed trials included, so they resume
    // cleanly.
    t.detectBackend = detectBackendName(cfg.params.detect.kind);
    t.aStreamPolicy = aStreamPolicyName(cfg.params.aPolicy.kind);
    switch (o.status) {
      case JobOutcome::Status::Ok:
        t.metrics = o.metrics;
        t.outcome = classifyTrial(t.metrics);
        fillAggregates(t);
        break;
      case JobOutcome::Status::TimedOut:
        t.metrics = o.metrics; // partial, still informative
        t.outcome = TrialOutcome::TimedOut;
        fillAggregates(t);
        break;
      case JobOutcome::Status::Error:
        t.outcome = TrialOutcome::Crashed;
        t.error = std::string(errorKindName(o.errorKind)) + ": " +
                  o.errorMessage;
        SLIP_WARN("campaign '", cfg.name, "' trial ", trial,
                  " crashed (", t.error, "); siblings unaffected");
        break;
      case JobOutcome::Status::Crashed:
        // A worker process died under this trial (fork isolation):
        // signal + last-known phase from the supervisor's triage.
        t.outcome = TrialOutcome::Crashed;
        t.error = o.errorMessage;
        t.crashSignal = o.termSignal;
        t.crashExit = o.termExitCode;
        t.crashPhase = trialPhaseName(o.crashPhase);
        SLIP_WARN("campaign '", cfg.name, "' trial ", trial,
                  " lost its worker (", t.error,
                  "); siblings unaffected");
        break;
    }
    return t;
}

std::string
campaignTrialLine(const FaultCampaignConfig &cfg, size_t trial,
                  const TrialRecord &t)
{
    return journalLine(cfg, trial, t);
}

FaultCampaignResult
runFaultCampaign(const FaultCampaignConfig &cfg)
{
    std::vector<std::string> names = cfg.workloads;
    if (names.empty())
        for (const Workload &w : allWorkloads(cfg.size))
            names.push_back(w.name);

    const std::vector<CampaignTrialSpec> specs =
        planCampaignTrials(cfg);

    const std::string journalPath = resolveJournalPath(cfg);
    const bool resume =
        cfg.resume || envFlag("SLIPSTREAM_CAMPAIGN_RESUME", false);

    // Resume: reconstruct already-journaled trials. A line counts
    // only if campaign name, seed, trial index, and workload all
    // match the freshly drawn plan — a journal from a different
    // configuration can never leak into the report.
    std::vector<std::optional<TrialRecord>> done(specs.size());
    if (resume) {
        std::ifstream in(journalPath);
        std::string line;
        size_t used = 0, skipped = 0;
        while (in && std::getline(in, line)) {
            if (line.empty())
                continue;
            std::string campaign, workload, outcomeName, error;
            uint64_t seed = 0, trial = 0;
            // A sound line is a complete object whose *last* field
            // ("error") parses — a torn final line from a killed
            // writer fails one of these even when its leading fields
            // survived the cut.
            if (line.front() != '{' || line.back() != '}' ||
                !jsonFieldString(line, "campaign", campaign) ||
                !jsonFieldU64(line, "seed", seed) ||
                !jsonFieldU64(line, "trial", trial) ||
                !jsonFieldString(line, "workload", workload) ||
                !jsonFieldString(line, "outcome", outcomeName) ||
                !jsonFieldString(line, "error", error)) {
                ++skipped; // torn or foreign line
                continue;
            }
            if (campaign != cfg.name || seed != cfg.seed)
                continue; // another campaign's journal entries
            TrialOutcome outcome;
            if (trial >= specs.size() ||
                workload != specs[trial].workload ||
                !trialOutcomeFromName(outcomeName, outcome)) {
                ++skipped;
                continue;
            }
            TrialRecord t;
            t.workload = workload;
            t.plans = specs[trial].plans;
            t.outcome = outcome;
            jsonFieldU64(line, "planned", t.faultsPlanned);
            jsonFieldU64(line, "injected", t.faultsInjected);
            jsonFieldU64(line, "detected", t.faultsDetected);
            uint64_t degraded = 0;
            jsonFieldU64(line, "degraded", degraded);
            t.degraded = degraded != 0;
            jsonFieldU64(line, "latency_samples", t.latencySamples);
            jsonFieldU64(line, "latency_total", t.latencyTotal);
            jsonFieldU64(line, "latency_max", t.latencyMax);
            std::string latHist;
            if (jsonFieldString(line, "lat_hist", latHist))
                decodeLatencyHistograms(latHist, t.latencyByTarget);
            jsonFieldU64(line, "cycles", t.cycles);
            // A journaled trial only counts for the backend it ran
            // under: resuming a replay campaign over a slipstream
            // journal must re-run, not adopt, those trials. Lines
            // without the field (pre-backend journals) are only
            // sound for the slipstream (native) configuration.
            const char *cfgBackend =
                detectBackendName(cfg.params.detect.kind);
            std::string backend;
            if (jsonFieldString(line, "backend", backend)) {
                if (backend != cfgBackend) {
                    ++skipped;
                    continue;
                }
            } else if (cfg.params.detect.kind !=
                       DetectBackendKind::Slipstream) {
                ++skipped;
                continue;
            }
            t.detectBackend = cfgBackend;
            // Same contract for the A-stream policy tag: a journaled
            // trial only counts for the policy it ran under, and
            // lines without the field (pre-policy journals) are only
            // sound for the paper's default (ir) configuration.
            const char *cfgPolicy =
                aStreamPolicyName(cfg.params.aPolicy.kind);
            std::string policy;
            if (jsonFieldString(line, "policy", policy)) {
                if (policy != cfgPolicy) {
                    ++skipped;
                    continue;
                }
            } else if (cfg.params.aPolicy.kind !=
                       AStreamPolicyKind::IRRemoval) {
                ++skipped;
                continue;
            }
            t.aStreamPolicy = cfgPolicy;
            jsonFieldU64(line, "checked", t.detectChecked);
            jsonFieldU64(line, "det_mismatch", t.detectMismatches);
            jsonFieldU64(line, "det_external", t.detectExternal);
            jsonFieldU64(line, "det_replays", t.detectReplays);
            jsonFieldU64(line, "det_replayed", t.detectReplayedInsts);
            jsonFieldU64(line, "det_overhead", t.detectOverhead);
            t.error = std::move(error);
            // Optional worker-death triage (absent on healthy lines
            // and on journals from before fork isolation existed).
            uint64_t sig = 0, wexit = 0;
            if (jsonFieldU64(line, "signal", sig))
                t.crashSignal = int(sig);
            if (jsonFieldU64(line, "wexit", wexit))
                t.crashExit = int(wexit);
            jsonFieldString(line, "crash_phase", t.crashPhase);
            if (!done[trial])
                ++used;
            done[trial] = std::move(t);
        }
        if (skipped)
            SLIP_WARN("campaign journal '", journalPath, "': skipped ",
                      skipped, " unusable line(s) while resuming '",
                      cfg.name, "'");
        if (used)
            SLIP_INFORM("resuming campaign '", cfg.name, "': ", used,
                        " of ", specs.size(),
                        " trials restored from ", journalPath);
    }

    const bool fsyncEach =
        cfg.journalFsync >= 0
            ? cfg.journalFsync != 0
            : envFlag("SLIPSTREAM_JOURNAL_FSYNC", true);
    TrialJournal journal(journalPath, resume, fsyncEach);

    SimJobRunner runner(cfg.workers);
    runner.setIsolation(cfg.isolation);
    std::vector<size_t> jobToSpec;
    for (size_t i = 0; i < specs.size(); ++i) {
        if (done[i])
            continue;
        jobToSpec.push_back(i);
        const CampaignTrialSpec *s = &specs[i];
        runner.add([&cfg, s, i](const CancelToken &cancel) {
            return runCampaignTrial(cfg, *s, i, cancel);
        });
    }

    // A poisoned trial (crashed its way past the poison threshold)
    // leaves a repro bundle behind — the campaign's findings must
    // survive the campaign. Quarantine failures warn; they never take
    // down the supervisor.
    const auto quarantine = [&](size_t i, const TrialRecord &t) {
        try {
            // Bound quarantine growth: a pathological campaign (every
            // trial poisoned) must not fill the disk with repro
            // bundles. At the cap, skip loudly — existing bundles are
            // never pruned; they are findings.
            const uint64_t maxBundles =
                envU64("SLIPSTREAM_QUARANTINE_MAX", 32);
            uint64_t existing = 0;
            if (std::filesystem::is_directory(cfg.quarantineDir))
                for ([[maybe_unused]] const auto &entry :
                     std::filesystem::directory_iterator(
                         cfg.quarantineDir))
                    ++existing;
            if (existing >= maxBundles) {
                SLIP_WARN("quarantine '", cfg.quarantineDir,
                          "' is at its cap (", existing, " of ",
                          maxBundles, " bundles, SLIPSTREAM_QUARANTINE"
                          "_MAX); NOT writing a bundle for trial ",
                          i, " — raise the cap or clear the directory");
                return;
            }
            fuzz::ReproSpec spec;
            spec.seed = cfg.seed;
            spec.bundleName = cfg.name + "_trial_" + std::to_string(i);
            spec.title = "Slipstream campaign poison trial";
            spec.configSummary = "campaign '" + cfg.name +
                                 "', workload " + t.workload +
                                 ", trial " + std::to_string(i);
            spec.replayCommand =
                "tools/slip_campaign --isolation fork --seed " +
                std::to_string(cfg.seed) + "   # trial " +
                std::to_string(i) + " re-crashes deterministically";
            spec.report = "poisoned trial " + std::to_string(i) + ": " +
                          t.error;
            spec.originalSource =
                getWorkload(t.workload, cfg.size).source;
            spec.minimizedSource = spec.originalSource;
            spec.faults = t.plans;
            const std::string dir =
                fuzz::writeReproBundle(cfg.quarantineDir, spec);
            SLIP_WARN("campaign '", cfg.name, "' trial ", i,
                      " quarantined: ", dir);
        } catch (const std::exception &e) {
            SLIP_WARN("failed to quarantine poisoned trial ", i, ": ",
                      e.what());
        }
    };

    // Supervised execution: a throwing, reaped, or crashing trial
    // becomes a classified record instead of voiding the batch.
    // Journal lines commit in trial order, not completion order, so a
    // campaign journal is byte-identical across SLIPSTREAM_JOBS and
    // isolation modes. At most workers-1 finished trials are held
    // back awaiting a predecessor; a kill in that window re-runs them
    // on resume instead of journaling them out of order. Trials
    // restored by resume are already in the journal and only advance
    // the cursor.
    std::vector<bool> journaled(specs.size(), false);
    for (size_t i = 0; i < specs.size(); ++i)
        journaled[i] = bool(done[i]);
    size_t nextToJournal = 0;
    runner.runSupervised([&](size_t job, const JobOutcome &o) {
        const size_t i = jobToSpec[job];
        TrialRecord t = recordCampaignTrial(cfg, specs[i], i, o);
        if (o.status == JobOutcome::Status::Crashed && o.poisoned)
            quarantine(i, t);
        done[i] = std::move(t);
        while (nextToJournal < specs.size() && done[nextToJournal]) {
            if (!journaled[nextToJournal]) {
                journal.append(cfg, nextToJournal,
                               *done[nextToJournal]);
                journaled[nextToJournal] = true;
            }
            ++nextToJournal;
        }
    });

    FaultCampaignResult result;
    result.perWorkload.reserve(names.size());
    for (const std::string &name : names)
        result.perWorkload.emplace_back(name, CampaignTally{});
    for (size_t i = 0; i < specs.size(); ++i) {
        SLIP_ASSERT(done[i], "campaign trial ", i, " never finished");
        TrialRecord trial = std::move(*done[i]);
        result.total.add(trial);
        for (auto &[wname, tally] : result.perWorkload)
            if (wname == trial.workload)
                tally.add(trial);
        result.trials.push_back(std::move(trial));
    }
    return result;
}

namespace
{

void
tallyJson(std::ostringstream &out, const CampaignTally &t,
          const char *indent)
{
    out << indent << "\"trials\": " << t.trials << ",\n"
        << indent << "\"faults\": {\"planned\": " << t.faultsPlanned
        << ", \"injected\": " << t.faultsInjected
        << ", \"detected\": " << t.faultsDetected << "},\n"
        << indent << "\"outcomes\": {";
    for (unsigned o = 0; o < kNumTrialOutcomes; ++o) {
        if (o)
            out << ", ";
        out << "\"" << trialOutcomeName(TrialOutcome(o))
            << "\": " << t.byOutcome[o];
    }
    out << "},\n"
        << indent << "\"degraded_runs\": " << t.degradedRuns << ",\n"
        << indent << "\"cycles_total\": " << t.cyclesTotal << ",\n"
        << indent << "\"detect\": {\"checked\": " << t.detectChecked
        << ", \"mismatches\": " << t.detectMismatches
        << ", \"external\": " << t.detectExternal
        << ", \"overhead_cycles\": " << t.detectOverhead << "},\n"
        << indent << "\"detect_overhead_histogram\": {";
    // Per-trial modeled-overhead distribution (log2 buckets, non-zero
    // trials only) — zero by construction for the native backend.
    bool firstOverhead = true;
    for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
        if (!t.overheadHist.bucket(b))
            continue;
        if (!firstOverhead)
            out << ", ";
        firstOverhead = false;
        out << "\"" << Histogram::bucketLo(b) << "-"
            << Histogram::bucketHi(b)
            << "\": " << t.overheadHist.bucket(b);
    }
    out << "},\n";
    // Worker-death histogram appears only when a worker actually died,
    // so healthy campaigns report byte-identically across isolation
    // modes (and against reports from before fork isolation existed).
    if (!t.crashBySignal.empty()) {
        out << indent << "\"worker_crashes\": {";
        bool firstCrash = true;
        for (const auto &[cause, n] : t.crashBySignal) {
            if (!firstCrash)
                out << ", ";
            firstCrash = false;
            out << "\"" << cause << "\": " << n;
        }
        out << "},\n";
    }
    out << indent << "\"detection_latency_cycles\": {\"samples\": "
        << t.latencySamples << ", \"avg\": " << t.avgLatency()
        << ", \"max\": " << t.latencyMax << "},\n"
        << indent << "\"detection_latency_histogram\": {";
    // Log2-bucketed latency distribution per fault target: bucket
    // counts only (keys are "lo-hi" cycle ranges), so live and
    // journal-resumed campaigns render identically.
    bool firstTarget = true;
    for (const auto &[target, h] : t.latencyByTarget) {
        if (h.count() == 0)
            continue;
        if (!firstTarget)
            out << ", ";
        firstTarget = false;
        out << "\"" << target << "\": {";
        bool firstBucket = true;
        for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
            if (!h.bucket(b))
                continue;
            if (!firstBucket)
                out << ", ";
            firstBucket = false;
            out << "\"" << Histogram::bucketLo(b) << "-"
                << Histogram::bucketHi(b) << "\": " << h.bucket(b);
        }
        out << "}";
    }
    out << "}";
}

} // namespace

std::string
campaignJson(const FaultCampaignConfig &cfg,
             const FaultCampaignResult &result)
{
    const std::vector<FaultTarget> targets =
        !cfg.targets.empty() ? cfg.targets
                             : defaultCampaignTargets(cfg.reliableMode);

    std::ostringstream out;
    out << "{\n"
        << "  \"report_version\": " << kFaultReportVersion << ",\n"
        << "  \"campaign\": \"" << cfg.name << "\",\n"
        << "  \"mode\": \""
        << (cfg.reliableMode ? "reliable" : "slipstream") << "\",\n"
        << "  \"detect_backend\": \""
        << detectBackendName(cfg.params.detect.kind) << "\",\n"
        << "  \"a_stream_policy\": \""
        << aStreamPolicyName(cfg.params.aPolicy.kind) << "\",\n"
        << "  \"size\": \"" << sizeName(cfg.size) << "\",\n"
        << "  \"seed\": " << cfg.seed << ",\n"
        << "  \"trials_per_workload\": " << cfg.trialsPerWorkload
        << ",\n"
        << "  \"faults_per_trial\": [" << cfg.minFaultsPerTrial << ", "
        << cfg.maxFaultsPerTrial << "],\n"
        << "  \"targets\": [";
    for (size_t i = 0; i < targets.size(); ++i) {
        if (i)
            out << ", ";
        out << "\"" << faultTargetName(targets[i]) << "\"";
    }
    out << "],\n";
    tallyJson(out, result.total, "  ");
    out << ",\n  \"workloads\": [\n";
    for (size_t i = 0; i < result.perWorkload.size(); ++i) {
        const auto &[name, tally] = result.perWorkload[i];
        out << "    {\n      \"name\": \"" << name << "\",\n";
        tallyJson(out, tally, "      ");
        out << "\n    }" << (i + 1 < result.perWorkload.size() ? "," : "")
            << "\n";
    }
    out << "  ]\n}";
    return out.str();
}

void
writeFaultReport(const std::vector<std::string> &campaignObjects,
                 const std::string &path)
{
    // Reporting must never take down a campaign: every failure path
    // warns (with the path and the reason) and returns.
    std::string target = path;
    try {
        if (target.empty()) {
            if (const char *env =
                    std::getenv("SLIPSTREAM_FAULT_JSON"))
                target = env;
            else
                target = "results/fault_campaign.json";
        }
        const std::filesystem::path dir =
            std::filesystem::path(target).parent_path();
        if (!dir.empty())
            std::filesystem::create_directories(dir);

        // Write a temp sibling, then atomically rename into place:
        // no kill point leaves a truncated fault_campaign.json.
        const std::string tmp = target + ".tmp";
        {
            std::ofstream out(tmp, std::ios::trunc);
            if (!out) {
                SLIP_WARN("cannot open fault report temp file '", tmp,
                          "' for writing; report not written");
                return;
            }
            out << "[\n";
            for (size_t i = 0; i < campaignObjects.size(); ++i)
                out << campaignObjects[i]
                    << (i + 1 < campaignObjects.size() ? "," : "")
                    << "\n";
            out << "]\n";
            out.flush();
            if (!out) {
                SLIP_WARN("write to fault report temp file '", tmp,
                          "' failed; report not written");
                std::remove(tmp.c_str());
                return;
            }
        }
        std::filesystem::rename(tmp, target);
    } catch (const std::exception &e) {
        SLIP_WARN("failed to write fault report '", target,
                  "': ", e.what());
    } catch (...) {
        SLIP_WARN("failed to write fault report '", target,
                  "': unknown error");
    }
}

} // namespace slip
