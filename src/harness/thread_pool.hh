/**
 * @file
 * A small work-stealing thread pool for the experiment harness.
 *
 * Each worker owns a deque of jobs; submit() deals new jobs round-
 * robin across the deques, workers pop from the front of their own
 * deque and steal from the back of a victim's when theirs runs dry.
 * Simulation jobs are seconds long, so the pool optimises for
 * simplicity and determinism of completion tracking, not for
 * nanosecond dispatch: one mutex guards all queues.
 *
 * The pool is reusable: wait() blocks until every submitted job has
 * finished, after which more jobs may be submitted. The destructor
 * drains outstanding work before joining the workers.
 */

#ifndef SLIPSTREAM_HARNESS_THREAD_POOL_HH
#define SLIPSTREAM_HARNESS_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace slip
{

class ThreadPool
{
  public:
    /** Spawns `workers` threads (clamped to at least one). */
    explicit ThreadPool(unsigned workers);

    /** Drains all outstanding jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job. Thread-safe. */
    void submit(std::function<void()> job);

    /** Block until every job submitted so far has completed. */
    void wait();

    unsigned workerCount() const { return unsigned(workers_.size()); }

  private:
    void workerLoop(unsigned self);

    /**
     * Dequeue one job for worker `self`: front of its own deque, else
     * steal from the back of another worker's. Caller holds mu_.
     */
    bool takeJob(unsigned self, std::function<void()> &job);

    std::mutex mu_;
    std::condition_variable wake_; // workers: work available / stopping
    std::condition_variable idle_; // waiters: all work finished

    std::vector<std::deque<std::function<void()>>> queues_;
    std::vector<std::thread> workers_;

    size_t nextQueue_ = 0; // round-robin submit cursor
    size_t queued_ = 0;    // jobs sitting in deques
    size_t inFlight_ = 0;  // jobs currently executing
    bool stopping_ = false;
};

} // namespace slip

#endif // SLIPSTREAM_HARNESS_THREAD_POOL_HH
